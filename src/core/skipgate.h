// In-process two-party driver (paper §3): a thin composition of the two
// single-role endpoints (core/party.h) over an in-process transport. The
// endpoints own all protocol state; this layer only chooses the transport
// and interleaves the shared cycle schedule:
//
//   GarblerEndpoint    (core/party.h)  Alice: planner + labels + OT sends
//   EvaluatorEndpoint  (core/party.h)  Bob: planner + eval + OT choices
//
// Transports: the lock-step in-memory duplex (single thread, exactly the
// paper's sequential schedule, the two endpoints' hooks interleaved) or a
// threaded bounded pipe that lets the garbler run ahead of the evaluator
// (each endpoint simply run()s on its own thread — the same code path a
// socket deployment uses). All transports produce bit-identical results,
// digests and byte counts; tools/arm2gc_party proves the same for two
// separate OS processes over TCP (gc/transport_socket.h).
#pragma once

#include <cstdint>

#include "core/party.h"
#include "gc/transport.h"
#include "netlist/netlist.h"

namespace arm2gc::core {

enum class TransportKind : std::uint8_t {
  InMemory,      ///< lock-step FIFOs, single thread
  ThreadedPipe,  ///< garbler on a worker thread, bounded-ring backpressure
};

/// Execution tuning that never changes results — only how they are computed.
struct ExecOptions {
  TransportKind transport = TransportKind::InMemory;
  /// Reuse classification across cycles with identical public entry state.
  /// false disables all plan reuse, including the cone memo (the
  /// from-scratch baseline for differential tests).
  bool plan_cache = true;
  std::size_t plan_cache_budget_bytes = 64u << 20;
  /// Cone-granular incremental planning: on whole-netlist cache misses,
  /// stitch the plan from per-cone memo hits and re-classify only dirty
  /// cones. Never changes results (every adopted cone is re-verified).
  bool cone_memo = true;
  std::size_t cone_memo_budget_bytes = 32u << 20;
  /// Segmentation granularity (gates per cone, approximate; 0 = whole
  /// netlist as one cone). Public; both parties derive the same layout.
  std::size_t cone_target_gates = 512;
  /// Optional externally owned per-role warm state (plan cache + cone memo +
  /// IKNP extension state) persisting across runs — Arm2Gc::Session supplies
  /// these. Role-scoped by construction: a Role::Garbler WarmState for the
  /// garbler slot, Role::Evaluator for the evaluator slot (endpoints reject
  /// a mismatch), so the two party threads can never share mutable state.
  WarmState* garbler_warm = nullptr;
  WarmState* evaluator_warm = nullptr;
  /// ThreadedPipe ring capacity per direction, in 16-byte blocks; this is
  /// both the garbler's run-ahead window and the transport memory bound.
  std::size_t pipe_blocks = 1u << 15;
  /// OT backend for Bob's input labels: the ideal-functionality stand-in or
  /// real IKNP extension (gc/otext.h). Outputs, garbled tables and every
  /// non-OT byte count are bit-identical across backends; only OT traffic
  /// and timing differ.
  gc::OtBackend ot_backend = gc::OtBackend::Ideal;
  /// Precomp random-OT pool target per refill (gc/otpre.h). Public: the
  /// refill schedule is a deterministic function of it, so both parties must
  /// use the same value. Ignored by the other backends.
  std::size_t ot_pool = gc::kDefaultOtPoolBatch;
  /// Worker threads per party for garbling/evaluation and per-cone plan
  /// classification (core/workpool.h; 0 = one per hardware thread). Like
  /// every ExecOptions field this never changes results: the ordered
  /// transport writer keeps the framed byte stream, table digests and comm
  /// accounting byte-identical to threads == 1.
  std::size_t threads = 1;
};

struct RunOptions {
  Mode mode = Mode::SkipGate;
  gc::Scheme scheme = gc::Scheme::HalfGates;
  /// Run exactly this many cycles (sequential circuits with a known schedule).
  std::optional<std::uint64_t> fixed_cycles;
  /// Public wire that announces termination (the processor's halt signal);
  /// the cycle where it becomes 1 is the final cycle. Must be public.
  std::optional<netlist::WireId> halt_wire;
  /// Safety bound when running halt-driven.
  std::uint64_t max_cycles = 1u << 20;
  /// Protocol seed; the in-process driver also uses it as both parties'
  /// private seed, which keeps runs byte-reproducible (a two-process
  /// deployment seeds each party privately via PartyOptions instead).
  crypto::Block seed = kDefaultProtocolSeed;
  ExecOptions exec;
};

/// Expands a driver-style RunOptions into one role's PartyOptions (the
/// in-process determinism convention: private_seed == protocol seed).
[[nodiscard]] PartyOptions party_options(Role role, const RunOptions& opts);

/// Two-party sequential garbling driver: constructs both endpoints over an
/// in-process duplex and runs the shared schedule.
class SkipGateDriver {
 public:
  SkipGateDriver(const netlist::Netlist& nl, RunOptions opts);

  /// Executes the protocol. `alice_bits`/`bob_bits`/`pub_bits` bind fixed
  /// inputs and flip-flop initial values (shared index space per owner).
  RunResult run(const netlist::BitVec& alice_bits, const netlist::BitVec& bob_bits,
                const netlist::BitVec& pub_bits = {}, const StreamProvider* streams = nullptr);

 private:
  const netlist::Netlist& nl_;
  RunOptions opts_;
};

}  // namespace arm2gc::core
