// Fixture: secret-randomness generator (forbidden to the planner).
#pragma once
#include "crypto/block.h"
#include "gc/transport.h"  // VIOLATION: crypto may not depend on gc
namespace fix::crypto {
class CtrRng {
 public:
  explicit CtrRng(Block seed) : state_(seed) {}
  Block next() { return state_; }
 private:
  Block state_;
};
}  // namespace fix::crypto
