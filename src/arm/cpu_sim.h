// Reference instruction-set simulator for the supported ARM subset. This is
// the architectural golden model: the gate-level CPU netlist is validated
// against it cycle by cycle, and benchmark programs are debugged on it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arm/isa.h"

namespace arm2gc::arm {

class ArmSim {
 public:
  ArmSim(MemoryConfig cfg, std::span<const std::uint32_t> program);

  /// Loads the parties' input memories and applies the reset ABI:
  /// r0=&alice, r1=&bob, r2=&out, sp=top of RAM, pc=0.
  void reset(std::span<const std::uint32_t> alice, std::span<const std::uint32_t> bob);

  /// Executes one instruction; no-op once halted.
  void step();

  /// Runs until SWI; returns the executed cycle count **including** the SWI
  /// cycle (matching the garbled run's final cycle + 1). Throws if
  /// `max_cycles` is exceeded.
  std::uint64_t run(std::uint64_t max_cycles = 1u << 20);

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] std::uint32_t pc() const { return pc_; }
  [[nodiscard]] std::uint32_t reg(int i) const { return regs_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] bool flag_n() const { return n_; }
  [[nodiscard]] bool flag_z() const { return z_; }
  [[nodiscard]] bool flag_c() const { return c_; }
  [[nodiscard]] bool flag_v() const { return v_; }

  [[nodiscard]] const std::vector<std::uint32_t>& out_mem() const { return out_; }
  [[nodiscard]] const std::vector<std::uint32_t>& ram() const { return ram_; }
  [[nodiscard]] const MemoryConfig& config() const { return cfg_; }

  /// Word read with the same region decode the netlist uses.
  [[nodiscard]] std::uint32_t read_word(std::uint32_t addr) const;

 private:
  void write_word(std::uint32_t addr, std::uint32_t value);
  [[nodiscard]] std::uint32_t read_reg(int i) const;  // r15 reads pc+8

  MemoryConfig cfg_;
  std::vector<std::uint32_t> imem_;
  std::vector<std::uint32_t> alice_;
  std::vector<std::uint32_t> bob_;
  std::vector<std::uint32_t> out_;
  std::vector<std::uint32_t> ram_;
  std::uint32_t regs_[16] = {};
  std::uint32_t pc_ = 0;
  bool n_ = false, z_ = false, c_ = false, v_ = false;
  bool halted_ = false;
};

}  // namespace arm2gc::arm
