// Oblivious transfer endpoints for Bob's input labels.
//
// The protocol logic only needs the OT *functionality*: Bob obtains
// X0 ^ b*R for his choice bit b without Alice learning b. We implement an
// ideal-functionality endpoint: the offered pair travels through the
// transport (that is the functionality's internal wiring — a real IKNP
// endpoint would replace these two classes without touching the sessions)
// and the receiver picks locally, so the sender never sees the choice bit.
// Communication is accounted at the standard semi-honest OT-extension price
// (IKNP'03: kappa = 128 bits from receiver to sender plus one label back;
// amortized base OTs ignored). Real network OT is orthogonal to SkipGate —
// the paper's tables never include OT traffic — but the cost is surfaced in
// CommStats so end-to-end byte counts are honest.
#pragma once

#include <cstdint>

#include "crypto/block.h"
#include "gc/transport.h"

namespace arm2gc::gc {

/// Per-OT accounted bytes: a 128-bit extension column + a 128-bit ciphertext.
inline constexpr std::uint64_t kOtBytesPerChoice = 32;

/// Ideal 1-out-of-2 OT on labels (x0, x0^R). Alice side.
class OtSender {
 public:
  explicit OtSender(Transport& tx) : tx_(&tx) {}

  /// Offers the pair; the paired OtReceiver::receive must be called in the
  /// same order. The frame is accounted at exactly kOtBytesPerChoice.
  void send(crypto::Block x0, crypto::Block x1) {
    const crypto::Block pair[2] = {x0, x1};
    tx_->send(pair, 2, Traffic::Ot);
  }

 private:
  Transport* tx_;
};

/// Ideal 1-out-of-2 OT, Bob side: picks the label for his choice bit.
class OtReceiver {
 public:
  explicit OtReceiver(Transport& tx) : tx_(&tx) {}

  crypto::Block receive(bool choice) {
    crypto::Block pair[2];
    tx_->recv(pair, 2);
    return pair[choice ? 1 : 0];
  }

 private:
  Transport* tx_;
};

}  // namespace arm2gc::gc
