// Fixture: garbler TU; bind_secret is the allowlisted secret send site.
#include "core/plan.h"
#include "gc/transport.h"
namespace fix::core {
class GarblerSession {
 public:
  void bind_secret();
 private:
  gc::Transport* tx_ = nullptr;
  crypto::Block la_[2];
  crypto::Block R;
};
void GarblerSession::bind_secret() { tx_->send(la_, 1); }
}  // namespace fix::core
