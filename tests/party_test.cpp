// Party-endpoint API tests: the single-role endpoints over a real TCP
// socket must be a perfect stand-in for the in-process driver. Pinned here:
//   - two endpoints in two threads over TCP loopback == in-process
//     InMemoryDuplex bit-for-bit (outputs, table digest, garbled_non_xor,
//     per-class comm bytes) on fuzzed sequential netlists and on the ARM
//     Hamming-160 program;
//   - the evaluator's received-table digest equals the garbler's sent-table
//     digest on every transport (the cross-process content certificate);
//   - party-private seeds: endpoints seeded with *different* private
//     randomness still agree on outputs and on each other's digest (only
//     the label stream, and hence the digest value, moves);
//   - warm-state negative paths: a one-sided OT reset (desynced warm
//     extension state) fails loudly on the OT header/check — never a hang or
//     a wrong label — on both in-process transports, and endpoint abort
//     resets warm OT state so the *next* run recovers without rebuilding
//     the session (base OTs simply rerun).
#include <gtest/gtest.h>

#include <cstdint>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "arm/arm2gc.h"
#include "builder/circuit_builder.h"
#include "builder/stdlib.h"
#include "core/party.h"
#include "core/skipgate.h"
#include "crypto/rng.h"
#include "gc/transport.h"
#include "gc/transport_socket.h"
#include "programs/programs.h"
#include "test_util.h"

namespace {

using namespace arm2gc;
using crypto::Block;
using crypto::block_from_u64;
using a2gtest::to_bits;

/// Random sequential netlist with inputs/dffs of every ownership class, so
/// reset OT batches, streamed batches and direct labels all carry traffic.
netlist::Netlist random_party_netlist(crypto::CtrRng& rng) {
  netlist::Netlist nl;
  constexpr std::uint32_t kInPerParty = 3;
  for (std::uint32_t i = 0; i < kInPerParty; ++i) {
    nl.inputs.push_back(netlist::Input{netlist::Owner::Alice, false, i, ""});
    nl.inputs.push_back(netlist::Input{netlist::Owner::Bob, false, i, ""});
    nl.inputs.push_back(netlist::Input{netlist::Owner::Public, false, i, ""});
  }
  nl.inputs.push_back(netlist::Input{netlist::Owner::Bob, true, 0, ""});
  nl.inputs.push_back(netlist::Input{netlist::Owner::Alice, true, 0, ""});
  for (std::uint32_t i = 0; i < 3; ++i) {
    netlist::Dff d;
    switch (rng.next_below(3)) {
      case 0: d.init = netlist::Dff::Init::Zero; break;
      case 1:
        d.init = netlist::Dff::Init::AliceBit;
        d.init_index = i;
        break;
      default:
        d.init = netlist::Dff::Init::BobBit;
        d.init_index = i;
        break;
    }
    nl.dffs.push_back(d);
  }
  const int num_gates = 25 + static_cast<int>(rng.next_below(25));
  for (int g = 0; g < num_gates; ++g) {
    const auto limit = static_cast<std::uint32_t>(2 + nl.inputs.size() + nl.dffs.size() +
                                                  static_cast<std::size_t>(g));
    nl.gates.push_back(netlist::Gate{static_cast<netlist::WireId>(rng.next_below(limit)),
                                     static_cast<netlist::WireId>(rng.next_below(limit)),
                                     static_cast<netlist::TruthTable>(rng.next_below(16))});
  }
  const auto nw = static_cast<std::uint32_t>(nl.num_wires());
  for (auto& d : nl.dffs) {
    d.d = static_cast<netlist::WireId>(rng.next_below(nw));
    d.d_invert = rng.next_bool();
  }
  for (int o = 0; o < 5; ++o) {
    nl.outputs.push_back(netlist::OutputPort{static_cast<netlist::WireId>(rng.next_below(nw)),
                                             rng.next_bool(), ""});
  }
  nl.outputs_every_cycle = true;
  return nl;
}

struct SocketRun {
  core::RunResult garbler;
  core::RunResult evaluator;
  gc::CommStats combined_comm;  ///< garbler sent + evaluator sent
};

/// Two endpoints over a real TCP loopback connection, garbler on a worker
/// thread — the two-process deployment, minus the fork.
SocketRun socket_run(const netlist::Netlist& nl, const core::RunOptions& opts,
                     const netlist::BitVec& a, const netlist::BitVec& b,
                     const netlist::BitVec& p, const core::StreamProvider* streams,
                     std::optional<Block> garbler_private = {},
                     std::optional<Block> evaluator_private = {}) {
  gc::SocketListener listener("127.0.0.1", 0);
  const std::uint16_t port = listener.port();

  SocketRun out;
  gc::CommStats garbler_sent;
  std::exception_ptr garbler_error;
  std::thread garbler_thread([&] {
    try {
      auto sock = gc::SocketDuplex::connect("127.0.0.1", port);
      core::PartyOptions po = core::party_options(core::Role::Garbler, opts);
      if (garbler_private) po.private_seed = *garbler_private;
      core::GarblerEndpoint endpoint(nl, po, sock->end());
      out.garbler = endpoint.run(a, p, streams);
      sock->flush();
      garbler_sent = sock->sent();
    } catch (...) {
      garbler_error = std::current_exception();
    }
  });

  auto sock = listener.accept();
  try {
    core::PartyOptions po = core::party_options(core::Role::Evaluator, opts);
    if (evaluator_private) po.private_seed = *evaluator_private;
    core::EvaluatorEndpoint endpoint(nl, po, sock->end());
    out.evaluator = endpoint.run(b, p, streams);
  } catch (...) {
    sock->close();  // unblock the peer before propagating
    garbler_thread.join();
    throw;
  }
  garbler_thread.join();
  if (garbler_error) std::rethrow_exception(garbler_error);

  out.combined_comm = garbler_sent;
  out.combined_comm += sock->sent();
  return out;
}

void expect_matches_reference(const SocketRun& s, const core::RunResult& ref) {
  // Garbler side reproduces the in-process run bit for bit.
  EXPECT_EQ(s.garbler.sampled_outputs, ref.sampled_outputs);
  EXPECT_EQ(s.garbler.final_outputs, ref.final_outputs);
  EXPECT_EQ(s.garbler.final_cycle, ref.final_cycle);
  EXPECT_EQ(s.garbler.stats.cycles, ref.stats.cycles);
  EXPECT_EQ(s.garbler.stats.garbled_non_xor, ref.stats.garbled_non_xor);
  EXPECT_EQ(s.garbler.stats.skipped_non_xor, ref.stats.skipped_non_xor);
  EXPECT_EQ(s.garbler.stats.non_xor_slots, ref.stats.non_xor_slots);
  EXPECT_TRUE(s.garbler.stats.table_digest == ref.stats.table_digest);
  EXPECT_EQ(s.garbler.stats.ot_choices, ref.stats.ot_choices);
  EXPECT_EQ(s.garbler.stats.ot_batches, ref.stats.ot_batches);
  // Both parties agree on shape and content.
  EXPECT_EQ(s.evaluator.final_cycle, s.garbler.final_cycle);
  EXPECT_EQ(s.evaluator.stats.garbled_non_xor, s.garbler.stats.garbled_non_xor);
  EXPECT_TRUE(s.evaluator.stats.table_digest == s.garbler.stats.table_digest);
  // Every byte either party sent is accounted identically to the in-memory
  // duplex of the same run.
  EXPECT_EQ(s.combined_comm.garbled_table_bytes, ref.stats.comm.garbled_table_bytes);
  EXPECT_EQ(s.combined_comm.input_label_bytes, ref.stats.comm.input_label_bytes);
  EXPECT_EQ(s.combined_comm.ot_bytes, ref.stats.comm.ot_bytes);
  EXPECT_EQ(s.combined_comm.output_bytes, ref.stats.comm.output_bytes);
}

TEST(PartyEndpoints, SocketMatchesInMemoryOnFuzzedNetlists) {
  crypto::CtrRng rng(block_from_u64(4242));
  for (int seed = 0; seed < 4; ++seed) {
    const netlist::Netlist nl = random_party_netlist(rng);
    const netlist::BitVec a = to_bits(rng.next_u64(), 3);
    const netlist::BitVec b = to_bits(rng.next_u64(), 3);
    const netlist::BitVec p = to_bits(rng.next_u64(), 3);
    const std::uint64_t aw = rng.next_u64();
    const std::uint64_t bw = rng.next_u64();
    core::StreamProvider streams;
    streams.alice = [aw](std::uint64_t c) { return netlist::BitVec{((aw >> c) & 1u) != 0}; };
    streams.bob = [bw](std::uint64_t c) { return netlist::BitVec{((bw >> c) & 1u) != 0}; };

    for (const core::Mode mode : {core::Mode::SkipGate, core::Mode::Conventional}) {
      for (const gc::OtBackend ot :
           {gc::OtBackend::Ideal, gc::OtBackend::Iknp, gc::OtBackend::Precomp}) {
        core::RunOptions opts;
        opts.mode = mode;
        opts.fixed_cycles = 6;
        opts.exec.ot_backend = ot;
        const core::RunResult ref = core::SkipGateDriver(nl, opts).run(a, b, p, &streams);
        const SocketRun s = socket_run(nl, opts, a, b, p, &streams);
        expect_matches_reference(s, ref);
        EXPECT_EQ(s.combined_comm.total(), ref.stats.comm.total()) << "seed " << seed;
      }
    }
  }
}

TEST(PartyEndpoints, SocketMatchesInMemoryArmHamming160) {
  const programs::Program prog = programs::hamming(5);
  const arm::Arm2Gc machine(prog.cfg, prog.words);
  const std::vector<std::uint32_t> a = {0x0001F00Du, 2, 3, 4, 5};
  const std::vector<std::uint32_t> b = {6, 7, 8, 0xFF00FF00u, 10};

  core::ExecOptions exec;
  exec.ot_backend = gc::OtBackend::Iknp;
  const arm::Arm2GcResult ref = machine.run(a, b, 1u << 20, gc::Scheme::HalfGates, exec);
  const arm::Arm2GcResult iss = machine.run_reference(a, b);
  ASSERT_EQ(ref.outputs, iss.outputs);

  gc::SocketListener listener("127.0.0.1", 0);
  const std::uint16_t port = listener.port();
  arm::Arm2GcResult gres;
  gc::CommStats garbler_sent;
  std::exception_ptr gerr;
  std::thread garbler_thread([&] {
    try {
      auto sock = gc::SocketDuplex::connect("127.0.0.1", port);
      gres = machine.run_garbler(
          a, sock->end(),
          machine.party_options(core::Role::Garbler, 1u << 20, gc::Scheme::HalfGates, exec));
      sock->flush();
      garbler_sent = sock->sent();
    } catch (...) {
      gerr = std::current_exception();
    }
  });
  auto sock = listener.accept();
  const arm::Arm2GcResult eres = machine.run_evaluator(
      b, sock->end(),
      machine.party_options(core::Role::Evaluator, 1u << 20, gc::Scheme::HalfGates, exec));
  garbler_thread.join();
  ASSERT_FALSE(gerr);

  EXPECT_EQ(gres.outputs, ref.outputs);
  EXPECT_EQ(gres.cycles, ref.cycles);
  EXPECT_EQ(eres.cycles, ref.cycles);
  EXPECT_EQ(gres.stats.garbled_non_xor, ref.stats.garbled_non_xor);
  EXPECT_TRUE(gres.stats.table_digest == ref.stats.table_digest);
  EXPECT_TRUE(eres.stats.table_digest == ref.stats.table_digest);
  EXPECT_TRUE(eres.outputs.empty());  // Bob does not learn the result

  gc::CommStats combined = garbler_sent;
  combined += sock->sent();
  EXPECT_EQ(combined.garbled_table_bytes, ref.stats.comm.garbled_table_bytes);
  EXPECT_EQ(combined.input_label_bytes, ref.stats.comm.input_label_bytes);
  EXPECT_EQ(combined.ot_bytes, ref.stats.comm.ot_bytes);
  EXPECT_EQ(combined.output_bytes, ref.stats.comm.output_bytes);
}

TEST(PartyEndpoints, PrivatePerPartySeedsStillAgree) {
  // Each party seeding its own randomness moves the label stream (and hence
  // the digest *value*) but nothing observable: outputs stay correct and the
  // two parties' digests stay equal — the deployment configuration of
  // tools/arm2gc_party.
  crypto::CtrRng rng(block_from_u64(5151));
  const netlist::Netlist nl = random_party_netlist(rng);
  const netlist::BitVec a = to_bits(rng.next_u64(), 3);
  const netlist::BitVec b = to_bits(rng.next_u64(), 3);
  const netlist::BitVec p = to_bits(rng.next_u64(), 3);
  core::StreamProvider streams;
  streams.alice = [](std::uint64_t c) { return netlist::BitVec{(c & 1) != 0}; };
  streams.bob = [](std::uint64_t c) { return netlist::BitVec{(c & 2) != 0}; };

  core::RunOptions opts;
  opts.fixed_cycles = 6;
  opts.exec.ot_backend = gc::OtBackend::Iknp;
  const core::RunResult ref = core::SkipGateDriver(nl, opts).run(a, b, p, &streams);
  const SocketRun s = socket_run(nl, opts, a, b, p, &streams,
                                 block_from_u64(0xA11CE5EED), block_from_u64(0xB0B5EED));
  EXPECT_EQ(s.garbler.sampled_outputs, ref.sampled_outputs);
  EXPECT_EQ(s.garbler.stats.garbled_non_xor, ref.stats.garbled_non_xor);
  EXPECT_TRUE(s.garbler.stats.table_digest == s.evaluator.stats.table_digest);
  // Fresh garbler randomness => a different (but internally consistent)
  // table stream.
  EXPECT_FALSE(s.garbler.stats.table_digest == ref.stats.table_digest);
  // Non-label traffic volumes are seed-independent.
  EXPECT_EQ(s.combined_comm.total(), ref.stats.comm.total());
}

TEST(PartyEndpoints, EvaluatorDigestMatchesGarblerOverThreadedPipe) {
  builder::CircuitBuilder cb;
  const builder::Bus x = cb.input_bus(netlist::Owner::Alice, 8, 0);
  const builder::Bus y = cb.input_bus(netlist::Owner::Bob, 8, 0);
  cb.output_bus(builder::mul_lower(cb, x, y, 8));
  const netlist::Netlist nl = cb.take();

  gc::ThreadedPipeDuplex duplex(1u << 12);
  core::RunOptions opts;
  opts.fixed_cycles = 1;
  core::RunResult gres;
  std::thread garbler_thread([&] {
    core::GarblerEndpoint endpoint(nl, core::party_options(core::Role::Garbler, opts),
                                   duplex.garbler_end());
    gres = endpoint.run(to_bits(13, 8));
  });
  core::EvaluatorEndpoint endpoint(nl, core::party_options(core::Role::Evaluator, opts),
                                   duplex.evaluator_end());
  const core::RunResult eres = endpoint.run(to_bits(11, 8));
  garbler_thread.join();

  EXPECT_EQ(a2gtest::from_bits(gres.final_outputs, 0, 8), (13u * 11u) & 0xFFu);
  EXPECT_GT(gres.stats.garbled_non_xor, 0u);
  EXPECT_TRUE(eres.stats.table_digest == gres.stats.table_digest);
}

// --- warm-state negative paths ---------------------------------------------------

netlist::Netlist two_party_adder() {
  builder::CircuitBuilder cb;
  const builder::Bus x = cb.input_bus(netlist::Owner::Alice, 4, 0);
  const builder::Bus y = cb.input_bus(netlist::Owner::Bob, 4, 0);
  cb.output_bus(builder::add(cb, x, y));
  return cb.take();
}

core::WarmState::Options iknp_warm_options() {
  core::WarmState::Options w;
  w.ot_backend = gc::OtBackend::Iknp;
  return w;
}

/// One-sided OT desync (here: an explicit one-sided reset, the same state a
/// run aborted between the receiver's request and the sender's flush leaves
/// behind) must fail on the OT header/check block — a loud runtime_error,
/// not a hang and never a mis-delivered label — on both in-process
/// transports. Endpoint abort then resets *both* sides, so the run after
/// the failure recovers with a fresh base phase.
TEST(PartyWarmState, OneSidedOtDesyncFailsLoudThenRecovers) {
  const netlist::Netlist nl = two_party_adder();
  for (const core::TransportKind tk :
       {core::TransportKind::InMemory, core::TransportKind::ThreadedPipe}) {
    core::WarmState gwarm(core::Role::Garbler, iknp_warm_options());
    core::WarmState ewarm(core::Role::Evaluator, iknp_warm_options());
    core::RunOptions opts;
    opts.fixed_cycles = 1;
    opts.exec.transport = tk;
    opts.exec.ot_backend = gc::OtBackend::Iknp;
    opts.exec.garbler_warm = &gwarm;
    opts.exec.evaluator_warm = &ewarm;

    const core::RunResult warmup =
        core::SkipGateDriver(nl, opts).run(to_bits(3, 4), to_bits(5, 4));
    EXPECT_EQ(a2gtest::from_bits(warmup.final_outputs, 0, 4), 8u);
    EXPECT_EQ(warmup.stats.ot_base_ots, gc::kOtKappa);

    // Desync: only the garbler's extension state drops back to the base
    // phase; the evaluator's still rides the old streams.
    gwarm.reset_ot();
    try {
      (void)core::SkipGateDriver(nl, opts).run(to_bits(1, 4), to_bits(2, 4));
      FAIL() << "desynced warm OT state must not produce a result";
    } catch (const gc::TransportClosed&) {
      FAIL() << "desync surfaced as a transport teardown, not the OT check";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("otext"), std::string::npos) << e.what();
    }

    // The failed run's endpoint abort reset both warm states: the next run
    // re-bases (base OTs run again) and succeeds — recovery without
    // rebuilding caches or session.
    const core::RunResult recovered =
        core::SkipGateDriver(nl, opts).run(to_bits(6, 4), to_bits(7, 4));
    EXPECT_EQ(a2gtest::from_bits(recovered.final_outputs, 0, 4), 13u);
    EXPECT_EQ(recovered.stats.ot_base_ots, gc::kOtKappa);
  }
}

/// A run that throws mid-protocol *between* the evaluator's OT request and
/// the garbler's matching flush leaves the two extension streams desynced;
/// the endpoints' abort path resets both, so the next run over the same
/// warm pair recovers (and provably re-bases).
TEST(PartyWarmState, AbortBetweenRequestAndFlushRecovers) {
  const netlist::Netlist nl = two_party_adder();
  core::WarmState gwarm(core::Role::Garbler, iknp_warm_options());
  core::WarmState ewarm(core::Role::Evaluator, iknp_warm_options());
  core::RunOptions opts;
  opts.fixed_cycles = 1;
  opts.exec.ot_backend = gc::OtBackend::Iknp;
  opts.exec.garbler_warm = &gwarm;
  opts.exec.evaluator_warm = &ewarm;

  const core::RunResult first =
      core::SkipGateDriver(nl, opts).run(to_bits(2, 4), to_bits(3, 4));
  EXPECT_EQ(first.stats.ot_base_ots, gc::kOtKappa);

  // Alice's bits come up short: the garbler throws inside reset(), after
  // the evaluator's ot_reset request already advanced the receiver streams.
  EXPECT_THROW(
      (void)core::SkipGateDriver(nl, opts).run(to_bits(1, 2), to_bits(3, 4)),
      std::out_of_range);

  const core::RunResult recovered =
      core::SkipGateDriver(nl, opts).run(to_bits(9, 4), to_bits(4, 4));
  EXPECT_EQ(a2gtest::from_bits(recovered.final_outputs, 0, 4), 13u);
  EXPECT_EQ(recovered.stats.ot_base_ots, gc::kOtKappa);  // fresh base: reset worked
}

core::WarmState::Options precomp_warm_options(std::size_t pool) {
  core::WarmState::Options w;
  w.ot_backend = gc::OtBackend::Precomp;
  w.ot_pool = pool;
  return w;
}

/// The precomputed backend adds a second desync surface on top of the IKNP
/// streams: the two random-OT pools must agree on consumption and refill
/// schedule. A one-sided pool reset (the state a one-sided crash leaves)
/// makes one party refill where the other derandomizes, so the very first
/// OT frame of the next run is read against the wrong layout — a loud
/// runtime_error on an OT header, never a silent wrong label, on both
/// in-process transports. The failed run's abort resets both sides, and
/// recovery re-bases from scratch.
TEST(PartyWarmState, PrecompOneSidedPoolResetFailsLoudThenRecovers) {
  const netlist::Netlist nl = two_party_adder();
  for (const core::TransportKind tk :
       {core::TransportKind::InMemory, core::TransportKind::ThreadedPipe}) {
    core::WarmState gwarm(core::Role::Garbler, precomp_warm_options(8));
    core::WarmState ewarm(core::Role::Evaluator, precomp_warm_options(8));
    core::RunOptions opts;
    opts.fixed_cycles = 1;
    opts.exec.transport = tk;
    opts.exec.ot_backend = gc::OtBackend::Precomp;
    opts.exec.ot_pool = 8;
    opts.exec.garbler_warm = &gwarm;
    opts.exec.evaluator_warm = &ewarm;

    const core::RunResult warmup =
        core::SkipGateDriver(nl, opts).run(to_bits(3, 4), to_bits(5, 4));
    EXPECT_EQ(a2gtest::from_bits(warmup.final_outputs, 0, 4), 8u);
    EXPECT_EQ(warmup.stats.ot_base_ots, gc::kOtKappa);
    // 4 of the 8 banked OTs consumed: a half-drained pool survives runs.
    EXPECT_EQ(gwarm.ot_pool_available(), 4u);
    EXPECT_EQ(ewarm.ot_pool_available(), 4u);

    // One-sided drop: the garbler's pool (and inner IKNP state) restart
    // from scratch while the evaluator still rides the old pool.
    gwarm.reset_ot();
    try {
      (void)core::SkipGateDriver(nl, opts).run(to_bits(1, 4), to_bits(2, 4));
      FAIL() << "desynced warm OT pools must not produce a result";
    } catch (const gc::TransportClosed&) {
      FAIL() << "desync surfaced as a transport teardown, not the OT check";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("ot"), std::string::npos) << e.what();
    }

    const core::RunResult recovered =
        core::SkipGateDriver(nl, opts).run(to_bits(6, 4), to_bits(7, 4));
    EXPECT_EQ(a2gtest::from_bits(recovered.final_outputs, 0, 4), 13u);
    EXPECT_EQ(recovered.stats.ot_base_ots, gc::kOtKappa);

    // The mirror-image drop — evaluator refills, garbler derandomizes —
    // must fail just as loudly (the sender reads an IKNP base frame where
    // it expects a derand header, or vice versa).
    ewarm.reset_ot();
    try {
      (void)core::SkipGateDriver(nl, opts).run(to_bits(2, 4), to_bits(2, 4));
      FAIL() << "desynced warm OT pools must not produce a result";
    } catch (const gc::TransportClosed&) {
      FAIL() << "desync surfaced as a transport teardown, not the OT check";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("ot"), std::string::npos) << e.what();
    }
    const core::RunResult again =
        core::SkipGateDriver(nl, opts).run(to_bits(6, 4), to_bits(7, 4));
    EXPECT_EQ(a2gtest::from_bits(again.final_outputs, 0, 4), 13u);
    EXPECT_EQ(again.stats.ot_base_ots, gc::kOtKappa);
  }
}

/// A mid-protocol throw with a half-consumed pool (the garbler dies inside
/// reset() after the evaluator's request consumed pool entries) must leave
/// warm state the next run can use: abort drops both pools and the inner
/// extension streams, so the retry re-bases cleanly instead of
/// derandomizing against a half-advanced pool.
TEST(PartyWarmState, PrecompAbortWithHalfConsumedPoolRecovers) {
  const netlist::Netlist nl = two_party_adder();
  core::WarmState gwarm(core::Role::Garbler, precomp_warm_options(8));
  core::WarmState ewarm(core::Role::Evaluator, precomp_warm_options(8));
  core::RunOptions opts;
  opts.fixed_cycles = 1;
  opts.exec.ot_backend = gc::OtBackend::Precomp;
  opts.exec.ot_pool = 8;
  opts.exec.garbler_warm = &gwarm;
  opts.exec.evaluator_warm = &ewarm;

  const core::RunResult first =
      core::SkipGateDriver(nl, opts).run(to_bits(2, 4), to_bits(3, 4));
  EXPECT_EQ(first.stats.ot_base_ots, gc::kOtKappa);
  EXPECT_EQ(gwarm.ot_pool_available(), 4u);

  // Alice's bits come up short: the garbler throws inside reset(), after
  // the evaluator's ot_reset request already drew on its pool.
  EXPECT_THROW(
      (void)core::SkipGateDriver(nl, opts).run(to_bits(1, 2), to_bits(3, 4)),
      std::out_of_range);

  const core::RunResult recovered =
      core::SkipGateDriver(nl, opts).run(to_bits(9, 4), to_bits(4, 4));
  EXPECT_EQ(a2gtest::from_bits(recovered.final_outputs, 0, 4), 13u);
  EXPECT_EQ(recovered.stats.ot_base_ots, gc::kOtKappa);  // fresh base: reset worked
}

/// The pool refill schedule is a deterministic function of the pool target,
/// so a WarmState banked at one size can never be driven at another: the
/// endpoint rejects the pairing at construction instead of desyncing the
/// peer mid-run.
TEST(PartyWarmState, PrecompWarmPoolSizeMismatchRejected) {
  const netlist::Netlist nl = two_party_adder();
  core::WarmState gwarm(core::Role::Garbler, precomp_warm_options(8));
  core::WarmState ewarm(core::Role::Evaluator, precomp_warm_options(8));
  core::RunOptions opts;
  opts.fixed_cycles = 1;
  opts.exec.ot_backend = gc::OtBackend::Precomp;
  opts.exec.ot_pool = 16;  // != the warm states' 8
  opts.exec.garbler_warm = &gwarm;
  opts.exec.evaluator_warm = &ewarm;
  EXPECT_THROW((void)core::SkipGateDriver(nl, opts).run(to_bits(2, 4), to_bits(3, 4)),
               std::invalid_argument);
}

// --- fault injection (a2gtest::FaultyDuplex) -------------------------------------

/// Outcome of one fault-injected two-thread endpoint run.
struct FaultRun {
  bool garbler_closed = false;    ///< garbler surfaced gc::TransportClosed
  bool evaluator_closed = false;  ///< evaluator surfaced gc::TransportClosed
  std::string garbler_other;     ///< non-TransportClosed failure text (empty = none)
  std::string evaluator_other;
};

/// Garbler on a worker thread, evaluator on this one, over the faulty pair;
/// endpoint run() handles its own abort (warm OT reset) before rethrowing.
FaultRun faulty_run(const netlist::Netlist& nl, const core::RunOptions& opts,
                    a2gtest::FaultyDuplex& duplex, core::WarmState* gwarm,
                    core::WarmState* ewarm, const netlist::BitVec& a,
                    const netlist::BitVec& b) {
  FaultRun out;
  std::thread garbler_thread([&] {
    try {
      core::GarblerEndpoint endpoint(nl, core::party_options(core::Role::Garbler, opts),
                                     duplex.garbler_end(), gwarm);
      (void)endpoint.run(a);
    } catch (const gc::TransportClosed&) {
      out.garbler_closed = true;
    } catch (const std::exception& e) {
      out.garbler_other = e.what();
    }
  });
  try {
    core::EvaluatorEndpoint endpoint(nl, core::party_options(core::Role::Evaluator, opts),
                                     duplex.evaluator_end(), ewarm);
    (void)endpoint.run(b);
  } catch (const gc::TransportClosed&) {
    out.evaluator_closed = true;
  } catch (const std::exception& e) {
    out.evaluator_other = e.what();
  }
  garbler_thread.join();
  return out;
}

/// Short reads, partial writes and mid-frame closes at assorted byte offsets
/// (a peer dying mid-protocol) must surface as gc::TransportClosed on BOTH
/// endpoints — never a hang, never a wrong result — and a subsequent run on
/// the same WarmState pair must be byte-identical to an undisturbed warm
/// run: outputs, table digest, per-class comm, and a fresh base-OT phase
/// (the abort path re-based the extension state).
TEST(PartyFaultInjection, MidStreamCloseSurfacesTransportClosedAndWarmRecovers) {
  const netlist::Netlist nl = two_party_adder();
  core::RunOptions opts;
  opts.fixed_cycles = 1;
  opts.exec.ot_backend = gc::OtBackend::Iknp;

  // The undisturbed reference (cold warm states; endpoint runs are
  // deterministic, so every later cold-equivalent run must reproduce it).
  core::WarmState gref(core::Role::Garbler, iknp_warm_options());
  core::WarmState eref(core::Role::Evaluator, iknp_warm_options());
  opts.exec.garbler_warm = &gref;
  opts.exec.evaluator_warm = &eref;
  const core::RunResult ref = core::SkipGateDriver(nl, opts).run(to_bits(9, 4), to_bits(6, 4));
  EXPECT_EQ(a2gtest::from_bits(ref.final_outputs, 0, 4), 15u);

  struct Case {
    bool on_garbler;   ///< which side trips
    bool on_send;      ///< partial write (else short read)
    std::uint64_t at;  ///< trip point in blocks (odd values land mid-frame)
  };
  // Trip points sit inside the actual per-direction traffic: the garbler
  // sends only ~18 blocks here (tables + labels; the big IKNP matrix flows
  // evaluator -> garbler), so garbler-send and evaluator-recv trips must
  // stay below that, while trips on the other direction can land inside
  // the 257-block extension matrix.
  const Case cases[] = {
      {true, true, 1},   {true, true, 9},   {true, false, 3},  {true, false, 33},
      {false, true, 1},  {false, true, 13}, {false, false, 7}, {false, false, 13},
  };
  for (const Case& c : cases) {
    core::WarmState gwarm(core::Role::Garbler, iknp_warm_options());
    core::WarmState ewarm(core::Role::Evaluator, iknp_warm_options());
    opts.exec.garbler_warm = &gwarm;
    opts.exec.evaluator_warm = &ewarm;

    a2gtest::FaultyDuplex faulty(1u << 12);
    if (c.on_garbler && c.on_send) faulty.fail_garbler_send_after(c.at);
    if (c.on_garbler && !c.on_send) faulty.fail_garbler_recv_after(c.at);
    if (!c.on_garbler && c.on_send) faulty.fail_evaluator_send_after(c.at);
    if (!c.on_garbler && !c.on_send) faulty.fail_evaluator_recv_after(c.at);

    const FaultRun r =
        faulty_run(nl, opts, faulty, &gwarm, &ewarm, to_bits(9, 4), to_bits(6, 4));
    EXPECT_TRUE(r.garbler_closed) << "garbler: " << r.garbler_other;
    EXPECT_TRUE(r.evaluator_closed) << "evaluator: " << r.evaluator_other;

    // Recovery on the same warm pair over a fresh transport: byte-identical
    // to the reference, and provably re-based.
    const core::RunResult rec =
        core::SkipGateDriver(nl, opts).run(to_bits(9, 4), to_bits(6, 4));
    EXPECT_EQ(rec.final_outputs, ref.final_outputs);
    EXPECT_TRUE(rec.stats.table_digest == ref.stats.table_digest);
    EXPECT_EQ(rec.stats.garbled_non_xor, ref.stats.garbled_non_xor);
    EXPECT_EQ(rec.stats.comm.garbled_table_bytes, ref.stats.comm.garbled_table_bytes);
    EXPECT_EQ(rec.stats.comm.input_label_bytes, ref.stats.comm.input_label_bytes);
    EXPECT_EQ(rec.stats.comm.ot_bytes, ref.stats.comm.ot_bytes);
    EXPECT_EQ(rec.stats.comm.output_bytes, ref.stats.comm.output_bytes);
    EXPECT_EQ(rec.stats.ot_base_ots, gc::kOtKappa);
  }
}

/// Same teardown discipline under the precomputed-OT backend, where a dying
/// peer can leave a half-consumed random-OT pool behind: the release path is
/// the abort path, so the next run on the same warm pair re-banks and is
/// byte-identical to an undisturbed one.
TEST(PartyFaultInjection, PrecompMidStreamCloseRecoversByteIdentical) {
  const netlist::Netlist nl = two_party_adder();
  core::RunOptions opts;
  opts.fixed_cycles = 1;
  opts.exec.ot_backend = gc::OtBackend::Precomp;
  opts.exec.ot_pool = 8;

  core::WarmState gref(core::Role::Garbler, precomp_warm_options(8));
  core::WarmState eref(core::Role::Evaluator, precomp_warm_options(8));
  opts.exec.garbler_warm = &gref;
  opts.exec.evaluator_warm = &eref;
  const core::RunResult ref = core::SkipGateDriver(nl, opts).run(to_bits(3, 4), to_bits(4, 4));

  core::WarmState gwarm(core::Role::Garbler, precomp_warm_options(8));
  core::WarmState ewarm(core::Role::Evaluator, precomp_warm_options(8));
  opts.exec.garbler_warm = &gwarm;
  opts.exec.evaluator_warm = &ewarm;
  // First trip lands inside the cold base/extension phase (the evaluator's
  // big matrix); the recovery run then re-banks the pool, so the second
  // faulty run is warm — the evaluator sends only a handful of small frames
  // there, and its trip must sit inside that short stream.
  for (const std::uint64_t at : {5ull, 3ull}) {
    a2gtest::FaultyDuplex faulty(1u << 12);
    faulty.fail_evaluator_send_after(at);  // the receiver-first OT frames die
    const FaultRun r =
        faulty_run(nl, opts, faulty, &gwarm, &ewarm, to_bits(3, 4), to_bits(4, 4));
    EXPECT_TRUE(r.garbler_closed) << "garbler: " << r.garbler_other;
    EXPECT_TRUE(r.evaluator_closed) << "evaluator: " << r.evaluator_other;

    const core::RunResult rec =
        core::SkipGateDriver(nl, opts).run(to_bits(3, 4), to_bits(4, 4));
    EXPECT_EQ(rec.final_outputs, ref.final_outputs);
    EXPECT_TRUE(rec.stats.table_digest == ref.stats.table_digest);
    EXPECT_EQ(rec.stats.comm.ot_bytes, ref.stats.comm.ot_bytes);
    EXPECT_EQ(rec.stats.ot_base_ots, gc::kOtKappa);
  }
}

/// Session-level recovery: an ARM run that throws mid-protocol
/// (max_cycles exhausted) aborts both endpoints; the session's next run
/// re-bases and computes correctly — no session rebuild.
TEST(PartyWarmState, ArmSessionRecoversAfterMidProtocolThrow) {
  const auto prog = arm::assemble(
      "ldr r4, [r0]\n"
      "ldr r5, [r1]\n"
      "add r4, r4, r5\n"
      "str r4, [r2]\n"
      "swi 0\n");
  arm::MemoryConfig cfg;
  cfg.imem_words = 16;
  cfg.alice_words = cfg.bob_words = cfg.out_words = 1;
  cfg.ram_words = 16;
  const arm::Arm2Gc machine(cfg, prog);

  core::ExecOptions exec;
  exec.ot_backend = gc::OtBackend::Iknp;
  arm::Arm2Gc::Session session(machine, exec);

  const arm::Arm2GcResult ok = session.run(std::vector<std::uint32_t>{40},
                                           std::vector<std::uint32_t>{2});
  EXPECT_EQ(ok.outputs[0], 42u);
  EXPECT_EQ(ok.stats.ot_base_ots, gc::kOtKappa);

  EXPECT_THROW((void)session.run(std::vector<std::uint32_t>{1},
                                 std::vector<std::uint32_t>{2}, /*max_cycles=*/2),
               std::runtime_error);

  const arm::Arm2GcResult recovered = session.run(std::vector<std::uint32_t>{30},
                                                  std::vector<std::uint32_t>{12});
  EXPECT_EQ(recovered.outputs[0], 42u);
  EXPECT_EQ(recovered.stats.ot_base_ots, gc::kOtKappa);  // re-based after abort
  EXPECT_EQ(recovered.cycles, ok.cycles);
}

}  // namespace
