#include "core/plan.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace arm2gc::core {

namespace {

using crypto::Block;
using netlist::Dff;
using netlist::Gate;
using netlist::Netlist;
using netlist::Owner;
using netlist::WireId;

constexpr WireId kNoWire = 0xffffffffu;

WireState pub_state(bool v) {
  WireState s;
  s.is_pub = true;
  s.val = v;
  return s;
}

std::uint8_t pack_bits(const WireState& s) {
  return static_cast<std::uint8_t>((s.is_pub ? 1u : 0u) | (s.val ? 2u : 0u) |
                                   (s.flip ? 4u : 0u));
}

std::uint64_t fnv1a64(const std::vector<std::uint32_t>& v) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint32_t x : v) {
    h ^= x;
    h *= 1099511628211ull;
  }
  return h;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t fnv1a64_step(std::uint64_t h, std::uint64_t x) {
  h ^= x;
  h *= 1099511628211ull;
  return h;
}

/// Content hash of everything a cached plan depends on besides the entry
/// state: the mode and the netlist structure (names excluded — they cannot
/// affect classification).
std::uint64_t netlist_content_key(const Netlist& nl, Mode mode) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a64_step(h, static_cast<std::uint64_t>(mode));
  h = fnv1a64_step(h, nl.outputs_every_cycle ? 1 : 0);
  for (const netlist::Input& in : nl.inputs) {
    h = fnv1a64_step(h, static_cast<std::uint64_t>(in.owner) | (in.streamed ? 4u : 0u) |
                            (static_cast<std::uint64_t>(in.bit_index) << 3));
  }
  for (const Dff& d : nl.dffs) {
    h = fnv1a64_step(h, static_cast<std::uint64_t>(d.init) | (d.d_invert ? 4u : 0u) |
                            (static_cast<std::uint64_t>(d.init_index) << 3) |
                            (static_cast<std::uint64_t>(d.d) << 32));
  }
  for (const Gate& g : nl.gates) {
    h = fnv1a64_step(h, static_cast<std::uint64_t>(g.a) | (static_cast<std::uint64_t>(g.b) << 32));
    h = fnv1a64_step(h, static_cast<std::uint64_t>(g.tt));
  }
  for (const netlist::OutputPort& o : nl.outputs) {
    h = fnv1a64_step(h, static_cast<std::uint64_t>(o.wire) | (o.invert ? 1ull << 32 : 0));
  }
  return h;
}

/// Folds a unary residual function of a surviving secret input into a plan
/// action (constant output, wire, or inverter — paper Figures 1 and 2).
void classify_unary(netlist::UnaryTable u, const WireState& in, bool pass_is_a, PlanAct& act,
                    WireState& out) {
  if (netlist::unary_is_const(u)) {
    act = PlanAct::Public;
    out = pub_state(u == netlist::kUnOne);
    return;
  }
  act = pass_is_a ? PlanAct::PassA : PlanAct::PassB;
  out = in;
  if (u == netlist::kUnNot) out.flip = !out.flip;
}

/// Follows pass-style actions back to the wire whose label a wire carries.
WireId resolve_pass(const Netlist& nl, const std::uint8_t* acts, const WireId* pass_srcs,
                    WireId w) {
  const WireId first_gate = nl.first_gate_wire();
  for (int hops = 0; hops < 64 && w >= first_gate; ++hops) {
    const std::size_t gi = w - first_gate;
    switch (static_cast<PlanAct>(acts[gi])) {
      case PlanAct::PassA: w = nl.gates[gi].a; break;
      case PlanAct::PassB: w = nl.gates[gi].b; break;
      case PlanAct::PassSrc: w = pass_srcs[gi]; break;
      default: return w;
    }
  }
  return w;
}

/// For a free XOR of wires (wa, wb): if either side resolves to a FreeXor
/// gate one of whose operands' fingerprint equals the result fingerprint,
/// the other operand cancels and the result is a plain wire. Returns the
/// surviving source wire or kNoWire. `is_pub` abstracts where publicness
/// lives (live planner state during classification, cached wire bits during
/// hit verification) so both paths share one decision procedure.
template <typename IsPubFn>
WireId find_cancellation(const Netlist& nl, const std::uint8_t* acts, const WireId* pass_srcs,
                         const std::vector<WireState>& st, IsPubFn&& is_pub, WireId wa,
                         WireId wb, const Block& out_fp) {
  const WireId first_gate = nl.first_gate_wire();
  for (const WireId side : {wa, wb}) {
    const WireId r = resolve_pass(nl, acts, pass_srcs, side);
    if (r < first_gate) continue;
    const std::size_t gi = r - first_gate;
    if (static_cast<PlanAct>(acts[gi]) != PlanAct::FreeXor) continue;
    const Gate& g2 = nl.gates[gi];
    if (!is_pub(g2.a) && st[g2.a].fp == out_fp) return g2.a;
    if (!is_pub(g2.b) && st[g2.b].fp == out_fp) return g2.b;
  }
  return kNoWire;
}

}  // namespace

PlanCache::PlanCache(std::size_t budget_bytes, bool insert_on_first_sight)
    : budget_bytes_(budget_bytes), insert_first_(insert_on_first_sight) {}
PlanCache::~PlanCache() = default;

void PlanCache::ensure_sized(std::uint64_t netlist_key, std::size_t num_wires,
                             std::size_t num_gates, std::size_t roots) {
  if (!slots_.empty()) {
    if (netlist_key_ != netlist_key) {
      throw std::invalid_argument("plan cache reused across different netlists");
    }
    return;
  }
  netlist_key_ = netlist_key;
  // Rough per-entry footprint: signature + acts + pass sources + packed
  // wire bits + two backward variants (emit + live each).
  const std::size_t entry_bytes = 4 * roots + num_gates + 4 * num_gates + num_wires +
                                  4 * num_gates + 256;
  capacity_ = std::clamp<std::size_t>(budget_bytes_ / std::max<std::size_t>(entry_bytes, 1), 4,
                                      65536);
  slots_.resize(next_pow2(2 * capacity_));
  if (!insert_first_) seen_.resize(next_pow2(8 * capacity_));
}

/// Whether a missed signature should be materialized as a cache entry now.
/// First-sight caches always admit; second-sighting caches admit once the
/// hash has been seen before (hash collisions merely admit early — lookups
/// always compare full signatures).
bool PlanCache::admit(std::uint64_t hash) {
  if (insert_first_) return true;
  const std::size_t mask = seen_.size() - 1;
  const std::uint64_t key = hash != 0 ? hash : 1;
  for (std::size_t i = static_cast<std::size_t>(key) & mask;; i = (i + 1) & mask) {
    if (seen_[i] == key) return true;
    if (seen_[i] == 0) {
      // Mark first sighting; once half-full, stop tracking (and admitting)
      // so probe chains stay short and memory stays bounded.
      if (seen_count_ < seen_.size() / 2) {
        seen_[i] = key;
        ++seen_count_;
      }
      return false;
    }
  }
}

Planner::Planner(const Netlist& nl, const PlannerOptions& opts)
    : nl_(nl),
      opts_(opts),
      fp_gen_(opts.seed ^ Block{0xf1f2f3f4f5f6f7f8ULL, 0x0102030405060708ULL}) {
  nl_.validate();
  const std::size_t nw = nl_.num_wires();
  st_.resize(nw);
  needed_.assign(nw, 0);
  non_free_per_cycle_ = nl_.count_non_free();

  if (opts_.cache) {
    const std::size_t roots = netlist::kFirstInputWire + nl_.inputs.size() + nl_.dffs.size();
    netlist_key_ = netlist_content_key(nl_, opts_.mode);
    if (opts_.shared_cache != nullptr) {
      cache_ = opts_.shared_cache;
    } else {
      // Transient per-run cache: second-sighting admission, so cycles whose
      // state never recurs cost a signature probe, not an entry copy.
      owned_cache_ = std::make_unique<PlanCache>(opts_.cache_budget_bytes,
                                                 /*insert_on_first_sight=*/false);
      cache_ = owned_cache_.get();
    }
    cache_->ensure_sized(netlist_key_, nw, nl_.gates.size(), roots);
    class_table_.resize(std::max<std::size_t>(16, next_pow2(2 * roots + 1)));
  }
}

Block Planner::fresh_fp() {
  if (fp_pos_ == kFpBatch) {
    for (std::size_t i = 0; i < kFpBatch; ++i) {
      fp_buf_[i] = crypto::block_from_u64(fp_ctr_++);
    }
    fp_gen_.encrypt_batch(fp_buf_.data(), kFpBatch);
    fp_pos_ = 0;
  }
  return fp_buf_[fp_pos_++];
}

void Planner::bind_secret_fp(WireState& s) {
  s.is_pub = false;
  s.val = false;
  s.flip = false;
  s.fp = fresh_fp();
}

void Planner::reset(const netlist::BitVec& pub_bits) {
  const auto pub_bit = [&](std::uint32_t idx, const char* what) {
    if (idx >= pub_bits.size()) {
      throw std::out_of_range(std::string("skipgate: missing ") + what + " bit " +
                              std::to_string(idx));
    }
    return pub_bits[idx];
  };

  // Constants. Conventional GC treats even constants as secret wires; the
  // planner tracks them with fingerprints like any other secret.
  if (opts_.mode == Mode::SkipGate) {
    const_st_[0] = pub_state(false);
    const_st_[1] = pub_state(true);
  } else {
    bind_secret_fp(const_st_[0]);
    bind_secret_fp(const_st_[1]);
  }

  // Fixed primary inputs: public ones carry their value (SkipGate mode);
  // secret ones carry a fresh fingerprint. Values of secret inputs never
  // reach the planner — it consumes public data only.
  fixed_st_.assign(nl_.inputs.size(), WireState{});
  for (std::size_t i = 0; i < nl_.inputs.size(); ++i) {
    const netlist::Input& in = nl_.inputs[i];
    if (in.streamed) continue;
    if (in.owner == Owner::Public && opts_.mode == Mode::SkipGate) {
      fixed_st_[i] = pub_state(pub_bit(in.bit_index, "fixed input"));
    } else {
      bind_secret_fp(fixed_st_[i]);
    }
  }

  // Flip-flop initial values.
  dff_st_.assign(nl_.dffs.size(), WireState{});
  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    const Dff& d = nl_.dffs[i];
    const bool const_init = d.init == Dff::Init::Zero || d.init == Dff::Init::One;
    if (const_init && opts_.mode == Mode::SkipGate) {
      dff_st_[i] = pub_state(d.init == Dff::Init::One);
    } else {
      bind_secret_fp(dff_st_[i]);
    }
  }

  cur_ = nullptr;
}

void Planner::begin_cycle(const netlist::BitVec& pub_stream) {
  st_[netlist::kConst0] = const_st_[0];
  st_[netlist::kConst1] = const_st_[1];

  for (std::size_t i = 0; i < nl_.inputs.size(); ++i) {
    const netlist::Input& in = nl_.inputs[i];
    const WireId w = nl_.input_wire(i);
    if (!in.streamed) {
      st_[w] = fixed_st_[i];
      continue;
    }
    if (in.owner == Owner::Public && opts_.mode == Mode::SkipGate) {
      if (in.bit_index >= pub_stream.size()) {
        throw std::out_of_range("skipgate: missing streamed input bit " +
                                std::to_string(in.bit_index));
      }
      st_[w] = pub_state(pub_stream[in.bit_index]);
    } else {
      bind_secret_fp(st_[w]);
    }
  }

  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    st_[nl_.dff_wire(i)] = dff_st_[i];
  }
}

void Planner::build_signature() {
  const WireId first_gate = nl_.first_gate_wire();
  sig_.clear();
  sig_.reserve(first_gate);
  ++class_epoch_;
  std::uint32_t next_class = 0;
  const std::size_t mask = class_table_.size() - 1;
  const auto class_of = [&](const Block& fp) {
    std::size_t i = std::hash<Block>{}(fp)&mask;
    for (;;) {
      ClassSlot& slot = class_table_[i];
      if (slot.epoch != class_epoch_) {
        slot.epoch = class_epoch_;
        slot.fp = fp;
        slot.id = next_class++;
        return slot.id;
      }
      if (slot.fp == fp) return slot.id;
      i = (i + 1) & mask;
    }
  };
  for (WireId w = 0; w < first_gate; ++w) {
    const WireState& s = st_[w];
    if (s.is_pub) {
      sig_.push_back(1u | (s.val ? 2u : 0u));
    } else {
      sig_.push_back((class_of(s.fp) << 2) | (s.flip ? 2u : 0u));
    }
  }
}

void Planner::forward() {
  if (cache_ != nullptr) {
    build_signature();
    const std::uint64_t h = fnv1a64(sig_);
    const std::size_t mask = cache_->slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    for (;;) {
      PlanCache::Slot& slot = cache_->slots_[i];
      if (!slot.entry) {
        // Miss with a free probe slot: classify into a new entry if the
        // admission policy and capacity allow, else into scratch (uncached).
        ++cache_misses_;
        Entry* e = &scratch_;
        if (cache_->size_ < cache_->capacity_ && cache_->admit(h)) {
          slot.hash = h;
          slot.entry = std::make_unique<Entry>();
          slot.entry->sig = sig_;
          ++cache_->size_;
          e = slot.entry.get();
        }
        classify(*e);
        cur_ = e;
        return;
      }
      if (slot.hash == h && slot.entry->sig == sig_) {
        if (verify_and_propagate(*slot.entry)) {
          ++cache_hits_;
          cur_ = slot.entry.get();
          return;
        }
        // Signature matched but the XOR-linear fingerprint structure
        // drifted: reclassify this cycle uncached. The entry keeps serving
        // states that do match it.
        ++cache_misses_;
        classify(scratch_);
        cur_ = &scratch_;
        return;
      }
      i = (i + 1) & mask;
    }
  }
  ++cache_misses_;
  classify(scratch_);
  cur_ = &scratch_;
}

void Planner::classify(Entry& e) {
  const std::size_t ng = nl_.gates.size();
  const std::size_t nw = nl_.num_wires();
  e.act.resize(ng);
  e.pass_src.resize(ng);
  e.wire_bits.resize(nw);
  e.backward[0].filled = false;
  e.backward[1].filled = false;

  const WireId first_gate = nl_.first_gate_wire();
  const bool skipgate = opts_.mode == Mode::SkipGate;
  const auto live_pub = [&](WireId w) { return st_[w].is_pub; };

  for (std::size_t i = 0; i < ng; ++i) {
    const Gate g = nl_.gates[i];
    const WireState& a = st_[g.a];
    const WireState& b = st_[g.b];
    WireState out;
    PlanAct act;
    WireId src = 0;

    if (skipgate && a.is_pub && b.is_pub) {  // category i
      act = PlanAct::Public;
      out = pub_state(netlist::tt_eval(g.tt, a.val, b.val));
    } else if (skipgate && a.is_pub) {  // category ii
      classify_unary(netlist::tt_restrict_a(g.tt, a.val), b, /*pass_is_a=*/false, act, out);
    } else if (skipgate && b.is_pub) {  // category ii
      classify_unary(netlist::tt_restrict_b(g.tt, b.val), a, /*pass_is_a=*/true, act, out);
    } else if (skipgate && a.fp == b.fp) {  // category iii
      classify_unary(netlist::tt_restrict_diag(g.tt, a.flip != b.flip), a, /*pass_is_a=*/true,
                     act, out);
    } else if (netlist::tt_is_affine(g.tt)) {  // free under free-XOR
      if (g.tt == netlist::kTtZero || g.tt == netlist::kTtOne) {
        const bool one = g.tt == netlist::kTtOne;
        if (skipgate) {
          act = PlanAct::Public;
          out = pub_state(one);
        } else {
          act = one ? PlanAct::PassC1 : PlanAct::PassC0;
          out = st_[one ? netlist::kConst1 : netlist::kConst0];
        }
      } else if (netlist::tt_ignores_a(g.tt)) {
        classify_unary(netlist::tt_restrict_a(g.tt, false), b, /*pass_is_a=*/false, act, out);
      } else if (netlist::tt_ignores_b(g.tt)) {
        classify_unary(netlist::tt_restrict_b(g.tt, false), a, /*pass_is_a=*/true, act, out);
      } else {  // XOR / XNOR of two live secrets
        act = PlanAct::FreeXor;
        out.is_pub = false;
        out.fp = a.fp ^ b.fp;
        out.flip = (a.flip != b.flip) != (g.tt == netlist::kTtXnor);
        // XOR-cancellation peephole: the 1-AND multiplexer f ^ (s & (t^f))
        // with a public select degenerates to f ^ (t ^ f) == t. Detecting
        // that the result carries exactly an existing wire's label (the
        // paper's "the MUX acts as a wire") releases the unselected side's
        // label from the needed-cone, so its producing gates are skipped.
        if (skipgate) {
          const WireId cancel = find_cancellation(nl_, e.act.data(), e.pass_src.data(), st_,
                                                  live_pub, g.a, g.b, out.fp);
          if (cancel != kNoWire) {
            act = PlanAct::PassSrc;
            src = cancel;
          }
        }
      }
    } else {  // category iv
      act = PlanAct::Garble;
      out.is_pub = false;
      out.fp = fresh_fp();
      out.flip = false;
    }
    st_[first_gate + i] = out;
    e.act[i] = static_cast<std::uint8_t>(act);
    e.pass_src[i] = src;
  }

  for (std::size_t w = 0; w < nw; ++w) e.wire_bits[w] = pack_bits(st_[w]);
}

bool Planner::verify_and_propagate(const Entry& e) {
  // Fingerprints are cycle state even on a hit: the same fresh_fp() draws
  // happen (one per category-iv gate, in gate order) and derived
  // fingerprints follow the cached actions, so the planner's state after a
  // verified hit is identical to a fresh classification. The snapshot makes
  // a failed verification side-effect free.
  const std::uint64_t fp_ctr = fp_ctr_;
  const std::size_t fp_pos = fp_pos_;
  const auto fp_buf = fp_buf_;

  const WireId first_gate = nl_.first_gate_wire();
  const bool skipgate = opts_.mode == Mode::SkipGate;
  const auto wire_pub = [&](WireId w) { return (e.wire_bits[w] & 1) != 0; };
  const auto wire_flip = [&](WireId w) { return (e.wire_bits[w] & 4) != 0; };

  bool ok = true;
  for (std::size_t i = 0; i < nl_.gates.size() && ok; ++i) {
    const WireId w = first_gate + static_cast<WireId>(i);
    const Gate g = nl_.gates[i];
    const PlanAct act = static_cast<PlanAct>(e.act[i]);

    // Re-derive the expected action for every gate whose classification can
    // depend on a fingerprint comparison — both secret inputs in SkipGate
    // mode — mirroring the forward pass branch for branch (the public/flip
    // structure is pinned by the signature; only fingerprints can drift).
    // Conventional mode makes no fingerprint comparison.
    if (skipgate && !wire_pub(g.a) && !wire_pub(g.b)) {
      PlanAct expect;
      WireId expect_src = kNoWire;
      if (st_[g.a].fp == st_[g.b].fp) {  // category iii
        const netlist::UnaryTable u =
            netlist::tt_restrict_diag(g.tt, wire_flip(g.a) != wire_flip(g.b));
        expect = netlist::unary_is_const(u) ? PlanAct::Public : PlanAct::PassA;
      } else if (netlist::tt_is_affine(g.tt)) {
        if (g.tt == netlist::kTtZero || g.tt == netlist::kTtOne) {
          expect = PlanAct::Public;
        } else if (netlist::tt_ignores_a(g.tt)) {
          expect = PlanAct::PassB;  // non-const unary of b
        } else if (netlist::tt_ignores_b(g.tt)) {
          expect = PlanAct::PassA;  // non-const unary of a
        } else {  // XOR of two live secrets
          const Block out_fp = st_[g.a].fp ^ st_[g.b].fp;
          const WireId src = find_cancellation(nl_, e.act.data(), e.pass_src.data(), st_,
                                               wire_pub, g.a, g.b, out_fp);
          expect = src == kNoWire ? PlanAct::FreeXor : PlanAct::PassSrc;
          expect_src = src;
        }
      } else {  // category iv
        expect = PlanAct::Garble;
      }
      ok = act == expect && (expect != PlanAct::PassSrc || e.pass_src[i] == expect_src);
      if (!ok) break;
    }

    switch (act) {
      case PlanAct::Public: break;
      case PlanAct::PassA: st_[w].fp = st_[g.a].fp; break;
      case PlanAct::PassB: st_[w].fp = st_[g.b].fp; break;
      case PlanAct::PassC0: st_[w].fp = st_[netlist::kConst0].fp; break;
      case PlanAct::PassC1: st_[w].fp = st_[netlist::kConst1].fp; break;
      case PlanAct::PassSrc:
      case PlanAct::FreeXor: st_[w].fp = st_[g.a].fp ^ st_[g.b].fp; break;
      case PlanAct::Garble: st_[w].fp = fresh_fp(); break;
    }
  }

  if (!ok) {
    fp_ctr_ = fp_ctr;
    fp_pos_ = fp_pos;
    fp_buf_ = fp_buf;
  }
  return ok;
}

bool Planner::wire_public(WireId w) const { return (cur_->wire_bits[w] & 1) != 0; }
bool Planner::wire_value(WireId w) const { return (cur_->wire_bits[w] & 2) != 0; }

CyclePlan Planner::finish(bool is_final) {
  Entry::Backward& b = cur_->backward[is_final ? 1 : 0];
  if (!b.filled) backward_fill(*cur_, b, is_final);

  CyclePlan plan;
  plan.act = cur_->act.data();
  plan.pass_src = cur_->pass_src.data();
  plan.wire_bits = cur_->wire_bits.data();
  plan.emit = b.emit.data();
  plan.live = b.live.data();
  plan.num_gates = nl_.gates.size();
  plan.num_wires = nl_.num_wires();
  plan.emitted = b.emitted;
  plan.is_final = is_final;
  plan.sample = nl_.outputs_every_cycle || is_final;
  return plan;
}

void Planner::backward_fill(const Entry& e, Entry::Backward& b, bool is_final) {
  const std::size_t ng = nl_.gates.size();
  b.emit.resize(ng);
  b.live.resize(ng);
  b.emitted = 0;
  b.filled = true;

  if (opts_.mode == Mode::Conventional) {
    // Conventional GC garbles every non-affine gate unconditionally.
    for (std::size_t i = 0; i < ng; ++i) {
      b.emit[i] = e.act[i] == static_cast<std::uint8_t>(PlanAct::Garble) ? 1 : 0;
      b.live[i] = 1;
      b.emitted += b.emit[i];
    }
    return;
  }

  std::fill(needed_.begin(), needed_.end(), 0);
  const bool sample = nl_.outputs_every_cycle || is_final;
  if (sample) {
    for (const netlist::OutputPort& o : nl_.outputs) {
      if ((e.wire_bits[o.wire] & 1) == 0) needed_[o.wire] = 1;
    }
  }
  if (!is_final) {
    // Labels entering flip-flops must survive into the next cycle
    // (paper: "copy flip flops labels"). On the final cycle they are dead,
    // which is how e.g. the last carry of a serial adder gets skipped.
    for (const Dff& d : nl_.dffs) {
      if ((e.wire_bits[d.d] & 1) == 0) needed_[d.d] = 1;
    }
  }

  const WireId first_gate = nl_.first_gate_wire();
  for (std::size_t i = ng; i-- > 0;) {
    const WireId w = first_gate + static_cast<WireId>(i);
    if (!needed_[w]) {
      b.emit[i] = 0;
      continue;
    }
    const Gate g = nl_.gates[i];
    switch (static_cast<PlanAct>(e.act[i])) {
      case PlanAct::Public:
        b.emit[i] = 0;
        break;
      case PlanAct::PassA:
        b.emit[i] = 0;
        needed_[g.a] = 1;
        break;
      case PlanAct::PassB:
        b.emit[i] = 0;
        needed_[g.b] = 1;
        break;
      case PlanAct::PassC0:
      case PlanAct::PassC1:
        b.emit[i] = 0;  // constants are always bound; nothing to propagate
        break;
      case PlanAct::PassSrc:
        b.emit[i] = 0;
        needed_[e.pass_src[i]] = 1;
        break;
      case PlanAct::FreeXor:
        b.emit[i] = 0;
        needed_[g.a] = 1;
        needed_[g.b] = 1;
        break;
      case PlanAct::Garble:
        b.emit[i] = 1;
        if ((e.wire_bits[g.a] & 1) == 0) needed_[g.a] = 1;
        if ((e.wire_bits[g.b] & 1) == 0) needed_[g.b] = 1;
        break;
    }
  }

  for (std::size_t i = 0; i < ng; ++i) {
    b.live[i] = (needed_[first_gate + i] || b.emit[i]) ? 1 : 0;
    b.emitted += b.emit[i];
  }
}

void Planner::latch(const CyclePlan& plan) {
  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    const Dff& d = nl_.dffs[i];
    if (plan.wire_public(d.d)) {
      dff_st_[i] = pub_state(plan.wire_value(d.d) != d.d_invert);
    } else {
      dff_st_[i].is_pub = false;
      dff_st_[i].val = false;
      dff_st_[i].flip = plan.wire_flip(d.d) != d.d_invert;
      dff_st_[i].fp = st_[d.d].fp;
    }
  }
}

}  // namespace arm2gc::core
