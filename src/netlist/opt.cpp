#include "netlist/opt.h"

#include <vector>

namespace arm2gc::netlist {

SweepStats sweep_dead_gates(Netlist& nl) {
  SweepStats stats;
  stats.gates_before = nl.gates.size();
  stats.non_free_before = nl.count_non_free();

  const WireId first_gate = nl.first_gate_wire();
  std::vector<std::uint8_t> live(nl.gates.size(), 0);
  // Iterative backward reachability; recursion would overflow on deep chains.
  std::vector<WireId> work;
  auto push = [&](WireId w) {
    if (w < first_gate) return;
    const std::size_t g = w - first_gate;
    if (!live[g]) {
      live[g] = 1;
      work.push_back(w);
    }
  };
  for (const OutputPort& o : nl.outputs) push(o.wire);
  for (const Dff& d : nl.dffs) push(d.d);
  while (!work.empty()) {
    const WireId w = work.back();
    work.pop_back();
    const Gate& g = nl.gates[w - first_gate];
    push(g.a);
    push(g.b);
  }

  // Compact surviving gates; wire ids below first_gate are unchanged.
  std::vector<WireId> remap(nl.gates.size(), kConst0);
  std::vector<Gate> kept;
  kept.reserve(nl.gates.size());
  for (std::size_t g = 0; g < nl.gates.size(); ++g) {
    if (!live[g]) continue;
    Gate gate = nl.gates[g];
    if (gate.a >= first_gate) gate.a = remap[gate.a - first_gate];
    if (gate.b >= first_gate) gate.b = remap[gate.b - first_gate];
    remap[g] = static_cast<WireId>(first_gate + kept.size());
    kept.push_back(gate);
  }
  for (Dff& d : nl.dffs) {
    if (d.d >= first_gate) d.d = remap[d.d - first_gate];
  }
  for (OutputPort& o : nl.outputs) {
    if (o.wire >= first_gate) o.wire = remap[o.wire - first_gate];
  }
  nl.gates = std::move(kept);

  stats.gates_after = nl.gates.size();
  stats.non_free_after = nl.count_non_free();
  nl.validate();
  return stats;
}

}  // namespace arm2gc::netlist
