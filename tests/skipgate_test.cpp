#include <gtest/gtest.h>

#include <cstdint>

#include "builder/circuit_builder.h"
#include "builder/stdlib.h"
#include "core/skipgate.h"
#include "crypto/rng.h"
#include "netlist/simulator.h"
#include "test_util.h"

namespace {

using namespace arm2gc;
using namespace arm2gc::builder;
using arm2gc::core::Mode;
using arm2gc::core::RunOptions;
using arm2gc::core::RunResult;
using arm2gc::core::SkipGateDriver;
using a2gtest::from_bits;
using a2gtest::to_bits;

RunResult run_once(const netlist::Netlist& nl, Mode mode, const netlist::BitVec& a,
                   const netlist::BitVec& b, const netlist::BitVec& p = {},
                   std::uint64_t cycles = 1) {
  RunOptions opts;
  opts.mode = mode;
  opts.fixed_cycles = cycles;
  SkipGateDriver driver(nl, opts);
  return driver.run(a, b, p);
}

TEST(SkipGate, SingleAndGate) {
  for (int bits = 0; bits < 4; ++bits) {
    CircuitBuilder cb;
    const Wire a = cb.input(netlist::Owner::Alice, 0);
    const Wire b = cb.input(netlist::Owner::Bob, 0);
    cb.output(cb.and_(a, b));
    const netlist::Netlist nl = cb.take();
    const RunResult r = run_once(nl, Mode::SkipGate, {(bits & 1) != 0}, {(bits & 2) != 0});
    EXPECT_EQ(r.final_outputs[0], (bits & 1) && (bits & 2));
    EXPECT_EQ(r.stats.garbled_non_xor, 1u);
  }
}

TEST(SkipGate, PublicOnlyCircuitGarblesNothing) {
  CircuitBuilder cb;
  const Bus a = cb.input_bus(netlist::Owner::Public, 8, 0);
  const Bus b = cb.input_bus(netlist::Owner::Public, 8, 8);
  cb.output_bus(mul_lower(cb, a, b, 8));
  const netlist::Netlist nl = cb.take();
  const RunResult r = run_once(nl, Mode::SkipGate, {}, {}, to_bits(7 | (6 << 8), 16));
  EXPECT_EQ(from_bits(r.final_outputs, 0, 8), 42u);
  EXPECT_EQ(r.stats.garbled_non_xor, 0u);
  EXPECT_GT(r.stats.non_xor_slots, 0u);
  EXPECT_EQ(r.stats.comm.garbled_table_bytes, 0u);
}

TEST(SkipGate, CategoryIiPublicInputCollapsesGate) {
  // AND with public 0 -> public 0; AND with public 1 -> pass-through.
  CircuitBuilder cb;
  const Wire s = cb.input(netlist::Owner::Alice, 0);
  const Wire p = cb.input(netlist::Owner::Public, 0);
  cb.output(cb.and_(s, p));
  cb.output(cb.or_(s, p));
  const netlist::Netlist nl = cb.take();
  for (const bool pv : {false, true}) {
    for (const bool sv : {false, true}) {
      const RunResult r = run_once(nl, Mode::SkipGate, {sv}, {}, {pv});
      EXPECT_EQ(r.final_outputs[0], sv && pv);
      EXPECT_EQ(r.final_outputs[1], sv || pv);
      EXPECT_EQ(r.stats.garbled_non_xor, 0u);
    }
  }
}

TEST(SkipGate, CategoryIiiIdenticalLabelsThroughXorChain) {
  // y = (a ^ b) ^ b carries exactly a's label; AND(y, a) is category iii and
  // collapses to a wire; nothing is garbled. This exercises the fingerprint
  // detection of XOR-derived label equality.
  // Build gates directly through the netlist API: the builder would fold
  // xor(xor(a,b),b) -> a structurally before SkipGate ever saw it.
  netlist::Netlist nl;
  nl.inputs.push_back(netlist::Input{netlist::Owner::Alice, false, 0, "a"});
  nl.inputs.push_back(netlist::Input{netlist::Owner::Bob, false, 0, "b"});
  const netlist::WireId wa = nl.input_wire(0);
  const netlist::WireId wb = nl.input_wire(1);
  nl.gates.push_back(netlist::Gate{wa, wb, netlist::kTtXor});
  nl.gates.push_back(netlist::Gate{nl.gate_wire(0), wb, netlist::kTtXor});  // == a
  nl.gates.push_back(netlist::Gate{nl.gate_wire(1), wa, netlist::kTtAnd});  // == a
  nl.outputs.push_back(netlist::OutputPort{nl.gate_wire(2), false, "y"});

  for (const bool av : {false, true}) {
    for (const bool bv : {false, true}) {
      const RunResult r = run_once(nl, Mode::SkipGate, {av}, {bv});
      EXPECT_EQ(r.final_outputs[0], av);
      EXPECT_EQ(r.stats.garbled_non_xor, 0u);
    }
  }
}

TEST(SkipGate, CategoryIiiInvertedLabels) {
  // AND(x, ~x) == 0 and OR(x, ~x) == 1, detected via the flip bit.
  netlist::Netlist nl;
  nl.inputs.push_back(netlist::Input{netlist::Owner::Alice, false, 0, "a"});
  const netlist::WireId wa = nl.input_wire(0);
  nl.gates.push_back(netlist::Gate{wa, netlist::kConst1, netlist::kTtXor});  // ~a
  nl.gates.push_back(netlist::Gate{wa, nl.gate_wire(0), netlist::kTtAnd});
  nl.gates.push_back(netlist::Gate{wa, nl.gate_wire(0), netlist::kTtOr});
  nl.outputs.push_back(netlist::OutputPort{nl.gate_wire(1), false, "and"});
  nl.outputs.push_back(netlist::OutputPort{nl.gate_wire(2), false, "or"});
  for (const bool av : {false, true}) {
    const RunResult r = run_once(nl, Mode::SkipGate, {av}, {});
    EXPECT_FALSE(r.final_outputs[0]);
    EXPECT_TRUE(r.final_outputs[1]);
    EXPECT_EQ(r.stats.garbled_non_xor, 0u);
  }
}

TEST(SkipGate, DeadGateEliminatedByFanoutReduction) {
  // AND(a,b) feeds only AND(., public 0): the first AND's label has no
  // effect on the output, so it must not be garbled (recursive reduction).
  CircuitBuilder cb;
  const Wire a = cb.input(netlist::Owner::Alice, 0);
  const Wire b = cb.input(netlist::Owner::Bob, 0);
  const Wire p = cb.input(netlist::Owner::Public, 0);
  const Wire dead = cb.and_(a, b);
  cb.output(cb.and_(dead, p));
  cb.output(cb.xor_(a, b));
  const netlist::Netlist nl = cb.take();
  const RunResult r = run_once(nl, Mode::SkipGate, {true}, {false}, {false});
  EXPECT_FALSE(r.final_outputs[0]);
  EXPECT_TRUE(r.final_outputs[1]);  // xor(a=1, b=0)
  EXPECT_EQ(r.stats.garbled_non_xor, 0u);
  EXPECT_EQ(r.stats.skipped_non_xor, 2u);
}

TEST(SkipGate, ConventionalModeGarblesEverything) {
  CircuitBuilder cb;
  const Wire a = cb.input(netlist::Owner::Alice, 0);
  const Wire b = cb.input(netlist::Owner::Bob, 0);
  const Wire p = cb.input(netlist::Owner::Public, 0);
  cb.output(cb.and_(cb.and_(a, p), b));
  const netlist::Netlist nl = cb.take();
  for (int bits = 0; bits < 8; ++bits) {
    const RunResult r = run_once(nl, Mode::Conventional, {(bits & 1) != 0}, {(bits & 2) != 0},
                                 {(bits & 4) != 0});
    EXPECT_EQ(r.final_outputs[0], (bits & 1) && (bits & 2) && (bits & 4));
    EXPECT_EQ(r.stats.garbled_non_xor, nl.count_non_free());
  }
}

// --- randomized equivalence: simulator == SkipGate == conventional -----------

class RandomCircuits : public ::testing::TestWithParam<int> {};

TEST_P(RandomCircuits, AllThreeExecutionsAgree) {
  crypto::CtrRng rng(crypto::block_from_u64(static_cast<std::uint64_t>(GetParam()) * 7919 + 1));

  // Random DAG over Alice/Bob/public inputs with random 2-input gates,
  // built directly at netlist level so no builder simplification hides the
  // hard cases from the planner.
  netlist::Netlist nl;
  constexpr int kInPerParty = 4;
  for (int i = 0; i < kInPerParty; ++i) {
    nl.inputs.push_back(netlist::Input{netlist::Owner::Alice, false, static_cast<std::uint32_t>(i), ""});
    nl.inputs.push_back(netlist::Input{netlist::Owner::Bob, false, static_cast<std::uint32_t>(i), ""});
    nl.inputs.push_back(netlist::Input{netlist::Owner::Public, false, static_cast<std::uint32_t>(i), ""});
  }
  const int num_gates = 40 + static_cast<int>(rng.next_below(40));
  for (int g = 0; g < num_gates; ++g) {
    const auto limit = static_cast<std::uint32_t>(2 + nl.inputs.size() + static_cast<std::size_t>(g));
    const auto wa = static_cast<netlist::WireId>(rng.next_below(limit));
    const auto wb = static_cast<netlist::WireId>(rng.next_below(limit));
    const auto tt = static_cast<netlist::TruthTable>(rng.next_below(16));
    nl.gates.push_back(netlist::Gate{wa, wb, tt});
  }
  for (int o = 0; o < 8; ++o) {
    const auto w = static_cast<netlist::WireId>(rng.next_below(static_cast<std::uint32_t>(nl.num_wires())));
    nl.outputs.push_back(netlist::OutputPort{w, rng.next_bool(), ""});
  }

  const netlist::BitVec a = to_bits(rng.next_u64(), kInPerParty);
  const netlist::BitVec b = to_bits(rng.next_u64(), kInPerParty);
  const netlist::BitVec p = to_bits(rng.next_u64(), kInPerParty);

  netlist::Simulator sim(nl);
  sim.reset(a, b, p);
  sim.step();
  const netlist::BitVec expect = sim.read_outputs();

  const RunResult skip = run_once(nl, Mode::SkipGate, a, b, p);
  const RunResult conv = run_once(nl, Mode::Conventional, a, b, p);
  EXPECT_EQ(skip.final_outputs, expect);
  EXPECT_EQ(conv.final_outputs, expect);
  EXPECT_LE(skip.stats.garbled_non_xor, conv.stats.garbled_non_xor);
  EXPECT_EQ(conv.stats.garbled_non_xor, nl.count_non_free());
  EXPECT_EQ(skip.stats.garbled_non_xor + skip.stats.skipped_non_xor, skip.stats.non_xor_slots);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuits, ::testing::Range(0, 40));

// --- sequential circuits -------------------------------------------------------

/// Bit-serial adder: 1-bit full adder + carry flip-flop, one bit per cycle.
netlist::Netlist make_serial_adder() {
  CircuitBuilder cb;
  const auto carry = cb.make_dff(netlist::Dff::Init::Zero);
  const Wire a = cb.input(netlist::Owner::Alice, 0, /*streamed=*/true);
  const Wire b = cb.input(netlist::Owner::Bob, 0, /*streamed=*/true);
  const auto fa = full_adder(cb, a, b, cb.dff_out(carry));
  cb.set_dff_d(carry, fa.carry);
  cb.output(fa.sum, "sum");
  cb.set_outputs_every_cycle(true);
  return cb.take();
}

TEST(SkipGateSequential, SerialAdderComputesSum) {
  const netlist::Netlist nl = make_serial_adder();
  const std::uint32_t a = 0xDEADBEEF;
  const std::uint32_t b = 0x12345679;

  core::StreamProvider streams;
  streams.alice = [&](std::uint64_t c) { return netlist::BitVec{((a >> c) & 1u) != 0}; };
  streams.bob = [&](std::uint64_t c) { return netlist::BitVec{((b >> c) & 1u) != 0}; };

  RunOptions opts;
  opts.fixed_cycles = 32;
  SkipGateDriver driver(nl, opts);
  const RunResult r = driver.run({}, {}, {}, &streams);
  ASSERT_EQ(r.sampled_outputs.size(), 32u);
  std::uint32_t sum = 0;
  for (int i = 0; i < 32; ++i) {
    if (r.sampled_outputs[static_cast<std::size_t>(i)][0]) sum |= 1u << i;
  }
  EXPECT_EQ(sum, a + b);
  // Paper Table 1, Sum 32: 32 non-XOR conventional, 31 with SkipGate (the
  // final carry's garbled table is dead and dropped).
  EXPECT_EQ(r.stats.garbled_non_xor, 31u);
  EXPECT_EQ(r.stats.non_xor_slots, 32u);

  RunOptions copts = opts;
  copts.mode = Mode::Conventional;
  SkipGateDriver cdriver(nl, copts);
  const RunResult rc = cdriver.run({}, {}, {}, &streams);
  EXPECT_EQ(rc.stats.garbled_non_xor, 32u);
  std::uint32_t csum = 0;
  for (int i = 0; i < 32; ++i) {
    if (rc.sampled_outputs[static_cast<std::size_t>(i)][0]) csum |= 1u << i;
  }
  EXPECT_EQ(csum, a + b);
}

/// Bit-serial unsigned comparator (LSB first): lt' = mux(a^b, b, lt).
netlist::Netlist make_serial_comparator() {
  CircuitBuilder cb;
  const auto lt = cb.make_dff(netlist::Dff::Init::Zero);
  const Wire a = cb.input(netlist::Owner::Alice, 0, /*streamed=*/true);
  const Wire b = cb.input(netlist::Owner::Bob, 0, /*streamed=*/true);
  const Wire diff = cb.xor_(a, b);
  const Wire next = cb.mux(diff, b, cb.dff_out(lt));
  cb.set_dff_d(lt, next);
  cb.output(next, "a_lt_b");
  return cb.take();
}

TEST(SkipGateSequential, SerialComparatorNoImprovement) {
  const netlist::Netlist nl = make_serial_comparator();
  const std::uint32_t a = 0x80000001;
  const std::uint32_t b = 0x80000002;
  core::StreamProvider streams;
  streams.alice = [&](std::uint64_t c) { return netlist::BitVec{((a >> c) & 1u) != 0}; };
  streams.bob = [&](std::uint64_t c) { return netlist::BitVec{((b >> c) & 1u) != 0}; };
  RunOptions opts;
  opts.fixed_cycles = 32;
  SkipGateDriver driver(nl, opts);
  const RunResult r = driver.run({}, {}, {}, &streams);
  EXPECT_TRUE(r.final_outputs[0]);
  // Paper Table 1, Compare 32: SkipGate saves nothing (0.00%): the output of
  // the final cycle is exactly the last AND.
  EXPECT_EQ(r.stats.garbled_non_xor, 32u);
}

TEST(SkipGateSequential, DffInitialValuesFromParties) {
  // Swap circuit: two registers initialized from Alice and Bob, cross-copied
  // every cycle; after an odd number of cycles values are swapped.
  CircuitBuilder cb;
  const auto ra = cb.make_dff_bus(4, netlist::Dff::Init::AliceBit, 0);
  const auto rb = cb.make_dff_bus(4, netlist::Dff::Init::BobBit, 0);
  cb.set_dff_d_bus(ra, cb.dff_out_bus(rb));
  cb.set_dff_d_bus(rb, cb.dff_out_bus(ra));
  cb.output_bus(cb.dff_out_bus(ra), "a");
  cb.output_bus(cb.dff_out_bus(rb), "b");
  const netlist::Netlist nl = cb.take();

  RunOptions opts;
  opts.fixed_cycles = 2;  // outputs sampled on final cycle: one swap applied
  SkipGateDriver driver(nl, opts);
  const RunResult r = driver.run(to_bits(0x5, 4), to_bits(0xA, 4));
  EXPECT_EQ(from_bits(r.final_outputs, 0, 4), 0xAu);
  EXPECT_EQ(from_bits(r.final_outputs, 4, 4), 0x5u);
  EXPECT_EQ(r.stats.garbled_non_xor, 0u);
}

TEST(SkipGateSequential, HaltWireStopsRun) {
  // 3-bit counter halts when it reaches 5; a Bob-owned register feeds through.
  CircuitBuilder cb;
  const auto cnt = cb.make_dff_bus(3);
  const auto reg = cb.make_dff_bus(4, netlist::Dff::Init::BobBit, 0);
  const Bus cur = cb.dff_out_bus(cnt);
  cb.set_dff_d_bus(cnt, inc(cb, cur));
  cb.set_dff_d_bus(reg, cb.dff_out_bus(reg));
  const Wire halt = cb.and_(cb.and_(cur[0], cur[2]), CircuitBuilder::not_(cur[1]));  // == 5
  cb.output(halt, "halt");
  cb.output_bus(cb.dff_out_bus(reg), "r");
  netlist::Netlist nl = cb.take();
  const netlist::WireId halt_wire = nl.outputs[0].wire;

  RunOptions opts;
  opts.halt_wire = halt_wire;
  opts.max_cycles = 100;
  SkipGateDriver driver(nl, opts);
  const RunResult r = driver.run({}, to_bits(0xC, 4));
  EXPECT_EQ(r.final_cycle, 5u);
  EXPECT_EQ(from_bits(r.final_outputs, 1, 4), 0xCu);
  EXPECT_EQ(r.stats.garbled_non_xor, 0u);  // counter is public throughout

  RunOptions bad = opts;
  bad.max_cycles = 3;
  SkipGateDriver bad_driver(nl, bad);
  EXPECT_THROW(bad_driver.run({}, to_bits(0xC, 4)), std::runtime_error);
}

TEST(SkipGateSequential, CommBytesMatchGarbledCount) {
  const netlist::Netlist nl = make_serial_adder();
  core::StreamProvider streams;
  streams.alice = [](std::uint64_t) { return netlist::BitVec{true}; };
  streams.bob = [](std::uint64_t) { return netlist::BitVec{false}; };
  RunOptions opts;
  opts.fixed_cycles = 8;
  SkipGateDriver driver(nl, opts);
  const RunResult r = driver.run({}, {}, {}, &streams);
  // Half-gates: 2 blocks of 16 bytes per garbled gate.
  EXPECT_EQ(r.stats.comm.garbled_table_bytes, r.stats.garbled_non_xor * 32);
  EXPECT_GT(r.stats.comm.ot_bytes, 0u);      // Bob's streamed bits
  EXPECT_GT(r.stats.comm.output_bytes, 0u);  // per-cycle sum labels
}

// --- transports ----------------------------------------------------------------

void expect_results_identical(const RunResult& x, const RunResult& y) {
  EXPECT_EQ(x.sampled_outputs, y.sampled_outputs);
  EXPECT_EQ(x.final_outputs, y.final_outputs);
  EXPECT_EQ(x.final_cycle, y.final_cycle);
  EXPECT_EQ(x.stats.cycles, y.stats.cycles);
  EXPECT_EQ(x.stats.garbled_non_xor, y.stats.garbled_non_xor);
  EXPECT_EQ(x.stats.skipped_non_xor, y.stats.skipped_non_xor);
  EXPECT_EQ(x.stats.non_xor_slots, y.stats.non_xor_slots);
  // Table *content*, not just byte counts: the digest folds every garbled
  // block the garbler sent.
  EXPECT_TRUE(x.stats.table_digest == y.stats.table_digest);
  EXPECT_EQ(x.stats.ot_choices, y.stats.ot_choices);
  EXPECT_EQ(x.stats.ot_batches, y.stats.ot_batches);
  EXPECT_EQ(x.stats.comm.garbled_table_bytes, y.stats.comm.garbled_table_bytes);
  EXPECT_EQ(x.stats.comm.input_label_bytes, y.stats.comm.input_label_bytes);
  EXPECT_EQ(x.stats.comm.ot_bytes, y.stats.comm.ot_bytes);
  EXPECT_EQ(x.stats.comm.output_bytes, y.stats.comm.output_bytes);
}

TEST(SkipGateTransport, ThreadedPipeMatchesInMemorySerialAdder) {
  const netlist::Netlist nl = make_serial_adder();
  core::StreamProvider streams;
  streams.alice = [](std::uint64_t c) { return netlist::BitVec{((0xDEADBEEFu >> c) & 1u) != 0}; };
  streams.bob = [](std::uint64_t c) { return netlist::BitVec{((0x12345679u >> c) & 1u) != 0}; };
  for (const Mode mode : {Mode::SkipGate, Mode::Conventional}) {
    RunOptions opts;
    opts.mode = mode;
    opts.fixed_cycles = 32;
    RunOptions topts = opts;
    topts.exec.transport = core::TransportKind::ThreadedPipe;
    const RunResult mem = SkipGateDriver(nl, opts).run({}, {}, {}, &streams);
    const RunResult piped = SkipGateDriver(nl, topts).run({}, {}, {}, &streams);
    expect_results_identical(mem, piped);
  }
}

TEST(SkipGateTransport, ThreadedPipeMatchesInMemoryHaltDriven) {
  // Halt-driven run: both parties' planners must reach the same termination
  // decision independently.
  CircuitBuilder cb;
  const auto cnt = cb.make_dff_bus(3);
  const auto reg = cb.make_dff_bus(4, netlist::Dff::Init::BobBit, 0);
  const Bus cur = cb.dff_out_bus(cnt);
  cb.set_dff_d_bus(cnt, inc(cb, cur));
  cb.set_dff_d_bus(reg, cb.dff_out_bus(reg));
  cb.output(cb.and_(cb.and_(cur[0], cur[2]), CircuitBuilder::not_(cur[1])), "halt");
  cb.output_bus(cb.dff_out_bus(reg), "r");
  netlist::Netlist nl = cb.take();

  RunOptions opts;
  opts.halt_wire = nl.outputs[0].wire;
  opts.max_cycles = 100;
  RunOptions topts = opts;
  topts.exec.transport = core::TransportKind::ThreadedPipe;
  const RunResult mem = SkipGateDriver(nl, opts).run({}, to_bits(0xC, 4));
  const RunResult piped = SkipGateDriver(nl, topts).run({}, to_bits(0xC, 4));
  expect_results_identical(mem, piped);
  EXPECT_EQ(piped.final_cycle, 5u);

  // Failure on both sides (max_cycles exhausted) surfaces as the same error
  // the in-memory driver raises, not as a transport teardown artifact.
  RunOptions bad = topts;
  bad.max_cycles = 3;
  EXPECT_THROW(SkipGateDriver(nl, bad).run({}, to_bits(0xC, 4)), std::runtime_error);
}

TEST(SkipGateTransport, ThreadedPipeMatchesInMemoryRandomCircuits) {
  crypto::CtrRng rng(crypto::block_from_u64(777));
  for (int seed = 0; seed < 5; ++seed) {
    CircuitBuilder cb;
    const Bus a = cb.input_bus(netlist::Owner::Alice, 8, 0);
    const Bus b = cb.input_bus(netlist::Owner::Bob, 8, 0);
    cb.output_bus(mul_lower(cb, a, b, 8));
    const netlist::Netlist nl = cb.take();
    const netlist::BitVec av = to_bits(rng.next_u64(), 8);
    const netlist::BitVec bv = to_bits(rng.next_u64(), 8);
    for (const auto scheme : {gc::Scheme::HalfGates, gc::Scheme::Grr3, gc::Scheme::Classic4}) {
      RunOptions opts;
      opts.fixed_cycles = 1;
      opts.scheme = scheme;
      RunOptions topts = opts;
      topts.exec.transport = core::TransportKind::ThreadedPipe;
      topts.exec.pipe_blocks = 64;  // force backpressure on a real circuit
      const RunResult mem = SkipGateDriver(nl, opts).run(av, bv);
      const RunResult piped = SkipGateDriver(nl, topts).run(av, bv);
      expect_results_identical(mem, piped);
    }
  }
}

TEST(SkipGateTransport, LongRunKeepsTransportMemoryBounded) {
  // 4096 cycles of the serial adder move ~4096 garbled tables plus OT and
  // output traffic; the transport must never buffer more than one cycle's
  // frames (in-memory FIFOs self-compact; the threaded ring is bounded by
  // construction).
  const netlist::Netlist nl = make_serial_adder();
  core::StreamProvider streams;
  streams.alice = [](std::uint64_t c) { return netlist::BitVec{(c & 1) != 0}; };
  streams.bob = [](std::uint64_t c) { return netlist::BitVec{(c & 3) == 2}; };
  RunOptions opts;
  opts.fixed_cycles = 4096;
  const RunResult mem = SkipGateDriver(nl, opts).run({}, {}, {}, &streams);
  EXPECT_GT(mem.stats.comm.total(), 4096u * 32);
  EXPECT_LE(mem.stats.transport_high_water_blocks, 16u);

  RunOptions topts = opts;
  topts.exec.transport = core::TransportKind::ThreadedPipe;
  topts.exec.pipe_blocks = 256;
  const RunResult piped = SkipGateDriver(nl, topts).run({}, {}, {}, &streams);
  expect_results_identical(mem, piped);
  EXPECT_LE(piped.stats.transport_high_water_blocks, 256u);
}

TEST(SkipGate, GarblingSchemesAllWork) {
  CircuitBuilder cb;
  const Bus a = cb.input_bus(netlist::Owner::Alice, 8, 0);
  const Bus b = cb.input_bus(netlist::Owner::Bob, 8, 0);
  cb.output_bus(mul_lower(cb, a, b, 8));
  const netlist::Netlist nl = cb.take();
  for (const auto scheme : {gc::Scheme::HalfGates, gc::Scheme::Grr3, gc::Scheme::Classic4}) {
    RunOptions opts;
    opts.fixed_cycles = 1;
    opts.scheme = scheme;
    SkipGateDriver driver(nl, opts);
    const RunResult r = driver.run(to_bits(13, 8), to_bits(11, 8));
    EXPECT_EQ(from_bits(r.final_outputs, 0, 8), (13u * 11u) & 0xFFu);
    EXPECT_EQ(r.stats.comm.garbled_table_bytes,
              r.stats.garbled_non_xor * 16 * gc::blocks_per_gate(scheme));
  }
}

}  // namespace
