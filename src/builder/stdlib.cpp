#include "builder/stdlib.h"

#include <algorithm>
#include <stdexcept>

namespace arm2gc::builder {

Bus bus_constant(CircuitBuilder& cb, std::uint64_t value, std::size_t width) {
  Bus bus;
  bus.reserve(width);
  for (std::size_t i = 0; i < width; ++i) bus.push_back(cb.constant(((value >> i) & 1u) != 0));
  return bus;
}

Bus zext(CircuitBuilder& cb, const Bus& a, std::size_t width) {
  Bus bus(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(std::min(width, a.size())));
  while (bus.size() < width) bus.push_back(cb.c0());
  return bus;
}

Bus sext(CircuitBuilder& cb, const Bus& a, std::size_t width) {
  if (a.empty()) return zext(cb, a, width);
  Bus bus(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(std::min(width, a.size())));
  while (bus.size() < width) bus.push_back(a.back());
  return bus;
}

Bus not_bus(const Bus& a) {
  Bus r;
  r.reserve(a.size());
  for (Wire w : a) r.push_back(CircuitBuilder::not_(w));
  return r;
}

namespace {
Bus zip(CircuitBuilder& cb, const Bus& a, const Bus& b, netlist::TruthTable tt) {
  if (a.size() != b.size()) throw std::invalid_argument("stdlib: bus width mismatch");
  Bus r;
  r.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r.push_back(cb.gate(tt, a[i], b[i]));
  return r;
}
}  // namespace

Bus xor_bus(CircuitBuilder& cb, const Bus& a, const Bus& b) { return zip(cb, a, b, netlist::kTtXor); }
Bus and_bus(CircuitBuilder& cb, const Bus& a, const Bus& b) { return zip(cb, a, b, netlist::kTtAnd); }
Bus or_bus(CircuitBuilder& cb, const Bus& a, const Bus& b) { return zip(cb, a, b, netlist::kTtOr); }
Bus andn_bus(CircuitBuilder& cb, const Bus& a, const Bus& b) {
  return zip(cb, a, b, netlist::kTtAndANotB);
}

Bus shl_const(CircuitBuilder& cb, const Bus& a, std::size_t n) {
  Bus r(a.size(), cb.c0());
  for (std::size_t i = n; i < a.size(); ++i) r[i] = a[i - n];
  return r;
}

Bus lshr_const(CircuitBuilder& cb, const Bus& a, std::size_t n) {
  Bus r(a.size(), cb.c0());
  for (std::size_t i = 0; i + n < a.size(); ++i) r[i] = a[i + n];
  return r;
}

Bus ashr_const(const Bus& a, std::size_t n) {
  Bus r(a.size(), a.empty() ? Wire{} : a.back());
  for (std::size_t i = 0; i + n < a.size(); ++i) r[i] = a[i + n];
  return r;
}

Bus ror_const(const Bus& a, std::size_t n) {
  Bus r(a.size(), Wire{});
  if (a.empty()) return r;
  const std::size_t w = a.size();
  for (std::size_t i = 0; i < w; ++i) r[i] = a[(i + n) % w];
  return r;
}

namespace {
Wire reduce(CircuitBuilder& cb, std::span<const Wire> bits, netlist::TruthTable tt,
            Wire empty_value) {
  if (bits.empty()) return empty_value;
  // Balanced tree keeps depth logarithmic (matters for planner locality, not
  // for GC cost).
  std::vector<Wire> level(bits.begin(), bits.end());
  while (level.size() > 1) {
    std::vector<Wire> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(cb.gate(tt, level[i], level[i + 1]));
    }
    if (level.size() % 2 != 0) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}
}  // namespace

Wire reduce_or(CircuitBuilder& cb, std::span<const Wire> bits) {
  return reduce(cb, bits, netlist::kTtOr, cb.c0());
}
Wire reduce_and(CircuitBuilder& cb, std::span<const Wire> bits) {
  return reduce(cb, bits, netlist::kTtAnd, cb.c1());
}
Wire reduce_xor(CircuitBuilder& cb, std::span<const Wire> bits) {
  return reduce(cb, bits, netlist::kTtXor, cb.c0());
}

Wire is_zero(CircuitBuilder& cb, const Bus& a) {
  return CircuitBuilder::not_(reduce_or(cb, a));
}

FullAdderOut full_adder(CircuitBuilder& cb, Wire a, Wire b, Wire c) {
  const Wire ac = cb.xor_(a, c);
  const Wire bc = cb.xor_(b, c);
  const Wire carry = cb.xor_(c, cb.and_(ac, bc));
  const Wire sum = cb.xor_(ac, b);
  return FullAdderOut{sum, carry};
}

AddOut add_full(CircuitBuilder& cb, const Bus& a, const Bus& b, Wire cin) {
  if (a.size() != b.size()) throw std::invalid_argument("add_full: width mismatch");
  AddOut out;
  out.sum.reserve(a.size());
  Wire carry = cin;
  Wire carry_prev = cb.c0();
  for (std::size_t i = 0; i < a.size(); ++i) {
    carry_prev = carry;
    const FullAdderOut fa = full_adder(cb, a[i], b[i], carry);
    out.sum.push_back(fa.sum);
    carry = fa.carry;
  }
  out.carry_out = carry;
  out.overflow = cb.xor_(carry, carry_prev);
  return out;
}

Bus add(CircuitBuilder& cb, const Bus& a, const Bus& b) {
  return add_full(cb, a, b, cb.c0()).sum;
}

AddOut sub_full(CircuitBuilder& cb, const Bus& a, const Bus& b) {
  return add_full(cb, a, not_bus(b), cb.c1());
}

Bus sub(CircuitBuilder& cb, const Bus& a, const Bus& b) { return sub_full(cb, a, b).sum; }

Bus inc(CircuitBuilder& cb, const Bus& a) {
  Bus sum;
  sum.reserve(a.size());
  Wire carry = cb.c1();
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum.push_back(cb.xor_(a[i], carry));
    if (i + 1 < a.size()) carry = cb.and_(a[i], carry);
  }
  return sum;
}

Wire eq(CircuitBuilder& cb, const Bus& a, const Bus& b) {
  return is_zero(cb, xor_bus(cb, a, b));
}

Wire ult(CircuitBuilder& cb, const Bus& a, const Bus& b) {
  // a < b  <=>  no carry out of a + ~b + 1. Only the borrow chain is built;
  // the sum gates would be dead logic (swept), so cost is n ANDs.
  if (a.size() != b.size()) throw std::invalid_argument("ult: width mismatch");
  Wire carry = cb.c1();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Wire ac = cb.xor_(a[i], carry);
    const Wire bc = cb.xor_(CircuitBuilder::not_(b[i]), carry);
    carry = cb.xor_(carry, cb.and_(ac, bc));
  }
  return CircuitBuilder::not_(carry);
}

Wire slt(CircuitBuilder& cb, const Bus& a, const Bus& b) {
  // LT = N != V on a - b (ARM condition semantics).
  const AddOut d = sub_full(cb, a, b);
  return cb.xor_(d.sum.back(), d.overflow);
}

namespace {
/// Reduces per-weight columns of bits with full/half adders until each column
/// holds one wire. Carries ripple into the next column; columns at or above
/// `width` are dropped (modular arithmetic). Shared by mul_lower/popcount.
Bus reduce_columns(CircuitBuilder& cb, std::vector<std::vector<Wire>> cols, std::size_t width) {
  cols.resize(width);
  for (std::size_t w = 0; w < width; ++w) {
    auto& col = cols[w];
    std::size_t head = 0;
    while (col.size() - head > 1) {
      if (col.size() - head >= 3) {
        const FullAdderOut fa = full_adder(cb, col[head], col[head + 1], col[head + 2]);
        head += 3;
        col.push_back(fa.sum);
        if (w + 1 < width) cols[w + 1].push_back(fa.carry);
      } else {
        const Wire s = cb.xor_(col[head], col[head + 1]);
        const Wire c = cb.and_(col[head], col[head + 1]);
        head += 2;
        col.push_back(s);
        if (w + 1 < width) cols[w + 1].push_back(c);
      }
    }
    col.erase(col.begin(), col.begin() + static_cast<std::ptrdiff_t>(head));
  }
  Bus out;
  out.reserve(width);
  for (std::size_t w = 0; w < width; ++w) out.push_back(cols[w].empty() ? cb.c0() : cols[w][0]);
  return out;
}
}  // namespace

Bus mul_lower(CircuitBuilder& cb, const Bus& a, const Bus& b, std::size_t out_width) {
  std::vector<std::vector<Wire>> cols(out_width);
  for (std::size_t j = 0; j < b.size() && j < out_width; ++j) {
    for (std::size_t i = 0; i < a.size() && i + j < out_width; ++i) {
      cols[i + j].push_back(cb.and_(a[i], b[j]));
    }
  }
  return reduce_columns(cb, std::move(cols), out_width);
}

Bus popcount(CircuitBuilder& cb, std::span<const Wire> bits) {
  std::size_t width = 1;
  while ((1ull << width) <= bits.size()) ++width;
  std::vector<std::vector<Wire>> cols(width);
  cols[0].assign(bits.begin(), bits.end());
  return reduce_columns(cb, std::move(cols), width);
}

Bus mux_bus(CircuitBuilder& cb, Wire sel, const Bus& t, const Bus& f) {
  if (t.size() != f.size()) throw std::invalid_argument("mux_bus: width mismatch");
  Bus r;
  r.reserve(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) r.push_back(cb.mux(sel, t[i], f[i]));
  return r;
}

Bus select(CircuitBuilder& cb, const Bus& sel, std::span<const Bus> options) {
  if (options.empty()) throw std::invalid_argument("select: no options");
  std::vector<Bus> level(options.begin(), options.end());
  for (std::size_t k = 0; k < sel.size() && level.size() > 1; ++k) {
    std::vector<Bus> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(mux_bus(cb, sel[k], level[i + 1], level[i]));
    }
    if (level.size() % 2 != 0) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

std::vector<Wire> decode_onehot(CircuitBuilder& cb, const Bus& sel) {
  // Expanding from the most significant select bit down keeps the result in
  // value order: after processing bit k, index bit 0 of `hot` corresponds to
  // sel[k], so the final index is exactly the select value.
  std::vector<Wire> hot{cb.c1()};
  for (std::size_t k = sel.size(); k-- > 0;) {
    std::vector<Wire> next(hot.size() * 2, Wire{});
    for (std::size_t i = 0; i < hot.size(); ++i) {
      next[2 * i] = cb.andn_(hot[i], sel[k]);  // hot & ~sel[k]
      next[2 * i + 1] = cb.and_(hot[i], sel[k]);
    }
    hot = std::move(next);
  }
  return hot;
}

Bus barrel_right(CircuitBuilder& cb, const Bus& v, const Bus& amt, Wire fill, bool rotate) {
  Bus cur = v;
  for (std::size_t k = 0; k < amt.size(); ++k) {
    const std::size_t sh = 1ull << k;
    if (sh >= cur.size() && !rotate) {
      // Shifting by >= width zeroes/sign-fills everything.
      Bus shifted(cur.size(), fill);
      cur = mux_bus(cb, amt[k], shifted, cur);
      continue;
    }
    Bus shifted(cur.size(), fill);
    const std::size_t w = cur.size();
    for (std::size_t i = 0; i < w; ++i) {
      const std::size_t src = i + sh;
      if (src < w) {
        shifted[i] = cur[src];
      } else if (rotate) {
        shifted[i] = cur[src % w];
      }
    }
    cur = mux_bus(cb, amt[k], shifted, cur);
  }
  return cur;
}

Bus barrel_left(CircuitBuilder& cb, const Bus& v, const Bus& amt, Wire fill) {
  Bus cur = v;
  for (std::size_t k = 0; k < amt.size(); ++k) {
    const std::size_t sh = 1ull << k;
    Bus shifted(cur.size(), fill);
    const std::size_t w = cur.size();
    for (std::size_t i = 0; i < w; ++i) {
      if (i >= sh && sh <= w) shifted[i] = cur[i - sh];
    }
    cur = mux_bus(cb, amt[k], shifted, cur);
  }
  return cur;
}

}  // namespace arm2gc::builder
