#include "core/evaluator.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "gc/ot.h"

namespace arm2gc::core {

namespace {
using crypto::Block;
using netlist::Dff;
using netlist::Gate;
using netlist::Owner;
using netlist::WireId;
}  // namespace

EvaluatorSession::EvaluatorSession(const netlist::Netlist& nl, Mode mode, gc::Scheme scheme,
                                   gc::Transport& tx)
    : nl_(nl),
      mode_(mode),
      scheme_(scheme),
      eval_(scheme),
      tx_(&tx),
      trace_(std::getenv("A2G_TRACE") != nullptr) {
  lb_.resize(nl_.num_wires());
  lb_valid_.assign(nl_.num_wires(), 0);
  const_lb_[0] = const_lb_[1] = Block{};
}

void EvaluatorSession::bind_recv(Owner owner, bool choice, Block& lb) {
  if (owner == Owner::Bob) {
    gc::OtReceiver receiver(*tx_);
    lb = receiver.receive(choice);
  } else {
    lb = tx_->recv();
  }
}

bool EvaluatorSession::bob_bit(std::uint32_t idx, const netlist::BitVec& bob,
                               const char* what) const {
  if (idx >= bob.size()) {
    throw std::out_of_range(std::string("skipgate: missing ") + what + " bit " +
                            std::to_string(idx));
  }
  return bob[idx];
}

void EvaluatorSession::reset(const netlist::BitVec& bob_bits) {
  const bool skipgate = mode_ == Mode::SkipGate;

  if (!skipgate) {
    bind_recv(Owner::Public, false, const_lb_[0]);
    bind_recv(Owner::Public, false, const_lb_[1]);
  }

  fixed_lb_.assign(nl_.inputs.size(), Block{});
  for (std::size_t i = 0; i < nl_.inputs.size(); ++i) {
    const netlist::Input& in = nl_.inputs[i];
    if (in.streamed) continue;
    if (in.owner == Owner::Public && skipgate) continue;
    const bool choice =
        in.owner == Owner::Bob && bob_bit(in.bit_index, bob_bits, "fixed input");
    bind_recv(in.owner, choice, fixed_lb_[i]);
  }

  dff_lb_.assign(nl_.dffs.size(), Block{});
  dff_lb_valid_.assign(nl_.dffs.size(), 1);
  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    const Dff& d = nl_.dffs[i];
    switch (d.init) {
      case Dff::Init::Zero:
      case Dff::Init::One:
        if (!skipgate) bind_recv(Owner::Public, false, dff_lb_[i]);
        break;
      case Dff::Init::AliceBit:
        bind_recv(Owner::Alice, false, dff_lb_[i]);
        break;
      case Dff::Init::BobBit:
        bind_recv(Owner::Bob, bob_bit(d.init_index, bob_bits, "Bob dff init"), dff_lb_[i]);
        break;
    }
  }
}

void EvaluatorSession::begin_cycle(const netlist::BitVec& bob_stream) {
  const bool skipgate = mode_ == Mode::SkipGate;
  lb_[netlist::kConst0] = const_lb_[0];
  lb_[netlist::kConst1] = const_lb_[1];
  lb_valid_[netlist::kConst0] = 1;
  lb_valid_[netlist::kConst1] = 1;

  for (std::size_t i = 0; i < nl_.inputs.size(); ++i) {
    const netlist::Input& in = nl_.inputs[i];
    const WireId w = nl_.input_wire(i);
    if (!in.streamed) {
      lb_[w] = fixed_lb_[i];
      lb_valid_[w] = 1;
      continue;
    }
    if (in.owner == Owner::Public && skipgate) continue;  // public wire, no label
    const bool choice =
        in.owner == Owner::Bob && bob_bit(in.bit_index, bob_stream, "streamed input");
    bind_recv(in.owner, choice, lb_[w]);
    lb_valid_[w] = 1;
  }

  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    const WireId w = nl_.dff_wire(i);
    lb_[w] = dff_lb_[i];
    lb_valid_[w] = dff_lb_valid_[i];
  }
}

void EvaluatorSession::eval_cycle(const CyclePlan& plan, std::uint64_t cycle) {
  const WireId first_gate = nl_.first_gate_wire();
  const bool conventional = mode_ == Mode::Conventional;
  for (std::size_t si = 0; si < plan.num_slices; ++si) {
    const PlanSlice& sl = plan.slices[si];
    // SkipGate slices carry an explicit work list of their live gates;
    // Conventional mode processes every gate. Skipped gates keep stale
    // labels, which is sound: a live gate's inputs are always live-produced
    // (or roots) by the backward sweep's needed-closure, and every
    // label-validity consumer (outputs, latched flip-flops) checks
    // publicness first.
    const std::uint32_t n = conventional ? sl.count : sl.work_count;
    for (std::uint32_t k = 0; k < n; ++k) {
      const std::uint32_t j = conventional ? k : sl.work[k];
      const std::size_t i = sl.first_gate + j;
      const WireId w = first_gate + static_cast<WireId>(i);
      const Gate g = nl_.gates[i];
      switch (sl.action(j)) {
        case PlanAct::Public:
          lb_valid_[w] = 0;
          break;
        case PlanAct::PassA:
          // Free-XOR: inverting a wire does not change the evaluator's label.
          lb_[w] = lb_[g.a];
          lb_valid_[w] = lb_valid_[g.a];
          break;
        case PlanAct::PassB:
          lb_[w] = lb_[g.b];
          lb_valid_[w] = lb_valid_[g.b];
          break;
        case PlanAct::PassC0:
          lb_[w] = lb_[netlist::kConst0];
          lb_valid_[w] = lb_valid_[netlist::kConst0];
          break;
        case PlanAct::PassC1:
          lb_[w] = lb_[netlist::kConst1];
          lb_valid_[w] = lb_valid_[netlist::kConst1];
          break;
        case PlanAct::PassSrc:
          lb_[w] = lb_[sl.pass_src[j]];
          lb_valid_[w] = lb_valid_[sl.pass_src[j]];
          break;
        case PlanAct::FreeXor:
          lb_[w] = lb_[g.a] ^ lb_[g.b];
          lb_valid_[w] = lb_valid_[g.a] & lb_valid_[g.b];
          break;
        case PlanAct::Garble: {
          if (!sl.emit[j]) {
            // Paper Alg. 5 line 18: a skipped gate's output is tracked as an
            // opaque secret; fingerprints already play that role, so no label.
            lb_valid_[w] = 0;
            break;
          }
          if (!lb_valid_[g.a] || !lb_valid_[g.b]) {
            throw std::logic_error("skipgate: evaluator missing label for a needed gate");
          }
          gc::GarbledTable table;
          table.count = static_cast<std::uint8_t>(gc::blocks_per_gate(scheme_));
          tx_->recv(table.rows.data(), table.count);
          lb_[w] = eval_.eval(lb_[g.a], lb_[g.b], table);
          lb_valid_[w] = 1;
          if (trace_) {
            std::fprintf(stderr, "emit cycle=%llu gate=%zu a=%u b=%u tt=%d\n",
                         static_cast<unsigned long long>(cycle), i, g.a, g.b,
                         static_cast<int>(g.tt));
          }
          break;
        }
      }
    }
  }
}

void EvaluatorSession::send_outputs(const CyclePlan& plan) {
  for (const netlist::OutputPort& o : nl_.outputs) {
    if (plan.wire_public(o.wire)) continue;
    if (!lb_valid_[o.wire]) {
      throw std::logic_error("skipgate: evaluator has no label for an output wire");
    }
    tx_->send(lb_[o.wire], gc::Traffic::OutputDecode);
  }
}

void EvaluatorSession::latch(const CyclePlan& plan) {
  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    const Dff& d = nl_.dffs[i];
    if (!plan.wire_public(d.d)) {
      dff_lb_[i] = lb_[d.d];
      dff_lb_valid_[i] = lb_valid_[d.d];
    }
  }
}

}  // namespace arm2gc::core
