// Minimal AES-128 (encryption only), the primitive behind the fixed-key
// garbling hash and the deterministic random generator.
//
// Two interchangeable backends produce bit-identical ciphertexts:
//   - a portable table-based implementation (always available), and
//   - an AES-NI implementation (src/crypto/aesni.cpp, the only translation
//     unit compiled with -maes) selected at runtime via CPUID.
// Set ARM2GC_DISABLE_AESNI=1 in the environment to force the portable path.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "crypto/block.h"

namespace arm2gc::crypto {

/// AES-128 in encrypt-only mode. The expanded key schedule is precomputed at
/// construction; `encrypt`/`encrypt_batch` are pure functions of the state.
class Aes128 {
 public:
  /// Backend selection. `Auto` picks AES-NI when available; an explicit
  /// `AesNi` request silently falls back to `Portable` when the CPU (or the
  /// ARM2GC_DISABLE_AESNI override) rules it out, so forced-backend instances
  /// are always usable — check `uses_aesni()` when the distinction matters.
  enum class Backend : std::uint8_t { Auto, Portable, AesNi };

  /// Expands `key` (16 bytes, little-endian Block encoding) into 11 round keys.
  explicit Aes128(Block key, Backend backend = Backend::Auto);

  /// Encrypts one 16-byte block (ECB, single block).
  [[nodiscard]] Block encrypt(Block plaintext) const;

  /// Encrypts `n` independent blocks in place. The AES-NI backend pipelines
  /// up to 8 blocks through the AES unit at once, which is where the batched
  /// garbling-hash speedup comes from; results equal `n` scalar `encrypt`s.
  void encrypt_batch(Block* io, std::size_t n) const;

  /// True iff this instance dispatches to the AES-NI implementation.
  [[nodiscard]] bool uses_aesni() const { return use_aesni_; }

  /// True iff AES-NI is compiled in, supported by this CPU, and not disabled
  /// via the ARM2GC_DISABLE_AESNI environment variable (checked once).
  static bool aesni_available();

 private:
  [[nodiscard]] Block encrypt_portable(Block plaintext) const;

  // 11 round keys, 4 words each, stored column-major as in FIPS-197
  // (the portable backend's working format).
  std::array<std::uint32_t, 44> round_keys_{};
  // The same round keys in FIPS byte order, 16 bytes per round; the AES-NI
  // backend loads these directly into vector registers.
  alignas(16) std::array<std::uint8_t, 176> round_key_bytes_{};
  bool use_aesni_ = false;
};

}  // namespace arm2gc::crypto
