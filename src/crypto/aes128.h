// Minimal software AES-128 (encryption only), the primitive behind the
// fixed-key garbling hash and the deterministic random generator.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/block.h"

namespace arm2gc::crypto {

/// AES-128 in encrypt-only mode. The expanded key schedule is precomputed at
/// construction; `encrypt` is a pure function of the state afterwards.
class Aes128 {
 public:
  /// Expands `key` (16 bytes, little-endian Block encoding) into 11 round keys.
  explicit Aes128(Block key);

  /// Encrypts one 16-byte block (ECB, single block).
  [[nodiscard]] Block encrypt(Block plaintext) const;

 private:
  // 11 round keys, 4 words each, stored column-major as in FIPS-197.
  std::array<std::uint32_t, 44> round_keys_{};
};

}  // namespace arm2gc::crypto
