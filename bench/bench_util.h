// Shared table-printing helpers for the paper-reproduction benchmarks.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace benchutil {

inline void header(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

inline void row4(const std::string& name, const std::string& c1, const std::string& c2,
                 const std::string& c3, const std::string& c4) {
  std::printf("%-22s %16s %16s %16s %12s\n", name.c_str(), c1.c_str(), c2.c_str(), c3.c_str(),
              c4.c_str());
}

inline std::string num(std::uint64_t v) {
  // Built left-to-right (instead of insert-from-the-right) to sidestep the
  // GCC 12 -Wrestrict false positive on std::string::insert (PR 105329).
  const std::string digits = std::to_string(v);
  std::string s;
  s.reserve(digits.size() + digits.size() / 3);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (digits.size() - i) % 3 == 0) s.push_back(',');
    s.push_back(digits[i]);
  }
  return s;
}

inline std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f%%", v);
  return buf;
}

inline std::string ratio_k(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0fx", v);
  return buf;
}

}  // namespace benchutil
