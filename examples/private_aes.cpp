// Two-party AES: Bob holds a key, Alice a plaintext block; they compute the
// ciphertext without revealing either (a classic GC benchmark, e.g. for
// oblivious PRF evaluation). Runs on the sequential AES circuit with the
// tower-field S-box; SkipGate skips the public key-schedule controller.
#include <cstdio>

#include "circuits/reference.h"
#include "circuits/tg_circuits.h"

int main() {
  using namespace arm2gc;

  std::array<std::uint8_t, 16> pt{}, key{};
  for (int i = 0; i < 16; ++i) {
    pt[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0xA0 + i);
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(2 * i + 1);
  }

  const circuits::TgInstance inst = circuits::tg_aes128(pt, key);
  const circuits::TgRun run = circuits::run_instance(inst, core::Mode::SkipGate);
  const auto expect = circuits::aes128_encrypt(key, pt);

  std::printf("two-party AES-128 (Alice: plaintext, Bob: key)\n");
  std::printf("ciphertext: ");
  for (int w = 0; w < 2; ++w) {
    for (int b = 0; b < 8; ++b) {
      std::printf("%02x", static_cast<unsigned>((run.results[static_cast<std::size_t>(w)] >>
                                                 (8 * b)) & 0xff));
    }
  }
  std::printf("\nreference : ");
  for (const std::uint8_t b : expect) std::printf("%02x", b);
  std::printf("\ngarbled non-XOR: %llu (paper: 6,400 with the 32-AND Boyar-Peralta S-box; "
              "ours uses a 36-AND tower-field S-box)\n",
              static_cast<unsigned long long>(run.stats.garbled_non_xor));
  return 0;
}
