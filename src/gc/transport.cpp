#include "gc/transport.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace arm2gc::gc {

namespace {
/// Partially drained FIFOs drop their delivered prefix once it exceeds this
/// many blocks, so memory stays proportional to the undelivered backlog.
constexpr std::size_t kCompactChunkBlocks = 4096;
}  // namespace

// ---------------------------------------------------------------------------
// InMemoryDuplex
// ---------------------------------------------------------------------------

void InMemoryDuplex::Fifo::push(const crypto::Block* b, std::size_t n) {
  blocks.insert(blocks.end(), b, b + n);
  high_water = std::max(high_water, blocks.size() - read_pos);
}

void InMemoryDuplex::Fifo::pop(crypto::Block* out, std::size_t n) {
  if (blocks.size() - read_pos < n) throw std::runtime_error("transport: underrun");
  std::memcpy(out, blocks.data() + read_pos, n * sizeof(crypto::Block));
  read_pos += n;
  if (read_pos == blocks.size()) {
    blocks.clear();
    read_pos = 0;
  } else if (read_pos >= kCompactChunkBlocks) {
    blocks.erase(blocks.begin(), blocks.begin() + static_cast<std::ptrdiff_t>(read_pos));
    read_pos = 0;
  }
}

namespace {

/// Shared Transport adapter over any queue with push/pop of block spans.
/// One implementation keeps the byte accounting of every duplex identical —
/// the tests pin in-memory and threaded byte counts against each other.
template <typename Queue>
class QueueEnd : public Transport {
 public:
  QueueEnd(Queue& out, Queue& in, CommStats& sent) : out_(out), in_(in), sent_(sent) {}

  void send(const crypto::Block* blocks, std::size_t n, Traffic t) override {
    out_.push(blocks, n);
    sent_.add(t, 16 * n);
  }
  void recv(crypto::Block* out, std::size_t n) override { in_.pop(out, n); }
  void account(Traffic t, std::uint64_t bytes) override { sent_.add(t, bytes); }

 private:
  Queue& out_;
  Queue& in_;
  CommStats& sent_;
};

}  // namespace

class InMemoryDuplex::End final : public QueueEnd<InMemoryDuplex::Fifo> {
  using QueueEnd::QueueEnd;
};

InMemoryDuplex::InMemoryDuplex()
    : garbler_end_(std::make_unique<End>(a_to_b_, b_to_a_, garbler_sent_)),
      evaluator_end_(std::make_unique<End>(b_to_a_, a_to_b_, evaluator_sent_)) {}

InMemoryDuplex::~InMemoryDuplex() = default;

Transport& InMemoryDuplex::garbler_end() { return *garbler_end_; }
Transport& InMemoryDuplex::evaluator_end() { return *evaluator_end_; }

CommStats InMemoryDuplex::stats() const {
  CommStats s = garbler_sent_;
  s += evaluator_sent_;
  return s;
}

std::size_t InMemoryDuplex::high_water_blocks() const {
  return std::max(a_to_b_.high_water, b_to_a_.high_water);
}

// ---------------------------------------------------------------------------
// ThreadedPipeDuplex
// ---------------------------------------------------------------------------

namespace {
/// Spin budget before sleeping on a condition variable. The parties run in
/// near lock-step, so the matching send/recv usually lands within a few
/// microseconds — far cheaper to spin for than a futex sleep/wake pair. On a
/// single-core host spinning only steals the peer's timeslice, so it is
/// disabled there.
int spin_iterations() {
  static const int kSpin = std::thread::hardware_concurrency() > 1 ? (1 << 14) : 0;
  return kSpin;
}
}  // namespace

void ThreadedPipeDuplex::Pipe::push(const crypto::Block* b, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    for (int s = spin_iterations();
         s > 0 && count.load(std::memory_order_acquire) == ring.size() &&
         !closed.load(std::memory_order_acquire);
         --s) {
    }
    std::unique_lock<std::mutex> lock(m);
    not_full.wait(lock, [&] {
      return closed.load(std::memory_order_relaxed) ||
             count.load(std::memory_order_relaxed) < ring.size();
    });
    if (closed.load(std::memory_order_relaxed)) throw TransportClosed();
    const std::size_t used = count.load(std::memory_order_relaxed);
    const std::size_t take = std::min(ring.size() - used, n - done);
    for (std::size_t i = 0; i < take; ++i) {
      ring[head] = b[done + i];
      head = head + 1 == ring.size() ? 0 : head + 1;
    }
    count.store(used + take, std::memory_order_release);
    high_water = std::max(high_water, used + take);
    done += take;
    lock.unlock();
    not_empty.notify_one();
  }
}

void ThreadedPipeDuplex::Pipe::pop(crypto::Block* out, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    for (int s = spin_iterations(); s > 0 && count.load(std::memory_order_acquire) == 0 &&
                                    !closed.load(std::memory_order_acquire);
         --s) {
    }
    std::unique_lock<std::mutex> lock(m);
    not_empty.wait(lock, [&] {
      return closed.load(std::memory_order_relaxed) ||
             count.load(std::memory_order_relaxed) > 0;
    });
    const std::size_t used = count.load(std::memory_order_relaxed);
    if (used == 0) throw TransportClosed();
    const std::size_t take = std::min(used, n - done);
    for (std::size_t i = 0; i < take; ++i) {
      out[done + i] = ring[tail];
      tail = tail + 1 == ring.size() ? 0 : tail + 1;
    }
    count.store(used - take, std::memory_order_release);
    done += take;
    lock.unlock();
    not_full.notify_one();
  }
}

void ThreadedPipeDuplex::Pipe::close() {
  {
    std::lock_guard<std::mutex> lock(m);
    closed.store(true, std::memory_order_release);
  }
  not_full.notify_all();
  not_empty.notify_all();
}

class ThreadedPipeDuplex::End final : public QueueEnd<ThreadedPipeDuplex::Pipe> {
  using QueueEnd::QueueEnd;
};

ThreadedPipeDuplex::ThreadedPipeDuplex(std::size_t capacity_blocks)
    : capacity_(std::max<std::size_t>(capacity_blocks, 16)),
      a_to_b_(capacity_),
      b_to_a_(capacity_),
      garbler_end_(std::make_unique<End>(a_to_b_, b_to_a_, garbler_sent_)),
      evaluator_end_(std::make_unique<End>(b_to_a_, a_to_b_, evaluator_sent_)) {}

ThreadedPipeDuplex::~ThreadedPipeDuplex() = default;

Transport& ThreadedPipeDuplex::garbler_end() { return *garbler_end_; }
Transport& ThreadedPipeDuplex::evaluator_end() { return *evaluator_end_; }

void ThreadedPipeDuplex::close() {
  a_to_b_.close();
  b_to_a_.close();
}

CommStats ThreadedPipeDuplex::stats() const {
  CommStats s = garbler_sent_;
  s += evaluator_sent_;
  return s;
}

std::size_t ThreadedPipeDuplex::high_water_blocks() const {
  return std::max(a_to_b_.high_water, b_to_a_.high_water);
}

}  // namespace arm2gc::gc
