// Golden-digest fixture: garbles a fixed, deterministic gate sequence and
// digests the resulting table bytes, per scheme. Shared by tests/gc_test.cpp
// (which pins the expected hex values) and tools/golden_capture.cpp (which
// regenerates them) so the two computations cannot drift apart.
#pragma once

#include <string>

#include "crypto/block.h"
#include "gc/garble.h"
#include "netlist/gate.h"

namespace arm2gc::gc {

inline std::string golden_table_digest(Scheme scheme) {
  const netlist::TruthTable non_affine[] = {
      netlist::kTtAnd,      netlist::kTtNand,     netlist::kTtOr,
      netlist::kTtNor,      netlist::kTtAndANotB, netlist::kTtNotAAndB,
      netlist::kTtOrANotB,  netlist::kTtOrNotAB,
  };
  // Simple strong-enough mixing: rotate-xor with gf_double.
  const auto mix = [](crypto::Block acc, crypto::Block v) {
    return acc.gf_double() ^ v;
  };
  Garbler g(crypto::block_from_u64(0xa26c0de), scheme);
  crypto::Block a0 = g.fresh_label();
  crypto::Block b0 = g.fresh_label();
  crypto::Block acc{};
  for (int i = 0; i < 64; ++i) {
    GarbledTable t;
    const crypto::Block out =
        g.garble(a0, b0, netlist::tt_and_core(non_affine[i % 8]), t);
    for (std::uint8_t k = 0; k < t.count; ++k) acc = mix(acc, t.rows[k]);
    acc = mix(acc, out);
    // Chain labels so later gates depend on earlier outputs.
    a0 = b0;
    b0 = out;
  }
  return acc.hex();
}

}  // namespace arm2gc::gc
