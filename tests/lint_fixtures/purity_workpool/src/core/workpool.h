// Fixture: worker pool that grows a transport dependency. plan.cpp includes
// this header, so the serialization boundary leaks into the planner's
// include closure — the purity rule must attribute the finding HERE, not to
// the planner file that (legitimately) includes the pool.
#pragma once
#include "gc/transport.h"
namespace fix::core {
class WorkPool {
 public:
  explicit WorkPool(unsigned threads) : threads_(threads) {}
  unsigned threads() const { return threads_; }

 private:
  unsigned threads_ = 1;
};
}  // namespace fix::core
