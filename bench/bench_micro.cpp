// Microbenchmarks (google-benchmark): garbling primitives and protocol
// throughput. These are our own instrumentation, not a paper table: the
// paper's metric is communication, but local compute must stay linear
// (SkipGate's complexity argument, §3.4).
#include <benchmark/benchmark.h>

#include "builder/circuit_builder.h"
#include "builder/stdlib.h"
#include "core/skipgate.h"
#include "crypto/aes128.h"
#include "crypto/prf.h"
#include "gc/garble.h"

using namespace arm2gc;

static void BM_Aes128Encrypt(benchmark::State& state) {
  const crypto::Aes128 aes(crypto::block_from_u64(1));
  crypto::Block x = crypto::block_from_u64(2);
  for (auto _ : state) {
    x = aes.encrypt(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Aes128Encrypt);

static void BM_GarbleHash(benchmark::State& state) {
  const crypto::GarbleHash h;
  crypto::Block x = crypto::block_from_u64(3);
  std::uint64_t t = 0;
  for (auto _ : state) {
    x = h(x, t++);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_GarbleHash);

static void BM_HalfGatesGarble(benchmark::State& state) {
  gc::Garbler g(crypto::block_from_u64(4));
  const crypto::Block a0 = g.fresh_label();
  const crypto::Block b0 = g.fresh_label();
  const netlist::AndCore core = netlist::tt_and_core(netlist::kTtAnd);
  for (auto _ : state) {
    gc::GarbledTable t;
    benchmark::DoNotOptimize(g.garble(a0, b0, core, t));
  }
}
BENCHMARK(BM_HalfGatesGarble);

static void BM_HalfGatesEval(benchmark::State& state) {
  gc::Garbler g(crypto::block_from_u64(5));
  gc::Evaluator e;
  const crypto::Block a0 = g.fresh_label();
  const crypto::Block b0 = g.fresh_label();
  gc::GarbledTable t;
  const crypto::Block w0 = g.garble(a0, b0, netlist::tt_and_core(netlist::kTtAnd), t);
  benchmark::DoNotOptimize(w0);
  for (auto _ : state) {
    gc::Evaluator fresh;
    benchmark::DoNotOptimize(fresh.eval(a0, b0, t));
  }
}
BENCHMARK(BM_HalfGatesEval);

/// End-to-end protocol throughput on a 32x32 multiplier, per mode.
static void BM_ProtocolMul32(benchmark::State& state) {
  builder::CircuitBuilder cb;
  const builder::Bus a = cb.input_bus(netlist::Owner::Alice, 32, 0);
  const builder::Bus b = cb.input_bus(netlist::Owner::Bob, 32, 0);
  cb.output_bus(builder::mul_lower(cb, a, b, 32));
  const netlist::Netlist nl = cb.take();
  netlist::BitVec av(32, true), bv(32, false);
  core::RunOptions opts;
  opts.mode = state.range(0) == 0 ? core::Mode::SkipGate : core::Mode::Conventional;
  opts.fixed_cycles = 1;
  for (auto _ : state) {
    core::SkipGateDriver driver(nl, opts);
    benchmark::DoNotOptimize(driver.run(av, bv));
  }
  state.SetLabel(state.range(0) == 0 ? "skipgate" : "conventional");
}
BENCHMARK(BM_ProtocolMul32)->Arg(0)->Arg(1);

BENCHMARK_MAIN();
