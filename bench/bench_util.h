// Shared table-printing helpers for the paper-reproduction benchmarks.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace benchutil {

inline void header(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

inline void row4(const std::string& name, const std::string& c1, const std::string& c2,
                 const std::string& c3, const std::string& c4) {
  std::printf("%-22s %16s %16s %16s %12s\n", name.c_str(), c1.c_str(), c2.c_str(), c3.c_str(),
              c4.c_str());
}

inline std::string num(std::uint64_t v) {
  std::string s = std::to_string(v);
  for (int pos = static_cast<int>(s.size()) - 3; pos > 0; pos -= 3) {
    s.insert(static_cast<std::size_t>(pos), ",");
  }
  return s;
}

inline std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f%%", v);
  return buf;
}

inline std::string ratio_k(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0fx", v);
  return buf;
}

}  // namespace benchutil
