// Differential OT harness: the IKNP extension backend must be a perfect
// drop-in for the ideal-functionality stand-in. Pinned here:
//   - the 128xN bit transpose (SSE vs portable vs naive, ragged N included);
//   - endpoint-level correctness: received labels equal x0 ^ b*R for every
//     index, over both the lock-step in-memory duplex and the threaded pipe,
//     across multiple batches of one warm state pair;
//   - full-driver equivalence: SkipGate + Conventional runs produce
//     bit-identical results and golden garbled-table digests under either
//     backend (fuzzed circuits; A2G_OT_FUZZ_ITERS deepens the sweep in CI);
//   - CommStats OT bytes equal the transport's actual framed byte count
//     (the PR-3-era constant-accounting assumption, now a regression);
//   - transcript privacy: the sender's received transcript is independent
//     of the receiver's choices up to the one-time-pad structure;
//   - a mismatched base-OT pairing is detected, not silently wrong.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "arm/arm2gc.h"
#include "arm/assembler.h"
#include "builder/circuit_builder.h"
#include "builder/stdlib.h"
#include "core/skipgate.h"
#include "crypto/rng.h"
#include "crypto/transpose.h"
#include "gc/garble.h"
#include "gc/otext.h"
#include "gc/transport.h"
#include "test_util.h"

namespace {

using namespace arm2gc;
using crypto::Block;
using crypto::block_from_u64;
using a2gtest::to_bits;

int fuzz_iters(int dflt) {
  if (const char* env = std::getenv("A2G_OT_FUZZ_ITERS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return dflt;
}

// --- 128xN bit transpose --------------------------------------------------------

bool naive_bit(const std::vector<std::uint8_t>& rows, std::size_t stride, std::size_t r,
               std::size_t c) {
  return (rows[r * stride + c / 8] >> (c % 8)) & 1u;
}

TEST(Transpose, SseAndPortableMatchNaiveOnRaggedWidths) {
  crypto::CtrRng rng(block_from_u64(808));
  for (const std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{8}, std::size_t{13},
                              std::size_t{64}, std::size_t{100}, std::size_t{128},
                              std::size_t{129}, std::size_t{257}, std::size_t{1000}}) {
    const std::size_t stride = (n + 7) / 8;
    std::vector<std::uint8_t> rows(128 * stride);
    for (auto& b : rows) b = static_cast<std::uint8_t>(rng.next_u64());

    std::vector<Block> fast(n), portable(n);
    crypto::transpose_128xn(rows.data(), stride, n, fast.data());
    crypto::transpose_128xn_portable(rows.data(), stride, n, portable.data());
    for (std::size_t c = 0; c < n; ++c) {
      EXPECT_TRUE(fast[c] == portable[c]) << "n=" << n << " col=" << c;
      for (std::size_t r = 0; r < 128; ++r) {
        const bool bit = r < 64 ? ((fast[c].lo >> r) & 1u) != 0
                                : ((fast[c].hi >> (r - 64)) & 1u) != 0;
        ASSERT_EQ(bit, naive_bit(rows, stride, r, c)) << "n=" << n << " r=" << r << " c=" << c;
      }
    }
  }
}

TEST(Transpose, RoundTripThroughDoubleTranspose) {
  // Transposing 128x128 twice must be the identity.
  crypto::CtrRng rng(block_from_u64(909));
  std::vector<std::uint8_t> rows(128 * 16);
  for (auto& b : rows) b = static_cast<std::uint8_t>(rng.next_u64());
  std::vector<Block> once(128), twice(128);
  crypto::transpose_128xn(rows.data(), 16, 128, once.data());
  std::vector<std::uint8_t> once_bytes(128 * 16);
  for (std::size_t i = 0; i < 128; ++i) once[i].to_bytes(once_bytes.data() + 16 * i);
  crypto::transpose_128xn(once_bytes.data(), 16, 128, twice.data());
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_TRUE(twice[i] == Block::from_bytes(rows.data() + 16 * i)) << i;
  }
}

// --- endpoint-level IKNP --------------------------------------------------------

/// Runs `batches` lock-step batches of random choices through one endpoint
/// pair over an in-memory duplex and checks every delivered label.
void run_iknp_batches(const std::vector<std::size_t>& batch_sizes, std::uint64_t seed_lo) {
  gc::InMemoryDuplex duplex;
  const Block seed = block_from_u64(seed_lo);
  auto sender = gc::make_ot_sender(gc::OtBackend::Iknp, duplex.garbler_end(), seed, nullptr);
  auto receiver =
      gc::make_ot_receiver(gc::OtBackend::Iknp, duplex.evaluator_end(), seed, nullptr);

  gc::Garbler g(block_from_u64(seed_lo * 31 + 7));
  crypto::CtrRng rng(block_from_u64(seed_lo * 131 + 1));
  for (const std::size_t m : batch_sizes) {
    std::vector<Block> x0(m);
    std::vector<bool> choice(m);
    std::vector<Block> got(m);
    for (std::size_t j = 0; j < m; ++j) {
      x0[j] = g.fresh_label();
      choice[j] = rng.next_bool();
      receiver->enqueue(choice[j], &got[j]);
    }
    receiver->request();
    for (std::size_t j = 0; j < m; ++j) sender->enqueue(x0[j], x0[j] ^ g.R());
    sender->flush();
    receiver->finish();
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_TRUE(got[j] == (choice[j] ? x0[j] ^ g.R() : x0[j]))
          << "m=" << m << " j=" << j;
    }
  }
  EXPECT_EQ(sender->stats().base_ots, gc::kOtKappa);
  EXPECT_EQ(receiver->stats().base_ots, gc::kOtKappa);
  EXPECT_EQ(sender->stats().batches, batch_sizes.size());
}

TEST(OtExt, IknpDeliversChosenLabelsAcrossBatches) {
  run_iknp_batches({1}, 1);
  run_iknp_batches({7, 1, 128}, 2);
  run_iknp_batches({160, 3, 300, 8}, 3);
}

TEST(OtExt, IknpOverThreadedPipe) {
  gc::ThreadedPipeDuplex duplex(256);
  const Block seed = block_from_u64(42);
  gc::Garbler g(block_from_u64(4242));
  const Block r = g.R();
  constexpr std::size_t kM = 200;
  std::vector<Block> x0(kM);
  for (auto& b : x0) b = g.fresh_label();

  std::thread sender_thread([&] {
    auto sender = gc::make_ot_sender(gc::OtBackend::Iknp, duplex.garbler_end(), seed, nullptr);
    for (std::size_t j = 0; j < kM; ++j) sender->enqueue(x0[j], x0[j] ^ r);
    sender->flush();
    for (std::size_t j = 0; j < kM; ++j) sender->enqueue(x0[j] ^ r, x0[j]);
    sender->flush();
  });

  auto receiver =
      gc::make_ot_receiver(gc::OtBackend::Iknp, duplex.evaluator_end(), seed, nullptr);
  crypto::CtrRng rng(block_from_u64(777));
  for (int batch = 0; batch < 2; ++batch) {
    std::vector<bool> choice(kM);
    std::vector<Block> got(kM);
    for (std::size_t j = 0; j < kM; ++j) {
      choice[j] = rng.next_bool();
      receiver->enqueue(choice[j], &got[j]);
    }
    receiver->request();
    receiver->finish();
    for (std::size_t j = 0; j < kM; ++j) {
      const Block lo = batch == 0 ? x0[j] : x0[j] ^ r;
      const Block hi = batch == 0 ? x0[j] ^ r : x0[j];
      EXPECT_TRUE(got[j] == (choice[j] ? hi : lo)) << "batch=" << batch << " j=" << j;
    }
  }
  sender_thread.join();
}

// --- framed-byte accounting -----------------------------------------------------

/// Exact IKNP wire cost: base phase (sid + kappa seed pairs) once, then per
/// batch one header, one check block, 8*ceil(m/8) column blocks and 2m
/// ciphertexts.
std::uint64_t iknp_bytes(const std::vector<std::size_t>& batch_sizes) {
  std::uint64_t total = 16 * (1 + 2 * gc::kOtKappa);
  for (const std::size_t m : batch_sizes) {
    total += 16 * (2 + 8 * ((m + 7) / 8) + 2 * m);
  }
  return total;
}

/// Exact Precomp wire cost for one cold endpoint pair (no maintain calls):
/// replays the deterministic emergency-refill rule — whenever a batch finds
/// fewer than m pooled OTs, both sides refill max(target, m) through the
/// inner IKNP pair (base phase folded into the first refill) — then prices
/// each online batch at one correction frame plus 2m masked pads. Returns
/// {total framed bytes, online-only bytes}.
std::pair<std::uint64_t, std::uint64_t> precomp_bytes(const std::vector<std::size_t>& batch_sizes,
                                                      std::size_t target) {
  std::uint64_t total = 0;
  std::uint64_t online = 0;
  std::size_t avail = 0;
  bool based = false;
  for (const std::size_t m : batch_sizes) {
    if (avail < m) {
      const std::size_t n = target > m ? target : m;
      if (!based) total += 16 * (1 + 2 * gc::kOtKappa);
      based = true;
      total += 16 * (2 + 8 * ((n + 7) / 8) + 2 * n);
      avail += n;
    }
    const std::size_t extra = m > 64 ? (m - 64 + 127) / 128 : 0;
    const std::uint64_t frame = 16 * (1 + extra + 2 * m);
    total += frame;
    online += frame;
    avail -= m;
  }
  return {total, online};
}

TEST(OtExt, CommStatsPrecompBytesMatchActualFramedBytes) {
  // Same regression as the IKNP pin below, for the precomputed backend: the
  // transport's framed accounting must equal the closed-form wire cost, and
  // the endpoints' online_bytes stat must carve out exactly the
  // derandomization exchanges (the refill traffic is the offline remainder).
  for (const auto& [sizes, target] :
       {std::pair<std::vector<std::size_t>, std::size_t>{{1}, 1024},
        {{5, 160}, 64},                // second batch outgrows the pool
        {{1, 1, 1}, 1},                // every batch pays an emergency refill
        {{64, 65, 200}, 32}}) {        // correction bits past the header block
    gc::InMemoryDuplex duplex;
    const Block seed = block_from_u64(99);
    auto sender = gc::make_ot_sender(gc::OtBackend::Precomp, duplex.garbler_end(), seed,
                                     nullptr, nullptr, target);
    auto receiver = gc::make_ot_receiver(gc::OtBackend::Precomp, duplex.evaluator_end(), seed,
                                         nullptr, nullptr, target);
    std::vector<Block> got;
    for (const std::size_t m : sizes) {
      got.assign(m, Block{});
      for (std::size_t j = 0; j < m; ++j) receiver->enqueue((j & 1) != 0, &got[j]);
      receiver->request();
      for (std::size_t j = 0; j < m; ++j) {
        sender->enqueue(block_from_u64(j), block_from_u64(j + 1));
      }
      sender->flush();
      receiver->finish();
    }
    const auto [total, online] = precomp_bytes(sizes, target);
    EXPECT_EQ(duplex.stats().ot_bytes, total) << "target " << target;
    EXPECT_EQ(duplex.stats().total(), duplex.stats().ot_bytes);  // OT-only exchange
    // Either side's online_bytes is the full-duplex online cost (frames one
    // way, masked pads the other), so the two counters agree exactly.
    EXPECT_EQ(sender->stats().online_bytes, online) << "target " << target;
    EXPECT_EQ(receiver->stats().online_bytes, online) << "target " << target;
  }
}

TEST(OtExt, CommStatsOtBytesMatchActualFramedBytes) {
  for (const auto& sizes : {std::vector<std::size_t>{1}, std::vector<std::size_t>{5, 160}}) {
    gc::InMemoryDuplex duplex;
    const Block seed = block_from_u64(99);
    auto sender = gc::make_ot_sender(gc::OtBackend::Iknp, duplex.garbler_end(), seed, nullptr);
    auto receiver =
        gc::make_ot_receiver(gc::OtBackend::Iknp, duplex.evaluator_end(), seed, nullptr);
    std::vector<Block> got;
    for (const std::size_t m : sizes) {
      got.assign(m, Block{});
      for (std::size_t j = 0; j < m; ++j) receiver->enqueue((j & 1) != 0, &got[j]);
      receiver->request();
      for (std::size_t j = 0; j < m; ++j) {
        sender->enqueue(block_from_u64(j), block_from_u64(j + 1));
      }
      sender->flush();
      receiver->finish();
    }
    // Every OT byte is a real framed block: the duplex's accounting (16 bytes
    // per block sent, either direction) must equal the protocol's exact wire
    // formula — nothing is priced by constant.
    EXPECT_EQ(duplex.stats().ot_bytes, iknp_bytes(sizes));
    EXPECT_EQ(duplex.stats().total(), duplex.stats().ot_bytes);  // OT-only exchange
  }
}

netlist::Netlist make_serial_adder() {
  builder::CircuitBuilder cb;
  const auto carry = cb.make_dff(netlist::Dff::Init::Zero);
  const builder::Wire a = cb.input(netlist::Owner::Alice, 0, /*streamed=*/true);
  const builder::Wire b = cb.input(netlist::Owner::Bob, 0, /*streamed=*/true);
  const auto fa = builder::full_adder(cb, a, b, cb.dff_out(carry));
  cb.set_dff_d(carry, fa.carry);
  cb.output(fa.sum, "sum");
  cb.set_outputs_every_cycle(true);
  return cb.take();
}

TEST(OtExt, DriverOtBytesAreTrueFramedBytes) {
  const netlist::Netlist nl = make_serial_adder();
  core::StreamProvider streams;
  streams.alice = [](std::uint64_t c) { return netlist::BitVec{(c & 1) != 0}; };
  streams.bob = [](std::uint64_t c) { return netlist::BitVec{(c & 2) != 0}; };
  core::RunOptions opts;
  opts.fixed_cycles = 8;

  const core::RunResult ideal = core::SkipGateDriver(nl, opts).run({}, {}, {}, &streams);
  // Ideal stand-in: the label pair travels — 32 bytes per choice, framed.
  EXPECT_EQ(ideal.stats.comm.ot_bytes, 32u * ideal.stats.ot_choices);
  EXPECT_EQ(ideal.stats.ot_choices, 8u);

  core::RunOptions iknp = opts;
  iknp.exec.ot_backend = gc::OtBackend::Iknp;
  const core::RunResult real = core::SkipGateDriver(nl, iknp).run({}, {}, {}, &streams);
  // One streamed Bob bit per cycle: 8 batches of m=1 plus the base phase.
  EXPECT_EQ(real.stats.comm.ot_bytes, iknp_bytes({1, 1, 1, 1, 1, 1, 1, 1}));
  EXPECT_EQ(real.stats.ot_batches, 8u);
  EXPECT_EQ(real.stats.ot_base_ots, gc::kOtKappa);
}

// --- full-driver differential: Ideal vs IKNP ------------------------------------

/// Everything except OT traffic must be bit-identical across backends: the
/// labels, tables and outputs cannot depend on how Bob's labels traveled.
void expect_same_protocol(const core::RunResult& x, const core::RunResult& y) {
  EXPECT_EQ(x.sampled_outputs, y.sampled_outputs);
  EXPECT_EQ(x.final_outputs, y.final_outputs);
  EXPECT_EQ(x.final_cycle, y.final_cycle);
  EXPECT_EQ(x.stats.cycles, y.stats.cycles);
  EXPECT_EQ(x.stats.garbled_non_xor, y.stats.garbled_non_xor);
  EXPECT_EQ(x.stats.skipped_non_xor, y.stats.skipped_non_xor);
  EXPECT_EQ(x.stats.non_xor_slots, y.stats.non_xor_slots);
  EXPECT_TRUE(x.stats.table_digest == y.stats.table_digest);
  EXPECT_EQ(x.stats.comm.garbled_table_bytes, y.stats.comm.garbled_table_bytes);
  EXPECT_EQ(x.stats.comm.input_label_bytes, y.stats.comm.input_label_bytes);
  EXPECT_EQ(x.stats.comm.output_bytes, y.stats.comm.output_bytes);
  EXPECT_EQ(x.stats.ot_choices, y.stats.ot_choices);
}

/// Random sequential netlist with Bob-owned fixed inputs, dff inits and
/// streamed bits, so both the reset batch and the per-cycle batches carry
/// real choices.
netlist::Netlist random_ot_netlist(crypto::CtrRng& rng) {
  netlist::Netlist nl;
  constexpr std::uint32_t kInPerParty = 3;
  for (std::uint32_t i = 0; i < kInPerParty; ++i) {
    nl.inputs.push_back(netlist::Input{netlist::Owner::Alice, false, i, ""});
    nl.inputs.push_back(netlist::Input{netlist::Owner::Bob, false, i, ""});
    nl.inputs.push_back(netlist::Input{netlist::Owner::Public, false, i, ""});
  }
  nl.inputs.push_back(netlist::Input{netlist::Owner::Bob, true, 0, ""});
  nl.inputs.push_back(netlist::Input{netlist::Owner::Alice, true, 0, ""});
  for (std::uint32_t i = 0; i < 3; ++i) {
    netlist::Dff d;
    switch (rng.next_below(3)) {
      case 0: d.init = netlist::Dff::Init::Zero; break;
      case 1:
        d.init = netlist::Dff::Init::AliceBit;
        d.init_index = i;
        break;
      default:
        d.init = netlist::Dff::Init::BobBit;
        d.init_index = i;
        break;
    }
    nl.dffs.push_back(d);
  }
  const int num_gates = 25 + static_cast<int>(rng.next_below(25));
  for (int g = 0; g < num_gates; ++g) {
    const auto limit = static_cast<std::uint32_t>(2 + nl.inputs.size() + nl.dffs.size() +
                                                  static_cast<std::size_t>(g));
    nl.gates.push_back(netlist::Gate{static_cast<netlist::WireId>(rng.next_below(limit)),
                                     static_cast<netlist::WireId>(rng.next_below(limit)),
                                     static_cast<netlist::TruthTable>(rng.next_below(16))});
  }
  const auto nw = static_cast<std::uint32_t>(nl.num_wires());
  for (auto& d : nl.dffs) {
    d.d = static_cast<netlist::WireId>(rng.next_below(nw));
    d.d_invert = rng.next_bool();
  }
  for (int o = 0; o < 5; ++o) {
    nl.outputs.push_back(netlist::OutputPort{static_cast<netlist::WireId>(rng.next_below(nw)),
                                             rng.next_bool(), ""});
  }
  nl.outputs_every_cycle = true;
  return nl;
}

TEST(OtExt, BackendsBitIdenticalAcrossModesAndTransports) {
  const int iters = fuzz_iters(6);
  crypto::CtrRng rng(block_from_u64(612));
  for (int seed = 0; seed < iters; ++seed) {
    const netlist::Netlist nl = random_ot_netlist(rng);
    const netlist::BitVec a = to_bits(rng.next_u64(), 3);
    const netlist::BitVec b = to_bits(rng.next_u64(), 3);
    const netlist::BitVec p = to_bits(rng.next_u64(), 3);
    const std::uint64_t aw = rng.next_u64();
    const std::uint64_t bw = rng.next_u64();
    core::StreamProvider streams;
    streams.alice = [aw](std::uint64_t c) { return netlist::BitVec{((aw >> c) & 1u) != 0}; };
    streams.bob = [bw](std::uint64_t c) { return netlist::BitVec{((bw >> c) & 1u) != 0}; };

    for (const core::Mode mode : {core::Mode::SkipGate, core::Mode::Conventional}) {
      for (const core::TransportKind tk :
           {core::TransportKind::InMemory, core::TransportKind::ThreadedPipe}) {
        core::RunOptions ideal;
        ideal.mode = mode;
        ideal.fixed_cycles = 7;
        ideal.exec.transport = tk;
        core::RunOptions iknp = ideal;
        iknp.exec.ot_backend = gc::OtBackend::Iknp;

        const core::RunResult ri =
            core::SkipGateDriver(nl, ideal).run(a, b, p, &streams);
        const core::RunResult rk = core::SkipGateDriver(nl, iknp).run(a, b, p, &streams);
        expect_same_protocol(ri, rk);
        EXPECT_EQ(rk.stats.ot_base_ots, rk.stats.ot_choices > 0 ? gc::kOtKappa : 0u)
            << "seed " << seed;
      }
    }
  }
}

TEST(OtExt, GoldenTableDigestStableAcrossBackends) {
  // Pins the exact garbled-table byte stream of a fixed serial-adder run:
  // any change to label generation, garbling order or the OT rewiring that
  // shifts a single table bit fails here — under either backend, since the
  // OT path must not touch the label stream at all.
  const netlist::Netlist nl = make_serial_adder();
  core::StreamProvider streams;
  streams.alice = [](std::uint64_t c) { return netlist::BitVec{((0xDEADBEEFu >> c) & 1u) != 0}; };
  streams.bob = [](std::uint64_t c) { return netlist::BitVec{((0x12345679u >> c) & 1u) != 0}; };
  core::RunOptions opts;
  opts.fixed_cycles = 32;
  core::RunOptions iknp = opts;
  iknp.exec.ot_backend = gc::OtBackend::Iknp;
  core::RunOptions precomp = opts;
  precomp.exec.ot_backend = gc::OtBackend::Precomp;
  const core::RunResult ri = core::SkipGateDriver(nl, opts).run({}, {}, {}, &streams);
  const core::RunResult rk = core::SkipGateDriver(nl, iknp).run({}, {}, {}, &streams);
  const core::RunResult rp = core::SkipGateDriver(nl, precomp).run({}, {}, {}, &streams);
  EXPECT_TRUE(ri.stats.table_digest == rk.stats.table_digest);
  EXPECT_TRUE(ri.stats.table_digest == rp.stats.table_digest);
  EXPECT_EQ(ri.stats.table_digest.hex(), "92477f01bb42fa1f82f25714ba48d798");
}

TEST(OtExt, ArmRunsIdenticalAndSessionAmortizesBaseOts) {
  const auto prog = arm::assemble(
      "ldr r4, [r0]\n"
      "ldr r5, [r1]\n"
      "add r4, r4, r5\n"
      "str r4, [r2]\n"
      "swi 0\n");
  arm::MemoryConfig cfg;
  cfg.imem_words = 16;
  cfg.alice_words = cfg.bob_words = cfg.out_words = 1;
  cfg.ram_words = 16;
  const arm::Arm2Gc machine(cfg, prog);

  core::ExecOptions ideal;
  core::ExecOptions iknp;
  iknp.ot_backend = gc::OtBackend::Iknp;
  const std::vector<std::uint32_t> alice = {41};
  const std::vector<std::uint32_t> bob = {59};
  const arm::Arm2GcResult ri =
      machine.run(alice, bob, 1u << 20, gc::Scheme::HalfGates, ideal);
  const arm::Arm2GcResult rk =
      machine.run(alice, bob, 1u << 20, gc::Scheme::HalfGates, iknp);
  EXPECT_EQ(ri.outputs[0], 100u);
  EXPECT_EQ(rk.outputs, ri.outputs);
  EXPECT_EQ(rk.cycles, ri.cycles);
  EXPECT_EQ(rk.stats.garbled_non_xor, ri.stats.garbled_non_xor);
  EXPECT_TRUE(rk.stats.table_digest == ri.stats.table_digest);
  // All of Bob's 32 input bits ride one reset batch.
  EXPECT_EQ(rk.stats.ot_batches, 1u);
  EXPECT_EQ(rk.stats.ot_choices, 32u);
  EXPECT_EQ(rk.stats.ot_base_ots, gc::kOtKappa);

  // Warm session: the base phase runs once and amortizes across runs.
  arm::Arm2Gc::Session session(machine, iknp);
  for (std::uint32_t i = 0; i < 3; ++i) {
    const arm::Arm2GcResult r = session.run(std::vector<std::uint32_t>{10 + i},
                                            std::vector<std::uint32_t>{5 * i});
    EXPECT_EQ(r.outputs[0], 10 + i + 5 * i);
    EXPECT_EQ(r.stats.ot_base_ots, i == 0 ? gc::kOtKappa : 0u) << "run " << i;
    EXPECT_EQ(r.stats.ot_choices, 32u);
  }

  // Same warm amortization over the threaded pipe: the sender state lives on
  // the garbler thread, the receiver state on the evaluator thread.
  core::ExecOptions piped = iknp;
  piped.transport = core::TransportKind::ThreadedPipe;
  arm::Arm2Gc::Session piped_session(machine, piped);
  for (std::uint32_t i = 0; i < 2; ++i) {
    const arm::Arm2GcResult r = piped_session.run(std::vector<std::uint32_t>{20 + i},
                                                  std::vector<std::uint32_t>{3 * i});
    EXPECT_EQ(r.outputs[0], 20 + i + 3 * i);
    EXPECT_EQ(r.stats.ot_base_ots, i == 0 ? gc::kOtKappa : 0u) << "piped run " << i;
  }
}

// --- transcript privacy ---------------------------------------------------------

/// Pass-through transport that records every sent block (the peer's
/// received transcript) without touching the accounting.
class RecordingTransport final : public gc::Transport {
 public:
  explicit RecordingTransport(gc::Transport& inner) : inner_(&inner) {}

  void send(const Block* blocks, std::size_t n, gc::Traffic t) override {
    sent_.insert(sent_.end(), blocks, blocks + n);
    frames_.push_back(n);
    inner_->send(blocks, n, t);
  }
  void recv(Block* out, std::size_t n) override { inner_->recv(out, n); }
  void account(gc::Traffic t, std::uint64_t bytes) override { inner_->account(t, bytes); }

  [[nodiscard]] std::vector<std::uint8_t> sent_bytes() const {
    std::vector<std::uint8_t> out(sent_.size() * 16);
    for (std::size_t i = 0; i < sent_.size(); ++i) sent_[i].to_bytes(out.data() + 16 * i);
    return out;
  }

  std::vector<Block> sent_;
  std::vector<std::size_t> frames_;

 private:
  gc::Transport* inner_;
};

/// One receiver request over a recording transport with a fixed-seed state;
/// returns (transcript bytes, frame sizes).
std::pair<std::vector<std::uint8_t>, std::vector<std::size_t>> capture_request(
    const std::vector<bool>& r) {
  gc::InMemoryDuplex duplex;
  RecordingTransport tap(duplex.evaluator_end());
  gc::IknpReceiverState state(block_from_u64(1337));  // identical seed per capture
  auto receiver = gc::make_ot_receiver(gc::OtBackend::Iknp, tap, Block{}, &state);
  std::vector<Block> sink(r.size());
  for (std::size_t j = 0; j < r.size(); ++j) receiver->enqueue(r[j], &sink[j]);
  receiver->request();
  return {tap.sent_bytes(), tap.frames_};
}

TEST(OtExt, SenderReceivedTranscriptIndependentOfChoices) {
  // Fixed seeds isolate the choice bits' contribution: two captures with
  // different choice vectors must differ *exactly* by the masked-column
  // structure u ^ u' == (r ^ r') replicated per column — every byte the
  // choices touch is one-time-padded by the per-column PRG expansion, and
  // nothing outside the column region depends on the choices at all.
  constexpr std::size_t kM = 43;
  crypto::CtrRng rng(block_from_u64(31415));
  std::vector<bool> r0(kM), r1(kM);
  for (std::size_t j = 0; j < kM; ++j) {
    r0[j] = rng.next_bool();
    r1[j] = rng.next_bool();
  }

  const auto [t0, f0] = capture_request(r0);
  const auto [t1, f1] = capture_request(r1);
  ASSERT_EQ(t0.size(), t1.size());
  ASSERT_EQ(f0, f1);
  // Frames: [header][base sid+pairs][check][columns].
  ASSERT_EQ(f0.size(), 4u);
  ASSERT_EQ(f0[0], 1u);
  ASSERT_EQ(f0[1], 1 + 2 * gc::kOtKappa);

  const std::size_t stride = (kM + 7) / 8;
  std::vector<std::uint8_t> rdiff(stride, 0);
  for (std::size_t j = 0; j < kM; ++j) {
    if (r0[j] != r1[j]) rdiff[j / 8] |= static_cast<std::uint8_t>(1u << (j % 8));
  }

  const std::size_t col_off = (f0[0] + f0[1] + f0[2]) * 16;
  for (std::size_t i = 0; i < t0.size(); ++i) {
    if (i < col_off || i >= col_off + gc::kOtKappa * stride) {
      // Base phase and check block: byte-identical regardless of choices.
      EXPECT_EQ(t0[i], t1[i]) << "byte " << i;
    } else {
      const std::size_t b = (i - col_off) % stride;
      EXPECT_EQ(t0[i] ^ t1[i], rdiff[b]) << "byte " << i;
    }
  }
}

// --- negative: mismatched pairings ----------------------------------------------

TEST(OtExt, MismatchedBaseStateDetectedNotSilentlyWrong) {
  const Block seed_a = block_from_u64(1);
  const Block seed_b = block_from_u64(2);

  // Warm up two independent pairings.
  gc::IknpSenderState s1(seed_a);
  gc::IknpReceiverState r1(seed_a);
  gc::IknpReceiverState r2(seed_b);
  {
    gc::InMemoryDuplex d;
    auto snd = gc::make_ot_sender(gc::OtBackend::Iknp, d.garbler_end(), seed_a, &s1);
    auto rcv = gc::make_ot_receiver(gc::OtBackend::Iknp, d.evaluator_end(), seed_a, &r1);
    Block out{};
    rcv->enqueue(true, &out);
    rcv->request();
    snd->enqueue(block_from_u64(7), block_from_u64(8));
    snd->flush();
    rcv->finish();
    EXPECT_TRUE(out == block_from_u64(8));
  }
  {
    gc::InMemoryDuplex d;
    auto snd2 = gc::make_ot_sender(gc::OtBackend::Iknp, d.garbler_end(), seed_b, nullptr);
    auto rcv2 = gc::make_ot_receiver(gc::OtBackend::Iknp, d.evaluator_end(), seed_b, &r2);
    Block out{};
    rcv2->enqueue(false, &out);
    rcv2->request();
    snd2->enqueue(block_from_u64(7), block_from_u64(8));
    snd2->flush();
    rcv2->finish();
  }

  // Cross-pair the warm sender with the other pairing's warm receiver: the
  // base session ids disagree, so the batch check must throw — silently
  // delivering a wrong label is the failure mode this pins out.
  {
    gc::InMemoryDuplex d;
    auto snd = gc::make_ot_sender(gc::OtBackend::Iknp, d.garbler_end(), seed_a, &s1);
    auto rcv = gc::make_ot_receiver(gc::OtBackend::Iknp, d.evaluator_end(), seed_b, &r2);
    Block out{};
    rcv->enqueue(true, &out);
    rcv->request();
    snd->enqueue(block_from_u64(7), block_from_u64(8));
    EXPECT_THROW(snd->flush(), std::runtime_error);
  }

  // A warm sender against a *fresh* receiver: the batch header announces a
  // base phase the sender already ran — detected at the header, before any
  // layout-dependent read.
  {
    gc::InMemoryDuplex d;
    auto snd = gc::make_ot_sender(gc::OtBackend::Iknp, d.garbler_end(), seed_a, &s1);
    auto rcv = gc::make_ot_receiver(gc::OtBackend::Iknp, d.evaluator_end(), seed_a, nullptr);
    Block out{};
    rcv->enqueue(true, &out);
    rcv->request();
    snd->enqueue(block_from_u64(7), block_from_u64(8));
    EXPECT_THROW(snd->flush(), std::runtime_error);
  }

  // The reverse — a warm *receiver* against a fresh sender — must also fail
  // loudly at the header. Without it, the fresh sender would block waiting
  // for a base frame the warm receiver never sends (a deadlock under the
  // threaded pipe, an underrun under the in-memory duplex; both wrong).
  {
    gc::InMemoryDuplex d;
    auto snd = gc::make_ot_sender(gc::OtBackend::Iknp, d.garbler_end(), seed_a, nullptr);
    auto rcv = gc::make_ot_receiver(gc::OtBackend::Iknp, d.evaluator_end(), seed_a, &r1);
    Block out{};
    rcv->enqueue(true, &out);
    rcv->request();
    snd->enqueue(block_from_u64(7), block_from_u64(8));
    EXPECT_THROW(snd->flush(), std::runtime_error);
  }
}

TEST(OtExt, HalfCompletedBatchDetectedOnNextRun) {
  // The subtle abort window: a request() whose flush() never happens (the
  // peer threw first, or the run was torn down mid-cycle) advances the
  // receiver's column streams but neither side's batch ordinal. Both warm
  // states then agree on every counter, yet their PRG positions differ —
  // the check block binds the stream position exactly so the next run
  // throws instead of hashing desynced columns into garbage labels.
  const Block seed = block_from_u64(5);
  gc::IknpSenderState s(seed);
  gc::IknpReceiverState r(seed);
  {
    gc::InMemoryDuplex d;
    auto snd = gc::make_ot_sender(gc::OtBackend::Iknp, d.garbler_end(), seed, &s);
    auto rcv = gc::make_ot_receiver(gc::OtBackend::Iknp, d.evaluator_end(), seed, &r);
    Block out{};
    rcv->enqueue(true, &out);
    rcv->request();
    snd->enqueue(block_from_u64(7), block_from_u64(8));
    snd->flush();
    rcv->finish();
    EXPECT_TRUE(out == block_from_u64(8));
  }
  {
    // Aborted run: the request goes out, the sender never consumes it.
    gc::InMemoryDuplex d;
    auto rcv = gc::make_ot_receiver(gc::OtBackend::Iknp, d.evaluator_end(), seed, &r);
    Block out{};
    rcv->enqueue(false, &out);
    rcv->request();
  }
  {
    gc::InMemoryDuplex d;
    auto snd = gc::make_ot_sender(gc::OtBackend::Iknp, d.garbler_end(), seed, &s);
    auto rcv = gc::make_ot_receiver(gc::OtBackend::Iknp, d.evaluator_end(), seed, &r);
    Block out{};
    rcv->enqueue(true, &out);
    rcv->request();
    snd->enqueue(block_from_u64(7), block_from_u64(8));
    EXPECT_THROW(snd->flush(), std::runtime_error);
  }
}

}  // namespace
