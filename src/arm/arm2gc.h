// ARM2GC public API (paper §4): run an ARM binary as a garbled processor.
//
// This is the `gc_main` equivalent of the paper's framework: the program is
// public, Alice's and Bob's private inputs live in dedicated memories, and
// the result is read back from the output memory:
//
//   reset ABI:  r0 = &alice_mem, r1 = &bob_mem, r2 = &out_mem,
//               sp = top of RAM, pc = 0; swi halts.
//
// Usage:
//   Arm2Gc machine(cfg, arm::assemble(source));
//   auto result = machine.run(alice_words, bob_words);
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arm/cpu_netlist.h"
#include "arm/cpu_sim.h"
#include "core/skipgate.h"

namespace arm2gc::arm {

struct Arm2GcResult {
  std::vector<std::uint32_t> outputs;  ///< the output memory after the run
  std::uint64_t cycles = 0;            ///< executed cycles including the halt cycle
  core::RunStats stats;
};

class Arm2Gc {
 public:
  /// Builds the garbled processor for a fixed public program. Netlist
  /// construction happens once; runs reuse it.
  Arm2Gc(MemoryConfig cfg, std::vector<std::uint32_t> program);

  /// Executes the two-party protocol (SkipGate mode, halt-driven). `exec`
  /// selects transport and plan-cache tuning; results are identical across
  /// all tunings, only wall-clock and memory differ.
  [[nodiscard]] Arm2GcResult run(std::span<const std::uint32_t> alice,
                                 std::span<const std::uint32_t> bob,
                                 std::uint64_t max_cycles = 1u << 20,
                                 gc::Scheme scheme = gc::Scheme::HalfGates,
                                 const core::ExecOptions& exec = {}) const;

  /// Executes with conventional GC (every gate garbled) for exactly
  /// `cycles` cycles — the "w/o SkipGate" baseline. Expensive; use small
  /// programs or prefer conventional_non_xor().
  [[nodiscard]] Arm2GcResult run_conventional(std::span<const std::uint32_t> alice,
                                              std::span<const std::uint32_t> bob,
                                              std::uint64_t cycles,
                                              const core::ExecOptions& exec = {}) const;

  /// Exact non-XOR cost of a conventional garbling of `cycles` cycles
  /// (gate count is cycle-invariant: cycles x non-free gates).
  [[nodiscard]] std::uint64_t conventional_non_xor(std::uint64_t cycles) const;

  /// Reference execution on the ISS (for expected outputs / cycle counts).
  [[nodiscard]] Arm2GcResult run_reference(std::span<const std::uint32_t> alice,
                                           std::span<const std::uint32_t> bob,
                                           std::uint64_t max_cycles = 1u << 20) const;

  /// Expands driver-style tuning into one role's endpoint options for this
  /// machine (SkipGate mode, halt-driven on the CPU's halt wire). Adjust
  /// private_seed on the result before a real two-process deployment.
  [[nodiscard]] core::PartyOptions party_options(core::Role role,
                                                 std::uint64_t max_cycles = 1u << 20,
                                                 gc::Scheme scheme = gc::Scheme::HalfGates,
                                                 const core::ExecOptions& exec = {}) const;

  /// Single-role runs over an external transport (e.g. a TCP socket to a
  /// remote peer): the garbler-service / evaluator-client API behind
  /// tools/arm2gc_party. `opts` must agree with the peer's on everything
  /// public (see core::PartyOptions). run_garbler decodes the output memory;
  /// run_evaluator leaves `outputs` empty (Bob contributes labels and
  /// choices, he does not learn the result in this protocol) but reports the
  /// same cycle count, stats and received-table digest.
  [[nodiscard]] Arm2GcResult run_garbler(std::span<const std::uint32_t> alice,
                                         gc::Transport& tx, const core::PartyOptions& opts,
                                         core::WarmState* warm = nullptr) const;
  [[nodiscard]] Arm2GcResult run_evaluator(std::span<const std::uint32_t> bob,
                                           gc::Transport& tx, const core::PartyOptions& opts,
                                           core::WarmState* warm = nullptr) const;

  /// Long-lived execution session: keeps per-party plan caches and cone
  /// memos warm across runs of the same machine. The public signature
  /// trajectory of a run depends only on the program (secret inputs
  /// contribute value-independent fingerprint classes), so every run after
  /// the first skips classification entirely — the serving scenario: one
  /// public program, many executions on fresh private inputs. The warm cone
  /// memos additionally serve runs whose public trajectory *differs* (e.g.
  /// input-dependent loop counts): only the cones around the divergence are
  /// reclassified. Under the IKNP OT backend the session also keeps the
  /// per-role extension states warm, so the kappa base OTs run once and
  /// amortize across every later run (mirroring the plan-cache warm path);
  /// a run that throws mid-protocol resets the warm OT state on both
  /// endpoints (core::WarmState::reset_ot), so the next run re-bases and
  /// succeeds instead of tripping the OT check block — recovery without
  /// rebuilding the session. Not thread-safe; use one Session per worker.
  class Session {
   public:
    /// `exec` seeds transport/budget tuning; `plan_cache` is forced on, and
    /// the session's own per-role WarmState (plan cache + cone memo and, for
    /// the Iknp backend, OT extension state) fills each warm slot the caller
    /// left null (caller-supplied ones are used as given).
    explicit Session(const Arm2Gc& machine, core::ExecOptions exec = {});

    [[nodiscard]] Arm2GcResult run(std::span<const std::uint32_t> alice,
                                   std::span<const std::uint32_t> bob,
                                   std::uint64_t max_cycles = 1u << 20,
                                   gc::Scheme scheme = gc::Scheme::HalfGates);

    [[nodiscard]] core::WarmState& garbler_warm() { return garbler_warm_; }
    [[nodiscard]] core::WarmState& evaluator_warm() { return evaluator_warm_; }

   private:
    const Arm2Gc* machine_;
    core::ExecOptions exec_;
    core::WarmState garbler_warm_;
    core::WarmState evaluator_warm_;
  };

  [[nodiscard]] const CpuNetlist& cpu() const { return cpu_; }
  [[nodiscard]] const std::vector<std::uint32_t>& program() const { return program_; }

  /// Bit-level views of this machine's memories, for deployments that drive
  /// netlist-level endpoints directly (the garbler service and its clients
  /// speak netlists, not ARM memories): input words packed little-endian
  /// into the input-bit order run_garbler/run_evaluator use, and the inverse
  /// for a RunResult's final outputs (output port 0 is the halt flag; the
  /// output memory follows word-major).
  [[nodiscard]] netlist::BitVec alice_input_bits(std::span<const std::uint32_t> words) const;
  [[nodiscard]] netlist::BitVec bob_input_bits(std::span<const std::uint32_t> words) const;
  [[nodiscard]] std::vector<std::uint32_t> decode_output_bits(
      const netlist::BitVec& final_outputs) const;

 private:
  [[nodiscard]] netlist::BitVec words_to_bits(std::span<const std::uint32_t> words,
                                              std::size_t mem_words, const char* who) const;

  MemoryConfig cfg_;
  std::vector<std::uint32_t> program_;
  CpuNetlist cpu_;
};

}  // namespace arm2gc::arm
