// Fixture: the serialization boundary.
#pragma once
#include "crypto/block.h"
namespace fix::gc {
class Transport {
 public:
  void send(const crypto::Block* blocks, unsigned n);
};
}  // namespace fix::gc
