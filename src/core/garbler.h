// Garbler-side (Alice) session: owns the label generator, the free-XOR
// offset R and every garbler label; consumes the public CyclePlan and talks
// to the evaluator only through a gc::Transport. It never sees Bob's inputs
// (Bob's labels go out as OT pairs) and never reads from the planner's
// fingerprint state — the plan is the entire shared contract.
#pragma once

#include <vector>

#include "core/plan.h"
#include "crypto/block.h"
#include "gc/garble.h"
#include "gc/transport.h"
#include "netlist/netlist.h"

namespace arm2gc::core {

class GarblerSession {
 public:
  GarblerSession(const netlist::Netlist& nl, Mode mode, gc::Scheme scheme, crypto::Block seed,
                 gc::Transport& tx);

  /// Binds labels for constants (Conventional mode), fixed inputs and
  /// flip-flop initial values; sends the evaluator's labels (directly for
  /// Alice-known bits, as OT pairs for Bob's bits).
  void reset(const netlist::BitVec& alice_bits, const netlist::BitVec& pub_bits);

  /// Installs root labels for a cycle and binds streamed inputs.
  void begin_cycle(const netlist::BitVec& alice_stream, const netlist::BitVec& pub_stream);

  /// Runs the garbler label pass over the plan, sending garbled tables.
  void garble_cycle(const CyclePlan& plan);

  /// Receives Bob's output labels and decodes this cycle's sampled outputs.
  [[nodiscard]] netlist::BitVec decode_outputs(const CyclePlan& plan);

  /// Carries flip-flop labels into the next cycle.
  void latch(const CyclePlan& plan);

 private:
  void bind_secret(netlist::Owner owner, bool v, crypto::Block& la);
  [[nodiscard]] bool known_bit(netlist::Owner owner, std::uint32_t idx,
                               const netlist::BitVec& alice, const netlist::BitVec& pub,
                               const char* what) const;

  const netlist::Netlist& nl_;
  Mode mode_;
  gc::Garbler garbler_;
  gc::Transport* tx_;

  std::vector<crypto::Block> la_;
  std::vector<crypto::Block> fixed_la_;
  std::vector<crypto::Block> dff_la_;
  crypto::Block const_la_[2];
};

}  // namespace arm2gc::core
