#include "circuits/reference.h"

#include "crypto/aes128.h"

namespace arm2gc::circuits {

namespace {

constexpr std::uint64_t rotl64(std::uint64_t v, unsigned n) {
  return n == 0 ? v : (v << n) | (v >> (64 - n));
}

/// Rho rotation offsets, lane (x,y) at x + 5y.
constexpr std::array<unsigned, 25> kRho = {0,  1,  62, 28, 27,   // y=0
                                           36, 44, 6,  55, 20,   // y=1
                                           3,  10, 43, 25, 39,   // y=2
                                           41, 45, 15, 21, 8,    // y=3
                                           18, 2,  61, 56, 14};  // y=4

std::array<std::uint64_t, 24> compute_rc() {
  // LFSR rc(t) over x^8 + x^6 + x^5 + x^4 + 1 (FIPS-202 Algorithm 5).
  std::array<std::uint64_t, 24> rc{};
  std::uint8_t lfsr = 1;
  auto step = [&]() {
    const bool out = (lfsr & 1u) != 0;
    const bool hi = (lfsr & 0x80u) != 0;
    lfsr = static_cast<std::uint8_t>(lfsr << 1);
    if (hi) lfsr ^= 0x71u;  // taps for x^8+x^6+x^5+x^4+1 after the shift
    return out;
  };
  for (int ir = 0; ir < 24; ++ir) {
    std::uint64_t v = 0;
    for (int j = 0; j <= 6; ++j) {
      if (step()) v |= 1ull << ((1u << j) - 1);
    }
    rc[static_cast<std::size_t>(ir)] = v;
  }
  return rc;
}

}  // namespace

const std::array<std::uint64_t, 24>& keccak_round_constants() {
  static const std::array<std::uint64_t, 24> rc = compute_rc();
  return rc;
}

void keccak_f1600(std::array<std::uint64_t, 25>& a) {
  const auto& rc = keccak_round_constants();
  for (int round = 0; round < 24; ++round) {
    // Theta.
    std::uint64_t c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[static_cast<std::size_t>(x)] ^ a[static_cast<std::size_t>(x + 5)] ^
             a[static_cast<std::size_t>(x + 10)] ^ a[static_cast<std::size_t>(x + 15)] ^
             a[static_cast<std::size_t>(x + 20)];
    }
    std::uint64_t d[5];
    for (int x = 0; x < 5; ++x) d[x] = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) a[static_cast<std::size_t>(x + 5 * y)] ^= d[x];
    }
    // Rho + Pi.
    std::array<std::uint64_t, 25> b{};
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        const int nx = y;
        const int ny = (2 * x + 3 * y) % 5;
        b[static_cast<std::size_t>(nx + 5 * ny)] =
            rotl64(a[static_cast<std::size_t>(x + 5 * y)], kRho[static_cast<std::size_t>(x + 5 * y)]);
      }
    }
    // Chi.
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        a[static_cast<std::size_t>(x + 5 * y)] =
            b[static_cast<std::size_t>(x + 5 * y)] ^
            (~b[static_cast<std::size_t>((x + 1) % 5 + 5 * y)] &
             b[static_cast<std::size_t>((x + 2) % 5 + 5 * y)]);
      }
    }
    // Iota.
    a[0] ^= rc[static_cast<std::size_t>(round)];
  }
}

std::array<std::uint8_t, 32> sha3_256(const std::vector<std::uint8_t>& message) {
  constexpr std::size_t kRate = 136;  // bytes
  std::array<std::uint64_t, 25> state{};
  std::vector<std::uint8_t> padded = message;
  padded.push_back(0x06);
  while (padded.size() % kRate != 0) padded.push_back(0x00);
  padded.back() ^= 0x80;

  for (std::size_t off = 0; off < padded.size(); off += kRate) {
    for (std::size_t i = 0; i < kRate; ++i) {
      state[i / 8] ^= static_cast<std::uint64_t>(padded[off + i]) << (8 * (i % 8));
    }
    keccak_f1600(state);
  }
  std::array<std::uint8_t, 32> digest{};
  for (std::size_t i = 0; i < 32; ++i) {
    digest[i] = static_cast<std::uint8_t>(state[i / 8] >> (8 * (i % 8)));
  }
  return digest;
}

std::array<std::uint8_t, 16> aes128_encrypt(const std::array<std::uint8_t, 16>& key,
                                            const std::array<std::uint8_t, 16>& pt) {
  const crypto::Aes128 aes(crypto::Block::from_bytes(key.data()));
  const crypto::Block ct = aes.encrypt(crypto::Block::from_bytes(pt.data()));
  std::array<std::uint8_t, 16> out{};
  ct.to_bytes(out.data());
  return out;
}

}  // namespace arm2gc::circuits
