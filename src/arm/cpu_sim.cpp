#include "arm/cpu_sim.h"

#include <stdexcept>
#include <string>

namespace arm2gc::arm {

namespace {
bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

ArmSim::ArmSim(MemoryConfig cfg, std::span<const std::uint32_t> program) : cfg_(cfg) {
  for (const std::size_t w : {cfg.imem_words, cfg.alice_words, cfg.bob_words, cfg.out_words,
                              cfg.ram_words}) {
    if (!is_pow2(w)) throw std::invalid_argument("ArmSim: memory sizes must be powers of two");
  }
  if (program.size() > cfg.imem_words) {
    throw std::invalid_argument("ArmSim: program does not fit instruction memory");
  }
  imem_.assign(cfg.imem_words, 0);
  std::copy(program.begin(), program.end(), imem_.begin());
  alice_.assign(cfg.alice_words, 0);
  bob_.assign(cfg.bob_words, 0);
  out_.assign(cfg.out_words, 0);
  ram_.assign(cfg.ram_words, 0);
}

void ArmSim::reset(std::span<const std::uint32_t> alice, std::span<const std::uint32_t> bob) {
  if (alice.size() > cfg_.alice_words || bob.size() > cfg_.bob_words) {
    throw std::invalid_argument("ArmSim: inputs exceed memory size");
  }
  std::fill(alice_.begin(), alice_.end(), 0);
  std::fill(bob_.begin(), bob_.end(), 0);
  std::fill(out_.begin(), out_.end(), 0);
  std::fill(ram_.begin(), ram_.end(), 0);
  std::copy(alice.begin(), alice.end(), alice_.begin());
  std::copy(bob.begin(), bob.end(), bob_.begin());
  for (auto& r : regs_) r = 0;
  regs_[0] = kAliceBase;
  regs_[1] = kBobBase;
  regs_[2] = kOutBase;
  regs_[13] = kRamBase + static_cast<std::uint32_t>(cfg_.ram_words) * 4;
  pc_ = 0;
  n_ = z_ = c_ = v_ = false;
  halted_ = false;
}

std::uint32_t ArmSim::read_word(std::uint32_t addr) const {
  const std::uint32_t region = (addr >> 16) & 7u;
  const std::uint32_t w = addr >> 2;
  switch (region) {
    case 0: return imem_[w & (cfg_.imem_words - 1)];
    case 1: return alice_[w & (cfg_.alice_words - 1)];
    case 2: return bob_[w & (cfg_.bob_words - 1)];
    case 3: return out_[w & (cfg_.out_words - 1)];
    case 4: return ram_[w & (cfg_.ram_words - 1)];
    default: throw std::runtime_error("ArmSim: read from unmapped address " + std::to_string(addr));
  }
}

void ArmSim::write_word(std::uint32_t addr, std::uint32_t value) {
  const std::uint32_t region = (addr >> 16) & 7u;
  const std::uint32_t w = addr >> 2;
  switch (region) {
    case 1: alice_[w & (cfg_.alice_words - 1)] = value; break;
    case 2: bob_[w & (cfg_.bob_words - 1)] = value; break;
    case 3: out_[w & (cfg_.out_words - 1)] = value; break;
    case 4: ram_[w & (cfg_.ram_words - 1)] = value; break;
    default: throw std::runtime_error("ArmSim: write to unmapped address " + std::to_string(addr));
  }
}

std::uint32_t ArmSim::read_reg(int i) const {
  return i == 15 ? pc_ + 8 : regs_[static_cast<std::size_t>(i)];
}

void ArmSim::step() {
  if (halted_) return;
  const std::uint32_t instr = imem_[(pc_ >> 2) & (cfg_.imem_words - 1)];
  const auto cond = static_cast<Cond>(bits(instr, 31, 28));
  const bool exec = cond_holds(cond, n_, z_, c_, v_);
  const DecodedClass cls = classify(instr);
  std::uint32_t next_pc = pc_ + 4;

  if (exec && cls.is_swi) {
    halted_ = true;
    return;  // pc frozen; outputs reflect state before the swi
  }

  if (cls.is_dp) {
    const auto op = static_cast<DpOp>(bits(instr, 24, 21));
    const bool s = bits(instr, 20, 20) != 0;
    const std::uint32_t rn_val = read_reg(static_cast<int>(bits(instr, 19, 16)));
    // Operand 2.
    std::uint32_t op2;
    if (bits(instr, 25, 25) != 0) {
      const std::uint32_t rot = 2 * bits(instr, 11, 8);
      const std::uint32_t imm = bits(instr, 7, 0);
      op2 = rot == 0 ? imm : ((imm >> rot) | (imm << (32 - rot)));
    } else {
      const std::uint32_t rm_val = read_reg(static_cast<int>(bits(instr, 3, 0)));
      const auto type = static_cast<ShiftType>(bits(instr, 6, 5));
      const std::uint32_t amt = bits(instr, 4, 4) != 0
                                    ? (read_reg(static_cast<int>(bits(instr, 11, 8))) & 0xffu)
                                    : bits(instr, 11, 7);
      op2 = apply_shift(type, rm_val, amt);
    }

    std::uint32_t result = 0;
    bool carry = c_;
    bool overflow = v_;
    auto adder = [&](std::uint32_t x, std::uint32_t y, bool cin) {
      const std::uint64_t wide = static_cast<std::uint64_t>(x) + y + (cin ? 1 : 0);
      const auto res = static_cast<std::uint32_t>(wide);
      carry = (wide >> 32) != 0;
      overflow = (~(x ^ y) & (x ^ res) & 0x80000000u) != 0;
      return res;
    };
    switch (op) {
      case DpOp::And: case DpOp::Tst: result = rn_val & op2; break;
      case DpOp::Eor: case DpOp::Teq: result = rn_val ^ op2; break;
      case DpOp::Sub: case DpOp::Cmp: result = adder(rn_val, ~op2, true); break;
      case DpOp::Rsb: result = adder(op2, ~rn_val, true); break;
      case DpOp::Add: case DpOp::Cmn: result = adder(rn_val, op2, false); break;
      case DpOp::Adc: result = adder(rn_val, op2, c_); break;
      case DpOp::Sbc: result = adder(rn_val, ~op2, c_); break;
      case DpOp::Rsc: result = adder(op2, ~rn_val, c_); break;
      case DpOp::Orr: result = rn_val | op2; break;
      case DpOp::Mov: result = op2; break;
      case DpOp::Bic: result = rn_val & ~op2; break;
      case DpOp::Mvn: result = ~op2; break;
    }
    if (exec) {
      if (!dp_no_writeback(op)) regs_[bits(instr, 15, 12)] = result;
      if (s) {
        n_ = (result & 0x80000000u) != 0;
        z_ = result == 0;
        if (dp_is_arith(op)) {
          c_ = carry;
          v_ = overflow;
        }
      }
    }
  } else if (cls.is_mul) {
    const bool accumulate = bits(instr, 21, 21) != 0;
    const bool s = bits(instr, 20, 20) != 0;
    std::uint32_t result = read_reg(static_cast<int>(bits(instr, 3, 0))) *
                           read_reg(static_cast<int>(bits(instr, 11, 8)));
    if (accumulate) result += read_reg(static_cast<int>(bits(instr, 15, 12)));
    if (exec) {
      regs_[bits(instr, 19, 16)] = result;
      if (s) {
        n_ = (result & 0x80000000u) != 0;
        z_ = result == 0;
      }
    }
  } else if (cls.is_mem) {
    const bool load = bits(instr, 20, 20) != 0;
    const bool up = bits(instr, 23, 23) != 0;
    const std::uint32_t rn_val = read_reg(static_cast<int>(bits(instr, 19, 16)));
    const std::uint32_t off = bits(instr, 11, 0);
    const std::uint32_t addr = up ? rn_val + off : rn_val - off;
    if (exec) {
      if (load) {
        regs_[bits(instr, 15, 12)] = read_word(addr);
      } else {
        write_word(addr, read_reg(static_cast<int>(bits(instr, 15, 12))));
      }
    }
  } else if (cls.is_branch) {
    if (exec) {
      const bool link = bits(instr, 24, 24) != 0;
      const auto off = static_cast<std::int32_t>(bits(instr, 23, 0) << 8) >> 8;
      if (link) regs_[14] = pc_ + 4;
      next_pc = static_cast<std::uint32_t>(static_cast<std::int64_t>(pc_) + 8 + 4 * off);
    }
  } else if (!cls.is_swi) {
    throw std::runtime_error("ArmSim: unsupported instruction encoding at pc " +
                             std::to_string(pc_));
  }
  pc_ = next_pc;
}

std::uint64_t ArmSim::run(std::uint64_t max_cycles) {
  std::uint64_t cycles = 0;
  while (!halted_) {
    if (cycles >= max_cycles) throw std::runtime_error("ArmSim: max cycles exceeded");
    step();
    ++cycles;
  }
  return cycles;
}

}  // namespace arm2gc::arm
