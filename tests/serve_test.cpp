// Garbler-service tests: the async multi-session service must be a perfect
// stand-in for both the in-process driver and the two-process socket
// deployment. Pinned here:
//   - differential: outputs, table digest, gate counts and per-class comm
//     bytes are byte-identical across {in-memory driver, two blocking
//     endpoints over a TCP socket, GarblerService + run_client} for every
//     OT backend and at 1 and 4 worker threads — including with a tiny
//     send soft limit that forces the backpressure (park-on-write) path,
//     and under the portable poll() poller backend;
//   - connection churn: hundreds of sequential and dozens of concurrent
//     clients complete correctly with no fd leaks, bounded send-queue high
//     water, and warm-pool hit accounting (1 miss, N-1 hits sequentially);
//   - admission control: Busy at capacity (slot freed on disconnect),
//     UnknownProgram, OptionMismatch and BadMagic all reject at the door;
//   - fault tolerance: a client disconnecting mid-protocol (after hello,
//     with or without trailing garbage) never poisons the pooled WarmState —
//     the next client's run is byte-identical to an undisturbed one.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "arm/arm2gc.h"
#include "builder/circuit_builder.h"
#include "builder/stdlib.h"
#include "core/party.h"
#include "core/skipgate.h"
#include "gc/transport_socket.h"
#include "programs/programs.h"
#include "serve/client.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "test_util.h"

namespace {

using namespace arm2gc;
using a2gtest::to_bits;

netlist::Netlist adder_netlist() {
  builder::CircuitBuilder cb;
  const builder::Bus x = cb.input_bus(netlist::Owner::Alice, 8, 0);
  const builder::Bus y = cb.input_bus(netlist::Owner::Bob, 8, 0);
  cb.output_bus(builder::add(cb, x, y));
  return cb.take();
}

/// The registered contract for the adder: one cycle, default seeds.
core::PartyOptions adder_spec_opts() {
  core::PartyOptions o;
  o.fixed_cycles = 1;
  return o;
}

serve::ProgramSpec adder_spec(const netlist::Netlist& nl, const netlist::BitVec& alice) {
  serve::ProgramSpec spec;
  spec.name = "adder8";
  spec.nl = &nl;
  spec.opts = adder_spec_opts();
  spec.alice_bits = alice;
  return spec;
}

serve::ClientOptions adder_client_opts(gc::OtBackend ot, std::size_t pool,
                                       std::size_t threads) {
  serve::ClientOptions co;
  co.program = "adder8";
  co.fixed_cycles = 1;
  co.ot_backend = ot;
  co.ot_pool = pool;
  co.threads = threads;
  return co;
}

/// In-memory reference of the same protocol run.
core::RunResult adder_reference(const netlist::Netlist& nl, gc::OtBackend ot,
                                std::size_t pool, std::size_t threads,
                                const netlist::BitVec& a, const netlist::BitVec& b) {
  core::RunOptions opts;
  opts.fixed_cycles = 1;
  opts.exec.ot_backend = ot;
  opts.exec.ot_pool = pool;
  opts.exec.threads = threads;
  return core::SkipGateDriver(nl, opts).run(a, b);
}

/// Two blocking endpoints over a TCP socket — the arm2gc_party two-process
/// deployment, minus the fork. Returns the garbler's result plus combined
/// per-class sent bytes.
struct TwoProcessRun {
  core::RunResult garbler;
  gc::CommStats comm;
};

TwoProcessRun two_process_run(const netlist::Netlist& nl, gc::OtBackend ot,
                              std::size_t pool, std::size_t threads,
                              const netlist::BitVec& a, const netlist::BitVec& b) {
  core::RunOptions opts;
  opts.fixed_cycles = 1;
  opts.exec.ot_backend = ot;
  opts.exec.ot_pool = pool;
  opts.exec.threads = threads;

  gc::SocketListener listener("127.0.0.1", 0);
  const std::uint16_t port = listener.port();
  TwoProcessRun out;
  gc::CommStats garbler_sent;
  std::exception_ptr gerr;
  std::thread garbler_thread([&] {
    try {
      auto sock = gc::SocketDuplex::connect("127.0.0.1", port);
      core::GarblerEndpoint endpoint(nl, core::party_options(core::Role::Garbler, opts),
                                     sock->end());
      out.garbler = endpoint.run(a);
      sock->flush();
      garbler_sent = sock->sent();
    } catch (...) {
      gerr = std::current_exception();
    }
  });
  auto sock = listener.accept();
  core::EvaluatorEndpoint endpoint(nl, core::party_options(core::Role::Evaluator, opts),
                                   sock->end());
  (void)endpoint.run(b);
  garbler_thread.join();
  if (gerr) std::rethrow_exception(gerr);
  out.comm = garbler_sent;
  out.comm += sock->sent();
  return out;
}

std::size_t open_fd_count() {
  std::error_code ec;
  std::filesystem::directory_iterator it("/proc/self/fd", ec);
  if (ec) return 0;  // no procfs: the fd-leak check degenerates to 0 == 0
  std::size_t n = 0;
  for (const auto& e : it) {
    (void)e;
    ++n;
  }
  return n;
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms = 10'000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

void expect_matches_reference(const serve::ClientResult& res, const core::RunResult& ref) {
  EXPECT_EQ(res.outputs, ref.final_outputs);
  EXPECT_EQ(res.cycles, ref.stats.cycles);
  EXPECT_EQ(res.final_cycle, ref.final_cycle);
  EXPECT_EQ(res.garbled_non_xor, ref.stats.garbled_non_xor);
  EXPECT_TRUE(res.table_digest == ref.stats.table_digest);
  const gc::CommStats comm = res.comm_total();
  EXPECT_EQ(comm.garbled_table_bytes, ref.stats.comm.garbled_table_bytes);
  EXPECT_EQ(comm.input_label_bytes, ref.stats.comm.input_label_bytes);
  EXPECT_EQ(comm.ot_bytes, ref.stats.comm.ot_bytes);
  EXPECT_EQ(comm.output_bytes, ref.stats.comm.output_bytes);
}

TEST(GarblerService, DifferentialAcrossBackendsAndThreads) {
  const netlist::Netlist nl = adder_netlist();
  const netlist::BitVec a = to_bits(200, 8);
  const netlist::BitVec b = to_bits(55, 8);
  constexpr std::size_t kPool = 16;

  for (const gc::OtBackend ot :
       {gc::OtBackend::Ideal, gc::OtBackend::Iknp, gc::OtBackend::Precomp}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const core::RunResult ref = adder_reference(nl, ot, kPool, threads, a, b);
      EXPECT_EQ(a2gtest::from_bits(ref.final_outputs, 0, 8), 255u);

      const TwoProcessRun two = two_process_run(nl, ot, kPool, threads, a, b);
      EXPECT_EQ(two.garbler.final_outputs, ref.final_outputs);
      EXPECT_TRUE(two.garbler.stats.table_digest == ref.stats.table_digest);
      EXPECT_EQ(two.comm.total(), ref.stats.comm.total());

      serve::ServiceOptions so;
      so.exec_threads = threads;
      serve::GarblerService service({adder_spec(nl, a)}, so);
      service.start();
      const serve::ClientResult res = serve::run_client(
          "127.0.0.1", service.port(), nl, adder_client_opts(ot, kPool, threads), b);
      expect_matches_reference(res, ref);
      service.stop();
      const serve::ServiceStats st = service.stats();
      EXPECT_EQ(st.runs_ok, 1u);
      EXPECT_EQ(st.runs_failed, 0u);
      EXPECT_EQ(st.gates_garbled, ref.stats.garbled_non_xor);
    }
  }
}

/// A tiny soft limit forces the park-on-write backpressure path on nearly
/// every advance; results must not move.
TEST(GarblerService, BackpressureSoftLimitIsResultInvariant) {
  const netlist::Netlist nl = adder_netlist();
  const netlist::BitVec a = to_bits(17, 8);
  const netlist::BitVec b = to_bits(21, 8);
  const core::RunResult ref =
      adder_reference(nl, gc::OtBackend::Iknp, 16, 1, a, b);

  serve::ServiceOptions so;
  so.send_soft_limit = 256;  // park on write constantly
  serve::GarblerService service({adder_spec(nl, a)}, so);
  service.start();
  const serve::ClientResult res = serve::run_client(
      "127.0.0.1", service.port(), nl, adder_client_opts(gc::OtBackend::Iknp, 16, 1), b);
  expect_matches_reference(res, ref);
  service.stop();
  EXPECT_LE(service.stats().send_queue_high_water, so.send_hard_limit);
}

/// The portable poll() backend must serve byte-identical runs (multi-shard,
/// so the cross-shard handoff path runs too).
TEST(GarblerService, PollBackendDifferential) {
  const netlist::Netlist nl = adder_netlist();
  const netlist::BitVec a = to_bits(100, 8);
  const netlist::BitVec b = to_bits(50, 8);
  const core::RunResult ref = adder_reference(nl, gc::OtBackend::Iknp, 16, 1, a, b);

  serve::ServiceOptions so;
  so.poller = serve::PollerBackend::Poll;
  so.shards = 2;
  serve::GarblerService service({adder_spec(nl, a)}, so);
  service.start();
  for (int i = 0; i < 3; ++i) {
    const serve::ClientResult res = serve::run_client(
        "127.0.0.1", service.port(), nl, adder_client_opts(gc::OtBackend::Iknp, 16, 1), b);
    expect_matches_reference(res, ref);
  }
  service.stop();
  EXPECT_EQ(service.stats().runs_ok, 3u);
}

/// The ARM hamming160 workload end to end: netlist-level service vs the
/// in-process ARM driver, with word-level decode through the machine's
/// bit-view helpers.
TEST(GarblerService, ArmHamming160Differential) {
  const programs::Program prog = programs::hamming(5);
  const arm::Arm2Gc machine(prog.cfg, prog.words);
  const std::vector<std::uint32_t> a = {0x0001F00Du, 2, 3, 4, 5};
  const std::vector<std::uint32_t> b = {6, 7, 8, 0xFF00FF00u, 10};

  core::ExecOptions exec;
  exec.ot_backend = gc::OtBackend::Iknp;
  const arm::Arm2GcResult ref = machine.run(a, b, 1u << 20, gc::Scheme::HalfGates, exec);

  serve::ProgramSpec spec;
  spec.name = "hamming160";
  spec.nl = &machine.cpu().nl;
  spec.opts = machine.party_options(core::Role::Garbler, 1u << 20, gc::Scheme::HalfGates, exec);
  spec.alice_bits = machine.alice_input_bits(a);
  serve::GarblerService service({spec}, serve::ServiceOptions{});
  service.start();

  serve::ClientOptions co;
  co.program = "hamming160";
  co.ot_backend = gc::OtBackend::Iknp;
  co.halt_wire = machine.cpu().halt_wire;
  const serve::ClientResult res = serve::run_client(
      "127.0.0.1", service.port(), machine.cpu().nl, co, machine.bob_input_bits(b));
  service.stop();

  EXPECT_EQ(machine.decode_output_bits(res.outputs), ref.outputs);
  EXPECT_EQ(res.cycles, ref.cycles);
  EXPECT_EQ(res.garbled_non_xor, ref.stats.garbled_non_xor);
  EXPECT_TRUE(res.table_digest == ref.stats.table_digest);
  EXPECT_EQ(res.comm_total().total(), ref.stats.comm.total());
}

/// Hundreds of sequential clients: no fd leaks, exactly one warm-pool miss,
/// every run byte-identical, bounded send-queue high water.
TEST(GarblerService, SequentialChurnNoFdLeakAndWarmHits) {
  const netlist::Netlist nl = adder_netlist();
  const netlist::BitVec a = to_bits(7, 8);
  const netlist::BitVec b = to_bits(35, 8);
  const core::RunResult ref = adder_reference(nl, gc::OtBackend::Ideal, 16, 1, a, b);
  const serve::ClientOptions co = adder_client_opts(gc::OtBackend::Ideal, 16, 1);

  // Warmup lifecycle absorbs lazily created process-wide fds, so the leak
  // check below is an exact equality.
  {
    serve::GarblerService service({adder_spec(nl, a)}, serve::ServiceOptions{});
    service.start();
    (void)serve::run_client("127.0.0.1", service.port(), nl, co, b);
    service.stop();
  }
  const std::size_t fds_before = open_fd_count();

  constexpr std::uint64_t kClients = 200;
  serve::ServiceOptions so;
  so.warm_pool = 2;
  {
    serve::GarblerService service({adder_spec(nl, a)}, so);
    service.start();
    for (std::uint64_t i = 0; i < kClients; ++i) {
      const serve::ClientResult res =
          serve::run_client("127.0.0.1", service.port(), nl, co, b);
      ASSERT_EQ(res.outputs, ref.final_outputs) << "client " << i;
      ASSERT_TRUE(res.table_digest == ref.stats.table_digest) << "client " << i;
    }
    service.stop();
    const serve::ServiceStats st = service.stats();
    EXPECT_EQ(st.accepted, kClients);
    EXPECT_EQ(st.runs_ok, kClients);
    EXPECT_EQ(st.runs_failed, 0u);
    EXPECT_EQ(st.warm_misses, 1u);  // sequential: one cold build, then pool hits
    EXPECT_EQ(st.warm_hits, kClients - 1);
    EXPECT_EQ(st.active, 0u);
    EXPECT_GT(st.send_queue_high_water, 0u);
    EXPECT_LE(st.send_queue_high_water, so.send_hard_limit);
    EXPECT_EQ(st.cycles_run, kClients * ref.stats.cycles);
  }
  EXPECT_EQ(open_fd_count(), fds_before);
}

/// Dozens of concurrent clients across two shards: all complete, all
/// byte-identical, accounting adds up.
TEST(GarblerService, ConcurrentChurn) {
  const netlist::Netlist nl = adder_netlist();
  const netlist::BitVec a = to_bits(90, 8);
  const netlist::BitVec b = to_bits(9, 8);
  const core::RunResult ref = adder_reference(nl, gc::OtBackend::Ideal, 16, 1, a, b);
  const serve::ClientOptions co = adder_client_opts(gc::OtBackend::Ideal, 16, 1);

  serve::ServiceOptions so;
  so.shards = 2;
  so.max_clients = 64;
  so.warm_pool = 8;
  serve::GarblerService service({adder_spec(nl, a)}, so);
  service.start();

  constexpr int kThreads = 24;
  constexpr int kRunsPerThread = 3;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      try {
        for (int r = 0; r < kRunsPerThread; ++r) {
          const serve::ClientResult res =
              serve::run_client("127.0.0.1", service.port(), nl, co, b);
          if (res.outputs != ref.final_outputs ||
              !(res.table_digest == ref.stats.table_digest)) {
            failures[t] = "result mismatch";
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[t] = e.what();
      }
    });
  }
  for (auto& c : clients) c.join();
  service.stop();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty()) << "client thread " << t << ": " << failures[t];
  }
  const serve::ServiceStats st = service.stats();
  EXPECT_EQ(st.runs_ok, static_cast<std::uint64_t>(kThreads) * kRunsPerThread);
  EXPECT_EQ(st.runs_failed, 0u);
  EXPECT_EQ(st.active, 0u);
  EXPECT_EQ(st.warm_hits + st.warm_misses, st.runs_ok);
}

/// Admission control: a full service answers Busy without reading the hello;
/// the slot frees when the occupant disconnects.
TEST(GarblerService, BusyAtCapacityThenSlotFrees) {
  const netlist::Netlist nl = adder_netlist();
  const netlist::BitVec a = to_bits(1, 8);
  const netlist::BitVec b = to_bits(2, 8);
  const serve::ClientOptions co = adder_client_opts(gc::OtBackend::Ideal, 16, 1);

  serve::ServiceOptions so;
  so.max_clients = 1;
  serve::GarblerService service({adder_spec(nl, a)}, so);
  service.start();

  // Occupy the only slot with a connection that never says hello.
  auto occupant = gc::SocketDuplex::connect("127.0.0.1", service.port());
  ASSERT_TRUE(wait_until([&] { return service.stats().active == 1; }));

  try {
    (void)serve::run_client("127.0.0.1", service.port(), nl, co, b);
    FAIL() << "expected a Busy rejection";
  } catch (const serve::ServiceRejected& e) {
    EXPECT_EQ(e.status(), serve::HelloStatus::Busy);
  }

  occupant.reset();  // disconnect: the service tears the slot down
  ASSERT_TRUE(wait_until([&] { return service.stats().active == 0; }));
  const serve::ClientResult res = serve::run_client("127.0.0.1", service.port(), nl, co, b);
  EXPECT_EQ(a2gtest::from_bits(res.outputs, 0, 8), 3u);
  service.stop();
  EXPECT_GE(service.stats().hello_rejected, 1u);
}

TEST(GarblerService, RejectsUnknownProgramOptionMismatchAndBadMagic) {
  const netlist::Netlist nl = adder_netlist();
  serve::GarblerService service({adder_spec(nl, to_bits(1, 8))}, serve::ServiceOptions{});
  service.start();

  serve::ClientOptions co = adder_client_opts(gc::OtBackend::Ideal, 16, 1);
  co.program = "no-such-program";
  try {
    (void)serve::run_client("127.0.0.1", service.port(), nl, co, to_bits(2, 8));
    FAIL() << "expected UnknownProgram";
  } catch (const serve::ServiceRejected& e) {
    EXPECT_EQ(e.status(), serve::HelloStatus::UnknownProgram);
  }

  co = adder_client_opts(gc::OtBackend::Ideal, 16, 1);
  co.fixed_cycles = 2;  // spec says 1
  try {
    (void)serve::run_client("127.0.0.1", service.port(), nl, co, to_bits(2, 8));
    FAIL() << "expected OptionMismatch";
  } catch (const serve::ServiceRejected& e) {
    EXPECT_EQ(e.status(), serve::HelloStatus::OptionMismatch);
  }

  // A non-client peer: 64 zero bytes where the hello should be.
  {
    auto sock = gc::SocketDuplex::connect("127.0.0.1", service.port());
    const std::uint8_t zeros[sizeof(serve::HelloRequest)] = {};
    sock->send_control(zeros, sizeof zeros);
    serve::HelloReply reply{};
    sock->recv_control(&reply, sizeof reply);
    EXPECT_EQ(static_cast<serve::HelloStatus>(reply.status), serve::HelloStatus::BadMagic);
  }

  service.stop();
  EXPECT_EQ(service.stats().hello_rejected, 3u);
  EXPECT_EQ(service.stats().runs_ok, 0u);
}

/// A client dying mid-protocol — right after the hello, or after pushing a
/// few garbage bytes into the protocol stream — must never poison the pooled
/// WarmState: the teardown path re-bases it, and the next client's run is
/// byte-identical to an undisturbed warm run.
TEST(GarblerService, MidProtocolDisconnectNeverPoisonsWarmPool) {
  const netlist::Netlist nl = adder_netlist();
  const netlist::BitVec a = to_bits(40, 8);
  const netlist::BitVec b = to_bits(2, 8);
  const core::RunResult ref = adder_reference(nl, gc::OtBackend::Iknp, 16, 1, a, b);
  const serve::ClientOptions co = adder_client_opts(gc::OtBackend::Iknp, 16, 1);

  serve::ServiceOptions so;
  so.warm_pool = 1;  // every client shares ONE pooled WarmState
  serve::GarblerService service({adder_spec(nl, a)}, so);
  service.start();

  // Clean run 1 populates the pool.
  expect_matches_reference(serve::run_client("127.0.0.1", service.port(), nl, co, b), ref);
  ASSERT_EQ(service.stats().warm_misses, 1u);

  const auto send_hello = [&](gc::SocketDuplex& sock) {
    serve::HelloRequest h;
    h.name_len = 6;
    h.ot_backend = static_cast<std::uint8_t>(gc::OtBackend::Iknp);
    h.ot_pool = 16;
    h.fixed_cycles = 1;
    h.max_cycles = core::PartyOptions{}.max_cycles;
    core::kDefaultProtocolSeed.to_bytes(h.protocol_seed);
    sock.send_control(&h, sizeof h);
    sock.send_control("adder8", 6);
    serve::HelloReply reply{};
    sock.recv_control(&reply, sizeof reply);
    ASSERT_EQ(static_cast<serve::HelloStatus>(reply.status), serve::HelloStatus::Ok);
  };

  // Killer 1: hello, then immediate disconnect (the service is mid-start,
  // holding the pooled WarmState).
  std::uint64_t failed_before = service.stats().runs_failed;
  {
    auto sock = gc::SocketDuplex::connect("127.0.0.1", service.port());
    send_hello(*sock);
  }
  ASSERT_TRUE(wait_until([&] { return service.stats().runs_failed > failed_before; }));

  // Clean run 2 rides the same pooled WarmState the killer touched.
  expect_matches_reference(serve::run_client("127.0.0.1", service.port(), nl, co, b), ref);

  // Killer 2: hello plus garbage protocol bytes, then disconnect — the
  // stream desyncs (bad OT framing) instead of cleanly closing.
  failed_before = service.stats().runs_failed;
  {
    auto sock = gc::SocketDuplex::connect("127.0.0.1", service.port());
    send_hello(*sock);
    const std::uint8_t garbage[64] = {0xFF, 0x13, 0x37};
    sock->send_control(garbage, sizeof garbage);
  }
  ASSERT_TRUE(wait_until([&] { return service.stats().runs_failed > failed_before; }));

  // Clean run 3: still byte-identical.
  expect_matches_reference(serve::run_client("127.0.0.1", service.port(), nl, co, b), ref);
  service.stop();

  const serve::ServiceStats st = service.stats();
  EXPECT_EQ(st.runs_ok, 3u);
  // The killers drew from (and the teardown re-based + returned) the pool.
  EXPECT_EQ(st.warm_misses, 1u);
  EXPECT_EQ(st.warm_hits, 4u);
}

}  // namespace
