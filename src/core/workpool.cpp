#include "core/workpool.h"

#include <algorithm>
#include <stdexcept>

namespace arm2gc::core {

WorkPool::WorkPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(threads, 1);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkPool::~WorkPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t WorkPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

void WorkPool::run_serial(std::size_t n, const TaskFn& fn, const TaskFn& feed,
                          const TaskFn& drain) {
  for (std::size_t i = 0; i < n; ++i) {
    if (feed) feed(i);
    fn(i);
    if (drain) drain(i);
  }
}

void WorkPool::execute(WorkPool* pool, std::size_t n, const std::uint32_t* dep_offsets,
                       const std::uint32_t* dep_edges, const TaskFn& fn, const TaskFn& feed,
                       const TaskFn& drain) {
  if (pool == nullptr) {
    run_serial(n, fn, feed, drain);
  } else {
    pool->run(n, dep_offsets, dep_edges, fn, feed, drain);
  }
}

void WorkPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] {
      return shutdown_ || (run_ != nullptr && !run_->ready.empty() && !run_->cancelled);
    });
    if (shutdown_) return;
    RunState& rs = *run_;
    const std::uint32_t i = rs.ready.front();
    rs.ready.pop_front();
    ++rs.inflight;
    lk.unlock();

    std::exception_ptr err;
    try {
      (*rs.fn)(i);
    } catch (...) {
      err = std::current_exception();
    }

    lk.lock();
    --rs.inflight;
    if (err != nullptr) {
      if (rs.error == nullptr) rs.error = err;
      rs.cancelled = true;
      io_cv_.notify_all();
      continue;
    }
    rs.done[i] = 1;
    for (std::uint32_t k = rs.out_offsets[i]; k < rs.out_offsets[i + 1]; ++k) {
      const std::uint32_t d = rs.out_edges[k];
      if (--rs.indeg[d] == 0) {
        rs.ready.push_back(d);
        work_cv_.notify_one();
      }
    }
    io_cv_.notify_all();
  }
}

void WorkPool::run(std::size_t n, const std::uint32_t* dep_offsets,
                   const std::uint32_t* dep_edges, const TaskFn& fn, const TaskFn& feed,
                   const TaskFn& drain) {
  if (n == 0) return;

  RunState rs;
  rs.n = n;
  rs.fn = &fn;
  rs.indeg.assign(n, feed ? 1u : 0u);
  rs.done.assign(n, 0);
  rs.out_offsets.assign(n + 1, 0);
  if (dep_offsets != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::uint32_t k = dep_offsets[i]; k < dep_offsets[i + 1]; ++k) {
        const std::uint32_t dep = dep_edges[k];
        if (dep >= i) throw std::invalid_argument("workpool: dependency edge not backward");
        rs.indeg[i] += 1;
        rs.out_offsets[dep + 1] += 1;
      }
    }
    for (std::size_t i = 0; i < n; ++i) rs.out_offsets[i + 1] += rs.out_offsets[i];
    rs.out_edges.resize(rs.out_offsets[n]);
    std::vector<std::uint32_t> cursor(rs.out_offsets.begin(), rs.out_offsets.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::uint32_t k = dep_offsets[i]; k < dep_offsets[i + 1]; ++k) {
        rs.out_edges[cursor[dep_edges[k]]++] = static_cast<std::uint32_t>(i);
      }
    }
  }

  std::unique_lock<std::mutex> lk(mu_);
  if (run_ != nullptr) throw std::logic_error("workpool: nested run on one pool");
  run_ = &rs;
  for (std::size_t i = 0; i < n; ++i) {
    if (rs.indeg[i] == 0) rs.ready.push_back(static_cast<std::uint32_t>(i));
  }
  if (!rs.ready.empty()) work_cv_.notify_all();

  // The caller is the I/O thread: it alternates draining completed tasks (in
  // ascending order — the single ordered writer) with feeding the next unfed
  // task, and parks on io_cv_ when neither is possible.
  const auto io_step = [&](const TaskFn& io, std::size_t i) {
    lk.unlock();
    std::exception_ptr err;
    try {
      io(i);
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    if (err != nullptr) {
      if (rs.error == nullptr) rs.error = err;
      rs.cancelled = true;
    }
    return err == nullptr;
  };

  std::size_t drained = 0;
  std::size_t fed = feed ? 0 : n;
  while (drained < n && !rs.cancelled) {
    if (rs.done[drained] != 0) {
      if (drain) {
        if (!io_step(drain, drained)) break;
      }
      ++drained;
      continue;
    }
    if (fed < n) {
      const std::size_t i = fed;
      if (!io_step(feed, i)) break;
      ++fed;
      if (--rs.indeg[i] == 0) {
        rs.ready.push_back(static_cast<std::uint32_t>(i));
        work_cv_.notify_one();
      }
      continue;
    }
    io_cv_.wait(lk, [&] { return rs.done[drained] != 0 || rs.cancelled; });
  }

  // Settle: no new task starts once cancelled (the workers' predicate stops
  // them); wait out in-flight ones before the stack-allocated state dies.
  io_cv_.wait(lk, [&] { return rs.inflight == 0; });
  run_ = nullptr;
  lk.unlock();
  if (rs.error != nullptr) std::rethrow_exception(rs.error);
}

}  // namespace arm2gc::core
