// Observability: scoped trace spans with a chrome://tracing JSON exporter.
//
// Tracing answers the question metrics can't: *where inside one run* the
// wall-clock went — per schedule phase, per cone slice, per OT refill batch.
// Spans are recorded into per-thread buffers (own mutex each, so concurrent
// workers never serialize on a global lock) and exported as a Chrome Trace
// Event Format document ({"traceEvents":[{"ph":"X",...}]}) that loads
// directly in chrome://tracing or Perfetto.
//
// Determinism contract: tracing is OFF by default and never feeds back into
// the protocol — a traced run produces byte-identical tables, digests and
// comm counters (pinned in obs_test). The clock is injectable
// (Tracer::enable(clock)) so tests drive spans with a counter instead of
// real time and workers stay reproducible; passing nullptr uses the steady
// clock. Like metrics.h, everything compiles to empty inline stubs under
// -DARM2GC_OBS=OFF (the exporter still writes a valid empty trace so
// `--trace` never produces a broken file).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"  // ARM2GC_OBS gate + now_ns()

namespace arm2gc::obs {

/// Injectable time source for spans; must be monotone non-decreasing.
using ClockFn = std::uint64_t (*)();

#if ARM2GC_OBS

/// Process-wide trace collector. enable()/disable() flip one atomic;
/// call sites pay a single relaxed load when tracing is off. Buffers
/// accumulate until clear()/export; enabling twice keeps prior events.
class Tracer {
 public:
  [[nodiscard]] static Tracer& instance();

  /// Start recording. `clock` overrides the time source (nullptr = steady
  /// clock, nanoseconds).
  void enable(ClockFn clock = nullptr);
  void disable();
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Current trace timestamp from the active clock (valid whether or not
  /// recording is on — used by callers that measure a duration themselves).
  [[nodiscard]] std::uint64_t clock_ns() const noexcept;

  /// Record one complete span (ph:"X"). No-op when disabled. `name` and
  /// `cat` are copied; the calling thread's id becomes the trace tid.
  void record(std::string_view name, std::string_view cat, std::uint64_t ts_ns,
              std::uint64_t dur_ns);

  /// Drop all buffered events (thread registrations persist).
  void clear();

  /// Number of buffered events across all threads (cold path).
  [[nodiscard]] std::size_t event_count() const;

  /// Chrome Trace Event Format: {"traceEvents":[...]} with ph:"X" complete
  /// events, ts/dur in microseconds, tid = per-thread ordinal.
  [[nodiscard]] std::string export_json() const;

  /// export_json() to a file; returns false on I/O failure.
  bool export_to_file(const std::string& path) const;

 private:
  Tracer() = default;
  struct Buffer;
  [[nodiscard]] Buffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<ClockFn> clock_{nullptr};
  struct State;
  [[nodiscard]] State& state() const;
};

/// RAII complete-span: measures construction-to-destruction on the tracer's
/// clock. One relaxed load when tracing is off. `name`/`cat` must outlive
/// the span (string literals at every call site).
class Span {
 public:
  Span(const char* name, const char* cat) noexcept
      : name_(name), cat_(cat), start_(0), active_(false) {
    Tracer& t = Tracer::instance();
    if (t.enabled()) {
      active_ = true;
      start_ = t.clock_ns();
    }
  }
  ~Span() {
    if (active_) {
      Tracer& t = Tracer::instance();
      const std::uint64_t end = t.clock_ns();
      t.record(name_, cat_, start_, end - start_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t start_;
  bool active_;
};

#define A2G_SPAN(name, cat) \
  ::arm2gc::obs::Span A2G_OBS_CONCAT(a2g_span_, __LINE__)(name, cat)

#else  // !ARM2GC_OBS

class Tracer {
 public:
  [[nodiscard]] static Tracer& instance() {
    static Tracer t;
    return t;
  }
  void enable(ClockFn = nullptr) {}
  void disable() {}
  [[nodiscard]] bool enabled() const noexcept { return false; }
  [[nodiscard]] std::uint64_t clock_ns() const noexcept { return 0; }
  void record(std::string_view, std::string_view, std::uint64_t,
              std::uint64_t) {}
  void clear() {}
  [[nodiscard]] std::size_t event_count() const { return 0; }
  [[nodiscard]] std::string export_json() const {
    return "{\"traceEvents\":[]}\n";
  }
  bool export_to_file(const std::string& path) const;
};

class Span {
 public:
  Span(const char*, const char*) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#define A2G_SPAN(name, cat) \
  do {                      \
  } while (0)

#endif  // ARM2GC_OBS

}  // namespace arm2gc::obs
