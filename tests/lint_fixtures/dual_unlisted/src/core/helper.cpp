// Fixture: names both roles' secrets without being dual-listed.
#include "core/plan.h"
namespace fix::core {
class GarblerSession;
class EvaluatorSession;
int helper() { return 1; }
}  // namespace fix::core
