// Ablation studies for the design choices DESIGN.md calls out:
//  1. garbling scheme (classic 4-row vs GRR3 vs half-gates) — communication
//     per non-XOR gate under the same SkipGate plan;
//  2. the deferred-flag / conditional-execution machinery — cost of a
//     predicated ARM instruction vs a branch-free HDL mux;
//  3. Hamming circuit structure (bit-serial counter vs popcount tree);
//  4. SkipGate planner overhead (local compute traded for communication).
#include <chrono>
#include <exception>
#include <thread>
#include <vector>

#include "arm/arm2gc.h"
#include "bench_util.h"
#include "circuits/tg_circuits.h"
#include "crypto/rng.h"
#include "gc/transport_socket.h"
#include "programs/programs.h"

using namespace arm2gc;
using benchutil::num;

namespace {

/// Best-of-n wall-clock milliseconds of a callable.
template <typename Fn>
double best_wall_ms(int n, Fn&& fn) {
  double best = 1e18;
  for (int i = 0; i < n; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::parse_args(argc, argv);
  crypto::CtrRng rng(crypto::block_from_u64(606));

  benchutil::header("Ablation 1: garbling scheme vs communication (Mult 32 instance)");
  {
    const circuits::TgInstance inst = circuits::tg_mult32(0xCAFEBABE, 0x31415926);
    for (const auto scheme : {gc::Scheme::Classic4, gc::Scheme::Grr3, gc::Scheme::HalfGates}) {
      const circuits::TgRun r = circuits::run_instance(inst, core::Mode::SkipGate, scheme);
      const char* name = scheme == gc::Scheme::Classic4
                             ? "classic 4-row"
                             : (scheme == gc::Scheme::Grr3 ? "GRR3 (3-row)" : "half-gates");
      std::printf("%-14s garbled non-XOR %8s   table bytes %10s\n", name,
                  num(r.stats.garbled_non_xor).c_str(),
                  num(r.stats.comm.garbled_table_bytes).c_str());
    }
  }

  benchutil::header("Ablation 2: predicated execution cost on the garbled ARM");
  {
    // max(a,b) with conditional move vs arithmetic selection.
    const auto cmov = arm::assemble(
        "ldr r4, [r0]\nldr r5, [r1]\ncmp r4, r5\nmovlo r4, r5\nstr r4, [r2]\nswi 0\n");
    const auto arith = arm::assemble(
        "ldr r4, [r0]\nldr r5, [r1]\nsubs r6, r4, r5\nsbc r7, r7, r7\nand r6, r6, r7\n"
        "sub r4, r4, r6\nstr r4, [r2]\nswi 0\n");
    arm::MemoryConfig cfg;
    cfg.imem_words = 16;
    cfg.alice_words = cfg.bob_words = cfg.out_words = 1;
    cfg.ram_words = 16;
    for (const auto& [name, prog] : {std::pair{"cmp+movlo", cmov}, {"mask arithmetic", arith}}) {
      const arm::Arm2Gc machine(cfg, prog);
      const auto r = machine.run(std::vector<std::uint32_t>{77}, std::vector<std::uint32_t>{99});
      std::printf("%-16s out=%u garbled non-XOR %6s\n", name, r.outputs[0],
                  num(r.stats.garbled_non_xor).c_str());
    }
  }

  benchutil::header("Ablation 3: Hamming circuit structure (160-bit)");
  {
    netlist::BitVec a(160), b(160);
    for (std::size_t i = 0; i < 160; ++i) {
      a[i] = rng.next_bool();
      b[i] = rng.next_bool();
    }
    const auto serial = circuits::run_instance(circuits::tg_hamming(160, a, b),
                                               core::Mode::SkipGate);
    const auto tree = circuits::run_instance(circuits::tg_hamming_tree(160, a, b),
                                             core::Mode::SkipGate);
    std::printf("bit-serial counter (TinyGarble layout): %s\n",
                num(serial.stats.garbled_non_xor).c_str());
    std::printf("popcount tree (combinational):          %s\n",
                num(tree.stats.garbled_non_xor).c_str());
  }

  benchutil::header("Ablation 4: SkipGate local-compute overhead (Hamming 160 on ARM)");
  {
    const programs::Program p = programs::hamming(5);
    std::vector<std::uint32_t> a(5), b(5);
    for (auto& w : a) w = static_cast<std::uint32_t>(rng.next_u64());
    for (auto& w : b) w = static_cast<std::uint32_t>(rng.next_u64());
    const arm::Arm2Gc machine(p.cfg, p.words);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = machine.run(a, b);
    const auto dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const std::uint64_t wo = machine.conventional_non_xor(r.cycles);
    std::printf("cycles %s, planner+garble wall time %.3fs  (%s)\n", num(r.cycles).c_str(), dt,
                benchutil::stats_brief(r.stats).c_str());
    std::printf("communication: %s garbled tables (vs %s conventional) -> %s bytes total\n",
                num(r.stats.garbled_non_xor).c_str(), num(wo).c_str(),
                num(r.stats.comm.total()).c_str());
    std::printf("local gate-slots visited: %s (linear in circuit size x cycles, §3.4)\n",
                num(r.stats.non_xor_slots).c_str());
  }

  benchutil::header("Ablation 5: cone-granular planning & transport overlap (wall-clock)");
  {
    // Cold single runs (transient caches) with cone memoization off/on, and
    // warm sessions over the lock-step in-memory duplex vs the threaded
    // bounded pipe. Wall-clock is the figure of merit here: the pipe's
    // garbler/evaluator overlap only shows as a wall win with >= 2 cores
    // (on 1 vCPU it shows as per-party CPU reduction instead) — run this on
    // a multi-core host / CI for the overlap number.
    const programs::Program p = programs::hamming(5);
    std::vector<std::uint32_t> a(5), b(5);
    for (auto& w : a) w = static_cast<std::uint32_t>(rng.next_u64());
    for (auto& w : b) w = static_cast<std::uint32_t>(rng.next_u64());
    const arm::Arm2Gc machine(p.cfg, p.words);

    core::ExecOptions cone_off;
    cone_off.cone_memo = false;
    core::ExecOptions cone_on;
    double hit_ratio = 0.0;
    const double cold_off = best_wall_ms(3, [&] { (void)machine.run(a, b, 1u << 20, gc::Scheme::HalfGates, cone_off); });
    const double cold_on = best_wall_ms(3, [&] {
      hit_ratio = machine.run(a, b, 1u << 20, gc::Scheme::HalfGates, cone_on)
                      .stats.cone_hit_ratio();
    });
    std::printf("cold run, cone memo off: %7.2f ms\n", cold_off);
    std::printf("cold run, cone memo on:  %7.2f ms  (cone hit ratio %.1f%%)\n", cold_on,
                100.0 * hit_ratio);

    arm::Arm2Gc::Session lockstep(machine);
    core::ExecOptions pipe_exec;
    pipe_exec.transport = core::TransportKind::ThreadedPipe;
    arm::Arm2Gc::Session piped(machine, pipe_exec);
    (void)lockstep.run(a, b);  // warm the caches before timing
    (void)piped.run(a, b);
    const double warm_lock = best_wall_ms(5, [&] { (void)lockstep.run(a, b); });
    const double warm_pipe = best_wall_ms(5, [&] { (void)piped.run(a, b); });
    std::printf("warm session, lock-step in-memory: %7.2f ms\n", warm_lock);
    std::printf("warm session, threaded pipe:       %7.2f ms (wall; hw_concurrency=%u)\n",
                warm_pipe, std::thread::hardware_concurrency());

    // Socket transport on localhost: the two party endpoints over a real TCP
    // connection (two threads in one process; the exact code path of
    // tools/arm2gc_party, including connection setup per run). The delta to
    // the threaded pipe is the kernel socket cost; the delta to lock-step is
    // overlap minus that cost.
    core::WarmState socket_gwarm(core::Role::Garbler);
    core::WarmState socket_ewarm(core::Role::Evaluator);
    auto socket_once = [&] {
      gc::SocketListener listener("127.0.0.1", 0);
      const std::uint16_t port = listener.port();
      std::exception_ptr garbler_error;
      std::thread garbler_thread([&] {
        try {
          auto sock = gc::SocketDuplex::connect("127.0.0.1", port);
          (void)machine.run_garbler(a, sock->end(),
                                    machine.party_options(core::Role::Garbler), &socket_gwarm);
        } catch (...) {
          garbler_error = std::current_exception();
        }
      });
      try {
        auto sock = listener.accept();
        (void)machine.run_evaluator(b, sock->end(),
                                    machine.party_options(core::Role::Evaluator),
                                    &socket_ewarm);
      } catch (...) {
        garbler_thread.join();  // a joinable thread at unwind would terminate
        throw;
      }
      garbler_thread.join();
      if (garbler_error) std::rethrow_exception(garbler_error);
    };
    socket_once();  // warm the caches and base state before timing
    const double warm_socket = best_wall_ms(5, socket_once);
    std::printf("warm session, TCP socket loopback: %7.2f ms (wall; two endpoints)\n",
                warm_socket);

    if (benchutil::json().enabled()) {
      benchutil::json().add("hamming160.cold_ms_cone_off", cold_off);
      benchutil::json().add("hamming160.cold_ms_cone_on", cold_on);
      benchutil::json().add("hamming160.cold_cone_hit_ratio", hit_ratio);
      benchutil::json().add("hamming160.warm_session_ms_lockstep", warm_lock);
      benchutil::json().add("hamming160.warm_session_ms_threaded_pipe_wall", warm_pipe);
      benchutil::json().add("hamming160.warm_session_ms_socket_loopback_wall", warm_socket);
      benchutil::json().add("hardware_concurrency",
                            static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    }
  }

  benchutil::header("Ablation 6: OT backend (ideal stand-in vs IKNP extension, Hamming 160)");
  {
    // The OT phase of a full garbled-ARM run: Bob's 160 input bits ride one
    // reset batch. Ideal ships the label pair (32 B/choice); IKNP pays the
    // kappa-bit column plus two hashed ciphertexts per choice and a one-time
    // base phase that a warm session amortizes away. Everything but the OT
    // traffic is bit-identical across backends (pinned in tests/ot_test.cpp).
    const programs::Program p = programs::hamming(5);
    std::vector<std::uint32_t> a(5), b(5);
    for (auto& w : a) w = static_cast<std::uint32_t>(rng.next_u64());
    for (auto& w : b) w = static_cast<std::uint32_t>(rng.next_u64());
    const arm::Arm2Gc machine(p.cfg, p.words);

    for (const auto backend : {gc::OtBackend::Ideal, gc::OtBackend::Iknp}) {
      core::ExecOptions exec;
      exec.ot_backend = backend;
      arm::Arm2GcResult last;
      const double cold_ms = best_wall_ms(3, [&] { last = machine.run(a, b, 1u << 20, gc::Scheme::HalfGates, exec); });
      const char* name = backend == gc::OtBackend::Ideal ? "ideal" : "iknp";
      std::printf("%-6s cold run %7.2f ms   ot phase %6.3f ms   ot bytes %9s  (%s choices, %s base OTs)\n",
                  name, cold_ms, static_cast<double>(last.stats.ot_wall_ns) * 1e-6,
                  num(last.stats.comm.ot_bytes).c_str(), num(last.stats.ot_choices).c_str(),
                  num(last.stats.ot_base_ots).c_str());
      if (benchutil::json().enabled()) {
        const std::string pre = std::string("hamming160.ot_") + name;
        benchutil::json().add(pre + "_cold_ms", cold_ms);
        benchutil::json().add(pre + "_phase_ms", static_cast<double>(last.stats.ot_wall_ns) * 1e-6);
        benchutil::json().add(pre + "_bytes", last.stats.comm.ot_bytes);
      }
    }

    // Warm IKNP session: base OTs run once, then every run rides extension.
    core::ExecOptions iknp;
    iknp.ot_backend = gc::OtBackend::Iknp;
    arm::Arm2Gc::Session session(machine, iknp);
    arm::Arm2GcResult first = session.run(a, b);
    arm::Arm2GcResult warm;
    const double warm_ms = best_wall_ms(5, [&] { warm = session.run(a, b); });
    std::printf("iknp   warm session %7.2f ms   ot phase %6.3f ms   (base OTs first run %s, then %s)\n",
                warm_ms, static_cast<double>(warm.stats.ot_wall_ns) * 1e-6,
                num(first.stats.ot_base_ots).c_str(), num(warm.stats.ot_base_ots).c_str());
    if (benchutil::json().enabled()) {
      benchutil::json().add("hamming160.ot_iknp_warm_session_ms", warm_ms);
      benchutil::json().add("hamming160.ot_iknp_warm_phase_ms",
                            static_cast<double>(warm.stats.ot_wall_ns) * 1e-6);
      benchutil::json().add("hamming160.ot_iknp_warm_base_ots", warm.stats.ot_base_ots);
    }
  }

  benchutil::header("Ablation 7: multicore garbling/evaluation (worker pool, Hamming 160)");
  {
    // Warm sessions at 1/2/4 worker threads over the threaded pipe: each
    // party shards its per-cone slices across the pool while the ordered
    // writer keeps the byte stream — and so the table digest and every comm
    // counter — identical to the serial schedule (pinned by
    // tests/parallel_test.cpp; spot-checked again here). Like the transport
    // overlap above, the speedup is wall-clock only with enough cores: on a
    // 1-vCPU host the threads>1 rows serialize and the committed JSON flags
    // them as such — the CI bench artifact (>= 2 vCPUs) is the canonical
    // scaling number.
    const programs::Program p = programs::hamming(5);
    std::vector<std::uint32_t> a(5), b(5);
    for (auto& w : a) w = static_cast<std::uint32_t>(rng.next_u64());
    for (auto& w : b) w = static_cast<std::uint32_t>(rng.next_u64());
    const arm::Arm2Gc machine(p.cfg, p.words);

    crypto::Block serial_digest{};
    double serial_ms = 0.0;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      core::ExecOptions exec;
      exec.transport = core::TransportKind::ThreadedPipe;
      exec.threads = threads;
      arm::Arm2Gc::Session session(machine, exec);
      arm::Arm2GcResult r = session.run(a, b);  // warm the caches before timing
      const double ms = best_wall_ms(5, [&] { r = session.run(a, b); });
      if (threads == 1) {
        serial_digest = r.stats.table_digest;
        serial_ms = ms;
      } else if (r.stats.table_digest != serial_digest) {
        std::fprintf(stderr, "FATAL: threads=%zu digest diverges from serial\n", threads);
        return 1;
      }
      std::printf("warm session, threads=%zu: %7.2f ms  (x%.2f vs serial; %s)\n", threads, ms,
                  serial_ms / ms, benchutil::stats_brief(r.stats).c_str());
      if (benchutil::json().enabled()) {
        char key[64];
        std::snprintf(key, sizeof key, "hamming160.warm_session_ms_threads_%zu", threads);
        benchutil::json().add(key, ms);
        if (threads == 4) benchutil::json().add("hamming160.threads_4_speedup", serial_ms / ms);
      }
    }
    if (benchutil::json().enabled()) {
      // Provenance for readers of the committed JSON: which rows are real
      // wall-clock parallelism on the recording host.
      benchutil::json().add(
          "multicore_note",
          std::string("threads>1 and pipe-overlap rows need that many cores to win on "
                      "wall-clock; with hardware_concurrency recorded above below that, they "
                      "serialize locally (showing as per-party CPU reduction only). The CI "
                      "bench-ablation-json artifact (multi-vCPU runner) is the canonical "
                      "multi-core record, including the warm Hamming-160 threads=4 speedup."));
    }
  }
  benchutil::header("Ablation 8: precomputed OT (online-path bytes and wall, Hamming 160)");
  {
    // The online/offline OT split across all three backends: ideal and IKNP
    // pay every OT byte on the critical path; the precomputed pool banks
    // random OTs through bulk IKNP refills (offline) and serves the online
    // choices as derandomization frames — ~34 B/choice amortized against
    // IKNP's ~192 B floor at streaming batch sizes, with outputs and table
    // digests pinned bit-identical in tests/otpre_test.cpp.
    const programs::Program p = programs::hamming(5);
    std::vector<std::uint32_t> a(5), b(5);
    for (auto& w : a) w = static_cast<std::uint32_t>(rng.next_u64());
    for (auto& w : b) w = static_cast<std::uint32_t>(rng.next_u64());
    const arm::Arm2Gc machine(p.cfg, p.words);

    for (const auto backend :
         {gc::OtBackend::Ideal, gc::OtBackend::Iknp, gc::OtBackend::Precomp}) {
      core::ExecOptions exec;
      exec.ot_backend = backend;
      arm::Arm2GcResult last;
      const double cold_ms = best_wall_ms(
          3, [&] { last = machine.run(a, b, 1u << 20, gc::Scheme::HalfGates, exec); });
      const char* name = backend == gc::OtBackend::Ideal
                             ? "ideal"
                             : (backend == gc::OtBackend::Iknp ? "iknp" : "precomp");
      std::printf(
          "%-8s cold %7.2f ms   online ot %6.3f ms / %9s B   offline ot %6.3f ms / %9s B\n",
          name, cold_ms, static_cast<double>(last.stats.ot_wall_ns) * 1e-6,
          num(last.stats.ot_online_bytes).c_str(),
          static_cast<double>(last.stats.ot_offline_wall_ns) * 1e-6,
          num(last.stats.comm.ot_bytes - last.stats.ot_online_bytes).c_str());
      if (benchutil::json().enabled()) {
        const std::string pre = std::string("hamming160.ot_") + name;
        benchutil::json().add(pre + "_online_bytes", last.stats.ot_online_bytes);
        benchutil::json().add(pre + "_online_ms",
                              static_cast<double>(last.stats.ot_wall_ns) * 1e-6);
        benchutil::json().add(pre + "_offline_bytes",
                              last.stats.comm.ot_bytes - last.stats.ot_online_bytes);
        benchutil::json().add(pre + "_offline_ms",
                              static_cast<double>(last.stats.ot_offline_wall_ns) * 1e-6);
      }
    }

    // Warm precomp session: the base phase and the bulk refill are first-run
    // costs; later runs derandomize from the banked pool and pay zero
    // offline wall (until the maintenance schedule tops the pool up again).
    core::ExecOptions pre;
    pre.ot_backend = gc::OtBackend::Precomp;
    arm::Arm2Gc::Session session(machine, pre);
    arm::Arm2GcResult first = session.run(a, b);
    arm::Arm2GcResult warm;
    const double warm_ms = best_wall_ms(5, [&] { warm = session.run(a, b); });
    std::printf(
        "precomp  warm session %7.2f ms   online ot %6.3f ms / %9s B   (offline first run "
        "%6.3f ms, then %6.3f ms)\n",
        warm_ms, static_cast<double>(warm.stats.ot_wall_ns) * 1e-6,
        num(warm.stats.ot_online_bytes).c_str(),
        static_cast<double>(first.stats.ot_offline_wall_ns) * 1e-6,
        static_cast<double>(warm.stats.ot_offline_wall_ns) * 1e-6);
    if (benchutil::json().enabled()) {
      benchutil::json().add("hamming160.ot_precomp_warm_session_ms", warm_ms);
      benchutil::json().add("hamming160.ot_precomp_warm_online_ms",
                            static_cast<double>(warm.stats.ot_wall_ns) * 1e-6);
      benchutil::json().add("hamming160.ot_precomp_warm_online_bytes",
                            warm.stats.ot_online_bytes);
      benchutil::json().add("hamming160.ot_precomp_warm_offline_ms",
                            static_cast<double>(warm.stats.ot_offline_wall_ns) * 1e-6);
    }
  }

  return benchutil::finish();
}
