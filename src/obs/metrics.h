// Observability: process-wide metrics registry — named counters, gauges and
// fixed-bucket latency histograms with percentile readout. This is the
// measurement layer every ROADMAP item now blocks on (shard-scaling curves,
// stitch-floor headroom, cold-vs-marginal query costs): write-cheap enough
// to live on the WorkPool hot path, readable as a Prometheus text page from
// the serving layer (serve/ renders it; obs itself has no sockets).
//
// Design constraints, in order:
//   - Writes are lock-free and sharded: every instrument is an array of
//     cache-line-isolated atomic cells indexed by a per-thread ordinal, so
//     worker threads never contend on a counter line. Reads (snapshot,
//     percentiles, rendering) sum the shards — they are the cold path.
//   - Instrumentation never changes results: nothing here touches the
//     protocol, transports, sessions or any RNG. The planner-purity lint
//     rule still EXCLUDES obs from core/plan.* and core/workpool.* — the
//     public-values-only planning argument stays free of wall-clock state;
//     pool task execution is traced from the session-side task closures.
//   - Compiled out entirely under -DARM2GC_OBS=OFF: the A2G_* macros expand
//     to nothing and the classes become empty inline stubs, so a disabled
//     build carries zero instructions and zero statics. When compiled in
//     but unsampled, a call site costs one static-init guard load plus one
//     relaxed fetch_add (measured <2% wall on the warm Hamming-160 path,
//     recorded in ROADMAP.md).
//
// Call-site idiom (the macros below package it):
//   static obs::Counter& c = obs::Registry::instance().counter("ot.refills");
//   c.add();
// Metric names are dot-separated lowercase ("serve.phase.work_ns"); the
// Prometheus renderer maps them to arm2gc_serve_phase_work_ns.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

// CMake defines ARM2GC_OBS=0 for a disabled build; standalone header
// compilation (header_selfcheck) and defaulted builds get the enabled shape.
#ifndef ARM2GC_OBS
#define ARM2GC_OBS 1
#endif

namespace arm2gc::obs {

/// Monotonic nanoseconds (steady clock) for duration instruments. Tracing
/// has its own injectable clock (trace.h); metrics always use the real one —
/// they never feed back into protocol decisions.
[[nodiscard]] std::uint64_t now_ns() noexcept;

#if ARM2GC_OBS

/// Write-side sharding width. Threads map to cells by a process-wide ordinal
/// (modulo), so up to kMetricShards writers proceed with zero line sharing.
inline constexpr std::size_t kMetricShards = 16;

/// This thread's metric shard (a small dense ordinal, assigned once per
/// thread, wrapped modulo kMetricShards).
[[nodiscard]] std::size_t shard_index() noexcept;

/// Monotonic counter. add() is a relaxed fetch_add on a thread-sharded
/// cache line; value() sums the shards (cold path, monotone but not a
/// consistent cross-shard snapshot — fine for telemetry).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kMetricShards> cells_{};
};

/// Point-in-time signed value (queue depth, active connections). set() is a
/// plain store: gauges are owned by one logical writer at a time.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram for latency-like values (nanoseconds by
/// convention). Buckets are powers of two: bucket 0 holds exactly {0},
/// bucket i (1 <= i < kBuckets-1) holds [2^(i-1), 2^i), the last bucket is
/// the overflow. Recording is one relaxed fetch_add on a sharded row;
/// percentile readout uses the nearest-rank definition over the summed
/// buckets, interpolated linearly inside the landing bucket (obs_test pins
/// it against a sorted-vector oracle at bucket resolution).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v == 0) return 0;
    const std::size_t w = static_cast<std::size_t>(std::bit_width(v));
    return w < kBuckets - 1 ? w : kBuckets - 1;
  }
  /// Inclusive lower edge of a bucket.
  [[nodiscard]] static constexpr std::uint64_t bucket_lo(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  /// Exclusive upper edge (saturated for the overflow bucket).
  [[nodiscard]] static constexpr std::uint64_t bucket_hi(std::size_t b) noexcept {
    return b + 1 >= kBuckets ? ~std::uint64_t{0} : std::uint64_t{1} << b;
  }

  void record(std::uint64_t v) noexcept {
    Shard& s = shards_[shard_index()];
    s.bucket[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return snapshot().count; }

  /// Nearest-rank percentile, linearly interpolated within the landing
  /// bucket; p in [0, 1]. 0 when empty.
  [[nodiscard]] double percentile(double p) const noexcept;

  /// The [lo, hi] value range of the bucket the p-th value landed in — the
  /// resolution limit of any estimate this histogram can give.
  struct Bounds {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
  };
  [[nodiscard]] Bounds percentile_bounds(double p) const noexcept;

  void reset() noexcept {
    for (Shard& s : shards_) {
      for (auto& b : s.bucket) b.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> bucket{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Name -> instrument registry. Registration (first lookup of a name) takes
/// a mutex and is the cold path; the returned references are stable for the
/// process lifetime, so call sites cache them in function-local statics (the
/// A2G_* macros do). The singleton is deliberately leaked: instruments stay
/// valid inside static destructors.
class Registry {
 public:
  [[nodiscard]] static Registry& instance();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Renders every instrument in Prometheus text exposition format
  /// (text/plain; version=0.0.4): # TYPE headers, arm2gc_-prefixed
  /// sanitized names, histograms as cumulative le-labelled buckets with
  /// _sum/_count. Appends to `out`.
  void render_prometheus(std::string& out) const;

  /// Zeroes every registered instrument (names and handles stay valid).
  /// Test isolation only — never called by library code.
  void reset_values();

  /// Maps a dot-separated metric name to its Prometheus identifier
  /// ("serve.phase.work_ns" -> "arm2gc_serve_phase_work_ns").
  [[nodiscard]] static std::string prometheus_name(std::string_view name);

 private:
  Registry() = default;

  mutable std::mutex mu_;  ///< guards the maps, never the cells
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// RAII duration sampler: records construction-to-destruction nanoseconds
/// into a histogram. Use via A2G_HIST_TIMER so the clock reads vanish in a
/// disabled build.
class ScopedHistTimer {
 public:
  explicit ScopedHistTimer(Histogram& h) noexcept : h_(h), t0_(now_ns()) {}
  ~ScopedHistTimer() { h_.record(now_ns() - t0_); }
  ScopedHistTimer(const ScopedHistTimer&) = delete;
  ScopedHistTimer& operator=(const ScopedHistTimer&) = delete;

 private:
  Histogram& h_;
  std::uint64_t t0_;
};

// Hot-path macros: resolve the handle once (function-local static), then a
// single relaxed atomic op per hit. Compiled to nothing under
// -DARM2GC_OBS=OFF (arguments are NOT evaluated there — keep them
// side-effect free).
#define A2G_OBS_CONCAT2(a, b) a##b
#define A2G_OBS_CONCAT(a, b) A2G_OBS_CONCAT2(a, b)
#define A2G_COUNT_N(name, n)                                         \
  do {                                                               \
    static ::arm2gc::obs::Counter& A2G_OBS_CONCAT(a2g_obs_, __LINE__) = \
        ::arm2gc::obs::Registry::instance().counter(name);           \
    A2G_OBS_CONCAT(a2g_obs_, __LINE__).add(n);                       \
  } while (0)
#define A2G_COUNT(name) A2G_COUNT_N(name, 1)
#define A2G_GAUGE_SET(name, v)                                       \
  do {                                                               \
    static ::arm2gc::obs::Gauge& A2G_OBS_CONCAT(a2g_obs_, __LINE__) =   \
        ::arm2gc::obs::Registry::instance().gauge(name);             \
    A2G_OBS_CONCAT(a2g_obs_, __LINE__).set(v);                       \
  } while (0)
#define A2G_HIST_N(name, v)                                          \
  do {                                                               \
    static ::arm2gc::obs::Histogram& A2G_OBS_CONCAT(a2g_obs_, __LINE__) = \
        ::arm2gc::obs::Registry::instance().histogram(name);         \
    A2G_OBS_CONCAT(a2g_obs_, __LINE__).record(v);                    \
  } while (0)
// Times the rest of the enclosing scope into histogram `name`.
#define A2G_HIST_TIMER(name)                                              \
  static ::arm2gc::obs::Histogram& A2G_OBS_CONCAT(a2g_obs_ht_, __LINE__) = \
      ::arm2gc::obs::Registry::instance().histogram(name);                \
  ::arm2gc::obs::ScopedHistTimer A2G_OBS_CONCAT(a2g_obs_tt_, __LINE__)(   \
      A2G_OBS_CONCAT(a2g_obs_ht_, __LINE__))

#else  // !ARM2GC_OBS — every instrument is an empty inline stub.

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  [[nodiscard]] std::int64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;
  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t) noexcept { return 0; }
  [[nodiscard]] static constexpr std::uint64_t bucket_lo(std::size_t) noexcept { return 0; }
  [[nodiscard]] static constexpr std::uint64_t bucket_hi(std::size_t) noexcept { return 0; }
  void record(std::uint64_t) noexcept {}
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept { return {}; }
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] double percentile(double) const noexcept { return 0.0; }
  struct Bounds {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
  };
  [[nodiscard]] Bounds percentile_bounds(double) const noexcept { return {}; }
  void reset() noexcept {}
};

class Registry {
 public:
  [[nodiscard]] static Registry& instance() {
    static Registry r;
    return r;
  }
  [[nodiscard]] Counter& counter(std::string_view) { return counter_; }
  [[nodiscard]] Gauge& gauge(std::string_view) { return gauge_; }
  [[nodiscard]] Histogram& histogram(std::string_view) { return histogram_; }
  void render_prometheus(std::string& out) const {
    out += "# arm2gc observability compiled out (ARM2GC_OBS=OFF)\n";
  }
  void reset_values() {}
  [[nodiscard]] static std::string prometheus_name(std::string_view name) {
    return std::string(name);
  }

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#define A2G_COUNT_N(name, n) \
  do {                       \
  } while (0)
#define A2G_COUNT(name) \
  do {                  \
  } while (0)
#define A2G_GAUGE_SET(name, v) \
  do {                         \
  } while (0)
#define A2G_HIST_N(name, v) \
  do {                      \
  } while (0)
#define A2G_HIST_TIMER(name) \
  do {                       \
  } while (0)

class ScopedHistTimer {
 public:
  explicit ScopedHistTimer(Histogram&) noexcept {}
  ScopedHistTimer(const ScopedHistTimer&) = delete;
  ScopedHistTimer& operator=(const ScopedHistTimer&) = delete;
};

#endif  // ARM2GC_OBS

}  // namespace arm2gc::obs
