#include "netlist/netlist.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace arm2gc::netlist {

std::size_t Netlist::count_non_free() const {
  return static_cast<std::size_t>(
      std::count_if(gates.begin(), gates.end(),
                    [](const Gate& g) { return !tt_is_affine(g.tt); }));
}

std::size_t Netlist::fixed_input_bits(Owner o) const {
  std::size_t n = 0;
  for (const Input& in : inputs) {
    if (in.owner == o && !in.streamed) n = std::max<std::size_t>(n, in.bit_index + 1);
  }
  return n;
}

std::size_t Netlist::streamed_input_bits(Owner o) const {
  std::size_t n = 0;
  for (const Input& in : inputs) {
    if (in.owner == o && in.streamed) n = std::max<std::size_t>(n, in.bit_index + 1);
  }
  return n;
}

std::size_t Netlist::dff_init_bits(Owner o) const {
  std::size_t n = 0;
  for (const Dff& d : dffs) {
    if ((o == Owner::Alice && d.init == Dff::Init::AliceBit) ||
        (o == Owner::Bob && d.init == Dff::Init::BobBit)) {
      n = std::max<std::size_t>(n, d.init_index + 1);
    }
  }
  return n;
}

void Netlist::validate() const {
  const auto nw = static_cast<WireId>(num_wires());
  const WireId first_gate = first_gate_wire();
  for (std::size_t g = 0; g < gates.size(); ++g) {
    const Gate& gate = gates[g];
    const WireId self = gate_wire(g);
    if (gate.a >= nw || gate.b >= nw) {
      throw std::runtime_error("netlist: gate input wire out of range");
    }
    // Topological invariant: a combinational input must be produced earlier.
    if ((gate.a >= first_gate && gate.a >= self) || (gate.b >= first_gate && gate.b >= self)) {
      throw std::runtime_error("netlist: combinational loop at gate " + std::to_string(g));
    }
  }
  for (const Dff& d : dffs) {
    if (d.d >= nw) throw std::runtime_error("netlist: dff driver out of range");
  }
  for (const OutputPort& o : outputs) {
    if (o.wire >= nw) throw std::runtime_error("netlist: output wire out of range");
  }
}

}  // namespace arm2gc::netlist
