#include "core/skipgate.h"

#include <exception>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/evaluator.h"
#include "core/garbler.h"

namespace arm2gc::core {

namespace {

using netlist::BitVec;
using netlist::Netlist;

PlannerOptions planner_options(const RunOptions& o, PlanCache* shared, ConeMemo* cones) {
  PlannerOptions p;
  p.mode = o.mode;
  p.seed = o.seed;
  p.cache = o.exec.plan_cache;
  p.cache_budget_bytes = o.exec.plan_cache_budget_bytes;
  p.shared_cache = shared;
  // plan_cache == false is the from-scratch baseline: no reuse of any kind.
  p.cone_memo = o.exec.plan_cache && o.exec.cone_memo;
  p.cone_memo_budget_bytes = o.exec.cone_memo_budget_bytes;
  p.shared_cone_memo = cones;
  p.cone_target_gates = o.exec.cone_target_gates;
  return p;
}

/// The per-cycle termination decision, computed from public data only. Both
/// parties run it against their own planner; determinism keeps them agreed.
bool decide_final(const Planner& planner, const RunOptions& opts, bool halt_driven,
                  std::uint64_t cycle, std::uint64_t cc) {
  bool is_final = !halt_driven && cycle + 1 == cc;
  if (opts.halt_wire && opts.mode == Mode::SkipGate) {
    if (!planner.wire_public(*opts.halt_wire)) {
      throw std::runtime_error(
          "skipgate: halt signal became secret (secret program counter); "
          "run with fixed_cycles instead");
    }
    if (planner.wire_value(*opts.halt_wire)) is_final = true;
  }
  if (halt_driven && !is_final && cycle + 1 == cc) {
    throw std::runtime_error("skipgate: max_cycles reached without halt");
  }
  return is_final;
}

/// Garbler role for the shared cycle loop below.
struct GarblerParty {
  GarblerSession session;
  const StreamProvider* streams;
  const BitVec& alice_bits;
  const BitVec& pub_bits;

  GarblerParty(const Netlist& nl, const RunOptions& opts, gc::Transport& tx,
               const StreamProvider* s, const BitVec& alice, const BitVec& pub)
      : session(nl, opts.mode, opts.scheme, opts.seed, tx, opts.exec.ot_backend,
                opts.exec.ot_sender_state),
        streams(s),
        alice_bits(alice),
        pub_bits(pub) {}

  void ot_reset() {}  // the sender's batch runs inside reset()/begin()
  void ot_begin(std::uint64_t) {}
  void reset() { session.reset(alice_bits, pub_bits); }
  void begin(std::uint64_t cycle, const BitVec& pub_stream) {
    BitVec sa;
    if (streams != nullptr && streams->alice) sa = streams->alice(cycle);
    session.begin_cycle(sa, pub_stream);
  }
  void work(const CyclePlan& plan, std::uint64_t) { session.garble_cycle(plan); }
  void sample(const CyclePlan& plan, RunResult& result) {
    result.sampled_outputs.push_back(session.decode_outputs(plan));
  }
  void latch(const CyclePlan& plan) { session.latch(plan); }
  void finalize(RunStats& stats) const {
    // The sender side is the authoritative OT ledger (counts are identical
    // on the receiver side by construction).
    const gc::OtPhaseStats& o = session.ot_stats();
    stats.ot_choices += o.choices;
    stats.ot_batches += o.batches;
    stats.ot_base_ots += o.base_ots;
    stats.ot_wall_ns += o.wall_ns;
    stats.table_digest = session.table_digest();
  }
};

/// Evaluator role for the shared cycle loop below.
struct EvaluatorParty {
  EvaluatorSession session;
  const StreamProvider* streams;
  const BitVec& bob_bits;

  EvaluatorParty(const Netlist& nl, const RunOptions& opts, gc::Transport& tx,
                 const StreamProvider* s, const BitVec& bob)
      : session(nl, opts.mode, opts.scheme, opts.seed, tx, opts.exec.ot_backend,
                opts.exec.ot_receiver_state),
        streams(s),
        bob_bits(bob) {}

  void ot_reset() { session.ot_reset(bob_bits); }
  void ot_begin(std::uint64_t cycle) {
    // The choice bits are copied into the OT queue synchronously; nothing
    // here outlives the call.
    BitVec sb;
    if (streams != nullptr && streams->bob) sb = streams->bob(cycle);
    session.ot_begin(sb);
  }
  void reset() { session.reset(); }
  void begin(std::uint64_t, const BitVec&) { session.begin_cycle(); }
  void work(const CyclePlan& plan, std::uint64_t cycle) { session.eval_cycle(plan, cycle); }
  void sample(const CyclePlan& plan, RunResult&) { session.send_outputs(plan); }
  void latch(const CyclePlan& plan) { session.latch(plan); }
  void finalize(RunStats& stats) const {
    stats.ot_wall_ns += session.ot_stats().wall_ns;
  }
};

/// Both roles interleaved on one thread — the lock-step schedule. The
/// evaluator emits its OT request before the garbler's matching phase (the
/// extension's receiver-first round trip) and sends its output labels
/// before the garbler decodes them.
struct LockstepParty {
  GarblerParty garbler;
  EvaluatorParty evaluator;

  void ot_reset() {
    evaluator.ot_reset();
    garbler.ot_reset();
  }
  void ot_begin(std::uint64_t cycle) {
    evaluator.ot_begin(cycle);
    garbler.ot_begin(cycle);
  }
  void reset() {
    garbler.reset();
    evaluator.reset();
  }
  void begin(std::uint64_t cycle, const BitVec& pub_stream) {
    garbler.begin(cycle, pub_stream);
    evaluator.begin(cycle, pub_stream);
  }
  void work(const CyclePlan& plan, std::uint64_t cycle) {
    garbler.work(plan, cycle);
    evaluator.work(plan, cycle);
  }
  void sample(const CyclePlan& plan, RunResult& result) {
    evaluator.sample(plan, result);
    garbler.sample(plan, result);
  }
  void latch(const CyclePlan& plan) {
    garbler.latch(plan);
    evaluator.latch(plan);
  }
  void finalize(RunStats& stats) const {
    garbler.finalize(stats);
    evaluator.finalize(stats);
  }
};

/// The per-cycle protocol schedule, identical for every party and transport:
/// plan (own planner), act, sample, latch. Keeping it in one place means a
/// schedule change cannot desynchronize one party or one transport only.
template <typename Party>
RunResult run_party(const Netlist& nl, const RunOptions& opts, const BitVec& pub_bits,
                    const StreamProvider* streams, bool halt_driven, std::uint64_t cc,
                    PlanCache* cache, ConeMemo* cones, Party& party) {
  Planner planner(nl, planner_options(opts, cache, cones));
  planner.reset(pub_bits);
  party.ot_reset();  // receiver-first: the OT request precedes the bindings
  party.reset();

  RunResult result;
  RunStats stats;
  for (std::uint64_t cycle = 0; cycle < cc; ++cycle) {
    BitVec sp;
    if (streams != nullptr && streams->pub) sp = streams->pub(cycle);
    planner.begin_cycle(sp);
    party.ot_begin(cycle);
    party.begin(cycle, sp);

    planner.forward();
    const bool is_final = decide_final(planner, opts, halt_driven, cycle, cc);
    const CyclePlan plan = planner.finish(is_final);

    party.work(plan, cycle);
    if (plan.sample) party.sample(plan, result);
    stats.cycles++;
    stats.non_xor_slots += planner.non_free_per_cycle();
    stats.garbled_non_xor += plan.emitted;

    if (is_final) {
      result.final_cycle = cycle;
      break;
    }
    planner.latch(plan);
    party.latch(plan);
  }

  stats.skipped_non_xor = stats.non_xor_slots - stats.garbled_non_xor;
  stats.plan_cache_hits = planner.cache_hits();
  stats.plan_cache_misses = planner.cache_misses();
  stats.cone_hits = planner.cone_hits();
  stats.cone_misses = planner.cone_misses();
  party.finalize(stats);
  result.stats = stats;
  if (!result.sampled_outputs.empty()) result.final_outputs = result.sampled_outputs.back();
  return result;
}

RunResult run_lockstep(const Netlist& nl, const RunOptions& opts, const BitVec& alice_bits,
                       const BitVec& bob_bits, const BitVec& pub_bits,
                       const StreamProvider* streams, bool halt_driven, std::uint64_t cc) {
  gc::InMemoryDuplex duplex;
  LockstepParty party{
      GarblerParty(nl, opts, duplex.garbler_end(), streams, alice_bits, pub_bits),
      EvaluatorParty(nl, opts, duplex.evaluator_end(), streams, bob_bits)};
  RunResult result = run_party(nl, opts, pub_bits, streams, halt_driven, cc,
                               opts.exec.garbler_plan_cache, opts.exec.garbler_cone_memo, party);
  result.stats.comm = duplex.stats();
  result.stats.transport_high_water_blocks = duplex.high_water_blocks();
  return result;
}

/// True iff the exception is the transport's shutdown signal (raised on a
/// peer that was unblocked by close()), which only ever masks the real error.
bool is_transport_closed(const std::exception_ptr& p) {
  try {
    std::rethrow_exception(p);
  } catch (const gc::TransportClosed&) {
    return true;
  } catch (...) {
    return false;
  }
}

RunResult run_threaded(const Netlist& nl, const RunOptions& opts, const BitVec& alice_bits,
                       const BitVec& bob_bits, const BitVec& pub_bits,
                       const StreamProvider* streams, bool halt_driven, std::uint64_t cc) {
  gc::ThreadedPipeDuplex duplex(opts.exec.pipe_blocks);
  RunResult result;
  std::exception_ptr garbler_error;
  std::exception_ptr evaluator_error;

  // Garbler party on a worker thread: it runs ahead of the evaluator until
  // the pipe's backpressure stalls it; output decoding is the only point
  // where it waits for the evaluator.
  std::thread garbler_thread([&] {
    try {
      GarblerParty party(nl, opts, duplex.garbler_end(), streams, alice_bits, pub_bits);
      result = run_party(nl, opts, pub_bits, streams, halt_driven, cc,
                         opts.exec.garbler_plan_cache, opts.exec.garbler_cone_memo, party);
    } catch (...) {
      garbler_error = std::current_exception();
      duplex.close();
    }
  });

  // Evaluator party on the calling thread, with its own planner making the
  // same deterministic decisions.
  try {
    EvaluatorParty party(nl, opts, duplex.evaluator_end(), streams, bob_bits);
    (void)run_party(nl, opts, pub_bits, streams, halt_driven, cc,
                    opts.exec.evaluator_plan_cache, opts.exec.evaluator_cone_memo, party);
  } catch (...) {
    evaluator_error = std::current_exception();
    duplex.close();
  }
  garbler_thread.join();

  if (garbler_error || evaluator_error) {
    // Both parties compute termination errors deterministically; a
    // "transport: closed" error is only ever the echo of the peer's failure.
    if (garbler_error && evaluator_error) {
      std::rethrow_exception(is_transport_closed(garbler_error) &&
                                     !is_transport_closed(evaluator_error)
                                 ? evaluator_error
                                 : garbler_error);
    }
    std::rethrow_exception(garbler_error ? garbler_error : evaluator_error);
  }

  result.stats.comm = duplex.stats();
  result.stats.transport_high_water_blocks = duplex.high_water_blocks();
  return result;
}

}  // namespace

SkipGateDriver::SkipGateDriver(const Netlist& nl, RunOptions opts) : nl_(nl), opts_(opts) {}

RunResult SkipGateDriver::run(const BitVec& alice_bits, const BitVec& bob_bits,
                              const BitVec& pub_bits, const StreamProvider* streams) {
  if (opts_.halt_wire && *opts_.halt_wire >= nl_.num_wires()) {
    throw std::invalid_argument("skipgate: halt wire out of range");
  }
  const bool halt_driven = opts_.halt_wire.has_value() && !opts_.fixed_cycles.has_value();
  if (halt_driven && opts_.mode == Mode::Conventional) {
    throw std::invalid_argument(
        "skipgate: conventional mode cannot observe the halt wire; provide fixed_cycles");
  }
  const std::uint64_t cc = opts_.fixed_cycles ? *opts_.fixed_cycles : opts_.max_cycles;
  if (cc == 0) throw std::invalid_argument("skipgate: zero cycles requested");

  if (opts_.exec.transport == TransportKind::ThreadedPipe) {
    // Neither PlanCache nor ConeMemo is thread-safe; the two party threads
    // must not share one.
    if (opts_.exec.garbler_plan_cache != nullptr &&
        opts_.exec.garbler_plan_cache == opts_.exec.evaluator_plan_cache) {
      throw std::invalid_argument(
          "skipgate: threaded transport requires distinct per-party plan caches");
    }
    if (opts_.exec.garbler_cone_memo != nullptr &&
        opts_.exec.garbler_cone_memo == opts_.exec.evaluator_cone_memo) {
      throw std::invalid_argument(
          "skipgate: threaded transport requires distinct per-party cone memos");
    }
    return run_threaded(nl_, opts_, alice_bits, bob_bits, pub_bits, streams, halt_driven, cc);
  }
  return run_lockstep(nl_, opts_, alice_bits, bob_bits, pub_bits, streams, halt_driven, cc);
}

}  // namespace arm2gc::core
