#include "core/garbler.h"

#include <stdexcept>
#include <string>

#include "core/workpool.h"
#include "obs/trace.h"

namespace arm2gc::core {

namespace {
using crypto::Block;
using netlist::Dff;
using netlist::Gate;
using netlist::Owner;
using netlist::WireId;

constexpr Block kZeroBlock{};
Block maybe(Block b, bool take) { return take ? b : kZeroBlock; }
}  // namespace

GarblerSession::GarblerSession(const netlist::Netlist& nl, Mode mode, gc::Scheme scheme,
                               Block seed, gc::Transport& tx, gc::OtBackend ot_backend,
                               gc::IknpSenderState* warm_ot, WorkPool* pool,
                               gc::RandomOtPoolSender* warm_ot_pool, std::size_t ot_pool)
    : nl_(nl),
      mode_(mode),
      garbler_(seed, scheme),
      tx_(&tx),
      ot_(gc::make_ot_sender(ot_backend, tx, seed, warm_ot, warm_ot_pool, ot_pool)),
      pool_(pool) {
  la_.resize(nl_.num_wires());
  const_la_[0] = const_la_[1] = Block{};
}

/// Binds one secret source bit owned by `owner`: creates the label pair and
/// transfers Bob's label (directly for bits Alice knows, queued into the OT
/// batch for Bob's own bits — the value `v` is ignored then; the receiver
/// chooses at the phase's flush).
void GarblerSession::bind_secret(Owner owner, bool v, Block& la) {
  la = garbler_.fresh_label();
  if (owner == Owner::Bob) {
    ot_->enqueue(la, la ^ garbler_.R());
  } else {
    tx_->send(la ^ maybe(garbler_.R(), v), gc::Traffic::InputLabel);
  }
}

bool GarblerSession::known_bit(Owner owner, std::uint32_t idx, const netlist::BitVec& alice,
                               const netlist::BitVec& pub, const char* what) const {
  if (owner == Owner::Bob) return false;  // transferred by OT; value unused
  const netlist::BitVec& v = owner == Owner::Alice ? alice : pub;
  if (idx >= v.size()) {
    throw std::out_of_range(std::string("skipgate: missing ") + what + " bit " +
                            std::to_string(idx));
  }
  return v[idx];
}

void GarblerSession::reset(const netlist::BitVec& alice_bits, const netlist::BitVec& pub_bits) {
  const bool skipgate = mode_ == Mode::SkipGate;

  // Conventional GC treats even constants as secret wires whose (known)
  // value selects the transferred label.
  if (!skipgate) {
    bind_secret(Owner::Public, false, const_la_[0]);
    bind_secret(Owner::Public, true, const_la_[1]);
  }

  fixed_la_.assign(nl_.inputs.size(), Block{});
  for (std::size_t i = 0; i < nl_.inputs.size(); ++i) {
    const netlist::Input& in = nl_.inputs[i];
    if (in.streamed) continue;
    if (in.owner == Owner::Public && skipgate) continue;  // public wire, no label
    const bool v = known_bit(in.owner, in.bit_index, alice_bits, pub_bits, "fixed input");
    bind_secret(in.owner, v, fixed_la_[i]);
  }

  dff_la_.assign(nl_.dffs.size(), Block{});
  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    const Dff& d = nl_.dffs[i];
    switch (d.init) {
      case Dff::Init::Zero:
      case Dff::Init::One:
        if (!skipgate) bind_secret(Owner::Public, d.init == Dff::Init::One, dff_la_[i]);
        break;
      case Dff::Init::AliceBit: {
        const bool v =
            known_bit(Owner::Alice, d.init_index, alice_bits, pub_bits, "Alice dff init");
        bind_secret(Owner::Alice, v, dff_la_[i]);
        break;
      }
      case Dff::Init::BobBit:
        bind_secret(Owner::Bob, false, dff_la_[i]);
        break;
    }
  }
  ot_->flush();  // one batch for every Bob-owned fixed bit and dff init
}

void GarblerSession::begin_cycle(const netlist::BitVec& alice_stream,
                                 const netlist::BitVec& pub_stream) {
  const bool skipgate = mode_ == Mode::SkipGate;
  la_[netlist::kConst0] = const_la_[0];
  la_[netlist::kConst1] = const_la_[1];

  for (std::size_t i = 0; i < nl_.inputs.size(); ++i) {
    const netlist::Input& in = nl_.inputs[i];
    const WireId w = nl_.input_wire(i);
    if (!in.streamed) {
      la_[w] = fixed_la_[i];
      continue;
    }
    if (in.owner == Owner::Public && skipgate) continue;
    const bool v = known_bit(in.owner, in.bit_index, alice_stream, pub_stream, "streamed input");
    bind_secret(in.owner, v, la_[w]);
  }

  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    la_[nl_.dff_wire(i)] = dff_la_[i];
  }
  ot_->flush();  // this cycle's streamed Bob bits, as one batch
}

void GarblerSession::garble_cycle(const CyclePlan& plan) {
  const WireId first_gate = nl_.first_gate_wire();
  const Block r = garbler_.R();
  const bool conventional = mode_ == Mode::Conventional;
  ++cycle_epoch_;  // advanced on serial and pooled paths alike

  // Prepass: per-slice emitted-table counts. Each cone garbles against the
  // preassigned tweak range starting at tweak0 + 2*emit_base_[si], which is
  // exactly the range the serial pass would consume — so tables are
  // bit-identical no matter which worker builds them.
  emit_base_.assign(plan.num_slices + 1, 0);
  for (std::size_t si = 0; si < plan.num_slices; ++si) {
    const PlanSlice& sl = plan.slices[si];
    const std::uint32_t n = conventional ? sl.count : sl.work_count;
    std::uint64_t emitted = 0;
    for (std::uint32_t k = 0; k < n; ++k) {
      const std::uint32_t j = conventional ? k : sl.work[k];
      if (sl.action(j) == PlanAct::Garble && sl.emit[j] != 0) ++emitted;
    }
    emit_base_[si + 1] = emit_base_[si] + emitted;
  }
  const std::uint64_t tweak0 = garbler_.tweak_cursor();
  if (stage_.size() < plan.num_slices) stage_.resize(plan.num_slices);

  // Worker body: garble one cone slice into its staging buffer. Label
  // reads of upstream slices are ordered by the plan's dependency DAG.
  const auto garble_slice = [&](std::size_t si) {
    // Slice tracing lives in the session's task body, not the WorkPool —
    // the pool stays obs-free under the planner-purity lint rule.
    A2G_SPAN("garble.slice", "slice");
    const PlanSlice& sl = plan.slices[si];
    std::vector<gc::GarbledTable>& stage = stage_[si];
    stage.clear();
    std::uint64_t tweak = tweak0 + 2 * emit_base_[si];
    // SkipGate slices carry an explicit work list of their live gates;
    // Conventional mode processes every gate.
    const std::uint32_t n = conventional ? sl.count : sl.work_count;
    for (std::uint32_t k = 0; k < n; ++k) {
      const std::uint32_t j = conventional ? k : sl.work[k];
      const std::size_t i = sl.first_gate + j;
      const WireId w = first_gate + static_cast<WireId>(i);
      const Gate g = nl_.gates[i];
      switch (sl.action(j)) {
        case PlanAct::Public:
          break;
        case PlanAct::PassA:
          la_[w] = la_[g.a] ^ maybe(r, plan.wire_flip(w) != plan.wire_flip(g.a));
          break;
        case PlanAct::PassB:
          la_[w] = la_[g.b] ^ maybe(r, plan.wire_flip(w) != plan.wire_flip(g.b));
          break;
        case PlanAct::PassC0:
          la_[w] = la_[netlist::kConst0];
          break;
        case PlanAct::PassC1:
          la_[w] = la_[netlist::kConst1];
          break;
        case PlanAct::PassSrc: {
          const WireId src = sl.pass_src[j];
          la_[w] = la_[src] ^ maybe(r, plan.wire_flip(w) != plan.wire_flip(src));
          break;
        }
        case PlanAct::FreeXor:
          la_[w] = la_[g.a] ^ la_[g.b] ^
                   maybe(r, (plan.wire_flip(w) != plan.wire_flip(g.a)) != plan.wire_flip(g.b));
          break;
        case PlanAct::Garble: {
          if (!sl.emit[j]) break;  // dead garbled gate: never built nor sent
          gc::GarbledTable table;
          la_[w] = garbler_.garble_at(la_[g.a], la_[g.b], netlist::tt_and_core(g.tt), tweak,
                                      garbler_.derived_label(cycle_epoch_, i), table);
          tweak += 2;
          stage.push_back(table);
          break;
        }
      }
    }
  };
  // Ordered writer: completed cones drain onto the transport in slice-id
  // order on the calling thread, keeping the framed byte stream — and the
  // digest folded over it — byte-identical to the serial schedule.
  const auto drain_slice = [&](std::size_t si) {
    for (const gc::GarbledTable& table : stage_[si]) {
      tx_->send(table.rows.data(), table.count, gc::Traffic::GarbledTable);
      for (std::uint8_t t = 0; t < table.count; ++t) {
        table_digest_ = table_digest_.gf_double() ^ table.rows[t];
      }
    }
  };
  WorkPool::execute(pool_, plan.num_slices, plan.dep_offsets, plan.dep_edges, garble_slice, {},
                    drain_slice);
  garbler_.advance(emit_base_[plan.num_slices]);
}

netlist::BitVec GarblerSession::decode_outputs(const CyclePlan& plan) {
  netlist::BitVec out;
  out.reserve(nl_.outputs.size());
  const Block r = garbler_.R();
  for (const netlist::OutputPort& o : nl_.outputs) {
    bool bit;
    if (plan.wire_public(o.wire)) {
      bit = plan.wire_value(o.wire);
    } else {
      // Bob sends his output label; Alice decodes it against her pair.
      const Block xb = tx_->recv();
      if (xb == la_[o.wire]) {
        bit = false;
      } else if (xb == (la_[o.wire] ^ r)) {
        bit = true;
      } else {
        throw std::runtime_error("skipgate: output label does not decode");
      }
    }
    out.push_back(bit != o.invert);
  }
  return out;
}

void GarblerSession::latch(const CyclePlan& plan) {
  const Block r = garbler_.R();
  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    const Dff& d = nl_.dffs[i];
    if (!plan.wire_public(d.d)) {
      dff_la_[i] = la_[d.d] ^ maybe(r, d.d_invert);
    }
  }
}

}  // namespace arm2gc::core
