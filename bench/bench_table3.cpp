// Table 3: ARM2GC vs the best prior high-level-language frameworks
// (CBMC-GC and Frigate). Those are external closed systems: their counts are
// the paper's published numbers, quoted as baselines next to our measured
// ARM2GC counts (the same methodology the paper uses).
#include <vector>

#include "arm/arm2gc.h"
#include "bench_util.h"
#include "circuits/tg_circuits.h"
#include "crypto/rng.h"
#include "programs/programs.h"

using namespace arm2gc;
using benchutil::num;

namespace {

std::vector<std::uint32_t> rand_words(crypto::CtrRng& rng, std::size_t n) {
  std::vector<std::uint32_t> v(n);
  for (auto& w : v) w = static_cast<std::uint32_t>(rng.next_u64());
  return v;
}

void row(const std::string& name, const char* cbmc, const char* frigate,
         std::uint64_t paper_arm, std::uint64_t ours) {
  std::printf("%-18s CBMC-GC %10s   Frigate %10s   ARM2GC paper %10s   ours %10s\n",
              name.c_str(), cbmc, frigate, num(paper_arm).c_str(), num(ours).c_str());
  if (benchutil::json().enabled()) benchutil::json().add(name + ".garbled_non_xor", ours);
}

std::uint64_t run_arm(const programs::Program& p, const std::vector<std::uint32_t>& a,
                      const std::vector<std::uint32_t>& b) {
  const arm::Arm2Gc machine(p.cfg, p.words);
  return machine.run(a, b).stats.garbled_non_xor;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::parse_args(argc, argv);
  benchutil::header("Table 3: ARM2GC vs high-level-language GC frameworks");
  std::printf("(CBMC-GC / Frigate columns are the published counts the paper quotes)\n\n");
  crypto::CtrRng rng(crypto::block_from_u64(303));

  row("Sum 32", "-", "31", 31, run_arm(programs::sum(1), rand_words(rng, 1), rand_words(rng, 1)));
  row("Sum 1024", "-", "1,025", 1023,
      run_arm(programs::sum(32), rand_words(rng, 32), rand_words(rng, 32)));
  row("Compare 32", "-", "32", 32,
      run_arm(programs::compare(1), rand_words(rng, 1), rand_words(rng, 1)));
  row("Compare 16384", "-", "16,386", 16384,
      run_arm(programs::compare(512), rand_words(rng, 512), rand_words(rng, 512)));
  row("Hamming 160", "449", "719", 247,
      run_arm(programs::hamming(5), rand_words(rng, 5), rand_words(rng, 5)));
  row("Mult 32", "-", "995", 993,
      run_arm(programs::mult32(), rand_words(rng, 1), rand_words(rng, 1)));
  row("MatrixMult5x5", "127,225", "128,252", 127225,
      run_arm(programs::matmult(5), rand_words(rng, 25), rand_words(rng, 25)));
  row("MatrixMult8x8", "522,304", "-", 522304,
      run_arm(programs::matmult(8), rand_words(rng, 64), rand_words(rng, 64)));
  {
    // AES & SHA3 via the circuit path (our ARM port of the bitsliced code is
    // future work; the number shown is the garbled-circuit cost under
    // SkipGate, the quantity Table 3 compares).
    std::array<std::uint8_t, 16> pt{}, key{};
    const auto aes = circuits::run_instance(circuits::tg_aes128(pt, key), core::Mode::SkipGate);
    row("AES 128", "-", "10,383", 6400, aes.stats.garbled_non_xor);
    const auto sha = circuits::run_instance(circuits::tg_sha3_256({'a', 'b', 'c'}),
                                            core::Mode::SkipGate);
    row("SHA3 256", "-", "-", 37760, sha.stats.garbled_non_xor);
  }
  {
    // a = a op a: the trivial-simplification row. The ARM compiler level
    // folds it; at our level the SkipGate category-iii rule kills it: the
    // garbled cost of e.g. AND(x, x) is zero.
    const auto p = arm::assemble(
        "ldr r4, [r0]\n"
        "and r4, r4, r4\n"
        "eor r4, r4, r4\n"
        "orr r4, r4, r4\n"
        "str r4, [r2]\n"
        "swi 0\n");
    arm::MemoryConfig cfg;
    cfg.imem_words = 16;
    cfg.alice_words = cfg.bob_words = cfg.out_words = 1;
    cfg.ram_words = 16;
    const arm::Arm2Gc machine(cfg, p);
    const auto r = machine.run(std::vector<std::uint32_t>{123}, std::vector<std::uint32_t>{});
    row("a = a op a", "0", "0", 0, r.stats.garbled_non_xor);
  }
  return benchutil::finish();
}
