#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace arm2gc::obs {

namespace {

// Writes export_json() output to `path` atomically enough for our use
// (single writer, trailing newline, fsync not required).
bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (n != body.size()) std::fclose(f);
  return ok;
}

}  // namespace

#if ARM2GC_OBS

namespace {

struct TraceEvent {
  std::string name;
  std::string cat;
  std::uint64_t ts;
  std::uint64_t dur;
  std::uint32_t tid;
};

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

struct Tracer::Buffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct Tracer::State {
  std::mutex mu;  ///< guards the buffer list, not the buffers
  std::vector<std::unique_ptr<Buffer>> buffers;
};

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer();  // leaked: spans may fire in static dtors
  return *t;
}

Tracer::State& Tracer::state() const {
  static State* s = new State();
  return *s;
}

Tracer::Buffer& Tracer::local_buffer() {
  thread_local Buffer* buf = nullptr;
  if (buf == nullptr) {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.buffers.push_back(std::make_unique<Buffer>());
    buf = s.buffers.back().get();
    buf->tid = static_cast<std::uint32_t>(s.buffers.size() - 1);
  }
  return *buf;
}

void Tracer::enable(ClockFn clock) {
  clock_.store(clock, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

std::uint64_t Tracer::clock_ns() const noexcept {
  const ClockFn fn = clock_.load(std::memory_order_relaxed);
  return fn != nullptr ? fn() : now_ns();
}

void Tracer::record(std::string_view name, std::string_view cat,
                    std::uint64_t ts_ns, std::uint64_t dur_ns) {
  if (!enabled()) return;
  Buffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(TraceEvent{std::string(name), std::string(cat), ts_ns,
                                  dur_ns, buf.tid});
}

void Tracer::clear() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (auto& buf : s.buffers) {
    std::lock_guard<std::mutex> blk(buf->mu);
    buf->events.clear();
  }
}

std::size_t Tracer::event_count() const {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::size_t n = 0;
  for (auto& buf : s.buffers) {
    std::lock_guard<std::mutex> blk(buf->mu);
    n += buf->events.size();
  }
  return n;
}

std::string Tracer::export_json() const {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char num[96];
  for (auto& buf : s.buffers) {
    std::lock_guard<std::mutex> blk(buf->mu);
    for (const TraceEvent& e : buf->events) {
      if (!first) out.push_back(',');
      first = false;
      out += "{\"name\":";
      append_json_string(out, e.name);
      out += ",\"cat\":";
      append_json_string(out, e.cat);
      // Chrome expects microsecond timestamps; keep ns precision in the
      // fractional part.
      std::snprintf(num, sizeof(num),
                    ",\"ph\":\"X\",\"ts\":%" PRIu64 ".%03" PRIu64
                    ",\"dur\":%" PRIu64 ".%03" PRIu64 ",\"pid\":1,\"tid\":%u}",
                    e.ts / 1000, e.ts % 1000, e.dur / 1000, e.dur % 1000,
                    e.tid);
      out += num;
    }
  }
  out += "]}\n";
  return out;
}

bool Tracer::export_to_file(const std::string& path) const {
  return write_file(path, export_json());
}

#else  // !ARM2GC_OBS

bool Tracer::export_to_file(const std::string& path) const {
  return write_file(path, export_json());
}

#endif  // ARM2GC_OBS

}  // namespace arm2gc::obs
