// Sequential gate-level netlist: the common representation produced by the
// circuit builder / ARM netlist generator and consumed by the simulator and
// the SkipGate garbling sessions.
//
// Wire id layout (fixed, so a wire id doubles as a topological timestamp):
//   0                      const 0
//   1                      const 1
//   [2, 2+I)               primary inputs
//   [2+I, 2+I+D)           flip-flop outputs
//   [2+I+D, 2+I+D+G)       gate outputs, in topological order
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/gate.h"

namespace arm2gc::netlist {

using WireId = std::uint32_t;

/// Bit vector used for circuit inputs/outputs throughout the library.
using BitVec = std::vector<bool>;

inline constexpr WireId kConst0 = 0;
inline constexpr WireId kConst1 = 1;
inline constexpr WireId kFirstInputWire = 2;

/// Who supplies a value: both parties (public), Alice, or Bob.
enum class Owner : std::uint8_t { Public, Alice, Bob };

/// A primary input bit. Streamed inputs receive a fresh bit every clock
/// cycle (bit-serial circuits); fixed inputs are bound once at setup.
struct Input {
  Owner owner = Owner::Public;
  bool streamed = false;
  std::uint32_t bit_index = 0;  ///< index into the owner's (per-cycle) bit vector
  std::string name;
};

/// A D flip-flop. `d` is assigned after construction (sequential feedback).
/// The initial state is a constant or a bit of a party's private input —
/// this is how the garbled processor loads inputs (paper §4.1).
struct Dff {
  enum class Init : std::uint8_t { Zero, One, AliceBit, BobBit };
  WireId d = kConst0;
  bool d_invert = false;
  Init init = Init::Zero;
  std::uint32_t init_index = 0;  ///< bit index for AliceBit/BobBit inits
};

/// A two-input gate; output = tt(a, b).
struct Gate {
  WireId a = kConst0;
  WireId b = kConst0;
  TruthTable tt = kTtZero;
};

struct OutputPort {
  WireId wire = kConst0;
  bool invert = false;
  std::string name;
};

class Netlist {
 public:
  std::vector<Input> inputs;
  std::vector<Dff> dffs;
  std::vector<Gate> gates;
  std::vector<OutputPort> outputs;

  /// If true, outputs are sampled every clock cycle (bit-serial circuits);
  /// otherwise only the final cycle's outputs are decoded. This matters to
  /// SkipGate: per-cycle sampling pins output-cone gates every cycle.
  bool outputs_every_cycle = false;

  [[nodiscard]] std::size_t num_wires() const {
    return 2 + inputs.size() + dffs.size() + gates.size();
  }
  [[nodiscard]] WireId input_wire(std::size_t i) const {
    return static_cast<WireId>(kFirstInputWire + i);
  }
  [[nodiscard]] WireId dff_wire(std::size_t i) const {
    return static_cast<WireId>(kFirstInputWire + inputs.size() + i);
  }
  [[nodiscard]] WireId gate_wire(std::size_t g) const {
    return static_cast<WireId>(kFirstInputWire + inputs.size() + dffs.size() + g);
  }
  [[nodiscard]] WireId first_gate_wire() const { return gate_wire(0); }

  /// Gates whose truth table is non-affine: with free-XOR these are exactly
  /// the gates that cost garbled-table communication. The paper's headline
  /// metric counts these.
  [[nodiscard]] std::size_t count_non_free() const;

  /// Number of Alice/Bob fixed-input bits (for sizing input vectors).
  [[nodiscard]] std::size_t fixed_input_bits(Owner o) const;
  [[nodiscard]] std::size_t streamed_input_bits(Owner o) const;
  /// Highest init_index + 1 over DFFs initialized from the given party.
  [[nodiscard]] std::size_t dff_init_bits(Owner o) const;

  /// Checks the structural invariants (topological order, wire ids in range,
  /// DFF drivers assigned). Throws std::runtime_error on violation.
  void validate() const;
};

}  // namespace arm2gc::netlist
