// Fixed-key garbling hash H(X, tweak) built from AES-128, following the
// pi-hash of Bellare et al. (S&P'13): H(X,t) = pi(K) xor K with K = 2X xor t,
// where pi is AES under a fixed public key. This is the hash used by
// JustGarble/TinyGarble-style engines and by the half-gates construction.
#pragma once

#include <cstdint>

#include "crypto/aes128.h"
#include "crypto/block.h"

namespace arm2gc::crypto {

/// Correlation-robust hash for garbling. Stateless and thread-compatible; the
/// fixed AES key is baked in at construction.
///
/// The batched entry points (`hash2`, `hash4`) hash independent
/// (label, tweak) pairs through one pipelined pass over the AES backend and
/// are bit-identical to the corresponding scalar calls — half-gates garbling
/// does 4 independent hashes per gate and evaluation does 2, so these are the
/// protocol's natural batch widths.
class PiHash {
 public:
  PiHash();

  /// Selects the AES backend explicitly (cross-checks and benchmarks);
  /// the default constructor uses runtime dispatch.
  explicit PiHash(Aes128::Backend backend);

  /// H(label, tweak): tweak must be unique per (gate, row-half) use.
  [[nodiscard]] Block operator()(Block label, std::uint64_t tweak) const;

  /// Hashes 2 independent (label, tweak) pairs. `out` may alias `in`.
  void hash2(const Block in[2], const std::uint64_t tweak[2], Block out[2]) const;

  /// Hashes 4 independent (label, tweak) pairs. `out` may alias `in`.
  void hash4(const Block in[4], const std::uint64_t tweak[4], Block out[4]) const;

  /// True iff the underlying cipher dispatches to AES-NI.
  [[nodiscard]] bool uses_aesni() const { return pi_.uses_aesni(); }

 private:
  Aes128 pi_;
};

/// Historical name from the seed implementation.
using GarbleHash = PiHash;

}  // namespace arm2gc::crypto
