// Fixture: role-neutral worker pool. Pure execution machinery (tasks +
// dependency edges) the planner may include; see the purity_workpool case
// for the violating counterpart.
#pragma once
namespace fix::core {
class WorkPool {
 public:
  explicit WorkPool(unsigned threads) : threads_(threads) {}
  unsigned threads() const { return threads_; }

 private:
  unsigned threads_ = 1;
};
}  // namespace fix::core
