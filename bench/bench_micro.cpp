// Microbenchmarks (google-benchmark): garbling primitives and protocol
// throughput. These are our own instrumentation, not a paper table: the
// paper's metric is communication, but local compute must stay linear
// (SkipGate's complexity argument, §3.4).
//
// The AES benchmarks are parameterized by backend (0 = portable tables,
// 1 = AES-NI) and by batching (scalar vs hash4/encrypt_batch), so one run
// shows the full speedup ladder recorded in BENCH_micro.json. AES-NI rows
// silently measure the portable fallback on CPUs without the extension —
// check the reported labels.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "arm/arm2gc.h"
#include "builder/circuit_builder.h"
#include "builder/stdlib.h"
#include "core/skipgate.h"
#include "core/workpool.h"
#include "crypto/aes128.h"
#include "crypto/prf.h"
#include "crypto/rng.h"
#include "crypto/transpose.h"
#include "gc/garble.h"
#include "gc/otext.h"
#include "gc/otpre.h"
#include "gc/transport.h"
#include "programs/programs.h"

using namespace arm2gc;

namespace {

crypto::Aes128::Backend backend_arg(const benchmark::State& state) {
  return state.range(0) == 0 ? crypto::Aes128::Backend::Portable
                             : crypto::Aes128::Backend::AesNi;
}

void set_backend_label(benchmark::State& state, bool uses_aesni) {
  state.SetLabel(uses_aesni ? "aesni" : "portable");
}

void set_scheme_label(benchmark::State& state, gc::Scheme scheme) {
  switch (scheme) {
    case gc::Scheme::HalfGates: state.SetLabel("halfgates"); break;
    case gc::Scheme::Grr3: state.SetLabel("grr3"); break;
    case gc::Scheme::Classic4: state.SetLabel("classic4"); break;
  }
}

}  // namespace

static void BM_Aes128Encrypt(benchmark::State& state) {
  const crypto::Aes128 aes(crypto::block_from_u64(1), backend_arg(state));
  crypto::Block x = crypto::block_from_u64(2);
  for (auto _ : state) {
    x = aes.encrypt(x);
    benchmark::DoNotOptimize(x);
  }
  set_backend_label(state, aes.uses_aesni());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Aes128Encrypt)->Arg(0)->Arg(1);

static void BM_Aes128EncryptBatch8(benchmark::State& state) {
  const crypto::Aes128 aes(crypto::block_from_u64(1), backend_arg(state));
  crypto::Block x[8];
  for (int i = 0; i < 8; ++i) x[i] = crypto::block_from_u64(static_cast<std::uint64_t>(i));
  for (auto _ : state) {
    aes.encrypt_batch(x, 8);
    benchmark::DoNotOptimize(x[7]);
  }
  set_backend_label(state, aes.uses_aesni());
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Aes128EncryptBatch8)->Arg(0)->Arg(1);

static void BM_PiHash(benchmark::State& state) {
  const crypto::PiHash h(backend_arg(state));
  crypto::Block x = crypto::block_from_u64(3);
  std::uint64_t t = 0;
  for (auto _ : state) {
    x = h(x, t++);
    benchmark::DoNotOptimize(x);
  }
  set_backend_label(state, h.uses_aesni());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PiHash)->Arg(0)->Arg(1);

static void BM_PiHash4(benchmark::State& state) {
  const crypto::PiHash h(backend_arg(state));
  crypto::Block x[4];
  for (int i = 0; i < 4; ++i) x[i] = crypto::block_from_u64(static_cast<std::uint64_t>(i + 4));
  std::uint64_t t = 0;
  std::uint64_t tw[4];
  for (auto _ : state) {
    for (int i = 0; i < 4; ++i) tw[i] = t++;
    h.hash4(x, tw, x);
    benchmark::DoNotOptimize(x[3]);
  }
  set_backend_label(state, h.uses_aesni());
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_PiHash4)->Arg(0)->Arg(1);

/// Garbled AND gates per second, per scheme (runtime-dispatched backend).
static void BM_Garble(benchmark::State& state) {
  const auto scheme = static_cast<gc::Scheme>(state.range(0));
  gc::Garbler g(crypto::block_from_u64(4), scheme);
  const crypto::Block a0 = g.fresh_label();
  const crypto::Block b0 = g.fresh_label();
  const netlist::AndCore core = netlist::tt_and_core(netlist::kTtAnd);
  for (auto _ : state) {
    gc::GarbledTable t;
    benchmark::DoNotOptimize(g.garble(a0, b0, core, t));
  }
  set_scheme_label(state, scheme);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Garble)->Arg(0)->Arg(1)->Arg(2);

/// Evaluated AND gates per second, per scheme.
static void BM_Eval(benchmark::State& state) {
  const auto scheme = static_cast<gc::Scheme>(state.range(0));
  gc::Garbler g(crypto::block_from_u64(5), scheme);
  const crypto::Block a0 = g.fresh_label();
  const crypto::Block b0 = g.fresh_label();
  gc::GarbledTable t;
  const crypto::Block w0 = g.garble(a0, b0, netlist::tt_and_core(netlist::kTtAnd), t);
  benchmark::DoNotOptimize(w0);
  // One long-lived evaluator: past the first iteration the tweak sequence no
  // longer matches the table, but the per-gate hash work — what this bench
  // measures — is identical, and rebuilding an evaluator per iteration would
  // measure the AES key schedule instead.
  gc::Evaluator ev(scheme);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.eval(a0, b0, t));
  }
  set_scheme_label(state, scheme);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Eval)->Arg(0)->Arg(1)->Arg(2);

/// The parallel sessions' hot loop in isolation: independent cone slices
/// garbled via the stateless garble_at against preassigned tweak ranges on a
/// WorkPool, the ordered drain folding each slice's tables into a digest in
/// slice order (the ordered-transport-writer stand-in). arg0 = worker
/// threads (1 = the serial path). Pure garbling compute — no transport,
/// planner or OT — so the scaling here upper-bounds the session speedup.
static void BM_ParallelGarbleCones(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kSlices = 64;
  constexpr std::size_t kGates = 64;
  gc::Garbler g(crypto::block_from_u64(31));
  const netlist::AndCore core = netlist::tt_and_core(netlist::kTtAnd);
  std::vector<crypto::Block> a0(kSlices), b0(kSlices);
  for (std::size_t i = 0; i < kSlices; ++i) {
    a0[i] = g.fresh_label();
    b0[i] = g.fresh_label();
  }
  std::vector<std::vector<gc::GarbledTable>> stage(kSlices,
                                                   std::vector<gc::GarbledTable>(kGates));
  std::unique_ptr<core::WorkPool> pool;
  if (threads > 1) pool = std::make_unique<core::WorkPool>(threads);
  crypto::Block digest = crypto::block_from_u64(0);
  for (auto _ : state) {
    const std::uint64_t tweak0 = g.tweak_cursor();
    const auto fn = [&](std::size_t si) {
      crypto::Block a = a0[si];
      crypto::Block b = b0[si];
      for (std::size_t k = 0; k < kGates; ++k) {
        const std::uint64_t tweak = tweak0 + 2 * (si * kGates + k);
        const crypto::Block w = g.garble_at(a, b, core, tweak, crypto::Block{}, stage[si][k]);
        b = a;
        a = w;  // chain within the slice; slices stay independent
      }
    };
    const auto drain = [&](std::size_t si) {
      for (const auto& t : stage[si]) {
        for (std::uint8_t r = 0; r < t.count; ++r) digest = digest ^ t.rows[r];
      }
    };
    core::WorkPool::execute(pool.get(), kSlices, nullptr, nullptr, fn, {}, drain);
    g.advance(kSlices * kGates);
    benchmark::DoNotOptimize(digest);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kSlices * kGates));
}
BENCHMARK(BM_ParallelGarbleCones)->Arg(1)->Arg(2)->Arg(4);

/// 128xN bit-transpose throughput (the IKNP column->row pivot).
/// arg0: 0 = portable kernel, 1 = dispatched (SSE2 when compiled in).
static void BM_Transpose128xN(benchmark::State& state) {
  constexpr std::size_t kN = 4096;
  const std::size_t stride = kN / 8;
  std::vector<std::uint8_t> rows(128 * stride);
  crypto::CtrRng rng(crypto::block_from_u64(17));
  for (auto& b : rows) b = static_cast<std::uint8_t>(rng.next_u64());
  std::vector<crypto::Block> out(kN);
  const bool fast = state.range(0) != 0;
  for (auto _ : state) {
    if (fast) {
      crypto::transpose_128xn(rows.data(), stride, kN, out.data());
    } else {
      crypto::transpose_128xn_portable(rows.data(), stride, kN, out.data());
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(fast ? (crypto::transpose_uses_sse() ? "sse2" : "portable-dispatch")
                      : "portable");
  // One item = one 128-bit output row (i.e. one OT's worth of matrix work).
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kN));
}
BENCHMARK(BM_Transpose128xN)->Arg(0)->Arg(1);

/// OT throughput through the batched endpoints over an in-memory duplex,
/// base OTs amortized across the run (warm endpoints, as in a session).
/// arg0: backend (0 = ideal stand-in, 1 = IKNP), arg1: batch size.
static void BM_OtExtension(benchmark::State& state) {
  const auto backend = state.range(0) == 0 ? gc::OtBackend::Ideal : gc::OtBackend::Iknp;
  const auto m = static_cast<std::size_t>(state.range(1));
  gc::InMemoryDuplex duplex;
  const crypto::Block seed = crypto::block_from_u64(23);
  auto sender = gc::make_ot_sender(backend, duplex.garbler_end(), seed, nullptr);
  auto receiver = gc::make_ot_receiver(backend, duplex.evaluator_end(), seed, nullptr);
  gc::Garbler g(crypto::block_from_u64(29));
  std::vector<crypto::Block> x0(m), got(m);
  for (auto& b : x0) b = g.fresh_label();
  std::uint64_t pattern = 0x5DEECE66D;
  for (auto _ : state) {
    for (std::size_t j = 0; j < m; ++j) {
      receiver->enqueue(((pattern >> (j % 61)) & 1u) != 0, &got[j]);
    }
    receiver->request();
    for (std::size_t j = 0; j < m; ++j) sender->enqueue(x0[j], x0[j] ^ g.R());
    sender->flush();
    receiver->finish();
    benchmark::DoNotOptimize(got.data());
    pattern = pattern * 6364136223846793005ull + 1442695040888963407ull;
  }
  state.SetLabel(backend == gc::OtBackend::Ideal ? "ideal" : "iknp");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
  state.counters["bytes_per_ot"] = benchmark::Counter(
      static_cast<double>(duplex.stats().ot_bytes) /
      static_cast<double>(sender->stats().choices ? sender->stats().choices : 1));
}
BENCHMARK(BM_OtExtension)
    ->Args({0, 160})
    ->Args({1, 160})
    ->Args({0, 4096})
    ->Args({1, 4096})
    ->Args({1, 1});

/// Online cost of the precomputed backend (gc/otpre.h): pure
/// derandomization against a banked random-OT pool. Refills run outside the
/// timed region (paused, as the maintenance schedule runs them during
/// evaluator idle time), so this measures exactly the per-batch critical
/// path that BM_OtExtension pays in full. arg0: batch size.
static void BM_OtDerandomize(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  gc::InMemoryDuplex duplex;
  const crypto::Block seed = crypto::block_from_u64(23);
  gc::RandomOtPoolSender spool(seed, 1u << 15);
  gc::RandomOtPoolReceiver rpool(seed, 1u << 15);
  auto sender =
      gc::make_ot_sender(gc::OtBackend::Precomp, duplex.garbler_end(), seed, nullptr, &spool);
  auto receiver =
      gc::make_ot_receiver(gc::OtBackend::Precomp, duplex.evaluator_end(), seed, nullptr, &rpool);
  gc::Garbler g(crypto::block_from_u64(29));
  std::vector<crypto::Block> x0(m), got(m);
  for (auto& b : x0) b = g.fresh_label();
  std::uint64_t pattern = 0x5DEECE66D;
  for (auto _ : state) {
    if (spool.available() < m || spool.available() < spool.low_water()) {
      state.PauseTiming();
      receiver->maintain_request();
      sender->maintain();
      receiver->maintain_finish();
      state.ResumeTiming();
    }
    for (std::size_t j = 0; j < m; ++j) {
      receiver->enqueue(((pattern >> (j % 61)) & 1u) != 0, &got[j]);
    }
    receiver->request();
    for (std::size_t j = 0; j < m; ++j) sender->enqueue(x0[j], x0[j] ^ g.R());
    sender->flush();
    receiver->finish();
    benchmark::DoNotOptimize(got.data());
    pattern = pattern * 6364136223846793005ull + 1442695040888963407ull;
  }
  state.SetLabel("precomp");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
  state.counters["online_bytes_per_ot"] = benchmark::Counter(
      static_cast<double>(sender->stats().online_bytes) /
      static_cast<double>(sender->stats().choices ? sender->stats().choices : 1));
}
BENCHMARK(BM_OtDerandomize)->Arg(1)->Arg(8)->Arg(160)->Arg(4096);

/// End-to-end protocol throughput on a 32x32 multiplier, per mode.
static void BM_ProtocolMul32(benchmark::State& state) {
  builder::CircuitBuilder cb;
  const builder::Bus a = cb.input_bus(netlist::Owner::Alice, 32, 0);
  const builder::Bus b = cb.input_bus(netlist::Owner::Bob, 32, 0);
  cb.output_bus(builder::mul_lower(cb, a, b, 32));
  const netlist::Netlist nl = cb.take();
  netlist::BitVec av(32, true), bv(32, false);
  core::RunOptions opts;
  opts.mode = state.range(0) == 0 ? core::Mode::SkipGate : core::Mode::Conventional;
  opts.fixed_cycles = 1;
  for (auto _ : state) {
    core::SkipGateDriver driver(nl, opts);
    benchmark::DoNotOptimize(driver.run(av, bv));
  }
  state.SetLabel(state.range(0) == 0 ? "skipgate" : "conventional");
}
BENCHMARK(BM_ProtocolMul32)->Arg(0)->Arg(1);

namespace {

/// Full ARM2GC protocol run (SkipGate, halt-driven), parameterized by plan
/// cache (arg0), transport (arg1) and cone memoization (arg2) — the
/// per-cycle plan cache skips classification on revisited public control
/// states, the cone memo re-classifies only dirty cones on cache-missed
/// cycles, and the threaded pipe overlaps garbling with evaluation.
/// Labels: "cache=0/1 pipe=0/1 cone=0/1".
void protocol_arm(benchmark::State& state, const programs::Program& prog,
                  std::vector<std::uint32_t> a, std::vector<std::uint32_t> b) {
  const arm::Arm2Gc machine(prog.cfg, prog.words);
  core::ExecOptions exec;
  exec.plan_cache = state.range(0) != 0;
  exec.transport = state.range(1) != 0 ? core::TransportKind::ThreadedPipe
                                       : core::TransportKind::InMemory;
  exec.cone_memo = state.range(2) != 0;
  std::uint64_t cycles = 0;
  double hit_ratio = 0.0;
  double cone_ratio = 0.0;
  for (auto _ : state) {
    const arm::Arm2GcResult r = machine.run(a, b, 1u << 20, gc::Scheme::HalfGates, exec);
    benchmark::DoNotOptimize(r.outputs.data());
    cycles = r.cycles;
    hit_ratio = r.stats.plan_cache_hit_ratio();
    cone_ratio = r.stats.cone_hit_ratio();
  }
  state.SetLabel(std::string("cache=") + (state.range(0) ? "1" : "0") +
                 " pipe=" + (state.range(1) ? "1" : "0") +
                 " cone=" + (state.range(2) ? "1" : "0"));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(cycles));
  state.counters["cycles"] = static_cast<double>(cycles);
  state.counters["cache_hit_ratio"] = hit_ratio;
  state.counters["cone_hit_ratio"] = cone_ratio;
}

}  // namespace

static void BM_ProtocolArmSum32(benchmark::State& state) {
  protocol_arm(state, programs::sum(1), {0xDEADBEEFu}, {0x12345679u});
}
BENCHMARK(BM_ProtocolArmSum32)
    ->Args({0, 0, 0})
    ->Args({1, 0, 0})
    ->Args({1, 0, 1})
    ->Args({0, 1, 0})
    ->Args({1, 1, 1})
    ->Unit(benchmark::kMillisecond);

static void BM_ProtocolArmHamming160(benchmark::State& state) {
  protocol_arm(state, programs::hamming(5), {1, 2, 3, 4, 5}, {6, 7, 8, 9, 10});
}
BENCHMARK(BM_ProtocolArmHamming160)
    ->Args({0, 0, 0})
    ->Args({1, 0, 0})
    ->Args({1, 0, 1})
    ->Args({0, 1, 0})
    ->Args({1, 1, 1})
    ->Unit(benchmark::kMillisecond);

/// OT-phase cost of a full ARM2GC run (Hamming-160, cold): wall time spent
/// inside OT batches and true framed OT bytes, per backend, with the
/// online/offline split (identical to comm.ot_bytes except under precomp,
/// where the pool refills move off the online path).
/// arg0: 0 = ideal stand-in, 1 = IKNP extension, 2 = precomputed pool.
static void BM_ProtocolArmHamming160OtPhase(benchmark::State& state) {
  const programs::Program prog = programs::hamming(5);
  const arm::Arm2Gc machine(prog.cfg, prog.words);
  core::ExecOptions exec;
  exec.ot_backend = state.range(0) == 0   ? gc::OtBackend::Ideal
                    : state.range(0) == 1 ? gc::OtBackend::Iknp
                                          : gc::OtBackend::Precomp;
  const std::vector<std::uint32_t> a = {1, 2, 3, 4, 5};
  const std::vector<std::uint32_t> b = {6, 7, 8, 9, 10};
  std::uint64_t ot_ns = 0;
  std::uint64_t ot_offline_ns = 0;
  std::uint64_t ot_bytes = 0;
  std::uint64_t online_bytes = 0;
  std::uint64_t choices = 0;
  for (auto _ : state) {
    const arm::Arm2GcResult r = machine.run(a, b, 1u << 20, gc::Scheme::HalfGates, exec);
    benchmark::DoNotOptimize(r.outputs.data());
    ot_ns = r.stats.ot_wall_ns;
    ot_offline_ns = r.stats.ot_offline_wall_ns;
    ot_bytes = r.stats.comm.ot_bytes;
    online_bytes = r.stats.ot_online_bytes;
    choices = r.stats.ot_choices;
  }
  state.SetLabel(state.range(0) == 0   ? "ot=ideal"
                 : state.range(0) == 1 ? "ot=iknp"
                                       : "ot=precomp");
  state.counters["ot_ms"] = static_cast<double>(ot_ns) * 1e-6;
  state.counters["ot_offline_ms"] = static_cast<double>(ot_offline_ns) * 1e-6;
  state.counters["ot_bytes"] = static_cast<double>(ot_bytes);
  state.counters["ot_online_bytes"] = static_cast<double>(online_bytes);
  state.counters["ot_choices"] = static_cast<double>(choices);
}
BENCHMARK(BM_ProtocolArmHamming160OtPhase)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

/// The serving scenario: one Arm2Gc::Session executes the same public
/// program on fresh private inputs every iteration, so the per-party plan
/// caches stay warm and every run after the first skips classification.
/// arg0: transport (0 = in-memory, 1 = threaded pipe).
static void BM_ProtocolArmSessionHamming160(benchmark::State& state) {
  const programs::Program prog = programs::hamming(5);
  const arm::Arm2Gc machine(prog.cfg, prog.words);
  core::ExecOptions exec;
  exec.transport = state.range(0) != 0 ? core::TransportKind::ThreadedPipe
                                       : core::TransportKind::InMemory;
  arm::Arm2Gc::Session session(machine, exec);
  std::vector<std::uint32_t> a = {1, 2, 3, 4, 5};
  const std::vector<std::uint32_t> b = {6, 7, 8, 9, 10};
  double hit_ratio = 0.0;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    a[0]++;  // fresh private input each run; the public trajectory repeats
    const arm::Arm2GcResult r = session.run(a, b);
    benchmark::DoNotOptimize(r.outputs.data());
    hit_ratio = r.stats.plan_cache_hit_ratio();
    cycles = r.cycles;
  }
  state.SetLabel(state.range(0) ? "session pipe=1" : "session pipe=0");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(cycles));
  state.counters["cache_hit_ratio"] = hit_ratio;
}
BENCHMARK(BM_ProtocolArmSessionHamming160)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
