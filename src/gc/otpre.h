// Beaver'95 precomputed OT: the OtBackend::Precomp layer behind the
// OtSender/OtReceiver interfaces (gc/otext.h).
//
// The idea (catalogued in "Efficiency Optimizations on Yao's Garbled
// Circuits", see PAPERS.md): generate *random* OTs in bulk offline — the
// sender holds random pad pairs (p0, p1), the receiver a random choice r and
// p_r — then serve each real choice b online by derandomization: the
// receiver sends the correction bit c = b ^ r, the sender replies with
//
//   y_v = x_v ^ p_{v ^ c}   for v in {0, 1}   (2 blocks = 32 B per choice)
//
// and the receiver unmasks x_b = y_b ^ p_r (since b ^ c = r). The expensive
// kappa-column IKNP exchange moves into large, well-amortized refill batches
// that ride the *existing* IKNP endpoints (gc/otext.cpp) against the pool's
// own embedded Iknp*State — base OTs, per-batch check blocks and the column
// machinery are reused unchanged, and the pool states slot into WarmState
// exactly where the bare Iknp states do for OtBackend::Iknp.
//
// Online derandomization frame, per batch of m choices (receiver first):
//   receiver request():  [1 + extra blocks]  block0.lo = magic ^
//                        (frame ordinal << 32) ^ (m << 1) ^ refill-flag,
//                        block0.hi = correction bits c_0..c_63; correction
//                        bits past 64 fill `extra` = ceil((m - 64) / 128)
//                        whole blocks.
//   sender   flush():    [2m masked-pad blocks]
// so a streamed batch costs 16 * (1 + extra + 2m) online bytes: 48 B for a
// single choice (4x under the 192 B IKNP floor) and 32 B + eps amortized.
// When a batch finds the pool short, a refill (one IKNP batch of
// max(target, m) random OTs) runs transparently *before* the derand frame,
// on both sides — the decision is a deterministic function of the shared
// pool fill level, never announced, and the refill-flag bit in the header
// (like the ordinal and size) only serves to make a desynchronized pair
// throw before any layout-dependent read. The maintain() hooks let the
// endpoints' stepwise schedule top the pool back up between cycles, off the
// per-batch critical path; refill traffic and wall time land in the
// offline side of OtPhaseStats (offline_wall_ns), while wall_ns and
// online_bytes track only the derandomization exchanges.
//
// Secrecy: the correction bit c = b ^ r is one-time-padded by the pool's
// random r (each entry is consumed exactly once), and the pads mask the
// label pairs, so the online frames leak nothing about choices or labels —
// the transcript-privacy argument of the IKNP backend carries over.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/block.h"
#include "crypto/rng.h"
#include "gc/otext.h"

namespace arm2gc::gc {

class PrecompOtSender;
class PrecompOtReceiver;

/// Sender-side (Alice/garbler) half of the random-OT pool: random pad pairs
/// ahead of consumption, the embedded warm IKNP sender state refills ride,
/// and the derandomization frame ordinal. One per garbler role; hand the
/// same instance to successive runs of one pairing (WarmState does) so base
/// OTs and leftover pool entries amortize across a session. Not thread-safe;
/// only the garbler thread touches it.
class RandomOtPoolSender {
 public:
  /// `seed` is the party's protocol seed; pad randomness is domain-separated
  /// from both the label stream and the IKNP streams. `target` is the refill
  /// batch size — the wire protocol derives the refill schedule from it, so
  /// both parties' pools must agree on it.
  explicit RandomOtPoolSender(crypto::Block seed, std::size_t target = kDefaultOtPoolBatch);

  [[nodiscard]] std::size_t target() const { return target_; }
  [[nodiscard]] std::size_t available() const { return pads_.size() / 2 - head_; }
  [[nodiscard]] std::size_t low_water() const { return (target_ + 1) / 2; }
  [[nodiscard]] bool based() const { return iknp_.based(); }
  [[nodiscard]] std::uint64_t refills() const { return refills_; }

 private:
  friend class PrecompOtSender;

  IknpSenderState iknp_;
  crypto::CtrRng pad_rng_;
  std::vector<crypto::Block> pads_;  ///< FIFO of pairs: [2i] = p0_i, [2i+1] = p1_i
  std::size_t head_ = 0;             ///< consumed pairs (pool index of the next entry)
  std::uint64_t frames_ = 0;         ///< derandomization frames served (wire ordinal)
  std::uint64_t refills_ = 0;
  std::size_t target_;
};

/// Receiver-side (Bob/evaluator) twin: random choice bits, the received
/// pads p_r, and the embedded warm IKNP receiver state. Pair it with the
/// sender pool it refills against; mismatched pairings or a pool left
/// half-consumed by an aborted run on one side only are detected by the
/// derand-frame header / IKNP check block before any label is mis-delivered.
class RandomOtPoolReceiver {
 public:
  explicit RandomOtPoolReceiver(crypto::Block seed, std::size_t target = kDefaultOtPoolBatch);

  [[nodiscard]] std::size_t target() const { return target_; }
  [[nodiscard]] std::size_t available() const { return bits_.size() - head_; }
  [[nodiscard]] std::size_t low_water() const { return (target_ + 1) / 2; }
  [[nodiscard]] bool based() const { return iknp_.based(); }
  [[nodiscard]] std::uint64_t refills() const { return refills_; }

 private:
  friend class PrecompOtReceiver;

  IknpReceiverState iknp_;
  crypto::CtrRng choice_rng_;
  std::vector<std::uint8_t> bits_;  ///< random choice bit per pool entry
  std::vector<crypto::Block> got_;  ///< received pad p_{bits_[i]} per entry
  std::size_t head_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t refills_ = 0;
  std::size_t target_;
};

/// Precomp endpoint factories (called by make_ot_sender/make_ot_receiver in
/// gc/otext.cpp). When `warm_pool` is null the endpoint owns a fresh pool
/// derived from `seed` with refill batches of `pool_target`.
std::unique_ptr<OtSender> make_precomp_ot_sender(Transport& tx, crypto::Block seed,
                                                 RandomOtPoolSender* warm_pool,
                                                 std::size_t pool_target);

std::unique_ptr<OtReceiver> make_precomp_ot_receiver(Transport& tx, crypto::Block seed,
                                                     RandomOtPoolReceiver* warm_pool,
                                                     std::size_t pool_target);

}  // namespace arm2gc::gc
