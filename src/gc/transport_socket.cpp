#include "gc/transport_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace arm2gc::gc {

namespace {

/// Writes coalesce in userspace until this many bytes are pending (or a
/// recv forces a flush); a full cycle of the garbled ARM core fits well
/// below it, so the steady state is one writev-sized syscall per phase.
constexpr std::size_t kFlushBytes = 1u << 16;
/// Read-side staging buffer for the many small frames of a lock-step phase.
constexpr std::size_t kReadBytes = 1u << 16;

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("socket: ") + what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void set_fd_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0) throw_errno("fcntl(F_SETFL)");
}

/// poll() until `events` is ready. `timeout_ms` <= 0 waits forever; expiry
/// returns false. EINTR restarts against a steady-clock deadline.
bool wait_fd(int fd, short events, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int wait = -1;
    if (timeout_ms > 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      if (left <= 0) return false;
      wait = static_cast<int>(left);
    }
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, wait);
    if (rc > 0) return true;  // ready (or error/hup: let the syscall report it)
    if (rc == 0) return false;
    if (errno != EINTR) throw_errno("poll");
  }
}

struct AddrInfo {
  addrinfo* res = nullptr;
  ~AddrInfo() {
    if (res != nullptr) ::freeaddrinfo(res);
  }
};

addrinfo* resolve(AddrInfo& holder, const std::string& host, std::uint16_t port,
                  bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(), service.c_str(), &hints,
                               &holder.res);
  if (rc != 0) {
    throw std::runtime_error(std::string("socket: resolve ") + host + ": " +
                             ::gai_strerror(rc));
  }
  return holder.res;
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketDuplex
// ---------------------------------------------------------------------------

/// Transport adapter: block frames to/from the byte stream, accounting sent
/// bytes per class exactly like the in-memory duplex ends.
class SocketDuplex::End final : public Transport {
 public:
  explicit End(SocketDuplex& d) : d_(&d) {}

  void send(const crypto::Block* blocks, std::size_t n, Traffic t) override {
    d_->write_bytes(blocks, 16 * n);
    d_->sent_stats_.add(t, 16 * n);
  }
  void recv(crypto::Block* out, std::size_t n) override { d_->read_bytes(out, 16 * n); }
  void account(Traffic t, std::uint64_t bytes) override { d_->sent_stats_.add(t, bytes); }
  void flush() override { d_->flush(); }

 private:
  SocketDuplex* d_;
};

SocketDuplex::SocketDuplex(int fd) : fd_(fd), end_(std::make_unique<End>(*this)) {
  if (fd_ < 0) throw std::invalid_argument("socket: bad file descriptor");
  set_nodelay(fd_);
  wbuf_.reserve(kFlushBytes);
  rbuf_.resize(kReadBytes);  // fixed size for the life of the duplex
}

SocketDuplex::~SocketDuplex() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<SocketDuplex> SocketDuplex::connect(const std::string& host,
                                                    std::uint16_t port, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  AddrInfo holder;
  addrinfo* info = resolve(holder, host, port, /*passive=*/false);
  for (;;) {
    int last_errno = 0;
    for (addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
      const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) {
        last_errno = errno;
        continue;
      }
      int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
      while (rc != 0 && errno == EINTR) {
        // An interrupted connect keeps completing asynchronously; the retry
        // reports EISCONN once the handshake lands.
        rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
        if (rc != 0 && errno == EISCONN) rc = 0;
      }
      if (rc == 0) {
        return std::make_unique<SocketDuplex>(fd);
      }
      last_errno = errno;
      ::close(fd);
    }
    // The peer may simply not be listening yet (process start order is not
    // specified); retry refused/unreachable connections until the deadline.
    if ((last_errno != ECONNREFUSED && last_errno != ENETUNREACH &&
         last_errno != ETIMEDOUT) ||
        std::chrono::steady_clock::now() >= deadline) {
      errno = last_errno;
      throw_errno("connect");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Transport& SocketDuplex::end() { return *end_; }

CommStats SocketDuplex::sent() const { return sent_stats_; }

bool SocketDuplex::drain_some() {
  while (wpos_ < wbuf_.size()) {
    if (closed_) throw TransportClosed();
    const ssize_t n = ::send(fd_, wbuf_.data() + wpos_, wbuf_.size() - wpos_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      if (errno == EPIPE || errno == ECONNRESET) throw TransportClosed();
      throw_errno("send");
    }
    wpos_ += static_cast<std::size_t>(n);
  }
  wbuf_.clear();
  wpos_ = 0;
  return true;
}

void SocketDuplex::wait_writable() {
  if (!wait_fd(fd_, POLLOUT, recv_timeout_ms_)) throw TransportClosed();
}

void SocketDuplex::wait_readable() {
  if (!wait_fd(fd_, POLLIN, recv_timeout_ms_)) throw TransportClosed();
}

void SocketDuplex::flush() {
  while (!drain_some()) wait_writable();
}

bool SocketDuplex::try_flush() { return drain_some(); }

void SocketDuplex::set_nonblocking(bool on) {
  set_fd_nonblocking(fd_, on);
  nonblocking_ = on;
}

void SocketDuplex::write_bytes(const void* data, std::size_t n) {
  if (closed_) throw TransportClosed();
  const auto* p = static_cast<const std::uint8_t*>(data);
  // Compact the consumed prefix once it dominates, so resumed partial
  // writes do not grow the buffer without bound.
  if (wpos_ > 0 && (wpos_ == wbuf_.size() || wpos_ >= kFlushBytes)) {
    wbuf_.erase(wbuf_.begin(), wbuf_.begin() + static_cast<std::ptrdiff_t>(wpos_));
    wpos_ = 0;
  }
  wbuf_.insert(wbuf_.end(), p, p + n);
  if (pending_out() > send_high_water_) send_high_water_ = pending_out();
  if (nonblocking_) {
    // Opportunistic drain; the hard cap (if any) is enforced by waiting the
    // kernel out rather than queueing further.
    if (pending_out() >= kFlushBytes) (void)drain_some();
    while (send_limit_ != 0 && pending_out() > send_limit_) {
      wait_writable();
      (void)drain_some();
    }
  } else if (wbuf_.size() >= kFlushBytes) {
    flush();
  }
}

void SocketDuplex::read_bytes(void* data, std::size_t n) {
  // About to block on the peer: anything we have buffered may be exactly
  // what it is waiting for.
  flush();
  auto* dst = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const std::size_t avail = rlen_ - rpos_;
    if (avail > 0) {
      const std::size_t take = avail < n ? avail : n;
      std::memcpy(dst, rbuf_.data() + rpos_, take);
      rpos_ += take;
      dst += take;
      n -= take;
      continue;
    }
    if (closed_) throw TransportClosed();
    // Large remainders go straight to the destination; small ones refill the
    // staging buffer so a phase of tiny frames costs one syscall. In
    // non-blocking mode EAGAIN falls back to a poll() wait bounded by the
    // recv deadline: the caller asked for bytes and cannot proceed without
    // them, so this is the one place the event-loop service blocks inline.
    if (n >= kReadBytes) {
      const ssize_t r = ::recv(fd_, dst, n, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          wait_readable();
          continue;
        }
        if (errno == ECONNRESET) throw TransportClosed();
        throw_errno("recv");
      }
      if (r == 0) throw TransportClosed();  // peer teardown
      dst += static_cast<std::size_t>(r);
      n -= static_cast<std::size_t>(r);
    } else {
      rlen_ = 0;
      rpos_ = 0;
      const ssize_t r = ::recv(fd_, rbuf_.data(), rbuf_.size(), 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          wait_readable();
          continue;
        }
        if (errno == ECONNRESET) throw TransportClosed();
        throw_errno("recv");
      }
      if (r == 0) throw TransportClosed();  // peer teardown
      rlen_ = static_cast<std::size_t>(r);
    }
  }
}

void SocketDuplex::send_control(const void* data, std::size_t n) {
  write_bytes(data, n);
  flush();
}

void SocketDuplex::recv_control(void* data, std::size_t n) { read_bytes(data, n); }

void SocketDuplex::close() {
  if (closed_) return;
  closed_ = true;
  (void)::shutdown(fd_, SHUT_RDWR);
}

// ---------------------------------------------------------------------------
// SocketListener
// ---------------------------------------------------------------------------

SocketListener::SocketListener(const std::string& host, std::uint16_t port, int backlog)
    : fd_(-1), port_(0) {
  AddrInfo holder;
  addrinfo* info = resolve(holder, host, port, /*passive=*/true);
  int last_errno = 0;
  for (addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, backlog) == 0) {
      fd_ = fd;
      break;
    }
    last_errno = errno;
    ::close(fd);
  }
  if (fd_ < 0) {
    errno = last_errno;
    throw_errno("bind/listen");
  }
  sockaddr_storage addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    throw_errno("getsockname");
  }
  port_ = addr.ss_family == AF_INET6
              ? ntohs(reinterpret_cast<sockaddr_in6&>(addr).sin6_port)
              : ntohs(reinterpret_cast<sockaddr_in&>(addr).sin_port);
}

SocketListener::~SocketListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<SocketDuplex> SocketListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return std::make_unique<SocketDuplex>(fd);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Blocking semantics even on a non-blocking listener.
      if (!wait_fd(fd_, POLLIN, -1)) continue;
      continue;
    }
    throw_errno("accept");
  }
}

std::unique_ptr<SocketDuplex> SocketListener::try_accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return std::make_unique<SocketDuplex>(fd);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return nullptr;
    // A connection that died between arrival and accept() is not an error
    // for the accept loop.
    if (errno == ECONNABORTED) continue;
    throw_errno("accept");
  }
}

void SocketListener::set_nonblocking(bool on) { set_fd_nonblocking(fd_, on); }

}  // namespace arm2gc::gc
