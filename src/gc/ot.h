// Oblivious transfer endpoints for Bob's input labels.
//
// The protocol logic only needs the OT *functionality*: Bob obtains
// X0 ^ b*R for his choice bit b without Alice learning b. We implement an
// ideal-functionality endpoint that transfers the chosen label in-process and
// accounts communication at the standard semi-honest OT-extension price
// (IKNP'03: kappa = 128 bits from receiver to sender plus one label back;
// amortized base OTs ignored). Real network OT is orthogonal to SkipGate —
// the paper's tables never include OT traffic — but the cost is surfaced in
// CommStats so end-to-end byte counts are honest.
#pragma once

#include <cstdint>

#include "crypto/block.h"
#include "gc/channel.h"

namespace arm2gc::gc {

/// Per-OT accounted bytes: a 128-bit extension column + a 128-bit ciphertext.
inline constexpr std::uint64_t kOtBytesPerChoice = 32;

/// Ideal 1-out-of-2 OT on labels (x0, x0^R). Alice side.
class OtSender {
 public:
  explicit OtSender(Channel& ch) : ch_(&ch) {}

  /// Offers the pair; the paired OtReceiver::receive must be called in the
  /// same order. Transfers happen through the channel so byte accounting and
  /// ordering match a real deployment.
  void send(crypto::Block x0, crypto::Block x1, bool receiver_choice) {
    ch_->account(Traffic::Ot, kOtBytesPerChoice - 16);
    ch_->send(receiver_choice ? x1 : x0, Traffic::Ot);
  }

 private:
  Channel* ch_;
};

/// Ideal 1-out-of-2 OT, Bob side.
class OtReceiver {
 public:
  explicit OtReceiver(Channel& ch) : ch_(&ch) {}

  crypto::Block receive() { return ch_->recv(); }

 private:
  Channel* ch_;
};

}  // namespace arm2gc::gc
