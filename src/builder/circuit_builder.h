// CircuitBuilder: the construction DSL that stands in for the paper's
// synthesis flow (Synopsys DC + TinyGarble technology libraries). It builds
// `netlist::Netlist`s with the optimizations a GC-aware synthesis run gives:
//   * constant folding (gates with constant inputs never materialize),
//   * inversion folding (NOT is a wire-handle flag, folded into consumer
//     truth tables — free-XOR makes inverters free),
//   * structural hashing / CSE (identical gates are shared),
//   * canonical gate forms (f(0,0)=0, commutative inputs ordered).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"

namespace arm2gc::builder {

/// Wire handle: a netlist wire plus a pending inversion. Copyable value type.
struct Wire {
  netlist::WireId id = netlist::kConst0;
  bool inv = false;

  friend bool operator==(Wire a, Wire b) { return a.id == b.id && a.inv == b.inv; }
};

/// A little-endian bit vector of wires (bit 0 = least significant).
using Bus = std::vector<Wire>;

class CircuitBuilder {
 public:
  CircuitBuilder() = default;

  // --- sources -------------------------------------------------------------
  [[nodiscard]] Wire c0() const { return Wire{netlist::kConst0, false}; }
  [[nodiscard]] Wire c1() const { return Wire{netlist::kConst1, false}; }
  [[nodiscard]] Wire constant(bool v) const { return v ? c1() : c0(); }

  Wire input(netlist::Owner owner, std::uint32_t bit_index, bool streamed = false,
             std::string name = {});
  /// `width` consecutive bits starting at `start_bit` of the owner's vector.
  Bus input_bus(netlist::Owner owner, std::size_t width, std::uint32_t start_bit,
                bool streamed = false, const std::string& name = {});

  // --- flip-flops (two-phase: create, wire D later) -------------------------
  struct DffHandle {
    std::uint32_t index = 0;
  };
  DffHandle make_dff(netlist::Dff::Init init = netlist::Dff::Init::Zero,
                     std::uint32_t init_index = 0);
  [[nodiscard]] Wire dff_out(DffHandle h) const { return Wire{nl_.dff_wire(h.index), false}; }
  void set_dff_d(DffHandle h, Wire d);

  std::vector<DffHandle> make_dff_bus(std::size_t width,
                                      netlist::Dff::Init init = netlist::Dff::Init::Zero,
                                      std::uint32_t init_start = 0);
  [[nodiscard]] Bus dff_out_bus(const std::vector<DffHandle>& hs) const;
  void set_dff_d_bus(const std::vector<DffHandle>& hs, const Bus& d);

  // --- gates -----------------------------------------------------------------
  /// General 2-input gate; performs all folds and may return a constant or an
  /// existing wire instead of creating a gate.
  Wire gate(netlist::TruthTable tt, Wire a, Wire b);

  Wire and_(Wire a, Wire b) { return gate(netlist::kTtAnd, a, b); }
  Wire or_(Wire a, Wire b) { return gate(netlist::kTtOr, a, b); }
  Wire xor_(Wire a, Wire b) { return gate(netlist::kTtXor, a, b); }
  Wire nand_(Wire a, Wire b) { return gate(netlist::kTtNand, a, b); }
  Wire nor_(Wire a, Wire b) { return gate(netlist::kTtNor, a, b); }
  Wire xnor_(Wire a, Wire b) { return gate(netlist::kTtXnor, a, b); }
  Wire andn_(Wire a, Wire b) { return gate(netlist::kTtAndANotB, a, b); }  // a & ~b
  static Wire not_(Wire a) { return Wire{a.id, !a.inv}; }

  /// 2:1 multiplexer, `sel ? t : f`. One AND: f ^ (sel & (t^f)).
  Wire mux(Wire sel, Wire t, Wire f);

  // --- outputs ---------------------------------------------------------------
  void output(Wire w, std::string name = {});
  void output_bus(const Bus& bus, const std::string& name = {});

  void set_outputs_every_cycle(bool v) { nl_.outputs_every_cycle = v; }

  // --- finalization ----------------------------------------------------------
  /// Validates and moves the netlist out; the builder must not be used after.
  netlist::Netlist take();

  [[nodiscard]] std::size_t num_gates() const { return nl_.gates.size(); }
  [[nodiscard]] std::size_t num_non_free() const { return nl_.count_non_free(); }

 private:
  netlist::Netlist nl_;
  std::unordered_map<std::uint64_t, netlist::WireId> cse_;
};

}  // namespace arm2gc::builder
