#include "crypto/aes128.h"

#include <array>
#include <cstdlib>

#include "crypto/aesni_impl.h"

namespace arm2gc::crypto {
namespace {

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  while (b != 0) {
    if (b & 1u) p ^= a;
    const bool hi = (a & 0x80u) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1bu;
    b >>= 1;
  }
  return p;
}

constexpr std::uint8_t rotl8(std::uint8_t v, int n) {
  return static_cast<std::uint8_t>((v << n) | (v >> (8 - n)));
}

// The S-box is derived from first principles (GF(2^8) inversion + affine map)
// rather than transcribed, so a table typo is impossible; the FIPS-197 test
// vector in tests/crypto_test.cpp pins the result.
struct Tables {
  std::array<std::uint8_t, 256> sbox{};
  // Te[r][x] = round-transform table r (MixColumns * SubBytes), rotated copies.
  std::array<std::array<std::uint32_t, 256>, 4> te{};

  Tables() {
    std::array<std::uint8_t, 256> inv{};
    // Build log/alog tables over generator 3 to get inverses in O(256).
    std::array<std::uint8_t, 256> alog{};
    std::array<std::uint8_t, 256> log{};
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      alog[static_cast<std::size_t>(i)] = x;
      log[x] = static_cast<std::uint8_t>(i);
      x = gf_mul(x, 3);
    }
    for (int i = 1; i < 256; ++i) {
      inv[static_cast<std::size_t>(i)] =
          alog[static_cast<std::size_t>((255 - log[static_cast<std::size_t>(i)]) % 255)];
    }
    for (int i = 0; i < 256; ++i) {
      const std::uint8_t b = inv[static_cast<std::size_t>(i)];
      sbox[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
          b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63u);
    }
    for (int i = 0; i < 256; ++i) {
      const std::uint8_t s = sbox[static_cast<std::size_t>(i)];
      const std::uint32_t t = (static_cast<std::uint32_t>(gf_mul(s, 2)) << 24) |
                              (static_cast<std::uint32_t>(s) << 16) |
                              (static_cast<std::uint32_t>(s) << 8) |
                              static_cast<std::uint32_t>(gf_mul(s, 3));
      te[0][static_cast<std::size_t>(i)] = t;
      te[1][static_cast<std::size_t>(i)] = (t >> 8) | (t << 24);
      te[2][static_cast<std::size_t>(i)] = (t >> 16) | (t << 16);
      te[3][static_cast<std::size_t>(i)] = (t >> 24) | (t << 8);
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

std::uint32_t sub_word(std::uint32_t w) {
  const auto& s = tables().sbox;
  return (static_cast<std::uint32_t>(s[(w >> 24) & 0xffu]) << 24) |
         (static_cast<std::uint32_t>(s[(w >> 16) & 0xffu]) << 16) |
         (static_cast<std::uint32_t>(s[(w >> 8) & 0xffu]) << 8) |
         static_cast<std::uint32_t>(s[w & 0xffu]);
}

constexpr std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

std::uint32_t load_be(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

void store_be(std::uint8_t* p, std::uint32_t w) {
  p[0] = static_cast<std::uint8_t>(w >> 24);
  p[1] = static_cast<std::uint8_t>(w >> 16);
  p[2] = static_cast<std::uint8_t>(w >> 8);
  p[3] = static_cast<std::uint8_t>(w);
}

}  // namespace

bool Aes128::aesni_available() {
  static const bool avail = [] {
    if (!detail::aesni_compiled_in()) return false;
    // Any value except "" and "0" disables ("0" must not mean disabled).
    const char* disable = std::getenv("ARM2GC_DISABLE_AESNI");
    if (disable != nullptr && disable[0] != '\0' &&
        !(disable[0] == '0' && disable[1] == '\0')) {
      return false;
    }
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("aes") != 0;
#else
    return false;
#endif
  }();
  return avail;
}

Aes128::Aes128(Block key, Backend backend) {
  std::uint8_t kb[16];
  key.to_bytes(kb);
  for (int i = 0; i < 4; ++i) round_keys_[static_cast<std::size_t>(i)] = load_be(kb + 4 * i);
  std::uint8_t rcon = 1;
  for (int i = 4; i < 44; ++i) {
    std::uint32_t tmp = round_keys_[static_cast<std::size_t>(i - 1)];
    if (i % 4 == 0) {
      tmp = sub_word(rot_word(tmp)) ^ (static_cast<std::uint32_t>(rcon) << 24);
      rcon = gf_mul(rcon, 2);
    }
    round_keys_[static_cast<std::size_t>(i)] = round_keys_[static_cast<std::size_t>(i - 4)] ^ tmp;
  }
  // Mirror the schedule in FIPS byte order for the vector backend.
  for (int i = 0; i < 44; ++i) {
    store_be(round_key_bytes_.data() + 4 * i, round_keys_[static_cast<std::size_t>(i)]);
  }
  use_aesni_ = backend != Backend::Portable && aesni_available();
}

Block Aes128::encrypt(Block plaintext) const {
  if (use_aesni_) {
    detail::aesni_encrypt_batch(round_key_bytes_.data(), &plaintext, 1);
    return plaintext;
  }
  return encrypt_portable(plaintext);
}

void Aes128::encrypt_batch(Block* io, std::size_t n) const {
  if (use_aesni_) {
    detail::aesni_encrypt_batch(round_key_bytes_.data(), io, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) io[i] = encrypt_portable(io[i]);
}

Block Aes128::encrypt_portable(Block plaintext) const {
  const auto& tb = tables();
  std::uint8_t in[16];
  plaintext.to_bytes(in);
  std::uint32_t s0 = load_be(in) ^ round_keys_[0];
  std::uint32_t s1 = load_be(in + 4) ^ round_keys_[1];
  std::uint32_t s2 = load_be(in + 8) ^ round_keys_[2];
  std::uint32_t s3 = load_be(in + 12) ^ round_keys_[3];

  for (int round = 1; round < 10; ++round) {
    const std::uint32_t* rk = &round_keys_[static_cast<std::size_t>(4 * round)];
    const std::uint32_t t0 = tb.te[0][(s0 >> 24) & 0xffu] ^ tb.te[1][(s1 >> 16) & 0xffu] ^
                             tb.te[2][(s2 >> 8) & 0xffu] ^ tb.te[3][s3 & 0xffu] ^ rk[0];
    const std::uint32_t t1 = tb.te[0][(s1 >> 24) & 0xffu] ^ tb.te[1][(s2 >> 16) & 0xffu] ^
                             tb.te[2][(s3 >> 8) & 0xffu] ^ tb.te[3][s0 & 0xffu] ^ rk[1];
    const std::uint32_t t2 = tb.te[0][(s2 >> 24) & 0xffu] ^ tb.te[1][(s3 >> 16) & 0xffu] ^
                             tb.te[2][(s0 >> 8) & 0xffu] ^ tb.te[3][s1 & 0xffu] ^ rk[2];
    const std::uint32_t t3 = tb.te[0][(s3 >> 24) & 0xffu] ^ tb.te[1][(s0 >> 16) & 0xffu] ^
                             tb.te[2][(s1 >> 8) & 0xffu] ^ tb.te[3][s2 & 0xffu] ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
  const auto& sb = tb.sbox;
  const std::uint32_t* rk = &round_keys_[40];
  auto final_word = [&](std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d) {
    return (static_cast<std::uint32_t>(sb[(a >> 24) & 0xffu]) << 24) |
           (static_cast<std::uint32_t>(sb[(b >> 16) & 0xffu]) << 16) |
           (static_cast<std::uint32_t>(sb[(c >> 8) & 0xffu]) << 8) |
           static_cast<std::uint32_t>(sb[d & 0xffu]);
  };
  const std::uint32_t o0 = final_word(s0, s1, s2, s3) ^ rk[0];
  const std::uint32_t o1 = final_word(s1, s2, s3, s0) ^ rk[1];
  const std::uint32_t o2 = final_word(s2, s3, s0, s1) ^ rk[2];
  const std::uint32_t o3 = final_word(s3, s0, s1, s2) ^ rk[3];

  std::uint8_t out[16];
  store_be(out, o0);
  store_be(out + 4, o1);
  store_be(out + 8, o2);
  store_be(out + 12, o3);
  return Block::from_bytes(out);
}

}  // namespace arm2gc::crypto
