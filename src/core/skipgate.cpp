#include "core/skipgate.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "crypto/aes128.h"
#include "gc/ot.h"

namespace arm2gc::core {

namespace {

using crypto::Block;
using netlist::Dff;
using netlist::Gate;
using netlist::Netlist;
using netlist::Owner;
using netlist::WireId;

constexpr Block kZeroBlock{};
Block maybe(Block b, bool take) { return take ? b : kZeroBlock; }

/// Planner view of one wire for the current cycle.
struct WireState {
  bool is_pub = true;
  bool val = false;   // public value
  bool flip = false;  // inversion parity of the carried secret combination
  Block fp{};         // fingerprint of the carried secret combination
};

WireState pub_state(bool v) {
  WireState s;
  s.is_pub = true;
  s.val = v;
  return s;
}

// PassC0/PassC1 cover degenerate constant-table gates in Conventional mode,
// where even a constant must stay a (secret-typed) wire: the gate forwards
// the global constant wire's label. PassSrc forwards an arbitrary earlier
// wire recorded in pass_src_ (XOR-cancellation peephole, see forward_pass).
enum class Act : std::uint8_t { Public, PassA, PassB, FreeXor, Garble, PassC0, PassC1, PassSrc };

/// The whole protocol engine: a deterministic planner (public data only) plus
/// the garbler-side and evaluator-side label passes over the shared plan.
class Engine {
 public:
  Engine(const Netlist& nl, const RunOptions& opts)
      : nl_(nl),
        opts_(opts),
        fp_gen_(opts.seed ^ Block{0xf1f2f3f4f5f6f7f8ULL, 0x0102030405060708ULL}),
        garbler_(opts.seed, opts.scheme),
        eval_(opts.scheme) {
    nl_.validate();
    const std::size_t nw = nl_.num_wires();
    st_.resize(nw);
    la_.resize(nw);
    lb_.resize(nw);
    lb_valid_.assign(nw, 0);
    act_.assign(nl_.gates.size(), static_cast<std::uint8_t>(Act::Public));
    emit_.assign(nl_.gates.size(), 0);
    pass_src_.assign(nl_.gates.size(), 0);
    needed_.assign(nw, 0);
    non_free_per_cycle_ = nl_.count_non_free();
    if (opts_.halt_wire && *opts_.halt_wire >= nw) {
      throw std::invalid_argument("skipgate: halt wire out of range");
    }
  }

  RunResult run(const netlist::BitVec& alice_bits, const netlist::BitVec& bob_bits,
                const netlist::BitVec& pub_bits, const StreamProvider* streams) {
    const bool halt_driven = opts_.halt_wire.has_value() && !opts_.fixed_cycles.has_value();
    if (halt_driven && opts_.mode == Mode::Conventional) {
      throw std::invalid_argument(
          "skipgate: conventional mode cannot observe the halt wire; provide fixed_cycles");
    }
    reset(alice_bits, bob_bits, pub_bits);

    RunResult result;
    const std::uint64_t cc =
        opts_.fixed_cycles ? *opts_.fixed_cycles : opts_.max_cycles;
    if (cc == 0) throw std::invalid_argument("skipgate: zero cycles requested");

    for (std::uint64_t cycle = 0; cycle < cc; ++cycle) {
      begin_cycle(cycle, streams);
      forward_pass();

      bool is_final = !halt_driven && cycle + 1 == cc;
      if (opts_.halt_wire && opts_.mode == Mode::SkipGate) {
        const WireState& h = st_[*opts_.halt_wire];
        if (!h.is_pub) {
          throw std::runtime_error(
              "skipgate: halt signal became secret (secret program counter); "
              "run with fixed_cycles instead");
        }
        if (h.val) is_final = true;
      }
      if (halt_driven && !is_final && cycle + 1 == cc) {
        throw std::runtime_error("skipgate: max_cycles reached without halt");
      }

      backward_pass(is_final);
      alice_pass();
      bob_pass();

      if (nl_.outputs_every_cycle || is_final) {
        result.sampled_outputs.push_back(decode_outputs());
      }
      stats_.cycles++;
      stats_.non_xor_slots += non_free_per_cycle_;

      if (is_final) {
        result.final_cycle = cycle;
        break;
      }
      latch_dffs();
      ch_.compact();
    }

    stats_.skipped_non_xor = stats_.non_xor_slots - stats_.garbled_non_xor;
    stats_.comm = ch_.stats();
    result.stats = stats_;
    if (!result.sampled_outputs.empty()) result.final_outputs = result.sampled_outputs.back();
    return result;
  }

 private:
  /// Fingerprints are AES-CTR outputs consumed in strict counter order; the
  /// forward pass draws one per category-iv gate every cycle, so they are
  /// generated a pipelined batch at a time (same sequence as scalar calls).
  Block fresh_fp() {
    if (fp_pos_ == kFpBatch) {
      for (std::size_t i = 0; i < kFpBatch; ++i) {
        fp_buf_[i] = crypto::block_from_u64(fp_ctr_++);
      }
      fp_gen_.encrypt_batch(fp_buf_.data(), kFpBatch);
      fp_pos_ = 0;
    }
    return fp_buf_[fp_pos_++];
  }

  /// Binds one secret source bit owned by `owner` with plaintext value `v`:
  /// creates the fingerprint and labels and transfers Bob's label (directly
  /// for Alice/public-owned bits, via OT for Bob's own bits).
  void bind_secret(Owner owner, bool v, WireState& s, Block& la, Block& lb) {
    s.is_pub = false;
    s.val = false;
    s.flip = false;
    s.fp = fresh_fp();
    la = garbler_.fresh_label();
    if (owner == Owner::Bob) {
      gc::OtSender sender(ch_);
      gc::OtReceiver receiver(ch_);
      sender.send(la, la ^ garbler_.R(), v);
      lb = receiver.receive();
    } else {
      ch_.send(la ^ maybe(garbler_.R(), v), gc::Traffic::InputLabel);
      lb = ch_.recv();
    }
  }

  bool owner_bit(Owner o, std::uint32_t idx, const netlist::BitVec& a, const netlist::BitVec& b,
                 const netlist::BitVec& p, const char* what) const {
    const netlist::BitVec& v = o == Owner::Alice ? a : (o == Owner::Bob ? b : p);
    if (idx >= v.size()) {
      throw std::out_of_range(std::string("skipgate: missing ") + what + " bit " +
                              std::to_string(idx));
    }
    return v[idx];
  }

  void reset(const netlist::BitVec& alice_bits, const netlist::BitVec& bob_bits,
             const netlist::BitVec& pub_bits) {
    // Constants.
    if (opts_.mode == Mode::SkipGate) {
      const_st_[0] = pub_state(false);
      const_st_[1] = pub_state(true);
    } else {
      // Conventional GC treats even constants as secret wires whose (known)
      // value selects the transferred label.
      bind_secret(Owner::Public, false, const_st_[0], const_la_[0], const_lb_[0]);
      bind_secret(Owner::Public, true, const_st_[1], const_la_[1], const_lb_[1]);
    }

    // Fixed primary inputs.
    fixed_st_.assign(nl_.inputs.size(), WireState{});
    fixed_la_.assign(nl_.inputs.size(), Block{});
    fixed_lb_.assign(nl_.inputs.size(), Block{});
    for (std::size_t i = 0; i < nl_.inputs.size(); ++i) {
      const netlist::Input& in = nl_.inputs[i];
      if (in.streamed) continue;
      const bool v = owner_bit(in.owner, in.bit_index, alice_bits, bob_bits, pub_bits,
                               "fixed input");
      if (in.owner == Owner::Public && opts_.mode == Mode::SkipGate) {
        fixed_st_[i] = pub_state(v);
      } else {
        bind_secret(in.owner, v, fixed_st_[i], fixed_la_[i], fixed_lb_[i]);
      }
    }

    // Flip-flop initial values.
    dff_st_.assign(nl_.dffs.size(), WireState{});
    dff_la_.assign(nl_.dffs.size(), Block{});
    dff_lb_.assign(nl_.dffs.size(), Block{});
    dff_lb_valid_.assign(nl_.dffs.size(), 1);
    for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
      const Dff& d = nl_.dffs[i];
      switch (d.init) {
        case Dff::Init::Zero:
        case Dff::Init::One: {
          const bool v = d.init == Dff::Init::One;
          if (opts_.mode == Mode::SkipGate) {
            dff_st_[i] = pub_state(v);
          } else {
            bind_secret(Owner::Public, v, dff_st_[i], dff_la_[i], dff_lb_[i]);
          }
          break;
        }
        case Dff::Init::AliceBit: {
          const bool v = owner_bit(Owner::Alice, d.init_index, alice_bits, bob_bits, pub_bits,
                                   "Alice dff init");
          bind_secret(Owner::Alice, v, dff_st_[i], dff_la_[i], dff_lb_[i]);
          break;
        }
        case Dff::Init::BobBit: {
          const bool v = owner_bit(Owner::Bob, d.init_index, alice_bits, bob_bits, pub_bits,
                                   "Bob dff init");
          bind_secret(Owner::Bob, v, dff_st_[i], dff_la_[i], dff_lb_[i]);
          break;
        }
      }
    }
    stats_ = RunStats{};
  }

  void begin_cycle(std::uint64_t cycle, const StreamProvider* streams) {
    st_[netlist::kConst0] = const_st_[0];
    st_[netlist::kConst1] = const_st_[1];
    la_[netlist::kConst0] = const_la_[0];
    la_[netlist::kConst1] = const_la_[1];
    lb_[netlist::kConst0] = const_lb_[0];
    lb_[netlist::kConst1] = const_lb_[1];
    lb_valid_[netlist::kConst0] = 1;
    lb_valid_[netlist::kConst1] = 1;

    netlist::BitVec sa;
    netlist::BitVec sb;
    netlist::BitVec sp;
    if (streams != nullptr) {
      if (streams->alice) sa = streams->alice(cycle);
      if (streams->bob) sb = streams->bob(cycle);
      if (streams->pub) sp = streams->pub(cycle);
    }

    for (std::size_t i = 0; i < nl_.inputs.size(); ++i) {
      const netlist::Input& in = nl_.inputs[i];
      const WireId w = nl_.input_wire(i);
      if (!in.streamed) {
        st_[w] = fixed_st_[i];
        la_[w] = fixed_la_[i];
        lb_[w] = fixed_lb_[i];
        lb_valid_[w] = 1;
        continue;
      }
      const bool v = owner_bit(in.owner, in.bit_index, sa, sb, sp, "streamed input");
      if (in.owner == Owner::Public && opts_.mode == Mode::SkipGate) {
        st_[w] = pub_state(v);
      } else {
        bind_secret(in.owner, v, st_[w], la_[w], lb_[w]);
        lb_valid_[w] = 1;
      }
    }

    for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
      const WireId w = nl_.dff_wire(i);
      st_[w] = dff_st_[i];
      la_[w] = dff_la_[i];
      lb_[w] = dff_lb_[i];
      lb_valid_[w] = dff_lb_valid_[i];
    }
  }

  void forward_pass() {
    const WireId first_gate = nl_.first_gate_wire();
    const bool skipgate = opts_.mode == Mode::SkipGate;
    for (std::size_t i = 0; i < nl_.gates.size(); ++i) {
      const Gate g = nl_.gates[i];
      const WireState& a = st_[g.a];
      const WireState& b = st_[g.b];
      WireState out;
      Act act;

      if (skipgate && a.is_pub && b.is_pub) {  // category i
        act = Act::Public;
        out = pub_state(netlist::tt_eval(g.tt, a.val, b.val));
      } else if (skipgate && a.is_pub) {  // category ii
        classify_unary(netlist::tt_restrict_a(g.tt, a.val), b, /*pass_is_a=*/false, act, out);
      } else if (skipgate && b.is_pub) {  // category ii
        classify_unary(netlist::tt_restrict_b(g.tt, b.val), a, /*pass_is_a=*/true, act, out);
      } else if (skipgate && a.fp == b.fp) {  // category iii
        classify_unary(netlist::tt_restrict_diag(g.tt, a.flip != b.flip), a, /*pass_is_a=*/true,
                       act, out);
      } else if (netlist::tt_is_affine(g.tt)) {  // free under free-XOR
        if (g.tt == netlist::kTtZero || g.tt == netlist::kTtOne) {
          const bool one = g.tt == netlist::kTtOne;
          if (skipgate) {
            act = Act::Public;
            out = pub_state(one);
          } else {
            act = one ? Act::PassC1 : Act::PassC0;
            out = st_[one ? netlist::kConst1 : netlist::kConst0];
          }
        } else if (netlist::tt_ignores_a(g.tt)) {
          classify_unary(netlist::tt_restrict_a(g.tt, false), b, /*pass_is_a=*/false, act, out);
        } else if (netlist::tt_ignores_b(g.tt)) {
          classify_unary(netlist::tt_restrict_b(g.tt, false), a, /*pass_is_a=*/true, act, out);
        } else {  // XOR / XNOR of two live secrets
          act = Act::FreeXor;
          out.is_pub = false;
          out.fp = a.fp ^ b.fp;
          out.flip = (a.flip != b.flip) != (g.tt == netlist::kTtXnor);
          // XOR-cancellation peephole: the 1-AND multiplexer f ^ (s & (t^f))
          // with a public select degenerates to f ^ (t ^ f) == t. Detecting
          // that the result carries exactly an existing wire's label (the
          // paper's "the MUX acts as a wire") releases the unselected side's
          // label from the needed-cone, so its producing gates are skipped.
          if (skipgate) {
            const WireId src = find_cancellation(g.a, g.b, out.fp);
            if (src != kNoWire) {
              act = Act::PassSrc;
              pass_src_[i] = src;
            }
          }
        }
      } else {  // category iv
        act = Act::Garble;
        out.is_pub = false;
        out.fp = fresh_fp();
        out.flip = false;
      }
      st_[first_gate + i] = out;
      act_[i] = static_cast<std::uint8_t>(act);
    }
  }

  static constexpr WireId kNoWire = 0xffffffffu;

  /// Follows pass-style actions back to the wire whose label a wire carries.
  [[nodiscard]] WireId resolve_pass(WireId w) const {
    const WireId first_gate = nl_.first_gate_wire();
    for (int hops = 0; hops < 64 && w >= first_gate; ++hops) {
      const std::size_t gi = w - first_gate;
      switch (static_cast<Act>(act_[gi])) {
        case Act::PassA: w = nl_.gates[gi].a; break;
        case Act::PassB: w = nl_.gates[gi].b; break;
        case Act::PassSrc: w = pass_src_[gi]; break;
        default: return w;
      }
    }
    return w;
  }

  /// For a free XOR of wires (wa, wb): if either side resolves to a FreeXor
  /// gate one of whose operands' fingerprint equals the result fingerprint,
  /// the other operand cancels and the result is a plain wire. Returns the
  /// surviving source wire or kNoWire.
  [[nodiscard]] WireId find_cancellation(WireId wa, WireId wb, const Block& out_fp) const {
    const WireId first_gate = nl_.first_gate_wire();
    for (const WireId side : {wa, wb}) {
      const WireId r = resolve_pass(side);
      if (r < first_gate) continue;
      const std::size_t gi = r - first_gate;
      if (static_cast<Act>(act_[gi]) != Act::FreeXor) continue;
      const netlist::Gate& g2 = nl_.gates[gi];
      if (!st_[g2.a].is_pub && st_[g2.a].fp == out_fp) return g2.a;
      if (!st_[g2.b].is_pub && st_[g2.b].fp == out_fp) return g2.b;
    }
    return kNoWire;
  }

  /// Folds a unary residual function of a surviving secret input into a plan
  /// action (constant output, wire, or inverter — paper Figures 1 and 2).
  static void classify_unary(netlist::UnaryTable u, const WireState& in, bool pass_is_a, Act& act,
                             WireState& out) {
    if (netlist::unary_is_const(u)) {
      act = Act::Public;
      out = pub_state(u == netlist::kUnOne);
      return;
    }
    act = pass_is_a ? Act::PassA : Act::PassB;
    out = in;
    if (u == netlist::kUnNot) out.flip = !out.flip;
  }

  void backward_pass(bool is_final) {
    if (opts_.mode == Mode::Conventional) {
      // Conventional GC garbles every non-affine gate unconditionally.
      for (std::size_t i = 0; i < nl_.gates.size(); ++i) {
        emit_[i] = act_[i] == static_cast<std::uint8_t>(Act::Garble) ? 1 : 0;
      }
      return;
    }

    std::fill(needed_.begin(), needed_.end(), 0);
    const bool sample = nl_.outputs_every_cycle || is_final;
    if (sample) {
      for (const netlist::OutputPort& o : nl_.outputs) {
        if (!st_[o.wire].is_pub) needed_[o.wire] = 1;
      }
    }
    if (!is_final) {
      // Labels entering flip-flops must survive into the next cycle
      // (paper: "copy flip flops labels"). On the final cycle they are dead,
      // which is how e.g. the last carry of a serial adder gets skipped.
      for (const Dff& d : nl_.dffs) {
        if (!st_[d.d].is_pub) needed_[d.d] = 1;
      }
    }

    const WireId first_gate = nl_.first_gate_wire();
    for (std::size_t i = nl_.gates.size(); i-- > 0;) {
      const WireId w = first_gate + static_cast<WireId>(i);
      if (!needed_[w]) {
        emit_[i] = 0;
        continue;
      }
      const Gate g = nl_.gates[i];
      switch (static_cast<Act>(act_[i])) {
        case Act::Public:
          emit_[i] = 0;
          break;
        case Act::PassA:
          emit_[i] = 0;
          needed_[g.a] = 1;
          break;
        case Act::PassB:
          emit_[i] = 0;
          needed_[g.b] = 1;
          break;
        case Act::PassC0:
        case Act::PassC1:
          emit_[i] = 0;  // constants are always bound; nothing to propagate
          break;
        case Act::PassSrc:
          emit_[i] = 0;
          needed_[pass_src_[i]] = 1;
          break;
        case Act::FreeXor:
          emit_[i] = 0;
          needed_[g.a] = 1;
          needed_[g.b] = 1;
          break;
        case Act::Garble:
          emit_[i] = 1;
          if (!st_[g.a].is_pub) needed_[g.a] = 1;
          if (!st_[g.b].is_pub) needed_[g.b] = 1;
          break;
      }
    }
  }

  void alice_pass() {
    const WireId first_gate = nl_.first_gate_wire();
    const Block r = garbler_.R();
    const bool conventional = opts_.mode == Mode::Conventional;
    for (std::size_t i = 0; i < nl_.gates.size(); ++i) {
      const WireId w = first_gate + static_cast<WireId>(i);
      if (!conventional && !needed_[w] && !emit_[i]) continue;
      const Gate g = nl_.gates[i];
      switch (static_cast<Act>(act_[i])) {
        case Act::Public:
          break;
        case Act::PassA:
          la_[w] = la_[g.a] ^ maybe(r, st_[w].flip != st_[g.a].flip);
          break;
        case Act::PassB:
          la_[w] = la_[g.b] ^ maybe(r, st_[w].flip != st_[g.b].flip);
          break;
        case Act::PassC0:
          la_[w] = la_[netlist::kConst0];
          break;
        case Act::PassC1:
          la_[w] = la_[netlist::kConst1];
          break;
        case Act::PassSrc: {
          const WireId src = pass_src_[i];
          la_[w] = la_[src] ^ maybe(r, st_[w].flip != st_[src].flip);
          break;
        }
        case Act::FreeXor:
          la_[w] = la_[g.a] ^ la_[g.b] ^
                   maybe(r, (st_[w].flip != st_[g.a].flip) != st_[g.b].flip);
          break;
        case Act::Garble: {
          if (!emit_[i]) break;  // dead garbled gate: never built nor sent
          gc::GarbledTable table;
          la_[w] = garbler_.garble(la_[g.a], la_[g.b], netlist::tt_and_core(g.tt), table);
          for (std::uint8_t k = 0; k < table.count; ++k) {
            ch_.send(table.rows[k], gc::Traffic::GarbledTable);
          }
          break;
        }
      }
    }
  }

  void bob_pass() {
    const WireId first_gate = nl_.first_gate_wire();
    const bool conventional = opts_.mode == Mode::Conventional;
    for (std::size_t i = 0; i < nl_.gates.size(); ++i) {
      const WireId w = first_gate + static_cast<WireId>(i);
      if (!conventional && !needed_[w] && !emit_[i]) {
        lb_valid_[w] = 0;
        continue;
      }
      const Gate g = nl_.gates[i];
      switch (static_cast<Act>(act_[i])) {
        case Act::Public:
          lb_valid_[w] = 0;
          break;
        case Act::PassA:
          // Free-XOR: inverting a wire does not change the evaluator's label.
          lb_[w] = lb_[g.a];
          lb_valid_[w] = lb_valid_[g.a];
          break;
        case Act::PassB:
          lb_[w] = lb_[g.b];
          lb_valid_[w] = lb_valid_[g.b];
          break;
        case Act::PassC0:
          lb_[w] = lb_[netlist::kConst0];
          lb_valid_[w] = lb_valid_[netlist::kConst0];
          break;
        case Act::PassC1:
          lb_[w] = lb_[netlist::kConst1];
          lb_valid_[w] = lb_valid_[netlist::kConst1];
          break;
        case Act::PassSrc:
          lb_[w] = lb_[pass_src_[i]];
          lb_valid_[w] = lb_valid_[pass_src_[i]];
          break;
        case Act::FreeXor:
          lb_[w] = lb_[g.a] ^ lb_[g.b];
          lb_valid_[w] = lb_valid_[g.a] & lb_valid_[g.b];
          break;
        case Act::Garble: {
          if (!emit_[i]) {
            // Paper Alg. 5 line 18: a skipped gate's output is tracked as an
            // opaque secret; fingerprints already play that role, so no label.
            lb_valid_[w] = 0;
            break;
          }
          if (!lb_valid_[g.a] || !lb_valid_[g.b]) {
            throw std::logic_error("skipgate: evaluator missing label for a needed gate");
          }
          gc::GarbledTable table;
          table.count = static_cast<std::uint8_t>(gc::blocks_per_gate(opts_.scheme));
          for (std::uint8_t k = 0; k < table.count; ++k) table.rows[k] = ch_.recv();
          lb_[w] = eval_.eval(lb_[g.a], lb_[g.b], table);
          lb_valid_[w] = 1;
          stats_.garbled_non_xor++;
          if (trace_) {
            std::fprintf(stderr, "emit cycle=%llu gate=%zu a=%u b=%u tt=%d\n",
                         static_cast<unsigned long long>(stats_.cycles), i, g.a, g.b,
                         static_cast<int>(g.tt));
          }
          break;
        }
      }
    }
  }

  netlist::BitVec decode_outputs() {
    netlist::BitVec out;
    out.reserve(nl_.outputs.size());
    const Block r = garbler_.R();
    for (const netlist::OutputPort& o : nl_.outputs) {
      const WireState& s = st_[o.wire];
      bool bit;
      if (s.is_pub) {
        bit = s.val;
      } else {
        if (!lb_valid_[o.wire]) {
          throw std::logic_error("skipgate: evaluator has no label for an output wire");
        }
        // Bob sends his output label; Alice decodes it against her pair.
        ch_.send(lb_[o.wire], gc::Traffic::OutputDecode);
        const Block xb = ch_.recv();
        if (xb == la_[o.wire]) {
          bit = false;
        } else if (xb == (la_[o.wire] ^ r)) {
          bit = true;
        } else {
          throw std::runtime_error("skipgate: output label does not decode");
        }
      }
      out.push_back(bit != o.invert);
    }
    return out;
  }

  void latch_dffs() {
    const Block r = garbler_.R();
    for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
      const Dff& d = nl_.dffs[i];
      const WireState& s = st_[d.d];
      WireState ns = s;
      if (s.is_pub) {
        ns.val = s.val != d.d_invert;
      } else {
        ns.flip = s.flip != d.d_invert;
        dff_la_[i] = la_[d.d] ^ maybe(r, d.d_invert);
        dff_lb_[i] = lb_[d.d];
        dff_lb_valid_[i] = lb_valid_[d.d];
      }
      dff_st_[i] = ns;
    }
  }

  const Netlist& nl_;
  RunOptions opts_;

  // Planner state (public data only).
  std::vector<WireState> st_;
  std::vector<WireState> dff_st_;
  std::vector<WireState> fixed_st_;
  WireState const_st_[2];
  std::vector<std::uint8_t> act_;
  std::vector<std::uint8_t> emit_;
  std::vector<WireId> pass_src_;
  std::vector<std::uint8_t> needed_;
  static constexpr std::size_t kFpBatch = 8;
  crypto::Aes128 fp_gen_;
  std::uint64_t fp_ctr_ = 0;
  std::array<Block, kFpBatch> fp_buf_{};
  std::size_t fp_pos_ = kFpBatch;
  std::size_t non_free_per_cycle_ = 0;

  // Garbler (Alice) label state.
  gc::Garbler garbler_;
  std::vector<Block> la_;
  std::vector<Block> dff_la_;
  std::vector<Block> fixed_la_;
  Block const_la_[2];

  // Evaluator (Bob) label state.
  gc::Evaluator eval_;
  std::vector<Block> lb_;
  std::vector<std::uint8_t> lb_valid_;
  std::vector<Block> dff_lb_;
  std::vector<std::uint8_t> dff_lb_valid_;
  std::vector<Block> fixed_lb_;
  Block const_lb_[2];

  gc::Channel ch_;
  RunStats stats_;
  bool trace_ = std::getenv("A2G_TRACE") != nullptr;
};

}  // namespace

SkipGateDriver::SkipGateDriver(const Netlist& nl, RunOptions opts) : nl_(nl), opts_(opts) {}

RunResult SkipGateDriver::run(const netlist::BitVec& alice_bits, const netlist::BitVec& bob_bits,
                              const netlist::BitVec& pub_bits, const StreamProvider* streams) {
  Engine engine(nl_, opts_);
  return engine.run(alice_bits, bob_bits, pub_bits, streams);
}

}  // namespace arm2gc::core
