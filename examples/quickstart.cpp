// Quickstart: the millionaires' problem on the garbled ARM processor.
//
// Alice and Bob each hold a net worth; they learn who is richer and nothing
// else. The function is ordinary ARM assembly (the paper's gc_main model:
// r0 = Alice's memory, r1 = Bob's, r2 = output); the SkipGate protocol
// garbles only the data-dependent gates — a few dozen, not the ~10^5-gate
// processor.
#include <cstdio>
#include <vector>

#include "arm/arm2gc.h"
#include "arm/assembler.h"

int main() {
  using namespace arm2gc;

  const auto program = arm::assemble(R"(
    ldr r4, [r0]        ; Alice's wealth
    ldr r5, [r1]        ; Bob's wealth
    cmp r4, r5
    sbc r6, r6, r6      ; r6 = (alice < bob) ? -1 : 0  (free under SkipGate)
    and r6, r6, #1
    str r6, [r2]        ; out[0] = 1 iff Bob is richer
    swi 0               ; halt
  )");

  arm::MemoryConfig cfg;
  cfg.imem_words = 16;
  cfg.alice_words = cfg.bob_words = cfg.out_words = 1;
  cfg.ram_words = 16;
  const arm::Arm2Gc machine(cfg, program);

  const std::vector<std::uint32_t> alice = {1'000'000};
  const std::vector<std::uint32_t> bob = {2'500'000};
  const arm::Arm2GcResult r = machine.run(alice, bob);

  std::printf("millionaires' problem: %s is richer\n", r.outputs[0] ? "Bob" : "Alice");
  std::printf("cycles executed           : %llu\n", static_cast<unsigned long long>(r.cycles));
  std::printf("garbled non-XOR gates     : %llu (whole processor: %llu/cycle)\n",
              static_cast<unsigned long long>(r.stats.garbled_non_xor),
              static_cast<unsigned long long>(machine.cpu().nl.count_non_free()));
  std::printf("bytes on the wire         : %llu\n",
              static_cast<unsigned long long>(r.stats.comm.total()));
  return 0;
}
