#include "crypto/transpose.h"

#include <cstring>
#include <memory>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace arm2gc::crypto {

namespace {

/// Staging buffer for the transposed bytes (n output rows of 16 bytes):
/// stack for the common small batches, heap beyond. Both kernels write into
/// it and share the copy-out to Blocks.
struct Staging {
  static constexpr std::size_t kStackRows = 256;

  explicit Staging(std::size_t n) {
    if (n > kStackRows) {
      heap = std::make_unique<std::uint8_t[]>(n * 16);
      data = heap.get();
    } else {
      data = stack;
    }
  }

  void copy_out(std::size_t n, Block* out) const {
    for (std::size_t c = 0; c < n; ++c) out[c] = Block::from_bytes(data + 16 * c);
  }

  std::uint8_t stack[kStackRows * 16];
  std::unique_ptr<std::uint8_t[]> heap;
  std::uint8_t* data;
};

/// 8x8 bit-matrix transpose of a 64-bit word holding 8 row bytes (row r in
/// bits [8r, 8r+8)); Hacker's Delight 7-3 swap network.
constexpr std::uint64_t transpose8x8(std::uint64_t x) {
  std::uint64_t t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAull;
  x = x ^ t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCull;
  x = x ^ t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ull;
  x = x ^ t ^ (t << 28);
  return x;
}

void kernel_portable(const std::uint8_t* rows, std::size_t row_stride, std::size_t n,
                     std::uint8_t* st) {
  for (std::size_t c = 0; c < n; c += 8) {
    const std::size_t cb = c / 8;  // source byte column
    const std::size_t lim = n - c < 8 ? n - c : 8;
    for (std::size_t r = 0; r < 128; r += 8) {
      std::uint64_t w = 0;
      for (std::size_t i = 0; i < 8; ++i) {
        w |= static_cast<std::uint64_t>(rows[(r + i) * row_stride + cb]) << (8 * i);
      }
      w = transpose8x8(w);  // byte i now holds column c+i across rows r..r+7
      for (std::size_t i = 0; i < lim; ++i) {
        st[16 * (c + i) + r / 8] = static_cast<std::uint8_t>(w >> (8 * i));
      }
    }
  }
}

#if defined(__SSE2__)

/// SSE2 kernel: 16 input rows x 8 columns per step; _mm_movemask_epi8 peels
/// one output column (16 row bits) per shift.
void kernel_sse(const std::uint8_t* rows, std::size_t row_stride, std::size_t n,
                std::uint8_t* st) {
  for (std::size_t r = 0; r < 128; r += 16) {
    for (std::size_t c = 0; c < n; c += 8) {
      const std::size_t cb = c / 8;
      alignas(16) std::uint8_t gather[16];
      for (std::size_t i = 0; i < 16; ++i) gather[i] = rows[(r + i) * row_stride + cb];
      __m128i v = _mm_load_si128(reinterpret_cast<const __m128i*>(gather));
      // movemask reads bit 7 of each byte: column c+7 first, then shift left.
      for (std::size_t i = 8; i-- > 0; v = _mm_slli_epi64(v, 1)) {
        const std::uint16_t m = static_cast<std::uint16_t>(_mm_movemask_epi8(v));
        if (c + i < n) {
          std::memcpy(st + 16 * (c + i) + r / 8, &m, 2);
        }
      }
    }
  }
}

#endif

}  // namespace

void transpose_128xn_portable(const std::uint8_t* rows, std::size_t row_stride, std::size_t n,
                              Block* out) {
  if (n == 0) return;
  Staging st(n);
  kernel_portable(rows, row_stride, n, st.data);
  st.copy_out(n, out);
}

#if defined(__SSE2__)

void transpose_128xn(const std::uint8_t* rows, std::size_t row_stride, std::size_t n,
                     Block* out) {
  if (n == 0) return;
  Staging st(n);
  kernel_sse(rows, row_stride, n, st.data);
  st.copy_out(n, out);
}

bool transpose_uses_sse() { return true; }

#else

void transpose_128xn(const std::uint8_t* rows, std::size_t row_stride, std::size_t n,
                     Block* out) {
  transpose_128xn_portable(rows, row_stride, n, out);
}

bool transpose_uses_sse() { return false; }

#endif

}  // namespace arm2gc::crypto
