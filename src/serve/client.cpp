#include "serve/client.h"

#include <cstring>
#include <vector>

#include "gc/transport_socket.h"

namespace arm2gc::serve {

namespace {

core::PartyOptions to_party_options(const ClientOptions& c) {
  core::PartyOptions o;
  o.scheme = c.scheme;
  o.fixed_cycles = c.fixed_cycles;
  o.halt_wire = c.halt_wire;
  o.max_cycles = c.max_cycles;
  o.protocol_seed = c.protocol_seed;
  o.private_seed = c.private_seed;
  o.ot_backend = c.ot_backend;
  o.ot_pool = c.ot_pool;
  o.cone_target_gates = c.cone_target_gates;
  o.threads = c.threads;
  return o;
}

}  // namespace

ClientResult run_client(const std::string& host, std::uint16_t port,
                        const netlist::Netlist& nl, const ClientOptions& copts,
                        const netlist::BitVec& bob_bits, const netlist::BitVec& pub_bits,
                        const core::StreamProvider* streams, core::WarmState* warm) {
  std::unique_ptr<gc::SocketDuplex> sock =
      gc::SocketDuplex::connect(host, port, copts.connect_timeout_ms);
  sock->set_recv_timeout_ms(copts.recv_timeout_ms);

  // Hello: program + every protocol field the two endpoints must agree on.
  HelloRequest h;
  h.name_len = static_cast<std::uint32_t>(copts.program.size());
  h.scheme = static_cast<std::uint8_t>(copts.scheme);
  h.ot_backend = static_cast<std::uint8_t>(copts.ot_backend);
  h.ot_pool = copts.ot_pool;
  h.fixed_cycles = copts.fixed_cycles.value_or(0);
  h.max_cycles = copts.max_cycles;
  copts.protocol_seed.to_bytes(h.protocol_seed);
  sock->send_control(&h, sizeof h);
  sock->send_control(copts.program.data(), copts.program.size());

  HelloReply reply{};
  sock->recv_control(&reply, sizeof reply);
  if (reply.magic != kHelloMagic) {
    throw std::runtime_error("serve: malformed hello reply (not a garbler service?)");
  }
  if (static_cast<HelloStatus>(reply.status) != HelloStatus::Ok) {
    throw ServiceRejected(static_cast<HelloStatus>(reply.status));
  }

  // Protocol proper: the evaluator endpoint's ordinary blocking run. The
  // service re-bases its pooled WarmState's OT half on every release (warm
  // extension streams are pairing-specific), so a repeat client must
  // re-base too: only the plan caches and cone memos carry across served
  // runs, never the OT streams. A no-op when the state is already based.
  if (warm != nullptr) warm->reset_ot();
  const core::PartyOptions popts = to_party_options(copts);
  core::EvaluatorEndpoint ev(nl, popts, sock->end(), warm);
  core::RunResult r = ev.run(bob_bits, pub_bits, streams);

  // Wrap-up: service first (summary + packed output bits), then our mirror.
  RunSummary s{};
  sock->recv_control(&s, sizeof s);
  if (s.magic != kSummaryMagic) {
    throw std::runtime_error("serve: malformed service wrap-up (desynced stream?)");
  }
  netlist::BitVec outputs(s.out_bits, false);
  if (s.out_bits != 0) {
    std::vector<std::uint8_t> packed((s.out_bits + 7) / 8, 0);
    sock->recv_control(packed.data(), packed.size());
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      outputs[i] = (packed[i / 8] >> (i % 8)) & 1u;
    }
  }

  const gc::CommStats own_sent = sock->sent();
  RunSummary mine;
  mine.cycles = r.stats.cycles;
  mine.final_cycle = r.final_cycle;
  mine.garbled_non_xor = r.stats.garbled_non_xor;
  r.stats.table_digest.to_bytes(mine.table_digest);
  mine.comm[0] = own_sent.garbled_table_bytes;
  mine.comm[1] = own_sent.input_label_bytes;
  mine.comm[2] = own_sent.ot_bytes;
  mine.comm[3] = own_sent.output_bytes;
  mine.out_bits = 0;
  sock->send_control(&mine, sizeof mine);

  // The cross-check: the garbler digested the tables it sent, we digested
  // the tables we received — equality certifies content end to end.
  if (s.cycles != r.stats.cycles || s.garbled_non_xor != r.stats.garbled_non_xor) {
    throw std::runtime_error("serve: parties disagree on the protocol shape");
  }
  if (!(crypto::Block::from_bytes(s.table_digest) == r.stats.table_digest)) {
    throw std::runtime_error("serve: garbled-table digest mismatch across parties");
  }

  ClientResult out;
  out.outputs = std::move(outputs);
  out.cycles = s.cycles;
  out.final_cycle = s.final_cycle;
  out.garbled_non_xor = s.garbled_non_xor;
  out.table_digest = r.stats.table_digest;
  out.service_sent.garbled_table_bytes = s.comm[0];
  out.service_sent.input_label_bytes = s.comm[1];
  out.service_sent.ot_bytes = s.comm[2];
  out.service_sent.output_bytes = s.comm[3];
  out.client_sent = own_sent;
  out.stats = r.stats;
  return out;
}

}  // namespace arm2gc::serve
