// TCP socket transport: one party's gc::Transport over a blocking stream
// socket, carrying exactly the framed block bytes the in-memory duplexes
// specify ("frames are a batching hint, not a datagram boundary; the byte
// stream is what is specified" — gc/transport.h). This redeems that header's
// promise: two separate OS processes running one endpoint each produce
// byte-identical outputs, garbled-table digests and per-class comm counts to
// the in-process driver (tools/arm2gc_party + tests pin it).
//
// Accounting matches the in-memory duplexes exactly — send() accounts 16*n
// bytes to its traffic class, account() adds protocol extras — so
// garbler.sent() + evaluator.sent() of a socket run equals
// InMemoryDuplex::stats() of the identical in-process run. The wire carries
// no extra framing bytes: batching happens in a userspace write buffer that
// is flushed before any blocking read (every recv() implies the peer may be
// waiting on our pending bytes), which keeps the strictly alternating
// protocol deadlock-free while coalescing the many small frames into few
// syscalls. TCP_NODELAY is set for the same reason: the lock-step
// request/response pattern would otherwise stall on delayed ACKs.
//
// Teardown: peer EOF/reset — or a local close() — surfaces as
// gc::TransportClosed out of send/recv, the same type the in-process drivers
// use to tell a teardown echo from a party's real failure.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gc/transport.h"

namespace arm2gc::gc {

/// One party's end of an established TCP connection.
class SocketDuplex {
 public:
  /// Wraps an already-connected stream socket; takes ownership of `fd`.
  explicit SocketDuplex(int fd);
  ~SocketDuplex();
  SocketDuplex(const SocketDuplex&) = delete;
  SocketDuplex& operator=(const SocketDuplex&) = delete;

  /// Connects to a listening peer, retrying refused connections until
  /// `timeout_ms` elapses so the two processes may start in either order.
  static std::unique_ptr<SocketDuplex> connect(const std::string& host, std::uint16_t port,
                                               int timeout_ms = 10'000);

  [[nodiscard]] Transport& end();

  /// Bytes this end sent (and account()ed), per traffic class. The peer's
  /// sent() covers the other direction; the two together equal the
  /// in-process duplex total for an identical run.
  [[nodiscard]] CommStats sent() const;

  /// Flushes buffered writes. send()/recv() manage this themselves; call it
  /// before hand-rolled out-of-band exchanges or long local pauses.
  void flush();

  /// Out-of-protocol control bytes (unaccounted): the party tool's wrap-up
  /// handshake (outputs/digest/stat exchange after the protocol proper).
  void send_control(const void* data, std::size_t n);
  void recv_control(void* data, std::size_t n);

  /// Shuts the connection down; the peer's blocked operations raise
  /// TransportClosed, as do any further operations here. Idempotent.
  void close();

 private:
  class End;

  void write_bytes(const void* data, std::size_t n);  ///< buffered
  void read_bytes(void* data, std::size_t n);         ///< flushes, then reads fully

  int fd_;
  bool closed_ = false;
  CommStats sent_stats_;
  std::vector<std::uint8_t> wbuf_;
  std::vector<std::uint8_t> rbuf_;  ///< fixed-size read staging
  std::size_t rlen_ = 0;            ///< filled prefix of rbuf_
  std::size_t rpos_ = 0;            ///< consumed prefix of rlen_
  std::unique_ptr<End> end_;
};

/// Listening socket accepting one peer connection per accept() call.
/// `port` 0 binds an ephemeral port; port() reports the bound one.
class SocketListener {
 public:
  SocketListener(const std::string& host, std::uint16_t port);
  ~SocketListener();
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::unique_ptr<SocketDuplex> accept();

 private:
  int fd_;
  std::uint16_t port_;
};

}  // namespace arm2gc::gc
