#include "core/plan.h"
namespace fix::core {
CyclePlan classify(crypto::Block seed) {
  CyclePlan p;
  p.emitted = static_cast<unsigned>(seed.lo & 3u) ^ static_cast<unsigned>(rand());
  return p;
}
}  // namespace fix::core
