// 128 x N bit-matrix transpose, the column->row pivot at the heart of IKNP
// OT extension (Ishai et al., CRYPTO'03): the receiver generates kappa = 128
// PRG *columns* of length N, but the correlation-robust hash consumes one
// 128-bit *row* per OT. Transposing bit matrices is the classic hot spot of
// extension implementations, so an SSE2 movemask kernel (the well-known
// 16x8-block technique) is provided next to a portable 8x8 swap network;
// both produce identical output for any N, including N not a multiple of
// 8 or 128.
#pragma once

#include <cstddef>
#include <cstdint>

#include "crypto/block.h"

namespace arm2gc::crypto {

/// Transposes a 128 x n bit matrix. `rows` holds 128 bit-packed rows of
/// `row_stride` bytes each (row r starts at rows + r*row_stride; bit c of a
/// row is bit c%8 of byte c/8), with row_stride >= ceil(n/8). Output row c
/// is `out[c]`: bit r of out[c] equals bit (r, c) of the input. Bits at
/// columns >= n are ignored; `out` must have space for n Blocks.
void transpose_128xn(const std::uint8_t* rows, std::size_t row_stride, std::size_t n,
                     Block* out);

/// The portable reference kernel (8x8 swap network); bit-identical to
/// transpose_128xn on every input — the SSE path is cross-checked against it.
void transpose_128xn_portable(const std::uint8_t* rows, std::size_t row_stride, std::size_t n,
                              Block* out);

/// True iff transpose_128xn dispatches to the SSE2 kernel in this build.
[[nodiscard]] bool transpose_uses_sse();

}  // namespace arm2gc::crypto
