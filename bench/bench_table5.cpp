// Table 5: complex functions on ARM2GC — Bubble-Sort, Merge-Sort, Dijkstra,
// CORDIC with XOR-shared inputs, w/o SkipGate (exact analytic) vs w/.
#include <vector>

#include "arm/arm2gc.h"
#include "bench_util.h"
#include "crypto/rng.h"
#include "programs/programs.h"

using namespace arm2gc;
using benchutil::num;

namespace {

std::vector<std::uint32_t> rand_words(crypto::CtrRng& rng, std::size_t n, std::uint32_t mask) {
  std::vector<std::uint32_t> v(n);
  for (auto& w : v) w = static_cast<std::uint32_t>(rng.next_u64()) & mask;
  return v;
}

void run_row(const programs::Program& p, const std::vector<std::uint32_t>& a,
             const std::vector<std::uint32_t>& b, std::uint64_t paper_wo,
             std::uint64_t paper_w) {
  const arm::Arm2Gc machine(p.cfg, p.words);
  const auto r = machine.run(a, b);
  const std::uint64_t wo = machine.conventional_non_xor(r.cycles);
  std::printf("%-18s paper %15s /%10s   ours %15s /%10s   improv %8s  cycles %6s  %s\n",
              p.name.c_str(), num(paper_wo).c_str(), num(paper_w).c_str(), num(wo).c_str(),
              num(r.stats.garbled_non_xor).c_str(),
              benchutil::improv_ratio(wo, r.stats.garbled_non_xor).c_str(),
              num(r.cycles).c_str(), benchutil::stats_brief(r.stats).c_str());
  benchutil::json_stats(p.name, r.stats);
  if (benchutil::json().enabled()) {
    benchutil::json().add(p.name + ".cycles", r.cycles);
    benchutil::json().add(p.name + ".conventional_non_xor", wo);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::parse_args(argc, argv);
  benchutil::header("Table 5: complex functions on ARM2GC (XOR-shared inputs)");
  crypto::CtrRng rng(crypto::block_from_u64(505));

  {
    const auto a = rand_words(rng, 32, 0xffffffffu);
    const auto b = rand_words(rng, 32, 0xffffffffu);
    run_row(programs::bubble_sort(32), a, b, 1366390620, 65472);
    run_row(programs::merge_sort(32), a, b, 981712458, 540645);
  }
  {
    // Complete 8-node digraph, 64 weights in [1, 100].
    std::vector<std::uint32_t> w(64);
    for (auto& x : w) x = 1 + static_cast<std::uint32_t>(rng.next_below(100));
    const auto b = rand_words(rng, 64, 0xffffffffu);
    std::vector<std::uint32_t> a(64);
    for (std::size_t i = 0; i < 64; ++i) a[i] = w[i] ^ b[i];
    run_row(programs::dijkstra8(), a, b, 1493339886, 59282);
  }
  {
    const std::vector<std::uint32_t> bmask = rand_words(rng, 3, 0xffffffffu);
    const std::vector<std::uint32_t> vals = {1u << 29, 0, 0x218Def16};  // (0.5, 0, ~pi/6)
    std::vector<std::uint32_t> a(3);
    for (int i = 0; i < 3; ++i) a[static_cast<std::size_t>(i)] = vals[static_cast<std::size_t>(i)] ^ bmask[static_cast<std::size_t>(i)];
    run_row(programs::cordic32(), a, bmask, 228847596, 4601);
  }
  return benchutil::finish();
}
