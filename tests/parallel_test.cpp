// Differential tests for multicore garbling/evaluation: threads=N must be
// *observationally identical* to threads=1 — same outputs, same golden table
// digests on both party sides, same garbled_non_xor, same planner counters
// and same per-class comm bytes — on fuzzed sequential netlists (all three
// schemes, both in-process transports, both OT backends) and on the ARM
// Hamming-160 program. The ordered transport writer/reader makes the framed
// byte stream byte-identical, so every digest and byte count is pinned, not
// just the decoded outputs. Wall-clock-only fields (ot_wall_ns,
// transport_high_water_blocks) are the sole exclusions.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "arm/arm2gc.h"
#include "core/party.h"
#include "core/skipgate.h"
#include "crypto/rng.h"
#include "netlist/netlist.h"
#include "programs/programs.h"
#include "test_util.h"

namespace {

using namespace arm2gc;
using crypto::block_from_u64;
using a2gtest::to_bits;

/// Random sequential netlist with every ownership class bound (mirrors
/// party_test's generator) so OT batches, direct labels and garbled tables
/// all carry traffic through the parallel paths.
netlist::Netlist random_netlist(crypto::CtrRng& rng) {
  netlist::Netlist nl;
  for (std::uint32_t i = 0; i < 3; ++i) {
    nl.inputs.push_back(netlist::Input{netlist::Owner::Alice, false, i, ""});
    nl.inputs.push_back(netlist::Input{netlist::Owner::Bob, false, i, ""});
    nl.inputs.push_back(netlist::Input{netlist::Owner::Public, false, i, ""});
  }
  nl.inputs.push_back(netlist::Input{netlist::Owner::Bob, true, 0, ""});
  nl.inputs.push_back(netlist::Input{netlist::Owner::Alice, true, 0, ""});
  for (std::uint32_t i = 0; i < 3; ++i) {
    netlist::Dff d;
    switch (rng.next_below(3)) {
      case 0: d.init = netlist::Dff::Init::Zero; break;
      case 1:
        d.init = netlist::Dff::Init::AliceBit;
        d.init_index = i;
        break;
      default:
        d.init = netlist::Dff::Init::BobBit;
        d.init_index = i;
        break;
    }
    nl.dffs.push_back(d);
  }
  // Enough gates that a small cone_target_gates slices the netlist into
  // several interdependent cones — the schedule the pool actually runs.
  const int num_gates = 120 + static_cast<int>(rng.next_below(80));
  for (int g = 0; g < num_gates; ++g) {
    const auto limit = static_cast<std::uint32_t>(2 + nl.inputs.size() + nl.dffs.size() +
                                                  static_cast<std::size_t>(g));
    nl.gates.push_back(netlist::Gate{static_cast<netlist::WireId>(rng.next_below(limit)),
                                     static_cast<netlist::WireId>(rng.next_below(limit)),
                                     static_cast<netlist::TruthTable>(rng.next_below(16))});
  }
  const auto nw = static_cast<std::uint32_t>(nl.num_wires());
  for (auto& d : nl.dffs) {
    d.d = static_cast<netlist::WireId>(rng.next_below(nw));
    d.d_invert = rng.next_bool();
  }
  for (int o = 0; o < 5; ++o) {
    nl.outputs.push_back(netlist::OutputPort{static_cast<netlist::WireId>(rng.next_below(nw)),
                                             rng.next_bool(), ""});
  }
  nl.outputs_every_cycle = true;
  return nl;
}

/// Everything but wall-clock must match the serial reference exactly.
void expect_identical(const core::RunResult& par, const core::RunResult& ref,
                      std::size_t threads) {
  EXPECT_EQ(par.sampled_outputs, ref.sampled_outputs);
  EXPECT_EQ(par.final_outputs, ref.final_outputs);
  EXPECT_EQ(par.final_cycle, ref.final_cycle);
  EXPECT_EQ(par.stats.threads, threads);
  EXPECT_EQ(ref.stats.threads, 1u);
  EXPECT_EQ(par.stats.cycles, ref.stats.cycles);
  EXPECT_EQ(par.stats.garbled_non_xor, ref.stats.garbled_non_xor);
  EXPECT_EQ(par.stats.skipped_non_xor, ref.stats.skipped_non_xor);
  EXPECT_EQ(par.stats.non_xor_slots, ref.stats.non_xor_slots);
  EXPECT_EQ(par.stats.plan_cache_hits, ref.stats.plan_cache_hits);
  EXPECT_EQ(par.stats.plan_cache_misses, ref.stats.plan_cache_misses);
  EXPECT_EQ(par.stats.cone_hits, ref.stats.cone_hits);
  EXPECT_EQ(par.stats.cone_misses, ref.stats.cone_misses);
  EXPECT_EQ(par.stats.ot_choices, ref.stats.ot_choices);
  EXPECT_EQ(par.stats.ot_batches, ref.stats.ot_batches);
  EXPECT_EQ(par.stats.ot_base_ots, ref.stats.ot_base_ots);
  EXPECT_TRUE(par.stats.table_digest == ref.stats.table_digest);
  EXPECT_EQ(par.stats.comm.garbled_table_bytes, ref.stats.comm.garbled_table_bytes);
  EXPECT_EQ(par.stats.comm.input_label_bytes, ref.stats.comm.input_label_bytes);
  EXPECT_EQ(par.stats.comm.ot_bytes, ref.stats.comm.ot_bytes);
  EXPECT_EQ(par.stats.comm.output_bytes, ref.stats.comm.output_bytes);
  EXPECT_EQ(par.stats.comm.total(), ref.stats.comm.total());
}

/// Seed count override for deeper CI sweeps (mirrors A2G_PLAN_FUZZ_SEEDS).
int fuzz_seeds() {
  if (const char* env = std::getenv("A2G_PAR_FUZZ_SEEDS")) return std::atoi(env);
  return 4;
}

TEST(ParallelExec, FuzzedNetlistsMatchSerialAcrossTransportsAndBackends) {
  crypto::CtrRng rng(block_from_u64(0x7172));
  const int seeds = fuzz_seeds();
  for (int seed = 0; seed < seeds; ++seed) {
    const netlist::Netlist nl = random_netlist(rng);
    const netlist::BitVec a = to_bits(rng.next_u64(), 3);
    const netlist::BitVec b = to_bits(rng.next_u64(), 3);
    const netlist::BitVec p = to_bits(rng.next_u64(), 3);
    const std::uint64_t aw = rng.next_u64();
    const std::uint64_t bw = rng.next_u64();
    core::StreamProvider streams;
    streams.alice = [aw](std::uint64_t c) { return netlist::BitVec{((aw >> c) & 1u) != 0}; };
    streams.bob = [bw](std::uint64_t c) { return netlist::BitVec{((bw >> c) & 1u) != 0}; };
    // Rotate the scheme per seed: Classic4 exercises the derived fresh-label
    // path, Grr3/HalfGates the row-reduced tables.
    const gc::Scheme scheme = seed % 3 == 0   ? gc::Scheme::Classic4
                              : seed % 3 == 1 ? gc::Scheme::Grr3
                                              : gc::Scheme::HalfGates;

    for (const core::TransportKind tk :
         {core::TransportKind::InMemory, core::TransportKind::ThreadedPipe}) {
      for (const gc::OtBackend ot : {gc::OtBackend::Ideal, gc::OtBackend::Iknp}) {
        core::RunOptions opts;
        opts.scheme = scheme;
        opts.fixed_cycles = 8;
        opts.exec.transport = tk;
        opts.exec.ot_backend = ot;
        opts.exec.cone_target_gates = 24;  // force a multi-cone layout
        const core::RunResult ref = core::SkipGateDriver(nl, opts).run(a, b, p, &streams);
        for (const std::size_t threads : {2u, 4u}) {
          opts.exec.threads = threads;
          const core::RunResult par = core::SkipGateDriver(nl, opts).run(a, b, p, &streams);
          expect_identical(par, ref, threads);
        }
        opts.exec.threads = 1;
      }
    }
  }
}

TEST(ParallelExec, ConventionalModeMatchesSerial) {
  // Conventional mode garbles every slice in full (no work lists): the
  // prepass/tweak-preassignment path with maximal table traffic.
  crypto::CtrRng rng(block_from_u64(0x7173));
  const netlist::Netlist nl = random_netlist(rng);
  const netlist::BitVec a = to_bits(rng.next_u64(), 3);
  const netlist::BitVec b = to_bits(rng.next_u64(), 3);
  const netlist::BitVec p = to_bits(rng.next_u64(), 3);
  core::StreamProvider streams;
  streams.alice = [](std::uint64_t c) { return netlist::BitVec{(c & 1) != 0}; };
  streams.bob = [](std::uint64_t c) { return netlist::BitVec{(c & 2) != 0}; };

  core::RunOptions opts;
  opts.mode = core::Mode::Conventional;
  opts.fixed_cycles = 4;
  opts.exec.cone_target_gates = 24;
  const core::RunResult ref = core::SkipGateDriver(nl, opts).run(a, b, p, &streams);
  opts.exec.threads = 4;
  const core::RunResult par = core::SkipGateDriver(nl, opts).run(a, b, p, &streams);
  expect_identical(par, ref, 4);
}

TEST(ParallelExec, WarmSessionSharesPoolAcrossRunsAndMatchesSerial) {
  // WarmState owns the pool: two runs of one warm session reuse the parked
  // workers, and both runs stay identical to a serial warm session run for
  // run (including the second run's cache-hit-dominated plans).
  const programs::Program prog = programs::sum(1);
  const arm::Arm2Gc machine(prog.cfg, prog.words);
  const std::vector<std::uint32_t> a = {123456u};
  const std::vector<std::uint32_t> b = {654321u};

  core::ExecOptions serial_exec;
  arm::Arm2Gc::Session serial_session(machine, serial_exec);
  core::ExecOptions par_exec;
  par_exec.threads = 2;
  arm::Arm2Gc::Session par_session(machine, par_exec);

  for (int run = 0; run < 2; ++run) {
    const arm::Arm2GcResult ref = serial_session.run(a, b);
    const arm::Arm2GcResult par = par_session.run(a, b);
    EXPECT_EQ(par.outputs, ref.outputs) << "run " << run;
    EXPECT_EQ(par.cycles, ref.cycles);
    EXPECT_EQ(par.stats.garbled_non_xor, ref.stats.garbled_non_xor);
    EXPECT_EQ(par.stats.plan_cache_hits, ref.stats.plan_cache_hits);
    EXPECT_EQ(par.stats.cone_hits, ref.stats.cone_hits);
    EXPECT_EQ(par.stats.cone_misses, ref.stats.cone_misses);
    EXPECT_TRUE(par.stats.table_digest == ref.stats.table_digest);
    EXPECT_EQ(par.stats.comm.total(), ref.stats.comm.total());
    EXPECT_EQ(par.stats.threads, 2u);
  }
}

TEST(ParallelExec, ArmHamming160MatchesSerial) {
  // The paper's flagship benchmark end to end: threads=4 over the threaded
  // pipe with real IKNP OT must reproduce the serial run bit for bit —
  // outputs, digest, garbled_non_xor and every comm byte.
  const programs::Program prog = programs::hamming(5);
  const arm::Arm2Gc machine(prog.cfg, prog.words);
  const std::vector<std::uint32_t> a = {0x0001F00Du, 2, 3, 4, 5};
  const std::vector<std::uint32_t> b = {6, 7, 8, 0xFF00FF00u, 10};

  core::ExecOptions exec;
  exec.transport = core::TransportKind::ThreadedPipe;
  exec.ot_backend = gc::OtBackend::Iknp;
  const arm::Arm2GcResult ref = machine.run(a, b, 1u << 20, gc::Scheme::HalfGates, exec);
  exec.threads = 4;
  const arm::Arm2GcResult par = machine.run(a, b, 1u << 20, gc::Scheme::HalfGates, exec);

  EXPECT_EQ(par.outputs, ref.outputs);
  EXPECT_EQ(par.cycles, ref.cycles);
  EXPECT_EQ(par.stats.garbled_non_xor, ref.stats.garbled_non_xor);
  EXPECT_EQ(par.stats.skipped_non_xor, ref.stats.skipped_non_xor);
  EXPECT_EQ(par.stats.plan_cache_hits, ref.stats.plan_cache_hits);
  EXPECT_EQ(par.stats.cone_hits, ref.stats.cone_hits);
  EXPECT_TRUE(par.stats.table_digest == ref.stats.table_digest);
  EXPECT_EQ(par.stats.comm.garbled_table_bytes, ref.stats.comm.garbled_table_bytes);
  EXPECT_EQ(par.stats.comm.input_label_bytes, ref.stats.comm.input_label_bytes);
  EXPECT_EQ(par.stats.comm.ot_bytes, ref.stats.comm.ot_bytes);
  EXPECT_EQ(par.stats.comm.output_bytes, ref.stats.comm.output_bytes);
  EXPECT_EQ(par.stats.threads, 4u);
}

TEST(ParallelExec, ThreadsZeroResolvesToHardwareConcurrency) {
  const programs::Program prog = programs::sum(1);
  const arm::Arm2Gc machine(prog.cfg, prog.words);
  core::ExecOptions exec;
  exec.threads = 0;  // auto
  const arm::Arm2GcResult r =
      machine.run(std::vector<std::uint32_t>{40}, std::vector<std::uint32_t>{2}, 1u << 20,
                  gc::Scheme::HalfGates, exec);
  EXPECT_EQ(r.outputs[0], 42u);
  EXPECT_GE(r.stats.threads, 1u);
}

}  // namespace
