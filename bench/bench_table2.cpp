// Table 2: ARM2GC (function in "C" -> ARM binary on the garbled processor)
// vs the HDL-synthesis path of TinyGarble (our circuits/ module). Both sides
// run with SkipGate. Also prints the §5.3 garbled-MIPS comparison row.
#include <numeric>
#include <vector>

#include "arm/arm2gc.h"
#include "bench_util.h"
#include "circuits/tg_circuits.h"
#include "crypto/rng.h"
#include "programs/programs.h"

using namespace arm2gc;
using benchutil::num;

namespace {

struct PaperRow {
  std::uint64_t tiny;
  std::uint64_t arm;
};

void print_row(const std::string& name, PaperRow paper, std::uint64_t hdl, std::uint64_t arm,
               const core::RunStats* arm_stats = nullptr) {
  const double overhead = hdl == 0 ? 0.0
                                   : 100.0 * (static_cast<double>(arm) - static_cast<double>(hdl)) /
                                         static_cast<double>(hdl);
  std::printf("%-20s paper %10s /%10s   measured HDL %10s  ARM2GC %10s  overhead %8s  %s\n",
              name.c_str(), num(paper.tiny).c_str(), num(paper.arm).c_str(), num(hdl).c_str(),
              num(arm).c_str(), benchutil::pct(overhead).c_str(),
              arm_stats != nullptr ? benchutil::stats_brief(*arm_stats).c_str() : "");
  if (benchutil::json().enabled()) {
    benchutil::json().add(name + ".hdl_non_xor", hdl);
    benchutil::json().add(name + ".arm_non_xor", arm);
    if (arm_stats != nullptr) benchutil::json_stats(name + ".arm", *arm_stats);
  }
}

core::RunStats run_arm(const programs::Program& p, const std::vector<std::uint32_t>& a,
                       const std::vector<std::uint32_t>& b) {
  const arm::Arm2Gc machine(p.cfg, p.words);
  return machine.run(a, b).stats;
}

netlist::BitVec words_bits(const std::vector<std::uint32_t>& w) {
  netlist::BitVec v(32 * w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    for (int b = 0; b < 32; ++b) v[32 * i + static_cast<std::size_t>(b)] = ((w[i] >> b) & 1u) != 0;
  }
  return v;
}

std::vector<std::uint32_t> rand_words(crypto::CtrRng& rng, std::size_t n) {
  std::vector<std::uint32_t> v(n);
  for (auto& w : v) w = static_cast<std::uint32_t>(rng.next_u64());
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::parse_args(argc, argv);
  benchutil::header("Table 2: ARM2GC (C via ARM binary) vs HDL synthesis (TinyGarble path)");
  std::printf("(paper columns: TinyGarble-Verilog / ARM2GC-C garbled non-XOR)\n\n");
  crypto::CtrRng rng(crypto::block_from_u64(202));

  {
    const auto a = rand_words(rng, 1);
    const auto b = rand_words(rng, 1);
    const auto hdl = circuits::run_instance(circuits::tg_sum(32, words_bits(a), words_bits(b)),
                                            core::Mode::SkipGate);
    const auto arm_stats = run_arm(programs::sum(1), a, b);
    print_row("Sum 32", {31, 31}, hdl.stats.garbled_non_xor, arm_stats.garbled_non_xor,
              &arm_stats);
  }
  {
    const auto a = rand_words(rng, 32);
    const auto b = rand_words(rng, 32);
    const auto hdl = circuits::run_instance(circuits::tg_sum(1024, words_bits(a), words_bits(b)),
                                            core::Mode::SkipGate);
    const auto arm_stats = run_arm(programs::sum(32), a, b);
    print_row("Sum 1024", {1023, 1023}, hdl.stats.garbled_non_xor, arm_stats.garbled_non_xor,
              &arm_stats);
  }
  {
    const auto a = rand_words(rng, 1);
    const auto b = rand_words(rng, 1);
    const auto hdl = circuits::run_instance(
        circuits::tg_compare(32, words_bits(a), words_bits(b)), core::Mode::SkipGate);
    const auto arm_stats = run_arm(programs::compare(1), a, b);
    print_row("Compare 32", {32, 32}, hdl.stats.garbled_non_xor, arm_stats.garbled_non_xor,
              &arm_stats);
  }
  {
    const auto a = rand_words(rng, 512);
    const auto b = rand_words(rng, 512);
    const auto hdl = circuits::run_instance(
        circuits::tg_compare(16384, words_bits(a), words_bits(b)), core::Mode::SkipGate);
    const auto arm_stats = run_arm(programs::compare(512), a, b);
    print_row("Compare 16384", {16384, 16384}, hdl.stats.garbled_non_xor,
              arm_stats.garbled_non_xor, &arm_stats);
  }
  for (const std::size_t nwords : {1ul, 5ul, 16ul}) {
    const auto a = rand_words(rng, nwords);
    const auto b = rand_words(rng, nwords);
    const auto hdl = circuits::run_instance(
        circuits::tg_hamming(32 * nwords, words_bits(a), words_bits(b)), core::Mode::SkipGate);
    static const PaperRow kPaper[] = {{145, 57}, {1092, 247}, {4563, 1012}};
    const auto arm_stats = run_arm(programs::hamming(nwords), a, b);
    print_row("Hamming " + std::to_string(32 * nwords),
              kPaper[nwords == 1 ? 0 : (nwords == 5 ? 1 : 2)], hdl.stats.garbled_non_xor,
              arm_stats.garbled_non_xor, &arm_stats);
  }
  {
    const auto a = rand_words(rng, 1);
    const auto b = rand_words(rng, 1);
    const auto hdl =
        circuits::run_instance(circuits::tg_mult32(a[0], b[0]), core::Mode::SkipGate);
    const auto arm_stats = run_arm(programs::mult32(), a, b);
    print_row("Mult 32", {2016, 993}, hdl.stats.garbled_non_xor, arm_stats.garbled_non_xor,
              &arm_stats);
  }
  for (const std::size_t n : {3ul, 5ul, 8ul}) {
    const auto a = rand_words(rng, n * n);
    const auto b = rand_words(rng, n * n);
    const auto hdl =
        circuits::run_instance(circuits::tg_matmult(n, a, b), core::Mode::SkipGate);
    static const PaperRow kPaper[] = {{25668, 27369}, {119350, 127225}, {490048, 522304}};
    const auto arm_stats = run_arm(programs::matmult(n), a, b);
    print_row("MatrixMult" + std::to_string(n) + "x" + std::to_string(n),
              kPaper[n == 3 ? 0 : (n == 5 ? 1 : 2)], hdl.stats.garbled_non_xor,
              arm_stats.garbled_non_xor, &arm_stats);
  }
  {
    // SHA3/AES run on the HDL path only: the bitsliced ARM ports are future
    // work (EXPERIMENTS.md documents the substitution).
    const auto sha = circuits::run_instance(circuits::tg_sha3_256({'x'}), core::Mode::SkipGate);
    print_row("SHA3 256 (HDL only)", {38400, 37760}, sha.stats.garbled_non_xor,
              sha.stats.garbled_non_xor);
    std::array<std::uint8_t, 16> pt{}, key{};
    const auto aes = circuits::run_instance(circuits::tg_aes128(pt, key), core::Mode::SkipGate);
    print_row("AES 128 (HDL only)", {6400, 6400}, aes.stats.garbled_non_xor,
              aes.stats.garbled_non_xor);
  }

  // §5.3: garbled MIPS comparison — Hamming over 32 32-bit integers.
  {
    std::printf("\n-- vs garbled MIPS (Wang et al.), Hamming distance of 32 32-bit ints --\n");
    const auto a = rand_words(rng, 32);
    const auto b = rand_words(rng, 32);
    const std::uint64_t ours = run_arm(programs::hamming(32), a, b).garbled_non_xor;
    constexpr std::uint64_t kMips = 481000;  // published
    std::printf("garbled MIPS (published) %s   ARM2GC (paper) 3,073   ARM2GC (ours) %s   "
                "improvement %.0fx (paper: 156x)\n",
                num(kMips).c_str(), num(ours).c_str(),
                static_cast<double>(kMips) / static_cast<double>(ours));
  }
  return benchutil::finish();
}
