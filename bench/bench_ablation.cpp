// Ablation studies for the design choices DESIGN.md calls out:
//  1. garbling scheme (classic 4-row vs GRR3 vs half-gates) — communication
//     per non-XOR gate under the same SkipGate plan;
//  2. the deferred-flag / conditional-execution machinery — cost of a
//     predicated ARM instruction vs a branch-free HDL mux;
//  3. Hamming circuit structure (bit-serial counter vs popcount tree);
//  4. SkipGate planner overhead (local compute traded for communication).
#include <chrono>
#include <vector>

#include "arm/arm2gc.h"
#include "bench_util.h"
#include "circuits/tg_circuits.h"
#include "crypto/rng.h"
#include "programs/programs.h"

using namespace arm2gc;
using benchutil::num;

int main() {
  crypto::CtrRng rng(crypto::block_from_u64(606));

  benchutil::header("Ablation 1: garbling scheme vs communication (Mult 32 instance)");
  {
    const circuits::TgInstance inst = circuits::tg_mult32(0xCAFEBABE, 0x31415926);
    for (const auto scheme : {gc::Scheme::Classic4, gc::Scheme::Grr3, gc::Scheme::HalfGates}) {
      const circuits::TgRun r = circuits::run_instance(inst, core::Mode::SkipGate, scheme);
      const char* name = scheme == gc::Scheme::Classic4
                             ? "classic 4-row"
                             : (scheme == gc::Scheme::Grr3 ? "GRR3 (3-row)" : "half-gates");
      std::printf("%-14s garbled non-XOR %8s   table bytes %10s\n", name,
                  num(r.stats.garbled_non_xor).c_str(),
                  num(r.stats.comm.garbled_table_bytes).c_str());
    }
  }

  benchutil::header("Ablation 2: predicated execution cost on the garbled ARM");
  {
    // max(a,b) with conditional move vs arithmetic selection.
    const auto cmov = arm::assemble(
        "ldr r4, [r0]\nldr r5, [r1]\ncmp r4, r5\nmovlo r4, r5\nstr r4, [r2]\nswi 0\n");
    const auto arith = arm::assemble(
        "ldr r4, [r0]\nldr r5, [r1]\nsubs r6, r4, r5\nsbc r7, r7, r7\nand r6, r6, r7\n"
        "sub r4, r4, r6\nstr r4, [r2]\nswi 0\n");
    arm::MemoryConfig cfg;
    cfg.imem_words = 16;
    cfg.alice_words = cfg.bob_words = cfg.out_words = 1;
    cfg.ram_words = 16;
    for (const auto& [name, prog] : {std::pair{"cmp+movlo", cmov}, {"mask arithmetic", arith}}) {
      const arm::Arm2Gc machine(cfg, prog);
      const auto r = machine.run(std::vector<std::uint32_t>{77}, std::vector<std::uint32_t>{99});
      std::printf("%-16s out=%u garbled non-XOR %6s\n", name, r.outputs[0],
                  num(r.stats.garbled_non_xor).c_str());
    }
  }

  benchutil::header("Ablation 3: Hamming circuit structure (160-bit)");
  {
    netlist::BitVec a(160), b(160);
    for (std::size_t i = 0; i < 160; ++i) {
      a[i] = rng.next_bool();
      b[i] = rng.next_bool();
    }
    const auto serial = circuits::run_instance(circuits::tg_hamming(160, a, b),
                                               core::Mode::SkipGate);
    const auto tree = circuits::run_instance(circuits::tg_hamming_tree(160, a, b),
                                             core::Mode::SkipGate);
    std::printf("bit-serial counter (TinyGarble layout): %s\n",
                num(serial.stats.garbled_non_xor).c_str());
    std::printf("popcount tree (combinational):          %s\n",
                num(tree.stats.garbled_non_xor).c_str());
  }

  benchutil::header("Ablation 4: SkipGate local-compute overhead (Hamming 160 on ARM)");
  {
    const programs::Program p = programs::hamming(5);
    std::vector<std::uint32_t> a(5), b(5);
    for (auto& w : a) w = static_cast<std::uint32_t>(rng.next_u64());
    for (auto& w : b) w = static_cast<std::uint32_t>(rng.next_u64());
    const arm::Arm2Gc machine(p.cfg, p.words);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = machine.run(a, b);
    const auto dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const std::uint64_t wo = machine.conventional_non_xor(r.cycles);
    std::printf("cycles %s, planner+garble wall time %.3fs  (%s)\n", num(r.cycles).c_str(), dt,
                benchutil::stats_brief(r.stats).c_str());
    std::printf("communication: %s garbled tables (vs %s conventional) -> %s bytes total\n",
                num(r.stats.garbled_non_xor).c_str(), num(wo).c_str(),
                num(r.stats.comm.total()).c_str());
    std::printf("local gate-slots visited: %s (linear in circuit size x cycles, §3.4)\n",
                num(r.stats.non_xor_slots).c_str());
  }
  return 0;
}
