#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/aes128.h"
#include "crypto/block.h"
#include "crypto/prf.h"
#include "crypto/rng.h"

namespace {

using arm2gc::crypto::Aes128;
using arm2gc::crypto::Block;
using arm2gc::crypto::block_from_u64;
using arm2gc::crypto::CtrRng;
using arm2gc::crypto::GarbleHash;

Block block_from_hex_bytes(const std::uint8_t (&bytes)[16]) { return Block::from_bytes(bytes); }

TEST(Block, XorAndEquality) {
  const Block a{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  const Block b{0x1111111111111111ULL, 0x2222222222222222ULL};
  const Block c = a ^ b;
  EXPECT_EQ(c ^ b, a);
  EXPECT_EQ(c ^ a, b);
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(Block{}.is_zero());
  EXPECT_FALSE(a.is_zero());
}

TEST(Block, LsbIsBitZero) {
  EXPECT_FALSE((Block{0, 0}).lsb());
  EXPECT_TRUE((Block{1, 0}).lsb());
  EXPECT_FALSE((Block{2, 0}).lsb());
  EXPECT_TRUE((Block{3, 0}).lsb());
}

TEST(Block, GfDoubleReduction) {
  // Doubling the top bit wraps to the reduction polynomial 0x87.
  const Block top{0, 0x8000000000000000ULL};
  EXPECT_EQ(top.gf_double(), (Block{0x87, 0}));
  // Doubling without the top bit set is a plain shift.
  const Block one{1, 0};
  EXPECT_EQ(one.gf_double(), (Block{2, 0}));
  const Block carry{0x8000000000000000ULL, 0};
  EXPECT_EQ(carry.gf_double(), (Block{0, 1}));
}

TEST(Block, BytesRoundTrip) {
  const Block a{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  std::uint8_t bytes[16];
  a.to_bytes(bytes);
  EXPECT_EQ(Block::from_bytes(bytes), a);
}

TEST(Block, HexFormatsMsbFirst) {
  const Block a{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(a.hex(), "fedcba98765432100123456789abcdef");
}

TEST(Aes128, Fips197Vector) {
  // FIPS-197 Appendix C.1.
  const std::uint8_t key_bytes[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                      0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const std::uint8_t pt_bytes[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                                     0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const std::uint8_t ct_bytes[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                                     0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  const Aes128 aes(block_from_hex_bytes(key_bytes));
  EXPECT_EQ(aes.encrypt(block_from_hex_bytes(pt_bytes)), block_from_hex_bytes(ct_bytes));
}

TEST(Aes128, DistinctPlaintextsDistinctCiphertexts) {
  const Aes128 aes(block_from_u64(42));
  EXPECT_FALSE(aes.encrypt(block_from_u64(0)) == aes.encrypt(block_from_u64(1)));
}

// --- AES backend cross-checks (portable vs AES-NI, scalar vs batched) --------

TEST(Aes128, Fips197VectorOnEveryBackend) {
  // FIPS-197 Appendix C.1, asserted against each backend explicitly so a
  // broken AES-NI path cannot hide behind runtime dispatch.
  const std::uint8_t key_bytes[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                      0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const std::uint8_t pt_bytes[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                                     0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const std::uint8_t ct_bytes[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                                     0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  const Block key = Block::from_bytes(key_bytes);
  const Block pt = Block::from_bytes(pt_bytes);
  const Block ct = Block::from_bytes(ct_bytes);

  const Aes128 portable(key, Aes128::Backend::Portable);
  EXPECT_FALSE(portable.uses_aesni());
  EXPECT_EQ(portable.encrypt(pt), ct);

  const Aes128 ni(key, Aes128::Backend::AesNi);
  EXPECT_EQ(ni.uses_aesni(), Aes128::aesni_available());
  EXPECT_EQ(ni.encrypt(pt), ct);

  const Aes128 dispatched(key);  // Backend::Auto
  EXPECT_EQ(dispatched.uses_aesni(), Aes128::aesni_available());
  EXPECT_EQ(dispatched.encrypt(pt), ct);
}

TEST(Aes128, AesNiMatchesPortableRandomized) {
  CtrRng rng(block_from_u64(0xbacc));
  for (int k = 0; k < 32; ++k) {
    const Block key = rng.next_block();
    const Aes128 portable(key, Aes128::Backend::Portable);
    const Aes128 ni(key, Aes128::Backend::AesNi);
    for (int i = 0; i < 16; ++i) {
      const Block pt = rng.next_block();
      EXPECT_EQ(ni.encrypt(pt), portable.encrypt(pt));
    }
  }
}

TEST(Aes128, BatchMatchesScalarAtEveryWidth) {
  // Widths straddle the 8-wide and 4-wide pipeline groups plus the tail loop.
  CtrRng rng(block_from_u64(0xb47c8));
  const Block key = rng.next_block();
  for (const Aes128::Backend backend : {Aes128::Backend::Portable, Aes128::Backend::AesNi}) {
    const Aes128 aes(key, backend);
    for (std::size_t n = 0; n <= 21; ++n) {
      std::vector<Block> batch(n);
      std::vector<Block> expect(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch[i] = rng.next_block();
        expect[i] = aes.encrypt(batch[i]);
      }
      aes.encrypt_batch(batch.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(batch[i], expect[i]) << "backend=" << static_cast<int>(backend)
                                       << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(PiHash, BatchedHashesMatchScalarForAllTweaks) {
  using arm2gc::crypto::PiHash;
  CtrRng rng(block_from_u64(0x9a5b));
  // Edge tweaks plus random ones; every pair/quad mixes them.
  const std::uint64_t tweaks[] = {0,
                                  1,
                                  2,
                                  0xffffffffffffffffULL,
                                  0x8000000000000000ULL,
                                  rng.next_u64(),
                                  rng.next_u64(),
                                  rng.next_u64()};
  for (const auto backend : {Aes128::Backend::Portable, Aes128::Backend::AesNi}) {
    const PiHash h(backend);
    for (int iter = 0; iter < 64; ++iter) {
      Block in4[4];
      std::uint64_t tw4[4];
      for (int i = 0; i < 4; ++i) {
        in4[i] = rng.next_block();
        tw4[i] = tweaks[rng.next_below(8)];
      }
      Block out4[4];
      h.hash4(in4, tw4, out4);
      for (int i = 0; i < 4; ++i) EXPECT_EQ(out4[i], h(in4[i], tw4[i]));

      Block out2[2];
      h.hash2(in4, tw4, out2);
      EXPECT_EQ(out2[0], h(in4[0], tw4[0]));
      EXPECT_EQ(out2[1], h(in4[1], tw4[1]));

      // In-place batched hashing (out aliases in) must also match.
      Block alias[4] = {in4[0], in4[1], in4[2], in4[3]};
      h.hash4(alias, tw4, alias);
      for (int i = 0; i < 4; ++i) EXPECT_EQ(alias[i], out4[i]);
    }
  }
}

TEST(PiHash, BackendsProduceIdenticalHashes) {
  using arm2gc::crypto::PiHash;
  const PiHash portable(Aes128::Backend::Portable);
  const PiHash ni(Aes128::Backend::AesNi);
  CtrRng rng(block_from_u64(0x715a));
  for (int i = 0; i < 256; ++i) {
    const Block x = rng.next_block();
    const std::uint64_t t = rng.next_u64();
    EXPECT_EQ(portable(x, t), ni(x, t));
  }
}

TEST(GarbleHash, DeterministicAndTweakSensitive) {
  const GarbleHash h1;
  const GarbleHash h2;
  const Block x{0xdeadbeef, 0xcafebabe};
  EXPECT_EQ(h1(x, 7), h2(x, 7));
  EXPECT_FALSE(h1(x, 7) == h1(x, 8));
  EXPECT_FALSE(h1(x, 7) == h1(x ^ Block{1, 0}, 7));
}

TEST(CtrRng, DeterministicPerSeed) {
  CtrRng a(block_from_u64(1));
  CtrRng b(block_from_u64(1));
  CtrRng c(block_from_u64(2));
  const Block x = a.next_block();
  EXPECT_EQ(x, b.next_block());
  EXPECT_FALSE(x == c.next_block());
  EXPECT_FALSE(a.next_block() == x);  // counter advances
}

TEST(CtrRng, NextBelowInRange) {
  CtrRng rng(block_from_u64(3));
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

}  // namespace
