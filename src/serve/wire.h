// Wire framing of the garbler service's out-of-protocol exchanges. The
// protocol proper (everything between hello and wrap-up) is byte-identical
// to a tools/arm2gc_party two-process run of the same options — the service
// adds exactly one request/reply pair in front (program + option selection)
// and reuses arm2gc_party's wrap-up shape behind (summary cross-check, with
// the served outputs travelling as packed netlist bits instead of ARM
// words, since the service is a netlist-level component).
//
// Frames are fixed-layout structs moved with SocketDuplex::send_control /
// recv_control (unaccounted control bytes, exactly like the party tool's
// WireSummary), under the same same-architecture assumption that tool
// already established for deployments.
#pragma once

#include <cstdint>

namespace arm2gc::serve {

inline constexpr std::uint64_t kHelloMagic = 0x61326763'73657276ull;    // "a2gcserv"
inline constexpr std::uint64_t kSummaryMagic = 0x61326763'73756d6dull;  // "a2gcsumm"
inline constexpr std::uint32_t kWireVersion = 1;
/// Program names longer than this are rejected before any allocation.
inline constexpr std::uint32_t kMaxProgramName = 256;

/// Service verdict on a hello; anything but Ok is followed by the service
/// closing the connection.
enum class HelloStatus : std::uint32_t {
  Ok = 0,
  BadMagic = 1,        ///< not a service client (or a desynced stream)
  BadVersion = 2,      ///< client/service wire versions differ
  UnknownProgram = 3,  ///< no ProgramSpec registered under that name
  Busy = 4,            ///< max_clients connections already active
  OptionMismatch = 5,  ///< schedule/seed fields disagree with the spec
};

[[nodiscard]] constexpr const char* hello_status_name(HelloStatus s) {
  switch (s) {
    case HelloStatus::Ok: return "ok";
    case HelloStatus::BadMagic: return "bad-magic";
    case HelloStatus::BadVersion: return "bad-version";
    case HelloStatus::UnknownProgram: return "unknown-program";
    case HelloStatus::Busy: return "busy";
    case HelloStatus::OptionMismatch: return "option-mismatch";
  }
  return "?";
}

/// Client -> service, first bytes on the connection; `name_len` bytes of
/// program name follow the struct. The protocol fields the two endpoints
/// must agree on all travel here: the service adopts scheme/OT choices per
/// client (so one service instance serves every backend) but insists the
/// cycle schedule and public seed match the registered spec — a silent
/// mismatch there would desync the planners mid-protocol instead of
/// failing loudly at the door.
struct HelloRequest {
  std::uint64_t magic = kHelloMagic;
  std::uint32_t version = kWireVersion;
  std::uint32_t name_len = 0;
  std::uint8_t scheme = 0;      ///< gc::Scheme
  std::uint8_t ot_backend = 0;  ///< gc::OtBackend
  std::uint8_t reserved[6] = {};
  std::uint64_t ot_pool = 0;
  std::uint64_t fixed_cycles = 0;  ///< 0 = halt-driven under max_cycles
  std::uint64_t max_cycles = 0;
  std::uint8_t protocol_seed[16] = {};
};

/// Service -> client reply; on Ok the protocol proper starts immediately.
struct HelloReply {
  std::uint64_t magic = kHelloMagic;
  std::uint32_t status = 0;  ///< HelloStatus
  std::uint32_t reserved = 0;
};

/// Wrap-up summary, service first (plus `out_bits` packed output bits,
/// little-endian within each byte), then the client's mirror with
/// out_bits = 0. Cross-checking cycles/garbled_non_xor/table_digest is the
/// end-to-end correctness certificate, exactly as in arm2gc_party.
struct RunSummary {
  std::uint64_t magic = kSummaryMagic;
  std::uint64_t cycles = 0;
  std::uint64_t final_cycle = 0;
  std::uint64_t garbled_non_xor = 0;
  std::uint8_t table_digest[16] = {};
  std::uint64_t comm[4] = {};  ///< sent bytes: table, input label, ot, output
  std::uint64_t out_bits = 0;
};

static_assert(sizeof(HelloRequest) == 64, "fixed wire layout");
static_assert(sizeof(HelloReply) == 16, "fixed wire layout");
static_assert(sizeof(RunSummary) == 88, "fixed wire layout");

}  // namespace arm2gc::serve
