// Table 1: effect of SkipGate on TinyGarble-style sequential circuits —
// garbled non-XOR counts without and with SkipGate, plus the skipped count.
// Paper values are printed beside the measured ones.
#include <array>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "circuits/tg_circuits.h"
#include "crypto/rng.h"

using namespace arm2gc;
using namespace arm2gc::circuits;
using benchutil::num;

namespace {

struct PaperRow {
  std::uint64_t without;
  std::uint64_t with;
};

void run_row(const TgInstance& inst, PaperRow paper) {
  const TgRun conv = run_instance(inst, core::Mode::Conventional);
  const TgRun skip = run_instance(inst, core::Mode::SkipGate);
  std::printf("%-20s paper %10s /%10s   measured %10s /%10s   improv %7s  %s\n",
              inst.name.c_str(), num(paper.without).c_str(), num(paper.with).c_str(),
              num(conv.stats.garbled_non_xor).c_str(), num(skip.stats.garbled_non_xor).c_str(),
              benchutil::improv_pct(conv.stats.garbled_non_xor, skip.stats.garbled_non_xor)
                  .c_str(),
              benchutil::stats_brief(skip.stats).c_str());
  benchutil::json_stats(inst.name, skip.stats);
  if (benchutil::json().enabled()) {
    benchutil::json().add(inst.name + ".conventional_non_xor", conv.stats.garbled_non_xor);
  }
}

netlist::BitVec rand_bits(crypto::CtrRng& rng, std::size_t n) {
  netlist::BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.next_bool();
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::parse_args(argc, argv);
  benchutil::header("Table 1: SkipGate on TinyGarble sequential circuits (w/o vs w/)");
  std::printf("(paper columns: # garbled non-XOR w/o SkipGate / w/ SkipGate)\n\n");
  crypto::CtrRng rng(crypto::block_from_u64(101));

  run_row(tg_sum(32, rand_bits(rng, 32), rand_bits(rng, 32)), {32, 31});
  run_row(tg_sum(1024, rand_bits(rng, 1024), rand_bits(rng, 1024)), {1024, 1023});
  run_row(tg_compare(32, rand_bits(rng, 32), rand_bits(rng, 32)), {32, 32});
  run_row(tg_compare(16384, rand_bits(rng, 16384), rand_bits(rng, 16384)), {16384, 16384});
  run_row(tg_hamming(32, rand_bits(rng, 32), rand_bits(rng, 32)), {160, 145});
  run_row(tg_hamming(160, rand_bits(rng, 160), rand_bits(rng, 160)), {1120, 1092});
  run_row(tg_hamming(512, rand_bits(rng, 512), rand_bits(rng, 512)), {4608, 4563});
  run_row(tg_mult32(0xDEADBEEF, 0x12345678), {2048, 2016});

  for (const std::size_t n : {3ul, 5ul, 8ul}) {
    std::vector<std::uint32_t> a(n * n), b(n * n);
    for (auto& x : a) x = static_cast<std::uint32_t>(rng.next_u64());
    for (auto& x : b) x = static_cast<std::uint32_t>(rng.next_u64());
    static const PaperRow kPaper[] = {{25947, 25668}, {120125, 119350}, {492032, 490048}};
    run_row(tg_matmult(n, a, b), kPaper[n == 3 ? 0 : (n == 5 ? 1 : 2)]);
  }

  run_row(tg_sha3_256({'a', 'r', 'm', '2', 'g', 'c'}), {40032, 38400});

  std::array<std::uint8_t, 16> pt{}, key{};
  for (int i = 0; i < 16; ++i) {
    pt[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0x10 + i);
  }
  run_row(tg_aes128(pt, key), {15807, 6400});

  std::printf("\nShape check: SkipGate never increases cost; AES benefits most (public key\n"
              "schedule / controller), Compare not at all — matching the paper.\n");
  return benchutil::finish();
}
