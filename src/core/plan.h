// The SkipGate planner (paper §3): a deterministic classification pass over
// *public data only* that both parties run independently and that fully
// determines what the garbler and the evaluator do in a cycle.
//
//   Forward pass   classify every gate (categories i-iv) using public wire
//                  values and secret-wire fingerprints; a fingerprint is a
//                  deterministic public alias for the XOR-combination of base
//                  labels a wire carries, so "fingerprints equal (+flip)" is
//                  exactly the paper's "identical or inverted labels" test
//                  (§3.3) without touching any key material.
//   Backward pass  from the sampled outputs and flip-flop D-inputs, sweep
//                  "needed" backwards; a category-iv gate is emitted iff its
//                  output is needed. This reaches the same fixpoint as the
//                  paper's recursive label_fanout reduction and makes Alice's
//                  table list and Bob's expectations agree by construction.
//
// The result of the two passes is an explicit `CyclePlan`. Because the plan
// is a pure function of the cycle's *entry state* — the public values, flip
// parities and fingerprint-equivalence classes of the root wires (constants,
// inputs, flip-flops) — plans are cached under a canonical signature of that
// state. The garbled ARM core re-enters the same public control state on
// every loop iteration (fetch/decode is public — the paper's whole point),
// so repeated cycles skip classification entirely; only the cheap
// fingerprint propagation runs so future signatures stay exact.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/aes128.h"
#include "crypto/block.h"
#include "netlist/netlist.h"

namespace arm2gc::core {

/// SkipGate = the paper's protocol; Conventional = classic sequential GC that
/// treats every wire (including constants, public inputs and known initial
/// values) as secret — the "w/o SkipGate" baseline of Tables 1 and 4.
enum class Mode : std::uint8_t { SkipGate, Conventional };

// PassC0/PassC1 cover degenerate constant-table gates in Conventional mode,
// where even a constant must stay a (secret-typed) wire: the gate forwards
// the global constant wire's label. PassSrc forwards an arbitrary earlier
// wire recorded in the plan (XOR-cancellation peephole).
enum class PlanAct : std::uint8_t {
  Public,
  PassA,
  PassB,
  FreeXor,
  Garble,
  PassC0,
  PassC1,
  PassSrc,
};

/// Planner view of one wire for the current cycle.
struct WireState {
  bool is_pub = true;
  bool val = false;       // public value
  bool flip = false;      // inversion parity of the carried secret combination
  crypto::Block fp{};     // fingerprint of the carried secret combination
};

/// One cycle's complete public plan, shared verbatim by both party sessions.
/// The pointers reference storage owned by the Planner (cache entry or
/// scratch) and stay valid until the next forward() call.
struct CyclePlan {
  const std::uint8_t* act = nullptr;          ///< PlanAct per gate
  const netlist::WireId* pass_src = nullptr;  ///< source wire for PassSrc gates
  const std::uint8_t* wire_bits = nullptr;    ///< bit0 pub, bit1 val, bit2 flip
  const std::uint8_t* emit = nullptr;         ///< per gate: garbled table sent
  const std::uint8_t* live = nullptr;         ///< per gate: party passes process it
  std::size_t num_gates = 0;
  std::size_t num_wires = 0;
  std::uint64_t emitted = 0;  ///< number of garbled tables this cycle
  bool is_final = false;
  bool sample = false;  ///< outputs are decoded this cycle

  [[nodiscard]] PlanAct action(std::size_t g) const { return static_cast<PlanAct>(act[g]); }
  [[nodiscard]] bool wire_public(netlist::WireId w) const { return (wire_bits[w] & 1) != 0; }
  [[nodiscard]] bool wire_value(netlist::WireId w) const { return (wire_bits[w] & 2) != 0; }
  [[nodiscard]] bool wire_flip(netlist::WireId w) const { return (wire_bits[w] & 4) != 0; }
};

class Planner;

/// Reusable per-party store of classified cycle plans, keyed by the entry
/// state signature (public values, flip parities, fingerprint equivalence
/// classes). The signature is deliberately coarse — it cannot see XOR-linear
/// relations *among* root fingerprints — so every hit is re-verified against
/// the current fingerprints before being served (Planner::verify_and_
/// propagate) and silently reclassified on drift. The signature trajectory
/// of a run depends only on the netlist and the *public* inputs, so handing
/// the same PlanCache to successive runs of one machine on fresh private
/// inputs (the traffic-serving scenario) skips classification wherever the
/// public trajectory repeats: across cycles within a run and across runs.
/// Not thread-safe; use one instance per party (the threaded driver
/// enforces this).
class PlanCache {
 public:
  /// Capacity is derived from the per-entry footprint against this budget
  /// (at least 4 entries) on first use. Once full, new states run uncached
  /// while existing entries keep serving hits.
  ///
  /// `insert_on_first_sight` controls when a classified plan is copied into
  /// the cache: true (cross-run caches — reuse is known to come) stores every
  /// new state immediately; false (transient per-run caches) stores a state
  /// only on its second sighting, so runs over non-recurring states pay a
  /// cheap signature probe instead of a multi-hundred-kB entry copy.
  explicit PlanCache(std::size_t budget_bytes = 64u << 20, bool insert_on_first_sight = true);
  ~PlanCache();
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  [[nodiscard]] std::size_t entries() const { return size_; }

 private:
  friend class Planner;

  /// Forward + backward results for one entry-state equivalence class.
  struct Entry {
    std::vector<std::uint32_t> sig;
    std::vector<std::uint8_t> act;
    std::vector<netlist::WireId> pass_src;
    std::vector<std::uint8_t> wire_bits;
    struct Backward {
      std::vector<std::uint8_t> emit;
      std::vector<std::uint8_t> live;
      std::uint64_t emitted = 0;
      bool filled = false;
    };
    std::array<Backward, 2> backward;  ///< indexed by is_final
  };
  struct Slot {
    std::uint64_t hash = 0;
    std::unique_ptr<Entry> entry;
  };

  void ensure_sized(std::uint64_t netlist_key, std::size_t num_wires, std::size_t num_gates,
                    std::size_t roots);
  [[nodiscard]] bool admit(std::uint64_t hash);

  std::size_t budget_bytes_;
  bool insert_first_;
  std::vector<Slot> slots_;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
  /// Content hash of (mode, netlist structure) this cache is keyed for; a
  /// shared cache handed to a different circuit or mode is rejected.
  std::uint64_t netlist_key_ = 0;
  /// Signature hashes seen once (second-sighting admission policy).
  std::vector<std::uint64_t> seen_;
  std::size_t seen_count_ = 0;
};

struct PlannerOptions {
  Mode mode = Mode::SkipGate;
  crypto::Block seed{};  ///< fingerprint stream seed (public; must match peer)
  bool cache = true;
  /// Budget for the planner-owned cache when no shared cache is supplied.
  std::size_t cache_budget_bytes = 64u << 20;
  /// Optional externally owned cache, reusable across runs (same netlist).
  PlanCache* shared_cache = nullptr;
};

/// Deterministic public bookkeeping both parties run independently. Consumes
/// only public inputs; secret wires are tracked as (flip, fingerprint).
class Planner {
 public:
  Planner(const netlist::Netlist& nl, const PlannerOptions& opts);

  /// Binds root-wire planner state: constants, fixed inputs, flip-flop
  /// initial values. Draws one fingerprint per secret-bound bit, in binding
  /// order (the peer's planner consumes the identical sequence).
  void reset(const netlist::BitVec& pub_bits);

  /// Installs root states for a cycle; draws fresh fingerprints for streamed
  /// secret inputs. `pub_stream` carries this cycle's public streamed bits.
  void begin_cycle(const netlist::BitVec& pub_stream);

  /// Classifies the cycle (forward pass), via the plan cache when the entry
  /// signature matches a previous cycle. Publicness/values of every wire are
  /// queryable afterwards (e.g. for the halt-wire check).
  void forward();

  [[nodiscard]] bool wire_public(netlist::WireId w) const;
  [[nodiscard]] bool wire_value(netlist::WireId w) const;

  /// Completes the plan for this cycle (backward needed/emit sweep, cached
  /// per is_final variant). Valid until the next forward().
  [[nodiscard]] CyclePlan finish(bool is_final);

  /// Latches flip-flop planner state through the current plan.
  void latch(const CyclePlan& plan);

  [[nodiscard]] std::size_t non_free_per_cycle() const { return non_free_per_cycle_; }
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return cache_misses_; }

 private:
  using Entry = PlanCache::Entry;

  crypto::Block fresh_fp();
  void bind_secret_fp(WireState& s);
  void build_signature();
  void classify(Entry& e);
  /// Hit path: walks the gates once, propagating fingerprints through the
  /// cached actions AND verifying every fingerprint-dependent classification
  /// decision (category iii, XOR cancellation, category iv) against the
  /// current fingerprints. Returns false when any decision would differ —
  /// the cycle's XOR-linear fingerprint structure drifted from the cached
  /// state, which the equality-class signature cannot see — and the caller
  /// must reclassify. Restores the fingerprint stream on failure so the
  /// fallback is bit-identical to an uncached run.
  [[nodiscard]] bool verify_and_propagate(const Entry& e);
  void backward_fill(const Entry& e, Entry::Backward& b, bool is_final);

  const netlist::Netlist& nl_;
  PlannerOptions opts_;

  // Fingerprints are AES-CTR outputs consumed in strict counter order; the
  // forward pass draws one per category-iv gate every cycle, so they are
  // generated a pipelined batch at a time (same sequence as scalar calls).
  static constexpr std::size_t kFpBatch = 8;
  crypto::Aes128 fp_gen_;
  std::uint64_t fp_ctr_ = 0;
  std::array<crypto::Block, kFpBatch> fp_buf_{};
  std::size_t fp_pos_ = kFpBatch;

  std::vector<WireState> st_;
  std::vector<WireState> fixed_st_;
  std::vector<WireState> dff_st_;
  WireState const_st_[2];
  std::vector<std::uint8_t> needed_;  ///< backward-sweep scratch
  std::size_t non_free_per_cycle_ = 0;

  // Plan cache: canonical entry-state signature -> Entry. Collisions on the
  // 64-bit hash fall back to full-signature comparison. Either externally
  // owned (shared across runs) or planner-owned.
  PlanCache* cache_ = nullptr;
  std::unique_ptr<PlanCache> owned_cache_;
  Entry scratch_;
  Entry* cur_ = nullptr;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;

  // Signature scratch: fingerprint -> equivalence-class id, epoch-stamped so
  // the table never needs clearing.
  std::vector<std::uint32_t> sig_;
  struct ClassSlot {
    crypto::Block fp{};
    std::uint32_t id = 0;
    std::uint64_t epoch = 0;  ///< 64-bit: must never wrap within a run
  };
  std::vector<ClassSlot> class_table_;
  std::uint64_t class_epoch_ = 0;
  std::uint64_t netlist_key_ = 0;
};

}  // namespace arm2gc::core
