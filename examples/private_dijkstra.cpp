// Privacy-preserving route planning (paper Table 5 workload): the road
// network topology is known, but the per-edge costs are secret-shared
// between two logistics companies; they jointly compute shortest-path
// distances from a depot without revealing their cost structures.
#include <cstdio>
#include <vector>

#include "arm/arm2gc.h"
#include "crypto/rng.h"
#include "programs/programs.h"

int main() {
  using namespace arm2gc;

  const programs::Program p = programs::dijkstra8();
  const arm::Arm2Gc machine(p.cfg, p.words);

  // True edge costs of the complete 8-node digraph, XOR-shared.
  crypto::CtrRng rng(crypto::block_from_u64(7));
  std::vector<std::uint32_t> cost(64);
  for (auto& c : cost) c = 1 + static_cast<std::uint32_t>(rng.next_below(50));
  std::vector<std::uint32_t> bob(64), alice(64);
  for (std::size_t i = 0; i < 64; ++i) {
    bob[i] = static_cast<std::uint32_t>(rng.next_u64());
    alice[i] = cost[i] ^ bob[i];
  }

  const arm::Arm2GcResult r = machine.run(alice, bob);
  std::printf("private shortest paths from depot 0 (8 nodes, 64 secret edge costs)\n");
  for (int v = 0; v < 8; ++v) {
    std::printf("  dist[0 -> %d] = %u\n", v, r.outputs[static_cast<std::size_t>(v)]);
  }
  std::printf("cycles %llu, garbled non-XOR %llu (conventional: %llu)\n",
              static_cast<unsigned long long>(r.cycles),
              static_cast<unsigned long long>(r.stats.garbled_non_xor),
              static_cast<unsigned long long>(machine.conventional_non_xor(r.cycles)));
  return 0;
}
