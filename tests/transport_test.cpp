// Transport-layer tests: frame ordering and byte accounting, bounded-memory
// self-compaction of the in-memory FIFOs, and the threaded bounded pipe
// (cross-thread integrity, backpressure bound, close() unblocking).
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "crypto/block.h"
#include "gc/transport.h"

namespace {

using arm2gc::crypto::Block;
using arm2gc::crypto::block_from_u64;
using namespace arm2gc::gc;

TEST(InMemoryDuplex, FramesArriveInOrderAcrossDirections) {
  InMemoryDuplex duplex;
  const Block frame[3] = {block_from_u64(1), block_from_u64(2), block_from_u64(3)};
  duplex.garbler_end().send(frame, 3, Traffic::GarbledTable);
  duplex.evaluator_end().send(block_from_u64(9), Traffic::OutputDecode);

  Block got[2];
  duplex.evaluator_end().recv(got, 2);
  EXPECT_EQ(got[0], block_from_u64(1));
  EXPECT_EQ(got[1], block_from_u64(2));
  EXPECT_EQ(duplex.evaluator_end().recv(), block_from_u64(3));
  EXPECT_EQ(duplex.garbler_end().recv(), block_from_u64(9));
  EXPECT_EQ(duplex.stats().garbled_table_bytes, 48u);
  EXPECT_EQ(duplex.stats().output_bytes, 16u);
}

TEST(InMemoryDuplex, SelfCompactsOnLongRuns) {
  // A long alternating send/recv run must not accumulate delivered blocks:
  // the high-water mark tracks the undelivered backlog only.
  InMemoryDuplex duplex;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    const Block frame[4] = {block_from_u64(4 * i), block_from_u64(4 * i + 1),
                            block_from_u64(4 * i + 2), block_from_u64(4 * i + 3)};
    duplex.garbler_end().send(frame, 4, Traffic::GarbledTable);
    Block got[4];
    duplex.evaluator_end().recv(got, 4);
    EXPECT_EQ(got[3], block_from_u64(4 * i + 3));
  }
  EXPECT_EQ(duplex.stats().garbled_table_bytes, 100000u * 64);
  EXPECT_LE(duplex.high_water_blocks(), 4u);
}

TEST(InMemoryDuplex, UnderrunThrows) {
  InMemoryDuplex duplex;
  duplex.garbler_end().send(block_from_u64(1), Traffic::InputLabel);
  Block got[2];
  EXPECT_THROW(duplex.evaluator_end().recv(got, 2), std::runtime_error);
}

TEST(ThreadedPipeDuplex, TransfersAcrossThreadsWithBackpressure) {
  constexpr std::size_t kCapacity = 64;
  constexpr std::uint64_t kBlocks = 100000;
  ThreadedPipeDuplex duplex(kCapacity);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kBlocks; i += 5) {
      Block frame[5];
      for (std::uint64_t k = 0; k < 5; ++k) frame[k] = block_from_u64(i + k);
      duplex.garbler_end().send(frame, 5, Traffic::GarbledTable);
    }
  });
  for (std::uint64_t i = 0; i < kBlocks; ++i) {
    ASSERT_EQ(duplex.evaluator_end().recv(), block_from_u64(i));
  }
  producer.join();
  EXPECT_EQ(duplex.stats().garbled_table_bytes, kBlocks * 16);
  EXPECT_LE(duplex.high_water_blocks(), kCapacity);  // ring bounds memory
}

TEST(ThreadedPipeDuplex, BidirectionalEcho) {
  ThreadedPipeDuplex duplex(32);
  std::thread peer([&] {
    for (int i = 0; i < 1000; ++i) {
      const Block b = duplex.evaluator_end().recv();
      duplex.evaluator_end().send(b ^ block_from_u64(1), Traffic::OutputDecode);
    }
  });
  for (int i = 0; i < 1000; ++i) {
    duplex.garbler_end().send(block_from_u64(static_cast<std::uint64_t>(i) << 1),
                              Traffic::InputLabel);
    EXPECT_EQ(duplex.garbler_end().recv(),
              block_from_u64((static_cast<std::uint64_t>(i) << 1) | 1));
  }
  peer.join();
}

TEST(ThreadedPipeDuplex, CloseUnblocksReceiverAndSender) {
  ThreadedPipeDuplex duplex(16);
  std::thread blocked([&] {
    EXPECT_THROW(duplex.evaluator_end().recv(), std::runtime_error);
  });
  duplex.close();
  blocked.join();
  EXPECT_THROW(duplex.garbler_end().send(block_from_u64(1), Traffic::InputLabel),
               std::runtime_error);
}

TEST(ThreadedPipeDuplex, DrainsBufferedBlocksAfterClose) {
  ThreadedPipeDuplex duplex(16);
  duplex.garbler_end().send(block_from_u64(7), Traffic::InputLabel);
  duplex.close();
  EXPECT_EQ(duplex.evaluator_end().recv(), block_from_u64(7));  // buffered data survives
  EXPECT_THROW(duplex.evaluator_end().recv(), std::runtime_error);
}

}  // namespace
