// Fixture: bottom-layer value type.
#pragma once
namespace fix::crypto {
struct Block {
  unsigned long lo = 0;
  unsigned long hi = 0;
};
}  // namespace fix::crypto
