// Garbling schemes. The production scheme is half-gates (Zahur, Rosulek,
// Evans — EUROCRYPT'15): free XOR, 2 ciphertexts per non-XOR gate. Classic
// four-row and GRR3 (row-reduction, Naor-Pinkas-Sumner) schemes are provided
// for the ablation benchmarks; all three share the fixed-key pi-hash.
//
// Any non-affine 2-input gate is garbled at AND cost through its AND-core
// decomposition  f(a,b) = gamma ^ ((a^alpha) & (b^beta)) : the garbler offsets
// the false input labels by alpha*R / beta*R and the false output label by
// gamma*R; the evaluator is oblivious to the polarities.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/block.h"
#include "crypto/prf.h"
#include "crypto/rng.h"
#include "netlist/gate.h"

namespace arm2gc::gc {

using crypto::Block;

enum class Scheme : std::uint8_t { HalfGates, Grr3, Classic4 };

/// Ciphertexts for one garbled gate. Half-gates uses 2; GRR3 uses 3;
/// classic uses 4. `count` says how many are meaningful.
struct GarbledTable {
  std::array<Block, 4> rows{};
  std::uint8_t count = 0;
};

/// Number of ciphertext blocks per non-XOR gate under a scheme.
[[nodiscard]] constexpr std::size_t blocks_per_gate(Scheme s) {
  switch (s) {
    case Scheme::HalfGates: return 2;
    case Scheme::Grr3: return 3;
    case Scheme::Classic4: return 4;
  }
  return 2;
}

/// Garbler-side state: the global free-XOR offset R (lsb forced to 1 for
/// point-and-permute) and the label generator.
class Garbler {
 public:
  explicit Garbler(Block seed, Scheme scheme = Scheme::HalfGates);

  [[nodiscard]] Block R() const { return r_; }
  [[nodiscard]] Scheme scheme() const { return scheme_; }

  /// Fresh false label for a new wire (input or GRR-independent output).
  Block fresh_label();

  /// Garbles one non-affine gate. `a0`, `b0` are the inputs' false labels;
  /// `core` comes from netlist::tt_and_core. Returns the output false label
  /// and fills `table`. Consumes two hash tweaks (kept in lock-step with the
  /// evaluator via the shared gate counter).
  Block garble(Block a0, Block b0, netlist::AndCore core, GarbledTable& table);

  /// Stateless garbling at an explicit tweak (uses `tweak` and `tweak + 1`):
  /// bit-identical to garble() fed the same tweaks, but const, so
  /// independent cones garble concurrently against preassigned tweak
  /// ranges. `classic_fresh` supplies the fresh output label Classic4 needs
  /// (derived_label; ignored by the row-reduced schemes). The caller
  /// advances the shared cursors once per cycle via advance().
  Block garble_at(Block a0, Block b0, netlist::AndCore core, std::uint64_t tweak,
                  Block classic_fresh, GarbledTable& table) const;

  /// Label addressed by (domain, ordinal) from the session seed — the
  /// deterministic-under-parallelism replacement for a fresh_label() draw
  /// whose stream position would depend on worker interleaving. Disjoint
  /// from the fresh_label() stream by construction (crypto::CtrRng::derive).
  [[nodiscard]] Block derived_label(std::uint64_t domain, std::uint64_t ordinal) const {
    return rng_.derive(domain, ordinal);
  }

  /// Advances the gate counter and tweak cursor past `gates` garbled gates
  /// (2 tweaks each) handled out-of-band through garble_at().
  void advance(std::uint64_t gates) {
    gate_counter_ += gates;
    tweak_ += 2 * gates;
  }

  /// The next tweak garble() would consume — the base the per-cone tweak
  /// ranges of a cycle are laid out from.
  [[nodiscard]] std::uint64_t tweak_cursor() const { return tweak_; }

  [[nodiscard]] std::uint64_t gates_garbled() const { return gate_counter_; }

 private:
  Block half_gates(Block a0, Block b0, std::uint64_t j0, GarbledTable& table) const;
  Block classic(Block a0, Block b0, std::uint64_t j0, Block w0_fresh, GarbledTable& table,
                bool grr3) const;

  crypto::PiHash hash_;
  crypto::CtrRng rng_;
  Block r_;
  Scheme scheme_;
  std::uint64_t gate_counter_ = 0;
  std::uint64_t tweak_ = 0;
};

/// Evaluator-side state; mirrors the garbler's tweak sequence.
class Evaluator {
 public:
  explicit Evaluator(Scheme scheme = Scheme::HalfGates) : scheme_(scheme) {}

  /// Evaluates one garbled gate given the active input labels.
  Block eval(Block a, Block b, const GarbledTable& table);

  /// Stateless evaluation at an explicit tweak (uses `tweak` and `tweak + 1`)
  /// — the evaluator-side mirror of Garbler::garble_at, for cones evaluated
  /// concurrently against preassigned tweak ranges.
  Block eval_at(Block a, Block b, const GarbledTable& table, std::uint64_t tweak) const;

  /// Advances the gate counter and tweak cursor past `gates` gates handled
  /// out-of-band through eval_at().
  void advance(std::uint64_t gates) {
    gate_counter_ += gates;
    tweak_ += 2 * gates;
  }

  /// The next tweak eval() would consume.
  [[nodiscard]] std::uint64_t tweak_cursor() const { return tweak_; }

  [[nodiscard]] std::uint64_t gates_evaluated() const { return gate_counter_; }

 private:
  Block eval_half_gates(Block a, Block b, std::uint64_t j0, const GarbledTable& table) const;
  Block eval_classic(Block a, Block b, std::uint64_t j0, const GarbledTable& table,
                     bool grr3) const;

  crypto::PiHash hash_;
  Scheme scheme_;
  std::uint64_t gate_counter_ = 0;
  std::uint64_t tweak_ = 0;
};

}  // namespace arm2gc::gc
