#include "arm/cpu_netlist.h"

#include <stdexcept>

#include "builder/circuit_builder.h"
#include "builder/stdlib.h"
#include "netlist/opt.h"

namespace arm2gc::arm {

namespace {

using builder::Bus;
using builder::CircuitBuilder;
using builder::Wire;
using netlist::Dff;
using netlist::Owner;

std::size_t log2_exact(std::size_t v, const char* what) {
  std::size_t n = 0;
  while ((1ull << n) < v) ++n;
  if ((1ull << n) != v) throw std::invalid_argument(std::string(what) + " must be a power of two");
  return n;
}

/// A register / memory word as a DFF bus handle plus its current-output bus.
struct WordReg {
  std::vector<CircuitBuilder::DffHandle> dffs;
  Bus out;
};

WordReg make_word(CircuitBuilder& cb, Dff::Init init, std::uint32_t init_index_base) {
  WordReg w;
  w.dffs = cb.make_dff_bus(32, init, init_index_base);
  return w;
}

WordReg make_const_word(CircuitBuilder& cb, std::uint32_t value) {
  WordReg w;
  w.dffs.reserve(32);
  for (int i = 0; i < 32; ++i) {
    w.dffs.push_back(cb.make_dff(((value >> i) & 1u) ? Dff::Init::One : Dff::Init::Zero));
  }
  return w;
}

/// instr[hi:lo] as a bus slice.
Bus field(const Bus& instr, int hi, int lo) {
  return Bus(instr.begin() + lo, instr.begin() + hi + 1);
}

}  // namespace

CpuNetlist build_cpu(const MemoryConfig& cfg, std::span<const std::uint32_t> program) {
  if (program.size() > cfg.imem_words) {
    throw std::invalid_argument("build_cpu: program does not fit instruction memory");
  }
  const std::size_t imem_idx_bits = log2_exact(cfg.imem_words, "imem_words");
  const std::size_t alice_idx_bits = log2_exact(cfg.alice_words, "alice_words");
  const std::size_t bob_idx_bits = log2_exact(cfg.bob_words, "bob_words");
  const std::size_t out_idx_bits = log2_exact(cfg.out_words, "out_words");
  const std::size_t ram_idx_bits = log2_exact(cfg.ram_words, "ram_words");

  CpuNetlist cpu;
  cpu.cfg = cfg;
  CircuitBuilder cb;

  // --- state elements (all DFFs before any gate) -----------------------------
  cpu.reg_dff0 = 0;
  std::vector<WordReg> regs;  // r0..r14
  for (int r = 0; r < 15; ++r) {
    std::uint32_t init = 0;
    if (r == 0) init = kAliceBase;
    if (r == 1) init = kBobBase;
    if (r == 2) init = kOutBase;
    if (r == 13) init = kRamBase + static_cast<std::uint32_t>(cfg.ram_words) * 4;
    regs.push_back(make_const_word(cb, init));
  }
  cpu.flags_dff0 = 15 * 32;
  // Deferred flag evaluation: instead of materializing N and Z as bits on
  // every flag-setting instruction (Z is a 31-AND zero-test that SkipGate
  // would have to garble each time), the processor latches the last
  // flag-setting *result* (`zsrc`, initialized to 1 so Z=0, N=0 at reset) and
  // derives N/Z only where a condition consumes them. When no conditional
  // instruction reads Z, the zero-test never enters the needed-cone and
  // costs nothing — this is what makes e.g. a multi-word ADDS/ADCS chain
  // cost exactly its adders, as in the paper's Sum 1024 row.
  WordReg zsrc = make_const_word(cb, 1);
  const auto fC = cb.make_dff();
  const auto fV = cb.make_dff();
  cpu.pc_dff0 = cpu.flags_dff0 + 34;
  WordReg pc = make_const_word(cb, 0);

  cpu.imem_dff0 = cpu.pc_dff0 + 32;
  std::vector<WordReg> imem;
  for (std::size_t w = 0; w < cfg.imem_words; ++w) {
    imem.push_back(make_const_word(cb, w < program.size() ? program[w] : 0));
  }
  cpu.alice_dff0 = static_cast<std::uint32_t>(cpu.imem_dff0 + 32 * cfg.imem_words);
  std::vector<WordReg> amem;
  for (std::size_t w = 0; w < cfg.alice_words; ++w) {
    amem.push_back(make_word(cb, Dff::Init::AliceBit, static_cast<std::uint32_t>(32 * w)));
  }
  cpu.bob_dff0 = static_cast<std::uint32_t>(cpu.alice_dff0 + 32 * cfg.alice_words);
  std::vector<WordReg> bmem;
  for (std::size_t w = 0; w < cfg.bob_words; ++w) {
    bmem.push_back(make_word(cb, Dff::Init::BobBit, static_cast<std::uint32_t>(32 * w)));
  }
  cpu.out_dff0 = static_cast<std::uint32_t>(cpu.bob_dff0 + 32 * cfg.bob_words);
  std::vector<WordReg> omem;
  for (std::size_t w = 0; w < cfg.out_words; ++w) omem.push_back(make_const_word(cb, 0));
  cpu.ram_dff0 = static_cast<std::uint32_t>(cpu.out_dff0 + 32 * cfg.out_words);
  std::vector<WordReg> rmem;
  for (std::size_t w = 0; w < cfg.ram_words; ++w) rmem.push_back(make_const_word(cb, 0));

  // Resolve output buses now that every DFF exists.
  for (auto& r : regs) r.out = cb.dff_out_bus(r.dffs);
  pc.out = cb.dff_out_bus(pc.dffs);
  zsrc.out = cb.dff_out_bus(zsrc.dffs);
  for (auto* mem : {&imem, &amem, &bmem, &omem, &rmem}) {
    for (auto& w : *mem) w.out = cb.dff_out_bus(w.dffs);
  }
  const Wire vN = zsrc.out[31];
  const Wire vZ = builder::is_zero(cb, zsrc.out);
  const Wire vC = cb.dff_out(fC), vV = cb.dff_out(fV);

  // --- fetch -------------------------------------------------------------------
  auto mem_read = [&](const std::vector<WordReg>& mem, const Bus& idx) {
    std::vector<Bus> options;
    options.reserve(mem.size());
    for (const WordReg& w : mem) options.push_back(w.out);
    return builder::select(cb, idx, options);
  };
  const Bus pc_word_idx(pc.out.begin() + 2, pc.out.begin() + 2 + static_cast<std::ptrdiff_t>(imem_idx_bits));
  const Bus instr = mem_read(imem, pc_word_idx);

  // --- decode --------------------------------------------------------------------
  auto eq_const = [&](const Bus& b, std::uint32_t v) {
    Wire acc = cb.c1();
    for (std::size_t i = 0; i < b.size(); ++i) {
      const Wire bit = ((v >> i) & 1u) ? b[i] : CircuitBuilder::not_(b[i]);
      acc = cb.and_(acc, bit);
    }
    return acc;
  };
  const Bus cond_field = field(instr, 31, 28);
  const Wire mul_pat = cb.and_(eq_const(field(instr, 27, 22), 0), eq_const(field(instr, 7, 4), 0b1001));
  const Wire is_dp = cb.and_(eq_const(field(instr, 27, 26), 0b00), CircuitBuilder::not_(mul_pat));
  const Wire is_mul = mul_pat;
  const Wire is_mem = eq_const(field(instr, 27, 26), 0b01);
  const Wire is_branch = eq_const(field(instr, 27, 25), 0b101);
  const Wire is_swi = eq_const(field(instr, 27, 24), 0b1111);
  const Wire s_bit = instr[20];
  const Bus opcode = field(instr, 24, 21);

  // --- register read ports ---------------------------------------------------------
  const Bus pc_plus8 = builder::add(cb, pc.out, builder::bus_constant(cb, 8, 32));
  auto reg_read = [&](const Bus& idx4) {
    std::vector<Bus> options;
    options.reserve(16);
    for (int r = 0; r < 15; ++r) options.push_back(regs[static_cast<std::size_t>(r)].out);
    options.push_back(pc_plus8);  // r15 reads pc+8
    return builder::select(cb, idx4, options);
  };
  const Bus rn_val = reg_read(field(instr, 19, 16));
  const Bus rm_val = reg_read(field(instr, 3, 0));
  const Bus rs_val = reg_read(field(instr, 11, 8));
  const Bus rd_val = reg_read(field(instr, 15, 12));  // STR data / MLA accumulator

  // --- operand 2 ---------------------------------------------------------------------
  // Immediate: imm8 rotated right by 2*rot.
  const Bus imm8 = builder::zext(cb, field(instr, 7, 0), 32);
  Bus rot_amt(5, cb.c0());
  for (int i = 0; i < 4; ++i) rot_amt[static_cast<std::size_t>(i + 1)] = instr[static_cast<std::size_t>(8 + i)];
  const Bus imm_val = builder::barrel_right(cb, imm8, rot_amt, cb.c0(), /*rotate=*/true);

  // Register with shift: amount from imm5 or Rs[7:0].
  const Wire shift_by_reg = instr[4];
  const Bus imm5 = builder::zext(cb, field(instr, 11, 7), 8);
  const Bus rs8 = builder::zext(cb, Bus(rs_val.begin(), rs_val.begin() + 8), 8);
  const Bus amt8 = builder::mux_bus(cb, shift_by_reg, rs8, imm5);
  const Bus amt5(amt8.begin(), amt8.begin() + 5);
  const Wire amt_ge32 = builder::reduce_or(cb, std::span<const Wire>(amt8.data() + 5, 3));
  const Wire sign = rm_val[31];
  const Bus zeros = builder::bus_constant(cb, 0, 32);
  const Bus signs(32, sign);
  const Bus lsl = builder::mux_bus(cb, amt_ge32, zeros, builder::barrel_left(cb, rm_val, amt5, cb.c0()));
  const Bus lsr = builder::mux_bus(cb, amt_ge32, zeros, builder::barrel_right(cb, rm_val, amt5, cb.c0(), false));
  const Bus asr = builder::mux_bus(cb, amt_ge32, signs, builder::barrel_right(cb, rm_val, amt5, sign, false));
  const Bus ror = builder::barrel_right(cb, rm_val, amt5, cb.c0(), /*rotate=*/true);
  const Bus shifted = builder::select(cb, field(instr, 6, 5), std::vector<Bus>{lsl, lsr, asr, ror});
  const Wire op2_is_imm = instr[25];
  const Bus op2 = builder::mux_bus(cb, op2_is_imm, imm_val, shifted);

  // --- ALU ------------------------------------------------------------------------------
  // One shared adder: x + (invert_y ? ~y : y) + cin, selected per opcode.
  // reverse: RSB/RSC swap operands; cin in {0, 1, C}.
  const Wire op_rev = cb.or_(eq_const(opcode, 3), eq_const(opcode, 7));            // rsb, rsc
  const Wire op_inv = cb.or_(cb.or_(eq_const(opcode, 2), eq_const(opcode, 3)),
                             cb.or_(cb.or_(eq_const(opcode, 6), eq_const(opcode, 7)),
                                    eq_const(opcode, 10)));  // sub, rsb, sbc, rsc, cmp
  const Wire op_use_c = cb.or_(cb.or_(eq_const(opcode, 5), eq_const(opcode, 6)), eq_const(opcode, 7));
  const Bus x = builder::mux_bus(cb, op_rev, op2, rn_val);
  Bus y = builder::mux_bus(cb, op_rev, rn_val, op2);
  y = builder::mux_bus(cb, op_inv, builder::not_bus(y), y);
  const Wire cin = cb.mux(op_use_c, vC, op_inv);  // inverted ops start with +1
  const builder::AddOut sum = builder::add_full(cb, x, y, cin);

  const Bus and_res = builder::and_bus(cb, rn_val, op2);
  const Bus eor_res = builder::xor_bus(cb, rn_val, op2);
  const Bus orr_res = builder::or_bus(cb, rn_val, op2);
  const Bus bic_res = builder::andn_bus(cb, rn_val, op2);
  const Bus mvn_res = builder::not_bus(op2);
  const Bus alu_out = builder::select(
      cb, opcode,
      std::vector<Bus>{and_res, eor_res, sum.sum, sum.sum, sum.sum, sum.sum, sum.sum, sum.sum,
                       and_res, eor_res, sum.sum, sum.sum, orr_res, op2, bic_res, mvn_res});

  // --- multiplier -----------------------------------------------------------------------
  const Bus mul_prod = builder::mul_lower(cb, rm_val, rs_val, 32);
  const Wire mul_acc = instr[21];
  const Bus mla_sum = builder::add(cb, mul_prod, rd_val);
  const Bus mul_res = builder::mux_bus(cb, mul_acc, mla_sum, mul_prod);

  // --- memory access -----------------------------------------------------------------------
  const Bus off12 = builder::zext(cb, field(instr, 11, 0), 32);
  const Wire mem_up = instr[23];
  const Bus off_neg = builder::sub(cb, builder::bus_constant(cb, 0, 32), off12);
  const Bus mem_off = builder::mux_bus(cb, mem_up, off12, off_neg);
  const Bus addr = builder::add(cb, rn_val, mem_off);
  const Bus region = field(addr, 18, 16);
  auto idx_of = [&](std::size_t bits_n) {
    return Bus(addr.begin() + 2, addr.begin() + 2 + static_cast<std::ptrdiff_t>(bits_n));
  };
  const Bus rd_imem = mem_read(imem, idx_of(imem_idx_bits));
  const Bus rd_alice = mem_read(amem, idx_of(alice_idx_bits));
  const Bus rd_bob = mem_read(bmem, idx_of(bob_idx_bits));
  const Bus rd_out = mem_read(omem, idx_of(out_idx_bits));
  const Bus rd_ram = mem_read(rmem, idx_of(ram_idx_bits));
  const Bus mem_rdata = builder::select(
      cb, region, std::vector<Bus>{rd_imem, rd_alice, rd_bob, rd_out, rd_ram, rd_ram, rd_ram, rd_ram});

  // --- flags & conditional execution ----------------------------------------------------------
  const Bus flag_opts_src{vZ, CircuitBuilder::not_(vZ), vC, CircuitBuilder::not_(vC),
                          vN, CircuitBuilder::not_(vN), vV, CircuitBuilder::not_(vV)};
  const Wire hi_w = cb.andn_(vC, vZ);                     // C & ~Z
  const Wire ge_w = cb.xnor_(vN, vV);
  const Wire gt_w = cb.andn_(ge_w, vZ);                   // (N==V) & ~Z
  std::vector<Bus> cond_opts;
  for (const Wire w : {flag_opts_src[0], flag_opts_src[1], flag_opts_src[2], flag_opts_src[3],
                       flag_opts_src[4], flag_opts_src[5], flag_opts_src[6], flag_opts_src[7],
                       hi_w, CircuitBuilder::not_(hi_w), ge_w, CircuitBuilder::not_(ge_w), gt_w,
                       CircuitBuilder::not_(gt_w), cb.c1(), cb.c0()}) {
    cond_opts.push_back(Bus{w});
  }
  const Wire cond_ok = builder::select(cb, cond_field, cond_opts)[0];

  // --- write-back ---------------------------------------------------------------------------------
  const Wire halt_now = cb.and_(is_swi, cond_ok);

  const Wire dp_writes = cb.and_(is_dp, CircuitBuilder::not_(cb.and_(opcode[3], CircuitBuilder::not_(opcode[2]))));
  // opcode 8..11 (1 0 x x) are tst/teq/cmp/cmn: no destination write.
  const Wire is_ldr = cb.and_(is_mem, instr[20]);
  const Wire is_str = cb.and_(is_mem, CircuitBuilder::not_(instr[20]));
  const Wire is_bl = cb.and_(is_branch, instr[24]);

  const Bus wdata = builder::mux_bus(cb, is_ldr, mem_rdata,
                                     builder::mux_bus(cb, is_mul, mul_res, alu_out));
  const Bus pc_plus4 = builder::add(cb, pc.out, builder::bus_constant(cb, 4, 32));

  const std::vector<Wire> rd_onehot = builder::decode_onehot(cb, field(instr, 15, 12));
  const std::vector<Wire> rdm_onehot = builder::decode_onehot(cb, field(instr, 19, 16));
  for (int r = 0; r < 15; ++r) {
    const Wire sel_dp_ldr = cb.and_(cb.or_(dp_writes, is_ldr), rd_onehot[static_cast<std::size_t>(r)]);
    const Wire sel_mul = cb.and_(is_mul, rdm_onehot[static_cast<std::size_t>(r)]);
    Wire en = cb.or_(sel_dp_ldr, sel_mul);
    Bus data = wdata;
    if (r == 14) {
      en = cb.or_(en, is_bl);
      data = builder::mux_bus(cb, is_bl, pc_plus4, wdata);
    }
    en = cb.and_(en, cond_ok);
    cb.set_dff_d_bus(regs[static_cast<std::size_t>(r)].dffs,
                     builder::mux_bus(cb, en, data, regs[static_cast<std::size_t>(r)].out));
  }

  // Flags.
  const Wire set_flags = cb.and_(cb.and_(cb.or_(is_dp, is_mul), s_bit), cond_ok);
  const Wire arith_op = cb.and_(is_dp, cb.and_(CircuitBuilder::not_(cb.xnor_(opcode[1], opcode[2])),
                                               CircuitBuilder::not_(opcode[3])));
  // Arithmetic opcodes 2..7 = binary 0xx with (bit1 != bit2 ... ) -- computed
  // as: !bit3 && (bit2 ^ bit1 ... ) is wrong in general; use explicit list:
  const Wire arith_explicit =
      cb.or_(cb.or_(cb.or_(eq_const(opcode, 2), eq_const(opcode, 3)),
                    cb.or_(eq_const(opcode, 4), eq_const(opcode, 5))),
             cb.or_(cb.or_(eq_const(opcode, 6), eq_const(opcode, 7)),
                    cb.or_(eq_const(opcode, 10), eq_const(opcode, 11))));
  (void)arith_op;
  const Bus res_for_flags = builder::mux_bus(cb, is_mul, mul_res, alu_out);
  const Wire set_cv = cb.and_(set_flags, cb.and_(is_dp, arith_explicit));
  cb.set_dff_d_bus(zsrc.dffs, builder::mux_bus(cb, set_flags, res_for_flags, zsrc.out));
  cb.set_dff_d(fC, cb.mux(set_cv, sum.carry_out, vC));
  cb.set_dff_d(fV, cb.mux(set_cv, sum.overflow, vV));

  // PC.
  const Bus boff = builder::sext(cb, field(instr, 23, 0), 30);
  Bus target_off(32, cb.c0());
  for (std::size_t i = 0; i < 30; ++i) target_off[i + 2] = boff[i];
  const Bus branch_target = builder::add(cb, pc_plus8, target_off);
  const Wire take_branch = cb.and_(is_branch, cond_ok);
  Bus pc_next = builder::mux_bus(cb, take_branch, branch_target, pc_plus4);
  pc_next = builder::mux_bus(cb, halt_now, pc.out, pc_next);
  cb.set_dff_d_bus(pc.dffs, pc_next);

  // Memory writes (STR): region-decoded, word-decoded, predicated.
  const Wire do_store = cb.and_(is_str, cond_ok);
  auto write_mem = [&](std::vector<WordReg>& mem, std::uint32_t region_id, std::size_t bits_n) {
    const Wire we_region = cb.and_(do_store, eq_const(region, region_id));
    const std::vector<Wire> onehot = builder::decode_onehot(cb, idx_of(bits_n));
    for (std::size_t w = 0; w < mem.size(); ++w) {
      const Wire en = cb.and_(we_region, onehot[w]);
      cb.set_dff_d_bus(mem[w].dffs, builder::mux_bus(cb, en, rd_val, mem[w].out));
    }
  };
  write_mem(amem, 1, alice_idx_bits);
  write_mem(bmem, 2, bob_idx_bits);
  write_mem(omem, 3, out_idx_bits);
  write_mem(rmem, 4, ram_idx_bits);
  // Instruction memory holds its value.
  for (auto& w : imem) cb.set_dff_d_bus(w.dffs, w.out);

  // --- outputs -----------------------------------------------------------------------------------
  cb.output(halt_now, "halt");
  for (std::size_t w = 0; w < omem.size(); ++w) {
    cb.output_bus(omem[w].out, "out" + std::to_string(w));
  }

  cpu.nl = cb.take();
  netlist::sweep_dead_gates(cpu.nl);
  cpu.halt_wire = cpu.nl.outputs[0].wire;
  return cpu;
}

}  // namespace arm2gc::arm
