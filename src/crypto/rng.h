// Deterministic random generator (AES-128 in counter mode) used for label
// generation. Deterministic seeding keeps protocol traces reproducible in
// tests while remaining computationally indistinguishable from random.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "crypto/aes128.h"
#include "crypto/block.h"

namespace arm2gc::crypto {

/// AES-CTR pseudorandom generator. Blocks are produced in strict counter
/// order but generated a pipelined batch at a time, so the emitted sequence
/// is independent of the batch size (and of the AES backend).
class CtrRng {
 public:
  explicit CtrRng(Block seed) : aes_(seed) {}

  /// Next 128 pseudorandom bits.
  Block next_block() {
    if (pos_ == kBatch) refill();
    return buf_[pos_++];
  }

  /// Next 64 pseudorandom bits.
  std::uint64_t next_u64() { return next_block().lo; }

  /// Uniform value in [0, bound) for small bounds (modulo bias negligible for
  /// the test/bench uses this serves).
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  bool next_bool() { return (next_u64() & 1u) != 0; }

  /// Deterministic block addressed by (domain, ordinal) instead of drawn
  /// from the sequential stream. The plaintext sets the top counter bit,
  /// which next_block()'s {counter, 0} plaintexts never do, so derived
  /// blocks and stream blocks are outputs of one AES permutation on
  /// disjoint inputs — mutually distinct and jointly pseudorandom. Const
  /// and stateless: concurrent workers can derive per-domain counter-mode
  /// subsequences from one seeded generator without sharing a cursor.
  [[nodiscard]] Block derive(std::uint64_t domain, std::uint64_t ordinal) const {
    return aes_.encrypt(Block{ordinal, (1ull << 63) | domain});
  }

 private:
  static constexpr std::size_t kBatch = 8;

  void refill() {
    for (std::size_t i = 0; i < kBatch; ++i) buf_[i] = block_from_u64(counter_++);
    aes_.encrypt_batch(buf_.data(), kBatch);
    pos_ = 0;
  }

  Aes128 aes_;
  std::array<Block, kBatch> buf_{};
  std::size_t pos_ = kBatch;
  std::uint64_t counter_ = 0;
};

}  // namespace arm2gc::crypto
