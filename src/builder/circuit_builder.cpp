#include "builder/circuit_builder.h"

#include <stdexcept>
#include <utility>

namespace arm2gc::builder {

using netlist::TruthTable;
using netlist::WireId;

using netlist::tt_neg_a;
using netlist::tt_neg_b;
using netlist::tt_swap;

Wire CircuitBuilder::input(netlist::Owner owner, std::uint32_t bit_index, bool streamed,
                           std::string name) {
  nl_.inputs.push_back(netlist::Input{owner, streamed, bit_index, std::move(name)});
  return Wire{nl_.input_wire(nl_.inputs.size() - 1), false};
}

Bus CircuitBuilder::input_bus(netlist::Owner owner, std::size_t width, std::uint32_t start_bit,
                              bool streamed, const std::string& name) {
  Bus bus;
  bus.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    bus.push_back(input(owner, start_bit + static_cast<std::uint32_t>(i), streamed,
                        name.empty() ? std::string{} : name + "[" + std::to_string(i) + "]"));
  }
  return bus;
}

CircuitBuilder::DffHandle CircuitBuilder::make_dff(netlist::Dff::Init init,
                                                   std::uint32_t init_index) {
  if (!nl_.gates.empty()) {
    // Keeping all DFB wires below all gate wires preserves the wire-id layout;
    // circuits must create state elements before combinational logic.
    throw std::logic_error("CircuitBuilder: create all DFFs before any gate");
  }
  netlist::Dff d;
  d.init = init;
  d.init_index = init_index;
  nl_.dffs.push_back(d);
  return DffHandle{static_cast<std::uint32_t>(nl_.dffs.size() - 1)};
}

void CircuitBuilder::set_dff_d(DffHandle h, Wire d) {
  nl_.dffs.at(h.index).d = d.id;
  nl_.dffs.at(h.index).d_invert = d.inv;
}

std::vector<CircuitBuilder::DffHandle> CircuitBuilder::make_dff_bus(std::size_t width,
                                                                    netlist::Dff::Init init,
                                                                    std::uint32_t init_start) {
  std::vector<DffHandle> hs;
  hs.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    hs.push_back(make_dff(init, init_start + static_cast<std::uint32_t>(i)));
  }
  return hs;
}

Bus CircuitBuilder::dff_out_bus(const std::vector<DffHandle>& hs) const {
  Bus bus;
  bus.reserve(hs.size());
  for (DffHandle h : hs) bus.push_back(dff_out(h));
  return bus;
}

void CircuitBuilder::set_dff_d_bus(const std::vector<DffHandle>& hs, const Bus& d) {
  if (hs.size() != d.size()) throw std::invalid_argument("set_dff_d_bus: width mismatch");
  for (std::size_t i = 0; i < hs.size(); ++i) set_dff_d(hs[i], d[i]);
}

Wire CircuitBuilder::gate(TruthTable tt, Wire a, Wire b) {
  // 1. Fold handle inversions into the table.
  if (a.inv) tt = tt_neg_a(tt);
  if (b.inv) tt = tt_neg_b(tt);

  // 2. Fold constants.
  if (a.id == netlist::kConst0 || a.id == netlist::kConst1) {
    const netlist::UnaryTable u = netlist::tt_restrict_a(tt, a.id == netlist::kConst1);
    switch (u) {
      case netlist::kUnZero: return c0();
      case netlist::kUnOne: return c1();
      case netlist::kUnId: return Wire{b.id, false};
      default: return Wire{b.id, true};
    }
  }
  if (b.id == netlist::kConst0 || b.id == netlist::kConst1) {
    const netlist::UnaryTable u = netlist::tt_restrict_b(tt, b.id == netlist::kConst1);
    switch (u) {
      case netlist::kUnZero: return c0();
      case netlist::kUnOne: return c1();
      case netlist::kUnId: return Wire{a.id, false};
      default: return Wire{a.id, true};
    }
  }

  // 3. Same-wire inputs: restrict to the diagonal.
  if (a.id == b.id) {
    const netlist::UnaryTable u = netlist::tt_restrict_diag(tt, false);
    switch (u) {
      case netlist::kUnZero: return c0();
      case netlist::kUnOne: return c1();
      case netlist::kUnId: return Wire{a.id, false};
      default: return Wire{a.id, true};
    }
  }

  // 4. Degenerate tables that ignore an input.
  if (tt_neg_a(tt) == tt) {  // depends only on b
    const netlist::UnaryTable u = netlist::tt_restrict_a(tt, false);
    return u == netlist::kUnId ? Wire{b.id, false} : Wire{b.id, true};
  }
  if (tt_neg_b(tt) == tt) {  // depends only on a
    const netlist::UnaryTable u = netlist::tt_restrict_b(tt, false);
    return u == netlist::kUnId ? Wire{a.id, false} : Wire{a.id, true};
  }
  if (tt == netlist::kTtZero) return c0();
  if (tt == netlist::kTtOne) return c1();

  // 5. Canonicalize: inputs ordered by wire id; output polarity f(0,0)=0.
  if (a.id > b.id) {
    std::swap(a, b);
    tt = tt_swap(tt);
  }
  bool out_inv = false;
  if ((tt & 1) != 0) {  // f(0,0) == 1: build the complement, flip the handle
    tt = static_cast<TruthTable>(~tt & 0xF);
    out_inv = true;
  }

  // 6. Structural hashing.
  const std::uint64_t key = (static_cast<std::uint64_t>(a.id) << 36) |
                            (static_cast<std::uint64_t>(b.id) << 8) |
                            static_cast<std::uint64_t>(tt);
  if (auto it = cse_.find(key); it != cse_.end()) return Wire{it->second, out_inv};

  nl_.gates.push_back(netlist::Gate{a.id, b.id, tt});
  const WireId w = nl_.gate_wire(nl_.gates.size() - 1);
  cse_.emplace(key, w);
  return Wire{w, out_inv};
}

Wire CircuitBuilder::mux(Wire sel, Wire t, Wire f) {
  if (t == f) return t;
  const Wire diff = xor_(t, f);
  return xor_(f, and_(sel, diff));
}

void CircuitBuilder::output(Wire w, std::string name) {
  nl_.outputs.push_back(netlist::OutputPort{w.id, w.inv, std::move(name)});
}

void CircuitBuilder::output_bus(const Bus& bus, const std::string& name) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    output(bus[i], name.empty() ? std::string{} : name + "[" + std::to_string(i) + "]");
  }
}

netlist::Netlist CircuitBuilder::take() {
  nl_.validate();
  return std::move(nl_);
}

}  // namespace arm2gc::builder
