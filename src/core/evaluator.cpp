#include "core/evaluator.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/workpool.h"
#include "obs/trace.h"

namespace arm2gc::core {

namespace {
using crypto::Block;
using netlist::Dff;
using netlist::Gate;
using netlist::Owner;
using netlist::WireId;
}  // namespace

EvaluatorSession::EvaluatorSession(const netlist::Netlist& nl, Mode mode, gc::Scheme scheme,
                                   Block seed, gc::Transport& tx, gc::OtBackend ot_backend,
                                   gc::IknpReceiverState* warm_ot, WorkPool* pool,
                                   gc::RandomOtPoolReceiver* warm_ot_pool, std::size_t ot_pool)
    : nl_(nl),
      mode_(mode),
      scheme_(scheme),
      eval_(scheme),
      tx_(&tx),
      ot_(gc::make_ot_receiver(ot_backend, tx, seed, warm_ot, warm_ot_pool, ot_pool)),
      pool_(pool),
      trace_(std::getenv("A2G_TRACE") != nullptr) {
  lb_.resize(nl_.num_wires());
  lb_valid_.assign(nl_.num_wires(), 0);
  // Sized here as well as in ot_reset() so a reset() without its ot_reset()
  // half (a contract violation) reads zeros instead of writing out of
  // bounds.
  fixed_lb_.assign(nl_.inputs.size(), Block{});
  dff_lb_.assign(nl_.dffs.size(), Block{});
  dff_lb_valid_.assign(nl_.dffs.size(), 1);
  const_lb_[0] = const_lb_[1] = Block{};
}

bool EvaluatorSession::bob_bit(std::uint32_t idx, const netlist::BitVec& bob,
                               const char* what) const {
  if (idx >= bob.size()) {
    throw std::out_of_range(std::string("skipgate: missing ") + what + " bit " +
                            std::to_string(idx));
  }
  return bob[idx];
}

/// A non-streamed input binds a label unless SkipGate keeps it public.
bool EvaluatorSession::binds_fixed(const netlist::Input& in) const {
  if (in.streamed) return false;
  return !(in.owner == Owner::Public && mode_ == Mode::SkipGate);
}

/// A streamed input binds a label each cycle unless SkipGate keeps it public.
bool EvaluatorSession::binds_streamed(const netlist::Input& in) const {
  if (!in.streamed) return false;
  return !(in.owner == Owner::Public && mode_ == Mode::SkipGate);
}

// The two reset halves walk the same binding order as the garbler's reset:
// fixed inputs ascending, then flip-flops ascending. The OT queue sees
// exactly the Bob-owned bindings (same subsequence on both sides); the
// direct-label stream sees exactly the rest.
void EvaluatorSession::ot_reset(const netlist::BitVec& bob_bits) {
  fixed_lb_.assign(nl_.inputs.size(), Block{});
  for (std::size_t i = 0; i < nl_.inputs.size(); ++i) {
    const netlist::Input& in = nl_.inputs[i];
    if (!binds_fixed(in)) continue;
    if (in.owner == Owner::Bob) {
      ot_->enqueue(bob_bit(in.bit_index, bob_bits, "fixed input"), &fixed_lb_[i]);
    }
  }

  dff_lb_.assign(nl_.dffs.size(), Block{});
  dff_lb_valid_.assign(nl_.dffs.size(), 1);
  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    const Dff& d = nl_.dffs[i];
    if (d.init == Dff::Init::BobBit) {
      ot_->enqueue(bob_bit(d.init_index, bob_bits, "Bob dff init"), &dff_lb_[i]);
    }
  }
  ot_->request();
}

void EvaluatorSession::reset() {
  const bool skipgate = mode_ == Mode::SkipGate;

  if (!skipgate) {
    const_lb_[0] = tx_->recv();
    const_lb_[1] = tx_->recv();
  }

  for (std::size_t i = 0; i < nl_.inputs.size(); ++i) {
    const netlist::Input& in = nl_.inputs[i];
    if (!binds_fixed(in)) continue;
    if (in.owner != Owner::Bob) fixed_lb_[i] = tx_->recv();
  }

  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    const Dff& d = nl_.dffs[i];
    switch (d.init) {
      case Dff::Init::Zero:
      case Dff::Init::One:
        if (!skipgate) dff_lb_[i] = tx_->recv();
        break;
      case Dff::Init::AliceBit:
        dff_lb_[i] = tx_->recv();
        break;
      case Dff::Init::BobBit:
        break;  // queued in ot_reset; filled by finish() below
    }
  }
  ot_->finish();
}

void EvaluatorSession::ot_begin(const netlist::BitVec& bob_stream) {
  for (std::size_t i = 0; i < nl_.inputs.size(); ++i) {
    const netlist::Input& in = nl_.inputs[i];
    if (!binds_streamed(in)) continue;
    if (in.owner == Owner::Bob) {
      ot_->enqueue(bob_bit(in.bit_index, bob_stream, "streamed input"),
                   &lb_[nl_.input_wire(i)]);
    }
  }
  ot_->request();
}

void EvaluatorSession::begin_cycle() {
  lb_[netlist::kConst0] = const_lb_[0];
  lb_[netlist::kConst1] = const_lb_[1];
  lb_valid_[netlist::kConst0] = 1;
  lb_valid_[netlist::kConst1] = 1;

  for (std::size_t i = 0; i < nl_.inputs.size(); ++i) {
    const netlist::Input& in = nl_.inputs[i];
    const WireId w = nl_.input_wire(i);
    if (!in.streamed) {
      lb_[w] = fixed_lb_[i];
      lb_valid_[w] = 1;
      continue;
    }
    if (!binds_streamed(in)) continue;  // public wire, no label
    if (in.owner == Owner::Bob) {
      lb_valid_[w] = 1;  // label lands at the batch finish below
      continue;
    }
    lb_[w] = tx_->recv();
    lb_valid_[w] = 1;
  }

  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    const WireId w = nl_.dff_wire(i);
    lb_[w] = dff_lb_[i];
    lb_valid_[w] = dff_lb_valid_[i];
  }
  ot_->finish();
}

void EvaluatorSession::eval_cycle(const CyclePlan& plan, std::uint64_t cycle) {
  const WireId first_gate = nl_.first_gate_wire();
  const bool conventional = mode_ == Mode::Conventional;

  // Prepass: per-slice emitted-table counts, mirroring the garbler's — the
  // ordered reader pulls exactly each cone's frames off the transport in
  // slice order, and each cone evaluates against the preassigned tweak
  // range starting at tweak0 + 2*emit_base_[si].
  emit_base_.assign(plan.num_slices + 1, 0);
  for (std::size_t si = 0; si < plan.num_slices; ++si) {
    const PlanSlice& sl = plan.slices[si];
    const std::uint32_t n = conventional ? sl.count : sl.work_count;
    std::uint64_t emitted = 0;
    for (std::uint32_t k = 0; k < n; ++k) {
      const std::uint32_t j = conventional ? k : sl.work[k];
      if (sl.action(j) == PlanAct::Garble && sl.emit[j] != 0) ++emitted;
    }
    emit_base_[si + 1] = emit_base_[si] + emitted;
  }
  const std::uint64_t tweak0 = eval_.tweak_cursor();
  if (stage_.size() < plan.num_slices) stage_.resize(plan.num_slices);

  // Ordered reader: slice si's table frames are received (and folded into
  // the digest) in slice order on the calling thread, before si's worker
  // task is released — the byte stream consumed is identical to serial.
  const auto feed_slice = [&](std::size_t si) {
    std::vector<gc::GarbledTable>& stage = stage_[si];
    stage.assign(static_cast<std::size_t>(emit_base_[si + 1] - emit_base_[si]),
                 gc::GarbledTable{});
    for (gc::GarbledTable& table : stage) {
      table.count = static_cast<std::uint8_t>(gc::blocks_per_gate(scheme_));
      tx_->recv(table.rows.data(), table.count);
      for (std::uint8_t t = 0; t < table.count; ++t) {
        table_digest_ = table_digest_.gf_double() ^ table.rows[t];
      }
    }
  };

  // Worker body: evaluate one cone slice against its staged tables. Label
  // reads of upstream slices are ordered by the plan's dependency DAG.
  const auto eval_slice = [&](std::size_t si) {
    // Slice tracing lives in the session's task body, not the WorkPool —
    // the pool stays obs-free under the planner-purity lint rule.
    A2G_SPAN("eval.slice", "slice");
    const PlanSlice& sl = plan.slices[si];
    const std::vector<gc::GarbledTable>& stage = stage_[si];
    std::size_t next_table = 0;
    std::uint64_t tweak = tweak0 + 2 * emit_base_[si];
    // SkipGate slices carry an explicit work list of their live gates;
    // Conventional mode processes every gate. Skipped gates keep stale
    // labels, which is sound: a live gate's inputs are always live-produced
    // (or roots) by the backward sweep's needed-closure, and every
    // label-validity consumer (outputs, latched flip-flops) checks
    // publicness first.
    const std::uint32_t n = conventional ? sl.count : sl.work_count;
    for (std::uint32_t k = 0; k < n; ++k) {
      const std::uint32_t j = conventional ? k : sl.work[k];
      const std::size_t i = sl.first_gate + j;
      const WireId w = first_gate + static_cast<WireId>(i);
      const Gate g = nl_.gates[i];
      switch (sl.action(j)) {
        case PlanAct::Public:
          lb_valid_[w] = 0;
          break;
        case PlanAct::PassA:
          // Free-XOR: inverting a wire does not change the evaluator's label.
          lb_[w] = lb_[g.a];
          lb_valid_[w] = lb_valid_[g.a];
          break;
        case PlanAct::PassB:
          lb_[w] = lb_[g.b];
          lb_valid_[w] = lb_valid_[g.b];
          break;
        case PlanAct::PassC0:
          lb_[w] = lb_[netlist::kConst0];
          lb_valid_[w] = lb_valid_[netlist::kConst0];
          break;
        case PlanAct::PassC1:
          lb_[w] = lb_[netlist::kConst1];
          lb_valid_[w] = lb_valid_[netlist::kConst1];
          break;
        case PlanAct::PassSrc:
          lb_[w] = lb_[sl.pass_src[j]];
          lb_valid_[w] = lb_valid_[sl.pass_src[j]];
          break;
        case PlanAct::FreeXor:
          lb_[w] = lb_[g.a] ^ lb_[g.b];
          lb_valid_[w] = lb_valid_[g.a] & lb_valid_[g.b];
          break;
        case PlanAct::Garble: {
          if (!sl.emit[j]) {
            // Paper Alg. 5 line 18: a skipped gate's output is tracked as an
            // opaque secret; fingerprints already play that role, so no label.
            lb_valid_[w] = 0;
            break;
          }
          if (!lb_valid_[g.a] || !lb_valid_[g.b]) {
            throw std::logic_error("skipgate: evaluator missing label for a needed gate");
          }
          lb_[w] = eval_.eval_at(lb_[g.a], lb_[g.b], stage[next_table++], tweak);
          tweak += 2;
          lb_valid_[w] = 1;
          if (trace_) {
            std::fprintf(stderr, "emit cycle=%llu gate=%zu a=%u b=%u tt=%d\n",
                         static_cast<unsigned long long>(cycle), i, g.a, g.b,
                         static_cast<int>(g.tt));
          }
          break;
        }
      }
    }
  };
  WorkPool::execute(pool_, plan.num_slices, plan.dep_offsets, plan.dep_edges, eval_slice,
                    feed_slice);
  eval_.advance(emit_base_[plan.num_slices]);
}

void EvaluatorSession::send_outputs(const CyclePlan& plan) {
  for (const netlist::OutputPort& o : nl_.outputs) {
    if (plan.wire_public(o.wire)) continue;
    if (!lb_valid_[o.wire]) {
      throw std::logic_error("skipgate: evaluator has no label for an output wire");
    }
    tx_->send(lb_[o.wire], gc::Traffic::OutputDecode);
  }
}

void EvaluatorSession::latch(const CyclePlan& plan) {
  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    const Dff& d = nl_.dffs[i];
    if (!plan.wire_public(d.d)) {
      dff_lb_[i] = lb_[d.d];
      dff_lb_valid_[i] = lb_valid_[d.d];
    }
  }
}

}  // namespace arm2gc::core
