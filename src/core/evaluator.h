// Evaluator-side (Bob) session: owns Bob's active labels and the evaluation
// state; consumes the public CyclePlan and the garbler's frames through a
// gc::Transport. It never sees Alice's inputs or any label pair — its OT
// choices are the only secrets it contributes.
//
// OT schedule: each binding phase is split in two. ot_reset()/ot_begin()
// queue the phase's Bob choice bits and emit the receiver-side OT message
// (the IKNP column matrix; a no-op frame-wise for the ideal backend) —
// these run *before* the garbler's matching phase so the extension's
// receiver-first round trip works under the lock-step schedule. The regular
// reset()/begin_cycle() then consume the garbler's direct labels in stream
// order and complete the OT batch, filling every queued destination.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/plan.h"
#include "crypto/block.h"
#include "gc/garble.h"
#include "gc/otext.h"
#include "gc/transport.h"
#include "netlist/netlist.h"

namespace arm2gc::core {

class WorkPool;

class EvaluatorSession {
 public:
  /// `seed` feeds only the OT receiver's randomness (domain-separated); the
  /// evaluator holds no label-generating state. `warm_ot` (optional, IKNP
  /// only) carries base-OT state across runs of one pairing. `pool`
  /// (optional) evaluates independent cone slices on its workers once their
  /// table frames arrive: frames are pulled off the transport in slice
  /// order on the calling thread (the read mirror of the garbler's ordered
  /// writer), so the consumed byte stream and received-table digest are
  /// byte-identical to the serial path.
  EvaluatorSession(const netlist::Netlist& nl, Mode mode, gc::Scheme scheme, crypto::Block seed,
                   gc::Transport& tx, gc::OtBackend ot_backend = gc::OtBackend::Ideal,
                   gc::IknpReceiverState* warm_ot = nullptr, WorkPool* pool = nullptr,
                   gc::RandomOtPoolReceiver* warm_ot_pool = nullptr,
                   std::size_t ot_pool = gc::kDefaultOtPoolBatch);

  /// Queues OT choices for Bob's fixed inputs and flip-flop initial values
  /// and emits the receiver-side OT request. Must run before the garbler's
  /// reset() in a lock-step schedule.
  void ot_reset(const netlist::BitVec& bob_bits);

  /// Receives labels for constants (Conventional mode), fixed inputs and
  /// flip-flop initial values; completes the reset OT batch.
  void reset();

  /// Queues OT choices for this cycle's streamed Bob bits and emits the
  /// receiver-side OT request. Must run before the garbler's begin_cycle().
  void ot_begin(const netlist::BitVec& bob_stream);

  /// Installs root labels for a cycle, receives streamed-input labels and
  /// completes the cycle's OT batch (Bob's choices were consumed by
  /// ot_begin).
  void begin_cycle();

  /// Runs the evaluator label pass over the plan, consuming garbled tables.
  /// `cycle` is used for trace output only (A2G_TRACE).
  void eval_cycle(const CyclePlan& plan, std::uint64_t cycle);

  /// Sends this cycle's secret output labels for decoding.
  void send_outputs(const CyclePlan& plan);

  /// Carries flip-flop labels into the next cycle.
  void latch(const CyclePlan& plan);

  /// OT maintenance between cycles (receiver-first halves of the schedule's
  /// ot_refill slot): Precomp pool top-up, no-ops otherwise.
  void ot_maintain_request() { ot_->maintain_request(); }
  void ot_maintain_finish() { ot_->maintain_finish(); }

  /// OT-phase counters of this session's receiver endpoint.
  [[nodiscard]] const gc::OtPhaseStats& ot_stats() const { return ot_->stats(); }

  /// Running gf_double-mix digest of every garbled-table block *received*
  /// (the mirror of GarblerSession::table_digest over the same byte stream):
  /// on a correct run the two sides' digests are equal, which lets two
  /// separate processes assert table-content agreement without shipping the
  /// tables twice.
  [[nodiscard]] crypto::Block table_digest() const { return table_digest_; }

 private:
  [[nodiscard]] bool bob_bit(std::uint32_t idx, const netlist::BitVec& bob,
                             const char* what) const;
  // The binding filters, shared by the OT-request halves and the label
  // halves (and mirroring the garbler's walk): the OT queue is filled by
  // one loop and drained against frames produced by another, so membership
  // must be decided in exactly one place.
  [[nodiscard]] bool binds_fixed(const netlist::Input& in) const;
  [[nodiscard]] bool binds_streamed(const netlist::Input& in) const;

  const netlist::Netlist& nl_;
  Mode mode_;
  gc::Scheme scheme_;
  gc::Evaluator eval_;
  gc::Transport* tx_;
  std::unique_ptr<gc::OtReceiver> ot_;
  WorkPool* pool_;

  /// Per-slice staged tables (filled by the ordered transport reader,
  /// consumed by the slice's worker) and the per-slice emitted-table prefix
  /// sums that preassign each cone's tweak range.
  std::vector<std::vector<gc::GarbledTable>> stage_;
  std::vector<std::uint64_t> emit_base_;

  std::vector<crypto::Block> lb_;
  std::vector<std::uint8_t> lb_valid_;
  std::vector<crypto::Block> fixed_lb_;
  std::vector<crypto::Block> dff_lb_;
  std::vector<std::uint8_t> dff_lb_valid_;
  crypto::Block const_lb_[2];
  crypto::Block table_digest_{};
  bool trace_;
};

}  // namespace arm2gc::core
