#include "core/plan.h"
namespace fix::core {
CyclePlan classify(crypto::Block seed) {
  CyclePlan p;
  crypto::CtrRng* rng = nullptr;  // VIOLATION: secret randomness in the planner
  (void)rng;
  p.emitted = static_cast<unsigned>(seed.lo & 3u);
  return p;
}
}  // namespace fix::core
