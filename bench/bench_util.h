// Shared table-printing helpers for the paper-reproduction benchmarks.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "core/skipgate.h"

namespace benchutil {

inline void header(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

inline void row4(const std::string& name, const std::string& c1, const std::string& c2,
                 const std::string& c3, const std::string& c4) {
  std::printf("%-22s %16s %16s %16s %12s\n", name.c_str(), c1.c_str(), c2.c_str(), c3.c_str(),
              c4.c_str());
}

inline std::string num(std::uint64_t v) {
  // Built left-to-right (instead of insert-from-the-right) to sidestep the
  // GCC 12 -Wrestrict false positive on std::string::insert (PR 105329).
  const std::string digits = std::to_string(v);
  std::string s;
  s.reserve(digits.size() + digits.size() / 3);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (digits.size() - i) % 3 == 0) s.push_back(',');
    s.push_back(digits[i]);
  }
  return s;
}

inline std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f%%", v);
  return buf;
}

inline std::string ratio_k(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0fx", v);
  return buf;
}

/// Percent improvement of `with` over `without` (garbled non-XOR counts).
inline std::string improv_pct(std::uint64_t without, std::uint64_t with) {
  return pct(without == 0 ? 0.0
                          : 100.0 * (static_cast<double>(without) - static_cast<double>(with)) /
                                static_cast<double>(without));
}

/// Improvement ratio "Nx" of `with` over `without` (guards division by zero).
inline std::string improv_ratio(std::uint64_t without, std::uint64_t with) {
  return ratio_k(static_cast<double>(without) /
                 static_cast<double>(with == 0 ? std::uint64_t{1} : with));
}

/// Uniform per-row protocol-stats suffix: SkipGate elision ratio and plan
/// cache hit rate, straight from RunStats (no per-bench hand computation).
inline std::string stats_brief(const arm2gc::core::RunStats& s) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "skip %6.2f%%  cache %5.1f%%", 100.0 * s.skip_ratio(),
                100.0 * s.plan_cache_hit_ratio());
  return buf;
}

}  // namespace benchutil
