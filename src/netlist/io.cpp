#include "netlist/io.h"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace arm2gc::netlist {

namespace {

const char* owner_name(Owner o) {
  switch (o) {
    case Owner::Public: return "public";
    case Owner::Alice: return "alice";
    case Owner::Bob: return "bob";
  }
  return "?";
}

Owner parse_owner(const std::string& s) {
  if (s == "public") return Owner::Public;
  if (s == "alice") return Owner::Alice;
  if (s == "bob") return Owner::Bob;
  throw std::runtime_error("netlist load: bad owner '" + s + "'");
}

const char* init_name(Dff::Init i) {
  switch (i) {
    case Dff::Init::Zero: return "zero";
    case Dff::Init::One: return "one";
    case Dff::Init::AliceBit: return "alice";
    case Dff::Init::BobBit: return "bob";
  }
  return "?";
}

Dff::Init parse_init(const std::string& s) {
  if (s == "zero") return Dff::Init::Zero;
  if (s == "one") return Dff::Init::One;
  if (s == "alice") return Dff::Init::AliceBit;
  if (s == "bob") return Dff::Init::BobBit;
  throw std::runtime_error("netlist load: bad dff init '" + s + "'");
}

}  // namespace

void dump(const Netlist& nl, std::ostream& os) {
  os << "arm2gc-netlist v1\n";
  os << "outputs_every_cycle " << (nl.outputs_every_cycle ? 1 : 0) << "\n";
  os << "inputs " << nl.inputs.size() << "\n";
  for (const Input& in : nl.inputs) {
    os << "  in " << owner_name(in.owner) << " " << (in.streamed ? 1 : 0) << " " << in.bit_index
       << " " << (in.name.empty() ? "-" : in.name) << "\n";
  }
  os << "dffs " << nl.dffs.size() << "\n";
  for (const Dff& d : nl.dffs) {
    os << "  dff " << init_name(d.init) << " " << d.init_index << " " << d.d << " "
       << (d.d_invert ? 1 : 0) << "\n";
  }
  os << "gates " << nl.gates.size() << "\n";
  for (const Gate& g : nl.gates) {
    os << "  g " << g.a << " " << g.b << " " << static_cast<int>(g.tt) << "\n";
  }
  os << "outputs " << nl.outputs.size() << "\n";
  for (const OutputPort& o : nl.outputs) {
    os << "  out " << o.wire << " " << (o.invert ? 1 : 0) << " "
       << (o.name.empty() ? "-" : o.name) << "\n";
  }
}

std::string dump_to_string(const Netlist& nl) {
  std::ostringstream os;
  dump(nl, os);
  return os.str();
}

Netlist load(std::istream& is) {
  Netlist nl;
  std::string word;
  std::string version;
  is >> word >> version;
  if (word != "arm2gc-netlist" || version != "v1") {
    throw std::runtime_error("netlist load: bad header");
  }
  int flag = 0;
  std::size_t n = 0;
  is >> word >> flag;
  if (word != "outputs_every_cycle") throw std::runtime_error("netlist load: bad flags line");
  nl.outputs_every_cycle = flag != 0;

  is >> word >> n;
  if (word != "inputs") throw std::runtime_error("netlist load: expected inputs");
  nl.inputs.resize(n);
  for (Input& in : nl.inputs) {
    std::string owner;
    int streamed = 0;
    is >> word >> owner >> streamed >> in.bit_index >> in.name;
    if (word != "in") throw std::runtime_error("netlist load: expected in");
    in.owner = parse_owner(owner);
    in.streamed = streamed != 0;
    if (in.name == "-") in.name.clear();
  }

  is >> word >> n;
  if (word != "dffs") throw std::runtime_error("netlist load: expected dffs");
  nl.dffs.resize(n);
  for (Dff& d : nl.dffs) {
    std::string init;
    int inv = 0;
    is >> word >> init >> d.init_index >> d.d >> inv;
    if (word != "dff") throw std::runtime_error("netlist load: expected dff");
    d.init = parse_init(init);
    d.d_invert = inv != 0;
  }

  is >> word >> n;
  if (word != "gates") throw std::runtime_error("netlist load: expected gates");
  nl.gates.resize(n);
  for (Gate& g : nl.gates) {
    int tt = 0;
    is >> word >> g.a >> g.b >> tt;
    if (word != "g") throw std::runtime_error("netlist load: expected g");
    if (tt < 0 || tt > 15) throw std::runtime_error("netlist load: bad truth table");
    g.tt = static_cast<TruthTable>(tt);
  }

  is >> word >> n;
  if (word != "outputs") throw std::runtime_error("netlist load: expected outputs");
  nl.outputs.resize(n);
  for (OutputPort& o : nl.outputs) {
    int inv = 0;
    is >> word >> o.wire >> inv >> o.name;
    if (word != "out") throw std::runtime_error("netlist load: expected out");
    o.invert = inv != 0;
    if (o.name == "-") o.name.clear();
  }
  if (!is) throw std::runtime_error("netlist load: truncated input");
  nl.validate();
  return nl;
}

Netlist load_from_string(const std::string& text) {
  std::istringstream is(text);
  return load(is);
}

}  // namespace arm2gc::netlist
