#include "gc/otpre.h"

#include <chrono>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace arm2gc::gc {

namespace {

using crypto::Block;

// Domain separation from the label stream (raw seed), the IKNP streams
// (ot-snd-s / ot-rcv-r) and each other.
constexpr Block kPadSeedTag{0x6f742d7061642d70ull, 0x61726d3267632d32ull};     // "ot-pad-p"
constexpr Block kChoiceSeedTag{0x6f742d6368632d63ull, 0x61726d3267632d33ull};  // "ot-chc-c"

// Derandomization-frame magic ("OT-deran"). block0.lo folds the frame
// ordinal, the batch size and the refill decision into the magic; the sender
// recomputes the exact expected value from its own mirrored pool state, so
// any divergence — a pool half-consumed by an abort on one side, mismatched
// pool targets, an ordinal skew — throws before a layout-dependent read.
constexpr std::uint64_t kDerandMagic = 0x4f542d646572616eull;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t frame_tag(std::uint64_t ordinal, std::size_t m, bool refill) {
  return kDerandMagic ^ (ordinal << 32) ^ (static_cast<std::uint64_t>(m) << 1) ^
         (refill ? 1ull : 0ull);
}

/// Correction blocks past the 64 bits the header block carries itself.
std::size_t extra_corr_blocks(std::size_t m) {
  return m > 64 ? (m - 64 + 127) / 128 : 0;
}

}  // namespace

RandomOtPoolSender::RandomOtPoolSender(Block seed, std::size_t target)
    : iknp_(seed), pad_rng_(seed ^ kPadSeedTag), target_(target == 0 ? 1 : target) {}

RandomOtPoolReceiver::RandomOtPoolReceiver(Block seed, std::size_t target)
    : iknp_(seed), choice_rng_(seed ^ kChoiceSeedTag), target_(target == 0 ? 1 : target) {}

// ---------------------------------------------------------------------------
// Precomp sender endpoint (Alice): refills ride an inner IKNP sender over the
// same transport against the pool's embedded warm state; online batches read
// the derand frame and answer with masked pads.
// ---------------------------------------------------------------------------

class PrecompOtSender final : public OtSender {
 public:
  PrecompOtSender(Transport& tx, Block seed, RandomOtPoolSender* warm, std::size_t pool_target)
      : tx_(&tx),
        owned_(warm != nullptr ? nullptr : std::make_unique<RandomOtPoolSender>(seed, pool_target)),
        pool_(warm != nullptr ? warm : owned_.get()),
        inner_(make_ot_sender(OtBackend::Iknp, tx, seed, &pool_->iknp_)) {}

  void enqueue(Block x0, Block x1) override {
    pend_.push_back(x0);
    pend_.push_back(x1);
  }

  void flush() override {
    if (pend_.empty()) return;
    RandomOtPoolSender& pool = *pool_;
    const std::size_t m = pend_.size() / 2;

    // Mirror of the receiver's deterministic refill rule; the inner IKNP
    // frames precede the derand frame on the wire, so a one-sided decision
    // fails loudly on whichever header is read against the wrong layout.
    const bool refilled = pool.available() < m;
    if (refilled) refill(pool.target_ > m ? pool.target_ : m);

    const std::uint64_t t0 = now_ns();
    const std::size_t extra = extra_corr_blocks(m);
    frame_.resize(1 + extra);
    tx_->recv(frame_.data(), frame_.size());
    if (frame_[0].lo != frame_tag(pool.frames_, m, refilled)) {
      throw std::runtime_error(
          "otpre: derandomization frame desynchronized (pool consumption, "
          "refill schedule or pairing disagrees with the peer)");
    }

    out_.resize(2 * m);
    for (std::size_t j = 0; j < m; ++j) {
      const bool c = corr_bit(j);
      const Block* pair = &pool.pads_[2 * (pool.head_ + j)];
      out_[2 * j] = pend_[2 * j] ^ pair[c ? 1 : 0];
      out_[2 * j + 1] = pend_[2 * j + 1] ^ pair[c ? 0 : 1];
    }
    tx_->send(out_.data(), out_.size(), Traffic::Ot);

    pool.head_ += m;
    pool.frames_++;
    stats_.choices += m;
    stats_.batches++;
    stats_.online_bytes += 16 * (1 + extra + 2 * m);
    pend_.clear();
    stats_.wall_ns += now_ns() - t0;
  }

  void maintain() override {
    if (pool_->available() < pool_->low_water()) refill(pool_->target_);
  }

 private:
  /// Correction bit j of the received derand frame: header block bits
  /// 64..127 carry c_0..c_63, overflow bits pack 128 per extra block.
  [[nodiscard]] bool corr_bit(std::size_t j) const {
    if (j < 64) return ((frame_[0].hi >> j) & 1u) != 0;
    const std::size_t k = j - 64;
    const Block& b = frame_[1 + k / 128];
    const std::size_t bit = k % 128;
    return (((bit < 64 ? b.lo : b.hi) >> (bit % 64)) & 1u) != 0;
  }

  /// One IKNP batch of n fresh random pad pairs, appended behind the
  /// surviving entries (the consumed prefix is compacted away first —
  /// identical bookkeeping on both sides keeps the pools in lock step).
  void refill(std::size_t n) {
    A2G_SPAN("ot.pool_refill", "ot");
    A2G_COUNT("ot.pool_refills");
    A2G_HIST_TIMER("ot.pool_refill_ns");
    const std::uint64_t t0 = now_ns();
    RandomOtPoolSender& pool = *pool_;
    pool.pads_.erase(pool.pads_.begin(),
                     pool.pads_.begin() + static_cast<std::ptrdiff_t>(2 * pool.head_));
    pool.head_ = 0;
    const std::size_t base = pool.pads_.size();
    pool.pads_.resize(base + 2 * n);
    for (std::size_t i = 0; i < 2 * n; ++i) pool.pads_[base + i] = pool.pad_rng_.next_block();
    const std::uint64_t base_before = inner_->stats().base_ots;
    for (std::size_t i = 0; i < n; ++i) {
      inner_->enqueue(pool.pads_[base + 2 * i], pool.pads_[base + 2 * i + 1]);
    }
    inner_->flush();
    pool.refills_++;
    stats_.base_ots += inner_->stats().base_ots - base_before;
    stats_.offline_wall_ns += now_ns() - t0;
  }

  Transport* tx_;
  std::unique_ptr<RandomOtPoolSender> owned_;
  RandomOtPoolSender* pool_;
  std::unique_ptr<OtSender> inner_;
  std::vector<Block> pend_;  ///< queued pairs, interleaved (x0, x1)
  std::vector<Block> frame_;
  std::vector<Block> out_;
};

// ---------------------------------------------------------------------------
// Precomp receiver endpoint (Bob)
// ---------------------------------------------------------------------------

class PrecompOtReceiver final : public OtReceiver {
 public:
  PrecompOtReceiver(Transport& tx, Block seed, RandomOtPoolReceiver* warm,
                    std::size_t pool_target)
      : tx_(&tx),
        owned_(warm != nullptr ? nullptr
                               : std::make_unique<RandomOtPoolReceiver>(seed, pool_target)),
        pool_(warm != nullptr ? warm : owned_.get()),
        inner_(make_ot_receiver(OtBackend::Iknp, tx, seed, &pool_->iknp_)) {}

  void enqueue(bool choice, Block* out) override { pend_.push_back({choice, out}); }

  void request() override {
    if (pend_.empty()) return;
    RandomOtPoolReceiver& pool = *pool_;
    const std::size_t m = pend_.size();

    const bool refilled = pool.available() < m;
    if (refilled) refill_request(pool.target_ > m ? pool.target_ : m);

    const std::uint64_t t0 = now_ns();
    const std::size_t extra = extra_corr_blocks(m);
    frame_.assign(1 + extra, Block{});
    frame_[0].lo = frame_tag(pool.frames_, m, refilled);
    for (std::size_t j = 0; j < m; ++j) {
      const bool c = pend_[j].choice != (pool.bits_[pool.head_ + j] != 0);
      if (!c) continue;
      if (j < 64) {
        frame_[0].hi |= 1ull << j;
      } else {
        const std::size_t k = j - 64;
        Block& b = frame_[1 + k / 128];
        const std::size_t bit = k % 128;
        (bit < 64 ? b.lo : b.hi) |= 1ull << (bit % 64);
      }
    }
    tx_->send(frame_.data(), frame_.size(), Traffic::Ot);
    stats_.online_bytes += 16 * frame_.size();
    stats_.wall_ns += now_ns() - t0;
  }

  void finish() override {
    if (pend_.empty()) return;
    complete_refill();
    const std::uint64_t t0 = now_ns();
    RandomOtPoolReceiver& pool = *pool_;
    const std::size_t m = pend_.size();
    ct_.resize(2 * m);
    tx_->recv(ct_.data(), ct_.size());
    for (std::size_t j = 0; j < m; ++j) {
      const Pending& p = pend_[j];
      *p.out = ct_[2 * j + (p.choice ? 1 : 0)] ^ pool.got_[pool.head_ + j];
    }
    pool.head_ += m;
    pool.frames_++;
    stats_.choices += m;
    stats_.batches++;
    stats_.online_bytes += 16 * ct_.size();
    pend_.clear();
    stats_.wall_ns += now_ns() - t0;
  }

  void maintain_request() override {
    if (pool_->available() < pool_->low_water()) refill_request(pool_->target_);
  }

  void maintain_finish() override { complete_refill(); }

 private:
  struct Pending {
    bool choice;
    Block* out;
  };

  /// Emits the inner IKNP request for n fresh random choices; the received
  /// pads land in the pool when complete_refill() runs. The pool's entry
  /// count (and so available()) advances immediately so the derand frame's
  /// correction bits can already draw on the in-flight entries.
  void refill_request(std::size_t n) {
    if (refill_pending_) {
      throw std::logic_error("otpre: overlapping pool refills (schedule bug)");
    }
    A2G_SPAN("ot.pool_refill_request", "ot");
    A2G_COUNT("ot.pool_refills");
    A2G_HIST_TIMER("ot.pool_refill_ns");
    const std::uint64_t t0 = now_ns();
    // The inner receiver runs its base phase inside request(), so the fold
    // window opens here, not at complete_refill().
    refill_base_before_ = inner_->stats().base_ots;
    RandomOtPoolReceiver& pool = *pool_;
    pool.bits_.erase(pool.bits_.begin(), pool.bits_.begin() + static_cast<std::ptrdiff_t>(pool.head_));
    pool.got_.erase(pool.got_.begin(), pool.got_.begin() + static_cast<std::ptrdiff_t>(pool.head_));
    pool.head_ = 0;
    const std::size_t base = pool.bits_.size();
    pool.bits_.resize(base + n);
    pool.got_.resize(base + n);  // stable until complete_refill: no growth in between
    for (std::size_t i = 0; i < n; ++i) {
      pool.bits_[base + i] = pool.choice_rng_.next_bool() ? 1 : 0;
      inner_->enqueue(pool.bits_[base + i] != 0, &pool.got_[base + i]);
    }
    inner_->request();
    refill_pending_ = true;
    stats_.offline_wall_ns += now_ns() - t0;
  }

  void complete_refill() {
    if (!refill_pending_) return;
    A2G_SPAN("ot.pool_refill_complete", "ot");
    const std::uint64_t t0 = now_ns();
    inner_->finish();
    pool_->refills_++;
    refill_pending_ = false;
    stats_.base_ots += inner_->stats().base_ots - refill_base_before_;
    stats_.offline_wall_ns += now_ns() - t0;
  }

  Transport* tx_;
  std::unique_ptr<RandomOtPoolReceiver> owned_;
  RandomOtPoolReceiver* pool_;
  std::unique_ptr<OtReceiver> inner_;
  std::vector<Pending> pend_;
  std::vector<Block> frame_;
  std::vector<Block> ct_;
  bool refill_pending_ = false;
  std::uint64_t refill_base_before_ = 0;
};

std::unique_ptr<OtSender> make_precomp_ot_sender(Transport& tx, Block seed,
                                                 RandomOtPoolSender* warm_pool,
                                                 std::size_t pool_target) {
  return std::make_unique<PrecompOtSender>(tx, seed, warm_pool, pool_target);
}

std::unique_ptr<OtReceiver> make_precomp_ot_receiver(Transport& tx, Block seed,
                                                     RandomOtPoolReceiver* warm_pool,
                                                     std::size_t pool_target) {
  return std::make_unique<PrecompOtReceiver>(tx, seed, warm_pool, pool_target);
}

}  // namespace arm2gc::gc
