// AES-NI backend. This is the only translation unit compiled with -maes
// (see CMakeLists.txt); everything else stays portable and reaches this code
// through the runtime dispatch in aes128.cpp.
#include "crypto/aesni_impl.h"

#ifndef ARM2GC_NO_AESNI

#include <emmintrin.h>
#include <wmmintrin.h>

namespace arm2gc::crypto::detail {

namespace {

// Block is a standard-layout 16-byte struct whose in-memory bytes are exactly
// the cipher byte string (see Block::to_bytes), so unaligned vector loads and
// stores round-trip it directly.
inline __m128i load_block(const Block* b) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
}

inline void store_block(Block* b, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(b), v);
}

}  // namespace

bool aesni_compiled_in() { return true; }

void aesni_encrypt_batch(const std::uint8_t* round_key_bytes, Block* io, std::size_t n) {
  __m128i rk[11];
  for (int r = 0; r < 11; ++r) {
    rk[r] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(round_key_bytes + 16 * r));
  }

  // AESENC has multi-cycle latency but single-cycle throughput on every
  // AES-NI core, so keeping 8 independent blocks in flight hides the latency
  // entirely; the fixed-bound inner loops fully unroll at -O2.
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i s[8];
    for (int j = 0; j < 8; ++j) s[j] = _mm_xor_si128(load_block(io + i + j), rk[0]);
    for (int r = 1; r < 10; ++r) {
      for (int j = 0; j < 8; ++j) s[j] = _mm_aesenc_si128(s[j], rk[r]);
    }
    for (int j = 0; j < 8; ++j) store_block(io + i + j, _mm_aesenclast_si128(s[j], rk[10]));
  }
  if (i + 4 <= n) {
    __m128i s[4];
    for (int j = 0; j < 4; ++j) s[j] = _mm_xor_si128(load_block(io + i + j), rk[0]);
    for (int r = 1; r < 10; ++r) {
      for (int j = 0; j < 4; ++j) s[j] = _mm_aesenc_si128(s[j], rk[r]);
    }
    for (int j = 0; j < 4; ++j) store_block(io + i + j, _mm_aesenclast_si128(s[j], rk[10]));
    i += 4;
  }
  for (; i < n; ++i) {
    __m128i s = _mm_xor_si128(load_block(io + i), rk[0]);
    for (int r = 1; r < 10; ++r) s = _mm_aesenc_si128(s, rk[r]);
    store_block(io + i, _mm_aesenclast_si128(s, rk[10]));
  }
}

}  // namespace arm2gc::crypto::detail

#else  // ARM2GC_NO_AESNI

namespace arm2gc::crypto::detail {

bool aesni_compiled_in() { return false; }

void aesni_encrypt_batch(const std::uint8_t*, Block*, std::size_t) {}

}  // namespace arm2gc::crypto::detail

#endif  // ARM2GC_NO_AESNI
