# Runs clang-tidy (config: .clang-tidy at the repo root, WarningsAsErrors)
# over every first-party TU in the exported compilation database. Invoked by
# the `lint_tidy` target as:
#   cmake -DCLANG_TIDY=<exe> -DBUILD_DIR=<build> -DSOURCE_DIR=<repo>
#         -P cmake/run_clang_tidy.cmake

if(NOT CLANG_TIDY OR NOT BUILD_DIR OR NOT SOURCE_DIR)
  message(FATAL_ERROR "run_clang_tidy: need -DCLANG_TIDY, -DBUILD_DIR and -DSOURCE_DIR")
endif()
if(NOT EXISTS "${BUILD_DIR}/compile_commands.json")
  message(FATAL_ERROR "run_clang_tidy: no compile_commands.json in ${BUILD_DIR} "
                      "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)")
endif()

file(READ "${BUILD_DIR}/compile_commands.json" db)
string(JSON count LENGTH "${db}")
set(tus "")
if(count GREATER 0)
  math(EXPR last "${count}-1")
  foreach(i RANGE ${last})
    string(JSON f GET "${db}" ${i} file)
    # Library + tool code only: fetched deps and test/bench harnesses (which
    # drag in third-party gtest/benchmark headers) stay out of scope.
    foreach(dir src tools)
      string(FIND "${f}" "${SOURCE_DIR}/${dir}/" at)
      if(at EQUAL 0)
        list(APPEND tus "${f}")
        break()
      endif()
    endforeach()
  endforeach()
endif()
list(REMOVE_DUPLICATES tus)
list(SORT tus)

list(LENGTH tus n)
message(STATUS "clang-tidy: ${n} translation units")
set(failed "")
foreach(tu IN LISTS tus)
  execute_process(
    COMMAND "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet "${tu}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(STATUS "clang-tidy FAILED: ${tu}\n${out}")
    list(APPEND failed "${tu}")
  endif()
endforeach()

if(failed)
  list(LENGTH failed n)
  message(FATAL_ERROR "clang-tidy: findings in ${n} TU(s)")
endif()
message(STATUS "clang-tidy: all ${n} TUs clean")
