// Fixture: the dual-listed composition file (names both roles).
#include "core/plan.h"
namespace fix::core {
class GarblerSession;
class EvaluatorSession;
int arity() { return 2; }
}  // namespace fix::core
