// Deterministic random generator (AES-128 in counter mode) used for label
// generation. Deterministic seeding keeps protocol traces reproducible in
// tests while remaining computationally indistinguishable from random.
#pragma once

#include <cstdint>

#include "crypto/aes128.h"
#include "crypto/block.h"

namespace arm2gc::crypto {

/// AES-CTR pseudorandom generator.
class CtrRng {
 public:
  explicit CtrRng(Block seed) : aes_(seed) {}

  /// Next 128 pseudorandom bits.
  Block next_block() { return aes_.encrypt(block_from_u64(counter_++)); }

  /// Next 64 pseudorandom bits.
  std::uint64_t next_u64() { return next_block().lo; }

  /// Uniform value in [0, bound) for small bounds (modulo bias negligible for
  /// the test/bench uses this serves).
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  bool next_bool() { return (next_u64() & 1u) != 0; }

 private:
  Aes128 aes_;
  std::uint64_t counter_ = 0;
};

}  // namespace arm2gc::crypto
