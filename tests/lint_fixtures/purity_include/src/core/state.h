// Fixture: intermediate header smuggling secret randomness to the planner.
#pragma once
#include "crypto/rng.h"
namespace fix::core {
using Rng = crypto::CtrRng;
}  // namespace fix::core
