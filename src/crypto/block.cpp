#include "crypto/block.h"

#include <array>

namespace arm2gc::crypto {

std::string Block::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::uint8_t bytes[16];
  to_bytes(bytes);
  std::string s;
  s.reserve(32);
  // Print most-significant byte first for human readability.
  for (int i = 15; i >= 0; --i) {
    s.push_back(kDigits[bytes[i] >> 4]);
    s.push_back(kDigits[bytes[i] & 0xf]);
  }
  return s;
}

}  // namespace arm2gc::crypto
