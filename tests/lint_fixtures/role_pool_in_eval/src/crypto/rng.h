// Fixture: secret-randomness generator (forbidden to the planner).
#pragma once
#include "crypto/block.h"
namespace fix::crypto {
class CtrRng {
 public:
  explicit CtrRng(Block seed) : state_(seed) {}
  Block next() { return state_; }
 private:
  Block state_;
};
}  // namespace fix::crypto
