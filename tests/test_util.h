// Shared helpers for the test suites.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gc/transport.h"
#include "netlist/netlist.h"

namespace a2gtest {

inline arm2gc::netlist::BitVec to_bits(std::uint64_t v, std::size_t width) {
  arm2gc::netlist::BitVec b(width);
  for (std::size_t i = 0; i < width; ++i) b[i] = ((v >> i) & 1u) != 0;
  return b;
}

inline std::uint64_t from_bits(const arm2gc::netlist::BitVec& b, std::size_t off = 0,
                               std::size_t width = 64) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width && off + i < b.size(); ++i) {
    if (b[off + i]) v |= 1ull << i;
  }
  return v;
}

inline arm2gc::netlist::BitVec concat_bits(const arm2gc::netlist::BitVec& a,
                                           const arm2gc::netlist::BitVec& b) {
  arm2gc::netlist::BitVec r = a;
  r.insert(r.end(), b.begin(), b.end());
  return r;
}

/// Fault-injecting transport pair: a ThreadedPipeDuplex whose ends count
/// traffic in blocks and, at a configured trip point, deliver only a prefix
/// of the in-flight operation before closing the whole duplex — a partial
/// write (send trip) or a short read (recv trip), followed by a mid-stream
/// connection loss. A trip point that is not a frame-size multiple lands
/// mid-frame, modeling a peer dying halfway through a message. The tripping
/// side throws gc::TransportClosed itself; the close() wakes the peer, whose
/// next blocked recv or send throws the same — so both endpoints surface the
/// teardown as TransportClosed, never as a hang or a wrong label.
class FaultyDuplex {
 public:
  explicit FaultyDuplex(std::size_t capacity_blocks)
      : inner_(capacity_blocks),
        garbler_(inner_.garbler_end(), inner_),
        evaluator_(inner_.evaluator_end(), inner_) {}

  [[nodiscard]] arm2gc::gc::Transport& garbler_end() { return garbler_; }
  [[nodiscard]] arm2gc::gc::Transport& evaluator_end() { return evaluator_; }

  /// Trip after the given total block count in that direction (the tripping
  /// operation's blocks up to the limit are still delivered).
  void fail_garbler_send_after(std::uint64_t blocks) { garbler_.send_trip = blocks; }
  void fail_garbler_recv_after(std::uint64_t blocks) { garbler_.recv_trip = blocks; }
  void fail_evaluator_send_after(std::uint64_t blocks) { evaluator_.send_trip = blocks; }
  void fail_evaluator_recv_after(std::uint64_t blocks) { evaluator_.recv_trip = blocks; }

  [[nodiscard]] arm2gc::gc::CommStats stats() const { return inner_.stats(); }

 private:
  class End : public arm2gc::gc::Transport {
   public:
    End(arm2gc::gc::Transport& inner, arm2gc::gc::ThreadedPipeDuplex& duplex)
        : inner_(&inner), duplex_(&duplex) {}

    std::optional<std::uint64_t> send_trip;
    std::optional<std::uint64_t> recv_trip;

    void send(const arm2gc::crypto::Block* blocks, std::size_t n,
              arm2gc::gc::Traffic t) override {
      if (send_trip && sent_ + n > *send_trip) {
        const auto allowed = static_cast<std::size_t>(*send_trip - sent_);
        if (allowed > 0) inner_->send(blocks, allowed, t);  // partial write
        trip();
      }
      inner_->send(blocks, n, t);
      sent_ += n;
    }

    void recv(arm2gc::crypto::Block* out, std::size_t n) override {
      if (recv_trip && received_ + n > *recv_trip) {
        const auto allowed = static_cast<std::size_t>(*recv_trip - received_);
        if (allowed > 0) inner_->recv(out, allowed);  // short read
        trip();
      }
      inner_->recv(out, n);
      received_ += n;
    }

    void account(arm2gc::gc::Traffic t, std::uint64_t bytes) override {
      inner_->account(t, bytes);
    }

    void flush() override { inner_->flush(); }

   private:
    [[noreturn]] void trip() {
      duplex_->close();  // wake the peer; its next transport touch throws too
      throw arm2gc::gc::TransportClosed{};
    }

    arm2gc::gc::Transport* inner_;
    arm2gc::gc::ThreadedPipeDuplex* duplex_;
    std::uint64_t sent_ = 0;
    std::uint64_t received_ = 0;
  };

  arm2gc::gc::ThreadedPipeDuplex inner_;
  End garbler_;
  End evaluator_;
};

}  // namespace a2gtest
