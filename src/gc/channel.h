// In-memory channel between garbler (Alice) and evaluator (Bob) with exact
// byte accounting per traffic class. Communication volume — not computation —
// is the GC bottleneck (Gueron et al., CCS'15), so the counters here are the
// primary measurement instrument of the reproduction.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "crypto/block.h"

namespace arm2gc::gc {

enum class Traffic : std::uint8_t {
  GarbledTable,  ///< half-gate ciphertexts (2 blocks per non-XOR gate)
  InputLabel,    ///< Alice's own input labels
  Ot,            ///< Bob's input labels (counted at OT-extension cost)
  OutputDecode,  ///< output labels / decode bits at the end
};

struct CommStats {
  std::uint64_t garbled_table_bytes = 0;
  std::uint64_t input_label_bytes = 0;
  std::uint64_t ot_bytes = 0;
  std::uint64_t output_bytes = 0;

  [[nodiscard]] std::uint64_t total() const {
    return garbled_table_bytes + input_label_bytes + ot_bytes + output_bytes;
  }
};

/// FIFO of 128-bit blocks written by one side and read by the other. The
/// driver runs garbler and evaluator in-process; a real deployment would
/// stream the same blocks over a socket.
class Channel {
 public:
  void send(crypto::Block b, Traffic t) {
    blocks_.push_back(b);
    account(t, 16);
  }

  crypto::Block recv() {
    if (read_pos_ >= blocks_.size()) throw std::runtime_error("channel: underrun");
    return blocks_[read_pos_++];
  }

  /// Extra bytes that a real transport would carry (e.g. OT extension
  /// overhead beyond the blocks actually moved in-process).
  void account(Traffic t, std::uint64_t bytes) {
    switch (t) {
      case Traffic::GarbledTable: stats_.garbled_table_bytes += bytes; break;
      case Traffic::InputLabel: stats_.input_label_bytes += bytes; break;
      case Traffic::Ot: stats_.ot_bytes += bytes; break;
      case Traffic::OutputDecode: stats_.output_bytes += bytes; break;
    }
  }

  [[nodiscard]] const CommStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t unread() const { return blocks_.size() - read_pos_; }

  /// Drops delivered blocks to bound memory on long runs.
  void compact() {
    blocks_.erase(blocks_.begin(), blocks_.begin() + static_cast<std::ptrdiff_t>(read_pos_));
    read_pos_ = 0;
  }

 private:
  std::vector<crypto::Block> blocks_;
  std::size_t read_pos_ = 0;
  CommStats stats_;
};

}  // namespace arm2gc::gc
