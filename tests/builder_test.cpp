#include <gtest/gtest.h>

#include <cstdint>

#include "builder/circuit_builder.h"
#include "builder/stdlib.h"
#include "crypto/rng.h"
#include "netlist/opt.h"
#include "netlist/simulator.h"
#include "test_util.h"

namespace {

using namespace arm2gc;
using namespace arm2gc::builder;
using a2gtest::from_bits;
using a2gtest::to_bits;

/// Evaluates a combinational circuit: builds inputs a (Alice) and b (Bob) of
/// `width` bits each through `body`, simulates one cycle, returns outputs.
template <typename Body>
netlist::BitVec run_comb(std::size_t width, std::uint64_t a, std::uint64_t b, Body&& body) {
  CircuitBuilder cb;
  const Bus ba = cb.input_bus(netlist::Owner::Alice, width, 0, false, "a");
  const Bus bb = cb.input_bus(netlist::Owner::Bob, width, 0, false, "b");
  body(cb, ba, bb);
  const netlist::Netlist nl = cb.take();
  netlist::Simulator sim(nl);
  sim.reset(to_bits(a, width), to_bits(b, width));
  sim.step();
  return sim.read_outputs();
}

constexpr std::uint32_t u32(std::uint64_t v) { return static_cast<std::uint32_t>(v); }

class ArithRandom : public ::testing::TestWithParam<int> {
 protected:
  ArithRandom() : rng_(crypto::block_from_u64(static_cast<std::uint64_t>(GetParam()))) {}
  crypto::CtrRng rng_;
};

TEST_P(ArithRandom, AdderMatchesUint) {
  const std::uint32_t a = u32(rng_.next_u64());
  const std::uint32_t b = u32(rng_.next_u64());
  const auto out = run_comb(32, a, b, [](CircuitBuilder& cb, const Bus& x, const Bus& y) {
    cb.output_bus(add(cb, x, y), "sum");
  });
  EXPECT_EQ(u32(from_bits(out, 0, 32)), u32(a + b));
}

TEST_P(ArithRandom, AdderCarryAndOverflow) {
  const std::uint32_t a = u32(rng_.next_u64());
  const std::uint32_t b = u32(rng_.next_u64());
  const auto out = run_comb(32, a, b, [](CircuitBuilder& cb, const Bus& x, const Bus& y) {
    const AddOut r = add_full(cb, x, y, cb.c0());
    cb.output_bus(r.sum, "sum");
    cb.output(r.carry_out, "c");
    cb.output(r.overflow, "v");
  });
  const std::uint64_t wide = static_cast<std::uint64_t>(a) + b;
  EXPECT_EQ(u32(from_bits(out, 0, 32)), u32(wide));
  EXPECT_EQ(out[32], (wide >> 32) != 0);
  const bool ovf = (~(a ^ b) & (a ^ u32(wide)) & 0x80000000u) != 0;
  EXPECT_EQ(out[33], ovf);
}

TEST_P(ArithRandom, SubMatchesUint) {
  const std::uint32_t a = u32(rng_.next_u64());
  const std::uint32_t b = u32(rng_.next_u64());
  const auto out = run_comb(32, a, b, [](CircuitBuilder& cb, const Bus& x, const Bus& y) {
    const AddOut r = sub_full(cb, x, y);
    cb.output_bus(r.sum, "diff");
    cb.output(r.carry_out, "nb");
  });
  EXPECT_EQ(u32(from_bits(out, 0, 32)), u32(a - b));
  EXPECT_EQ(out[32], a >= b);  // ARM C flag on subtraction: NOT borrow
}

TEST_P(ArithRandom, MulLowerMatchesUint) {
  const std::uint32_t a = u32(rng_.next_u64());
  const std::uint32_t b = u32(rng_.next_u64());
  const auto out = run_comb(32, a, b, [](CircuitBuilder& cb, const Bus& x, const Bus& y) {
    cb.output_bus(mul_lower(cb, x, y, 32), "p");
  });
  EXPECT_EQ(u32(from_bits(out, 0, 32)), u32(a * b));
}

TEST_P(ArithRandom, ComparatorsMatch) {
  const std::uint32_t a = u32(rng_.next_u64());
  const std::uint32_t b = rng_.next_bool() ? u32(rng_.next_u64()) : a;  // exercise equality
  const auto out = run_comb(32, a, b, [](CircuitBuilder& cb, const Bus& x, const Bus& y) {
    cb.output(eq(cb, x, y), "eq");
    cb.output(ult(cb, x, y), "ult");
    cb.output(slt(cb, x, y), "slt");
  });
  EXPECT_EQ(out[0], a == b);
  EXPECT_EQ(out[1], a < b);
  EXPECT_EQ(out[2], static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b));
}

TEST_P(ArithRandom, PopcountMatches) {
  const std::uint64_t a = rng_.next_u64();
  const auto out = run_comb(64, a, 0, [](CircuitBuilder& cb, const Bus& x, const Bus&) {
    cb.output_bus(popcount(cb, x), "pc");
  });
  EXPECT_EQ(from_bits(out, 0, 8), static_cast<std::uint64_t>(__builtin_popcountll(a)));
}

TEST_P(ArithRandom, BarrelShiftsMatch) {
  const std::uint32_t a = u32(rng_.next_u64());
  const std::uint32_t amt = u32(rng_.next_below(32));
  const auto out =
      run_comb(32, a, amt, [](CircuitBuilder& cb, const Bus& x, const Bus& y) {
        const Bus amt5(y.begin(), y.begin() + 5);
        cb.output_bus(barrel_right(cb, x, amt5, cb.c0(), false), "lsr");
        cb.output_bus(barrel_right(cb, x, amt5, x.back(), false), "asr");
        cb.output_bus(barrel_right(cb, x, amt5, cb.c0(), true), "ror");
        cb.output_bus(barrel_left(cb, x, amt5, cb.c0()), "lsl");
      });
  EXPECT_EQ(u32(from_bits(out, 0, 32)), a >> amt);
  EXPECT_EQ(u32(from_bits(out, 32, 32)),
            u32(static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int32_t>(a)) >> amt)));
  EXPECT_EQ(u32(from_bits(out, 64, 32)), amt == 0 ? a : ((a >> amt) | (a << (32 - amt))));
  EXPECT_EQ(u32(from_bits(out, 96, 32)), u32(a << amt));
}

TEST_P(ArithRandom, SelectAndDecode) {
  const std::uint32_t sel = u32(rng_.next_below(8));
  const auto out = run_comb(32, sel, 0, [&](CircuitBuilder& cb, const Bus& x, const Bus&) {
    const Bus sel3(x.begin(), x.begin() + 3);
    std::vector<Bus> options;
    for (std::uint64_t k = 0; k < 8; ++k) options.push_back(bus_constant(cb, 100 + k, 8));
    cb.output_bus(select(cb, sel3, options), "sel");
    for (arm2gc::builder::Wire w : decode_onehot(cb, sel3)) cb.output(w, "hot");
  });
  EXPECT_EQ(from_bits(out, 0, 8), 100 + sel);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[8 + i], i == sel) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArithRandom, ::testing::Range(0, 24));

TEST(Builder, ConstantFoldingCreatesNoGates) {
  CircuitBuilder cb;
  const Wire a = cb.input(netlist::Owner::Alice, 0);
  EXPECT_EQ(cb.and_(a, cb.c0()).id, netlist::kConst0);
  EXPECT_EQ(cb.and_(a, cb.c1()).id, a.id);
  EXPECT_EQ(cb.or_(a, cb.c1()).id, netlist::kConst1);
  EXPECT_EQ(cb.xor_(a, a).id, netlist::kConst0);
  const Wire nota = CircuitBuilder::not_(a);
  EXPECT_EQ(cb.and_(a, nota).id, netlist::kConst0);
  EXPECT_EQ(cb.or_(a, nota).id, netlist::kConst1);
  const Wire x = cb.xor_(a, cb.c1());  // = ~a, no gate
  EXPECT_EQ(x.id, a.id);
  EXPECT_TRUE(x.inv);
  EXPECT_EQ(cb.num_gates(), 0u);
}

TEST(Builder, StructuralHashingSharesGates) {
  CircuitBuilder cb;
  const Wire a = cb.input(netlist::Owner::Alice, 0);
  const Wire b = cb.input(netlist::Owner::Bob, 0);
  const Wire g1 = cb.and_(a, b);
  const Wire g2 = cb.and_(b, a);  // commuted
  EXPECT_EQ(g1.id, g2.id);
  const Wire g3 = cb.nand_(a, b);  // complement of the same gate
  EXPECT_EQ(g3.id, g1.id);
  EXPECT_NE(g3.inv, g1.inv);
  // NOR(~a,~b) == AND(a,b) up to output inversion sharing.
  const Wire g4 = cb.nor_(CircuitBuilder::not_(a), CircuitBuilder::not_(b));
  EXPECT_EQ(g4.id, g1.id);
  EXPECT_EQ(cb.num_gates(), 1u);
}

TEST(Builder, MuxCostsOneAnd) {
  CircuitBuilder cb;
  const Wire s = cb.input(netlist::Owner::Alice, 0);
  const Wire t = cb.input(netlist::Owner::Bob, 0);
  const Wire f = cb.input(netlist::Owner::Bob, 1);
  cb.output(cb.mux(s, t, f));
  EXPECT_EQ(cb.num_non_free(), 1u);
}

TEST(Builder, AdderCostsOneAndPerBit) {
  CircuitBuilder cb;
  const Bus a = cb.input_bus(netlist::Owner::Alice, 32, 0);
  const Bus b = cb.input_bus(netlist::Owner::Bob, 32, 0);
  cb.output_bus(add(cb, a, b));
  netlist::Netlist nl = cb.take();
  netlist::sweep_dead_gates(nl);
  EXPECT_EQ(nl.count_non_free(), 31u);  // MSB carry gate is dead and swept
}

TEST(Builder, DffBeforeGatesEnforced) {
  CircuitBuilder cb;
  const Wire a = cb.input(netlist::Owner::Alice, 0);
  const Wire b = cb.input(netlist::Owner::Bob, 0);
  (void)cb.and_(a, b);
  EXPECT_THROW(cb.make_dff(), std::logic_error);
}

TEST(Builder, SequentialAccumulator) {
  // acc <= acc + streamed Alice bit, 4-bit accumulator.
  CircuitBuilder cb;
  const auto acc = cb.make_dff_bus(4);
  const Wire in = cb.input(netlist::Owner::Alice, 0, /*streamed=*/true);
  Bus next = add(cb, cb.dff_out_bus(acc), zext(cb, Bus{in}, 4));
  cb.set_dff_d_bus(acc, next);
  cb.output_bus(cb.dff_out_bus(acc), "acc");
  cb.set_outputs_every_cycle(true);
  const netlist::Netlist nl = cb.take();
  netlist::Simulator sim(nl);
  sim.reset();
  int expect = 0;
  for (const bool bit : {true, true, false, true, true}) {
    sim.step({bit});
    EXPECT_EQ(from_bits(sim.read_outputs(), 0, 4), static_cast<std::uint64_t>(expect));
    expect += bit ? 1 : 0;
  }
}

TEST(StdLib, IncMatches) {
  for (std::uint64_t v : {0ull, 1ull, 14ull, 15ull}) {
    const auto out = run_comb(4, v, 0, [](CircuitBuilder& cb, const Bus& x, const Bus&) {
      cb.output_bus(inc(cb, x));
    });
    EXPECT_EQ(from_bits(out, 0, 4), (v + 1) & 0xF);
  }
}

TEST(StdLib, ConstShiftsAreFree) {
  CircuitBuilder cb;
  const Bus a = cb.input_bus(netlist::Owner::Alice, 32, 0);
  cb.output_bus(shl_const(cb, a, 5));
  cb.output_bus(lshr_const(cb, a, 7));
  cb.output_bus(ashr_const(a, 3));
  cb.output_bus(ror_const(a, 13));
  EXPECT_EQ(cb.num_gates(), 0u);
}

TEST(StdLib, SextZext) {
  const auto out = run_comb(8, 0x80, 0, [](CircuitBuilder& cb, const Bus& x, const Bus&) {
    cb.output_bus(sext(cb, x, 16));
    cb.output_bus(zext(cb, x, 16));
  });
  EXPECT_EQ(from_bits(out, 0, 16), 0xFF80u);
  EXPECT_EQ(from_bits(out, 16, 16), 0x0080u);
}

}  // namespace
