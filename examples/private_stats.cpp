// Private similarity scoring: two parties compare 512-bit feature vectors
// (e.g. iris codes or fingerprint sketches) without revealing them. The
// Hamming-distance kernel is the paper's flagship benchmark: SkipGate prunes
// the masked SWAR adds to ~a thousand garbled gates.
#include <cstdio>
#include <vector>

#include "arm/arm2gc.h"
#include "crypto/rng.h"
#include "programs/programs.h"

int main() {
  using namespace arm2gc;
  constexpr std::size_t kWords = 16;  // 512 bits

  const programs::Program p = programs::hamming(kWords);
  const arm::Arm2Gc machine(p.cfg, p.words);

  crypto::CtrRng rng(crypto::block_from_u64(42));
  std::vector<std::uint32_t> alice(kWords), bob(kWords);
  for (std::size_t i = 0; i < kWords; ++i) {
    alice[i] = static_cast<std::uint32_t>(rng.next_u64());
    bob[i] = alice[i];
  }
  // Flip ~40 feature bits on Bob's side.
  for (int k = 0; k < 40; ++k) {
    bob[static_cast<std::size_t>(rng.next_below(kWords))] ^=
        1u << rng.next_below(32);
  }

  const arm::Arm2GcResult r = machine.run(alice, bob);
  std::printf("private feature-vector comparison (512 bits)\n");
  std::printf("hamming distance      : %u bits\n", r.outputs[0]);
  std::printf("match verdict         : %s (threshold 64)\n",
              r.outputs[0] < 64 ? "same subject" : "different subjects");
  std::printf("garbled non-XOR gates : %llu (conventional GC would need %llu)\n",
              static_cast<unsigned long long>(r.stats.garbled_non_xor),
              static_cast<unsigned long long>(machine.conventional_non_xor(r.cycles)));
  return 0;
}
