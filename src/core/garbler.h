// Garbler-side (Alice) session: owns the label generator, the free-XOR
// offset R and every garbler label; consumes the public CyclePlan and talks
// to the evaluator only through a gc::Transport. It never sees Bob's inputs
// (Bob's labels go out through the batched OT endpoint — ideal stand-in or
// real IKNP extension, per gc::OtBackend) and never reads from the planner's
// fingerprint state — the plan is the entire shared contract.
//
// OT schedule: Bob-owned bits bind by enqueueing the (x0, x0^R) pair; the
// whole phase's batch runs at the flush point at the end of reset() /
// begin_cycle(), after the evaluator's request() for the same phase (the
// driver's ot_* hooks order this; see core/skipgate.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/plan.h"
#include "crypto/block.h"
#include "gc/garble.h"
#include "gc/otext.h"
#include "gc/transport.h"
#include "netlist/netlist.h"

namespace arm2gc::core {

class WorkPool;

class GarblerSession {
 public:
  /// `ot_backend` selects the OT endpoint; `warm_ot` (optional, IKNP only)
  /// carries base-OT state across runs of one pairing, `warm_ot_pool` is its
  /// Precomp counterpart (the random-OT pool, which embeds its own base
  /// state) and `ot_pool` sizes a fresh Precomp pool when no warm one is
  /// handed in. `pool` (optional) garbles independent cone slices on its
  /// workers, staging each cone's tables and draining them in slice order
  /// through a single ordered writer — the framed byte stream, table digests
  /// and comm accounting are byte-identical to the serial path.
  GarblerSession(const netlist::Netlist& nl, Mode mode, gc::Scheme scheme, crypto::Block seed,
                 gc::Transport& tx, gc::OtBackend ot_backend = gc::OtBackend::Ideal,
                 gc::IknpSenderState* warm_ot = nullptr, WorkPool* pool = nullptr,
                 gc::RandomOtPoolSender* warm_ot_pool = nullptr,
                 std::size_t ot_pool = gc::kDefaultOtPoolBatch);

  /// Binds labels for constants (Conventional mode), fixed inputs and
  /// flip-flop initial values; sends the evaluator's labels (directly for
  /// Alice-known bits, batched through OT for Bob's bits).
  void reset(const netlist::BitVec& alice_bits, const netlist::BitVec& pub_bits);

  /// Installs root labels for a cycle and binds streamed inputs.
  void begin_cycle(const netlist::BitVec& alice_stream, const netlist::BitVec& pub_stream);

  /// Runs the garbler label pass over the plan, sending garbled tables.
  void garble_cycle(const CyclePlan& plan);

  /// Receives Bob's output labels and decodes this cycle's sampled outputs.
  [[nodiscard]] netlist::BitVec decode_outputs(const CyclePlan& plan);

  /// Carries flip-flop labels into the next cycle.
  void latch(const CyclePlan& plan);

  /// OT maintenance between cycles (the schedule's ot_refill slot): lets the
  /// Precomp backend top up its random-OT pool off the critical path.
  void ot_maintain() { ot_->maintain(); }

  /// OT-phase counters of this session's sender endpoint.
  [[nodiscard]] const gc::OtPhaseStats& ot_stats() const { return ot_->stats(); }

  /// Running gf_double-mix digest of every garbled-table block sent (same
  /// construction as gc/golden_digest.h): pins table *content*, not just
  /// byte counts, across transports and OT backends.
  [[nodiscard]] crypto::Block table_digest() const { return table_digest_; }

 private:
  void bind_secret(netlist::Owner owner, bool v, crypto::Block& la);
  [[nodiscard]] bool known_bit(netlist::Owner owner, std::uint32_t idx,
                               const netlist::BitVec& alice, const netlist::BitVec& pub,
                               const char* what) const;

  const netlist::Netlist& nl_;
  Mode mode_;
  gc::Garbler garbler_;
  gc::Transport* tx_;
  std::unique_ptr<gc::OtSender> ot_;
  WorkPool* pool_;

  std::vector<crypto::Block> la_;
  std::vector<crypto::Block> fixed_la_;
  std::vector<crypto::Block> dff_la_;
  crypto::Block const_la_[2];
  crypto::Block table_digest_{};
  /// Per-slice staging buffers for pooled garbling (drained in slice order
  /// by the transport writer) and the per-slice emitted-table prefix sums
  /// that preassign each cone's tweak range.
  std::vector<std::vector<gc::GarbledTable>> stage_;
  std::vector<std::uint64_t> emit_base_;
  /// Per-cycle domain for Classic4 derived output labels (advanced every
  /// garble_cycle, never reset): labels are functions of (epoch, gate), so
  /// worker order cannot perturb them.
  std::uint64_t cycle_epoch_ = 0;
};

}  // namespace arm2gc::core
