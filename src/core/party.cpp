#include "core/party.h"

#include <stdexcept>

#include "core/evaluator.h"
#include "core/garbler.h"
#include "core/workpool.h"
#include "gc/otpre.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace arm2gc::core {

namespace {

using netlist::BitVec;

PlannerOptions make_planner_opts(const PartyOptions& o, PlanCache* shared, ConeMemo* cones,
                                 WorkPool* pool) {
  PlannerOptions p;
  p.mode = o.mode;
  p.seed = o.protocol_seed;
  p.cache = o.plan_cache;
  p.cache_budget_bytes = o.plan_cache_budget_bytes;
  p.shared_cache = shared;
  // plan_cache == false is the from-scratch baseline: no reuse of any kind.
  p.cone_memo = o.plan_cache && o.cone_memo;
  p.cone_memo_budget_bytes = o.cone_memo_budget_bytes;
  p.shared_cone_memo = cones;
  p.cone_target_gates = o.cone_target_gates;
  p.pool = pool;
  return p;
}

/// Resolves PartyOptions::threads into the endpoint's worker pool: null when
/// serial, the WarmState's persistent pool on a warm run, a freshly owned
/// pool (stored into `owned`) otherwise. Used in member-initializer position
/// after warm_/owned_pool_ are set.
WorkPool* resolve_pool(const PartyOptions& opts, WarmState* warm,
                       std::unique_ptr<WorkPool>& owned) {
  const std::size_t n = WorkPool::resolve_threads(opts.threads);
  if (n <= 1) return nullptr;
  if (warm != nullptr) return warm->pool(n);
  owned = std::make_unique<WorkPool>(n);
  return owned.get();
}

/// Validates the option/warm-state combination for one endpoint and passes
/// the warm pointer through (used in member-initializer position).
WarmState* checked_warm(const netlist::Netlist& nl, const PartyOptions& opts, bool halt_driven,
                        std::uint64_t cycle_count, WarmState* warm, Role role) {
  if (opts.halt_wire && *opts.halt_wire >= nl.num_wires()) {
    throw std::invalid_argument("party: halt wire out of range");
  }
  if (halt_driven && opts.mode == Mode::Conventional) {
    throw std::invalid_argument(
        "party: conventional mode cannot observe the halt wire; provide fixed_cycles");
  }
  if (cycle_count == 0) throw std::invalid_argument("party: zero cycles requested");
  if (warm != nullptr && warm->role() != role) {
    throw std::invalid_argument(std::string("party: ") + role_name(role) +
                                " endpoint handed a " + role_name(warm->role()) +
                                "-role WarmState");
  }
  if (warm != nullptr && warm->ot_backend() != opts.ot_backend) {
    // An Ideal-built WarmState holds no extension state: handing it to an
    // Iknp endpoint would silently redo the base OTs every run (and the
    // reverse would silently drop warm state), so mismatches fail loudly.
    throw std::invalid_argument("party: WarmState OT backend differs from PartyOptions");
  }
  if (warm != nullptr && opts.ot_backend == gc::OtBackend::Precomp &&
      warm->ot_pool() != opts.ot_pool) {
    // The refill schedule is a deterministic function of the pool target;
    // running a pool built for one target under another would desync it
    // from the peer mid-protocol instead of at construction.
    throw std::invalid_argument("party: WarmState OT pool size differs from PartyOptions");
  }
  return warm;
}

/// The per-cycle termination decision, computed from public data only. Both
/// parties run it against their own planner; determinism keeps them agreed.
bool planner_decide_final(const Planner& planner, const PartyOptions& opts, bool halt_driven,
                          std::uint64_t cycle, std::uint64_t cc) {
  bool is_final = !halt_driven && cycle + 1 == cc;
  if (opts.halt_wire && opts.mode == Mode::SkipGate) {
    if (!planner.wire_public(*opts.halt_wire)) {
      throw std::runtime_error(
          "skipgate: halt signal became secret (secret program counter); "
          "run with fixed_cycles instead");
    }
    if (planner.wire_value(*opts.halt_wire)) is_final = true;
  }
  if (halt_driven && !is_final && cycle + 1 == cc) {
    throw std::runtime_error("skipgate: max_cycles reached without halt");
  }
  return is_final;
}

}  // namespace

// ---------------------------------------------------------------------------
// WarmState
// ---------------------------------------------------------------------------

WarmState::WarmState(Role role) : WarmState(role, Options{}) {}

WarmState::WarmState(Role role, const Options& opts)
    : role_(role),
      opts_(opts),
      plan_cache_(opts.plan_cache_budget_bytes),
      cone_memo_(opts.cone_memo_budget_bytes) {
  if (opts_.ot_backend == gc::OtBackend::Iknp) {
    if (role_ == Role::Garbler) {
      ot_sender_ = std::make_unique<gc::IknpSenderState>(opts_.seed);
    } else {
      ot_receiver_ = std::make_unique<gc::IknpReceiverState>(opts_.seed);
    }
  } else if (opts_.ot_backend == gc::OtBackend::Precomp) {
    // The pool embeds its own IKNP state, so one handle carries both the
    // banked random OTs and the warm base-OT state across runs.
    if (role_ == Role::Garbler) {
      otpre_sender_ = std::make_unique<gc::RandomOtPoolSender>(opts_.seed, opts_.ot_pool);
    } else {
      otpre_receiver_ = std::make_unique<gc::RandomOtPoolReceiver>(opts_.seed, opts_.ot_pool);
    }
  }
}

WarmState::~WarmState() = default;

std::size_t WarmState::ot_pool_available() const {
  if (otpre_sender_ != nullptr) return otpre_sender_->available();
  if (otpre_receiver_ != nullptr) return otpre_receiver_->available();
  return 0;
}

bool WarmState::ot_refill_pending() const {
  if (otpre_sender_ != nullptr) return otpre_sender_->available() < otpre_sender_->low_water();
  if (otpre_receiver_ != nullptr) {
    return otpre_receiver_->available() < otpre_receiver_->low_water();
  }
  return false;
}

WorkPool* WarmState::pool(std::size_t threads) {
  if (pool_ == nullptr || pool_->threads() != threads) {
    pool_ = std::make_unique<WorkPool>(threads);
  }
  return pool_.get();
}

void WarmState::reset_ot() {
  // Re-derive from the same private seed: both parties resetting after a
  // shared abort re-base consistently (and deterministically for tests); a
  // one-sided reset is detected by the next batch's header/check block.
  if (ot_sender_ != nullptr) ot_sender_ = std::make_unique<gc::IknpSenderState>(opts_.seed);
  if (ot_receiver_ != nullptr) {
    ot_receiver_ = std::make_unique<gc::IknpReceiverState>(opts_.seed);
  }
  // Precomp: drop banked (possibly half-consumed) random OTs along with the
  // embedded base state — the next run starts from an empty pool and
  // re-bases inside its first refill.
  if (otpre_sender_ != nullptr) {
    otpre_sender_ = std::make_unique<gc::RandomOtPoolSender>(opts_.seed, opts_.ot_pool);
  }
  if (otpre_receiver_ != nullptr) {
    otpre_receiver_ = std::make_unique<gc::RandomOtPoolReceiver>(opts_.seed, opts_.ot_pool);
  }
}

// ---------------------------------------------------------------------------
// GarblerEndpoint
// ---------------------------------------------------------------------------

GarblerEndpoint::GarblerEndpoint(const netlist::Netlist& nl, const PartyOptions& opts,
                                 gc::Transport& tx, WarmState* warm)
    : nl_(nl),
      opts_(opts),
      halt_driven_(opts.halt_wire.has_value() && !opts.fixed_cycles.has_value()),
      cycle_count_(opts.fixed_cycles ? *opts.fixed_cycles : opts.max_cycles),
      warm_(checked_warm(nl, opts, halt_driven_, cycle_count_, warm, Role::Garbler)),
      tx_(&tx),
      pool_(resolve_pool(opts, warm_, owned_pool_)),
      planner_(nl, make_planner_opts(opts, warm ? &warm->plan_cache_ : nullptr,
                                     warm ? &warm->cone_memo_ : nullptr, pool_)),
      session_(std::make_unique<GarblerSession>(nl, opts.mode, opts.scheme, opts.own_seed(), tx,
                                                opts.ot_backend,
                                                warm ? warm->ot_sender_.get() : nullptr, pool_,
                                                warm ? warm->otpre_sender_.get() : nullptr,
                                                opts.ot_pool)) {}

GarblerEndpoint::~GarblerEndpoint() = default;

bool GarblerEndpoint::decide_final(std::uint64_t cycle) const {
  return planner_decide_final(planner_, opts_, halt_driven_, cycle, cycle_count_);
}

void GarblerEndpoint::start(const netlist::BitVec& alice_bits, const netlist::BitVec& pub_bits,
                            const StreamProvider* streams) {
  streams_ = streams;
  alice_bits_ = alice_bits;
  pub_bits_ = pub_bits;
  planner_.reset(pub_bits_);
  session_->reset(alice_bits_, pub_bits_);
}

void GarblerEndpoint::begin(std::uint64_t cycle) {
  BitVec sp;
  if (streams_ != nullptr && streams_->pub) sp = streams_->pub(cycle);
  planner_.begin_cycle(sp);
  BitVec sa;
  if (streams_ != nullptr && streams_->alice) sa = streams_->alice(cycle);
  session_->begin_cycle(sa, sp);
}

bool GarblerEndpoint::work(std::uint64_t cycle) {
  A2G_SPAN("garbler.work", "party");
  A2G_HIST_TIMER("party.garbler.work_ns");
  bool is_final;
  {
    A2G_SPAN("garbler.plan", "party");
    planner_.forward();
    is_final = decide_final(cycle);
    plan_ = planner_.finish(is_final);
  }
  {
    A2G_SPAN("garbler.garble", "party");
    session_->garble_cycle(plan_);
  }
  stats_.cycles++;
  stats_.non_xor_slots += planner_.non_free_per_cycle();
  stats_.garbled_non_xor += plan_.emitted;
  if (is_final) result_.final_cycle = cycle;
  return is_final;
}

void GarblerEndpoint::sample() {
  if (plan_.sample) result_.sampled_outputs.push_back(session_->decode_outputs(plan_));
}

void GarblerEndpoint::latch() {
  planner_.latch(plan_);
  session_->latch(plan_);
}

void GarblerEndpoint::ot_refill() {
  A2G_SPAN("garbler.ot_refill", "party");
  session_->ot_maintain();
}

RunResult GarblerEndpoint::finish() {
  // The protocol is over; a buffering transport may still hold our last
  // sends (e.g. final tables the peer has yet to evaluate) and no own-recv
  // will come along to flush them implicitly.
  tx_->flush();
  stats_.threads = pool_ != nullptr ? pool_->threads() : 1;
  stats_.skipped_non_xor = stats_.non_xor_slots - stats_.garbled_non_xor;
  stats_.plan_cache_hits = planner_.cache_hits();
  stats_.plan_cache_misses = planner_.cache_misses();
  stats_.cone_hits = planner_.cone_hits();
  stats_.cone_misses = planner_.cone_misses();
  // The sender side is the authoritative OT ledger (counts are identical on
  // the receiver side by construction).
  const gc::OtPhaseStats& o = session_->ot_stats();
  stats_.ot_choices += o.choices;
  stats_.ot_batches += o.batches;
  stats_.ot_base_ots += o.base_ots;
  stats_.ot_wall_ns += o.wall_ns;
  stats_.ot_offline_wall_ns += o.offline_wall_ns;
  stats_.ot_online_bytes += o.online_bytes;
  stats_.table_digest = session_->table_digest();
  result_.stats = stats_;
  if (!result_.sampled_outputs.empty()) result_.final_outputs = result_.sampled_outputs.back();
  return std::move(result_);
}

void GarblerEndpoint::abort() noexcept {
  if (warm_ != nullptr) warm_->reset_ot();
}

RunResult GarblerEndpoint::run(const netlist::BitVec& alice_bits, const netlist::BitVec& pub_bits,
                               const StreamProvider* streams) {
  try {
    start(alice_bits, pub_bits, streams);
    for (std::uint64_t cycle = 0;; ++cycle) {
      begin(cycle);
      const bool is_final = work(cycle);
      sample();
      if (is_final) break;
      latch();
      ot_refill();
    }
    // finish() can still fail (its flush may find the peer gone), and a
    // failed flush desyncs warm OT state like any other abort.
    return finish();
  } catch (...) {
    abort();
    throw;
  }
}

// ---------------------------------------------------------------------------
// EvaluatorEndpoint
// ---------------------------------------------------------------------------

EvaluatorEndpoint::EvaluatorEndpoint(const netlist::Netlist& nl, const PartyOptions& opts,
                                     gc::Transport& tx, WarmState* warm)
    : nl_(nl),
      opts_(opts),
      halt_driven_(opts.halt_wire.has_value() && !opts.fixed_cycles.has_value()),
      cycle_count_(opts.fixed_cycles ? *opts.fixed_cycles : opts.max_cycles),
      warm_(checked_warm(nl, opts, halt_driven_, cycle_count_, warm, Role::Evaluator)),
      tx_(&tx),
      pool_(resolve_pool(opts, warm_, owned_pool_)),
      planner_(std::make_unique<Planner>(
          nl, make_planner_opts(opts, warm ? &warm->plan_cache_ : nullptr,
                                warm ? &warm->cone_memo_ : nullptr, pool_))),
      session_(std::make_unique<EvaluatorSession>(nl, opts.mode, opts.scheme, opts.own_seed(),
                                                  tx, opts.ot_backend,
                                                  warm ? warm->ot_receiver_.get() : nullptr,
                                                  pool_,
                                                  warm ? warm->otpre_receiver_.get() : nullptr,
                                                  opts.ot_pool)) {}

EvaluatorEndpoint::EvaluatorEndpoint(const netlist::Netlist& nl, const PartyOptions& opts,
                                     gc::Transport& tx, WarmState* warm,
                                     const GarblerEndpoint& leader)
    : nl_(nl),
      opts_(opts),
      halt_driven_(opts.halt_wire.has_value() && !opts.fixed_cycles.has_value()),
      cycle_count_(opts.fixed_cycles ? *opts.fixed_cycles : opts.max_cycles),
      warm_(checked_warm(nl, opts, halt_driven_, cycle_count_, warm, Role::Evaluator)),
      tx_(&tx),
      leader_(&leader),
      pool_(resolve_pool(opts, warm_, owned_pool_)),
      session_(std::make_unique<EvaluatorSession>(nl, opts.mode, opts.scheme, opts.own_seed(),
                                                  tx, opts.ot_backend,
                                                  warm ? warm->ot_receiver_.get() : nullptr,
                                                  pool_,
                                                  warm ? warm->otpre_receiver_.get() : nullptr,
                                                  opts.ot_pool)) {
  if (&leader.nl_ != &nl) {
    throw std::invalid_argument("party: plan-following evaluator bound to a different netlist");
  }
}

EvaluatorEndpoint::~EvaluatorEndpoint() = default;

bool EvaluatorEndpoint::decide_final(std::uint64_t cycle) const {
  return planner_decide_final(*planner_, opts_, halt_driven_, cycle, cycle_count_);
}

void EvaluatorEndpoint::start_request(const netlist::BitVec& bob_bits,
                                      const netlist::BitVec& pub_bits,
                                      const StreamProvider* streams) {
  streams_ = streams;
  bob_bits_ = bob_bits;
  pub_bits_ = pub_bits;
  if (planner_ != nullptr) planner_->reset(pub_bits_);
  session_->ot_reset(bob_bits_);
}

void EvaluatorEndpoint::start_finish() { session_->reset(); }

void EvaluatorEndpoint::begin_request(std::uint64_t cycle) {
  if (planner_ != nullptr) {
    BitVec sp;
    if (streams_ != nullptr && streams_->pub) sp = streams_->pub(cycle);
    planner_->begin_cycle(sp);
  }
  // The choice bits are copied into the OT queue synchronously; nothing here
  // outlives the call.
  BitVec sb;
  if (streams_ != nullptr && streams_->bob) sb = streams_->bob(cycle);
  session_->ot_begin(sb);
}

void EvaluatorEndpoint::begin_finish() { session_->begin_cycle(); }

bool EvaluatorEndpoint::work(std::uint64_t cycle) {
  A2G_SPAN("evaluator.work", "party");
  A2G_HIST_TIMER("party.evaluator.work_ns");
  bool is_final;
  std::size_t non_free;
  if (leader_ != nullptr) {
    // Plan-following mode: adopt the co-located leader's plan for this cycle
    // (it aliases the leader's planner storage and is consumed before the
    // leader's next work()). The leader already made the termination
    // decision and its safety checks.
    plan_ = leader_->plan();
    is_final = plan_.is_final;
    non_free = leader_->planner_.non_free_per_cycle();
  } else {
    planner_->forward();
    is_final = decide_final(cycle);
    plan_ = planner_->finish(is_final);
    non_free = planner_->non_free_per_cycle();
  }
  {
    A2G_SPAN("evaluator.eval", "party");
    session_->eval_cycle(plan_, cycle);
  }
  stats_.cycles++;
  stats_.non_xor_slots += non_free;
  stats_.garbled_non_xor += plan_.emitted;
  if (is_final) result_.final_cycle = cycle;
  return is_final;
}

void EvaluatorEndpoint::sample() {
  if (plan_.sample) session_->send_outputs(plan_);
}

void EvaluatorEndpoint::latch() {
  if (planner_ != nullptr) planner_->latch(plan_);
  session_->latch(plan_);
}

void EvaluatorEndpoint::ot_refill_request() {
  A2G_SPAN("evaluator.ot_refill_request", "party");
  session_->ot_maintain_request();
}

void EvaluatorEndpoint::ot_refill_finish() {
  A2G_SPAN("evaluator.ot_refill_finish", "party");
  session_->ot_maintain_finish();
}

RunResult EvaluatorEndpoint::finish() {
  // The final cycle's output labels are the evaluator's last sends; flush
  // them or a buffering transport leaves the garbler's decode waiting.
  tx_->flush();
  stats_.threads = pool_ != nullptr ? pool_->threads() : 1;
  stats_.skipped_non_xor = stats_.non_xor_slots - stats_.garbled_non_xor;
  if (planner_ != nullptr) {
    stats_.plan_cache_hits = planner_->cache_hits();
    stats_.plan_cache_misses = planner_->cache_misses();
    stats_.cone_hits = planner_->cone_hits();
    stats_.cone_misses = planner_->cone_misses();
  }
  const gc::OtPhaseStats& o = session_->ot_stats();
  stats_.ot_choices += o.choices;
  stats_.ot_batches += o.batches;
  stats_.ot_base_ots += o.base_ots;
  stats_.ot_wall_ns += o.wall_ns;
  stats_.ot_offline_wall_ns += o.offline_wall_ns;
  stats_.ot_online_bytes += o.online_bytes;
  stats_.table_digest = session_->table_digest();
  result_.stats = stats_;
  return std::move(result_);
}

void EvaluatorEndpoint::abort() noexcept {
  if (warm_ != nullptr) warm_->reset_ot();
}

RunResult EvaluatorEndpoint::run(const netlist::BitVec& bob_bits, const netlist::BitVec& pub_bits,
                                 const StreamProvider* streams) {
  try {
    start_request(bob_bits, pub_bits, streams);
    start_finish();
    for (std::uint64_t cycle = 0;; ++cycle) {
      begin_request(cycle);
      begin_finish();
      const bool is_final = work(cycle);
      sample();
      if (is_final) break;
      latch();
      ot_refill_request();
      ot_refill_finish();
    }
    return finish();  // the final flush can fail too; see GarblerEndpoint::run
  } catch (...) {
    abort();
    throw;
  }
}

}  // namespace arm2gc::core
