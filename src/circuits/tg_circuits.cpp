#include "circuits/tg_circuits.h"

#include <stdexcept>

#include "builder/circuit_builder.h"
#include "builder/stdlib.h"
#include "circuits/gf_tower.h"
#include "circuits/reference.h"
#include "netlist/opt.h"

namespace arm2gc::circuits {

namespace {

using builder::Bus;
using builder::CircuitBuilder;
using builder::Wire;
using netlist::BitVec;
using netlist::Dff;
using netlist::Owner;

BitVec pad_bits(const BitVec& v, std::size_t n) {
  BitVec r = v;
  r.resize(n, false);
  return r;
}

std::vector<std::uint64_t> words_from_bits(const BitVec& bits) {
  std::vector<std::uint64_t> words((bits.size() + 63) / 64, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) words[i / 64] |= 1ull << (i % 64);
  }
  return words;
}

std::size_t count_width(std::size_t max_value) {
  std::size_t w = 1;
  while ((1ull << w) <= max_value) ++w;
  return w;
}

/// Rotate-left of a lane bus: result bit i carries input bit (i - n) mod w.
Bus rotl_bus(const Bus& in, std::size_t n) {
  const std::size_t w = in.size();
  Bus out(w, Wire{});
  for (std::size_t i = 0; i < w; ++i) out[i] = in[(i + w - n % w) % w];
  return out;
}

Bus byte_of(const Bus& bus, std::size_t i) {
  return Bus(bus.begin() + static_cast<std::ptrdiff_t>(8 * i),
             bus.begin() + static_cast<std::ptrdiff_t>(8 * i + 8));
}

Bus concat(const std::vector<Bus>& parts) {
  Bus out;
  for (const Bus& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

/// xtime: multiplication by 2 in the AES field (linear, free).
Bus aes_mul2(CircuitBuilder& cb, const Bus& b) {
  Bus out(8, cb.c0());
  for (int i = 0; i < 8; ++i) {
    Wire w = i > 0 ? b[static_cast<std::size_t>(i - 1)] : cb.c0();
    if ((0x1bu >> i) & 1u) w = cb.xor_(w, b[7]);
    out[static_cast<std::size_t>(i)] = w;
  }
  return out;
}

}  // namespace

TgRun run_instance(const TgInstance& inst, core::Mode mode, gc::Scheme scheme) {
  core::RunOptions opts;
  opts.mode = mode;
  opts.scheme = scheme;
  opts.fixed_cycles = inst.cycles;
  core::SkipGateDriver driver(inst.nl, opts);
  const bool has_streams = inst.streams.alice || inst.streams.bob || inst.streams.pub;
  const core::RunResult r =
      driver.run(inst.alice, inst.bob, inst.pub, has_streams ? &inst.streams : nullptr);
  TgRun out;
  out.results = inst.decode ? inst.decode(r.sampled_outputs) : std::vector<std::uint64_t>{};
  out.stats = r.stats;
  return out;
}

TgInstance tg_sum(std::size_t nbits, const BitVec& a, const BitVec& b) {
  TgInstance inst;
  inst.name = "Sum " + std::to_string(nbits);
  CircuitBuilder cb;
  const auto carry = cb.make_dff();
  const Wire wa = cb.input(Owner::Alice, 0, /*streamed=*/true, "a");
  const Wire wb = cb.input(Owner::Bob, 0, /*streamed=*/true, "b");
  const auto fa = builder::full_adder(cb, wa, wb, cb.dff_out(carry));
  cb.set_dff_d(carry, fa.carry);
  cb.output(fa.sum, "sum");
  cb.set_outputs_every_cycle(true);
  inst.nl = cb.take();
  inst.cycles = nbits;
  const BitVec ab = pad_bits(a, nbits);
  const BitVec bb = pad_bits(b, nbits);
  inst.streams.alice = [ab](std::uint64_t c) { return BitVec{ab[c]}; };
  inst.streams.bob = [bb](std::uint64_t c) { return BitVec{bb[c]}; };
  inst.decode = [nbits](const std::vector<BitVec>& sampled) {
    BitVec bits(nbits);
    for (std::size_t c = 0; c < nbits; ++c) bits[c] = sampled[c][0];
    return words_from_bits(bits);
  };
  return inst;
}

TgInstance tg_compare(std::size_t nbits, const BitVec& a, const BitVec& b) {
  TgInstance inst;
  inst.name = "Compare " + std::to_string(nbits);
  CircuitBuilder cb;
  const auto lt = cb.make_dff();
  const Wire wa = cb.input(Owner::Alice, 0, /*streamed=*/true, "a");
  const Wire wb = cb.input(Owner::Bob, 0, /*streamed=*/true, "b");
  const Wire next = cb.mux(cb.xor_(wa, wb), wb, cb.dff_out(lt));
  cb.set_dff_d(lt, next);
  cb.output(next, "a_lt_b");
  inst.nl = cb.take();
  inst.cycles = nbits;
  const BitVec ab = pad_bits(a, nbits);
  const BitVec bb = pad_bits(b, nbits);
  inst.streams.alice = [ab](std::uint64_t c) { return BitVec{ab[c]}; };
  inst.streams.bob = [bb](std::uint64_t c) { return BitVec{bb[c]}; };
  inst.decode = [](const std::vector<BitVec>& sampled) {
    return std::vector<std::uint64_t>{sampled.back()[0] ? 1ull : 0ull};
  };
  return inst;
}

TgInstance tg_hamming(std::size_t nbits, const BitVec& a, const BitVec& b) {
  TgInstance inst;
  inst.name = "Hamming " + std::to_string(nbits);
  const std::size_t w = count_width(nbits);
  CircuitBuilder cb;
  const auto cnt = cb.make_dff_bus(w);
  const Wire wa = cb.input(Owner::Alice, 0, /*streamed=*/true, "a");
  const Wire wb = cb.input(Owner::Bob, 0, /*streamed=*/true, "b");
  const Wire d = cb.xor_(wa, wb);
  const Bus cur = cb.dff_out_bus(cnt);
  Bus next(w, Wire{});
  Wire carry = d;
  for (std::size_t i = 0; i < w; ++i) {
    next[i] = cb.xor_(cur[i], carry);
    if (i + 1 < w) carry = cb.and_(cur[i], carry);
  }
  cb.set_dff_d_bus(cnt, next);
  cb.output_bus(next, "dist");
  inst.nl = cb.take();
  inst.cycles = nbits;
  const BitVec ab = pad_bits(a, nbits);
  const BitVec bb = pad_bits(b, nbits);
  inst.streams.alice = [ab](std::uint64_t c) { return BitVec{ab[c]}; };
  inst.streams.bob = [bb](std::uint64_t c) { return BitVec{bb[c]}; };
  inst.decode = [](const std::vector<BitVec>& sampled) {
    return words_from_bits(sampled.back());
  };
  return inst;
}

TgInstance tg_hamming_tree(std::size_t nbits, const BitVec& a, const BitVec& b) {
  TgInstance inst;
  inst.name = "HammingTree " + std::to_string(nbits);
  CircuitBuilder cb;
  const Bus ba = cb.input_bus(Owner::Alice, nbits, 0, false, "a");
  const Bus bb = cb.input_bus(Owner::Bob, nbits, 0, false, "b");
  const Bus d = builder::xor_bus(cb, ba, bb);
  cb.output_bus(builder::popcount(cb, d), "dist");
  inst.nl = cb.take();
  netlist::sweep_dead_gates(inst.nl);
  inst.cycles = 1;
  inst.alice = pad_bits(a, nbits);
  inst.bob = pad_bits(b, nbits);
  inst.decode = [](const std::vector<BitVec>& sampled) {
    return words_from_bits(sampled.back());
  };
  return inst;
}

TgInstance tg_mult32(std::uint32_t a, std::uint32_t b) {
  TgInstance inst;
  inst.name = "Mult 32";
  CircuitBuilder cb;
  const auto acc = cb.make_dff_bus(32);
  const auto ra = cb.make_dff_bus(32, Dff::Init::AliceBit, 0);
  const auto rb = cb.make_dff_bus(32, Dff::Init::BobBit, 0);
  const Bus va = cb.dff_out_bus(ra);
  const Bus vb = cb.dff_out_bus(rb);
  const Bus vacc = cb.dff_out_bus(acc);
  Bus pp(32, Wire{});
  for (std::size_t i = 0; i < 32; ++i) pp[i] = cb.and_(va[i], vb[0]);
  const Bus sum = builder::add(cb, vacc, pp);
  cb.set_dff_d_bus(acc, sum);
  cb.set_dff_d_bus(ra, builder::shl_const(cb, va, 1));
  cb.set_dff_d_bus(rb, builder::lshr_const(cb, vb, 1));
  cb.output_bus(sum, "product");
  inst.nl = cb.take();
  netlist::sweep_dead_gates(inst.nl);
  inst.cycles = 32;
  BitVec ab(32), bb(32);
  for (int i = 0; i < 32; ++i) {
    ab[static_cast<std::size_t>(i)] = ((a >> i) & 1u) != 0;
    bb[static_cast<std::size_t>(i)] = ((b >> i) & 1u) != 0;
  }
  inst.alice = ab;
  inst.bob = bb;
  inst.decode = [](const std::vector<BitVec>& sampled) {
    return words_from_bits(sampled.back());
  };
  return inst;
}

TgInstance tg_matmult(std::size_t n, const std::vector<std::uint32_t>& a,
                      const std::vector<std::uint32_t>& b) {
  if (a.size() != n * n || b.size() != n * n) {
    throw std::invalid_argument("tg_matmult: matrix size mismatch");
  }
  TgInstance inst;
  inst.name = "MatrixMult" + std::to_string(n) + "x" + std::to_string(n) + " 32";
  CircuitBuilder cb;
  const auto acc = cb.make_dff_bus(32);
  const Bus wa = cb.input_bus(Owner::Alice, 32, 0, /*streamed=*/true, "a");
  const Bus wb = cb.input_bus(Owner::Bob, 32, 0, /*streamed=*/true, "b");
  const Wire first = cb.input(Owner::Public, 0, /*streamed=*/true, "first");
  const Bus p = builder::mul_lower(cb, wa, wb, 32);
  const Bus macc = builder::add(cb, cb.dff_out_bus(acc), p);
  const Bus next = builder::mux_bus(cb, first, p, macc);
  cb.set_dff_d_bus(acc, next);
  cb.output_bus(next, "acc");
  cb.set_outputs_every_cycle(true);
  inst.nl = cb.take();
  netlist::sweep_dead_gates(inst.nl);
  inst.cycles = n * n * n;

  auto word_bits = [](std::uint32_t v) {
    BitVec bits(32);
    for (int i = 0; i < 32; ++i) bits[static_cast<std::size_t>(i)] = ((v >> i) & 1u) != 0;
    return bits;
  };
  inst.streams.alice = [a, n, word_bits](std::uint64_t c) {
    const std::size_t i = c / (n * n);
    const std::size_t k = c % n;
    return word_bits(a[i * n + k]);
  };
  inst.streams.bob = [b, n, word_bits](std::uint64_t c) {
    const std::size_t j = (c / n) % n;
    const std::size_t k = c % n;
    return word_bits(b[k * n + j]);
  };
  inst.streams.pub = [n](std::uint64_t c) { return BitVec{c % n == 0}; };
  inst.decode = [n](const std::vector<BitVec>& sampled) {
    std::vector<std::uint64_t> out;
    for (std::size_t c = n - 1; c < sampled.size(); c += n) {
      out.push_back(words_from_bits(sampled[c])[0]);
    }
    return out;
  };
  return inst;
}

TgInstance tg_sha3_256(const std::vector<std::uint8_t>& message) {
  constexpr std::size_t kRateBits = 1088;
  if (message.size() > 135) throw std::invalid_argument("tg_sha3_256: single block only");
  TgInstance inst;
  inst.name = "SHA3 256";
  // Pad to the 136-byte rate (0x06 ... 0x80 domain padding).
  std::vector<std::uint8_t> padded = message;
  padded.push_back(0x06);
  padded.resize(136, 0x00);
  padded.back() ^= 0x80;
  BitVec msg_bits(kRateBits);
  for (std::size_t i = 0; i < kRateBits; ++i) {
    msg_bits[i] = ((padded[i / 8] >> (i % 8)) & 1u) != 0;
  }

  CircuitBuilder cb;
  // 25 lanes x 64 bits; the rate region holds Alice's padded message.
  std::vector<std::vector<CircuitBuilder::DffHandle>> lanes(25);
  for (std::size_t l = 0; l < 25; ++l) {
    if (64 * (l + 1) <= kRateBits) {
      lanes[l] = cb.make_dff_bus(64, Dff::Init::AliceBit, static_cast<std::uint32_t>(64 * l));
    } else {
      lanes[l] = cb.make_dff_bus(64, Dff::Init::Zero);
    }
  }
  const Bus rc = cb.input_bus(Owner::Public, 64, 0, /*streamed=*/true, "rc");

  std::vector<Bus> a(25);
  for (std::size_t l = 0; l < 25; ++l) a[l] = cb.dff_out_bus(lanes[l]);

  // Theta.
  std::vector<Bus> c(5);
  for (int x = 0; x < 5; ++x) {
    Bus acc = a[static_cast<std::size_t>(x)];
    for (int y = 1; y < 5; ++y) acc = builder::xor_bus(cb, acc, a[static_cast<std::size_t>(x + 5 * y)]);
    c[static_cast<std::size_t>(x)] = acc;
  }
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      const Bus d = builder::xor_bus(cb, c[static_cast<std::size_t>((x + 4) % 5)],
                                     rotl_bus(c[static_cast<std::size_t>((x + 1) % 5)], 1));
      a[static_cast<std::size_t>(x + 5 * y)] =
          builder::xor_bus(cb, a[static_cast<std::size_t>(x + 5 * y)], d);
    }
  }
  // Rho + Pi.
  static constexpr unsigned kRho[25] = {0,  1,  62, 28, 27, 36, 44, 6,  55, 20, 3,  10, 43,
                                        25, 39, 41, 45, 15, 21, 8,  18, 2,  61, 56, 14};
  std::vector<Bus> bl(25);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      const int nx = y;
      const int ny = (2 * x + 3 * y) % 5;
      bl[static_cast<std::size_t>(nx + 5 * ny)] =
          rotl_bus(a[static_cast<std::size_t>(x + 5 * y)], kRho[x + 5 * y]);
    }
  }
  // Chi (+ Iota on lane 0).
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      const Bus& b0 = bl[static_cast<std::size_t>(x + 5 * y)];
      const Bus& b1 = bl[static_cast<std::size_t>((x + 1) % 5 + 5 * y)];
      const Bus& b2 = bl[static_cast<std::size_t>((x + 2) % 5 + 5 * y)];
      Bus out(64, Wire{});
      for (std::size_t z = 0; z < 64; ++z) {
        out[z] = cb.xor_(b0[z], cb.andn_(b2[z], b1[z]));  // b0 ^ (~b1 & b2)
      }
      if (x == 0 && y == 0) out = builder::xor_bus(cb, out, rc);
      cb.set_dff_d_bus(lanes[static_cast<std::size_t>(x + 5 * y)], out);
      if (x + 5 * y < 4) cb.output_bus(out, "digest" + std::to_string(x + 5 * y));
    }
  }
  inst.nl = cb.take();
  netlist::sweep_dead_gates(inst.nl);
  inst.cycles = 24;
  inst.alice = msg_bits;
  inst.streams.pub = [](std::uint64_t cidx) {
    const std::uint64_t rcv = keccak_round_constants()[cidx];
    BitVec bits(64);
    for (int i = 0; i < 64; ++i) bits[static_cast<std::size_t>(i)] = ((rcv >> i) & 1u) != 0;
    return bits;
  };
  inst.decode = [](const std::vector<BitVec>& sampled) {
    return words_from_bits(sampled.back());
  };
  return inst;
}

TgInstance tg_aes128(const std::array<std::uint8_t, 16>& pt,
                     const std::array<std::uint8_t, 16>& key) {
  TgInstance inst;
  inst.name = "AES 128";
  CircuitBuilder cb;
  const auto state = cb.make_dff_bus(128, Dff::Init::AliceBit, 0);
  const auto keyreg = cb.make_dff_bus(128, Dff::Init::BobBit, 0);
  const Wire first = cb.input(Owner::Public, 0, /*streamed=*/true, "first");
  const Wire last = cb.input(Owner::Public, 1, /*streamed=*/true, "last");
  const Bus rcon = cb.input_bus(Owner::Public, 8, 2, /*streamed=*/true, "rcon");

  const Bus s = cb.dff_out_bus(state);
  const Bus k = cb.dff_out_bus(keyreg);

  // Round input: pt ^ k0 on the first cycle, the latched state afterwards.
  const Bus s_in = builder::mux_bus(cb, first, builder::xor_bus(cb, s, k), s);

  // SubBytes via the tower-field S-box.
  std::vector<Bus> sb(16);
  for (std::size_t i = 0; i < 16; ++i) sb[i] = build_sbox(cb, byte_of(s_in, i));

  // ShiftRows: out[r + 4c] = in[r + 4((c + r) % 4)].
  std::vector<Bus> sr(16);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t col = 0; col < 4; ++col) {
      sr[r + 4 * col] = sb[r + 4 * ((col + r) % 4)];
    }
  }

  // MixColumns (linear).
  std::vector<Bus> mc(16);
  for (std::size_t col = 0; col < 4; ++col) {
    const Bus& a0 = sr[4 * col];
    const Bus& a1 = sr[4 * col + 1];
    const Bus& a2 = sr[4 * col + 2];
    const Bus& a3 = sr[4 * col + 3];
    auto m2 = [&](const Bus& x) { return aes_mul2(cb, x); };
    auto m3 = [&](const Bus& x) { return builder::xor_bus(cb, aes_mul2(cb, x), x); };
    mc[4 * col] = builder::xor_bus(cb, builder::xor_bus(cb, m2(a0), m3(a1)),
                                   builder::xor_bus(cb, a2, a3));
    mc[4 * col + 1] = builder::xor_bus(cb, builder::xor_bus(cb, a0, m2(a1)),
                                       builder::xor_bus(cb, m3(a2), a3));
    mc[4 * col + 2] = builder::xor_bus(cb, builder::xor_bus(cb, a0, a1),
                                       builder::xor_bus(cb, m2(a2), m3(a3)));
    mc[4 * col + 3] = builder::xor_bus(cb, builder::xor_bus(cb, m3(a0), a1),
                                       builder::xor_bus(cb, a2, m2(a3)));
  }

  // On-the-fly key schedule: w_i are 4-byte groups of the key register.
  std::vector<Bus> kw(4);
  for (std::size_t i = 0; i < 4; ++i) {
    kw[i] = Bus(k.begin() + static_cast<std::ptrdiff_t>(32 * i),
                k.begin() + static_cast<std::ptrdiff_t>(32 * i + 32));
  }
  // RotWord + SubWord on w3; rcon into the first byte of the group.
  std::vector<Bus> w3b(4);
  for (std::size_t i = 0; i < 4; ++i) w3b[i] = build_sbox(cb, byte_of(kw[3], (i + 1) % 4));
  w3b[0] = builder::xor_bus(cb, w3b[0], rcon);
  const Bus t = concat(w3b);
  std::vector<Bus> kn(4);
  kn[0] = builder::xor_bus(cb, kw[0], t);
  kn[1] = builder::xor_bus(cb, kw[1], kn[0]);
  kn[2] = builder::xor_bus(cb, kw[2], kn[1]);
  kn[3] = builder::xor_bus(cb, kw[3], kn[2]);
  const Bus keynext = concat(kn);

  // AddRoundKey with the *next* round key; final round skips MixColumns.
  const Bus round_out = builder::mux_bus(cb, last, concat(sr), concat(mc));
  const Bus state_next = builder::xor_bus(cb, round_out, keynext);
  cb.set_dff_d_bus(state, state_next);
  cb.set_dff_d_bus(keyreg, keynext);
  cb.output_bus(state_next, "ct");

  inst.nl = cb.take();
  netlist::sweep_dead_gates(inst.nl);
  inst.cycles = 10;
  BitVec ptb(128), kb(128);
  for (std::size_t i = 0; i < 128; ++i) {
    ptb[i] = ((pt[i / 8] >> (i % 8)) & 1u) != 0;
    kb[i] = ((key[i / 8] >> (i % 8)) & 1u) != 0;
  }
  inst.alice = ptb;
  inst.bob = kb;
  inst.streams.pub = [](std::uint64_t c) {
    static constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                               0x20, 0x40, 0x80, 0x1b, 0x36};
    BitVec bits(10);
    bits[0] = c == 0;
    bits[1] = c == 9;
    for (int i = 0; i < 8; ++i) bits[static_cast<std::size_t>(2 + i)] = ((kRcon[c] >> i) & 1u) != 0;
    return bits;
  };
  inst.decode = [](const std::vector<BitVec>& sampled) {
    return words_from_bits(sampled.back());
  };
  return inst;
}

}  // namespace arm2gc::circuits
