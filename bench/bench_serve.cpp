// Serving-throughput bench: one GarblerService, N concurrent evaluator
// clients hammering it over loopback TCP. Two workloads bracket the serving
// envelope:
//   - hamming160: the ARM garbled processor on the Hamming-160 program —
//     the paper's headline workload, heavy per run;
//   - aes128: the hand-built AES-128 netlist — small per run, so connection
//     and warm-pool overheads dominate.
// Every client run must be byte-identical (same inputs, default seeds): the
// bench cross-checks outputs and table digests across all runs and fails on
// any divergence, so the numbers are never from a silently-wrong service.
//
//   ./bench_serve [--clients N] [--runs-per-client N] [--shards N]
//                 [--program hamming160|aes128|all] [--json BENCH_serve.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arm/arm2gc.h"
#include "bench_util.h"
#include "circuits/tg_circuits.h"
#include "programs/programs.h"
#include "serve/client.h"
#include "serve/service.h"

using namespace arm2gc;

namespace {

struct BenchArgs {
  std::size_t clients = 64;
  std::size_t runs_per_client = 2;  ///< >1 exercises the warm repeat path
  std::size_t shards = 4;
  std::string program = "all";
};

BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs a;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string f = argv[i];
    if (f == "--clients") a.clients = std::stoull(argv[i + 1]);
    if (f == "--runs-per-client") a.runs_per_client = std::stoull(argv[i + 1]);
    if (f == "--shards") a.shards = std::stoull(argv[i + 1]);
    if (f == "--program") a.program = argv[i + 1];
  }
  return a;
}

/// One servable workload: the spec the service registers plus everything a
/// client needs to run it. The owner keeps the netlist alive.
struct Workload {
  std::string name;
  serve::ProgramSpec spec;
  serve::ClientOptions copts;
  netlist::BitVec bob_bits;
  const core::StreamProvider* streams = nullptr;
  std::shared_ptr<void> owner;
};

Workload hamming160_workload() {
  const programs::Program prog = programs::hamming(5);
  auto machine = std::make_shared<arm::Arm2Gc>(prog.cfg, prog.words);
  const std::vector<std::uint32_t> alice = {0xDEADBEEF, 0x01234567, 0x89ABCDEF,
                                            0x0F0F0F0F, 0x55AA55AA};
  const std::vector<std::uint32_t> bob = {0xCAFEBABE, 0x76543210, 0xFEDCBA98,
                                          0xF0F0F0F0, 0xAA55AA55};
  Workload w;
  w.name = "hamming160";
  w.spec.name = w.name;
  w.spec.nl = &machine->cpu().nl;
  w.spec.opts = machine->party_options(core::Role::Garbler);
  w.spec.alice_bits = machine->alice_input_bits(alice);
  w.copts.program = w.name;
  w.copts.ot_backend = gc::OtBackend::Iknp;
  w.copts.halt_wire = machine->cpu().halt_wire;
  w.bob_bits = machine->bob_input_bits(bob);
  w.owner = machine;
  return w;
}

Workload aes128_workload() {
  const std::array<std::uint8_t, 16> pt = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                                           0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const std::array<std::uint8_t, 16> key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  auto inst = std::make_shared<circuits::TgInstance>(circuits::tg_aes128(pt, key));
  Workload w;
  w.name = "aes128";
  w.spec.name = w.name;
  w.spec.nl = &inst->nl;
  w.spec.opts.fixed_cycles = inst->cycles;
  w.spec.alice_bits = inst->alice;
  w.spec.pub_bits = inst->pub;
  w.spec.streams = &inst->streams;
  w.copts.program = w.name;
  w.copts.ot_backend = gc::OtBackend::Iknp;
  w.copts.fixed_cycles = inst->cycles;
  w.bob_bits = inst->bob;
  w.streams = &inst->streams;
  w.owner = inst;
  return w;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// Runs `clients` concurrent client threads against a fresh service hosting
/// this workload; returns false on any cross-run divergence.
bool run_workload(const Workload& w, const BenchArgs& a) {
  serve::ServiceOptions so;
  // Each client may still have its previous connection lingering server-side
  // (Drain phase, final flush) when its next run connects, so peak registered
  // connections approach 2x the client count.
  so.max_clients = a.clients * 2 + 8;
  so.shards = a.shards;
  so.warm_pool = std::min<std::size_t>(a.shards * 2, 16);
  serve::GarblerService service({w.spec}, so);
  service.start();
  const std::uint16_t port = service.port();

  std::vector<std::vector<double>> lat(a.clients);
  std::atomic<std::uint64_t> failures{0};
  serve::ClientResult first;  // reference result, taken from client 0 run 0
  std::atomic<bool> have_first{false};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(a.clients);
  for (std::size_t c = 0; c < a.clients; ++c) {
    threads.emplace_back([&, c] {
      core::WarmState::Options wopts;
      wopts.ot_backend = w.copts.ot_backend;
      wopts.ot_pool = w.copts.ot_pool;
      core::WarmState warm(core::Role::Evaluator, wopts);
      for (std::size_t r = 0; r < a.runs_per_client; ++r) {
        try {
          const auto s = std::chrono::steady_clock::now();
          const serve::ClientResult res = serve::run_client(
              "127.0.0.1", port, *w.spec.nl, w.copts, w.bob_bits, {}, w.streams, &warm);
          lat[c].push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - s)
                               .count());
          if (c == 0 && r == 0) {
            first = res;
            have_first.store(true, std::memory_order_release);
          } else if (have_first.load(std::memory_order_acquire) &&
                     (!(res.table_digest == first.table_digest) ||
                      res.outputs != first.outputs)) {
            failures.fetch_add(1);
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "[%s] client %zu run %zu failed: %s\n", w.name.c_str(), c, r,
                       e.what());
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  // Clients are done, but the service counts a run at WrapUp completion —
  // the last connection may still be flushing. Let accounting settle.
  const std::uint64_t want = static_cast<std::uint64_t>(a.clients) * a.runs_per_client;
  const auto settle_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.stats().runs_ok + service.stats().runs_failed < want &&
         std::chrono::steady_clock::now() < settle_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  service.stop();
  const serve::ServiceStats st = service.stats();

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const double p50 = percentile(all, 0.50);
  const double p99 = percentile(all, 0.99);
  const double runs_per_s = static_cast<double>(st.runs_ok) / wall_s;
  const double gates_per_s = static_cast<double>(st.gates_garbled) / wall_s;
  const std::uint64_t warm_total = st.warm_hits + st.warm_misses;
  const double warm_hit_ratio =
      warm_total == 0 ? 0.0 : static_cast<double>(st.warm_hits) / static_cast<double>(warm_total);

  benchutil::header(w.name + " serving (" + std::to_string(a.clients) + " clients x " +
                    std::to_string(a.runs_per_client) + " runs, " + std::to_string(a.shards) +
                    " shards)");
  std::printf("runs_ok %llu  runs_failed %llu  wall %.2fs\n",
              static_cast<unsigned long long>(st.runs_ok),
              static_cast<unsigned long long>(st.runs_failed), wall_s);
  std::printf("latency p50 %.1f ms  p99 %.1f ms  throughput %.2f runs/s  %s gates/s\n", p50,
              p99, runs_per_s, benchutil::num(static_cast<std::uint64_t>(gates_per_s)).c_str());
  std::printf("warm hits %llu / misses %llu (%.0f%% hit)  send-queue high water %s B\n",
              static_cast<unsigned long long>(st.warm_hits),
              static_cast<unsigned long long>(st.warm_misses), 100.0 * warm_hit_ratio,
              benchutil::num(st.send_queue_high_water).c_str());

  benchutil::JsonWriter& j = benchutil::json();
  if (j.enabled()) {
    const std::string p = "serve." + w.name;
    j.add(p + ".clients", static_cast<std::uint64_t>(a.clients));
    j.add(p + ".runs_per_client", static_cast<std::uint64_t>(a.runs_per_client));
    j.add(p + ".shards", static_cast<std::uint64_t>(a.shards));
    j.add(p + ".runs_ok", st.runs_ok);
    j.add(p + ".runs_failed", st.runs_failed);
    j.add(p + ".wall_s", wall_s);
    j.add(p + ".p50_ms", p50);
    j.add(p + ".p99_ms", p99);
    j.add(p + ".runs_per_sec", runs_per_s);
    j.add(p + ".gates_per_sec", gates_per_s);
    j.add(p + ".garbled_non_xor_per_run", first.garbled_non_xor);
    j.add(p + ".warm_hit_ratio", warm_hit_ratio);
    j.add(p + ".send_queue_high_water", st.send_queue_high_water);
    const std::uint64_t hc = std::thread::hardware_concurrency();
    j.add(p + ".hardware_concurrency", hc);
    if (static_cast<std::uint64_t>(a.clients) > hc) {
      // Provenance for readers of the committed JSON (the serve-side mirror
      // of BENCH_ablation.json's multicore_note): concurrent-client latency
      // is only meaningful relative to the recording host's core count.
      j.add(p + ".serving_note",
            std::string("clients exceed hardware_concurrency on the recording host, so "
                        "p50/p99 measure queueing under oversubscription, not service "
                        "latency; on a 1-vCPU runner every concurrent run time-slices one "
                        "core. runs/s and gates/s remain valid throughput figures. The CI "
                        "bench-serve-json artifact (multi-vCPU runner) is the canonical "
                        "latency record."));
    }
  }

  const std::uint64_t expected = static_cast<std::uint64_t>(a.clients) * a.runs_per_client;
  if (failures.load() != 0 || st.runs_ok != expected) {
    std::fprintf(stderr, "[%s] FAIL: %llu divergences/errors, %llu/%llu runs ok\n",
                 w.name.c_str(), static_cast<unsigned long long>(failures.load()),
                 static_cast<unsigned long long>(st.runs_ok),
                 static_cast<unsigned long long>(expected));
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::parse_args(argc, argv);
  const BenchArgs a = parse_bench_args(argc, argv);

  bool ok = true;
  if (a.program == "all" || a.program == "aes128") ok &= run_workload(aes128_workload(), a);
  if (a.program == "all" || a.program == "hamming160") {
    ok &= run_workload(hamming160_workload(), a);
  }
  if (!ok) return 1;
  return benchutil::finish();
}
