// Oblivious transfer for Bob's input labels: batched 1-out-of-2 OT endpoints
// behind the gc::Transport, selectable between two backends.
//
//   OtBackend::Ideal   the ideal-functionality stand-in (both labels travel
//                      as real frames and the receiver picks locally) — the
//                      protocol the repo used through PR 3, now batched.
//   OtBackend::Iknp    real semi-honest IKNP'03 OT extension: kappa = 128
//                      base OTs bootstrap per-column PRG streams; each batch
//                      of m choices costs the receiver one masked kappa x m
//                      bit matrix (m * 16 bytes) and the sender 2m hashed
//                      ciphertexts, with the column->row pivot done by the
//                      SSE/portable 128xN bit transpose (crypto/transpose.h)
//                      and the correlation-robust hashing by the batched
//                      fixed-key PiHash. Base OTs amortize across a warm
//                      session via the Iknp*State objects.
//   OtBackend::Precomp Beaver'95 precomputation on top of Iknp: random OTs
//                      are bulk-generated in large well-amortized IKNP
//                      batches into a role-scoped RandomOtPool (gc/otpre.h),
//                      and each online choice is served by a short
//                      derandomization frame instead of a kappa-column
//                      exchange. The per-choice online cost drops from the
//                      ~192 B IKNP floor to 32 B of masked pads plus an
//                      amortized correction-bit block.
//
// Both backends deliver exactly x0 ^ b*R for choice b, so everything above
// this interface — labels, garbled tables, outputs — is bit-identical across
// backends; only OT traffic and timing differ. All OT bytes are real framed
// blocks on the transport (accounted under Traffic::Ot); nothing is priced
// by constant any more.
//
// Message flow per batch (receiver first, matching the lock-step schedule):
//   receiver request():  [header]  [base: sid + seed pairs, first batch only]
//                        [check block]  [columns]
//   sender   flush():    [2m ciphertexts]
//   receiver finish():   (reads ciphertexts, fills queued destinations)
// The clear one-block header carries base-flag / batch ordinal / batch size
// so a state mismatch throws before any layout-dependent read (never blocks
// a threaded transport on bytes that will not come); the check block binds
// the base-OT session id, ordinal, size and the column streams' byte
// position, so two endpoints warmed in different pairings — or desynced by
// an aborted run, even one that died between a request() and its flush() —
// fail loudly instead of silently delivering wrong labels.
//
// Honesty notes (what a real deployment must change):
//  - The kappa base OTs ride the same in-process receiver-picks wiring as
//    the Ideal backend; a deployment swaps a Chou-Orlandi-style base OT in
//    here. The extension layer on top — where the per-input cost and the
//    semi-honest security structure live — is the real protocol.
//  - Determinism trumps secrecy in this reproduction: the driver seeds BOTH
//    parties' randomness from the one public RunOptions seed (exactly as it
//    does the garbler's secret offset R), so a party holding that seed could
//    reconstruct the peer's secrets from the transcript. The per-party
//    `seed` parameters on the sessions and Iknp*State exist so a deployment
//    can seed each side privately; only then are the Iknp frames shippable
//    to a real adversary.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/block.h"
#include "crypto/prf.h"
#include "crypto/rng.h"
#include "gc/transport.h"

namespace arm2gc::gc {

/// IKNP security parameter: base-OT count and extension-matrix width.
inline constexpr std::size_t kOtKappa = 128;

/// Default Precomp pool size: how many random OTs one refill batch
/// generates. Both parties must agree (the refill schedule is derived from
/// it); PartyOptions/ExecOptions carry it as `ot_pool`.
inline constexpr std::size_t kDefaultOtPoolBatch = 1024;

enum class OtBackend : std::uint8_t { Ideal, Iknp, Precomp };

/// Counters every OT endpoint keeps; surfaced through RunStats and the
/// bench OT-phase rows. `wall_ns`/`online_bytes` cover the online critical
/// path only; pool precomputation and refills land in `offline_wall_ns`
/// (always zero for Ideal/Iknp, whose every byte is online).
struct OtPhaseStats {
  std::uint64_t choices = 0;          ///< OTs completed (online choices served)
  std::uint64_t batches = 0;          ///< non-empty online batches flushed
  std::uint64_t base_ots = 0;         ///< base OTs executed (0 on a warm session)
  std::uint64_t wall_ns = 0;          ///< wall time inside online OT phases
  std::uint64_t offline_wall_ns = 0;  ///< wall time precomputing/refilling pools
  std::uint64_t online_bytes = 0;     ///< framed bytes on the online path
};

/// Byte-stream PRG over the AES-CTR generator: one IKNP column consumes its
/// stream in ceil(m/8)-byte slices per batch, staying in lock step with the
/// peer's copy of the same seed.
class PrgStream {
 public:
  explicit PrgStream(crypto::Block seed) : rng_(seed) {}

  void fill(std::uint8_t* out, std::size_t n) {
    // Drain any buffered tail first, then write whole blocks straight into
    // the destination (the dominant case: column strides are byte-aligned
    // slices of a long stream), staging only the final partial block.
    while (n > 0 && pos_ < 16) {
      *out++ = buf_[pos_++];
      --n;
    }
    while (n >= 16) {
      rng_.next_block().to_bytes(out);
      out += 16;
      n -= 16;
    }
    if (n > 0) {
      rng_.next_block().to_bytes(buf_.data());
      pos_ = 0;
      while (n > 0) {
        *out++ = buf_[pos_++];
        --n;
      }
    }
  }

 private:
  crypto::CtrRng rng_;
  std::array<std::uint8_t, 16> buf_{};
  std::size_t pos_ = 16;
};

class IknpOtSender;
class IknpOtReceiver;

/// Long-lived sender-side (Alice) IKNP state: the secret column-selection
/// bits s, the chosen base seeds' PRG streams and the batch/tweak counters.
/// One per garbler role; hand the same instance to successive runs of one
/// pairing (Arm2Gc::Session does) so the base phase runs once. Not
/// thread-safe; the threaded driver touches it from the garbler thread only.
class IknpSenderState {
 public:
  /// `seed` is the party's protocol seed; OT randomness is domain-separated
  /// from the label stream internally.
  explicit IknpSenderState(crypto::Block seed);

  [[nodiscard]] bool based() const { return based_; }

 private:
  friend class IknpOtSender;

  crypto::CtrRng rng_;
  bool based_ = false;
  std::array<std::uint8_t, kOtKappa> s_{};  ///< column choice bits
  crypto::Block s_block_{};                 ///< s packed into one Block
  crypto::Block sid_{};                     ///< base session id (from receiver)
  std::uint64_t batches_ = 0;
  std::uint64_t ot_counter_ = 0;  ///< hash-tweak base, kept in sync with peer
  std::uint64_t col_bytes_ = 0;   ///< bytes consumed per column stream so far
  std::vector<PrgStream> col_;    ///< kappa streams, G(k_i^{s_i})
};

/// Receiver-side (Bob) twin: both base seeds per column plus the same
/// counters. Pair it with the sender state it ran its base phase against;
/// mismatched pairings are detected by the per-batch check block.
class IknpReceiverState {
 public:
  explicit IknpReceiverState(crypto::Block seed);

  [[nodiscard]] bool based() const { return based_; }

 private:
  friend class IknpOtReceiver;

  crypto::CtrRng rng_;
  bool based_ = false;
  crypto::Block sid_{};
  std::uint64_t batches_ = 0;
  std::uint64_t ot_counter_ = 0;
  std::uint64_t col_bytes_ = 0;  ///< bytes consumed per column stream so far
  std::vector<PrgStream> col0_;  ///< kappa streams, G(k_i^0)
  std::vector<PrgStream> col1_;  ///< kappa streams, G(k_i^1)
};

// Role halves of the Precomp backend's random-OT pool (gc/otpre.h).
class RandomOtPoolSender;
class RandomOtPoolReceiver;

/// Batched OT sender (Alice side): queue the label pairs for one protocol
/// phase, then flush() runs the batch in queue order. flush() on an empty
/// queue is free and exchanges nothing. maintain() is the idle-time hook the
/// stepwise schedule calls between cycles: backends with offline work (pool
/// refills) top up there, off the per-batch critical path; for Ideal/Iknp it
/// is a no-op. Both parties must call their maintain hooks at the same
/// schedule points — the decision to refill is derived deterministically
/// from the shared pool fill level, not announced on the wire.
class OtSender {
 public:
  virtual ~OtSender() = default;

  virtual void enqueue(crypto::Block x0, crypto::Block x1) = 0;
  virtual void flush() = 0;
  virtual void maintain() {}

  [[nodiscard]] const OtPhaseStats& stats() const { return stats_; }

 protected:
  OtPhaseStats stats_;
};

/// Batched OT receiver (Bob side): queue (choice, destination) for one
/// phase; request() emits the receiver-side message (IKNP columns) and must
/// run before the peer's flush() in a lock-step schedule; finish() reads the
/// response and fills every queued destination. maintain_request()/
/// maintain_finish() bracket the sender's maintain() exactly as request()/
/// finish() bracket flush(); no-ops for Ideal/Iknp.
class OtReceiver {
 public:
  virtual ~OtReceiver() = default;

  virtual void enqueue(bool choice, crypto::Block* out) = 0;
  virtual void request() = 0;
  virtual void finish() = 0;
  virtual void maintain_request() {}
  virtual void maintain_finish() {}

  [[nodiscard]] const OtPhaseStats& stats() const { return stats_; }

 protected:
  OtPhaseStats stats_;
};

/// Constructs the backend's sender endpoint over `tx`. For Iknp, `warm`
/// (optional) supplies cross-run state; when null the endpoint owns a fresh
/// state derived from `seed`. For Precomp, `warm_pool` supplies the
/// cross-run random-OT pool (which owns its own IKNP state; `warm` is
/// ignored) and `pool_target` sizes a fresh pool when `warm_pool` is null.
/// Ideal ignores everything but `tx`.
std::unique_ptr<OtSender> make_ot_sender(OtBackend backend, Transport& tx, crypto::Block seed,
                                         IknpSenderState* warm,
                                         RandomOtPoolSender* warm_pool = nullptr,
                                         std::size_t pool_target = kDefaultOtPoolBatch);

std::unique_ptr<OtReceiver> make_ot_receiver(OtBackend backend, Transport& tx,
                                             crypto::Block seed, IknpReceiverState* warm,
                                             RandomOtPoolReceiver* warm_pool = nullptr,
                                             std::size_t pool_target = kDefaultOtPoolBatch);

}  // namespace arm2gc::gc
