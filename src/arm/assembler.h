// Two-pass ARM assembler for the supported subset: labels, conditional
// suffixes, the S bit, operand-2 shifts, `ldr rd, =imm` with an automatic
// literal pool, and `.word` / `.ltorg` directives. This (together with the
// hand-assembled programs in src/programs/) substitutes for the off-the-shelf
// gcc-arm cross compiler of the paper: the protocol only ever sees the
// binary words this produces.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "arm/isa.h"

namespace arm2gc::arm {

struct AssemblyError : std::runtime_error {
  AssemblyError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_no(line) {}
  std::size_t line_no;
};

/// Assembles `source` into instruction words (origin 0). Throws
/// AssemblyError with a line number on malformed input.
std::vector<std::uint32_t> assemble(const std::string& source);

/// One-line disassembly (debugging aid; covers the supported subset).
std::string disassemble(std::uint32_t instr);

}  // namespace arm2gc::arm
