#include <gtest/gtest.h>

#include "arm/assembler.h"
#include "arm/cpu_sim.h"
#include "arm/isa.h"

namespace {

using namespace arm2gc::arm;

TEST(Imm12, EncodesRotatedImmediates) {
  EXPECT_TRUE(encode_imm12(0).has_value());
  EXPECT_TRUE(encode_imm12(255).has_value());
  EXPECT_TRUE(encode_imm12(0xFF000000u).has_value());
  EXPECT_TRUE(encode_imm12(0x3FC).has_value());
  EXPECT_FALSE(encode_imm12(0x101).has_value());
  EXPECT_FALSE(encode_imm12(0x12345678).has_value());
}

std::uint32_t one(const std::string& line) {
  const auto words = assemble(line);
  EXPECT_EQ(words.size(), 1u);
  return words[0];
}

TEST(Assembler, DataProcessingEncodings) {
  EXPECT_EQ(one("mov r0, #0"), 0xE3A00000u);
  EXPECT_EQ(one("mov r1, r2"), 0xE1A01002u);
  EXPECT_EQ(one("add r3, r1, r2"), 0xE0813002u);
  EXPECT_EQ(one("adds r3, r1, #1"), 0xE2913001u);
  EXPECT_EQ(one("subeq r4, r5, r6"), 0x00454006u);
  EXPECT_EQ(one("cmp r0, r1"), 0xE1500001u);
  EXPECT_EQ(one("movs r1, r2, lsl #3"), 0xE1B01182u);
  EXPECT_EQ(one("mov r1, r2, lsr r3"), 0xE1A01332u);
  EXPECT_EQ(one("mvn r0, #0"), 0xE3E00000u);
  EXPECT_EQ(one("bic r0, r0, #255"), 0xE3C000FFu);
}

TEST(Assembler, MulMemBranchSwi) {
  EXPECT_EQ(one("mul r5, r1, r2"), 0xE0050291u);
  EXPECT_EQ(one("mla r5, r1, r2, r3"), 0xE0253291u);
  EXPECT_EQ(one("ldr r4, [r0, #4]"), 0xE5904004u);
  EXPECT_EQ(one("str r4, [r2]"), 0xE5824000u);
  EXPECT_EQ(one("ldr r4, [r0, #-8]"), 0xE5104008u);
  EXPECT_EQ(one("swi 0"), 0xEF000000u);
  // Branches: "loop: b loop" -> offset -2.
  const auto words = assemble("loop: b loop");
  EXPECT_EQ(words[0], 0xEAFFFFFEu);
}

TEST(Assembler, ConditionSuffixParsing) {
  // "bls" is branch-if-lower-or-same, "blls" is branch-and-link ls.
  const auto b = assemble("x: bls x");
  EXPECT_EQ(b[0] >> 28, static_cast<std::uint32_t>(Cond::Ls));
  EXPECT_EQ((b[0] >> 24) & 1u, 0u);
  const auto bl = assemble("x: blls x");
  EXPECT_EQ(bl[0] >> 28, static_cast<std::uint32_t>(Cond::Ls));
  EXPECT_EQ((bl[0] >> 24) & 1u, 1u);
  EXPECT_EQ(one("movlo r0, #1") >> 28, static_cast<std::uint32_t>(Cond::Cc));
  EXPECT_EQ(one("movhs r0, #1") >> 28, static_cast<std::uint32_t>(Cond::Cs));
}

TEST(Assembler, LiteralPool) {
  const auto words = assemble(R"(
    ldr r0, =0x12345678
    swi 0
  )");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[2], 0x12345678u);
  // ldr r0, [pc, #offset]: pc = 0 + 8, literal at 8 -> offset 0.
  EXPECT_EQ(words[0], 0xE59F0000u);
}

TEST(Assembler, WordDirectiveAndLabels) {
  const auto words = assemble(R"(
    b start
  data:
    .word 42
    .word data
  start:
    swi 0
  )");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[1], 42u);
  EXPECT_EQ(words[2], 4u);  // address of 'data'
}

TEST(Assembler, Errors) {
  EXPECT_THROW(assemble("mov r0, #0x101"), AssemblyError);
  EXPECT_THROW(assemble("frobnicate r0"), AssemblyError);
  EXPECT_THROW(assemble("mov r99, #0"), AssemblyError);
  EXPECT_THROW(assemble("b nowhere"), AssemblyError);
  EXPECT_THROW(assemble("ldrb r0, [r1]"), AssemblyError);
  EXPECT_THROW(assemble("x: x: swi 0"), AssemblyError);
  try {
    assemble("mov r0, #0\nbadop r1");
  } catch (const AssemblyError& e) {
    EXPECT_EQ(e.line_no, 2u);
  }
}

TEST(Disassembler, RoundTripSpotChecks) {
  EXPECT_EQ(disassemble(one("add r3, r1, r2")), "add r3, r1, r2");
  EXPECT_EQ(disassemble(one("swi 0")), "swi 0");
  EXPECT_EQ(disassemble(one("mul r5, r1, r2")), "mul r5, r1, r2");
}

TEST(Sim, RunsSmallProgram) {
  // out[0] = alice[0] + bob[0]; out[1] = alice[0] - bob[0].
  const auto program = assemble(R"(
    ldr r4, [r0]
    ldr r5, [r1]
    add r6, r4, r5
    str r6, [r2]
    sub r7, r4, r5
    str r7, [r2, #4]
    swi 0
  )");
  MemoryConfig cfg;
  ArmSim sim(cfg, program);
  sim.reset({{100}}, {{58}});
  const std::uint64_t cycles = sim.run();
  EXPECT_EQ(cycles, 7u);
  EXPECT_EQ(sim.out_mem()[0], 158u);
  EXPECT_EQ(sim.out_mem()[1], 42u);
  EXPECT_TRUE(sim.halted());
}

TEST(Sim, ConditionalExecution) {
  // max(alice[0], bob[0]) without branches (the paper's Figure 5 pattern).
  const auto program = assemble(R"(
    ldr r4, [r0]
    ldr r5, [r1]
    cmp r4, r5
    movlo r4, r5     ; if r4 < r5 (unsigned), r4 = r5
    str r4, [r2]
    swi 0
  )");
  MemoryConfig cfg;
  ArmSim sim(cfg, program);
  sim.reset({{7}}, {{9}});
  sim.run();
  EXPECT_EQ(sim.out_mem()[0], 9u);
  sim.reset({{12}}, {{9}});
  sim.run();
  EXPECT_EQ(sim.out_mem()[0], 12u);
}

TEST(Sim, LoopWithBranch) {
  // out[0] = sum of bob[0..3].
  const auto program = assemble(R"(
    mov r4, #0      ; acc
    mov r5, #0      ; i
  loop:
    ldr r6, [r1]
    add r4, r4, r6
    add r1, r1, #4
    add r5, r5, #1
    cmp r5, #4
    bne loop
    str r4, [r2]
    swi 0
  )");
  MemoryConfig cfg;
  ArmSim sim(cfg, program);
  sim.reset({}, {{10, 20, 30, 40}});
  sim.run();
  EXPECT_EQ(sim.out_mem()[0], 100u);
}

TEST(Sim, MultiPrecisionAddWithCarry) {
  // 64-bit add via adds/adcs.
  const auto program = assemble(R"(
    ldr r4, [r0]
    ldr r5, [r0, #4]
    ldr r6, [r1]
    ldr r7, [r1, #4]
    adds r8, r4, r6
    adc r9, r5, r7
    str r8, [r2]
    str r9, [r2, #4]
    swi 0
  )");
  MemoryConfig cfg;
  ArmSim sim(cfg, program);
  sim.reset({{0xFFFFFFFFu, 1u}}, {{2u, 3u}});
  sim.run();
  EXPECT_EQ(sim.out_mem()[0], 1u);
  EXPECT_EQ(sim.out_mem()[1], 5u);  // 1 + 3 + carry
}

}  // namespace
