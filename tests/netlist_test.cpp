#include <gtest/gtest.h>

#include "netlist/gate.h"
#include "netlist/io.h"
#include "netlist/netlist.h"
#include "netlist/opt.h"
#include "netlist/simulator.h"
#include "test_util.h"

namespace {

using namespace arm2gc::netlist;
using a2gtest::to_bits;

// --- truth-table algebra (property sweeps over all 16 tables) ----------------

TEST(TruthTable, AffineClassification) {
  // Exactly 8 of the 16 tables are affine: 0, 1, a, ~a, b, ~b, xor, xnor.
  int affine = 0;
  for (int tt = 0; tt < 16; ++tt) {
    if (tt_is_affine(static_cast<TruthTable>(tt))) ++affine;
  }
  EXPECT_EQ(affine, 8);
  EXPECT_TRUE(tt_is_affine(kTtXor));
  EXPECT_TRUE(tt_is_affine(kTtXnor));
  EXPECT_FALSE(tt_is_affine(kTtAnd));
  EXPECT_FALSE(tt_is_affine(kTtOr));
  EXPECT_FALSE(tt_is_affine(kTtNand));
  EXPECT_FALSE(tt_is_affine(kTtNor));
}

class AllTruthTables : public ::testing::TestWithParam<int> {};

TEST_P(AllTruthTables, RestrictAMatchesEval) {
  const auto tt = static_cast<TruthTable>(GetParam());
  for (const bool va : {false, true}) {
    const UnaryTable u = tt_restrict_a(tt, va);
    for (const bool vb : {false, true}) {
      EXPECT_EQ(unary_eval(u, vb), tt_eval(tt, va, vb));
    }
  }
}

TEST_P(AllTruthTables, RestrictBMatchesEval) {
  const auto tt = static_cast<TruthTable>(GetParam());
  for (const bool vb : {false, true}) {
    const UnaryTable u = tt_restrict_b(tt, vb);
    for (const bool va : {false, true}) {
      EXPECT_EQ(unary_eval(u, va), tt_eval(tt, va, vb));
    }
  }
}

TEST_P(AllTruthTables, RestrictDiagMatchesEval) {
  const auto tt = static_cast<TruthTable>(GetParam());
  for (const bool diff : {false, true}) {
    const UnaryTable u = tt_restrict_diag(tt, diff);
    for (const bool va : {false, true}) {
      EXPECT_EQ(unary_eval(u, va), tt_eval(tt, va, va != diff));
    }
  }
}

TEST_P(AllTruthTables, NegationAndSwapInvolutions) {
  const auto tt = static_cast<TruthTable>(GetParam());
  EXPECT_EQ(tt_neg_a(tt_neg_a(tt)), tt);
  EXPECT_EQ(tt_neg_b(tt_neg_b(tt)), tt);
  EXPECT_EQ(tt_swap(tt_swap(tt)), tt);
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      EXPECT_EQ(tt_eval(tt_neg_a(tt), a, b), tt_eval(tt, !a, b));
      EXPECT_EQ(tt_eval(tt_neg_b(tt), a, b), tt_eval(tt, a, !b));
      EXPECT_EQ(tt_eval(tt_swap(tt), a, b), tt_eval(tt, b, a));
    }
  }
}

TEST_P(AllTruthTables, AndCoreReconstructsNonAffine) {
  const auto tt = static_cast<TruthTable>(GetParam());
  if (tt_is_affine(tt)) return;
  const AndCore c = tt_and_core(tt);
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      const bool want = tt_eval(tt, a, b);
      const bool got = c.gamma != (((a != c.alpha) && (b != c.beta)));
      EXPECT_EQ(got, want) << "tt=" << static_cast<int>(tt);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All16, AllTruthTables, ::testing::Range(0, 16));

// --- netlist structure / simulator -------------------------------------------

Netlist make_full_adder() {
  Netlist nl;
  nl.inputs.push_back(Input{Owner::Alice, false, 0, "a"});
  nl.inputs.push_back(Input{Owner::Alice, false, 1, "b"});
  nl.inputs.push_back(Input{Owner::Alice, false, 2, "c"});
  const WireId a = nl.input_wire(0);
  const WireId b = nl.input_wire(1);
  const WireId c = nl.input_wire(2);
  // s = a^b^c ; carry = c ^ ((a^c)&(b^c))
  nl.gates.push_back(Gate{a, c, kTtXor});           // g0 = a^c
  nl.gates.push_back(Gate{b, c, kTtXor});           // g1 = b^c
  const WireId g0 = nl.gate_wire(0);
  const WireId g1 = nl.gate_wire(1);
  nl.gates.push_back(Gate{g0, g1, kTtAnd});         // g2
  const WireId g2 = nl.gate_wire(2);
  nl.gates.push_back(Gate{g0, b, kTtXor});          // g3 = sum
  nl.gates.push_back(Gate{c, g2, kTtXor});          // g4 = carry
  nl.outputs.push_back(OutputPort{nl.gate_wire(3), false, "sum"});
  nl.outputs.push_back(OutputPort{nl.gate_wire(4), false, "carry"});
  return nl;
}

TEST(Simulator, FullAdderTruth) {
  const Netlist nl = make_full_adder();
  EXPECT_EQ(nl.count_non_free(), 1u);
  Simulator sim(nl);
  for (int v = 0; v < 8; ++v) {
    sim.reset(to_bits(static_cast<std::uint64_t>(v), 3));
    sim.step();
    const BitVec out = sim.read_outputs();
    const int total = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
    EXPECT_EQ(out[0], (total & 1) != 0) << v;
    EXPECT_EQ(out[1], (total >> 1) != 0) << v;
  }
}

TEST(Netlist, ValidateRejectsForwardReference) {
  Netlist nl;
  nl.inputs.push_back(Input{Owner::Alice, false, 0, "a"});
  // Gate referencing its own output wire.
  nl.gates.push_back(Gate{nl.gate_wire(0), nl.input_wire(0), kTtAnd});
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, ValidateRejectsOutOfRange) {
  Netlist nl;
  nl.outputs.push_back(OutputPort{123, false, "x"});
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

Netlist make_counter(bool init_one) {
  // 2-bit counter: (b1,b0) += 1 every cycle.
  Netlist nl;
  Dff d0;
  d0.init = init_one ? Dff::Init::One : Dff::Init::Zero;
  Dff d1;
  nl.dffs.push_back(d0);
  nl.dffs.push_back(d1);
  const WireId q0 = nl.dff_wire(0);
  const WireId q1 = nl.dff_wire(1);
  nl.gates.push_back(Gate{q0, q1, kTtXor});  // next b1 = b1 ^ b0
  nl.dffs[0].d = q0;
  nl.dffs[0].d_invert = true;  // next b0 = ~b0
  nl.dffs[1].d = nl.gate_wire(0);
  nl.outputs.push_back(OutputPort{q0, false, "b0"});
  nl.outputs.push_back(OutputPort{q1, false, "b1"});
  nl.outputs_every_cycle = true;
  return nl;
}

TEST(Simulator, SequentialCounter) {
  const Netlist nl = make_counter(false);
  Simulator sim(nl);
  sim.reset();
  for (int t = 0; t < 8; ++t) {
    sim.step();
    const BitVec out = sim.read_outputs();
    EXPECT_EQ(a2gtest::from_bits(out, 0, 2), static_cast<std::uint64_t>(t % 4)) << t;
  }
}

TEST(Simulator, DffInitFromParties) {
  Netlist nl;
  Dff da;
  da.init = Dff::Init::AliceBit;
  da.init_index = 0;
  Dff db;
  db.init = Dff::Init::BobBit;
  db.init_index = 1;
  nl.dffs.push_back(da);
  nl.dffs.push_back(db);
  nl.dffs[0].d = nl.dff_wire(0);
  nl.dffs[1].d = nl.dff_wire(1);
  nl.outputs.push_back(OutputPort{nl.dff_wire(0), false, "a"});
  nl.outputs.push_back(OutputPort{nl.dff_wire(1), false, "b"});
  Simulator sim(nl);
  sim.reset({true}, {false, true});
  sim.step();
  EXPECT_TRUE(sim.read_outputs()[0]);
  EXPECT_TRUE(sim.read_outputs()[1]);
  EXPECT_EQ(nl.dff_init_bits(Owner::Alice), 1u);
  EXPECT_EQ(nl.dff_init_bits(Owner::Bob), 2u);
}

TEST(NetlistIo, DumpLoadRoundTrip) {
  const Netlist nl = make_full_adder();
  const std::string text = dump_to_string(nl);
  const Netlist back = load_from_string(text);
  ASSERT_EQ(back.gates.size(), nl.gates.size());
  ASSERT_EQ(back.inputs.size(), nl.inputs.size());
  Simulator s1(nl);
  Simulator s2(back);
  for (int v = 0; v < 8; ++v) {
    s1.reset(to_bits(static_cast<std::uint64_t>(v), 3));
    s2.reset(to_bits(static_cast<std::uint64_t>(v), 3));
    s1.step();
    s2.step();
    EXPECT_EQ(s1.read_outputs(), s2.read_outputs());
  }
}

TEST(NetlistIo, DumpLoadRoundTripExactStructure) {
  // Exercise every serialized field: owners, streamed inputs, names, all
  // four DFF init kinds, inverted drivers, inverted/named outputs, the
  // outputs_every_cycle flag.
  Netlist nl;
  nl.inputs.push_back(Input{Owner::Alice, true, 3, "astream"});
  nl.inputs.push_back(Input{Owner::Bob, false, 0, ""});
  nl.inputs.push_back(Input{Owner::Public, false, 7, "sel"});
  Dff d0;
  d0.init = Dff::Init::AliceBit;
  d0.init_index = 2;
  d0.d_invert = true;
  Dff d1;
  d1.init = Dff::Init::One;
  nl.dffs.push_back(d0);
  nl.dffs.push_back(d1);
  nl.gates.push_back(Gate{nl.input_wire(0), nl.dff_wire(1), kTtNand});
  nl.gates.push_back(Gate{nl.gate_wire(0), nl.input_wire(2), kTtXor});
  nl.dffs[0].d = nl.gate_wire(1);
  nl.dffs[1].d = nl.dff_wire(0);
  nl.outputs.push_back(OutputPort{nl.gate_wire(1), true, "y"});
  nl.outputs.push_back(OutputPort{nl.dff_wire(0), false, ""});
  nl.outputs_every_cycle = true;

  const std::string text = dump_to_string(nl);
  const Netlist back = load_from_string(text);

  ASSERT_EQ(back.inputs.size(), nl.inputs.size());
  for (std::size_t i = 0; i < nl.inputs.size(); ++i) {
    EXPECT_EQ(back.inputs[i].owner, nl.inputs[i].owner) << i;
    EXPECT_EQ(back.inputs[i].streamed, nl.inputs[i].streamed) << i;
    EXPECT_EQ(back.inputs[i].bit_index, nl.inputs[i].bit_index) << i;
    EXPECT_EQ(back.inputs[i].name, nl.inputs[i].name) << i;
  }
  ASSERT_EQ(back.dffs.size(), nl.dffs.size());
  for (std::size_t i = 0; i < nl.dffs.size(); ++i) {
    EXPECT_EQ(back.dffs[i].init, nl.dffs[i].init) << i;
    EXPECT_EQ(back.dffs[i].init_index, nl.dffs[i].init_index) << i;
    EXPECT_EQ(back.dffs[i].d, nl.dffs[i].d) << i;
    EXPECT_EQ(back.dffs[i].d_invert, nl.dffs[i].d_invert) << i;
  }
  ASSERT_EQ(back.gates.size(), nl.gates.size());
  for (std::size_t i = 0; i < nl.gates.size(); ++i) {
    EXPECT_EQ(back.gates[i].a, nl.gates[i].a) << i;
    EXPECT_EQ(back.gates[i].b, nl.gates[i].b) << i;
    EXPECT_EQ(back.gates[i].tt, nl.gates[i].tt) << i;
  }
  ASSERT_EQ(back.outputs.size(), nl.outputs.size());
  for (std::size_t i = 0; i < nl.outputs.size(); ++i) {
    EXPECT_EQ(back.outputs[i].wire, nl.outputs[i].wire) << i;
    EXPECT_EQ(back.outputs[i].invert, nl.outputs[i].invert) << i;
    EXPECT_EQ(back.outputs[i].name, nl.outputs[i].name) << i;
  }
  EXPECT_EQ(back.outputs_every_cycle, nl.outputs_every_cycle);
  // Serialization is a fixpoint: dump(load(dump(nl))) == dump(nl).
  EXPECT_EQ(dump_to_string(back), text);
}

TEST(Netlist, ValidateRejectsCyclicWireIds) {
  // Combinational cycle through wire ids: gate 0 reads gate 1's output.
  Netlist nl;
  nl.inputs.push_back(Input{Owner::Alice, false, 0, "a"});
  nl.gates.push_back(Gate{nl.gate_wire(1), nl.input_wire(0), kTtAnd});
  nl.gates.push_back(Gate{nl.gate_wire(0), nl.input_wire(0), kTtOr});
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, ValidateRejectsUnassignedDffDriver) {
  // A DFF whose driver was never assigned to a real wire (out of range).
  Netlist nl;
  Dff d;
  d.d = static_cast<WireId>(nl.num_wires() + 17);
  nl.dffs.push_back(d);
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(NetlistIo, LoadRejectsInvalidStructure) {
  // Well-formed syntax, invalid semantics: load() must validate().
  const char* cyclic =
      "arm2gc-netlist v1\n"
      "outputs_every_cycle 0\n"
      "inputs 1\n"
      "  in alice 0 0 a\n"
      "dffs 0\n"
      "gates 1\n"
      "  g 4 2 8\n"  // gate 0 reads wire 4 (out of range / forward)
      "outputs 0\n";
  EXPECT_THROW(load_from_string(cyclic), std::runtime_error);
  const char* bad_dff =
      "arm2gc-netlist v1\n"
      "outputs_every_cycle 0\n"
      "inputs 0\n"
      "dffs 1\n"
      "  dff zero 0 99 0\n"  // driver out of range
      "gates 0\n"
      "outputs 0\n";
  EXPECT_THROW(load_from_string(bad_dff), std::runtime_error);
}

TEST(NetlistIo, LoadRejectsGarbage) {
  EXPECT_THROW(load_from_string("not a netlist"), std::runtime_error);
  EXPECT_THROW(load_from_string("arm2gc-netlist v1\noutputs_every_cycle 0\ninputs 1\n"),
               std::runtime_error);
}

TEST(Opt, SweepRemovesDeadGates) {
  Netlist nl = make_full_adder();
  // Add a dead non-free gate.
  nl.gates.push_back(Gate{nl.input_wire(0), nl.input_wire(1), kTtOr});
  const std::size_t before = nl.count_non_free();
  const SweepStats stats = sweep_dead_gates(nl);
  EXPECT_EQ(stats.non_free_before, before);
  EXPECT_EQ(stats.non_free_after, before - 1);
  Simulator sim(nl);
  for (int v = 0; v < 8; ++v) {
    sim.reset(to_bits(static_cast<std::uint64_t>(v), 3));
    sim.step();
    const int total = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
    EXPECT_EQ(a2gtest::from_bits(sim.read_outputs(), 0, 2), static_cast<std::uint64_t>(total));
  }
}

TEST(Opt, SweepKeepsDffCones) {
  Netlist nl = make_counter(false);
  const SweepStats stats = sweep_dead_gates(nl);
  EXPECT_EQ(stats.gates_after, stats.gates_before);
}

}  // namespace
