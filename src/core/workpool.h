// Shared worker pool for cone-sharded work: garbling/evaluating a cycle's
// independent per-cone slices and the planner's dirty-cone reclassification
// all run the same schedule — a per-run DAG of small tasks whose edges are
// the cone dependency graph (every edge points at an earlier task, so
// ascending index order is a valid serial schedule).
//
// The calling thread never executes tasks; it is the I/O thread of the run:
// `feed(i)` runs on it in ascending order and gates task i like an extra
// dependency (the evaluator pulling cone i's table frames off the transport
// in frame order), and `drain(i)` runs on it in ascending order once task i
// completes (the garbler's single ordered writer pushing cone i's staged
// tables onto the transport). Because feed and drain are strictly ordered by
// slice id on one thread, the framed byte stream — and therefore table
// digests and comm accounting — is byte-identical to the serial schedule no
// matter how the workers interleave.
//
// Workers are persistent and parked between runs (a WarmState can carry one
// pool across a whole session), synchronized with a plain mutex + condition
// variables so the pool is fully TSan-instrumentable. The first exception
// thrown by fn/feed/drain cancels the run (no new tasks start), in-flight
// tasks finish, and the exception is rethrown on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace arm2gc::core {

class WorkPool {
 public:
  using TaskFn = std::function<void(std::size_t)>;

  /// Spawns `threads` parked workers (at least 1). A pool is only worth
  /// constructing for threads >= 2; threads == 1 callers should pass a null
  /// pool to execute() and run the serial schedule with no thread handoff.
  explicit WorkPool(std::size_t threads);
  ~WorkPool();
  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  [[nodiscard]] std::size_t threads() const { return workers_.size(); }

  /// Runs tasks 0..n-1 on the workers under the dependency CSR
  /// (task i depends on dep_edges[dep_offsets[i] .. dep_offsets[i+1]); every
  /// edge must point at an earlier task; both pointers may be null for an
  /// edgeless run). The caller becomes the I/O thread: `feed` (optional)
  /// runs on it in ascending order and gates each task; `drain` (optional)
  /// runs on it in ascending completion order. Returns after every started
  /// task finished and every completed task drained, rethrowing the first
  /// captured exception.
  void run(std::size_t n, const std::uint32_t* dep_offsets, const std::uint32_t* dep_edges,
           const TaskFn& fn, const TaskFn& feed = {}, const TaskFn& drain = {});

  /// The serial reference schedule: feed(i); fn(i); drain(i) for ascending i
  /// — exactly what run() degenerates to with one in-flight task, and the
  /// threads=1 path of every pool call site.
  static void run_serial(std::size_t n, const TaskFn& fn, const TaskFn& feed = {},
                         const TaskFn& drain = {});

  /// Dispatch helper: serial schedule when `pool` is null, pooled otherwise.
  static void execute(WorkPool* pool, std::size_t n, const std::uint32_t* dep_offsets,
                      const std::uint32_t* dep_edges, const TaskFn& fn, const TaskFn& feed = {},
                      const TaskFn& drain = {});

  /// Maps a thread-count option to an effective count: 0 = one worker per
  /// hardware thread, otherwise the value itself (minimum 1).
  [[nodiscard]] static std::size_t resolve_threads(std::size_t requested);

 private:
  struct RunState {
    std::size_t n = 0;
    const TaskFn* fn = nullptr;
    /// Forward adjacency (dependents), built per run from the dep CSR.
    std::vector<std::uint32_t> out_offsets;
    std::vector<std::uint32_t> out_edges;
    std::vector<std::uint32_t> indeg;  ///< unmet deps, +1 while unfed
    std::vector<std::uint8_t> done;
    std::deque<std::uint32_t> ready;
    std::size_t inflight = 0;
    bool cancelled = false;
    std::exception_ptr error;
  };

  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait here for ready tasks
  std::condition_variable io_cv_;    ///< the caller waits here for completions
  RunState* run_ = nullptr;          ///< non-null while a run is active
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace arm2gc::core
