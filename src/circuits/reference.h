// Plain-software reference implementations used to validate the benchmark
// circuits and the ARM programs (Keccak/SHA3, AES, and small helpers).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace arm2gc::circuits {

/// Keccak-f[1600] permutation on the 25-lane state (lane (x,y) at x + 5y).
void keccak_f1600(std::array<std::uint64_t, 25>& state);

/// Keccak round constants RC[0..23].
const std::array<std::uint64_t, 24>& keccak_round_constants();

/// SHA3-256 of an arbitrary message (multi-block sponge).
std::array<std::uint8_t, 32> sha3_256(const std::vector<std::uint8_t>& message);

/// AES-128 encryption of one block, byte-array interface (FIPS-197 order).
std::array<std::uint8_t, 16> aes128_encrypt(const std::array<std::uint8_t, 16>& key,
                                            const std::array<std::uint8_t, 16>& pt);

}  // namespace arm2gc::circuits
