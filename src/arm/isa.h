// ARM (v2a-class) instruction subset shared by the assembler, the reference
// instruction-set simulator and the gate-level CPU generator.
//
// Supported classes (the subset the garbled processor implements, mirroring
// the paper's trimmed Amber core):
//   * data processing (all 16 opcodes) with conditional execution, S bit and
//     full operand-2 shifts (immediate and register amounts),
//   * MUL / MLA,
//   * LDR / STR, word, pre-indexed immediate offset (no writeback),
//   * B / BL,
//   * SWI (used as the halt instruction).
//
// Documented deviations from full ARM (kept identical between the ISS and
// the netlist): logical operations leave C and V unchanged (no shifter
// carry-out); shifts by immediate use the literal 5-bit amount (no RRX /
// "#0 means 32" special cases); byte and halfword memory access is absent.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace arm2gc::arm {

enum class Cond : std::uint8_t {
  Eq = 0, Ne, Cs, Cc, Mi, Pl, Vs, Vc, Hi, Ls, Ge, Lt, Gt, Le, Al, Nv
};

enum class DpOp : std::uint8_t {
  And = 0, Eor, Sub, Rsb, Add, Adc, Sbc, Rsc, Tst, Teq, Cmp, Cmn, Orr, Mov, Bic, Mvn
};

enum class ShiftType : std::uint8_t { Lsl = 0, Lsr, Asr, Ror };

/// True for the four compare/test opcodes (no destination register).
constexpr bool dp_no_writeback(DpOp op) {
  return op == DpOp::Tst || op == DpOp::Teq || op == DpOp::Cmp || op == DpOp::Cmn;
}

/// True for opcodes whose C/V flags come from the adder.
constexpr bool dp_is_arith(DpOp op) {
  switch (op) {
    case DpOp::Sub: case DpOp::Rsb: case DpOp::Add: case DpOp::Adc:
    case DpOp::Sbc: case DpOp::Rsc: case DpOp::Cmp: case DpOp::Cmn:
      return true;
    default:
      return false;
  }
}

// --- field helpers (encode/decode) -------------------------------------------

constexpr std::uint32_t bits(std::uint32_t v, int hi, int lo) {
  return (v >> lo) & ((1u << (hi - lo + 1)) - 1u);
}

struct DecodedClass {
  bool is_dp = false;
  bool is_mul = false;
  bool is_mem = false;
  bool is_branch = false;
  bool is_swi = false;
};

constexpr DecodedClass classify(std::uint32_t instr) {
  DecodedClass d;
  const std::uint32_t c2726 = bits(instr, 27, 26);
  const bool mul_pattern = bits(instr, 27, 22) == 0 && bits(instr, 7, 4) == 0b1001;
  d.is_mul = mul_pattern;
  d.is_dp = c2726 == 0b00 && !mul_pattern;
  d.is_mem = c2726 == 0b01;
  d.is_branch = bits(instr, 27, 25) == 0b101;
  d.is_swi = bits(instr, 27, 24) == 0b1111;
  return d;
}

/// Finds the (rot, imm8) encoding of a 32-bit constant if one exists.
std::optional<std::uint16_t> encode_imm12(std::uint32_t value);

/// Condition name table ("eq", "ne", ...; index = Cond).
const char* cond_name(Cond c);

/// Evaluates a condition against NZCV flags.
constexpr bool cond_holds(Cond c, bool n, bool z, bool cf, bool v) {
  switch (c) {
    case Cond::Eq: return z;
    case Cond::Ne: return !z;
    case Cond::Cs: return cf;
    case Cond::Cc: return !cf;
    case Cond::Mi: return n;
    case Cond::Pl: return !n;
    case Cond::Vs: return v;
    case Cond::Vc: return !v;
    case Cond::Hi: return cf && !z;
    case Cond::Ls: return !cf || z;
    case Cond::Ge: return n == v;
    case Cond::Lt: return n != v;
    case Cond::Gt: return !z && n == v;
    case Cond::Le: return z || n != v;
    case Cond::Al: return true;
    case Cond::Nv: return false;
  }
  return false;
}

/// Shift semantics shared by ISS and netlist (see deviations note above).
constexpr std::uint32_t apply_shift(ShiftType t, std::uint32_t v, std::uint32_t amt) {
  amt &= 0xffu;  // register-shift uses the low byte
  if (amt == 0) return v;
  switch (t) {
    case ShiftType::Lsl: return amt < 32 ? v << amt : 0;
    case ShiftType::Lsr: return amt < 32 ? v >> amt : 0;
    case ShiftType::Asr: {
      const auto sv = static_cast<std::int32_t>(v);
      return amt < 32 ? static_cast<std::uint32_t>(sv >> amt)
                      : (v & 0x80000000u ? 0xffffffffu : 0u);
    }
    case ShiftType::Ror: {
      const std::uint32_t r = amt & 31u;
      return r == 0 ? v : (v >> r) | (v << (32 - r));
    }
  }
  return v;
}

/// Memory map of the garbled processor (byte addresses, paper §4.1's five
/// memories).
inline constexpr std::uint32_t kImemBase = 0x00000;
inline constexpr std::uint32_t kAliceBase = 0x10000;
inline constexpr std::uint32_t kBobBase = 0x20000;
inline constexpr std::uint32_t kOutBase = 0x30000;
inline constexpr std::uint32_t kRamBase = 0x40000;

/// Sizes (in 32-bit words, powers of two) of the five memories.
struct MemoryConfig {
  std::size_t imem_words = 256;
  std::size_t alice_words = 64;
  std::size_t bob_words = 64;
  std::size_t out_words = 64;
  std::size_t ram_words = 256;
};

}  // namespace arm2gc::arm
