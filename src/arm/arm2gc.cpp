#include "arm/arm2gc.h"

#include <stdexcept>
#include <string>

namespace arm2gc::arm {

Arm2Gc::Arm2Gc(MemoryConfig cfg, std::vector<std::uint32_t> program)
    : cfg_(cfg), program_(std::move(program)), cpu_(build_cpu(cfg_, program_)) {}

netlist::BitVec Arm2Gc::words_to_bits(std::span<const std::uint32_t> words,
                                      std::size_t mem_words, const char* who) const {
  if (words.size() > mem_words) {
    throw std::invalid_argument(std::string("Arm2Gc: ") + who + " input exceeds memory");
  }
  netlist::BitVec bits(32 * mem_words, false);
  for (std::size_t w = 0; w < words.size(); ++w) {
    for (int b = 0; b < 32; ++b) bits[32 * w + static_cast<std::size_t>(b)] = ((words[w] >> b) & 1u) != 0;
  }
  return bits;
}

namespace {
Arm2GcResult decode_run(const core::RunResult& r, std::size_t out_words) {
  Arm2GcResult res;
  res.cycles = r.final_cycle + 1;
  res.stats = r.stats;
  res.outputs.assign(out_words, 0);
  // Output port 0 is the halt flag; out memory bits follow word-major.
  for (std::size_t w = 0; w < out_words; ++w) {
    for (int b = 0; b < 32; ++b) {
      if (r.final_outputs.at(1 + 32 * w + static_cast<std::size_t>(b))) {
        res.outputs[w] |= 1u << b;
      }
    }
  }
  return res;
}
}  // namespace

netlist::BitVec Arm2Gc::alice_input_bits(std::span<const std::uint32_t> words) const {
  return words_to_bits(words, cfg_.alice_words, "Alice");
}

netlist::BitVec Arm2Gc::bob_input_bits(std::span<const std::uint32_t> words) const {
  return words_to_bits(words, cfg_.bob_words, "Bob");
}

std::vector<std::uint32_t> Arm2Gc::decode_output_bits(
    const netlist::BitVec& final_outputs) const {
  std::vector<std::uint32_t> out(cfg_.out_words, 0);
  for (std::size_t w = 0; w < cfg_.out_words; ++w) {
    for (int b = 0; b < 32; ++b) {
      if (final_outputs.at(1 + 32 * w + static_cast<std::size_t>(b))) {
        out[w] |= 1u << b;
      }
    }
  }
  return out;
}

Arm2GcResult Arm2Gc::run(std::span<const std::uint32_t> alice,
                         std::span<const std::uint32_t> bob, std::uint64_t max_cycles,
                         gc::Scheme scheme, const core::ExecOptions& exec) const {
  core::RunOptions opts;
  opts.mode = core::Mode::SkipGate;
  opts.scheme = scheme;
  opts.halt_wire = cpu_.halt_wire;
  opts.max_cycles = max_cycles;
  opts.exec = exec;
  core::SkipGateDriver driver(cpu_.nl, opts);
  const core::RunResult r = driver.run(words_to_bits(alice, cfg_.alice_words, "Alice"),
                                       words_to_bits(bob, cfg_.bob_words, "Bob"));
  return decode_run(r, cfg_.out_words);
}

Arm2GcResult Arm2Gc::run_conventional(std::span<const std::uint32_t> alice,
                                      std::span<const std::uint32_t> bob, std::uint64_t cycles,
                                      const core::ExecOptions& exec) const {
  core::RunOptions opts;
  opts.mode = core::Mode::Conventional;
  opts.fixed_cycles = cycles;
  opts.exec = exec;
  core::SkipGateDriver driver(cpu_.nl, opts);
  const core::RunResult r = driver.run(words_to_bits(alice, cfg_.alice_words, "Alice"),
                                       words_to_bits(bob, cfg_.bob_words, "Bob"));
  return decode_run(r, cfg_.out_words);
}

std::uint64_t Arm2Gc::conventional_non_xor(std::uint64_t cycles) const {
  return cycles * cpu_.nl.count_non_free();
}

namespace {
/// WarmState options for a session role: budgets and backend from the exec
/// tuning; the OT seed is the same protocol seed every run() hands the
/// driver (RunOptions default; Arm2Gc::run never overrides it), so the warm
/// extension streams continue exactly where the last run stopped.
core::WarmState::Options session_warm_options(const core::ExecOptions& exec) {
  core::WarmState::Options w;
  w.plan_cache_budget_bytes = exec.plan_cache_budget_bytes;
  w.cone_memo_budget_bytes = exec.cone_memo_budget_bytes;
  w.ot_backend = exec.ot_backend;
  w.ot_pool = exec.ot_pool;
  w.seed = core::RunOptions{}.seed;
  return w;
}
}  // namespace

Arm2Gc::Session::Session(const Arm2Gc& machine, core::ExecOptions exec)
    : machine_(&machine),
      exec_(exec),
      garbler_warm_(core::Role::Garbler, session_warm_options(exec)),
      evaluator_warm_(core::Role::Evaluator, session_warm_options(exec)) {
  exec_.plan_cache = true;  // warm caches are the point of a session
  if (exec_.garbler_warm == nullptr) exec_.garbler_warm = &garbler_warm_;
  if (exec_.evaluator_warm == nullptr) exec_.evaluator_warm = &evaluator_warm_;
}

Arm2GcResult Arm2Gc::Session::run(std::span<const std::uint32_t> alice,
                                  std::span<const std::uint32_t> bob, std::uint64_t max_cycles,
                                  gc::Scheme scheme) {
  return machine_->run(alice, bob, max_cycles, scheme, exec_);
}

core::PartyOptions Arm2Gc::party_options(core::Role role, std::uint64_t max_cycles,
                                         gc::Scheme scheme,
                                         const core::ExecOptions& exec) const {
  core::RunOptions opts;
  opts.mode = core::Mode::SkipGate;
  opts.scheme = scheme;
  opts.halt_wire = cpu_.halt_wire;
  opts.max_cycles = max_cycles;
  opts.exec = exec;
  return core::party_options(role, opts);
}

Arm2GcResult Arm2Gc::run_garbler(std::span<const std::uint32_t> alice, gc::Transport& tx,
                                 const core::PartyOptions& opts, core::WarmState* warm) const {
  core::GarblerEndpoint endpoint(cpu_.nl, opts, tx, warm);
  return decode_run(endpoint.run(words_to_bits(alice, cfg_.alice_words, "Alice")),
                    cfg_.out_words);
}

Arm2GcResult Arm2Gc::run_evaluator(std::span<const std::uint32_t> bob, gc::Transport& tx,
                                   const core::PartyOptions& opts,
                                   core::WarmState* warm) const {
  core::EvaluatorEndpoint endpoint(cpu_.nl, opts, tx, warm);
  const core::RunResult r = endpoint.run(words_to_bits(bob, cfg_.bob_words, "Bob"));
  Arm2GcResult res;
  res.cycles = r.final_cycle + 1;
  res.stats = r.stats;  // outputs stay empty: the evaluator never learns them
  return res;
}

Arm2GcResult Arm2Gc::run_reference(std::span<const std::uint32_t> alice,
                                   std::span<const std::uint32_t> bob,
                                   std::uint64_t max_cycles) const {
  ArmSim sim(cfg_, program_);
  sim.reset(alice, bob);
  Arm2GcResult res;
  res.cycles = sim.run(max_cycles);
  res.outputs = sim.out_mem();
  return res;
}

}  // namespace arm2gc::arm
