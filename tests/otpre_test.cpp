// Precomputed-OT suite (gc/otpre.h): OtBackend::Precomp must be a perfect
// drop-in for the IKNP backend while moving the expensive OT exchange off
// the online critical path. Pinned here:
//   - endpoint-level derandomization correctness: received labels equal
//     x0 ^ b*R for every index, across batch sizes spanning the one-block
//     correction header (m <= 64), overflow correction blocks (m > 64) and
//     batches larger than the pool target (emergency refill), over both the
//     lock-step duplex and the threaded pipe;
//   - the maintain hooks top the pool back up between batches, so steady
//     online batches never pay a refill;
//   - the offline/online stats split: ot_online_bytes counts exactly the
//     derandomization frames (16*(1 + extra + 2m) per batch, 34 B per
//     choice at m == 8 against the ~192 B IKNP floor at m == 1), refill
//     traffic and wall time land on the offline side;
//   - full-driver differential fuzz: Precomp vs Iknp produce bit-identical
//     outputs, label streams, golden table digests and non-OT comm counters
//     across both modes, both in-process transports and threads {1, 4};
//   - warm pools amortize: one base phase and one bulk refill serve many
//     runs of a session, later runs doing derandomization only.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "arm/arm2gc.h"
#include "arm/assembler.h"
#include "builder/circuit_builder.h"
#include "builder/stdlib.h"
#include "core/skipgate.h"
#include "crypto/rng.h"
#include "gc/garble.h"
#include "gc/otext.h"
#include "gc/otpre.h"
#include "gc/transport.h"
#include "test_util.h"

namespace {

using namespace arm2gc;
using crypto::Block;
using crypto::block_from_u64;
using a2gtest::to_bits;

int fuzz_iters(int dflt) {
  if (const char* env = std::getenv("A2G_OT_FUZZ_ITERS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return dflt;
}

/// Online bytes of one derandomization exchange: correction header (+
/// overflow blocks past 64 choices) one way, 2m masked pads back.
std::uint64_t derand_bytes(std::size_t m) {
  const std::size_t extra = m > 64 ? (m - 64 + 127) / 128 : 0;
  return 16 * (1 + extra + 2 * m);
}

// --- endpoint-level derandomization ---------------------------------------------

/// Runs lock-step batches through one Precomp endpoint pair over an
/// in-memory duplex (pool refill target `target`) and checks every
/// delivered label plus the online-side counters.
void run_precomp_batches(const std::vector<std::size_t>& batch_sizes, std::size_t target,
                         std::uint64_t seed_lo) {
  gc::InMemoryDuplex duplex;
  const Block seed = block_from_u64(seed_lo);
  auto sender = gc::make_ot_sender(gc::OtBackend::Precomp, duplex.garbler_end(), seed, nullptr,
                                   nullptr, target);
  auto receiver = gc::make_ot_receiver(gc::OtBackend::Precomp, duplex.evaluator_end(), seed,
                                       nullptr, nullptr, target);

  gc::Garbler g(block_from_u64(seed_lo * 31 + 7));
  crypto::CtrRng rng(block_from_u64(seed_lo * 131 + 1));
  std::uint64_t choices = 0;
  std::uint64_t online = 0;
  for (const std::size_t m : batch_sizes) {
    std::vector<Block> x0(m);
    std::vector<bool> choice(m);
    std::vector<Block> got(m);
    for (std::size_t j = 0; j < m; ++j) {
      x0[j] = g.fresh_label();
      choice[j] = rng.next_bool();
      receiver->enqueue(choice[j], &got[j]);
    }
    receiver->request();
    for (std::size_t j = 0; j < m; ++j) sender->enqueue(x0[j], x0[j] ^ g.R());
    sender->flush();
    receiver->finish();
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_TRUE(got[j] == (choice[j] ? x0[j] ^ g.R() : x0[j]))
          << "target=" << target << " m=" << m << " j=" << j;
    }
    choices += m;
    online += derand_bytes(m);
  }
  // One base phase ever (inside the first refill); online counters track
  // exactly the derandomization exchanges, never the refill traffic.
  EXPECT_EQ(sender->stats().base_ots, gc::kOtKappa);
  EXPECT_EQ(receiver->stats().base_ots, gc::kOtKappa);
  EXPECT_EQ(sender->stats().batches, batch_sizes.size());
  EXPECT_EQ(sender->stats().choices, choices);
  EXPECT_EQ(sender->stats().online_bytes, online);
  EXPECT_EQ(receiver->stats().online_bytes, online);
}

TEST(OtPre, DeliversChosenLabelsAcrossBatchSizes) {
  run_precomp_batches({1}, 1024, 1);
  run_precomp_batches({7, 1, 128}, 1024, 2);
  // Correction bits past the 64 the header block carries, and past one
  // whole overflow block (m > 192).
  run_precomp_batches({64, 65, 129, 200}, 1024, 3);
}

TEST(OtPre, BatchesLargerThanThePoolRefillTransparently) {
  // target 16: every listed batch either drains the pool or exceeds it
  // outright, so emergency refills of max(target, m) interleave with the
  // derand frames — labels must be unaffected.
  run_precomp_batches({8, 8, 8, 40, 3, 300, 8}, 16, 4);
  run_precomp_batches({1, 1, 1}, 1, 5);
}

TEST(OtPre, MaintainHooksTopUpThePoolOffTheCriticalPath) {
  gc::InMemoryDuplex duplex;
  const Block seed = block_from_u64(77);
  gc::RandomOtPoolSender spool(seed, 16);
  gc::RandomOtPoolReceiver rpool(seed, 16);
  auto sender =
      gc::make_ot_sender(gc::OtBackend::Precomp, duplex.garbler_end(), seed, nullptr, &spool);
  auto receiver = gc::make_ot_receiver(gc::OtBackend::Precomp, duplex.evaluator_end(), seed,
                                       nullptr, &rpool);

  // Burn 10 of the first refill's 16 entries.
  gc::Garbler g(block_from_u64(787));
  std::vector<Block> got(10);
  for (std::size_t j = 0; j < 10; ++j) receiver->enqueue((j & 1) != 0, &got[j]);
  receiver->request();
  for (std::size_t j = 0; j < 10; ++j) sender->enqueue(g.fresh_label(), g.fresh_label());
  sender->flush();
  receiver->finish();
  ASSERT_EQ(spool.available(), 6u);
  ASSERT_EQ(rpool.available(), 6u);
  ASSERT_EQ(spool.refills(), 1u);

  // 6 < low_water 8: the maintenance slot refills a full target batch on
  // both sides (receiver-first, like the binding phases).
  receiver->maintain_request();
  sender->maintain();
  receiver->maintain_finish();
  EXPECT_EQ(spool.available(), 22u);
  EXPECT_EQ(rpool.available(), 22u);
  EXPECT_EQ(spool.refills(), 2u);
  EXPECT_EQ(rpool.refills(), 2u);
  // Base OTs ran once, inside the very first refill.
  EXPECT_EQ(sender->stats().base_ots, gc::kOtKappa);

  // Above low water: the slot is a no-op.
  receiver->maintain_request();
  sender->maintain();
  receiver->maintain_finish();
  EXPECT_EQ(spool.refills(), 2u);

  // The next online batch finds a full pool: derandomization only, and the
  // labels still check out.
  const std::uint64_t offline_before = sender->stats().offline_wall_ns;
  std::vector<Block> x0(4);
  std::vector<Block> got2(4);
  for (std::size_t j = 0; j < 4; ++j) {
    x0[j] = g.fresh_label();
    receiver->enqueue(j < 2, &got2[j]);
  }
  receiver->request();
  for (std::size_t j = 0; j < 4; ++j) sender->enqueue(x0[j], x0[j] ^ g.R());
  sender->flush();
  receiver->finish();
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_TRUE(got2[j] == (j < 2 ? x0[j] ^ g.R() : x0[j])) << j;
  }
  EXPECT_EQ(sender->stats().offline_wall_ns, offline_before);  // no refill paid
  EXPECT_EQ(spool.refills(), 2u);
}

TEST(OtPre, PrecompOverThreadedPipe) {
  gc::ThreadedPipeDuplex duplex(256);
  const Block seed = block_from_u64(42);
  gc::Garbler g(block_from_u64(4242));
  const Block r = g.R();
  constexpr std::size_t kM = 200;
  std::vector<Block> x0(kM);
  for (auto& b : x0) b = g.fresh_label();

  std::thread sender_thread([&] {
    auto sender = gc::make_ot_sender(gc::OtBackend::Precomp, duplex.garbler_end(), seed,
                                     nullptr, nullptr, 64);
    for (std::size_t j = 0; j < kM; ++j) sender->enqueue(x0[j], x0[j] ^ r);
    sender->flush();
    sender->maintain();
    for (std::size_t j = 0; j < kM; ++j) sender->enqueue(x0[j] ^ r, x0[j]);
    sender->flush();
  });

  auto receiver = gc::make_ot_receiver(gc::OtBackend::Precomp, duplex.evaluator_end(), seed,
                                       nullptr, nullptr, 64);
  crypto::CtrRng rng(block_from_u64(777));
  for (int batch = 0; batch < 2; ++batch) {
    std::vector<bool> choice(kM);
    std::vector<Block> got(kM);
    for (std::size_t j = 0; j < kM; ++j) {
      choice[j] = rng.next_bool();
      receiver->enqueue(choice[j], &got[j]);
    }
    receiver->request();
    receiver->finish();
    if (batch == 0) {
      receiver->maintain_request();
      receiver->maintain_finish();
    }
    for (std::size_t j = 0; j < kM; ++j) {
      const Block lo = batch == 0 ? x0[j] : x0[j] ^ r;
      const Block hi = batch == 0 ? x0[j] ^ r : x0[j];
      EXPECT_TRUE(got[j] == (choice[j] ? hi : lo)) << "batch=" << batch << " j=" << j;
    }
  }
  sender_thread.join();
}

// --- full-driver differential: Precomp vs Iknp ----------------------------------

/// Everything except OT traffic must be bit-identical across backends: the
/// labels, tables and outputs cannot depend on how Bob's labels traveled.
void expect_same_protocol(const core::RunResult& x, const core::RunResult& y) {
  EXPECT_EQ(x.sampled_outputs, y.sampled_outputs);
  EXPECT_EQ(x.final_outputs, y.final_outputs);
  EXPECT_EQ(x.final_cycle, y.final_cycle);
  EXPECT_EQ(x.stats.cycles, y.stats.cycles);
  EXPECT_EQ(x.stats.garbled_non_xor, y.stats.garbled_non_xor);
  EXPECT_EQ(x.stats.skipped_non_xor, y.stats.skipped_non_xor);
  EXPECT_EQ(x.stats.non_xor_slots, y.stats.non_xor_slots);
  EXPECT_TRUE(x.stats.table_digest == y.stats.table_digest);
  EXPECT_EQ(x.stats.comm.garbled_table_bytes, y.stats.comm.garbled_table_bytes);
  EXPECT_EQ(x.stats.comm.input_label_bytes, y.stats.comm.input_label_bytes);
  EXPECT_EQ(x.stats.comm.output_bytes, y.stats.comm.output_bytes);
  EXPECT_EQ(x.stats.ot_choices, y.stats.ot_choices);
  EXPECT_EQ(x.stats.ot_batches, y.stats.ot_batches);
}

/// Random sequential netlist with Bob-owned fixed inputs, dff inits and
/// streamed bits, so both the reset batch and the per-cycle batches carry
/// real choices (same shape as the ot_test fuzz).
netlist::Netlist random_ot_netlist(crypto::CtrRng& rng) {
  netlist::Netlist nl;
  constexpr std::uint32_t kInPerParty = 3;
  for (std::uint32_t i = 0; i < kInPerParty; ++i) {
    nl.inputs.push_back(netlist::Input{netlist::Owner::Alice, false, i, ""});
    nl.inputs.push_back(netlist::Input{netlist::Owner::Bob, false, i, ""});
    nl.inputs.push_back(netlist::Input{netlist::Owner::Public, false, i, ""});
  }
  nl.inputs.push_back(netlist::Input{netlist::Owner::Bob, true, 0, ""});
  nl.inputs.push_back(netlist::Input{netlist::Owner::Alice, true, 0, ""});
  for (std::uint32_t i = 0; i < 3; ++i) {
    netlist::Dff d;
    switch (rng.next_below(3)) {
      case 0: d.init = netlist::Dff::Init::Zero; break;
      case 1:
        d.init = netlist::Dff::Init::AliceBit;
        d.init_index = i;
        break;
      default:
        d.init = netlist::Dff::Init::BobBit;
        d.init_index = i;
        break;
    }
    nl.dffs.push_back(d);
  }
  const int num_gates = 25 + static_cast<int>(rng.next_below(25));
  for (int g = 0; g < num_gates; ++g) {
    const auto limit = static_cast<std::uint32_t>(2 + nl.inputs.size() + nl.dffs.size() +
                                                  static_cast<std::size_t>(g));
    nl.gates.push_back(netlist::Gate{static_cast<netlist::WireId>(rng.next_below(limit)),
                                     static_cast<netlist::WireId>(rng.next_below(limit)),
                                     static_cast<netlist::TruthTable>(rng.next_below(16))});
  }
  const auto nw = static_cast<std::uint32_t>(nl.num_wires());
  for (auto& d : nl.dffs) {
    d.d = static_cast<netlist::WireId>(rng.next_below(nw));
    d.d_invert = rng.next_bool();
  }
  for (int o = 0; o < 5; ++o) {
    nl.outputs.push_back(netlist::OutputPort{static_cast<netlist::WireId>(rng.next_below(nw)),
                                             rng.next_bool(), ""});
  }
  nl.outputs_every_cycle = true;
  return nl;
}

TEST(OtPre, PrecompBitIdenticalToIknpAcrossModesTransportsAndThreads) {
  const int iters = fuzz_iters(3);
  crypto::CtrRng rng(block_from_u64(1895));
  for (int seed = 0; seed < iters; ++seed) {
    const netlist::Netlist nl = random_ot_netlist(rng);
    const netlist::BitVec a = to_bits(rng.next_u64(), 3);
    const netlist::BitVec b = to_bits(rng.next_u64(), 3);
    const netlist::BitVec p = to_bits(rng.next_u64(), 3);
    const std::uint64_t aw = rng.next_u64();
    const std::uint64_t bw = rng.next_u64();
    core::StreamProvider streams;
    streams.alice = [aw](std::uint64_t c) { return netlist::BitVec{((aw >> c) & 1u) != 0}; };
    streams.bob = [bw](std::uint64_t c) { return netlist::BitVec{((bw >> c) & 1u) != 0}; };

    for (const core::Mode mode : {core::Mode::SkipGate, core::Mode::Conventional}) {
      for (const core::TransportKind tk :
           {core::TransportKind::InMemory, core::TransportKind::ThreadedPipe}) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
          core::RunOptions iknp;
          iknp.mode = mode;
          iknp.fixed_cycles = 7;
          iknp.exec.transport = tk;
          iknp.exec.threads = threads;
          iknp.exec.ot_backend = gc::OtBackend::Iknp;
          core::RunOptions pre = iknp;
          pre.exec.ot_backend = gc::OtBackend::Precomp;
          // A tiny pool forces refills to interleave with real batches.
          pre.exec.ot_pool = 4;

          const core::RunResult rk = core::SkipGateDriver(nl, iknp).run(a, b, p, &streams);
          const core::RunResult rp = core::SkipGateDriver(nl, pre).run(a, b, p, &streams);
          expect_same_protocol(rk, rp);
          // Online OT traffic shrinks to the derand frames; the rest of the
          // comm ledger (checked above) is untouched.
          EXPECT_LT(rp.stats.ot_online_bytes, rk.stats.ot_online_bytes)
              << "seed " << seed << " mode " << static_cast<int>(mode);
        }
      }
    }
  }
}

// --- online/offline split -------------------------------------------------------

netlist::Netlist make_serial_adder() {
  builder::CircuitBuilder cb;
  const auto carry = cb.make_dff(netlist::Dff::Init::Zero);
  const builder::Wire a = cb.input(netlist::Owner::Alice, 0, /*streamed=*/true);
  const builder::Wire b = cb.input(netlist::Owner::Bob, 0, /*streamed=*/true);
  const auto fa = builder::full_adder(cb, a, b, cb.dff_out(carry));
  cb.set_dff_d(carry, fa.carry);
  cb.output(fa.sum, "sum");
  cb.set_outputs_every_cycle(true);
  return cb.take();
}

/// 8 streamed Bob bits (and 8 Alice bits) per cycle: each cycle's OT batch
/// carries m == 8 choices, the shape where the correction header amortizes
/// to exactly 34 online bytes per choice.
netlist::Netlist make_wide_stream_netlist() {
  builder::CircuitBuilder cb;
  builder::Wire acc = cb.constant(false);
  for (std::uint32_t i = 0; i < 8; ++i) {
    const builder::Wire a = cb.input(netlist::Owner::Alice, i, /*streamed=*/true);
    const builder::Wire b = cb.input(netlist::Owner::Bob, i, /*streamed=*/true);
    acc = cb.xor_(acc, cb.and_(a, b));
  }
  cb.output(acc, "acc");
  cb.set_outputs_every_cycle(true);
  return cb.take();
}

TEST(OtPre, OnlineBytesPerChoiceMeetTheDerandFloor) {
  core::StreamProvider streams;
  streams.alice = [](std::uint64_t c) { return to_bits(0xA5u ^ c, 8); };
  streams.bob = [](std::uint64_t c) { return to_bits(0x3Cu + c, 8); };
  core::RunOptions opts;
  opts.fixed_cycles = 16;
  opts.exec.ot_backend = gc::OtBackend::Iknp;
  core::RunOptions pre = opts;
  pre.exec.ot_backend = gc::OtBackend::Precomp;

  {
    // m == 1 batches (one streamed Bob bit per cycle): IKNP pays the full
    // column matrix online — 192 B per choice — while derandomization pays
    // 48 B (header + 2 masked pads).
    const netlist::Netlist nl = make_serial_adder();
    core::StreamProvider bit_streams;
    bit_streams.alice = [](std::uint64_t c) { return netlist::BitVec{(c & 1) != 0}; };
    bit_streams.bob = [](std::uint64_t c) { return netlist::BitVec{(c & 2) != 0}; };
    const core::RunResult rk = core::SkipGateDriver(nl, opts).run({}, {}, {}, &bit_streams);
    const core::RunResult rp = core::SkipGateDriver(nl, pre).run({}, {}, {}, &bit_streams);
    ASSERT_EQ(rk.stats.ot_choices, 16u);
    // IKNP sits entirely on the online path: every OT byte, base phase
    // included, is critical-path traffic.
    EXPECT_EQ(rk.stats.ot_online_bytes, rk.stats.comm.ot_bytes);
    EXPECT_EQ(rk.stats.ot_online_bytes - 16 * (1 + 2 * gc::kOtKappa),
              192u * rk.stats.ot_choices);
    EXPECT_EQ(rp.stats.ot_online_bytes, 48u * rp.stats.ot_choices);
    EXPECT_EQ(rp.stats.ot_offline_wall_ns > 0, true);
    // comm.ot_bytes still sees the refill traffic — it just isn't online.
    EXPECT_EQ(rp.stats.comm.ot_bytes - rp.stats.ot_online_bytes,
              16u * (1 + 2 * gc::kOtKappa)          // base phase
                  + 16u * (2 + 8 * ((1024 + 7) / 8) + 2 * 1024));  // one bulk refill
  }
  {
    // m == 8 batches: 16*(1 + 16)/8 == 34 B per streamed choice, the
    // acceptance floor, against 52 B for IKNP at the same batch size.
    const netlist::Netlist nl = make_wide_stream_netlist();
    const core::RunResult rk = core::SkipGateDriver(nl, opts).run({}, {}, {}, &streams);
    const core::RunResult rp = core::SkipGateDriver(nl, pre).run({}, {}, {}, &streams);
    expect_same_protocol(rk, rp);
    ASSERT_EQ(rp.stats.ot_choices, 16u * 8u);
    EXPECT_EQ(rp.stats.ot_online_bytes, 34u * rp.stats.ot_choices);
    EXPECT_EQ(rp.stats.ot_online_bytes, derand_bytes(8) * 16);
  }
}

TEST(OtPre, IdealAndIknpReportAllOtBytesAsOnline) {
  const netlist::Netlist nl = make_serial_adder();
  core::StreamProvider streams;
  streams.alice = [](std::uint64_t c) { return netlist::BitVec{(c & 1) != 0}; };
  streams.bob = [](std::uint64_t c) { return netlist::BitVec{(c & 2) != 0}; };
  core::RunOptions opts;
  opts.fixed_cycles = 8;
  const core::RunResult ideal = core::SkipGateDriver(nl, opts).run({}, {}, {}, &streams);
  EXPECT_EQ(ideal.stats.ot_online_bytes, ideal.stats.comm.ot_bytes);
  EXPECT_EQ(ideal.stats.ot_offline_wall_ns, 0u);
  core::RunOptions iknp = opts;
  iknp.exec.ot_backend = gc::OtBackend::Iknp;
  const core::RunResult rk = core::SkipGateDriver(nl, iknp).run({}, {}, {}, &streams);
  EXPECT_EQ(rk.stats.ot_online_bytes, rk.stats.comm.ot_bytes);
  EXPECT_EQ(rk.stats.ot_offline_wall_ns, 0u);
}

// --- warm pools across runs -----------------------------------------------------

TEST(OtPre, WarmSessionAmortizesBasePhaseAndBulkRefills) {
  const auto prog = arm::assemble(
      "ldr r4, [r0]\n"
      "ldr r5, [r1]\n"
      "add r4, r4, r5\n"
      "str r4, [r2]\n"
      "swi 0\n");
  arm::MemoryConfig cfg;
  cfg.imem_words = 16;
  cfg.alice_words = cfg.bob_words = cfg.out_words = 1;
  cfg.ram_words = 16;
  const arm::Arm2Gc machine(cfg, prog);

  core::ExecOptions pre;
  pre.ot_backend = gc::OtBackend::Precomp;
  arm::Arm2Gc::Session session(machine, pre);
  for (std::uint32_t i = 0; i < 3; ++i) {
    const arm::Arm2GcResult r = session.run(std::vector<std::uint32_t>{10 + i},
                                            std::vector<std::uint32_t>{5 * i});
    EXPECT_EQ(r.outputs[0], 10 + i + 5 * i);
    EXPECT_EQ(r.stats.ot_choices, 32u);
    // All 32 Bob bits ride one derand batch per run; the base phase and the
    // single bulk refill are paid on the first run only — every later run
    // is pure online derandomization (zero offline wall).
    EXPECT_EQ(r.stats.ot_base_ots, i == 0 ? gc::kOtKappa : 0u) << "run " << i;
    EXPECT_EQ(r.stats.ot_online_bytes, derand_bytes(32)) << "run " << i;
    if (i > 0) {
      EXPECT_EQ(r.stats.ot_offline_wall_ns, 0u) << "run " << i;
    }
    EXPECT_EQ(r.stats.comm.ot_bytes > r.stats.ot_online_bytes, i == 0) << "run " << i;
  }

  // The same amortization over the threaded pipe (each party's pool lives
  // with its thread).
  core::ExecOptions piped = pre;
  piped.transport = core::TransportKind::ThreadedPipe;
  arm::Arm2Gc::Session piped_session(machine, piped);
  for (std::uint32_t i = 0; i < 2; ++i) {
    const arm::Arm2GcResult r = piped_session.run(std::vector<std::uint32_t>{20 + i},
                                                  std::vector<std::uint32_t>{3 * i});
    EXPECT_EQ(r.outputs[0], 20 + i + 3 * i);
    EXPECT_EQ(r.stats.ot_base_ots, i == 0 ? gc::kOtKappa : 0u) << "piped run " << i;
  }
}

TEST(OtPre, PrecompMatchesIknpOnArmProgram) {
  const auto prog = arm::assemble(
      "ldr r4, [r0]\n"
      "ldr r5, [r1]\n"
      "add r4, r4, r5\n"
      "str r4, [r2]\n"
      "swi 0\n");
  arm::MemoryConfig cfg;
  cfg.imem_words = 16;
  cfg.alice_words = cfg.bob_words = cfg.out_words = 1;
  cfg.ram_words = 16;
  const arm::Arm2Gc machine(cfg, prog);

  core::ExecOptions iknp;
  iknp.ot_backend = gc::OtBackend::Iknp;
  core::ExecOptions pre;
  pre.ot_backend = gc::OtBackend::Precomp;
  const std::vector<std::uint32_t> alice = {41};
  const std::vector<std::uint32_t> bob = {59};
  const arm::Arm2GcResult rk = machine.run(alice, bob, 1u << 20, gc::Scheme::HalfGates, iknp);
  const arm::Arm2GcResult rp = machine.run(alice, bob, 1u << 20, gc::Scheme::HalfGates, pre);
  EXPECT_EQ(rp.outputs[0], 100u);
  EXPECT_EQ(rp.outputs, rk.outputs);
  EXPECT_EQ(rp.cycles, rk.cycles);
  EXPECT_EQ(rp.stats.garbled_non_xor, rk.stats.garbled_non_xor);
  EXPECT_TRUE(rp.stats.table_digest == rk.stats.table_digest);
  EXPECT_EQ(rp.stats.ot_choices, rk.stats.ot_choices);
  EXPECT_LT(rp.stats.ot_online_bytes, rk.stats.ot_online_bytes);
}

}  // namespace
