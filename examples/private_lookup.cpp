// Oblivious array lookup (the paper's §4.4 scenario): Alice holds a table,
// Bob holds a secret index; Bob's index never leaves the protocol, yet the
// lookup costs only a linear scan of the table — the LDR's address decoder
// is garbled exactly where the index bits are secret, nothing else.
#include <cstdio>
#include <vector>

#include "arm/arm2gc.h"
#include "arm/assembler.h"

int main() {
  using namespace arm2gc;

  // out[0] = alice[bob[0] & 15]
  const auto program = arm::assemble(R"(
    ldr r4, [r1]        ; Bob's secret index
    and r4, r4, #15     ; clamp to table size (free: public mask)
    mov r4, r4, lsl #2  ; word -> byte offset (free)
    add r4, r0, r4      ; &alice[idx]: only low address bits become secret
    ldr r5, [r4]        ; oblivious read: linear-scan muxes, garbled
    str r5, [r2]
    swi 0
  )");

  arm::MemoryConfig cfg;
  cfg.imem_words = 16;
  cfg.alice_words = 16;
  cfg.bob_words = 1;
  cfg.out_words = 1;
  cfg.ram_words = 16;
  const arm::Arm2Gc machine(cfg, program);

  std::vector<std::uint32_t> table(16);
  for (std::size_t i = 0; i < 16; ++i) table[i] = 1000 + 111 * static_cast<std::uint32_t>(i);
  const std::vector<std::uint32_t> secret_index = {11};

  const arm::Arm2GcResult r = machine.run(table, secret_index);
  std::printf("oblivious lookup: table[<secret 11>] = %u (expected %u)\n", r.outputs[0],
              table[11]);
  std::printf("garbled non-XOR gates: %llu  — the cost of scanning one 16-word memory,\n"
              "not of garbling the processor (%llu non-free gates/cycle x %llu cycles)\n",
              static_cast<unsigned long long>(r.stats.garbled_non_xor),
              static_cast<unsigned long long>(machine.cpu().nl.count_non_free()),
              static_cast<unsigned long long>(r.cycles));
  return 0;
}
