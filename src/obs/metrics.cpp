#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace arm2gc::obs {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if ARM2GC_OBS

std::size_t shard_index() noexcept {
  // Dense per-thread ordinal: threads that record metrics get consecutive
  // ids, so a WorkPool of N workers occupies N distinct cells (no hash
  // collisions at small N, unlike hashing std::this_thread::get_id()).
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal % kMetricShards;
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot snap;
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += s.bucket[b].load(std::memory_order_relaxed);
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : snap.buckets) snap.count += c;
  return snap;
}

namespace {

// Index of the bucket holding the nearest-rank p-th value, plus the rank's
// position within that bucket (for interpolation). Returns false when empty.
bool locate_rank(const Histogram::Snapshot& snap, double p, std::size_t& bucket,
                 std::uint64_t& rank_in_bucket) {
  if (snap.count == 0) return false;
  p = std::clamp(p, 0.0, 1.0);
  // Nearest-rank: the ceil(p * count)-th smallest value (1-based), at least 1.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p * static_cast<double>(snap.count))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (seen + snap.buckets[b] >= rank) {
      bucket = b;
      rank_in_bucket = rank - seen;
      return true;
    }
    seen += snap.buckets[b];
  }
  return false;  // unreachable when counts are consistent
}

}  // namespace

double Histogram::percentile(double p) const noexcept {
  const Snapshot snap = snapshot();
  std::size_t b = 0;
  std::uint64_t rank_in_bucket = 0;
  if (!locate_rank(snap, p, b, rank_in_bucket)) return 0.0;
  const double lo = static_cast<double>(bucket_lo(b));
  // Interpolate across the bucket by the rank's position inside it; the
  // overflow bucket has no finite width, so report its lower edge.
  if (b + 1 >= kBuckets) return lo;
  const double width = static_cast<double>(bucket_hi(b)) - lo;
  const double frac = static_cast<double>(rank_in_bucket) /
                      static_cast<double>(snap.buckets[b]);
  return lo + width * frac;
}

Histogram::Bounds Histogram::percentile_bounds(double p) const noexcept {
  const Snapshot snap = snapshot();
  std::size_t b = 0;
  std::uint64_t rank_in_bucket = 0;
  if (!locate_rank(snap, p, b, rank_in_bucket)) return {};
  // Inclusive value range of the landing bucket: [lo, hi - 1] for finite
  // buckets, [lo, max] for the overflow bucket.
  Bounds out;
  out.lo = bucket_lo(b);
  out.hi = b + 1 >= kBuckets ? bucket_hi(b) : bucket_hi(b) - 1;
  return out;
}

Registry& Registry::instance() {
  // Leaked on purpose: instruments must outlive static destructors that may
  // still record (e.g. WarmState teardown).
  static Registry* r = new Registry();
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::string Registry::prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 7);
  if (name.substr(0, 7) != "arm2gc_") out = "arm2gc_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

void Registry::render_prometheus(std::string& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    const std::string pn = prometheus_name(name);
    out += "# TYPE " + pn + " counter\n";
    out += pn + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = prometheus_name(name);
    out += "# TYPE " + pn + " gauge\n";
    out += pn + " " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pn = prometheus_name(name);
    const Histogram::Snapshot snap = h->snapshot();
    out += "# TYPE " + pn + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      cum += snap.buckets[b];
      // Cumulative count of values <= the bucket's inclusive upper edge;
      // skip interior empty-prefix buckets to keep pages small, but always
      // emit a bucket once it carries cumulative mass.
      if (cum == 0 && b + 1 < Histogram::kBuckets) continue;
      if (b + 1 >= Histogram::kBuckets) break;  // folded into +Inf below
      out += pn + "_bucket{le=\"" +
             std::to_string(Histogram::bucket_hi(b) - 1) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += pn + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
    out += pn + "_sum " + std::to_string(snap.sum) + "\n";
    out += pn + "_count " + std::to_string(snap.count) + "\n";
  }
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : counters_) kv.second->reset();
  for (auto& kv : gauges_) kv.second->reset();
  for (auto& kv : histograms_) kv.second->reset();
}

#endif  // ARM2GC_OBS

}  // namespace arm2gc::obs
