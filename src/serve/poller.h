// Readiness multiplexer behind the garbler service's event loop: a thin
// level-triggered interest set over epoll where available (Linux), with a
// portable poll() backend everywhere — selectable at runtime so the tests
// exercise both on any host. Level-triggered on purpose: the service's
// connections park with data possibly already staged in userspace, and
// edge-triggered wakeups plus userspace buffers is how readiness loops lose
// wakeups.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace arm2gc::serve {

enum class PollerBackend : std::uint8_t {
  Default,  ///< epoll on Linux, poll() elsewhere
  Poll,     ///< force the portable poll() backend
};

class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;  ///< POLLERR/POLLHUP-class condition
  };

  explicit Poller(PollerBackend backend = PollerBackend::Default);
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// True when this poller runs on epoll (false = portable poll()).
  [[nodiscard]] bool using_epoll() const { return epfd_ >= 0; }

  void add(int fd, bool want_read, bool want_write);
  void mod(int fd, bool want_read, bool want_write);
  void del(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever, 0 = non-blocking) and appends
  /// ready fds to `out` (cleared first). Returns the number of events.
  std::size_t wait(std::vector<Event>& out, int timeout_ms);

 private:
  int epfd_ = -1;                  ///< epoll backend; -1 = poll backend
  std::map<int, short> interest_;  ///< poll backend's registered fds
};

}  // namespace arm2gc::serve
