// Fixed-key garbling hash H(X, tweak) built from AES-128, following the
// pi-hash of Bellare et al. (S&P'13): H(X,t) = pi(K) xor K with K = 2X xor t,
// where pi is AES under a fixed public key. This is the hash used by
// JustGarble/TinyGarble-style engines and by the half-gates construction.
#pragma once

#include <cstdint>

#include "crypto/aes128.h"
#include "crypto/block.h"

namespace arm2gc::crypto {

/// Correlation-robust hash for garbling. Stateless and thread-compatible; the
/// fixed AES key is baked in at construction.
class GarbleHash {
 public:
  GarbleHash();

  /// H(label, tweak): tweak must be unique per (gate, row-half) use.
  [[nodiscard]] Block operator()(Block label, std::uint64_t tweak) const;

 private:
  Aes128 pi_;
};

}  // namespace arm2gc::crypto
