#include "serve/service.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "crypto/block.h"
#include "gc/transport.h"
#include "gc/transport_socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/wire.h"

namespace arm2gc::serve {

namespace {

/// Protocol cycles a connection may run before yielding the shard back to
/// its ready queue (fairness slice).
constexpr std::uint64_t kSliceCycles = 8;

/// A /metrics request larger than this is not a scrape; drop it.
constexpr std::size_t kMaxHttpHeader = 8192;

/// Static facts about one program that decide the park predicates.
struct SpecFacts {
  bool bob_fixed = false;     ///< fixed Bob input bits or BobBit dff inits
  bool bob_streamed = false;  ///< per-cycle Bob bits
  bool has_outputs = false;
};

SpecFacts facts_of(const netlist::Netlist& nl) {
  SpecFacts f;
  for (const auto& in : nl.inputs) {
    if (in.owner != netlist::Owner::Bob) continue;
    (in.streamed ? f.bob_streamed : f.bob_fixed) = true;
  }
  for (const auto& d : nl.dffs) {
    if (d.init == netlist::Dff::Init::BobBit) f.bob_fixed = true;
  }
  f.has_outputs = !nl.outputs.empty();
  return f;
}

std::string warm_key_of(const std::string& program, gc::OtBackend ot, std::size_t pool) {
  return program + "|" + std::to_string(static_cast<unsigned>(ot)) + "|" +
         std::to_string(pool);
}

/// Packs a BitVec little-endian within each byte (the RunSummary outputs
/// encoding).
std::vector<std::uint8_t> pack_bits(const netlist::BitVec& bits) {
  std::vector<std::uint8_t> out((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Impl: warm pool, per-connection state machine, shards
// ---------------------------------------------------------------------------

struct GarblerService::Impl {
  /// WarmStates pooled per (program, OT backend, pool size). release()
  /// re-bases the OT half before pooling: warm extension streams are
  /// pairing-specific, so handing one to a *different* client would desync
  /// mid-protocol; the plan caches and cone memos — the expensive part —
  /// persist. Re-basing is also the endpoint abort path, which is why a
  /// mid-protocol disconnect returns the state in exactly the same shape as
  /// a clean finish: a pooled WarmState cannot be poisoned by a dying
  /// client.
  class WarmPool {
   public:
    explicit WarmPool(std::size_t cap) : cap_(cap) {}

    std::unique_ptr<core::WarmState> acquire(const std::string& key,
                                             const core::WarmState::Options& wopts,
                                             bool& hit) {
      // Checkout latency covers both shapes: pool hit (lock + pop) and miss
      // (full WarmState construction) — the cold-vs-marginal split the
      // reusable-garbling cost model needs.
      A2G_HIST_TIMER("serve.warm_checkout_ns");
      {
        const std::lock_guard<std::mutex> lock(mu_);
        auto it = pools_.find(key);
        if (it != pools_.end() && !it->second.empty()) {
          std::unique_ptr<core::WarmState> ws = std::move(it->second.back());
          it->second.pop_back();
          hit = true;
          return ws;
        }
      }
      hit = false;
      return std::make_unique<core::WarmState>(core::Role::Garbler, wopts);
    }

    void release(const std::string& key, std::unique_ptr<core::WarmState> ws) {
      if (ws == nullptr || cap_ == 0) return;
      ws->reset_ot();
      const std::lock_guard<std::mutex> lock(mu_);
      auto& v = pools_[key];
      if (v.size() < cap_) v.push_back(std::move(ws));
    }

   private:
    std::mutex mu_;
    std::map<std::string, std::vector<std::unique_ptr<core::WarmState>>> pools_;
    std::size_t cap_;
  };

  enum class Phase : std::uint8_t {
    Hello,
    Start,
    Begin,
    Work,
    Sample,
    Latch,
    Refill,
    Finish,
    WrapUp,
    Drain,
  };

  /// What a connection is waiting for after an advance() pass.
  enum class Waiting : std::uint8_t { Read, Write, Ready, Done };

  /// One client connection: a resumable state machine at schedule-hook
  /// granularity. advance() runs hooks until it either needs bytes the
  /// client has not sent (park on read), has queued more than the soft
  /// send limit (park on write — backpressure), exhausts its fairness
  /// slice, or completes. A hook that recvs on a mispredicted park cannot
  /// deadlock: the transport falls back to an inline poll() bounded by the
  /// recv deadline, so a wrong prediction costs scheduling fairness, never
  /// correctness — which is why the predicates may stay conservative.
  struct Conn {
    std::unique_ptr<gc::SocketDuplex> sock;
    const ProgramSpec* spec = nullptr;
    SpecFacts facts;
    core::PartyOptions popts;
    std::string warm_key;
    std::unique_ptr<core::WarmState> warm;
    bool warm_hit = false;
    std::unique_ptr<core::GarblerEndpoint> ep;
    Phase phase = Phase::Hello;
    std::uint64_t cycle = 0;
    std::uint64_t slice = 0;
    bool is_final = false;
    bool readable_hint = false;  ///< poller saw POLLIN since the last park
    core::RunResult result;
    /// When the current phase was entered (dwell = time to the next enter(),
    /// parked waits included — that is the point: dwell attributes p99 to
    /// where connections actually sit).
    std::uint64_t phase_enter_ns = obs::now_ns();

    [[nodiscard]] bool input_hint() const {
      return sock->buffered_in() > 0 || readable_hint;
    }

    [[nodiscard]] static const char* phase_label(Phase p) {
      static constexpr const char* kNames[] = {
          "serve.hello", "serve.start",  "serve.begin",  "serve.work",
          "serve.sample", "serve.latch", "serve.refill", "serve.finish",
          "serve.wrapup", "serve.drain"};
      return kNames[static_cast<std::size_t>(p)];
    }

#if ARM2GC_OBS
    [[nodiscard]] static obs::Histogram& phase_dwell_hist(Phase p) {
      static obs::Histogram* const kHists[] = {
          &obs::Registry::instance().histogram("serve.phase.hello_ns"),
          &obs::Registry::instance().histogram("serve.phase.start_ns"),
          &obs::Registry::instance().histogram("serve.phase.begin_ns"),
          &obs::Registry::instance().histogram("serve.phase.work_ns"),
          &obs::Registry::instance().histogram("serve.phase.sample_ns"),
          &obs::Registry::instance().histogram("serve.phase.latch_ns"),
          &obs::Registry::instance().histogram("serve.phase.refill_ns"),
          &obs::Registry::instance().histogram("serve.phase.finish_ns"),
          &obs::Registry::instance().histogram("serve.phase.wrapup_ns"),
          &obs::Registry::instance().histogram("serve.phase.drain_ns")};
      return *kHists[static_cast<std::size_t>(p)];
    }
#endif

    /// Phase transition: records the outgoing phase's dwell (histogram
    /// always, trace span when tracing is on), then switches.
    void enter(Phase next) {
#if ARM2GC_OBS
      const std::uint64_t now = obs::now_ns();
      phase_dwell_hist(phase).record(now - phase_enter_ns);
      obs::Tracer& tracer = obs::Tracer::instance();
      if (tracer.enabled()) {
        tracer.record(phase_label(phase), "serve", phase_enter_ns,
                      now - phase_enter_ns);
      }
      phase_enter_ns = now;
#endif
      phase = next;
    }

    HelloStatus read_hello(Impl& impl) {
      HelloRequest h{};
      sock->recv_control(&h, sizeof h);
      if (h.magic != kHelloMagic) return HelloStatus::BadMagic;
      if (h.version != kWireVersion) return HelloStatus::BadVersion;
      if (h.name_len == 0 || h.name_len > kMaxProgramName) {
        return HelloStatus::UnknownProgram;
      }
      std::string name(h.name_len, '\0');
      sock->recv_control(name.data(), name.size());
      const SpecFacts* f = nullptr;
      spec = impl.find_program(name, &f);
      if (spec == nullptr) return HelloStatus::UnknownProgram;
      facts = *f;
      if (h.scheme > static_cast<std::uint8_t>(gc::Scheme::Classic4) ||
          h.ot_backend > static_cast<std::uint8_t>(gc::OtBackend::Precomp)) {
        return HelloStatus::OptionMismatch;
      }
      // The cycle schedule and the public seed are part of the registered
      // contract: a divergence would desync the planners mid-protocol, so
      // it fails loudly at the door instead.
      const crypto::Block seed = crypto::Block::from_bytes(h.protocol_seed);
      if (h.fixed_cycles != spec->opts.fixed_cycles.value_or(0) ||
          h.max_cycles != spec->opts.max_cycles || !(seed == spec->opts.protocol_seed)) {
        return HelloStatus::OptionMismatch;
      }
      popts = spec->opts;
      popts.scheme = static_cast<gc::Scheme>(h.scheme);
      popts.ot_backend = static_cast<gc::OtBackend>(h.ot_backend);
      popts.ot_pool = static_cast<std::size_t>(h.ot_pool);
      popts.threads = impl.opts.exec_threads;
      return HelloStatus::Ok;
    }

    void send_summary() {
      const gc::CommStats sent = sock->sent();
      RunSummary s;
      s.cycles = result.stats.cycles;
      s.final_cycle = result.final_cycle;
      s.garbled_non_xor = result.stats.garbled_non_xor;
      result.stats.table_digest.to_bytes(s.table_digest);
      s.comm[0] = sent.garbled_table_bytes;
      s.comm[1] = sent.input_label_bytes;
      s.comm[2] = sent.ot_bytes;
      s.comm[3] = sent.output_bytes;
      s.out_bits = result.final_outputs.size();
      sock->send_control(&s, sizeof s);
      const std::vector<std::uint8_t> packed = pack_bits(result.final_outputs);
      if (!packed.empty()) sock->send_control(packed.data(), packed.size());
    }

    void check_client_summary() {
      RunSummary c{};
      sock->recv_control(&c, sizeof c);
      if (c.magic != kSummaryMagic) {
        throw std::runtime_error("serve: malformed client wrap-up (desynced stream?)");
      }
      if (c.cycles != result.stats.cycles ||
          c.garbled_non_xor != result.stats.garbled_non_xor) {
        throw std::runtime_error("serve: parties disagree on the protocol shape");
      }
      if (!(crypto::Block::from_bytes(c.table_digest) == result.stats.table_digest)) {
        throw std::runtime_error("serve: garbled-table digest mismatch across parties");
      }
    }

    Waiting advance(Impl& impl) {
      for (;;) {
        // Backpressure gate: drain what the kernel will take; past the soft
        // limit this connection is neither read nor advanced until the
        // queue empties.
        if (!sock->try_flush() && sock->pending_out() > impl.opts.send_soft_limit) {
          return Waiting::Write;
        }
        switch (phase) {
          case Phase::Hello: {
            if (!input_hint()) return Waiting::Read;
            readable_hint = false;
            const HelloStatus status = read_hello(impl);
            HelloReply reply;
            reply.status = static_cast<std::uint32_t>(status);
            sock->send_control(&reply, sizeof reply);
            if (status != HelloStatus::Ok) {
              impl.hello_rejected.fetch_add(1, std::memory_order_relaxed);
              return Waiting::Done;
            }
            warm_key = warm_key_of(spec->name, popts.ot_backend, popts.ot_pool);
            core::WarmState::Options wopts;
            wopts.plan_cache_budget_bytes = popts.plan_cache_budget_bytes;
            wopts.cone_memo_budget_bytes = popts.cone_memo_budget_bytes;
            wopts.ot_backend = popts.ot_backend;
            wopts.ot_pool = popts.ot_pool;
            wopts.seed = popts.own_seed();
            warm = impl.warm.acquire(warm_key, wopts, warm_hit);
            (warm_hit ? impl.warm_hits : impl.warm_misses)
                .fetch_add(1, std::memory_order_relaxed);
            ep = std::make_unique<core::GarblerEndpoint>(*spec->nl, popts, sock->end(),
                                                         warm.get());
            enter(Phase::Start);
            break;
          }
          case Phase::Start: {
            // The start-phase OT batch (fixed Bob bits) opens with
            // receiver-first frames under the extension backends; Ideal
            // recvs nothing.
            const bool parks =
                facts.bob_fixed && popts.ot_backend != gc::OtBackend::Ideal;
            if (parks && !input_hint()) return Waiting::Read;
            if (parks) readable_hint = false;
            ep->start(spec->alice_bits, spec->pub_bits, spec->streams);
            cycle = 0;
            enter(Phase::Begin);
            break;
          }
          case Phase::Begin: {
            const bool parks =
                facts.bob_streamed && popts.ot_backend != gc::OtBackend::Ideal;
            if (parks && !input_hint()) return Waiting::Read;
            if (parks) readable_hint = false;
            ep->begin(cycle);
            enter(Phase::Work);
            break;
          }
          case Phase::Work: {
            is_final = ep->work(cycle);
            enter(Phase::Sample);
            break;
          }
          case Phase::Sample: {
            // Decoding sampled outputs reads the client's output labels.
            const bool parks = ep->plan().sample && facts.has_outputs;
            if (parks && !input_hint()) return Waiting::Read;
            if (parks) readable_hint = false;
            ep->sample();
            enter(is_final ? Phase::Finish : Phase::Latch);
            break;
          }
          case Phase::Latch: {
            ep->latch();
            enter(Phase::Refill);
            break;
          }
          case Phase::Refill: {
            // Precomp refills exchange receiver-first frames exactly when
            // the pool is below low water; both sides track the same fill
            // level, so our own pool predicts the client's behavior.
            const bool parks = popts.ot_backend == gc::OtBackend::Precomp &&
                               warm->ot_refill_pending();
            if (parks && !input_hint()) return Waiting::Read;
            if (parks) readable_hint = false;
            ep->ot_refill();
            ++cycle;
            enter(Phase::Begin);
            if (++slice >= kSliceCycles) {
              slice = 0;
              return Waiting::Ready;
            }
            break;
          }
          case Phase::Finish: {
            result = ep->finish();
            send_summary();
            enter(Phase::WrapUp);
            break;
          }
          case Phase::WrapUp: {
            if (!input_hint()) return Waiting::Read;
            readable_hint = false;
            check_client_summary();
            impl.runs_ok.fetch_add(1, std::memory_order_relaxed);
            impl.gates_garbled.fetch_add(result.stats.garbled_non_xor,
                                         std::memory_order_relaxed);
            impl.cycles_run.fetch_add(result.stats.cycles, std::memory_order_relaxed);
            // The run is over: drop the endpoint (it borrows the WarmState)
            // and return the warm plan caches to the pool for the next
            // client.
            ep.reset();
            impl.warm.release(warm_key, std::move(warm));
            enter(Phase::Drain);
            break;
          }
          case Phase::Drain: {
            if (!sock->try_flush()) return Waiting::Write;
            return Waiting::Done;
          }
        }
      }
    }
  };

  /// One /metrics scrape in flight: a minimal non-blocking HTTP/1.1
  /// request/response cycle on shard 0's poller. The SocketDuplex is used
  /// purely as an fd owner — HTTP bytes go through raw recv/send and never
  /// touch the framed transport.
  struct HttpConn {
    std::unique_ptr<gc::SocketDuplex> sock;
    std::string in;
    std::string out;
    std::size_t off = 0;
    std::uint64_t opened_ns = obs::now_ns();
  };

  /// One event-loop thread: a private poller, a disjoint connection set
  /// (handed over once at accept through the inbox), a ready queue for
  /// connections mid-slice. Shard 0 additionally owns the listener and,
  /// when telemetry is enabled, the /metrics listener + scrape connections
  /// and the periodic stats snapshot.
  struct Shard {
    Impl* impl;
    std::size_t index;
    Poller poller;
    int wake_r = -1;
    int wake_w = -1;
    std::mutex inbox_mu;
    std::vector<std::unique_ptr<gc::SocketDuplex>> inbox;
    std::map<int, std::unique_ptr<Conn>> conns;
    std::deque<int> ready;
    std::vector<Poller::Event> events;
    std::map<int, std::unique_ptr<HttpConn>> http;  ///< shard 0 only
    std::uint64_t last_publish_ns = 0;
    obs::Gauge* ready_depth_gauge = nullptr;  ///< per-shard ready-queue depth

    Shard(Impl* i, std::size_t idx) : impl(i), index(idx), poller(i->opts.poller) {
      int pipefd[2];
      if (::pipe(pipefd) != 0) {
        throw std::runtime_error("serve: pipe() failed");
      }
      wake_r = pipefd[0];
      wake_w = pipefd[1];
      // The drain loop reads until empty; a blocking read end would hang it.
      (void)::fcntl(wake_r, F_SETFL, ::fcntl(wake_r, F_GETFL, 0) | O_NONBLOCK);
      poller.add(wake_r, /*want_read=*/true, /*want_write=*/false);
      if (index == 0) {
        impl->listener->set_nonblocking(true);
        poller.add(impl->listener->fd(), /*want_read=*/true, /*want_write=*/false);
        if (impl->metrics_listener != nullptr) {
          impl->metrics_listener->set_nonblocking(true);
          poller.add(impl->metrics_listener->fd(), /*want_read=*/true,
                     /*want_write=*/false);
        }
      }
      ready_depth_gauge = &obs::Registry::instance().gauge(
          "serve.shard" + std::to_string(index) + ".ready_depth");
    }

    ~Shard() {
      if (wake_r >= 0) ::close(wake_r);
      if (wake_w >= 0) ::close(wake_w);
    }

    void wake() {
      const char b = 1;
      for (;;) {
        const ssize_t n = ::write(wake_w, &b, 1);
        if (n >= 0 || errno != EINTR) break;
      }
    }

    void enqueue(std::unique_ptr<gc::SocketDuplex> sock) {
      {
        const std::lock_guard<std::mutex> lock(inbox_mu);
        inbox.push_back(std::move(sock));
      }
      wake();
    }

    void adopt_inbox() {
      std::vector<std::unique_ptr<gc::SocketDuplex>> pending;
      {
        const std::lock_guard<std::mutex> lock(inbox_mu);
        pending.swap(inbox);
      }
      for (auto& sock : pending) {
        sock->set_nonblocking(true);
        sock->set_send_limit(impl->opts.send_hard_limit);
        sock->set_recv_timeout_ms(impl->opts.recv_timeout_ms);
        const int fd = sock->fd();
        auto conn = std::make_unique<Conn>();
        conn->sock = std::move(sock);
        poller.add(fd, /*want_read=*/true, /*want_write=*/false);
        conns.emplace(fd, std::move(conn));
      }
    }

    /// The protocol run itself is over: the result exists and the summary
    /// went out. WrapUp/Drain only wait for the client's cross-check frame
    /// and the final flush — losing the connection there is not a failed run.
    static bool run_finished(const Conn& c) {
      return c.phase == Phase::WrapUp || c.phase == Phase::Drain;
    }

    void teardown(int fd, bool failed) {
      auto it = conns.find(fd);
      if (it == conns.end()) return;
      Conn& c = *it->second;
      if (failed) {
        impl->runs_failed.fetch_add(1, std::memory_order_relaxed);
        if (c.ep != nullptr) c.ep->abort();
      } else if (c.phase == Phase::WrapUp) {
        // Finished run torn down before the client's cross-check arrived
        // (client vanished or the service is stopping): still a success.
        // Drain-phase connections were already counted when WrapUp ran.
        impl->runs_ok.fetch_add(1, std::memory_order_relaxed);
        impl->gates_garbled.fetch_add(c.result.stats.garbled_non_xor,
                                      std::memory_order_relaxed);
        impl->cycles_run.fetch_add(c.result.stats.cycles, std::memory_order_relaxed);
      }
      c.ep.reset();
      impl->warm.release(c.warm_key, std::move(c.warm));
      impl->fold_high_water(c.sock->send_high_water());
      poller.del(fd);
      conns.erase(it);  // closes the socket fd
      impl->active.fetch_sub(1, std::memory_order_relaxed);
    }

    void drive(int fd) {
      auto it = conns.find(fd);
      if (it == conns.end()) return;
      Conn& c = *it->second;
      Waiting w;
      try {
        w = c.advance(*impl);
      } catch (const gc::TransportClosed&) {
        // Client went away: a failure only if the run was still in flight;
        // abort the endpoint, re-base + return the WarmState either way.
        teardown(fd, /*failed=*/!run_finished(c));
        return;
      } catch (const std::exception&) {
        // Protocol failures, including a failed wrap-up cross-check.
        teardown(fd, /*failed=*/true);
        return;
      }
      switch (w) {
        case Waiting::Read:
          poller.mod(fd, /*want_read=*/true, /*want_write=*/c.sock->pending_out() > 0);
          break;
        case Waiting::Write:
          // Backpressure: deliberately NOT reading this connection.
          poller.mod(fd, /*want_read=*/false, /*want_write=*/true);
          break;
        case Waiting::Ready:
          poller.mod(fd, /*want_read=*/false, /*want_write=*/false);
          ready.push_back(fd);
          break;
        case Waiting::Done:
          teardown(fd, /*failed=*/false);
          break;
      }
    }

    void accept_pending() {
      for (;;) {
        std::unique_ptr<gc::SocketDuplex> sock = impl->listener->try_accept();
        if (sock == nullptr) return;
        impl->accepted.fetch_add(1, std::memory_order_relaxed);
        if (impl->active.load(std::memory_order_relaxed) >= impl->opts.max_clients) {
          // Reject at the door: the client reads Busy + EOF right after
          // sending its hello. The hello is never parsed, but it must be
          // drained from the socket before the close — closing with unread
          // inbound data turns the FIN into a RST, which can destroy the
          // reply before the client reads it. Bounded: one small frame.
          impl->hello_rejected.fetch_add(1, std::memory_order_relaxed);
          HelloReply reply;
          reply.status = static_cast<std::uint32_t>(HelloStatus::Busy);
          try {
            sock->send_control(&reply, sizeof reply);
          } catch (const gc::TransportClosed&) {
          }
          std::uint8_t discard[sizeof(HelloRequest)];
          std::size_t drained = 0;
          while (drained < sizeof discard) {
            struct pollfd p = {sock->fd(), POLLIN, 0};
            if (::poll(&p, 1, 200) <= 0) break;
            const ssize_t n =
                ::recv(sock->fd(), discard, sizeof discard - drained, 0);
            if (n <= 0) break;
            drained += static_cast<std::size_t>(n);
          }
          continue;  // sock destructor closes the fd
        }
        impl->active.fetch_add(1, std::memory_order_relaxed);
        const std::size_t target =
            impl->next_shard.fetch_add(1, std::memory_order_relaxed) %
            impl->shards.size();
        if (target == index) {
          const std::lock_guard<std::mutex> lock(inbox_mu);
          inbox.push_back(std::move(sock));
        } else {
          impl->shards[target]->enqueue(std::move(sock));
        }
      }
    }

    void accept_metrics() {
      for (;;) {
        std::unique_ptr<gc::SocketDuplex> sock = impl->metrics_listener->try_accept();
        if (sock == nullptr) return;
        sock->set_nonblocking(true);
        const int fd = sock->fd();
        auto hc = std::make_unique<HttpConn>();
        hc->sock = std::move(sock);
        poller.add(fd, /*want_read=*/true, /*want_write=*/false);
        http.emplace(fd, std::move(hc));
      }
    }

    void close_http(int fd) {
      auto it = http.find(fd);
      if (it == http.end()) return;
      poller.del(fd);
      http.erase(it);  // closes the socket fd
    }

    void drive_http(int fd) {
      auto it = http.find(fd);
      if (it == http.end()) return;
      HttpConn& hc = *it->second;
      if (hc.out.empty()) {
        char buf[1024];
        for (;;) {
          const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
          if (n > 0) {
            hc.in.append(buf, static_cast<std::size_t>(n));
            if (hc.in.size() > kMaxHttpHeader) {
              close_http(fd);
              return;
            }
            continue;
          }
          if (n == 0) {  // peer closed before a full request
            close_http(fd);
            return;
          }
          if (errno == EINTR) continue;
          break;  // EAGAIN: header may still be incomplete
        }
        if (hc.in.find("\r\n\r\n") == std::string::npos) return;  // need more
        hc.out = impl->render_http_response(hc.in);
        poller.mod(fd, /*want_read=*/false, /*want_write=*/true);
      }
      while (hc.off < hc.out.size()) {
        const ssize_t n = ::send(fd, hc.out.data() + hc.off,
                                 hc.out.size() - hc.off, MSG_NOSIGNAL);
        if (n > 0) {
          hc.off += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
        close_http(fd);
        return;
      }
      close_http(fd);  // Connection: close — one scrape per connection
    }

    /// Drops scrape connections that never completed; the protocol recv
    /// deadline doubles as the HTTP idle deadline.
    void sweep_http(std::uint64_t now_ns) {
      if (impl->opts.recv_timeout_ms <= 0) return;
      const std::uint64_t limit =
          static_cast<std::uint64_t>(impl->opts.recv_timeout_ms) * 1'000'000ull;
      std::vector<int> stale;
      for (const auto& [fd, hc] : http) {
        if (now_ns - hc->opened_ns > limit) stale.push_back(fd);
      }
      for (int fd : stale) close_http(fd);
    }

    void drain_wake_pipe() {
      char buf[64];
      for (;;) {
        const ssize_t n = ::read(wake_r, buf, sizeof buf);
        if (n > 0) continue;
        if (n < 0 && errno == EINTR) continue;
        break;  // EAGAIN: drained
      }
    }

    void run() {
      while (!impl->stopping.load(std::memory_order_acquire)) {
        ready_depth_gauge->set(static_cast<std::int64_t>(ready.size()));
        int timeout = ready.empty() ? -1 : 0;
        if (index == 0 && timeout < 0) {
          // Telemetry duties need a bounded sleep: the periodic snapshot,
          // and sweeping scrape connections that never completed.
          if (impl->opts.stats_interval_ms > 0) {
            timeout = impl->opts.stats_interval_ms;
          } else if (!http.empty()) {
            timeout = 1000;
          }
        }
        poller.wait(events, timeout);
        for (const Poller::Event& e : events) {
          if (e.fd == wake_r) {
            drain_wake_pipe();
            continue;
          }
          if (index == 0 && e.fd == impl->listener->fd()) {
            accept_pending();
            continue;
          }
          if (index == 0 && impl->metrics_listener != nullptr &&
              e.fd == impl->metrics_listener->fd()) {
            accept_metrics();
            continue;
          }
          if (http.find(e.fd) != http.end()) {
            drive_http(e.fd);
            continue;
          }
          auto it = conns.find(e.fd);
          if (it == conns.end()) continue;
          if (e.readable || e.error) it->second->readable_hint = true;
          drive(e.fd);
        }
        if (index == 0) {
          const std::uint64_t now = obs::now_ns();
          if (impl->opts.stats_interval_ms > 0 &&
              now - last_publish_ns >= static_cast<std::uint64_t>(
                                           impl->opts.stats_interval_ms) *
                                           1'000'000ull) {
            impl->publish_stats();
            last_publish_ns = now;
          }
          if (!http.empty()) sweep_http(now);
        }
        adopt_inbox();
        // One pass over the ready queue: each entry gets one more slice.
        const std::size_t n = ready.size();
        for (std::size_t i = 0; i < n; ++i) {
          const int fd = ready.front();
          ready.pop_front();
          drive(fd);
        }
      }
      // Shutdown: abort every in-flight run and return the warm states;
      // runs that already finished their protocol count as successes.
      while (!conns.empty()) {
        const auto& [fd, conn] = *conns.begin();
        teardown(fd, /*failed=*/!run_finished(*conn));
      }
    }
  };

  std::vector<ProgramSpec> programs;
  std::vector<SpecFacts> facts;
  ServiceOptions opts;
  std::unique_ptr<gc::SocketListener> listener;
  std::unique_ptr<gc::SocketListener> metrics_listener;  ///< null = disabled
  WarmPool warm;

  std::atomic<bool> stopping{false};
  bool running = false;
  std::mutex lifecycle_mu;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> hello_rejected{0};
  std::atomic<std::uint64_t> runs_ok{0};
  std::atomic<std::uint64_t> runs_failed{0};
  std::atomic<std::uint64_t> warm_hits{0};
  std::atomic<std::uint64_t> warm_misses{0};
  std::atomic<std::uint64_t> gates_garbled{0};
  std::atomic<std::uint64_t> cycles_run{0};
  std::atomic<std::uint64_t> send_queue_high_water{0};
  std::atomic<std::uint64_t> active{0};
  std::atomic<std::size_t> next_shard{0};

  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::thread> threads;

  Impl(std::vector<ProgramSpec> progs, const ServiceOptions& o)
      : programs(std::move(progs)), opts(o), warm(o.warm_pool) {
    if (programs.empty()) throw std::invalid_argument("serve: no programs registered");
    for (const ProgramSpec& p : programs) {
      if (p.nl == nullptr) throw std::invalid_argument("serve: program without a netlist");
      if (p.name.empty() || p.name.size() > kMaxProgramName) {
        throw std::invalid_argument("serve: bad program name");
      }
      facts.push_back(facts_of(*p.nl));
    }
    if (opts.shards == 0) opts.shards = 1;
    listener = std::make_unique<gc::SocketListener>(opts.host, opts.port);
    if (opts.metrics_port >= 0) {
      metrics_listener = std::make_unique<gc::SocketListener>(
          opts.metrics_host, static_cast<std::uint16_t>(opts.metrics_port));
    }
  }

  [[nodiscard]] const ProgramSpec* find_program(const std::string& name,
                                                const SpecFacts** f) const {
    for (std::size_t i = 0; i < programs.size(); ++i) {
      if (programs[i].name == name) {
        *f = &facts[i];
        return &programs[i];
      }
    }
    return nullptr;
  }

  /// Publishes the ServiceStats atomics into the obs registry as gauges, so
  /// a /metrics scrape sees service-level counters next to the histograms.
  void publish_stats() {
    A2G_GAUGE_SET("serve.accepted",
                  static_cast<std::int64_t>(accepted.load(std::memory_order_relaxed)));
    A2G_GAUGE_SET("serve.hello_rejected",
                  static_cast<std::int64_t>(hello_rejected.load(std::memory_order_relaxed)));
    A2G_GAUGE_SET("serve.runs_ok",
                  static_cast<std::int64_t>(runs_ok.load(std::memory_order_relaxed)));
    A2G_GAUGE_SET("serve.runs_failed",
                  static_cast<std::int64_t>(runs_failed.load(std::memory_order_relaxed)));
    A2G_GAUGE_SET("serve.warm_hits",
                  static_cast<std::int64_t>(warm_hits.load(std::memory_order_relaxed)));
    A2G_GAUGE_SET("serve.warm_misses",
                  static_cast<std::int64_t>(warm_misses.load(std::memory_order_relaxed)));
    A2G_GAUGE_SET("serve.gates_garbled",
                  static_cast<std::int64_t>(gates_garbled.load(std::memory_order_relaxed)));
    A2G_GAUGE_SET("serve.cycles_run",
                  static_cast<std::int64_t>(cycles_run.load(std::memory_order_relaxed)));
    A2G_GAUGE_SET("serve.send_queue_high_water",
                  static_cast<std::int64_t>(
                      send_queue_high_water.load(std::memory_order_relaxed)));
    A2G_GAUGE_SET("serve.active",
                  static_cast<std::int64_t>(active.load(std::memory_order_relaxed)));
  }

  /// Builds the full HTTP/1.1 response for one scrape request. Only
  /// `GET /metrics` serves the registry; anything else is a terse error.
  [[nodiscard]] std::string render_http_response(const std::string& req) {
    std::string method;
    std::string path;
    const std::size_t sp1 = req.find(' ');
    if (sp1 != std::string::npos) {
      method = req.substr(0, sp1);
      const std::size_t sp2 = req.find(' ', sp1 + 1);
      if (sp2 != std::string::npos) path = req.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::size_t q = path.find('?');
      if (q != std::string::npos) path.resize(q);
    }
    std::string body;
    const char* status = "200 OK";
    if (method != "GET") {
      status = "405 Method Not Allowed";
      body = "method not allowed\n";
    } else if (path == "/metrics") {
      publish_stats();  // scrape-time snapshot, independent of the interval
      obs::Registry::instance().render_prometheus(body);
    } else {
      status = "404 Not Found";
      body = "not found; scrape /metrics\n";
    }
    std::string out = "HTTP/1.1 ";
    out += status;
    out += "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += body;
    return out;
  }

  void fold_high_water(std::uint64_t hw) {
    std::uint64_t cur = send_queue_high_water.load(std::memory_order_relaxed);
    while (hw > cur && !send_queue_high_water.compare_exchange_weak(
                           cur, hw, std::memory_order_relaxed)) {
    }
  }

  void start() {
    const std::lock_guard<std::mutex> lock(lifecycle_mu);
    if (running) return;
    stopping.store(false, std::memory_order_release);
    shards.clear();
    for (std::size_t i = 0; i < opts.shards; ++i) {
      shards.push_back(std::make_unique<Shard>(this, i));
    }
    for (auto& s : shards) {
      threads.emplace_back([sp = s.get()] { sp->run(); });
    }
    running = true;
  }

  void stop() {
    const std::lock_guard<std::mutex> lock(lifecycle_mu);
    if (!running) return;
    stopping.store(true, std::memory_order_release);
    for (auto& s : shards) s->wake();
    for (auto& t : threads) t.join();
    threads.clear();
    shards.clear();
    running = false;
  }
};

// ---------------------------------------------------------------------------
// GarblerService
// ---------------------------------------------------------------------------

GarblerService::GarblerService(std::vector<ProgramSpec> programs, const ServiceOptions& opts)
    : impl_(std::make_unique<Impl>(std::move(programs), opts)) {}

GarblerService::~GarblerService() {
  try {
    stop();
  } catch (...) {
    // Destructor teardown failures have nowhere to go.
  }
}

void GarblerService::start() { impl_->start(); }

void GarblerService::stop() { impl_->stop(); }

std::uint16_t GarblerService::port() const { return impl_->listener->port(); }

std::uint16_t GarblerService::metrics_port() const {
  return impl_->metrics_listener != nullptr ? impl_->metrics_listener->port() : 0;
}

ServiceStats GarblerService::stats() const {
  ServiceStats s;
  s.accepted = impl_->accepted.load(std::memory_order_relaxed);
  s.hello_rejected = impl_->hello_rejected.load(std::memory_order_relaxed);
  s.runs_ok = impl_->runs_ok.load(std::memory_order_relaxed);
  s.runs_failed = impl_->runs_failed.load(std::memory_order_relaxed);
  s.warm_hits = impl_->warm_hits.load(std::memory_order_relaxed);
  s.warm_misses = impl_->warm_misses.load(std::memory_order_relaxed);
  s.gates_garbled = impl_->gates_garbled.load(std::memory_order_relaxed);
  s.cycles_run = impl_->cycles_run.load(std::memory_order_relaxed);
  s.send_queue_high_water = impl_->send_queue_high_water.load(std::memory_order_relaxed);
  s.active = impl_->active.load(std::memory_order_relaxed);
  return s;
}

}  // namespace arm2gc::serve
