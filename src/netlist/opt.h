// Netlist-level cleanup passes. The builder already folds constants and
// shares structure during construction; this pass removes gates that cannot
// reach any output or flip-flop (dead logic), which keeps the per-cycle
// SkipGate planner from touching them at all.
#pragma once

#include <cstddef>

#include "netlist/netlist.h"

namespace arm2gc::netlist {

struct SweepStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t non_free_before = 0;
  std::size_t non_free_after = 0;
};

/// Removes gates unreachable (backwards) from outputs and DFF D-inputs and
/// compacts wire ids. Inputs and DFFs are never removed (their count defines
/// the interface and state layout).
SweepStats sweep_dead_gates(Netlist& nl);

}  // namespace arm2gc::netlist
