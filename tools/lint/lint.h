// arm2gc_lint: a dependency-free static checker for the repo's two
// machine-checkable security invariants plus its layering discipline.
//
// The paper's security argument (ARM2GC §3, "SkipGate acts on public values
// only") is a *structural* property of this codebase: the Planner consumes
// nothing secret, each party endpoint owns only its role's secret state, and
// secrets cross the party boundary only as framed gc::Transport blocks at a
// small number of audited call sites. The compiler cannot check any of that,
// so this tool does — at token / include-graph level, with the rules and the
// audited-site allowlist committed in-tree (tools/lint_rules.toml) so every
// widening of the secret surface is a reviewed diff.
//
// Rules (each one a Finding::rule value):
//   layer      a src/<dir> file includes a project header its declared layer
//              may not depend on (the DAG is crypto/netlist -> gc -> core ->
//              builder/circuits/arm/programs -> tools/bench/tests/examples).
//   role       a garbler translation unit references an evaluator-only
//              symbol or vice versa (e.g. core/evaluator.cpp naming the
//              free-XOR offset R or GarblerSession).
//   dual       a file outside the two role sets references secret symbols of
//              BOTH roles without being on the committed dual allowlist
//              (composition drivers such as core/skipgate.cpp are listed;
//              anything new naming both parties' secrets is a reviewed act).
//   purity     a planner file (core/plan.*) includes — directly or through
//              the project include closure — a party-session, transport or
//              secret-randomness header, or references such a symbol.
//              Planning must stay a pure function of public data.
//   transport  a transport send whose argument expression mentions a raw
//              secret token (labels, R, OT pads) at a call site not on the
//              allowlist. Secrets may only reach serialization through the
//              audited sites.
//   banned     a globally banned identifier (libc randomness etc.) in src/.
//   config     the rules file itself is inconsistent (e.g. an allowlist
//              entry that matches nothing — stale entries must not linger).
//
// The analysis is deliberately token-granular, not semantic: it never
// false-negatives on renamed includes or on symbols smuggled through macros
// in this codebase's style, and it runs in milliseconds with zero
// dependencies, so it can gate every commit. compile_commands.json (exported
// by the build) can supply the TU list; headers are always swept from the
// scan directories.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace arm2gc::lint {

struct Finding {
  std::string file;  ///< repo-relative path
  std::size_t line = 0;
  std::string rule;  ///< layer | role | dual | purity | transport | banned | config
  std::string message;
};

/// Parsed lint_rules.toml (minimal TOML subset: [section], key = "string",
/// key = ["a", "b", ...] with arrays allowed to span lines).
struct Rules {
  // [scan]
  std::vector<std::string> scan_dirs;      ///< roots to sweep for sources
  std::vector<std::string> scan_exclude;   ///< path prefixes to skip (fixtures)

  // [layers]: directory under src/ -> directories it may include from.
  std::map<std::string, std::vector<std::string>> layers;
  std::vector<std::string> unrestricted_dirs;  ///< top-level dirs free to include anything

  // [roles]
  std::vector<std::string> garbler_files;
  std::vector<std::string> evaluator_files;
  std::vector<std::string> garbler_symbols;
  std::vector<std::string> evaluator_symbols;
  std::vector<std::string> dual_files;      ///< may reference both roles' symbols
  std::vector<std::string> role_scope_dirs; ///< dirs the role/dual rules cover

  // [purity]
  std::vector<std::string> purity_files;
  std::vector<std::string> purity_forbidden_includes;
  std::vector<std::string> purity_forbidden_symbols;

  // [transport]
  std::vector<std::string> transport_send_tokens;   ///< method names (e.g. "send")
  std::vector<std::string> transport_secret_tokens; ///< raw-secret identifiers
  std::vector<std::string> transport_allow;         ///< "file:Qualified::function"
  std::vector<std::string> transport_scope_dirs;

  // [banned]
  std::vector<std::string> banned_symbols;
  std::vector<std::string> banned_scope_dirs;
};

/// Parses the rules text; throws std::runtime_error with a line-anchored
/// message on malformed input.
Rules parse_rules(const std::string& text);

/// Reads and parses a rules file.
Rules load_rules(const std::string& path);

/// Walks the configured scan dirs under `root` for .h/.cpp sources,
/// repo-relative, sorted. Honors scan_exclude prefixes.
std::vector<std::string> collect_sources(const std::string& root, const Rules& rules);

/// Extracts the "file" entries of a compile_commands.json, repo-relative to
/// `root`; entries outside the scan dirs (e.g. _deps) are dropped. Used to
/// confirm the build's TU list is covered by the tree walk.
std::vector<std::string> tus_from_compile_commands(const std::string& json_path,
                                                   const std::string& root,
                                                   const Rules& rules);

/// Runs every rule over `files` (repo-relative paths under `root`). Findings
/// are sorted by (file, line). An empty result is a clean tree.
std::vector<Finding> run_lint(const std::string& root, const Rules& rules,
                              const std::vector<std::string>& files);

/// Formats one finding as "file:line: [rule] message".
std::string format_finding(const Finding& f);

}  // namespace arm2gc::lint
