#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "arm/arm2gc.h"
#include "crypto/rng.h"
#include "programs/programs.h"

namespace {

using namespace arm2gc;
using namespace arm2gc::programs;

std::vector<std::uint32_t> rand_words(crypto::CtrRng& rng, std::size_t n,
                                      std::uint32_t mask = 0xffffffffu) {
  std::vector<std::uint32_t> v(n);
  for (auto& w : v) w = static_cast<std::uint32_t>(rng.next_u64()) & mask;
  return v;
}

/// Runs the program on the ISS and through the garbled protocol and checks
/// they agree; returns the garbled result.
arm::Arm2GcResult run_both(const Program& p, const std::vector<std::uint32_t>& a,
                           const std::vector<std::uint32_t>& b) {
  const arm::Arm2Gc machine(p.cfg, p.words);
  const arm::Arm2GcResult ref = machine.run_reference(a, b);
  const arm::Arm2GcResult gc = machine.run(a, b);
  EXPECT_EQ(gc.outputs, ref.outputs) << p.name;
  EXPECT_EQ(gc.cycles, ref.cycles) << p.name;
  return gc;
}

TEST(Programs, Sum32MatchesPaperExactly) {
  const Program p = sum(1);
  const auto r = run_both(p, {0xDEADBEEF}, {0x22222222});
  EXPECT_EQ(r.outputs[0], 0xDEADBEEFu + 0x22222222u);
  // Paper Table 2: Sum 32 on ARM2GC = 31 garbled non-XOR.
  EXPECT_EQ(r.stats.garbled_non_xor, 31u);
}

TEST(Programs, Sum1024MatchesPaperExactly) {
  crypto::CtrRng rng(crypto::block_from_u64(7));
  const Program p = sum(32);
  const auto a = rand_words(rng, 32);
  const auto b = rand_words(rng, 32);
  const auto r = run_both(p, a, b);
  // Check the multiword sum against __int128-free manual carry arithmetic.
  std::uint64_t carry = 0;
  for (std::size_t w = 0; w < 32; ++w) {
    const std::uint64_t wide = static_cast<std::uint64_t>(a[w]) + b[w] + carry;
    EXPECT_EQ(r.outputs[w], static_cast<std::uint32_t>(wide)) << w;
    carry = wide >> 32;
  }
  // Paper Table 2: Sum 1024 = 1023.
  EXPECT_EQ(r.stats.garbled_non_xor, 1023u);
}

TEST(Programs, Compare32MatchesPaperExactly) {
  const Program p = compare(1);
  EXPECT_EQ(run_both(p, {7}, {9}).outputs[0], 1u);
  const auto r = run_both(p, {9}, {7});
  EXPECT_EQ(r.outputs[0], 0u);
  // Paper Table 2: Compare 32 = 32.
  EXPECT_EQ(r.stats.garbled_non_xor, 32u);
}

TEST(Programs, Compare512Scaled) {
  // Structure check on 16 words (the 16384-bit row shape: 32/word).
  crypto::CtrRng rng(crypto::block_from_u64(8));
  const Program p = compare(16);
  auto a = rand_words(rng, 16);
  auto b = a;
  b[15] += 1;  // b > a
  const auto r = run_both(p, a, b);
  EXPECT_EQ(r.outputs[0], 1u);
  EXPECT_EQ(r.stats.garbled_non_xor, 16u * 32u);
}

TEST(Programs, HammingMatchesAndIsCheap) {
  crypto::CtrRng rng(crypto::block_from_u64(9));
  for (const std::size_t nwords : {1ul, 5ul}) {
    const Program p = hamming(nwords);
    const auto a = rand_words(rng, nwords);
    const auto b = rand_words(rng, nwords);
    int expect = 0;
    for (std::size_t w = 0; w < nwords; ++w) expect += __builtin_popcount(a[w] ^ b[w]);
    const auto r = run_both(p, a, b);
    EXPECT_EQ(r.outputs[0], static_cast<std::uint32_t>(expect));
    // Paper Table 2 reports 57 (32-bit) / 247 (160-bit) with a tree method;
    // the SWAR code lands in the same regime, far below TinyGarble's serial
    // counter circuit (145 / 1092).
    if (nwords == 1) {
      EXPECT_LE(r.stats.garbled_non_xor, 100u);
    }
    if (nwords == 5) {
      EXPECT_LE(r.stats.garbled_non_xor, 500u);
    }
  }
}

TEST(Programs, Mult32Matches) {
  const Program p = mult32();
  const auto r = run_both(p, {123456789}, {987654321});
  EXPECT_EQ(r.outputs[0], 123456789u * 987654321u);
  // Paper Table 2: 993.
  EXPECT_LE(r.stats.garbled_non_xor, 1100u);
  EXPECT_GE(r.stats.garbled_non_xor, 900u);
}

TEST(Programs, MatMult3x3Matches) {
  crypto::CtrRng rng(crypto::block_from_u64(10));
  const std::size_t n = 3;
  const Program p = matmult(n);
  const auto a = rand_words(rng, n * n, 0xffff);
  const auto b = rand_words(rng, n * n, 0xffff);
  const auto r = run_both(p, a, b);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::uint32_t expect = 0;
      for (std::size_t k = 0; k < n; ++k) expect += a[i * n + k] * b[k * n + j];
      EXPECT_EQ(r.outputs[i * n + j], expect) << i << "," << j;
    }
  }
}

TEST(Programs, BubbleSortSorts) {
  crypto::CtrRng rng(crypto::block_from_u64(11));
  const std::size_t n = 8;
  const Program p = bubble_sort(n);
  const auto a = rand_words(rng, n);
  const auto b = rand_words(rng, n);
  std::vector<std::uint32_t> expect(n);
  for (std::size_t i = 0; i < n; ++i) expect[i] = a[i] ^ b[i];
  std::sort(expect.begin(), expect.end());
  const auto r = run_both(p, a, b);
  EXPECT_EQ(r.outputs, expect);
}

TEST(Programs, MergeSortSorts) {
  crypto::CtrRng rng(crypto::block_from_u64(12));
  const std::size_t n = 8;
  const Program p = merge_sort(n);
  const auto a = rand_words(rng, n);
  const auto b = rand_words(rng, n);
  std::vector<std::uint32_t> expect(n);
  for (std::size_t i = 0; i < n; ++i) expect[i] = a[i] ^ b[i];
  std::sort(expect.begin(), expect.end());
  const auto r = run_both(p, a, b);
  EXPECT_EQ(r.outputs, expect);
}

TEST(Programs, DijkstraShortestPaths) {
  crypto::CtrRng rng(crypto::block_from_u64(13));
  const Program p = dijkstra8();
  // Random small weights, XOR-shared between the parties.
  std::vector<std::uint32_t> w(64);
  for (auto& x : w) x = 1 + static_cast<std::uint32_t>(rng.next_below(100));
  const auto b = rand_words(rng, 64);
  std::vector<std::uint32_t> a(64);
  for (std::size_t i = 0; i < 64; ++i) a[i] = w[i] ^ b[i];

  // Reference Dijkstra.
  constexpr std::uint32_t kInf = 0x0FF00000;
  std::vector<std::uint32_t> dist(8, kInf);
  std::vector<bool> visited(8, false);
  dist[0] = 0;
  for (int it = 0; it < 8; ++it) {
    int best = -1;
    for (int j = 0; j < 8; ++j) {
      if (!visited[j] && (best < 0 || dist[static_cast<std::size_t>(j)] < dist[static_cast<std::size_t>(best)])) best = j;
    }
    visited[static_cast<std::size_t>(best)] = true;
    for (int j = 0; j < 8; ++j) {
      dist[static_cast<std::size_t>(j)] = std::min(dist[static_cast<std::size_t>(j)],
                                                   dist[static_cast<std::size_t>(best)] + w[static_cast<std::size_t>(8 * best + j)]);
    }
  }
  const auto r = run_both(p, a, b);
  for (int j = 0; j < 8; ++j) EXPECT_EQ(r.outputs[static_cast<std::size_t>(j)], dist[static_cast<std::size_t>(j)]) << j;
}

TEST(Programs, CordicRotatesVector) {
  const Program p = cordic32();
  // Rotate (0.5, 0) by ~30 degrees; fixed point 2.30.
  const auto x0 = static_cast<std::int32_t>(1 << 29);
  const std::int32_t y0 = 0;
  const auto z0 = static_cast<std::int32_t>(0.5235987756 * (1 << 30));  // pi/6
  std::int32_t xr = x0, yr = y0;
  cordic_reference(xr, yr, z0);

  crypto::CtrRng rng(crypto::block_from_u64(14));
  const auto b = rand_words(rng, 3);
  const std::vector<std::uint32_t> a = {static_cast<std::uint32_t>(x0) ^ b[0],
                                        static_cast<std::uint32_t>(y0) ^ b[1],
                                        static_cast<std::uint32_t>(z0) ^ b[2]};
  const auto r = run_both(p, a, b);
  EXPECT_EQ(r.outputs[0], static_cast<std::uint32_t>(xr));
  EXPECT_EQ(r.outputs[1], static_cast<std::uint32_t>(yr));
  // CORDIC gain: result magnitude = K * 0.5 ~ 0.8225 in 2.30.
  const double got = static_cast<double>(static_cast<std::int32_t>(r.outputs[0])) / (1 << 30);
  EXPECT_NEAR(got, 1.64676 * 0.5 * std::cos(0.5235987756), 0.01);
}

TEST(Programs, AllProgramsAssembleAndFit) {
  for (const Program& p : {sum(32), compare(16), hamming(16), mult32(), matmult(8),
                           bubble_sort(32), merge_sort(32), dijkstra8(), cordic32()}) {
    EXPECT_FALSE(p.words.empty()) << p.name;
    EXPECT_LE(p.words.size(), p.cfg.imem_words) << p.name;
  }
}

}  // namespace
