// SkipGate (paper §3): per-clock-cycle, gate-level elision of garbling work,
// structured as three separable roles over a pluggable transport:
//
//   Planner            (core/plan.h)      deterministic public bookkeeping
//                                         both parties run independently; its
//                                         per-cycle CyclePlan is cached by
//                                         entry-state signature.
//   GarblerSession     (core/garbler.h)   Alice's label state; consumes the
//                                         plan, emits garbled tables/labels.
//   EvaluatorSession   (core/evaluator.h) Bob's label state; consumes the
//                                         plan and the garbler's frames.
//
// The SkipGateDriver below wires the three together over a gc::Transport:
// either the lock-step in-memory duplex (single thread, exactly the paper's
// sequential schedule) or a threaded bounded pipe that lets the garbler run
// ahead of the evaluator — the two transports produce bit-identical results
// and byte counts.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/plan.h"
#include "crypto/block.h"
#include "gc/garble.h"
#include "gc/otext.h"
#include "gc/transport.h"
#include "netlist/netlist.h"

namespace arm2gc::core {

struct RunStats {
  std::uint64_t cycles = 0;
  /// Garbled tables actually transferred: the paper's "# of Garbled Non-XOR".
  std::uint64_t garbled_non_xor = 0;
  /// Non-affine gate slots (gate x cycle) that were *not* garbled.
  std::uint64_t skipped_non_xor = 0;
  /// Non-affine gate slots encountered = count_non_free() x cycles; equals
  /// the conventional-GC cost of the same run.
  std::uint64_t non_xor_slots = 0;
  /// Cycles whose classification was served from the plan cache / computed.
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  /// Cone-granular memo counters: segments adopted from / classified into
  /// the cone memo on cycles the whole-netlist plan cache missed. A cone hit
  /// is work the flat cache could not save (similar-but-not-identical entry
  /// states, e.g. ARM loop iterations differing only in a public counter).
  std::uint64_t cone_hits = 0;
  std::uint64_t cone_misses = 0;
  /// Peak undelivered transport backlog, in 16-byte blocks.
  std::uint64_t transport_high_water_blocks = 0;
  /// OT subsystem counters. The count fields come from the sender role (the
  /// authoritative batch ledger, identical across transports); ot_wall_ns is
  /// wall time inside OT phases, transport waits included — the lock-step
  /// driver sums both roles, the threaded driver reports the garbler's.
  std::uint64_t ot_choices = 0;
  std::uint64_t ot_batches = 0;
  std::uint64_t ot_base_ots = 0;  ///< base OTs run this execution (0 when warm)
  std::uint64_t ot_wall_ns = 0;
  /// Running gf_double-mix digest of every garbled-table block the garbler
  /// sent (gc/golden_digest.h construction): pins table content — not just
  /// byte counts — across transports, plan caching and OT backends.
  crypto::Block table_digest{};
  gc::CommStats comm;

  /// Fraction of non-XOR slots SkipGate elided (0 when nothing ran).
  [[nodiscard]] double skip_ratio() const {
    return non_xor_slots == 0
               ? 0.0
               : static_cast<double>(skipped_non_xor) / static_cast<double>(non_xor_slots);
  }
  /// Fraction of cycles served from the plan cache.
  [[nodiscard]] double plan_cache_hit_ratio() const {
    const std::uint64_t total = plan_cache_hits + plan_cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(plan_cache_hits) / static_cast<double>(total);
  }
  /// Fraction of cache-missed cycles' cones stitched from the cone memo.
  [[nodiscard]] double cone_hit_ratio() const {
    const std::uint64_t total = cone_hits + cone_misses;
    return total == 0 ? 0.0 : static_cast<double>(cone_hits) / static_cast<double>(total);
  }
};

enum class TransportKind : std::uint8_t {
  InMemory,      ///< lock-step FIFOs, single thread
  ThreadedPipe,  ///< garbler on a worker thread, bounded-ring backpressure
};

/// Execution tuning that never changes results — only how they are computed.
struct ExecOptions {
  TransportKind transport = TransportKind::InMemory;
  /// Reuse classification across cycles with identical public entry state.
  /// false disables all plan reuse, including the cone memo (the
  /// from-scratch baseline for differential tests).
  bool plan_cache = true;
  std::size_t plan_cache_budget_bytes = 64u << 20;
  /// Optional externally owned plan caches that persist across runs of the
  /// same netlist (one per party; the lock-step driver uses the garbler's).
  /// The public signature trajectory is independent of secret inputs, so a
  /// warm cache skips classification for every repeated execution.
  PlanCache* garbler_plan_cache = nullptr;
  PlanCache* evaluator_plan_cache = nullptr;
  /// Cone-granular incremental planning: on whole-netlist cache misses,
  /// stitch the plan from per-cone memo hits and re-classify only dirty
  /// cones. Never changes results (every adopted cone is re-verified).
  bool cone_memo = true;
  std::size_t cone_memo_budget_bytes = 32u << 20;
  /// Segmentation granularity (gates per cone, approximate; 0 = whole
  /// netlist as one cone). Public; both parties derive the same layout.
  std::size_t cone_target_gates = 512;
  /// Optional externally owned cone memos that persist across runs (one per
  /// party, like the plan caches). Cones hit across *similar* entry states,
  /// so a warm memo helps even when the public trajectory does not repeat.
  ConeMemo* garbler_cone_memo = nullptr;
  ConeMemo* evaluator_cone_memo = nullptr;
  /// ThreadedPipe ring capacity per direction, in 16-byte blocks; this is
  /// both the garbler's run-ahead window and the transport memory bound.
  std::size_t pipe_blocks = 1u << 15;
  /// OT backend for Bob's input labels: the ideal-functionality stand-in or
  /// real IKNP extension (gc/otext.h). Outputs, garbled tables and every
  /// non-OT byte count are bit-identical across backends; only OT traffic
  /// and timing differ.
  gc::OtBackend ot_backend = gc::OtBackend::Ideal;
  /// Optional warm IKNP states (Iknp backend only; one per party role),
  /// persisting the base OTs and extension streams across runs of one
  /// pairing — Arm2Gc::Session supplies these alongside its plan caches.
  /// Both must come from the same prior pairing; a mismatch is detected by
  /// the per-batch check block, not silently wrong.
  gc::IknpSenderState* ot_sender_state = nullptr;
  gc::IknpReceiverState* ot_receiver_state = nullptr;
};

struct RunOptions {
  Mode mode = Mode::SkipGate;
  gc::Scheme scheme = gc::Scheme::HalfGates;
  /// Run exactly this many cycles (sequential circuits with a known schedule).
  std::optional<std::uint64_t> fixed_cycles;
  /// Public wire that announces termination (the processor's halt signal);
  /// the cycle where it becomes 1 is the final cycle. Must be public.
  std::optional<netlist::WireId> halt_wire;
  /// Safety bound when running halt-driven.
  std::uint64_t max_cycles = 1u << 20;
  crypto::Block seed{0x4152433247430100ULL, 0x736b697067617465ULL};
  ExecOptions exec;
};

/// Per-cycle bit provider for streamed inputs (bit-serial circuits). Index i
/// must cover every Input with streamed=true and bit_index==i of that owner.
/// Under the ThreadedPipe transport the callbacks are invoked from both
/// party threads (pub from both; alice from the garbler thread, bob from the
/// evaluator thread) and must be safe to call concurrently.
struct StreamProvider {
  std::function<netlist::BitVec(std::uint64_t cycle)> alice;
  std::function<netlist::BitVec(std::uint64_t cycle)> bob;
  std::function<netlist::BitVec(std::uint64_t cycle)> pub;
};

struct RunResult {
  /// Outputs of every sampled cycle (every cycle if outputs_every_cycle,
  /// otherwise just the final one).
  std::vector<netlist::BitVec> sampled_outputs;
  /// Convenience: the last sampled outputs.
  netlist::BitVec final_outputs;
  std::uint64_t final_cycle = 0;  ///< index of the last executed cycle
  RunStats stats;
};

/// Two-party sequential garbling driver (planner + garbler + evaluator,
/// exchanging data only through a byte-accounted transport).
class SkipGateDriver {
 public:
  SkipGateDriver(const netlist::Netlist& nl, RunOptions opts);

  /// Executes the protocol. `alice_bits`/`bob_bits`/`pub_bits` bind fixed
  /// inputs and flip-flop initial values (shared index space per owner).
  RunResult run(const netlist::BitVec& alice_bits, const netlist::BitVec& bob_bits,
                const netlist::BitVec& pub_bits = {}, const StreamProvider* streams = nullptr);

 private:
  const netlist::Netlist& nl_;
  RunOptions opts_;
};

}  // namespace arm2gc::core
