#include "circuits/gf_tower.h"

#include <stdexcept>

namespace arm2gc::circuits {

namespace {

using builder::Bus;
using builder::CircuitBuilder;
using builder::Wire;

// --- GF(4) = GF(2)[x]/(x^2+x+1), elements as 2-bit values -------------------

std::uint8_t mul4(std::uint8_t a, std::uint8_t b) {
  const std::uint8_t a1 = (a >> 1) & 1, a0 = a & 1;
  const std::uint8_t b1 = (b >> 1) & 1, b0 = b & 1;
  const std::uint8_t hh = a1 & b1;
  const std::uint8_t hi = static_cast<std::uint8_t>((a1 & b0) ^ (a0 & b1) ^ hh);
  const std::uint8_t lo = static_cast<std::uint8_t>((a0 & b0) ^ hh);
  return static_cast<std::uint8_t>((hi << 1) | lo);
}

std::uint8_t sq4(std::uint8_t a) {
  const std::uint8_t a1 = (a >> 1) & 1, a0 = a & 1;
  return static_cast<std::uint8_t>((a1 << 1) | (a1 ^ a0));
}

// GF(16) = GF(4)[y]/(y^2+y+N), elements hi<<2 | lo.
constexpr std::uint8_t kN = 2;  // validated irreducible in GfTower()

std::uint8_t mul16(std::uint8_t a, std::uint8_t b) {
  const std::uint8_t a1 = (a >> 2) & 3, a0 = a & 3;
  const std::uint8_t b1 = (b >> 2) & 3, b0 = b & 3;
  const std::uint8_t p = mul4(a1, b1);
  const std::uint8_t q = mul4(a0, b0);
  const std::uint8_t r = mul4(a1 ^ a0, b1 ^ b0);
  const std::uint8_t hi = static_cast<std::uint8_t>(r ^ q);
  const std::uint8_t lo = static_cast<std::uint8_t>(mul4(p, kN) ^ q);
  return static_cast<std::uint8_t>((hi << 2) | lo);
}

std::uint8_t sq16(std::uint8_t a) {
  const std::uint8_t a1 = (a >> 2) & 3, a0 = a & 3;
  const std::uint8_t h = sq4(a1);
  return static_cast<std::uint8_t>((h << 2) | (mul4(h, kN) ^ sq4(a0)));
}

std::uint8_t inv16(std::uint8_t a) {
  const std::uint8_t a1 = (a >> 2) & 3, a0 = a & 3;
  const std::uint8_t delta =
      static_cast<std::uint8_t>(mul4(sq4(a1), kN) ^ mul4(a1, a0) ^ sq4(a0));
  const std::uint8_t idelta = sq4(delta);  // inverse in GF(4) is squaring
  return static_cast<std::uint8_t>((mul4(a1, idelta) << 2) | mul4(a1 ^ a0, idelta));
}

// GF(256) tower = GF(16)[z]/(z^2+z+nu), elements hi<<4 | lo.
std::uint8_t tower_mul(std::uint8_t a, std::uint8_t b, std::uint8_t nu) {
  const std::uint8_t a1 = (a >> 4) & 15, a0 = a & 15;
  const std::uint8_t b1 = (b >> 4) & 15, b0 = b & 15;
  const std::uint8_t p = mul16(a1, b1);
  const std::uint8_t q = mul16(a0, b0);
  const std::uint8_t r = mul16(a1 ^ a0, b1 ^ b0);
  return static_cast<std::uint8_t>(((r ^ q) << 4) | (mul16(p, nu) ^ q));
}

std::uint8_t tower_inv(std::uint8_t a, std::uint8_t nu) {
  const std::uint8_t a1 = (a >> 4) & 15, a0 = a & 15;
  const std::uint8_t delta =
      static_cast<std::uint8_t>(mul16(sq16(a1), nu) ^ mul16(a1, a0) ^ sq16(a0));
  const std::uint8_t idelta = inv16(delta);
  return static_cast<std::uint8_t>((mul16(a1, idelta) << 4) | mul16(a1 ^ a0, idelta));
}

// AES polynomial field GF(2)[x]/(x^8+x^4+x^3+x+1).
std::uint8_t aes_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  while (b != 0) {
    if (b & 1u) p ^= a;
    const bool hi = (a & 0x80u) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1bu;
    b >>= 1;
  }
  return p;
}

constexpr std::uint8_t rotl8(std::uint8_t v, int n) {
  return static_cast<std::uint8_t>((v << n) | (v >> (8 - n)));
}

std::uint8_t aes_affine(std::uint8_t b) {
  return static_cast<std::uint8_t>(b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^
                                   0x63u);
}

/// Inverts an 8x8 bit matrix given as 8 column bytes; throws if singular.
std::array<std::uint8_t, 8> invert_bit_matrix(const std::array<std::uint8_t, 8>& cols) {
  // Gauss-Jordan over GF(2); rows represented as 16-bit [A | I].
  std::array<std::uint16_t, 8> rows{};
  for (int r = 0; r < 8; ++r) {
    std::uint16_t row = static_cast<std::uint16_t>(1u << (8 + r));  // identity part
    for (int c = 0; c < 8; ++c) {
      if ((cols[static_cast<std::size_t>(c)] >> r) & 1u) row |= static_cast<std::uint16_t>(1u << c);
    }
    rows[static_cast<std::size_t>(r)] = row;
  }
  for (int c = 0; c < 8; ++c) {
    int pivot = -1;
    for (int r = c; r < 8; ++r) {
      if ((rows[static_cast<std::size_t>(r)] >> c) & 1u) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) throw std::logic_error("gf_tower: singular basis matrix");
    std::swap(rows[static_cast<std::size_t>(c)], rows[static_cast<std::size_t>(pivot)]);
    for (int r = 0; r < 8; ++r) {
      if (r != c && ((rows[static_cast<std::size_t>(r)] >> c) & 1u)) {
        rows[static_cast<std::size_t>(r)] ^= rows[static_cast<std::size_t>(c)];
      }
    }
  }
  std::array<std::uint8_t, 8> inv_cols{};
  for (int c = 0; c < 8; ++c) {
    std::uint8_t col = 0;
    for (int r = 0; r < 8; ++r) {
      if ((rows[static_cast<std::size_t>(r)] >> (8 + c)) & 1u) {
        col = static_cast<std::uint8_t>(col | (1u << r));
      }
    }
    inv_cols[static_cast<std::size_t>(c)] = col;
  }
  return inv_cols;
}

// --- circuit-side helpers -----------------------------------------------------

/// out[j] = XOR over inputs i with bit j of cols[i] set (a GF(2) linear map).
Bus apply_linear(CircuitBuilder& cb, const Bus& in, const std::uint8_t* cols,
                 std::size_t out_bits) {
  Bus out(out_bits, cb.c0());
  for (std::size_t j = 0; j < out_bits; ++j) {
    Wire acc = cb.c0();
    for (std::size_t i = 0; i < in.size(); ++i) {
      if ((cols[i] >> j) & 1u) acc = cb.xor_(acc, in[i]);
    }
    out[j] = acc;
  }
  return out;
}

/// Multiplication by a constant in GF(4)/GF(16) is linear; derive the column
/// images from the reference arithmetic so circuit and model cannot diverge.
Bus mul_const_circuit(CircuitBuilder& cb, const Bus& in, std::uint8_t k,
                      std::uint8_t (*ref_mul)(std::uint8_t, std::uint8_t)) {
  std::uint8_t cols[4] = {};
  for (std::size_t i = 0; i < in.size(); ++i) {
    cols[i] = ref_mul(static_cast<std::uint8_t>(1u << i), k);
  }
  return apply_linear(cb, in, cols, in.size());
}

Bus xor_buses(CircuitBuilder& cb, const Bus& a, const Bus& b) {
  Bus r(a.size(), cb.c0());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = cb.xor_(a[i], b[i]);
  return r;
}

Bus gf4_mul_circuit(CircuitBuilder& cb, const Bus& a, const Bus& b) {
  const Wire p = cb.and_(a[1], b[1]);
  const Wire q = cb.and_(a[0], b[0]);
  const Wire r = cb.and_(cb.xor_(a[1], a[0]), cb.xor_(b[1], b[0]));
  return Bus{cb.xor_(p, q), cb.xor_(r, q)};  // lo = p^q (N=2: see below), hi = r^q
}

Bus gf4_sq_circuit(CircuitBuilder& cb, const Bus& a) {
  return Bus{cb.xor_(a[0], a[1]), a[1]};
}

Bus gf16_mul_circuit(CircuitBuilder& cb, const Bus& a, const Bus& b) {
  const Bus a1{a[2], a[3]}, a0{a[0], a[1]};
  const Bus b1{b[2], b[3]}, b0{b[0], b[1]};
  const Bus p = gf4_mul_circuit(cb, a1, b1);
  const Bus q = gf4_mul_circuit(cb, a0, b0);
  const Bus r = gf4_mul_circuit(cb, xor_buses(cb, a1, a0), xor_buses(cb, b1, b0));
  const Bus hi = xor_buses(cb, r, q);
  const Bus lo = xor_buses(cb, mul_const_circuit(cb, p, kN, mul4), q);
  return Bus{lo[0], lo[1], hi[0], hi[1]};
}

Bus gf16_sq_circuit(CircuitBuilder& cb, const Bus& a) {
  const Bus a1{a[2], a[3]}, a0{a[0], a[1]};
  const Bus h = gf4_sq_circuit(cb, a1);
  const Bus lo = xor_buses(cb, mul_const_circuit(cb, h, kN, mul4), gf4_sq_circuit(cb, a0));
  return Bus{lo[0], lo[1], h[0], h[1]};
}

Bus gf16_inv_circuit(CircuitBuilder& cb, const Bus& a) {
  const Bus a1{a[2], a[3]}, a0{a[0], a[1]};
  const Bus delta = xor_buses(
      cb, xor_buses(cb, mul_const_circuit(cb, gf4_sq_circuit(cb, a1), kN, mul4),
                    gf4_mul_circuit(cb, a1, a0)),
      gf4_sq_circuit(cb, a0));
  const Bus idelta = gf4_sq_circuit(cb, delta);
  const Bus hi = gf4_mul_circuit(cb, a1, idelta);
  const Bus lo = gf4_mul_circuit(cb, xor_buses(cb, a1, a0), idelta);
  return Bus{lo[0], lo[1], hi[0], hi[1]};
}

std::uint8_t g_nu = 0;  // set once by GfTower(); used by the circuit builders

std::uint8_t mul16_free(std::uint8_t a, std::uint8_t b) { return mul16(a, b); }

Bus tower_inv_circuit(CircuitBuilder& cb, const Bus& x) {
  const Bus a1{x[4], x[5], x[6], x[7]};
  const Bus a0{x[0], x[1], x[2], x[3]};
  Bus nu_scaled = gf16_sq_circuit(cb, a1);
  // Scaling by nu is linear over GF(2).
  std::uint8_t cols[4];
  for (int i = 0; i < 4; ++i) cols[i] = mul16_free(static_cast<std::uint8_t>(1u << i), g_nu);
  nu_scaled = apply_linear(cb, nu_scaled, cols, 4);
  const Bus delta =
      xor_buses(cb, xor_buses(cb, nu_scaled, gf16_mul_circuit(cb, a1, a0)),
                gf16_sq_circuit(cb, a0));
  const Bus idelta = gf16_inv_circuit(cb, delta);
  const Bus hi = gf16_mul_circuit(cb, a1, idelta);
  const Bus lo = gf16_mul_circuit(cb, xor_buses(cb, a1, a0), idelta);
  return Bus{lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]};
}

const GfTower& tower() {
  static const GfTower t;
  return t;
}

}  // namespace

GfTower::GfTower() {
  // Validate the hard-coded GF(4) extension constant and pick nu such that
  // z^2 + z + nu is irreducible over GF(16).
  for (std::uint8_t y = 0; y < 4; ++y) {
    if (static_cast<std::uint8_t>(sq4(y) ^ y ^ kN) == 0) {
      throw std::logic_error("gf_tower: y^2+y+N reducible");
    }
  }
  for (std::uint8_t cand = 1; cand < 16; ++cand) {
    bool irreducible = true;
    for (std::uint8_t z = 0; z < 16 && irreducible; ++z) {
      if (static_cast<std::uint8_t>(sq16(z) ^ z ^ cand) == 0) irreducible = false;
    }
    if (irreducible) {
      nu_ = cand;
      break;
    }
  }
  if (nu_ == 0) throw std::logic_error("gf_tower: no irreducible nu found");
  g_nu = nu_;

  // Find beta in the tower whose minimal polynomial is the AES polynomial:
  // beta^8 + beta^4 + beta^3 + beta + 1 == 0. Mapping x^i -> beta^i is then a
  // field isomorphism.
  bool found = false;
  for (int cand = 2; cand < 256 && !found; ++cand) {
    const auto beta = static_cast<std::uint8_t>(cand);
    std::array<std::uint8_t, 9> pw{};
    pw[0] = 1;
    for (int i = 1; i <= 8; ++i) pw[static_cast<std::size_t>(i)] = tower_mul(pw[static_cast<std::size_t>(i - 1)], beta, nu_);
    if (static_cast<std::uint8_t>(pw[8] ^ pw[4] ^ pw[3] ^ pw[1] ^ 1u) != 0) continue;
    for (int i = 0; i < 8; ++i) to_tower_cols_[static_cast<std::size_t>(i)] = pw[static_cast<std::size_t>(i)];
    try {
      from_tower_cols_ = invert_bit_matrix(to_tower_cols_);
    } catch (const std::logic_error&) {
      continue;  // powers not independent: not a degree-8 element
    }
    found = true;
  }
  if (!found) throw std::logic_error("gf_tower: no isomorphism found");

  // Self-check: phi must be multiplicative and inversion must commute.
  for (int a = 1; a < 256; a += 37) {
    for (int b = 1; b < 256; b += 41) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      if (to_tower(aes_mul(ua, ub)) != tower_mul(to_tower(ua), to_tower(ub), nu_)) {
        throw std::logic_error("gf_tower: isomorphism is not multiplicative");
      }
    }
  }
}

std::uint8_t GfTower::mul(std::uint8_t a, std::uint8_t b) const { return tower_mul(a, b, nu_); }
std::uint8_t GfTower::inv(std::uint8_t a) const { return tower_inv(a, nu_); }

std::uint8_t GfTower::to_tower(std::uint8_t x) const {
  std::uint8_t r = 0;
  for (int i = 0; i < 8; ++i) {
    if ((x >> i) & 1u) r ^= to_tower_cols_[static_cast<std::size_t>(i)];
  }
  return r;
}

std::uint8_t GfTower::from_tower(std::uint8_t x) const {
  std::uint8_t r = 0;
  for (int i = 0; i < 8; ++i) {
    if ((x >> i) & 1u) r ^= from_tower_cols_[static_cast<std::size_t>(i)];
  }
  return r;
}

std::uint8_t GfTower::sbox(std::uint8_t x) const {
  return aes_affine(from_tower(inv(to_tower(x))));
}

std::uint8_t aes_sbox_reference(std::uint8_t x) {
  if (x == 0) return aes_affine(0);
  // Brute-force inverse in the AES field.
  for (int y = 1; y < 256; ++y) {
    if (aes_mul(x, static_cast<std::uint8_t>(y)) == 1) {
      return aes_affine(static_cast<std::uint8_t>(y));
    }
  }
  return 0;  // unreachable
}

builder::Bus build_gf256_inverse(builder::CircuitBuilder& cb, const builder::Bus& x) {
  const GfTower& t = tower();
  std::array<std::uint8_t, 8> in_cols{};
  std::array<std::uint8_t, 8> out_cols{};
  for (int i = 0; i < 8; ++i) {
    in_cols[static_cast<std::size_t>(i)] = t.to_tower(static_cast<std::uint8_t>(1u << i));
    out_cols[static_cast<std::size_t>(i)] = t.from_tower(static_cast<std::uint8_t>(1u << i));
  }
  const Bus tw = apply_linear(cb, x, in_cols.data(), 8);
  const Bus inv = tower_inv_circuit(cb, tw);
  return apply_linear(cb, inv, out_cols.data(), 8);
}

builder::Bus build_sbox(builder::CircuitBuilder& cb, const builder::Bus& x) {
  const Bus inv = build_gf256_inverse(cb, x);
  // Affine layer: s_i = b_i ^ b_{i-1} ^ b_{i-2} ^ b_{i-3} ^ b_{i-4} ^ c_i.
  Bus out(8, cb.c0());
  for (int i = 0; i < 8; ++i) {
    Wire acc = inv[static_cast<std::size_t>(i)];
    for (int k = 1; k <= 4; ++k) {
      acc = cb.xor_(acc, inv[static_cast<std::size_t>((i - k + 8) % 8)]);
    }
    if ((0x63u >> i) & 1u) acc = CircuitBuilder::not_(acc);
    out[static_cast<std::size_t>(i)] = acc;
  }
  return out;
}

}  // namespace arm2gc::circuits
