// Evaluator-side (Bob) session: owns Bob's active labels and the evaluation
// state; consumes the public CyclePlan and the garbler's frames through a
// gc::Transport. It never sees Alice's inputs or any label pair — its OT
// choices are the only secrets it contributes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/plan.h"
#include "crypto/block.h"
#include "gc/garble.h"
#include "gc/transport.h"
#include "netlist/netlist.h"

namespace arm2gc::core {

class EvaluatorSession {
 public:
  EvaluatorSession(const netlist::Netlist& nl, Mode mode, gc::Scheme scheme, gc::Transport& tx);

  /// Receives labels for constants (Conventional mode), fixed inputs and
  /// flip-flop initial values; Bob's own bits are fetched by OT choice.
  void reset(const netlist::BitVec& bob_bits);

  /// Installs root labels for a cycle and receives streamed-input labels.
  void begin_cycle(const netlist::BitVec& bob_stream);

  /// Runs the evaluator label pass over the plan, consuming garbled tables.
  /// `cycle` is used for trace output only (A2G_TRACE).
  void eval_cycle(const CyclePlan& plan, std::uint64_t cycle);

  /// Sends this cycle's secret output labels for decoding.
  void send_outputs(const CyclePlan& plan);

  /// Carries flip-flop labels into the next cycle.
  void latch(const CyclePlan& plan);

 private:
  void bind_recv(netlist::Owner owner, bool choice, crypto::Block& lb);
  [[nodiscard]] bool bob_bit(std::uint32_t idx, const netlist::BitVec& bob,
                             const char* what) const;

  const netlist::Netlist& nl_;
  Mode mode_;
  gc::Scheme scheme_;
  gc::Evaluator eval_;
  gc::Transport* tx_;

  std::vector<crypto::Block> lb_;
  std::vector<std::uint8_t> lb_valid_;
  std::vector<crypto::Block> fixed_lb_;
  std::vector<crypto::Block> dff_lb_;
  std::vector<std::uint8_t> dff_lb_valid_;
  crypto::Block const_lb_[2];
  bool trace_;
};

}  // namespace arm2gc::core
