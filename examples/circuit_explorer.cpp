// Circuit explorer: inspect the netlists behind the benchmarks — gate
// composition, non-XOR counts, garbling cost under each mode, and the text
// serialization. Useful for understanding what SkipGate actually skips.
#include <cstdio>
#include <sstream>

#include "circuits/tg_circuits.h"
#include "netlist/io.h"

int main() {
  using namespace arm2gc;

  struct Entry {
    const char* label;
    circuits::TgInstance inst;
  };
  netlist::BitVec a32(32, true), b32(32, false);
  Entry entries[] = {
      {"Sum 32 (bit-serial adder)", circuits::tg_sum(32, a32, b32)},
      {"Hamming 32 (serial counter)", circuits::tg_hamming(32, a32, b32)},
      {"Mult 32 (shift-and-add)", circuits::tg_mult32(3, 5)},
  };

  for (Entry& e : entries) {
    const netlist::Netlist& nl = e.inst.nl;
    std::printf("== %s ==\n", e.label);
    std::printf("  gates %zu (non-XOR %zu), DFFs %zu, inputs %zu, outputs %zu, cycles %llu\n",
                nl.gates.size(), nl.count_non_free(), nl.dffs.size(), nl.inputs.size(),
                nl.outputs.size(), static_cast<unsigned long long>(e.inst.cycles));
    const circuits::TgRun conv = circuits::run_instance(e.inst, core::Mode::Conventional);
    const circuits::TgRun skip = circuits::run_instance(e.inst, core::Mode::SkipGate);
    std::printf("  garbled non-XOR: conventional %llu, SkipGate %llu\n",
                static_cast<unsigned long long>(conv.stats.garbled_non_xor),
                static_cast<unsigned long long>(skip.stats.garbled_non_xor));
    std::printf("  bytes on the wire (SkipGate): %llu\n",
                static_cast<unsigned long long>(skip.stats.comm.total()));
  }

  // Show the portable text form of the smallest circuit.
  std::printf("\n== netlist text serialization (Sum 32) ==\n%s",
              netlist::dump_to_string(circuits::tg_sum(4, {}, {}).nl).c_str());
  return 0;
}
