#include <gtest/gtest.h>

#include "arm/arm2gc.h"
#include "arm/assembler.h"
#include "arm/cpu_netlist.h"
#include "arm/cpu_sim.h"
#include "crypto/rng.h"
#include "netlist/simulator.h"

namespace {

using namespace arm2gc;
using namespace arm2gc::arm;

MemoryConfig small_cfg() {
  MemoryConfig cfg;
  cfg.imem_words = 64;
  cfg.alice_words = 16;
  cfg.bob_words = 16;
  cfg.out_words = 16;
  cfg.ram_words = 32;
  return cfg;
}

netlist::BitVec words_to_bits(const std::vector<std::uint32_t>& words, std::size_t mem_words) {
  netlist::BitVec bits(32 * mem_words, false);
  for (std::size_t w = 0; w < words.size(); ++w) {
    for (int b = 0; b < 32; ++b) bits[32 * w + static_cast<std::size_t>(b)] = ((words[w] >> b) & 1u) != 0;
  }
  return bits;
}

/// Steps the gate-level CPU and the ISS side by side, comparing the full
/// architectural state after every cycle.
void lockstep(const MemoryConfig& cfg, const std::vector<std::uint32_t>& program,
              const std::vector<std::uint32_t>& alice, const std::vector<std::uint32_t>& bob,
              std::uint64_t max_cycles) {
  const CpuNetlist cpu = build_cpu(cfg, program);
  netlist::Simulator net(cpu.nl);
  net.reset(words_to_bits(alice, cfg.alice_words), words_to_bits(bob, cfg.bob_words));

  ArmSim iss(cfg, program);
  iss.reset(alice, bob);

  auto reg32 = [&](std::uint32_t dff0) {
    std::uint32_t v = 0;
    for (int b = 0; b < 32; ++b) {
      if (net.dff_state(dff0 + static_cast<std::uint32_t>(b))) v |= 1u << b;
    }
    return v;
  };

  for (std::uint64_t cycle = 0; cycle < max_cycles && !iss.halted(); ++cycle) {
    net.step();
    iss.step();
    for (int r = 0; r < 15; ++r) {
      ASSERT_EQ(reg32(cpu.reg_dff0 + static_cast<std::uint32_t>(32 * r)), iss.reg(r))
          << "r" << r << " cycle " << cycle;
    }
    ASSERT_EQ(reg32(cpu.pc_dff0), iss.pc()) << "pc cycle " << cycle;
    const std::uint32_t zsrc = reg32(cpu.flags_dff0);
    ASSERT_EQ((zsrc & 0x80000000u) != 0, iss.flag_n()) << "N cycle " << cycle;
    ASSERT_EQ(zsrc == 0, iss.flag_z()) << "Z cycle " << cycle;
    ASSERT_EQ(net.dff_state(cpu.flags_dff0 + 32), iss.flag_c()) << "C cycle " << cycle;
    ASSERT_EQ(net.dff_state(cpu.flags_dff0 + 33), iss.flag_v()) << "V cycle " << cycle;
    if (iss.halted()) {
      for (std::size_t w = 0; w < cfg.out_words; ++w) {
        ASSERT_EQ(reg32(static_cast<std::uint32_t>(cpu.out_dff0 + 32 * w)), iss.out_mem()[w])
            << "out[" << w << "]";
      }
      return;
    }
  }
  ASSERT_TRUE(iss.halted()) << "program did not halt in " << max_cycles << " cycles";
}

TEST(CpuNetlist, LockstepBasicProgram) {
  const auto program = assemble(R"(
    ldr r4, [r0]
    ldr r5, [r1]
    adds r6, r4, r5
    str r6, [r2]
    sub r7, r4, r5
    muls r8, r4, r5
    mla r9, r4, r5, r6
    str r8, [r2, #4]
    str r9, [r2, #8]
    swi 0
  )");
  lockstep(small_cfg(), program, {0xDEADBEEF, 3}, {0x12345678}, 100);
}

TEST(CpuNetlist, LockstepConditionalAndBranches) {
  const auto program = assemble(R"(
    mov r4, #0
    mov r5, #10
  loop:
    add r4, r4, r5
    subs r5, r5, #1
    bne loop
    cmp r4, #55
    moveq r6, #1
    movne r6, #0
    str r6, [r2]
    str r4, [r2, #4]
    swi 0
  )");
  lockstep(small_cfg(), program, {}, {}, 100);
}

TEST(CpuNetlist, LockstepShifterTortureTest) {
  const auto program = assemble(R"(
    ldr r4, [r0]
    ldr r5, [r1]
    mov r6, r4, lsl #7
    mov r7, r4, lsr #3
    mov r8, r4, asr #9
    mov r9, r4, ror #13
    and r10, r5, #31
    mov r11, r4, lsl r10
    mov r12, r4, lsr r10
    mov r3, r4, asr r10
    add r6, r6, r7
    add r8, r8, r9
    add r11, r11, r12
    add r3, r3, r6
    add r3, r3, r8
    add r3, r3, r11
    str r3, [r2]
    mov r5, #40
    mov r6, r4, lsl r5   ; shift >= 32 -> 0
    mov r7, r4, asr r5   ; shift >= 32 -> sign
    str r6, [r2, #4]
    str r7, [r2, #8]
    swi 0
  )");
  lockstep(small_cfg(), program, {0x87654321}, {0x5}, 100);
}

TEST(CpuNetlist, LockstepMemoryRegions) {
  const auto program = assemble(R"(
    ldr r4, [r0]        ; alice
    ldr r5, [r1, #4]    ; bob
    mov r6, #0x40000    ; ram
    str r4, [r6]
    str r5, [r6, #4]
    ldr r7, [r6]
    ldr r8, [r6, #4]
    add r9, r7, r8
    str r9, [r2, #12]
    ldr r10, [pc, #-4]  ; read an instruction word (imem region)
    str r10, [r2]
    swi 0
  )");
  lockstep(small_cfg(), program, {1000}, {0, 2345}, 100);
}

TEST(CpuNetlist, LockstepRandomDataProcessing) {
  crypto::CtrRng rng(crypto::block_from_u64(2024));
  for (int trial = 0; trial < 6; ++trial) {
    // Random DP/MUL streams over initialized registers; always terminated by
    // storing a checksum and halting.
    std::string src;
    src += "ldr r4, [r0]\nldr r5, [r1]\nmvn r6, r4\neor r7, r4, r5\n";
    static const char* kOps[] = {"and", "eor", "sub", "rsb", "add", "adc",
                                 "sbc", "rsc", "orr", "bic"};
    static const char* kConds[] = {"", "eq", "ne", "cs", "cc", "mi", "pl", "ge", "lt", "gt", "le",
                                   "hi", "ls", "vs", "vc"};
    static const char* kShifts[] = {"lsl", "lsr", "asr", "ror"};
    for (int i = 0; i < 40; ++i) {
      const auto op = kOps[rng.next_below(10)];
      const auto cond = kConds[rng.next_below(15)];
      const bool s = rng.next_bool();
      const int rd = 4 + static_cast<int>(rng.next_below(8));
      const int rn = 4 + static_cast<int>(rng.next_below(8));
      const int rm = 4 + static_cast<int>(rng.next_below(8));
      std::string line = std::string(op) + cond + (s ? "s" : "") + " r" + std::to_string(rd) +
                         ", r" + std::to_string(rn);
      switch (rng.next_below(4)) {
        case 0: line += ", #" + std::to_string(rng.next_below(256)); break;
        case 1: line += ", r" + std::to_string(rm); break;
        case 2:
          line += ", r" + std::to_string(rm) + ", " + kShifts[rng.next_below(4)] + " #" +
                  std::to_string(rng.next_below(32));
          break;
        default:
          line += ", r" + std::to_string(rm) + ", " + kShifts[rng.next_below(4)] + " r" +
                  std::to_string(4 + rng.next_below(8));
          break;
      }
      src += line + "\n";
      if (i % 7 == 3) {
        src += std::string("mul") + (rng.next_bool() ? "s" : "") + " r" + std::to_string(4 + rng.next_below(8)) +
               ", r" + std::to_string(4 + rng.next_below(8)) + ", r" +
               std::to_string(4 + rng.next_below(8)) + "\n";
      }
    }
    src += "str r4, [r2]\nstr r7, [r2, #4]\nswi 0\n";
    const auto program = assemble(src);
    MemoryConfig cfg = small_cfg();
    cfg.imem_words = 128;
    lockstep(cfg, program, {static_cast<std::uint32_t>(rng.next_u64())},
             {static_cast<std::uint32_t>(rng.next_u64())}, 200);
  }
}

TEST(Arm2Gc, GarbledRunMatchesReferenceAndSkipsControlPath) {
  const auto program = assemble(R"(
    ldr r4, [r0]
    ldr r5, [r1]
    cmp r4, r5
    movlo r4, r5
    str r4, [r2]
    swi 0
  )");
  const Arm2Gc machine(small_cfg(), program);
  const std::vector<std::uint32_t> alice = {123456};
  const std::vector<std::uint32_t> bob = {654321};
  const Arm2GcResult ref = machine.run_reference(alice, bob);
  const Arm2GcResult gc = machine.run(alice, bob);
  EXPECT_EQ(gc.outputs, ref.outputs);
  EXPECT_EQ(gc.outputs[0], 654321u);
  EXPECT_EQ(gc.cycles, ref.cycles);
  // SkipGate leaves only the data-dependent work: the compare (borrow chain +
  // Z flag) and the predicated move. The full processor has tens of
  // thousands of non-free gates per cycle.
  EXPECT_LT(gc.stats.garbled_non_xor, 200u);
  EXPECT_GT(machine.conventional_non_xor(gc.cycles), 50000u);
}

TEST(Arm2Gc, ConventionalModeMatchesOnTinyProgram) {
  const auto program = assemble(R"(
    ldr r4, [r0]
    ldr r5, [r1]
    add r6, r4, r5
    str r6, [r2]
    swi 0
  )");
  const Arm2Gc machine(small_cfg(), program);
  const std::vector<std::uint32_t> alice = {41};
  const std::vector<std::uint32_t> bob = {1};
  const Arm2GcResult ref = machine.run_reference(alice, bob);
  const Arm2GcResult conv = machine.run_conventional(alice, bob, ref.cycles);
  EXPECT_EQ(conv.outputs[0], 42u);
  EXPECT_EQ(conv.stats.garbled_non_xor, machine.conventional_non_xor(ref.cycles));
}

TEST(Arm2Gc, SecretConditionKeepsPcPublic) {
  // Conditional execution on a secret flag: the predicated writes are
  // garbled but the program counter (and so the whole control path) stays
  // public — the key property from paper §4.2.
  const auto program = assemble(R"(
    ldr r4, [r0]
    ldr r5, [r1]
    cmp r4, r5
    addlo r6, r5, #1
    addhs r6, r4, #2
    str r6, [r2]
    swi 0
  )");
  const Arm2Gc machine(small_cfg(), program);
  const Arm2GcResult a = machine.run({{10}}, {{20}});
  EXPECT_EQ(a.outputs[0], 21u);
  const Arm2GcResult b = machine.run({{30}}, {{20}});
  EXPECT_EQ(b.outputs[0], 32u);
  // Both runs take the same (public) number of cycles.
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Arm2Gc, SecretBranchIsRejected) {
  // A branch on a secret flag makes the pc secret; the driver must refuse
  // rather than silently produce garbage (paper Figure 6 scenario).
  const auto program = assemble(R"(
    ldr r4, [r0]
    ldr r5, [r1]
    cmp r4, r5
    beq skip
    mov r6, #1
  skip:
    str r6, [r2]
    swi 0
  )");
  const Arm2Gc machine(small_cfg(), program);
  EXPECT_THROW((void)machine.run({{1}}, {{2}}), std::runtime_error);
}

}  // namespace
