// Party-to-party transport between garbler (Alice) and evaluator (Bob) with
// exact byte accounting per traffic class. Communication volume — not
// computation — is the GC bottleneck (Gueron et al., CCS'15), so the counters
// here are the primary measurement instrument of the reproduction.
//
// A `Transport` is one party's bidirectional endpoint; messages are framed
// batches of 128-bit blocks. Two implementations are provided:
//
//   InMemoryDuplex       lock-step FIFOs for a single-threaded driver; the
//                        delivered prefix is dropped eagerly so memory stays
//                        bounded on arbitrarily long runs.
//   ThreadedPipeDuplex   bounded SPSC rings with blocking send/recv, letting
//                        the garbler run ahead of the evaluator on another
//                        thread; the ring capacity is the pipelining window
//                        and the memory bound at once.
//
// A real deployment would put these frames on a socket. Traffic::Ot frames
// are produced by the selectable OT backend (gc/otext.h): under
// OtBackend::Iknp they are a real extension protocol's messages (base
// seeds, masked columns, hashed ciphertexts) — shippable verbatim once each
// party seeds its randomness privately (the in-process driver seeds both
// sides from the one public protocol seed for reproducibility; see the
// honesty notes in gc/otext.h). Under the OtBackend::Ideal stand-in they
// are the ideal functionality's in-process wiring (both labels travel, the
// receiver picks) and a deployment must select the real backend instead.
// Everything above this interface is transport-agnostic either way.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "crypto/block.h"

namespace arm2gc::gc {

/// Thrown by transport operations cut off by a shutdown (close(), peer
/// teardown). A distinct type so drivers can tell a teardown echo apart from
/// a party's real failure without matching message strings.
struct TransportClosed : std::runtime_error {
  TransportClosed() : std::runtime_error("transport: closed") {}
};

enum class Traffic : std::uint8_t {
  GarbledTable,  ///< half-gate ciphertexts (2 blocks per non-XOR gate)
  InputLabel,    ///< Alice's own input labels
  Ot,            ///< OT traffic for Bob's input labels (real framed bytes)
  OutputDecode,  ///< output labels / decode bits at the end
};

struct CommStats {
  std::uint64_t garbled_table_bytes = 0;
  std::uint64_t input_label_bytes = 0;
  std::uint64_t ot_bytes = 0;
  std::uint64_t output_bytes = 0;

  [[nodiscard]] std::uint64_t total() const {
    return garbled_table_bytes + input_label_bytes + ot_bytes + output_bytes;
  }

  void add(Traffic t, std::uint64_t bytes) {
    switch (t) {
      case Traffic::GarbledTable: garbled_table_bytes += bytes; break;
      case Traffic::InputLabel: input_label_bytes += bytes; break;
      case Traffic::Ot: ot_bytes += bytes; break;
      case Traffic::OutputDecode: output_bytes += bytes; break;
    }
  }

  CommStats& operator+=(const CommStats& o) {
    garbled_table_bytes += o.garbled_table_bytes;
    input_label_bytes += o.input_label_bytes;
    ot_bytes += o.ot_bytes;
    output_bytes += o.output_bytes;
    return *this;
  }
};

/// One party's endpoint: framed block messages to the peer, blocking reads
/// from the peer, and accounting for protocol bytes that do not travel as
/// blocks in-process (e.g. OT extension overhead).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one frame of `n` blocks; accounts 16*n bytes to class `t`.
  virtual void send(const crypto::Block* blocks, std::size_t n, Traffic t) = 0;

  /// Receives exactly `n` blocks (frames are a batching hint, not a datagram
  /// boundary; the byte stream is what is specified).
  virtual void recv(crypto::Block* out, std::size_t n) = 0;

  /// Extra bytes a real transport would carry for class `t`.
  virtual void account(Traffic t, std::uint64_t bytes) = 0;

  /// Pushes any locally buffered sends to the peer. In-process transports
  /// deliver eagerly and keep the no-op default; a buffering transport
  /// (socket) must also flush internally before any blocking read. The
  /// endpoints call this once at protocol end — the only send a later
  /// own-recv can never flush implicitly.
  virtual void flush() {}

  void send(crypto::Block b, Traffic t) { send(&b, 1, t); }
  crypto::Block recv() {
    crypto::Block b;
    recv(&b, 1);
    return b;
  }
};

/// Lock-step in-memory transport pair for a single-threaded driver. Each
/// direction is a FIFO whose delivered prefix is dropped as soon as the
/// reader fully drains it (plus a chunked fallback while partially drained),
/// so the high-water mark — not the total traffic — bounds memory.
class InMemoryDuplex {
 public:
  InMemoryDuplex();
  ~InMemoryDuplex();

  [[nodiscard]] Transport& garbler_end();
  [[nodiscard]] Transport& evaluator_end();

  /// Total accounted bytes, both directions.
  [[nodiscard]] CommStats stats() const;
  /// Maximum number of undelivered blocks ever buffered (both directions).
  [[nodiscard]] std::size_t high_water_blocks() const;

 private:
  struct Fifo {
    std::vector<crypto::Block> blocks;
    std::size_t read_pos = 0;
    std::size_t high_water = 0;

    void push(const crypto::Block* b, std::size_t n);
    void pop(crypto::Block* out, std::size_t n);
  };
  class End;

  Fifo a_to_b_;
  Fifo b_to_a_;
  CommStats garbler_sent_;
  CommStats evaluator_sent_;
  std::unique_ptr<End> garbler_end_;
  std::unique_ptr<End> evaluator_end_;
};

/// Two bounded single-producer/single-consumer rings with blocking send and
/// recv: the garbler thread can run `capacity_blocks` of traffic ahead of the
/// evaluator before backpressure stalls it. stats() must only be called after
/// both parties are done (the driver joins its worker thread first).
class ThreadedPipeDuplex {
 public:
  /// `capacity_blocks` is per direction; clamped to at least one maximal
  /// frame so a single message can never deadlock.
  explicit ThreadedPipeDuplex(std::size_t capacity_blocks);
  ~ThreadedPipeDuplex();

  [[nodiscard]] Transport& garbler_end();
  [[nodiscard]] Transport& evaluator_end();

  /// Wakes any blocked peer; subsequent sends and empty recvs throw. Used to
  /// unwind cleanly when one party fails. Idempotent.
  void close();

  [[nodiscard]] CommStats stats() const;
  [[nodiscard]] std::size_t capacity_blocks() const { return capacity_; }
  /// Maximum ring occupancy observed (both directions; bounded by capacity).
  [[nodiscard]] std::size_t high_water_blocks() const;

 private:
  /// SPSC bounded ring. `count` is atomic so both sides can spin briefly on
  /// the fast path (the parties exchange many small frames in near lock-step;
  /// sleeping through every frame costs tens of microseconds of wake latency
  /// each) before falling back to the condition variables.
  struct Pipe {
    explicit Pipe(std::size_t cap) : ring(cap) {}
    std::mutex m;
    std::condition_variable not_full;
    std::condition_variable not_empty;
    std::vector<crypto::Block> ring;
    std::size_t head = 0;  ///< next write slot
    std::size_t tail = 0;  ///< next read slot
    std::atomic<std::size_t> count{0};
    std::size_t high_water = 0;
    std::atomic<bool> closed{false};

    void push(const crypto::Block* b, std::size_t n);
    void pop(crypto::Block* out, std::size_t n);
    void close();
  };
  class End;

  std::size_t capacity_;
  Pipe a_to_b_;
  Pipe b_to_a_;
  CommStats garbler_sent_;
  CommStats evaluator_sent_;
  std::unique_ptr<End> garbler_end_;
  std::unique_ptr<End> evaluator_end_;
};

}  // namespace arm2gc::gc
