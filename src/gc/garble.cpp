#include "gc/garble.h"

#include <stdexcept>

namespace arm2gc::gc {

namespace {
constexpr Block kZero{};

Block maybe(Block b, bool take) { return take ? b : kZero; }
}  // namespace

Garbler::Garbler(Block seed, Scheme scheme) : rng_(seed), scheme_(scheme) {
  r_ = rng_.next_block();
  r_.lo |= 1u;  // point-and-permute: lsb(R) = 1 so the two labels differ in lsb
}

Block Garbler::fresh_label() { return rng_.next_block(); }

Block Garbler::garble(Block a0, Block b0, netlist::AndCore core, GarbledTable& table) {
  const std::uint64_t j0 = tweak_;
  tweak_ += 2;
  ++gate_counter_;
  const Block fresh = scheme_ == Scheme::Classic4 ? fresh_label() : kZero;
  return garble_at(a0, b0, core, j0, fresh, table);
}

Block Garbler::garble_at(Block a0, Block b0, netlist::AndCore core, std::uint64_t tweak,
                         Block classic_fresh, GarbledTable& table) const {
  // Fold the gate's polarity into the labels: garble a plain AND over the
  // polarity-adjusted false labels, flip the output for gamma.
  const Block ea0 = a0 ^ maybe(r_, core.alpha);
  const Block eb0 = b0 ^ maybe(r_, core.beta);
  Block out0;
  switch (scheme_) {
    case Scheme::HalfGates: out0 = half_gates(ea0, eb0, tweak, table); break;
    case Scheme::Grr3: out0 = classic(ea0, eb0, tweak, kZero, table, /*grr3=*/true); break;
    case Scheme::Classic4:
      out0 = classic(ea0, eb0, tweak, classic_fresh, table, /*grr3=*/false);
      break;
    default: throw std::logic_error("garbler: unknown scheme");
  }
  return out0 ^ maybe(r_, core.gamma);
}

Block Garbler::half_gates(Block a0, Block b0, std::uint64_t j0, GarbledTable& table) const {
  const bool pa = a0.lsb();
  const bool pb = b0.lsb();
  const std::uint64_t j1 = j0 + 1;

  // The generator and evaluator half-gates need 4 independent hashes; one
  // batched call keeps all of them in the AES pipeline at once.
  const Block in[4] = {a0, a0 ^ r_, b0, b0 ^ r_};
  const std::uint64_t tw[4] = {j0, j0, j1, j1};
  Block h[4];
  hash_.hash4(in, tw, h);
  const Block ha0 = h[0];
  const Block ha1 = h[1];
  const Block tg = ha0 ^ ha1 ^ maybe(r_, pb);
  const Block wg0 = ha0 ^ maybe(tg, pa);

  const Block hb0 = h[2];
  const Block hb1 = h[3];
  const Block te = hb0 ^ hb1 ^ a0;
  const Block we0 = hb0 ^ maybe(te ^ a0, pb);

  table.rows[0] = tg;
  table.rows[1] = te;
  table.count = 2;
  return wg0 ^ we0;
}

Block Garbler::classic(Block a0, Block b0, std::uint64_t j0, Block w0_fresh, GarbledTable& table,
                       bool grr3) const {
  const bool pa = a0.lsb();
  const bool pb = b0.lsb();
  const std::uint64_t j1 = j0 + 1;

  const Block in[4] = {a0, a0 ^ r_, b0, b0 ^ r_};
  const std::uint64_t tw[4] = {j0, j0, j1, j1};
  Block h[4];
  hash_.hash4(in, tw, h);
  const Block ha[2] = {h[0], h[1]};
  const Block hb[2] = {h[2], h[3]};

  Block w0;
  if (grr3) {
    // Row (sa,sb)=(0,0) is defined to decrypt to all-zero: the output label
    // for value (pa & pb) equals H(a_pa) ^ H(b_pb).
    const Block pad00 = ha[pa ? 1 : 0] ^ hb[pb ? 1 : 0];
    const bool v00 = pa && pb;
    w0 = pad00 ^ maybe(r_, v00);
  } else {
    w0 = w0_fresh;
  }

  table.count = grr3 ? 3 : 4;
  for (int va = 0; va < 2; ++va) {
    for (int vb = 0; vb < 2; ++vb) {
      const int sa = static_cast<int>(pa) ^ va;
      const int sb = static_cast<int>(pb) ^ vb;
      const int slot = (sa << 1) | sb;
      const bool out_val = (va != 0) && (vb != 0);
      const Block ct = ha[va] ^ hb[vb] ^ w0 ^ maybe(r_, out_val);
      if (grr3) {
        if (slot == 0) continue;  // implicit all-zero row
        table.rows[static_cast<std::size_t>(slot - 1)] = ct;
      } else {
        table.rows[static_cast<std::size_t>(slot)] = ct;
      }
    }
  }
  return w0;
}

Block Evaluator::eval(Block a, Block b, const GarbledTable& table) {
  const std::uint64_t j0 = tweak_;
  tweak_ += 2;
  ++gate_counter_;
  return eval_at(a, b, table, j0);
}

Block Evaluator::eval_at(Block a, Block b, const GarbledTable& table, std::uint64_t tweak) const {
  switch (scheme_) {
    case Scheme::HalfGates: return eval_half_gates(a, b, tweak, table);
    case Scheme::Grr3: return eval_classic(a, b, tweak, table, /*grr3=*/true);
    case Scheme::Classic4: return eval_classic(a, b, tweak, table, /*grr3=*/false);
    default: throw std::logic_error("evaluator: unknown scheme");
  }
}

Block Evaluator::eval_half_gates(Block a, Block b, std::uint64_t j0,
                                 const GarbledTable& table) const {
  const std::uint64_t j1 = j0 + 1;
  const Block tg = table.rows[0];
  const Block te = table.rows[1];
  const Block in[2] = {a, b};
  const std::uint64_t tw[2] = {j0, j1};
  Block h[2];
  hash_.hash2(in, tw, h);
  const Block wg = h[0] ^ maybe(tg, a.lsb());
  const Block we = h[1] ^ maybe(te ^ a, b.lsb());
  return wg ^ we;
}

Block Evaluator::eval_classic(Block a, Block b, std::uint64_t j0, const GarbledTable& table,
                              bool grr3) const {
  const std::uint64_t j1 = j0 + 1;
  const int slot = (static_cast<int>(a.lsb()) << 1) | static_cast<int>(b.lsb());
  const Block in[2] = {a, b};
  const std::uint64_t tw[2] = {j0, j1};
  Block h[2];
  hash_.hash2(in, tw, h);
  const Block pad = h[0] ^ h[1];
  if (grr3) {
    if (slot == 0) return pad;
    return pad ^ table.rows[static_cast<std::size_t>(slot - 1)];
  }
  return pad ^ table.rows[static_cast<std::size_t>(slot)];
}

}  // namespace arm2gc::gc
