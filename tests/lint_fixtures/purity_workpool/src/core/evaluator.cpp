// Fixture: evaluator TU; owns lb_ and must never name garbler secrets.
#include "core/plan.h"
#include "gc/transport.h"
namespace fix::core {
class EvaluatorSession {
 public:
  void run();
 private:
  gc::Transport* tx_ = nullptr;
  crypto::Block lb_[2];
};
void EvaluatorSession::run() { (void)tx_; }
}  // namespace fix::core
