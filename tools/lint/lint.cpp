#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace arm2gc::lint {
namespace {

namespace fs = std::filesystem;

[[nodiscard]] bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

/// First path component of a repo-relative path ("src/core/plan.h" -> "src").
[[nodiscard]] std::string path_head(const std::string& p) {
  const std::size_t slash = p.find('/');
  return slash == std::string::npos ? p : p.substr(0, slash);
}

/// Second path component ("src/core/plan.h" -> "core"; "" when absent).
[[nodiscard]] std::string path_second(const std::string& p) {
  const std::size_t a = p.find('/');
  if (a == std::string::npos) return {};
  const std::size_t b = p.find('/', a + 1);
  return b == std::string::npos ? p.substr(a + 1) : p.substr(a + 1, b - a - 1);
}

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

[[nodiscard]] bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

// ---------------------------------------------------------------------------
// Rules parsing (TOML subset)
// ---------------------------------------------------------------------------

/// Strips a trailing "# comment" that is not inside quotes, then whitespace.
[[nodiscard]] std::string strip_line(const std::string& raw) {
  std::string s;
  bool quoted = false;
  for (char c : raw) {
    if (c == '"') quoted = !quoted;
    if (c == '#' && !quoted) break;
    s.push_back(c);
  }
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

[[nodiscard]] std::vector<std::string> parse_string_array(const std::string& body,
                                                          std::size_t line_no) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < body.size()) {
    while (i < body.size() && (body[i] == ' ' || body[i] == '\t' || body[i] == ',' ||
                               body[i] == '\n' || body[i] == '\r')) {
      ++i;
    }
    if (i >= body.size()) break;
    if (body[i] != '"') {
      throw std::runtime_error("lint rules line " + std::to_string(line_no) +
                               ": expected quoted string in array");
    }
    const std::size_t end = body.find('"', i + 1);
    if (end == std::string::npos) {
      throw std::runtime_error("lint rules line " + std::to_string(line_no) +
                               ": unterminated string");
    }
    out.push_back(body.substr(i + 1, end - i - 1));
    i = end + 1;
  }
  return out;
}

}  // namespace

Rules parse_rules(const std::string& text) {
  Rules r;
  std::istringstream in(text);
  std::string raw;
  std::string section;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = strip_line(raw);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw std::runtime_error("lint rules line " + std::to_string(line_no) +
                                 ": malformed section header");
      }
      section = line.substr(1, line.size() - 2);
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("lint rules line " + std::to_string(line_no) +
                               ": expected key = value");
    }
    std::string key = line.substr(0, eq);
    while (!key.empty() && (key.back() == ' ' || key.back() == '\t')) key.pop_back();
    std::string value = line.substr(eq + 1);
    // Multi-line arrays: accumulate until the brackets balance.
    if (value.find('[') != std::string::npos) {
      while (std::count(value.begin(), value.end(), '[') >
             std::count(value.begin(), value.end(), ']')) {
        if (!std::getline(in, raw)) {
          throw std::runtime_error("lint rules line " + std::to_string(line_no) +
                                   ": unterminated array");
        }
        ++line_no;
        value += '\n';
        value += strip_line(raw);
      }
    }
    std::vector<std::string> arr;
    {
      const std::size_t open = value.find('[');
      if (open != std::string::npos) {
        const std::size_t close = value.rfind(']');
        arr = parse_string_array(value.substr(open + 1, close - open - 1), line_no);
      } else {
        const std::size_t q0 = value.find('"');
        const std::size_t q1 = value.rfind('"');
        if (q0 == std::string::npos || q1 <= q0) {
          throw std::runtime_error("lint rules line " + std::to_string(line_no) +
                                   ": expected string or array value");
        }
        arr.push_back(value.substr(q0 + 1, q1 - q0 - 1));
      }
    }

    if (section == "scan") {
      if (key == "dirs") r.scan_dirs = arr;
      else if (key == "exclude") r.scan_exclude = arr;
    } else if (section == "layers") {
      if (key == "unrestricted") r.unrestricted_dirs = arr;
      else r.layers[key] = arr;
    } else if (section == "roles") {
      if (key == "garbler_files") r.garbler_files = arr;
      else if (key == "evaluator_files") r.evaluator_files = arr;
      else if (key == "garbler_symbols") r.garbler_symbols = arr;
      else if (key == "evaluator_symbols") r.evaluator_symbols = arr;
      else if (key == "dual_files") r.dual_files = arr;
      else if (key == "scope_dirs") r.role_scope_dirs = arr;
    } else if (section == "purity") {
      if (key == "files") r.purity_files = arr;
      else if (key == "forbidden_includes") r.purity_forbidden_includes = arr;
      else if (key == "forbidden_symbols") r.purity_forbidden_symbols = arr;
    } else if (section == "transport") {
      if (key == "send_tokens") r.transport_send_tokens = arr;
      else if (key == "secret_tokens") r.transport_secret_tokens = arr;
      else if (key == "allow") r.transport_allow = arr;
      else if (key == "scope_dirs") r.transport_scope_dirs = arr;
    } else if (section == "banned") {
      if (key == "symbols") r.banned_symbols = arr;
      else if (key == "scope_dirs") r.banned_scope_dirs = arr;
    }
    // Unknown sections/keys are ignored so the format can grow.
  }
  if (r.scan_dirs.empty()) throw std::runtime_error("lint rules: [scan] dirs is required");
  return r;
}

Rules load_rules(const std::string& path) { return parse_rules(read_file(path)); }

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

namespace {

struct Token {
  std::string text;
  std::size_t line = 0;
  bool ident = false;
};

struct Include {
  std::string path;  ///< the quoted project-relative include target
  std::size_t line = 0;
};

/// One scanned source file: identifier/punctuation tokens with comments,
/// strings and preprocessor include lines stripped out, plus the project
/// ("" -quoted) include list.
struct Scan {
  std::vector<Token> tokens;
  std::vector<Include> includes;
};

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Scan scan_source(const std::string& text) {
  Scan s;
  std::size_t i = 0;
  std::size_t line = 1;
  const std::size_t n = text.size();
  bool line_start = true;  ///< only whitespace so far on this line (for '#')
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    // Preprocessor directives: capture #include "..."; other directives are
    // tokenized normally (their identifiers are real references).
    if (c == '#' && line_start) {
      std::size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      if (text.compare(j, 7, "include") == 0) {
        j += 7;
        while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
        if (j < n && text[j] == '"') {
          const std::size_t end = text.find('"', j + 1);
          if (end != std::string::npos) {
            s.includes.push_back({text.substr(j + 1, end - j - 1), line});
          }
        }
        while (i < n && text[i] != '\n') ++i;  // <...> includes also skipped here
        continue;
      }
      line_start = false;
      ++i;
      continue;
    }
    line_start = false;
    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim.push_back(text[j++]);
      const std::string close = ")" + delim + "\"";
      std::size_t end = text.find(close, j);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < std::min(n, end + close.size()); ++k) {
        if (text[k] == '\n') ++line;
      }
      i = std::min(n, end + close.size());
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char q = c;
      ++i;
      while (i < n && text[i] != q) {
        if (text[i] == '\\') ++i;
        if (i < n && text[i] == '\n') ++line;
        ++i;
      }
      ++i;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      s.tokens.push_back({text.substr(i, j - i), line, true});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(text[j]) || text[j] == '.' || text[j] == '\'')) ++j;
      i = j;  // numeric literals carry no references
      continue;
    }
    // Multi-char punctuation we care about: "::" and "->".
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      s.tokens.push_back({"::", line, false});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      s.tokens.push_back({"->", line, false});
      i += 2;
      continue;
    }
    s.tokens.push_back({std::string(1, c), line, false});
    ++i;
  }
  return s;
}

// ---------------------------------------------------------------------------
// Enclosing-function tracking (for the transport allowlist)
// ---------------------------------------------------------------------------

/// Walks a token stream once, reporting for every token index the qualified
/// name of the enclosing function ("Class::method" for definitions inside a
/// class body, the spelled "A::B::f" for out-of-class definitions, "" at
/// file scope). Heuristic but exact for this codebase's clang-format style.
class ScopeTracker {
 public:
  explicit ScopeTracker(const std::vector<Token>& toks) : toks_(toks) {}

  /// Advances to token index `i` (monotonically) and returns the qualified
  /// enclosing function name at that point.
  [[nodiscard]] std::string at(std::size_t i) {
    while (pos_ <= i && pos_ < toks_.size()) step();
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Kind::Func) return it->name;
    }
    return {};
  }

 private:
  enum class Kind { Block, Class, Func, Namespace };
  struct Scope {
    Kind kind;
    std::string name;
  };

  void step() {
    const Token& t = toks_[pos_];
    if (t.text == "(") {
      if (paren_ == 0 && candidate_.empty()) {
        // Candidate function name: the identifier chain just before the
        // FIRST '(' since the last statement/scope boundary — a constructor
        // initializer list's member parens must not overwrite it.
        candidate_ = name_chain_before(pos_);
      }
      ++paren_;
    } else if (t.text == ")") {
      if (paren_ > 0) --paren_;
    } else if (t.text == "{" && paren_ == 0) {
      stack_.push_back(classify_open());
      candidate_.clear();
    } else if (t.text == "}" && paren_ == 0) {
      if (!stack_.empty()) stack_.pop_back();
      candidate_.clear();
    } else if (t.text == ";" && paren_ == 0) {
      candidate_.clear();  // declaration, not a definition
    }
    ++pos_;
  }

  /// Collects "A::B::name" ending at tokens just before index `open_paren`.
  [[nodiscard]] std::string name_chain_before(std::size_t open_paren) const {
    static const std::unordered_set<std::string> kNotNames = {
        "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
        "throw", "new", "delete", "static_assert", "decltype", "noexcept", "defined"};
    if (open_paren == 0) return {};
    std::size_t j = open_paren;  // exclusive end
    std::string chain;
    while (j >= 1) {
      const Token& id = toks_[j - 1];
      if (!id.ident) break;
      if (kNotNames.count(id.text)) return {};
      chain = chain.empty() ? id.text : id.text + "::" + chain;
      if (j >= 3 && toks_[j - 2].text == "::" && toks_[j - 3].ident) {
        j -= 2;
      } else {
        break;
      }
    }
    return chain;
  }

  /// Classifies the '{' at pos_ from lookback context.
  [[nodiscard]] Scope classify_open() {
    // namespace? class/struct/enum/union? Walk back to the last ; { or }.
    std::size_t j = pos_;
    std::size_t stop = 0;
    while (j > 0) {
      const std::string& x = toks_[j - 1].text;
      if (x == ";" || x == "{" || x == "}") {
        stop = j;
        break;
      }
      --j;
    }
    std::string head_kw;
    std::string head_name;
    bool saw_paren = false;
    bool saw_eq = false;
    for (std::size_t k = stop; k < pos_; ++k) {
      const Token& tk = toks_[k];
      if (tk.text == "namespace" || tk.text == "class" || tk.text == "struct" ||
          tk.text == "union" || tk.text == "enum") {
        if (head_kw.empty()) {
          head_kw = tk.text;
          if (k + 1 < pos_ && toks_[k + 1].ident) head_name = toks_[k + 1].text;
        }
      } else if (tk.text == "(") {
        saw_paren = true;
      } else if (tk.text == "=") {
        saw_eq = true;  // initializer list / lambda assignment
      }
    }
    if (head_kw == "namespace") return {Kind::Namespace, head_name};
    if (!head_kw.empty() && !saw_paren) return {Kind::Class, head_name};
    if (saw_paren && !candidate_.empty() && !saw_eq) {
      std::string name = candidate_;
      candidate_.clear();
      if (name.find("::") == std::string::npos) {
        // In-class definition: qualify with the innermost class scope.
        for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
          if (it->kind == Kind::Class && !it->name.empty()) {
            name = it->name + "::" + name;
            break;
          }
          if (it->kind == Kind::Func || it->kind == Kind::Namespace) break;
        }
      }
      return {Kind::Func, name};
    }
    return {Kind::Block, {}};
  }

  const std::vector<Token>& toks_;
  std::vector<Scope> stack_;
  std::size_t pos_ = 0;
  std::size_t paren_ = 0;
  std::string candidate_;
};

}  // namespace

// ---------------------------------------------------------------------------
// File discovery
// ---------------------------------------------------------------------------

std::vector<std::string> collect_sources(const std::string& root, const Rules& rules) {
  std::vector<std::string> out;
  for (const std::string& dir : rules.scan_dirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp" && ext != ".hpp" && ext != ".cc") continue;
      std::string rel = fs::relative(entry.path(), root).generic_string();
      bool excluded = false;
      for (const std::string& ex : rules.scan_exclude) {
        if (starts_with(rel, ex)) {
          excluded = true;
          break;
        }
      }
      if (!excluded) out.push_back(std::move(rel));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> tus_from_compile_commands(const std::string& json_path,
                                                   const std::string& root,
                                                   const Rules& rules) {
  // The exported database is machine-written with one "file": "<abs path>"
  // per entry; a full JSON parser would be dead weight for that.
  const std::string text = read_file(json_path);
  std::vector<std::string> out;
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    const std::size_t q0 = text.find('"', pos);
    if (q0 == std::string::npos) break;
    const std::size_t q1 = text.find('"', q0 + 1);
    if (q1 == std::string::npos) break;
    const std::string abs = text.substr(q0 + 1, q1 - q0 - 1);
    pos = q1 + 1;
    std::error_code ec;
    std::string rel = fs::relative(abs, root, ec).generic_string();
    if (ec || rel.empty() || starts_with(rel, "..")) continue;
    if (contains(rules.scan_dirs, path_head(rel))) out.push_back(std::move(rel));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Rule execution
// ---------------------------------------------------------------------------

namespace {

void check_layers(const std::string& file, const Scan& scan, const Rules& rules,
                  std::vector<Finding>& out) {
  const std::string head = path_head(file);
  if (contains(rules.unrestricted_dirs, head)) return;
  if (head != "src") return;
  const std::string layer = path_second(file);
  const auto it = rules.layers.find(layer);
  if (it == rules.layers.end()) {
    out.push_back({file, 1, "layer",
                   "directory src/" + layer + " has no declared layer in [layers]"});
    return;
  }
  for (const Include& inc : scan.includes) {
    const std::string dep = path_head(inc.path);
    if (!contains(it->second, dep)) {
      out.push_back({file, inc.line, "layer",
                     "layer src/" + layer + " may not include \"" + inc.path +
                         "\" (allowed: " + [&] {
                           std::string s;
                           for (const auto& a : it->second) s += (s.empty() ? "" : ", ") + a;
                           return s;
                         }() + ")"});
    }
  }
}

void check_symbols(const std::string& file, const Scan& scan,
                   const std::vector<std::string>& symbols, const std::string& rule,
                   const std::string& why, std::vector<Finding>& out) {
  const std::unordered_set<std::string> set(symbols.begin(), symbols.end());
  for (const Token& t : scan.tokens) {
    if (t.ident && set.count(t.text)) {
      out.push_back({file, t.line, rule, "reference to `" + t.text + "` " + why});
    }
  }
}

[[nodiscard]] bool references_any(const Scan& scan, const std::vector<std::string>& symbols,
                                  std::size_t* line) {
  const std::unordered_set<std::string> set(symbols.begin(), symbols.end());
  for (const Token& t : scan.tokens) {
    if (t.ident && set.count(t.text)) {
      *line = t.line;
      return true;
    }
  }
  return false;
}

void check_transport(const std::string& file, const Scan& scan, const Rules& rules,
                     std::set<std::string>* used_allow, std::vector<Finding>& out) {
  if (!contains(rules.transport_scope_dirs, path_head(file))) return;
  const std::unordered_set<std::string> sends(rules.transport_send_tokens.begin(),
                                              rules.transport_send_tokens.end());
  const std::unordered_set<std::string> secrets(rules.transport_secret_tokens.begin(),
                                                rules.transport_secret_tokens.end());
  ScopeTracker scopes(scan.tokens);
  const auto& toks = scan.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].ident || !sends.count(toks[i].text) || toks[i + 1].text != "(") continue;
    // A call, not a definition: require a member access just before.
    if (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "->")) continue;
    // Scan the argument list for raw-secret identifiers.
    std::size_t depth = 0;
    std::string secret_hit;
    std::size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      else if (toks[j].text == ")" && --depth == 0) break;
      else if (toks[j].ident && secrets.count(toks[j].text) && secret_hit.empty())
        secret_hit = toks[j].text;
    }
    if (secret_hit.empty()) continue;
    const std::string site = file + ":" + scopes.at(i);
    if (contains(rules.transport_allow, site)) {
      used_allow->insert(site);
      continue;
    }
    out.push_back({file, toks[i].line, "transport",
                   "secret `" + secret_hit + "` reaches a transport send at " + site +
                       ", which is not on the [transport] allow list"});
  }
}

}  // namespace

std::vector<Finding> run_lint(const std::string& root, const Rules& rules,
                              const std::vector<std::string>& files) {
  std::vector<Finding> out;
  std::unordered_map<std::string, Scan> scans;
  scans.reserve(files.size());
  for (const std::string& f : files) {
    scans.emplace(f, scan_source(read_file((fs::path(root) / f).string())));
  }

  // Purity: the transitive project-include closure of the planner files must
  // avoid every forbidden header. Headers outside the scan set (e.g. system
  // headers) terminate the walk.
  std::set<std::string> purity_closure;
  {
    std::vector<std::string> work(rules.purity_files.begin(), rules.purity_files.end());
    std::set<std::string> seen(work.begin(), work.end());
    while (!work.empty()) {
      const std::string cur = work.back();
      work.pop_back();
      const auto it = scans.find(cur);
      if (it == scans.end()) continue;
      for (const Include& inc : it->second.includes) {
        const std::string dep = "src/" + inc.path;  // project includes are src-relative
        for (const std::string& forb : rules.purity_forbidden_includes) {
          if (inc.path == forb) {
            out.push_back({cur, inc.line, "purity",
                           "planner include closure reaches forbidden header \"" + forb +
                               "\" (planning must consume public data only)"});
          }
        }
        if (seen.insert(dep).second) work.push_back(dep);
      }
    }
  }
  for (const std::string& f : rules.purity_files) {
    const auto it = scans.find(f);
    if (it == scans.end()) {
      out.push_back({f, 1, "config", "[purity] files entry does not exist"});
      continue;
    }
    check_symbols(f, it->second, rules.purity_forbidden_symbols, "purity",
                  "in a planner file (planning must consume public data only)", out);
  }

  std::set<std::string> used_allow;
  for (const std::string& f : files) {
    const Scan& scan = scans.at(f);
    check_layers(f, scan, rules, out);

    const std::string head = path_head(f);
    const bool in_role_scope = contains(rules.role_scope_dirs, head);
    if (in_role_scope) {
      if (contains(rules.garbler_files, f)) {
        check_symbols(f, scan, rules.evaluator_symbols, "role",
                      "(evaluator-only) from a garbler translation unit", out);
      } else if (contains(rules.evaluator_files, f)) {
        check_symbols(f, scan, rules.garbler_symbols, "role",
                      "(garbler-only) from an evaluator translation unit", out);
      } else if (!contains(rules.dual_files, f)) {
        std::size_t gl = 0;
        std::size_t el = 0;
        if (references_any(scan, rules.garbler_symbols, &gl) &&
            references_any(scan, rules.evaluator_symbols, &el)) {
          out.push_back({f, std::max(gl, el), "dual",
                         "references both garbler-only and evaluator-only symbols but is "
                         "not on the [roles] dual_files allow list"});
        }
      }
    }

    if (contains(rules.banned_scope_dirs, head)) {
      check_symbols(f, scan, rules.banned_symbols, "banned", "(banned identifier)", out);
    }
    check_transport(f, scan, rules, &used_allow, out);
  }

  // Stale allowlist entries rot into silent holes; flag them.
  for (const std::string& a : rules.transport_allow) {
    if (!used_allow.count(a)) {
      out.push_back({a.substr(0, a.find(':')), 0, "config",
                     "[transport] allow entry \"" + a +
                         "\" matched no secret-bearing send (stale entry?)"});
    }
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.message < b.message;
  });
  return out;
}

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " + f.message;
}

}  // namespace arm2gc::lint
