// One-off tool: prints a digest of the garbled tables produced by a fixed,
// deterministic gate sequence, per scheme. Used to pin bit-identical garbling
// across the crypto refactor (the digest is hardcoded in tests/gc_test.cpp).
// The digest computation itself lives in gc/golden_digest.h, shared with the
// test so tool and test cannot drift.
#include <cstdio>

#include "gc/golden_digest.h"

using namespace arm2gc;

int main() {
  for (const gc::Scheme scheme :
       {gc::Scheme::HalfGates, gc::Scheme::Grr3, gc::Scheme::Classic4}) {
    std::printf("scheme=%d digest=%s\n", static_cast<int>(scheme),
                gc::golden_table_digest(scheme).c_str());
  }
  return 0;
}
