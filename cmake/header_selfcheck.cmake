# Header self-sufficiency check: every header under src/ must compile as the
# first include of an otherwise empty TU, under the project's warning set.
# A header that leans on what its includer happened to pull in breaks the
# layering story (and the linter's include-graph reasoning), so this runs as
# a regular ctest.
#
# Invoked by CMake as:
#   cmake -DSOURCE_DIR=<repo> -DCXX=<compiler> -DWORK_DIR=<scratch>
#         [-DX86=ON] -P cmake/header_selfcheck.cmake
#
# Headers are compiled directly (not with -x c++ on the .h, which would trip
# gcc's unsuppressable "#pragma once in main file" warning); each gets a tiny
# generated wrapper .cpp in WORK_DIR.

if(NOT SOURCE_DIR OR NOT CXX OR NOT WORK_DIR)
  message(FATAL_ERROR "header_selfcheck: need -DSOURCE_DIR, -DCXX and -DWORK_DIR")
endif()

file(GLOB_RECURSE headers RELATIVE "${SOURCE_DIR}" "${SOURCE_DIR}/src/*.h")
list(SORT headers)
file(MAKE_DIRECTORY "${WORK_DIR}")

set(failed "")
set(checked 0)
foreach(header IN LISTS headers)
  string(REPLACE "/" "_" stem "${header}")
  set(wrapper "${WORK_DIR}/${stem}.cpp")
  file(WRITE "${wrapper}" "#include \"${header}\"\n")

  set(flags -std=c++20 -fsyntax-only -Wall -Wextra -Werror "-I${SOURCE_DIR}/src" "-I${SOURCE_DIR}")
  if(header STREQUAL "src/crypto/aesni_impl.h")
    if(NOT X86)
      continue()  # AES-NI intrinsics header is x86-only by contract.
    endif()
    list(APPEND flags -maes -msse2)
  endif()

  execute_process(
    COMMAND "${CXX}" ${flags} "${wrapper}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  math(EXPR checked "${checked}+1")
  if(NOT rc EQUAL 0)
    message(STATUS "not self-sufficient: ${header}\n${err}")
    list(APPEND failed "${header}")
  endif()
endforeach()

if(failed)
  list(LENGTH failed n)
  message(FATAL_ERROR "${n} header(s) are not self-sufficient: ${failed}")
endif()
message(STATUS "header_selfcheck: ${checked} headers self-sufficient")
