// The SkipGate planner (paper §3): a deterministic classification pass over
// *public data only* that both parties run independently and that fully
// determines what the garbler and the evaluator do in a cycle.
//
//   Forward pass   classify every gate (categories i-iv) using public wire
//                  values and secret-wire fingerprints; a fingerprint is a
//                  deterministic public alias for the XOR-combination of base
//                  labels a wire carries, so "fingerprints equal (+flip)" is
//                  exactly the paper's "identical or inverted labels" test
//                  (§3.3) without touching any key material.
//   Backward pass  from the sampled outputs and flip-flop D-inputs, sweep
//                  "needed" backwards; a category-iv gate is emitted iff its
//                  output is needed. This reaches the same fixpoint as the
//                  paper's recursive label_fanout reduction and makes Alice's
//                  table list and Bob's expectations agree by construction.
//
// The result of the two passes is an explicit `CyclePlan`. Because the plan
// is a pure function of the cycle's *entry state* — the public values, flip
// parities and fingerprint-equivalence classes of the root wires (constants,
// inputs, flip-flops) — plans are cached under a canonical signature of that
// state (PlanCache). The garbled ARM core re-enters the same public control
// state on every loop iteration (fetch/decode is public — the paper's whole
// point), so repeated cycles skip classification entirely.
//
// Classification is additionally *cone-granular*: the netlist is partitioned
// once into topologically-contiguous segments (fanin cones rooted at
// constants/inputs/DFFs, cut where the fewest wires cross a frontier), the
// CyclePlan is a composition of per-segment slices, and each segment's
// forward classification is memoized under its *local* boundary-state key
// (ConeMemo). A cycle whose entry state differs from every cached
// whole-netlist state only inside a few cones re-classifies exactly those
// dirty cones — found by sweeping which roots' signature words changed and
// which upstream slices' bytes actually changed — and stitches the rest
// from the memo (or, for cones untouched since the previous cycle, adopts
// the previous slice outright). Stitched plans are byte-identical to a
// from-scratch classification: every fingerprint-dependent decision in an
// adopted cone is re-verified against the live fingerprints, and drift
// falls back to reclassifying that cone.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "crypto/aes128.h"
#include "crypto/block.h"
#include "netlist/netlist.h"

namespace arm2gc::core {

/// SkipGate = the paper's protocol; Conventional = classic sequential GC that
/// treats every wire (including constants, public inputs and known initial
/// values) as secret — the "w/o SkipGate" baseline of Tables 1 and 4.
enum class Mode : std::uint8_t { SkipGate, Conventional };

// PassC0/PassC1 cover degenerate constant-table gates in Conventional mode,
// where even a constant must stay a (secret-typed) wire: the gate forwards
// the global constant wire's label. PassSrc forwards an arbitrary earlier
// wire recorded in the plan (XOR-cancellation peephole).
enum class PlanAct : std::uint8_t {
  Public,
  PassA,
  PassB,
  FreeXor,
  Garble,
  PassC0,
  PassC1,
  PassSrc,
};

/// Planner view of one wire for the current cycle.
struct WireState {
  bool is_pub = true;
  bool val = false;       // public value
  bool flip = false;      // inversion parity of the carried secret combination
  crypto::Block fp{};     // fingerprint of the carried secret combination
};

/// One contiguous run of `count` gates starting at gate index `first_gate`,
/// with the plan data for exactly those gates. Slice storage is owned by the
/// Planner (cache entry or scratch) and stays valid until the next forward().
struct PlanSlice {
  const std::uint8_t* act = nullptr;          ///< PlanAct per gate in the slice
  const netlist::WireId* pass_src = nullptr;  ///< source wire for PassSrc gates
  const std::uint8_t* emit = nullptr;         ///< per gate: garbled table sent
  const std::uint8_t* live = nullptr;         ///< per gate: party passes process it
  /// Slice-relative indices of the live gates, ascending — the party
  /// sessions' SkipGate work list (null in Conventional mode: every gate is
  /// live, iterate the full range). Gates not listed need no label work and
  /// none of their outputs is read by a listed gate.
  const std::uint32_t* work = nullptr;
  std::uint32_t work_count = 0;
  std::uint32_t first_gate = 0;  ///< global gate index of slice start
  std::uint32_t count = 0;

  [[nodiscard]] PlanAct action(std::size_t j) const { return static_cast<PlanAct>(act[j]); }
};

/// One cycle's complete public plan, shared verbatim by both party sessions:
/// a composition of per-cone slices (in gate order, covering every gate
/// exactly once) plus the packed per-wire public/value/flip bits. All storage
/// is owned by the Planner and stays valid until the next forward() call.
struct CyclePlan {
  const PlanSlice* slices = nullptr;
  std::size_t num_slices = 0;
  const std::uint8_t* wire_bits = nullptr;  ///< bit0 pub, bit1 val, bit2 flip
  /// Cone dependency CSR: slice i reads outputs of earlier slices
  /// dep_edges[dep_offsets[i] .. dep_offsets[i+1]) (every edge points at a
  /// lower slice index, so ascending slice order is a valid serial
  /// schedule). This is the exact scheduling constraint for garbling or
  /// evaluating slices on a worker pool.
  const std::uint32_t* dep_offsets = nullptr;
  const std::uint32_t* dep_edges = nullptr;
  std::size_t num_gates = 0;
  std::size_t num_wires = 0;
  std::uint64_t emitted = 0;  ///< number of garbled tables this cycle
  bool is_final = false;
  bool sample = false;  ///< outputs are decoded this cycle

  [[nodiscard]] bool wire_public(netlist::WireId w) const { return (wire_bits[w] & 1) != 0; }
  [[nodiscard]] bool wire_value(netlist::WireId w) const { return (wire_bits[w] & 2) != 0; }
  [[nodiscard]] bool wire_flip(netlist::WireId w) const { return (wire_bits[w] & 4) != 0; }
};

/// One fanin-cone segment of the netlist: the contiguous gate range
/// [first_gate, first_gate+count) plus the external wires its gates read
/// (roots and earlier segments' outputs), ascending — the cone's local
/// key domain.
struct PlanSegment {
  std::uint32_t first_gate = 0;
  std::uint32_t count = 0;
  std::vector<netlist::WireId> boundary;
  /// boundary[0..root_count) are root wires (constants/inputs/DFF outputs);
  /// the rest are earlier segments' gate outputs.
  std::uint32_t root_count = 0;
  /// Earlier segments whose gate outputs this segment reads (deduplicated,
  /// ascending) — the dirty-cascade edges.
  std::vector<std::uint32_t> deps;
};

/// Deterministic one-time partition of a netlist's gates into segments. Both
/// parties compute it independently from public data, so it is part of the
/// shared plan contract (its key is folded into every memo key). Cuts are
/// placed near multiples of `target_gates` at fanout frontiers — positions
/// the fewest live wires cross — so boundary keys stay small.
struct PlanLayout {
  std::vector<PlanSegment> segments;
  std::size_t max_boundary = 0;     ///< largest boundary size over all segments
  std::size_t total_boundary = 0;   ///< summed boundary sizes (key cost)
  std::size_t unique_boundary = 0;  ///< distinct wires appearing in any boundary
  std::uint64_t key = 0;            ///< netlist key + cut positions

  static PlanLayout build(const netlist::Netlist& nl, std::size_t target_gates,
                          std::uint64_t netlist_key);
};

class Planner;

/// Reusable per-party store of classified cycle plans, keyed by the entry
/// state signature (public values, flip parities, fingerprint equivalence
/// classes). The signature is deliberately coarse — it cannot see XOR-linear
/// relations *among* root fingerprints — so every hit is re-verified against
/// the current fingerprints before being served and silently reclassified on
/// drift, so caching can never change results. The signature trajectory of a
/// run depends only on the netlist and the *public* inputs, so handing the
/// same PlanCache to successive runs of one machine on fresh private inputs
/// (the traffic-serving scenario) skips classification wherever the public
/// trajectory repeats. Capacity is bounded: once full, inserting a new state
/// evicts the least-recently-used entry, so long multi-program sessions
/// cannot grow memory without limit. Not thread-safe; use one instance per
/// party (the threaded driver enforces this).
class PlanCache {
 public:
  /// Capacity is derived from the per-entry footprint against this budget
  /// (at least 4 entries) on first use.
  ///
  /// `insert_on_first_sight` controls when a classified plan is copied into
  /// the cache: true (cross-run caches — reuse is known to come) stores every
  /// new state immediately; false (transient per-run caches) stores a state
  /// only on its second sighting, so runs over non-recurring states pay a
  /// cheap signature probe instead of a multi-hundred-kB entry copy.
  explicit PlanCache(std::size_t budget_bytes = 64u << 20, bool insert_on_first_sight = true);
  ~PlanCache();
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  [[nodiscard]] std::size_t entries() const { return lru_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  friend class Planner;

  struct Backward {
    std::vector<std::uint8_t> emit;
    std::vector<std::uint8_t> live;
    /// Slice-relative indices of live gates, concatenated per segment
    /// (offsets in work_off) — the sessions' per-slice work lists.
    std::vector<std::uint32_t> work;
    std::vector<std::uint32_t> work_off;
    std::uint64_t emitted = 0;
    bool filled = false;
  };

  /// Forward + backward results for one entry-state equivalence class. The
  /// flat whole-netlist arrays double as the stitch target for cone-granular
  /// classification; CyclePlan slices point into them at segment offsets.
  /// `touch` lists (ascending) every gate the hit-verification and backward
  /// passes must visit: non-Public actions plus Public collapses of two
  /// secret inputs (category iii) — on SkipGate workloads a small fraction
  /// of the netlist, which is the planner's hot-path leverage.
  struct Entry {
    std::uint64_t hash = 0;
    std::vector<std::uint32_t> sig;
    std::vector<std::uint8_t> act;
    std::vector<netlist::WireId> pass_src;
    std::vector<std::uint8_t> wire_bits;
    std::vector<std::uint32_t> touch;
    std::vector<std::uint32_t> touch_off;  ///< per-segment offsets into touch
    std::array<Backward, 2> backward;      ///< indexed by is_final
  };
  using LruList = std::list<Entry>;

  void ensure_sized(std::uint64_t netlist_key, std::size_t num_wires, std::size_t num_gates,
                    std::size_t roots);
  [[nodiscard]] bool admit(std::uint64_t hash);
  /// Lookup by hash + full signature; a hit is touched (moved to LRU front).
  [[nodiscard]] Entry* find(std::uint64_t hash, const std::vector<std::uint32_t>& sig);
  /// Inserts a fresh entry for the signature (admission policy permitting),
  /// evicting the least-recently-used entry when at capacity. Returns null
  /// when the admission policy declines (classify uncached instead).
  [[nodiscard]] Entry* insert(std::uint64_t hash, const std::vector<std::uint32_t>& sig);

  std::size_t budget_bytes_;
  bool insert_first_;
  std::size_t capacity_ = 0;
  std::uint64_t evictions_ = 0;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::vector<LruList::iterator>> map_;
  /// Content hash of (mode, netlist structure) this cache is keyed for; a
  /// shared cache handed to a different circuit or mode is rejected.
  std::uint64_t netlist_key_ = 0;
  /// Signature hashes seen once (second-sighting admission policy).
  std::vector<std::uint64_t> seen_;
  std::size_t seen_count_ = 0;
};

/// Reusable per-party store of per-cone forward classifications, keyed by
/// the cone's *local* entry state: the root signature words of its boundary
/// roots plus the packed public/value/flip bits of its boundary internals.
/// The key deliberately carries no internal fingerprint structure — that is
/// discrimination, not soundness: every adopted cone's fingerprint-dependent
/// decisions are re-verified against the live fingerprints (key-equal
/// candidates are walked until one verifies; none verifying reclassifies),
/// and the common all-distinct fingerprint pattern collapses onto one key.
/// Entries hold only the segment's slice of the plan (actions, pass
/// sources, packed output wire bits, touch list), so they are small and hit
/// across *similar* cycles — entry states that agree inside the cone but
/// differ elsewhere — where the whole-netlist PlanCache misses. Bounded
/// capacity with LRU eviction across all segments. Not thread-safe; one per
/// party.
class ConeMemo {
 public:
  explicit ConeMemo(std::size_t budget_bytes = 32u << 20);
  ~ConeMemo();
  ConeMemo(const ConeMemo&) = delete;
  ConeMemo& operator=(const ConeMemo&) = delete;

  [[nodiscard]] std::size_t entries() const { return lru_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  friend class Planner;

  struct Entry {
    std::uint32_t segment = 0;
    std::uint64_t hash = 0;
    std::uint64_t slice_id = 0;      ///< content identity (never reused)
    std::vector<std::uint64_t> key;  ///< exact local boundary-state key
    std::vector<std::uint8_t> act;
    std::vector<netlist::WireId> pass_src;
    std::vector<std::uint8_t> out_bits;  ///< packed wire bits of the cone's outputs
    std::vector<std::uint32_t> touch;    ///< absolute gate indices to visit
  };
  using LruList = std::list<Entry>;

  void ensure_sized(std::uint64_t layout_key, const PlanLayout& layout);
  /// Returns the first key-equal candidate at index >= *after (advancing
  /// *after past it), or nullptr. Multiple entries may share a key: drifted
  /// fingerprint structure makes key-equal states classify differently, and
  /// the caller walks candidates until one verifies.
  [[nodiscard]] Entry* find(std::uint32_t segment, std::uint64_t hash,
                            const std::vector<std::uint64_t>& key, std::size_t* after);
  /// Read-only candidate walk: the same sequence find() would return, with
  /// no LRU motion — safe to call from concurrent workers probing different
  /// segments. The caller replays the deferred LRU touches serially via
  /// touch_candidates() once the parallel phase is over.
  [[nodiscard]] const Entry* peek(std::uint32_t segment, std::uint64_t hash,
                                  const std::vector<std::uint64_t>& key,
                                  std::size_t* after) const;
  /// Replays the LRU effect of `probed` find() probes for this key: splices
  /// the first `probed` key-equal candidates to the front, in probe order.
  /// Candidates evicted since the probe are silently skipped.
  void touch_candidates(std::uint32_t segment, std::uint64_t hash,
                        const std::vector<std::uint64_t>& key, std::size_t probed);
  [[nodiscard]] Entry* insert(std::uint32_t segment, std::uint64_t hash,
                              const std::vector<std::uint64_t>& key);

  std::size_t budget_bytes_;
  std::size_t capacity_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t next_slice_id_ = 0;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::vector<LruList::iterator>> map_;
  /// Layout content hash (netlist + mode + cut positions) this memo is keyed
  /// for; a shared memo handed to a different circuit/mode/layout is rejected.
  std::uint64_t layout_key_ = 0;
};

class WorkPool;

struct PlannerOptions {
  Mode mode = Mode::SkipGate;
  crypto::Block seed{};  ///< fingerprint stream seed (public; must match peer)
  /// Optional worker pool for cone-parallel classification and hit
  /// verification (null = serial). Parallel and serial runs produce
  /// bit-identical plans: per-gate fingerprints are derived, not streamed,
  /// and all cache/memo bookkeeping stays on the calling thread.
  WorkPool* pool = nullptr;
  bool cache = true;
  /// Budget for the planner-owned cache when no shared cache is supplied.
  std::size_t cache_budget_bytes = 64u << 20;
  /// Optional externally owned cache, reusable across runs (same netlist).
  PlanCache* shared_cache = nullptr;
  /// Cone-granular incremental classification: memoize per-segment forward
  /// results so whole-netlist cache misses re-classify only dirty cones.
  bool cone_memo = true;
  /// Budget for the planner-owned cone memo when none is supplied.
  std::size_t cone_memo_budget_bytes = 32u << 20;
  /// Optional externally owned cone memo, reusable across runs.
  ConeMemo* shared_cone_memo = nullptr;
  /// Segmentation granularity (gates per cone, approximate). Both parties
  /// must agree (folded into the layout key). 0 = one segment per netlist.
  std::size_t cone_target_gates = 512;
};

/// Deterministic public bookkeeping both parties run independently. Consumes
/// only public inputs; secret wires are tracked as (flip, fingerprint).
class Planner {
 public:
  Planner(const netlist::Netlist& nl, const PlannerOptions& opts);

  /// Binds root-wire planner state: constants, fixed inputs, flip-flop
  /// initial values. Draws one fingerprint per secret-bound bit, in binding
  /// order (the peer's planner consumes the identical sequence).
  void reset(const netlist::BitVec& pub_bits);

  /// Installs root states for a cycle; draws fresh fingerprints for streamed
  /// secret inputs. `pub_stream` carries this cycle's public streamed bits.
  void begin_cycle(const netlist::BitVec& pub_stream);

  /// Classifies the cycle (forward pass), via the plan cache when the entry
  /// signature matches a previous cycle and via the per-cone memo otherwise.
  /// Publicness/values of every wire are queryable afterwards (e.g. for the
  /// halt-wire check).
  void forward();

  [[nodiscard]] bool wire_public(netlist::WireId w) const;
  [[nodiscard]] bool wire_value(netlist::WireId w) const;

  /// Completes the plan for this cycle (backward needed/emit sweep, cached
  /// per is_final variant and memoized by slice composition). Valid until
  /// the next forward().
  [[nodiscard]] CyclePlan finish(bool is_final);

  /// Latches flip-flop planner state through the current plan.
  void latch(const CyclePlan& plan);

  [[nodiscard]] std::size_t non_free_per_cycle() const { return non_free_per_cycle_; }
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return cache_misses_; }
  /// Cone-level counters: over segments processed on whole-netlist cache
  /// misses only (a whole-netlist hit never consults the memo).
  [[nodiscard]] std::uint64_t cone_hits() const { return cone_hits_; }
  [[nodiscard]] std::uint64_t cone_misses() const { return cone_misses_; }
  [[nodiscard]] const PlanLayout& layout() const { return layout_; }

 private:
  using Entry = PlanCache::Entry;

  crypto::Block fresh_fp();
  /// Fingerprint of a category-iv gate output: a pure function of the
  /// cycle's fp epoch and the gate index, so the value is identical whether
  /// the gate is classified serially, on a worker, or re-derived during a
  /// hit verification — order-independence is what makes cone-parallel
  /// classification bit-identical to the serial pass. Disjoint from the
  /// root fingerprint stream by construction (top plaintext bit).
  [[nodiscard]] crypto::Block derived_fp(std::size_t gate) const;
  void bind_secret_fp(WireState& s);
  void build_signature();
  /// Gathers a dirty cone's exact memo key into `out`.
  void build_segment_key(std::size_t si, const PlanSegment& seg,
                         std::vector<std::uint64_t>& out) const;
  /// Forward-classifies the cycle into `e` — whole netlist, or stitched
  /// cone by cone when cone memoization is enabled: clean cones (no root
  /// signature word changed, no upstream slice changed) adopt the previous
  /// cycle's slice outright; dirty cones consult the memo by local key;
  /// memo misses reclassify. Segments are processed on the worker pool when
  /// one is configured (classification is per-cone data-independent given
  /// the dependency DAG); memo LRU motion and counters are replayed
  /// serially afterwards, so the result is bit-identical to a serial run.
  void build_plan(Entry& e);
  /// Fresh forward classification of one segment's gates into `e`; touched
  /// gate indices are appended to `touch` (per-segment scratch).
  void classify_segment(Entry& e, const PlanSegment& seg, std::vector<std::uint32_t>& touch);
  /// Copies a cached cone slice (memo entry or previous-cycle snapshot)
  /// into `e` and verifies it (below); false = drift, caller reclassifies
  /// the segment (e's slice is simply overwritten). On success the slice's
  /// touch indices are appended to `touch`.
  [[nodiscard]] bool adopt_segment(Entry& e, const PlanSegment& seg, const std::uint8_t* act,
                                   const netlist::WireId* pass_src,
                                   const std::uint8_t* out_bits, const std::uint32_t* touch,
                                   std::size_t touch_count, std::vector<std::uint32_t>& out_touch);
  /// Hit path: verifies the whole entry — per-segment touch sub-ranges in
  /// parallel on the pool when one is configured, one serial walk otherwise.
  [[nodiscard]] bool verify_entry(const Entry& e);
  /// Walks a touch (sub-)list once, propagating fingerprints through the
  /// cached actions AND verifying every fingerprint-dependent
  /// classification decision (category iii, XOR cancellation, category iv)
  /// against the current fingerprints. Returns false when any decision would
  /// differ — the cycle's XOR-linear fingerprint structure drifted from the
  /// cached state, which the equality-class keys cannot see — and the
  /// caller must reclassify. Failure is side-effect free: derived
  /// fingerprints are pure functions of (epoch, gate), so there is no
  /// stream cursor to restore and partially-written fingerprints are
  /// rewritten by the fallback classification.
  [[nodiscard]] bool verify_touch(const Entry& e, const std::uint32_t* touch,
                                  std::size_t touch_count);
  void backward_fill(const Entry& e, PlanCache::Backward& b, bool is_final);

  const netlist::Netlist& nl_;
  PlannerOptions opts_;
  PlanLayout layout_;

  // Root fingerprints are AES-CTR outputs consumed in strict counter order
  // (binding happens serially in reset()/begin_cycle()), generated a
  // pipelined batch at a time (same sequence as scalar calls). Category-iv
  // gate fingerprints do NOT come from this stream: they are derived per
  // (epoch, gate) — see derived_fp() — so classification order cannot
  // perturb them.
  static constexpr std::size_t kFpBatch = 8;
  crypto::Aes128 fp_gen_;
  std::uint64_t fp_ctr_ = 0;
  std::array<crypto::Block, kFpBatch> fp_buf_{};
  std::size_t fp_pos_ = kFpBatch;
  /// Derived-fingerprint epoch: incremented at the top of every forward()
  /// (hit or miss alike), never reset, so each cycle's category-iv
  /// fingerprints are globally fresh while being order-independent within
  /// the cycle. Both parties advance it identically (one forward per cycle).
  std::uint64_t fp_epoch_ = 0;

  // Per-wire cycle state. Packed public/value/flip bits live in the current
  // entry's wire_bits (adopted slices memcpy them wholesale); st_ carries
  // fingerprints, plus valid bits only for root wires (gate-range bits in
  // st_ are unspecified — always read bits from the entry).
  std::vector<WireState> st_;
  std::vector<WireState> fixed_st_;
  std::vector<WireState> dff_st_;
  WireState const_st_[2];
  std::vector<std::uint8_t> needed_;  ///< backward-sweep scratch
  std::size_t non_free_per_cycle_ = 0;

  // Plan cache: canonical entry-state signature -> Entry. Collisions on the
  // 64-bit hash fall back to full-signature comparison. Either externally
  // owned (shared across runs) or planner-owned.
  PlanCache* cache_ = nullptr;
  std::unique_ptr<PlanCache> owned_cache_;
  ConeMemo* memo_ = nullptr;
  std::unique_ptr<ConeMemo> owned_memo_;
  Entry scratch_;
  Entry* cur_ = nullptr;
  /// Packed wire bits of the entry being built/served this cycle (the
  /// authoritative public/value/flip store; st_ gate-range bits are stale).
  const std::uint8_t* cur_bits_ = nullptr;
  std::vector<PlanSlice> slices_;  ///< rebuilt by finish(); aliases cur_
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cone_hits_ = 0;
  std::uint64_t cone_misses_ = 0;

  // Previous stitched cycle's plan snapshot plus its root signature — the
  // dirty-region sweep's reference point. A cone is clean when none of its
  // boundary roots' signature words changed against prev_sig_ and none of
  // its producer segments' slices changed this cycle; clean cones adopt the
  // snapshot slice with no key build or memo lookup (verification still
  // runs — fingerprint drift falls back to the memo / reclassify).
  bool prev_ok_ = false;
  std::vector<std::uint32_t> prev_sig_;
  std::vector<std::uint8_t> prev_act_;
  std::vector<netlist::WireId> prev_pass_src_;
  std::vector<std::uint8_t> prev_bits_;
  std::vector<std::uint32_t> prev_touch_;
  std::vector<std::uint32_t> prev_touch_off_;
  std::vector<std::uint8_t> seg_changed_;  ///< per segment: slice != snapshot
  std::vector<std::uint8_t> seg_dirty_;    ///< per-cycle dirty scratch
  std::vector<std::uint64_t> slice_ids_;   ///< per segment: current content id
  bool stitched_ = false;  ///< cur_ was stitched this cycle (slice ids valid)
  /// CSR reverse index: root wire -> segments with it on their boundary.
  std::vector<std::uint32_t> root_consumer_offsets_;
  std::vector<std::uint32_t> root_consumers_;

  // Backward-pass memo for stitched cycles, keyed by the exact slice-id
  // composition plus is_final and the root wires the sweep reads directly:
  // loop-periodic cycles whose stitched plan recurs skip the needed/emit
  // sweep. (Whole-netlist cache entries carry their own backward variants;
  // this covers the cycles that cache misses.) Planner-owned, LRU-bounded.
  struct BackwardSlot {
    std::uint64_t hash = 0;
    std::vector<std::uint64_t> key;
    PlanCache::Backward b;
  };
  using BackwardList = std::list<BackwardSlot>;
  BackwardList backward_lru_;
  std::unordered_map<std::uint64_t, std::vector<BackwardList::iterator>> backward_map_;
  std::size_t backward_capacity_ = 0;
  std::vector<std::uint64_t> backward_key_;
  /// Root wires the backward sweep reads directly (output ports / DFF
  /// D-inputs below the gate range) — their packed bits join the key, since
  /// slice ids only pin gate-range content.
  std::vector<netlist::WireId> backward_root_wires_;

  // Cone dependency CSR over slices, flattened once from layout_ (every
  // edge points at a lower index). Drives the worker-pool schedule of
  // classification/verification and is exported through CyclePlan for the
  // party sessions' parallel garble/eval schedules.
  std::vector<std::uint32_t> slice_dep_offsets_;
  std::vector<std::uint32_t> slice_dep_edges_;

  // Per-segment scratch for the parallel classification phase: each worker
  // writes only its own segment's slots; the serial stitch phase reads them
  // in ascending segment order.
  enum : std::uint8_t { kSegCleanAdopt = 0, kSegMemoAdopt = 1, kSegClassified = 2 };
  std::vector<std::vector<std::uint32_t>> seg_touch_;
  std::vector<std::vector<std::uint64_t>> seg_keys_;
  std::vector<std::uint64_t> seg_hash_;
  std::vector<std::uint32_t> seg_probes_;    ///< memo candidates probed
  std::vector<std::uint64_t> seg_adopt_id_;  ///< slice id of the adopted memo entry
  std::vector<std::uint8_t> seg_result_;
  std::vector<std::uint8_t> seg_ok_;  ///< per-segment hit-verification flags

  // Signature scratch: fingerprint -> root-sweep equivalence-class id,
  // epoch-stamped so the table never needs clearing (64-bit epoch: never
  // wraps within a run).
  std::vector<std::uint32_t> sig_;
  struct ClassSlot {
    crypto::Block fp{};
    std::uint32_t id = 0;
    std::uint64_t epoch = 0;
  };
  std::vector<ClassSlot> class_table_;
  std::uint64_t class_epoch_ = 0;
  std::uint64_t netlist_key_ = 0;
};

}  // namespace arm2gc::core
