// Tests for tools/arm2gc_lint: every rule must fire on its failing fixture
// under tests/lint_fixtures/ and stay silent on the clean one — and the real
// tree, under the committed tools/lint_rules.toml, must lint clean. That
// last test is the machine check of the party-separation invariants: it runs
// in the regular ctest sweep, so a layering/secrecy regression fails tier-1
// even where clang-tidy is unavailable.
//
// ARM2GC_SOURCE_ROOT is injected by CMake (the lint fixtures and the rules
// file are read from the source tree, not copied into the build tree).
#include <algorithm>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.h"

namespace lint = arm2gc::lint;

namespace {

const std::string kRoot = ARM2GC_SOURCE_ROOT;
const std::string kFixtures = kRoot + "/tests/lint_fixtures";

/// Lints one fixture tree against the shared fixture rules.
std::vector<lint::Finding> lint_fixture(const std::string& name) {
  const lint::Rules rules = lint::load_rules(kFixtures + "/common_rules.toml");
  const std::string root = kFixtures + "/" + name;
  return lint::run_lint(root, rules, lint::collect_sources(root, rules));
}

std::multiset<std::string> rules_of(const std::vector<lint::Finding>& findings) {
  std::multiset<std::string> out;
  for (const auto& f : findings) out.insert(f.rule);
  return out;
}

}  // namespace

TEST(LintFixtures, CleanTreePasses) {
  const auto findings = lint_fixture("clean");
  EXPECT_TRUE(findings.empty()) << lint::format_finding(findings.front());
}

TEST(LintFixtures, LayerViolationFires) {
  const auto findings = lint_fixture("layer_violation");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layer");
  EXPECT_EQ(findings[0].file, "src/crypto/rng.h");
  EXPECT_NE(findings[0].message.find("gc/transport.h"), std::string::npos);
}

TEST(LintFixtures, GarblerSymbolInEvaluatorTuFires) {
  const auto findings = lint_fixture("role_garbler_in_eval");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(rules_of(findings), (std::multiset<std::string>{"role", "role"}));
  // Both the free-XOR offset R and the session type are caught.
  EXPECT_NE(findings[0].message.find("`R`"), std::string::npos);
  EXPECT_NE(findings[1].message.find("`GarblerSession`"), std::string::npos);
}

TEST(LintFixtures, OtPoolSymbolInEvaluatorTuFires) {
  // The precomputed random-OT pool's sender half stores both pads of every
  // banked OT — naming it in an evaluator TU is a role-secrecy violation
  // exactly like naming the free-XOR offset.
  const auto findings = lint_fixture("role_pool_in_eval");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "role");
  EXPECT_NE(findings[0].message.find("`RandomOtPoolSender`"), std::string::npos);
}

TEST(LintFixtures, EvaluatorSymbolInGarblerTuFires) {
  const auto findings = lint_fixture("role_eval_in_garbler");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "role");
  EXPECT_NE(findings[0].message.find("`OtReceiver`"), std::string::npos);
}

TEST(LintFixtures, BothRolesInUnlistedFileFires) {
  const auto findings = lint_fixture("dual_unlisted");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "dual");
  EXPECT_EQ(findings[0].file, "src/core/helper.cpp");
}

TEST(LintFixtures, TransitivePurityIncludeFires) {
  // plan.h reaches crypto/rng.h only through core/state.h: the include
  // CLOSURE is checked, not just direct includes.
  const auto findings = lint_fixture("purity_include");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "purity");
  EXPECT_EQ(findings[0].file, "src/core/state.h");
  EXPECT_NE(findings[0].message.find("crypto/rng.h"), std::string::npos);
}

TEST(LintFixtures, WorkpoolInPlannerClosureIsPurityChecked) {
  // The worker pool is legal inside the planner's include closure only while
  // it stays pure (the clean tree's plan.cpp includes a pure workpool.h). If
  // the pool grows a transport include, the purity rule fires ON the pool
  // header — the leak is attributed to the file that introduced it.
  const auto findings = lint_fixture("purity_workpool");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "purity");
  EXPECT_EQ(findings[0].file, "src/core/workpool.h");
  EXPECT_NE(findings[0].message.find("gc/transport.h"), std::string::npos);
}

TEST(LintFixtures, PuritySymbolFires) {
  const auto findings = lint_fixture("purity_symbol");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "purity");
  EXPECT_NE(findings[0].message.find("`CtrRng`"), std::string::npos);
}

TEST(LintFixtures, UnauditedSecretSendFires) {
  const auto findings = lint_fixture("transport_leak");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "transport");
  // The call site is resolved to its qualified enclosing function.
  EXPECT_NE(findings[0].message.find("EvaluatorSession::run"), std::string::npos);
}

TEST(LintFixtures, BannedIdentifierFires) {
  const auto findings = lint_fixture("banned");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "banned");
  EXPECT_NE(findings[0].message.find("`rand`"), std::string::npos);
}

TEST(LintFixtures, CommentsAndStringsAreNotReferences) {
  // The real evaluator header mentions GarblerSession in a comment; the
  // tokenizer must strip it (this is why the real tree below lints clean).
  const lint::Rules rules = lint::load_rules(kRoot + "/tools/lint_rules.toml");
  const auto findings = lint::run_lint(kRoot, rules, {"src/core/evaluator.h"});
  for (const auto& f : findings) EXPECT_NE(f.rule, "role") << lint::format_finding(f);
}

TEST(LintRules, StaleAllowEntryIsAConfigFinding) {
  lint::Rules rules = lint::load_rules(kFixtures + "/common_rules.toml");
  rules.transport_allow.push_back("src/core/plan.cpp:fix::nonexistent");
  const std::string root = kFixtures + "/clean";
  const auto findings = lint::run_lint(root, rules, lint::collect_sources(root, rules));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "config");
  EXPECT_NE(findings[0].message.find("stale"), std::string::npos);
}

TEST(LintRules, MalformedRulesThrow) {
  EXPECT_THROW((void)lint::parse_rules("[scan\ndirs = [\"src\"]"), std::runtime_error);
  EXPECT_THROW((void)lint::parse_rules("[scan]\ndirs = [unquoted]"), std::runtime_error);
  EXPECT_THROW((void)lint::parse_rules("[scan]\ndirs = [\"src\""), std::runtime_error);
  EXPECT_THROW((void)lint::parse_rules("# no scan dirs at all"), std::runtime_error);
}

TEST(LintRules, ParsesMultiLineArraysAndComments) {
  const lint::Rules r = lint::parse_rules(
      "[scan]\n"
      "dirs = [\n"
      "  \"src\",  # trailing comment\n"
      "  \"tools\",\n"
      "]\n"
      "[banned]\n"
      "symbols = [\"rand\"]\n"
      "scope_dirs = [\"src\"]\n");
  EXPECT_EQ(r.scan_dirs, (std::vector<std::string>{"src", "tools"}));
  EXPECT_EQ(r.banned_symbols, (std::vector<std::string>{"rand"}));
}

// ---------------------------------------------------------------------------
// The gate: the real tree is clean under the committed rules. A failure here
// names the exact file/line/rule — fix the code or (for a consciously
// widened surface) amend tools/lint_rules.toml in the same reviewed diff.
// ---------------------------------------------------------------------------
TEST(LintRealTree, CleanUnderCommittedRules) {
  const lint::Rules rules = lint::load_rules(kRoot + "/tools/lint_rules.toml");
  const auto files = lint::collect_sources(kRoot, rules);
  // Sanity: the sweep actually sees the tree (catches a bad SOURCE_ROOT).
  ASSERT_GT(files.size(), 50u);
  ASSERT_NE(std::find(files.begin(), files.end(), "src/core/plan.cpp"), files.end());
  const auto findings = lint::run_lint(kRoot, rules, files);
  std::string all;
  for (const auto& f : findings) all += "  " + lint::format_finding(f) + "\n";
  EXPECT_TRUE(findings.empty()) << "lint findings:\n" << all;
}

TEST(LintRealTree, CompileCommandsCoverage) {
  // When the build exported a compilation database, every compiled TU must
  // be inside the lint sweep (a TU the linter cannot see is a hole).
  const std::string db = std::string(ARM2GC_BINARY_DIR) + "/compile_commands.json";
  std::ifstream probe(db);
  if (!probe) GTEST_SKIP() << "no compile_commands.json in build dir";
  const lint::Rules rules = lint::load_rules(kRoot + "/tools/lint_rules.toml");
  const auto swept = lint::collect_sources(kRoot, rules);
  for (const std::string& tu : lint::tus_from_compile_commands(db, kRoot, rules)) {
    EXPECT_NE(std::find(swept.begin(), swept.end(), tu), swept.end())
        << tu << " is compiled but not linted";
  }
}
