// Benchmark functions compiled to ARM assembly (the workloads of paper
// Tables 2-5). Each generator returns the source, the assembled binary and a
// memory configuration sized for the instance.
//
// These are hand-scheduled the way arm-gcc -Os compiles the corresponding C:
// conditional instructions instead of data-dependent branches (paper §4.2),
// public loop bounds, and mask/carry idioms (SBC, conditional stores) for
// data-dependent selection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arm/assembler.h"
#include "arm/isa.h"

namespace arm2gc::programs {

struct Program {
  std::string name;
  std::string source;
  std::vector<std::uint32_t> words;  ///< assembled binary
  arm::MemoryConfig cfg;
};

/// out[0..n-1] = a + b over n-word little-endian integers (ADDS/ADCS chain).
Program sum(std::size_t nwords);

/// out[0] = (a < b) over n-word unsigned little-endian integers.
Program compare(std::size_t nwords);

/// out[0] = Hamming distance of two n-word bit vectors (SWAR popcount with
/// public masks; SkipGate prunes the masked adder positions).
Program hamming(std::size_t nwords);

/// out[0] = a[0] * b[0] (lower 32 bits).
Program mult32();

/// out = A x B for n x n 32-bit matrices (A from Alice, B from Bob).
Program matmult(std::size_t n);

/// Sorts n XOR-shared 32-bit values (value[i] = alice[i] ^ bob[i]) with
/// bubble sort; conditional stores do the compare-and-swap.
Program bubble_sort(std::size_t n);

/// Same interface, bottom-up merge sort: data-dependent (secret) read
/// pointers exercise oblivious memory scans.
Program merge_sort(std::size_t n);

/// Single-source shortest paths on a complete 8-node digraph (64 XOR-shared
/// edge weights, row-major adj[u][v]); out[0..7] = dist from node 0.
Program dijkstra8();

/// 32-iteration circular-rotation CORDIC on 2.30 fixed point:
/// inputs (x, y, z=angle) XOR-shared in words 0..2; out = rotated (x, y).
Program cordic32();

/// Reference fixed-point CORDIC (identical integer ops) for validation.
void cordic_reference(std::int32_t& x, std::int32_t& y, std::int32_t z);

}  // namespace arm2gc::programs
