// Plan determinism: SkipGate's bookkeeping is a deterministic public
// computation, so (a) two independent planners — one per party — must
// produce byte-identical CyclePlans from public data alone, and (b) a plan
// served from the cycle cache must be byte-identical to a freshly classified
// one. Both properties are exercised over randomized sequential netlists and
// through the full driver.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "arm/arm2gc.h"
#include "arm/assembler.h"
#include "builder/circuit_builder.h"
#include "builder/stdlib.h"
#include "core/plan.h"
#include "core/skipgate.h"
#include "crypto/rng.h"
#include "programs/programs.h"
#include "test_util.h"

namespace {

using namespace arm2gc;
using core::CyclePlan;
using core::Mode;
using core::Planner;
using core::PlannerOptions;
using a2gtest::to_bits;

void expect_plans_equal(const CyclePlan& x, const CyclePlan& y) {
  ASSERT_EQ(x.num_gates, y.num_gates);
  ASSERT_EQ(x.num_wires, y.num_wires);
  ASSERT_EQ(x.num_slices, y.num_slices);
  EXPECT_EQ(x.emitted, y.emitted);
  EXPECT_EQ(x.is_final, y.is_final);
  EXPECT_EQ(x.sample, y.sample);
  EXPECT_EQ(0, std::memcmp(x.wire_bits, y.wire_bits, x.num_wires));
  for (std::size_t si = 0; si < x.num_slices; ++si) {
    const core::PlanSlice& a = x.slices[si];
    const core::PlanSlice& b = y.slices[si];
    ASSERT_EQ(a.first_gate, b.first_gate);
    ASSERT_EQ(a.count, b.count);
    EXPECT_EQ(0, std::memcmp(a.act, b.act, a.count));
    EXPECT_EQ(0, std::memcmp(a.pass_src, b.pass_src, a.count * sizeof(netlist::WireId)));
    EXPECT_EQ(0, std::memcmp(a.emit, b.emit, a.count));
    EXPECT_EQ(0, std::memcmp(a.live, b.live, a.count));
    // The work list is the iteration set the sessions actually execute;
    // diverging lists would desynchronize the transport stream even with
    // identical emit/live bytes.
    ASSERT_EQ(a.work_count, b.work_count);
    if (a.work_count > 0) {
      ASSERT_NE(a.work, nullptr);
      ASSERT_NE(b.work, nullptr);
      EXPECT_EQ(0, std::memcmp(a.work, b.work, a.work_count * sizeof(std::uint32_t)));
    }
  }
}

/// Random sequential netlist: mixed-owner inputs, randomly initialized
/// flip-flops with random feedback, random 2-input gates and outputs.
/// `streamed_pub` adds that many per-cycle public inputs (bit indexes
/// 0..streamed_pub-1 of the pub stream) so entry states vary cycle to cycle.
netlist::Netlist random_seq_netlist(crypto::CtrRng& rng, std::uint32_t streamed_pub = 0) {
  netlist::Netlist nl;
  constexpr std::uint32_t kInPerParty = 3;
  for (std::uint32_t i = 0; i < kInPerParty; ++i) {
    nl.inputs.push_back(netlist::Input{netlist::Owner::Alice, false, i, ""});
    nl.inputs.push_back(netlist::Input{netlist::Owner::Bob, false, i, ""});
    nl.inputs.push_back(netlist::Input{netlist::Owner::Public, false, i, ""});
  }
  for (std::uint32_t i = 0; i < streamed_pub; ++i) {
    nl.inputs.push_back(netlist::Input{netlist::Owner::Public, true, i, ""});
  }
  constexpr std::uint32_t kDffs = 4;
  for (std::uint32_t i = 0; i < kDffs; ++i) {
    netlist::Dff d;
    switch (rng.next_below(4)) {
      case 0: d.init = netlist::Dff::Init::Zero; break;
      case 1: d.init = netlist::Dff::Init::One; break;
      case 2:
        d.init = netlist::Dff::Init::AliceBit;
        d.init_index = i;
        break;
      default:
        d.init = netlist::Dff::Init::BobBit;
        d.init_index = i;
        break;
    }
    nl.dffs.push_back(d);
  }
  const int num_gates = 30 + static_cast<int>(rng.next_below(30));
  for (int g = 0; g < num_gates; ++g) {
    const auto limit = static_cast<std::uint32_t>(2 + nl.inputs.size() + nl.dffs.size() +
                                                  static_cast<std::size_t>(g));
    nl.gates.push_back(netlist::Gate{static_cast<netlist::WireId>(rng.next_below(limit)),
                                     static_cast<netlist::WireId>(rng.next_below(limit)),
                                     static_cast<netlist::TruthTable>(rng.next_below(16))});
  }
  const auto nw = static_cast<std::uint32_t>(nl.num_wires());
  for (auto& d : nl.dffs) {
    d.d = static_cast<netlist::WireId>(rng.next_below(nw));
    d.d_invert = rng.next_bool();
  }
  for (int o = 0; o < 6; ++o) {
    nl.outputs.push_back(netlist::OutputPort{static_cast<netlist::WireId>(rng.next_below(nw)),
                                             rng.next_bool(), ""});
  }
  nl.outputs_every_cycle = rng.next_bool();
  return nl;
}

class RandomPlans : public ::testing::TestWithParam<int> {};

TEST_P(RandomPlans, PartiesAndCacheAgree) {
  crypto::CtrRng rng(crypto::block_from_u64(static_cast<std::uint64_t>(GetParam()) * 104729 + 7));
  const netlist::Netlist nl = random_seq_netlist(rng);
  const netlist::BitVec pub = to_bits(rng.next_u64(), 4);

  for (const Mode mode : {Mode::SkipGate, Mode::Conventional}) {
    PlannerOptions cached;
    cached.mode = mode;
    PlannerOptions fresh = cached;
    fresh.cache = false;

    // "Garbler-side" and "evaluator-side" planners (independent instances fed
    // identical public data) plus an uncached reference.
    Planner pg(nl, cached);
    Planner pe(nl, cached);
    Planner pf(nl, fresh);
    pg.reset(pub);
    pe.reset(pub);
    pf.reset(pub);

    constexpr std::uint64_t kCycles = 12;
    for (std::uint64_t cycle = 0; cycle < kCycles; ++cycle) {
      pg.begin_cycle({});
      pe.begin_cycle({});
      pf.begin_cycle({});
      pg.forward();
      pe.forward();
      pf.forward();
      const bool is_final = cycle + 1 == kCycles;
      const CyclePlan a = pg.finish(is_final);
      const CyclePlan b = pe.finish(is_final);
      const CyclePlan c = pf.finish(is_final);
      expect_plans_equal(a, b);
      expect_plans_equal(a, c);
      if (!is_final) {
        pg.latch(a);
        pe.latch(b);
        pf.latch(c);
      }
    }
    EXPECT_EQ(pg.cache_hits() + pg.cache_misses(), kCycles);
    EXPECT_EQ(pg.cache_hits(), pe.cache_hits());
    EXPECT_EQ(pf.cache_hits(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlans, ::testing::Range(0, 25));

TEST(PlanCache, CounterStatesHitAfterSecondLap) {
  // 2-bit public counter: 4 distinct entry states, revisited cyclically.
  // The transient cache admits a state on its second sighting, so lap one
  // marks, lap two classifies into the cache, lap three onwards hits.
  builder::CircuitBuilder cb;
  const auto cnt = cb.make_dff_bus(2);
  cb.set_dff_d_bus(cnt, builder::inc(cb, cb.dff_out_bus(cnt)));
  cb.output_bus(cb.dff_out_bus(cnt), "q");
  cb.set_outputs_every_cycle(true);
  const netlist::Netlist nl = cb.take();

  Planner planner(nl, PlannerOptions{});
  planner.reset({});
  for (int cycle = 0; cycle < 10; ++cycle) {
    planner.begin_cycle({});
    planner.forward();
    const CyclePlan plan = planner.finish(/*is_final=*/cycle == 9);
    if (cycle != 9) planner.latch(plan);
  }
  EXPECT_EQ(planner.cache_misses(), 8u);
  EXPECT_EQ(planner.cache_hits(), 2u);
}

TEST(PlanCache, DriverResultsIdenticalWithAndWithoutCache) {
  crypto::CtrRng rng(crypto::block_from_u64(424242));
  for (int seed = 0; seed < 6; ++seed) {
    const netlist::Netlist nl = random_seq_netlist(rng);
    const netlist::BitVec a = to_bits(rng.next_u64(), 4);
    const netlist::BitVec b = to_bits(rng.next_u64(), 4);
    const netlist::BitVec p = to_bits(rng.next_u64(), 4);
    for (const Mode mode : {Mode::SkipGate, Mode::Conventional}) {
      core::RunOptions on;
      on.mode = mode;
      on.fixed_cycles = 9;
      core::RunOptions off = on;
      off.exec.plan_cache = false;

      const core::RunResult r_on = core::SkipGateDriver(nl, on).run(a, b, p);
      const core::RunResult r_off = core::SkipGateDriver(nl, off).run(a, b, p);
      EXPECT_EQ(r_on.sampled_outputs, r_off.sampled_outputs);
      EXPECT_EQ(r_on.final_outputs, r_off.final_outputs);
      EXPECT_EQ(r_on.final_cycle, r_off.final_cycle);
      EXPECT_EQ(r_on.stats.garbled_non_xor, r_off.stats.garbled_non_xor);
      EXPECT_EQ(r_on.stats.comm.total(), r_off.stats.comm.total());
      EXPECT_EQ(r_off.stats.plan_cache_hits, 0u);
    }
  }
}

TEST(PlanCache, SerialAdderHitsEveryRepeatedCycle) {
  builder::CircuitBuilder cb;
  const auto carry = cb.make_dff(netlist::Dff::Init::Zero);
  const builder::Wire a = cb.input(netlist::Owner::Alice, 0, /*streamed=*/true);
  const builder::Wire b = cb.input(netlist::Owner::Bob, 0, /*streamed=*/true);
  const auto fa = builder::full_adder(cb, a, b, cb.dff_out(carry));
  cb.set_dff_d(carry, fa.carry);
  cb.output(fa.sum, "sum");
  cb.set_outputs_every_cycle(true);
  const netlist::Netlist nl = cb.take();

  core::StreamProvider streams;
  streams.alice = [](std::uint64_t c) { return netlist::BitVec{(c & 1) != 0}; };
  streams.bob = [](std::uint64_t c) { return netlist::BitVec{(c & 2) != 0}; };
  core::RunOptions opts;
  opts.fixed_cycles = 32;
  const core::RunResult r = core::SkipGateDriver(nl, opts).run({}, {}, {}, &streams);
  // Cycle 0 enters with a public zero carry; every later cycle enters with a
  // fresh secret carry — the same equivalence-class signature. That state is
  // marked on cycle 1, admitted on cycle 2, and served from the cache for
  // the remaining 29 cycles (the final cycle's distinct backward variant
  // shares the cached forward pass).
  EXPECT_EQ(r.stats.plan_cache_misses, 3u);
  EXPECT_EQ(r.stats.plan_cache_hits, 29u);
  EXPECT_EQ(r.stats.garbled_non_xor, 31u);  // unchanged by caching
}

TEST(PlanCache, SharedCacheWarmAcrossRuns) {
  // Cross-run reuse: the signature trajectory depends only on the netlist
  // and public inputs, so a second run with different *secret* inputs over a
  // shared cache hits on every cycle — and still computes correct results.
  crypto::CtrRng rng(crypto::block_from_u64(99991));
  const netlist::Netlist nl = random_seq_netlist(rng);
  const netlist::BitVec p = to_bits(rng.next_u64(), 4);
  // Role-scoped warm state (first-sight cache admission: built for reuse).
  core::WarmState warm(core::Role::Garbler);

  core::RunOptions opts;
  opts.fixed_cycles = 8;
  opts.exec.garbler_warm = &warm;

  netlist::BitVec first_outputs;
  for (int run = 0; run < 3; ++run) {
    const netlist::BitVec a = to_bits(rng.next_u64(), 4);
    const netlist::BitVec b = to_bits(rng.next_u64(), 4);
    const core::RunResult r = core::SkipGateDriver(nl, opts).run(a, b, p);

    core::RunOptions fresh = opts;
    fresh.exec.garbler_warm = nullptr;
    fresh.exec.plan_cache = false;
    const core::RunResult expect = core::SkipGateDriver(nl, fresh).run(a, b, p);
    EXPECT_EQ(r.sampled_outputs, expect.sampled_outputs);
    EXPECT_EQ(r.stats.garbled_non_xor, expect.stats.garbled_non_xor);
    if (run > 0) {
      EXPECT_EQ(r.stats.plan_cache_misses, 0u);
      EXPECT_EQ(r.stats.plan_cache_hits, 8u);
    }
  }
  EXPECT_GT(warm.plan_cache().entries(), 0u);
}

TEST(PlanCache, ArmSessionWarmsAcrossExecutions) {
  // The serving scenario end to end: one garbled ARM machine, one session,
  // repeated executions on fresh private inputs. Every run after the first
  // is fully served from the warm per-party caches, and results stay exact.
  const auto prog = arm::assemble(
      "ldr r4, [r0]\n"
      "ldr r5, [r1]\n"
      "add r4, r4, r5\n"
      "str r4, [r2]\n"
      "swi 0\n");
  arm::MemoryConfig cfg;
  cfg.imem_words = 16;
  cfg.alice_words = cfg.bob_words = cfg.out_words = 1;
  cfg.ram_words = 16;
  const arm::Arm2Gc machine(cfg, prog);

  arm::Arm2Gc::Session session(machine);
  for (std::uint32_t i = 0; i < 3; ++i) {
    const arm::Arm2GcResult r =
        session.run(std::vector<std::uint32_t>{100 + i}, std::vector<std::uint32_t>{7 * i});
    EXPECT_EQ(r.outputs[0], 100 + i + 7 * i);
    if (i > 0) {
      EXPECT_EQ(r.stats.plan_cache_misses, 0u);
      EXPECT_EQ(r.stats.plan_cache_hits, r.cycles);
    }
  }

  core::ExecOptions exec;
  exec.transport = core::TransportKind::ThreadedPipe;
  arm::Arm2Gc::Session piped(machine, exec);
  for (std::uint32_t i = 0; i < 2; ++i) {
    const arm::Arm2GcResult r =
        piped.run(std::vector<std::uint32_t>{5 + i}, std::vector<std::uint32_t>{9});
    EXPECT_EQ(r.outputs[0], 14 + i);
  }
}

TEST(PlanCache, WarmSessionCorrectUnderAdversarialEvictionBudgets) {
  // Coverage gap from PR 3: eviction *inside* a warm Arm2Gc::Session. A
  // 1-byte budget clamps both stores to their capacity floors (4 plans /
  // 8 cones), far below what one ARM run classifies, so every run churns
  // the LRU and later runs re-enter states whose entries were evicted —
  // and whose cones were re-admitted under fresh slice ids. Results must
  // stay exact across >= 3 runs (stale-slice adoption after eviction would
  // corrupt outputs or the garbled count/digest), hit ratios must stay
  // sane, and the stores must stay at their bounds.
  const auto prog = arm::assemble(
      "ldr r4, [r0]\n"
      "ldr r5, [r1]\n"
      "add r4, r4, r5\n"
      "str r4, [r2]\n"
      "swi 0\n");
  arm::MemoryConfig cfg;
  cfg.imem_words = 16;
  cfg.alice_words = cfg.bob_words = cfg.out_words = 1;
  cfg.ram_words = 16;
  const arm::Arm2Gc machine(cfg, prog);

  // Full-budget reference for the protocol-shape invariants.
  const arm::Arm2GcResult ref =
      machine.run(std::vector<std::uint32_t>{100}, std::vector<std::uint32_t>{0});

  core::WarmState::Options tiny;
  tiny.plan_cache_budget_bytes = 1;  // capacity floor: 4 entries
  tiny.cone_memo_budget_bytes = 1;   // capacity floor: 8 entries
  core::WarmState gwarm(core::Role::Garbler, tiny);
  core::WarmState ewarm(core::Role::Evaluator, tiny);
  core::ExecOptions exec;
  exec.garbler_warm = &gwarm;
  exec.evaluator_warm = &ewarm;
  arm::Arm2Gc::Session session(machine, exec);

  std::vector<double> hit_ratios;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const arm::Arm2GcResult r =
        session.run(std::vector<std::uint32_t>{100 + i}, std::vector<std::uint32_t>{7 * i});
    EXPECT_EQ(r.outputs[0], 100 + i + 7 * i) << "run " << i;
    EXPECT_EQ(r.cycles, ref.cycles) << "run " << i;
    EXPECT_EQ(r.stats.garbled_non_xor, ref.stats.garbled_non_xor) << "run " << i;
    EXPECT_EQ(r.stats.comm.total(), ref.stats.comm.total()) << "run " << i;
    // Sane ratios: bounded by [0,1), since the run's distinct states exceed
    // the 4-entry cache — a 100% hit rate would indicate aliasing.
    const double hr = r.stats.plan_cache_hit_ratio();
    EXPECT_GE(hr, 0.0);
    EXPECT_LT(hr, 1.0) << "run " << i;
    EXPECT_LE(r.stats.cone_hit_ratio(), 1.0);
    hit_ratios.push_back(hr);
    EXPECT_LE(gwarm.plan_cache().entries(), gwarm.plan_cache().capacity());
    EXPECT_LE(gwarm.cone_memo().entries(), gwarm.cone_memo().capacity());
  }
  // Monotone-sane trajectory: warm runs never do worse than the cold first
  // run, and the deterministic churn reaches a steady state (the repeating
  // trajectory leaves the same LRU composition after every run).
  for (std::size_t i = 1; i < hit_ratios.size(); ++i) {
    EXPECT_GE(hit_ratios[i], hit_ratios[0]) << "run " << i;
  }
  EXPECT_DOUBLE_EQ(hit_ratios[2], hit_ratios[1]);
  EXPECT_DOUBLE_EQ(hit_ratios[3], hit_ratios[2]);
  EXPECT_EQ(gwarm.plan_cache().capacity(), 4u);
  EXPECT_EQ(gwarm.cone_memo().capacity(), 8u);
  EXPECT_GT(gwarm.plan_cache().evictions(), 0u);
  EXPECT_GT(gwarm.cone_memo().evictions(), 0u);
}

TEST(PlanCache, XorRelationAmongRootsDoesNotAliasStates) {
  // Regression: two entry states can have identical public values, flips and
  // fingerprint *equality classes* while differing in XOR-linear structure —
  // d3 holding exactly fp(d1)^fp(d2) versus an independent secret. A cache
  // keyed on equality classes alone replays the relation-state plan (which
  // collapses AND(d1^d2, d3) as category iii) in the independent state,
  // silently corrupting results. The signature must encode the XOR relation.
  //
  // d1, d2 hold party secrets; d3.d = MUX(pub_sel, d1^d2, fresh Bob stream).
  // The output AND(d1^d2, d3) collapses only in the relation state.
  builder::CircuitBuilder cb;
  const auto d1 = cb.make_dff(netlist::Dff::Init::AliceBit, 0);
  const auto d2 = cb.make_dff(netlist::Dff::Init::BobBit, 0);
  const auto d3 = cb.make_dff(netlist::Dff::Init::BobBit, 1);
  const builder::Wire sel = cb.input(netlist::Owner::Public, 0, /*streamed=*/true);
  const builder::Wire fresh = cb.input(netlist::Owner::Bob, 0, /*streamed=*/true);
  const builder::Wire x = cb.xor_(cb.dff_out(d1), cb.dff_out(d2));
  cb.set_dff_d(d1, cb.dff_out(d1));
  cb.set_dff_d(d2, cb.dff_out(d2));
  cb.set_dff_d(d3, cb.mux(sel, x, fresh));
  cb.output(cb.and_(x, cb.dff_out(d3)), "y");
  cb.set_outputs_every_cycle(true);
  const netlist::WireId xw = x.id;
  const netlist::WireId d3w = cb.dff_out(d3).id;
  netlist::Netlist nl = cb.take();
  // Also cover the affine ignore-one-input case: a raw tt="b" gate whose
  // category-iii collapse (PassA when fp(x)==fp(d3)) silently passes the
  // wrong wire after drift unless the hit verifier re-checks it. Appended at
  // netlist level — the builder would fold the trivial table away.
  nl.gates.push_back(netlist::Gate{xw, d3w, netlist::kTtB});
  nl.outputs.push_back(netlist::OutputPort{
      nl.gate_wire(nl.gates.size() - 1), false, "d3_through_b"});

  // sel = 1,1,1,0,1: cycles 2 and 3 enter the relation state (sel=1) — the
  // second sighting admits its plan — and cycle 4 latches an independent d3
  // yet re-enters with sel=1 on cycle... (the hazard cycle is the one whose
  // entry is (independent d3, same publics)). Walk several sel/input
  // patterns and compare against the uncached driver on every cycle.
  const std::vector<bool> sel_stream = {true, true, true, false, true, true, false, true};
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    crypto::CtrRng rng(crypto::block_from_u64(seed * 7 + 3));
    const netlist::BitVec alice = {rng.next_bool()};
    const netlist::BitVec bob = {rng.next_bool(), rng.next_bool()};
    core::StreamProvider streams;
    streams.pub = [&](std::uint64_t c) { return netlist::BitVec{sel_stream[c]}; };
    streams.bob = [&, seed](std::uint64_t c) {
      return netlist::BitVec{((seed >> (c % 3)) & 1) != 0};
    };
    core::RunOptions cached;
    cached.fixed_cycles = sel_stream.size();
    core::RunOptions uncached = cached;
    uncached.exec.plan_cache = false;
    const core::RunResult rc =
        core::SkipGateDriver(nl, cached).run(alice, bob, {}, &streams);
    const core::RunResult ru =
        core::SkipGateDriver(nl, uncached).run(alice, bob, {}, &streams);
    EXPECT_EQ(rc.sampled_outputs, ru.sampled_outputs) << "seed " << seed;
    EXPECT_EQ(rc.stats.garbled_non_xor, ru.stats.garbled_non_xor) << "seed " << seed;
  }
}

TEST(PlanCache, RejectsReuseAcrossNetlists) {
  crypto::CtrRng rng(crypto::block_from_u64(31337));
  const netlist::Netlist nl1 = random_seq_netlist(rng);
  netlist::Netlist nl2 = nl1;
  nl2.gates.push_back(netlist::Gate{netlist::kConst0, netlist::kConst1, netlist::kTtAnd});
  core::PlanCache cache;
  PlannerOptions opts;
  opts.shared_cache = &cache;
  Planner p1(nl1, opts);
  EXPECT_THROW(Planner p2(nl2, opts), std::invalid_argument);
}

// --- cone-granular incremental planning ----------------------------------------

/// Builds a netlist whose entry state is controlled by a `width`-bit
/// streamed public selector mixed with party secrets, so each selector
/// value is a distinct entry state with a non-trivial plan.
netlist::Netlist selector_netlist(std::uint32_t width) {
  builder::CircuitBuilder cb;
  const builder::Wire a = cb.input(netlist::Owner::Alice, 0);
  const builder::Wire b = cb.input(netlist::Owner::Bob, 0);
  builder::Bus sel;
  for (std::uint32_t i = 0; i < width; ++i) {
    sel.push_back(cb.input(netlist::Owner::Public, i, /*streamed=*/true));
  }
  builder::Wire acc = cb.and_(a, b);
  for (const builder::Wire s : sel) acc = cb.and_(cb.xor_(acc, s), cb.or_(a, s));
  cb.output(acc, "y");
  cb.set_outputs_every_cycle(true);
  return cb.take();
}

TEST(PlanCache, LruEvictionBoundsEntries) {
  // A 1-byte budget clamps to the 4-entry capacity floor. Drive the 8
  // distinct selector states once each: the cache holds only the last 4
  // (evicting the first 4), so revisiting recent states hits and revisiting
  // the oldest one misses and re-evicts.
  const netlist::Netlist nl = selector_netlist(3);
  core::PlanCache cache(1);  // first-sight admission, capacity floor of 4
  PlannerOptions opts;
  opts.shared_cache = &cache;
  Planner planner(nl, opts);
  planner.reset({});

  const auto drive = [&](std::uint64_t v) {
    planner.begin_cycle(to_bits(v, 3));
    planner.forward();
    (void)planner.finish(/*is_final=*/false);
  };
  for (std::uint64_t v = 0; v < 8; ++v) drive(v);
  EXPECT_EQ(cache.capacity(), 4u);
  EXPECT_EQ(cache.entries(), 4u);
  EXPECT_EQ(cache.evictions(), 4u);
  EXPECT_EQ(planner.cache_hits(), 0u);

  for (const std::uint64_t v : {7u, 6u, 5u, 4u}) drive(v);  // the retained four
  EXPECT_EQ(planner.cache_hits(), 4u);
  drive(0);  // evicted on state 4's insertion
  EXPECT_EQ(planner.cache_hits(), 4u);
  EXPECT_EQ(cache.entries(), 4u);
  EXPECT_EQ(cache.evictions(), 5u);
}

TEST(ConeMemo, LruEvictionBoundsEntries) {
  // Same structure at cone granularity: a 1-byte budget clamps to the
  // 8-entry floor; the 16 distinct selector states keep only the last 8.
  const netlist::Netlist nl = selector_netlist(4);
  core::ConeMemo memo(1);  // capacity floor of 8
  PlannerOptions opts;
  opts.cache = false;  // exercise the memo on every cycle
  opts.shared_cone_memo = &memo;
  Planner planner(nl, opts);
  planner.reset({});

  const auto drive = [&](std::uint64_t v) {
    planner.begin_cycle(to_bits(v, 4));
    planner.forward();
    (void)planner.finish(/*is_final=*/false);
  };
  ASSERT_EQ(planner.layout().segments.size(), 1u);
  for (std::uint64_t v = 0; v < 16; ++v) drive(v);
  EXPECT_EQ(memo.capacity(), 8u);
  EXPECT_EQ(memo.entries(), 8u);
  EXPECT_EQ(memo.evictions(), 8u);
  EXPECT_EQ(planner.cone_hits(), 0u);
  EXPECT_EQ(planner.cone_misses(), 16u);

  for (std::uint64_t v = 15; v >= 8; --v) drive(v);  // the retained eight
  EXPECT_EQ(planner.cone_hits(), 8u);
  EXPECT_EQ(memo.evictions(), 8u);
  drive(0);  // evicted: reclassified and re-admitted, evicting the LRU
  EXPECT_EQ(planner.cone_hits(), 8u);
  EXPECT_EQ(planner.cone_misses(), 17u);
  EXPECT_EQ(memo.entries(), 8u);
  EXPECT_EQ(memo.evictions(), 9u);
}

TEST(ConeMemo, RejectsReuseAcrossNetlistsAndLayouts) {
  crypto::CtrRng rng(crypto::block_from_u64(27182));
  const netlist::Netlist nl1 = random_seq_netlist(rng);
  netlist::Netlist nl2 = nl1;
  nl2.gates.push_back(netlist::Gate{netlist::kConst0, netlist::kConst1, netlist::kTtAnd});
  core::ConeMemo memo;
  PlannerOptions opts;
  opts.shared_cone_memo = &memo;
  Planner p1(nl1, opts);
  EXPECT_THROW(Planner p2(nl2, opts), std::invalid_argument);
  // Same netlist, different segmentation: also a different plan contract.
  PlannerOptions finer = opts;
  finer.cone_target_gates = 4;
  EXPECT_THROW(Planner p3(nl1, finer), std::invalid_argument);
}

TEST(ConeMemo, WarmStateIsRoleScoped) {
  const netlist::Netlist nl = selector_netlist(3);
  core::WarmState gwarm(core::Role::Garbler);

  // One WarmState cannot serve both parties: the threaded driver would race
  // on it and the lock-step driver would alias the per-party caches.
  core::RunOptions shared;
  shared.fixed_cycles = 1;
  shared.exec.transport = core::TransportKind::ThreadedPipe;
  shared.exec.garbler_warm = &gwarm;
  shared.exec.evaluator_warm = &gwarm;
  EXPECT_THROW(core::SkipGateDriver(nl, shared).run({false}, {false}), std::invalid_argument);

  // A wrong-role WarmState is rejected by the endpoint on every transport.
  core::RunOptions swapped;
  swapped.fixed_cycles = 1;
  swapped.exec.evaluator_warm = &gwarm;  // garbler-role state, evaluator slot
  EXPECT_THROW(core::SkipGateDriver(nl, swapped).run({false}, {false}), std::invalid_argument);
  core::RunOptions piped = swapped;
  piped.exec.transport = core::TransportKind::ThreadedPipe;
  EXPECT_THROW(core::SkipGateDriver(nl, piped).run({false}, {false}), std::invalid_argument);
}

/// Differential fuzz (both party sides): randomized sequential netlists
/// driven through randomized public-input sequences; the incremental
/// (cone-stitched, segmented) plan must be byte-equal to a from-scratch
/// plan on every cycle. A2G_PLAN_FUZZ_SEEDS scales the sweep (CI sanitizer
/// job runs a deeper pass).
TEST(ConeDifferentialFuzz, StitchedPlansByteEqualFromScratchEveryCycle) {
  int seeds = 12;
  if (const char* env = std::getenv("A2G_PLAN_FUZZ_SEEDS")) seeds = std::atoi(env);
  constexpr std::uint64_t kCycles = 20;
  constexpr std::uint32_t kStreamedPub = 3;

  for (int seed = 0; seed < seeds; ++seed) {
    crypto::CtrRng rng(crypto::block_from_u64(static_cast<std::uint64_t>(seed) * 65537 + 11));
    const netlist::Netlist nl = random_seq_netlist(rng, kStreamedPub);
    const netlist::BitVec pub = to_bits(rng.next_u64(), 4);
    std::vector<netlist::BitVec> pub_streams;
    for (std::uint64_t c = 0; c < kCycles; ++c) {
      pub_streams.push_back(to_bits(rng.next_u64(), kStreamedPub));
    }

    for (const Mode mode : {Mode::SkipGate, Mode::Conventional}) {
      PlannerOptions inc;
      inc.mode = mode;
      inc.cone_target_gates = 4;  // force several segments on small netlists
      PlannerOptions fresh = inc;
      fresh.cache = false;
      fresh.cone_memo = false;

      // Garbler-side and evaluator-side incremental planners (independent
      // instances fed identical public data) plus a from-scratch reference.
      Planner pg(nl, inc);
      Planner pe(nl, inc);
      Planner pf(nl, fresh);
      pg.reset(pub);
      pe.reset(pub);
      pf.reset(pub);

      for (std::uint64_t cycle = 0; cycle < kCycles; ++cycle) {
        const netlist::BitVec& sp = pub_streams[cycle];
        pg.begin_cycle(sp);
        pe.begin_cycle(sp);
        pf.begin_cycle(sp);
        pg.forward();
        pe.forward();
        pf.forward();
        const bool is_final = cycle + 1 == kCycles;
        const CyclePlan a = pg.finish(is_final);
        const CyclePlan b = pe.finish(is_final);
        const CyclePlan c = pf.finish(is_final);
        expect_plans_equal(a, b);
        expect_plans_equal(a, c);
        if (!is_final) {
          pg.latch(a);
          pe.latch(b);
          pf.latch(c);
        }
      }
      ASSERT_GT(pg.layout().segments.size(), 1u) << "seed " << seed;
      EXPECT_GT(pg.cone_hits() + pg.cone_misses(), 0u) << "seed " << seed;
      EXPECT_EQ(pg.cone_hits(), pe.cone_hits()) << "seed " << seed;
    }
  }
}

TEST(ConeMemo, DriverResultsIdenticalWithConeMemoOnAndOff) {
  // Acceptance pin: the full protocol produces bit-identical outputs,
  // garbled_non_xor counts and communication bytes with cone memoization
  // enabled vs disabled, on randomized sequential circuits with per-cycle
  // public inputs (so whole-netlist cache misses occur and cones matter).
  crypto::CtrRng rng(crypto::block_from_u64(515253));
  for (int seed = 0; seed < 4; ++seed) {
    const netlist::Netlist nl = random_seq_netlist(rng, 2);
    const netlist::BitVec a = to_bits(rng.next_u64(), 4);
    const netlist::BitVec b = to_bits(rng.next_u64(), 4);
    const netlist::BitVec p = to_bits(rng.next_u64(), 4);
    const std::uint64_t pub_word = rng.next_u64();
    core::StreamProvider streams;
    streams.pub = [&](std::uint64_t c) { return to_bits(pub_word >> (2 * c), 2); };

    for (const Mode mode : {Mode::SkipGate, Mode::Conventional}) {
      core::RunOptions on;
      on.mode = mode;
      on.fixed_cycles = 12;
      on.exec.cone_target_gates = 4;
      core::RunOptions off = on;
      off.exec.cone_memo = false;

      const core::RunResult r_on = core::SkipGateDriver(nl, on).run(a, b, p, &streams);
      const core::RunResult r_off = core::SkipGateDriver(nl, off).run(a, b, p, &streams);
      EXPECT_EQ(r_on.sampled_outputs, r_off.sampled_outputs);
      EXPECT_EQ(r_on.final_outputs, r_off.final_outputs);
      EXPECT_EQ(r_on.stats.garbled_non_xor, r_off.stats.garbled_non_xor);
      EXPECT_EQ(r_on.stats.skipped_non_xor, r_off.stats.skipped_non_xor);
      EXPECT_EQ(r_on.stats.comm.total(), r_off.stats.comm.total());
      EXPECT_EQ(r_off.stats.cone_hits + r_off.stats.cone_misses, 0u);
    }
  }
}

TEST(ConeMemo, ArmConeHitsOnCyclesTheFlatCacheMissed) {
  // The headline scenario (an ARM loop workload): a cold run's cycles are
  // distinct whole-netlist entry states — loop iterations differ in the
  // public counter — so the flat PlanCache misses on every cycle, but most
  // of the 42k-gate core's cones recur across iterations and stitch from
  // the memo.
  const programs::Program prog = programs::hamming(2);
  const arm::Arm2Gc machine(prog.cfg, prog.words);
  const std::vector<std::uint32_t> a = {0xDEADBEEFu, 0x0F0F0F0Fu};
  const std::vector<std::uint32_t> b = {0x12345678u, 0xFF00FF00u};
  const arm::Arm2GcResult expect = machine.run_reference(a, b);

  core::ExecOptions cone_on;
  core::ExecOptions cone_off;
  cone_off.cone_memo = false;
  const arm::Arm2GcResult r_on =
      machine.run(a, b, 1u << 20, gc::Scheme::HalfGates, cone_on);
  const arm::Arm2GcResult r_off =
      machine.run(a, b, 1u << 20, gc::Scheme::HalfGates, cone_off);

  EXPECT_EQ(r_on.outputs, expect.outputs);
  EXPECT_EQ(r_on.outputs, r_off.outputs);
  EXPECT_EQ(r_on.cycles, r_off.cycles);
  EXPECT_EQ(r_on.stats.garbled_non_xor, r_off.stats.garbled_non_xor);
  EXPECT_EQ(r_on.stats.comm.total(), r_off.stats.comm.total());
  // The transient flat cache misses on every first-seen state (the loop
  // counter makes every cycle's whole-netlist state distinct)...
  EXPECT_GT(r_on.stats.plan_cache_misses, 0u);
  // ...and the cone memo converts most of each missed cycle's cones into
  // cone hits.
  EXPECT_GT(r_on.stats.cone_hits, 0u);
  EXPECT_GT(r_on.stats.cone_hit_ratio(), 0.4);  // measured 0.49 (deterministic)
  EXPECT_EQ(r_off.stats.cone_hits + r_off.stats.cone_misses, 0u);
}

}  // namespace
