#include <gtest/gtest.h>

#include <numeric>

#include "circuits/gf_tower.h"
#include "circuits/reference.h"
#include "circuits/tg_circuits.h"
#include "crypto/rng.h"
#include "netlist/simulator.h"
#include "test_util.h"

namespace {

using namespace arm2gc;
using namespace arm2gc::circuits;
using a2gtest::to_bits;
using core::Mode;
using netlist::BitVec;

// --- tower field / S-box ------------------------------------------------------

TEST(GfTower, IsomorphismAndInverse) {
  const GfTower t;
  // phi is a bijection fixing 0 and 1.
  EXPECT_EQ(t.to_tower(0), 0);
  EXPECT_EQ(t.to_tower(1), 1);
  EXPECT_EQ(t.from_tower(t.to_tower(0xAB)), 0xAB);
  // Inversion: x * x^-1 == 1 in the tower.
  for (int x = 1; x < 256; ++x) {
    const auto xt = static_cast<std::uint8_t>(x);
    EXPECT_EQ(t.mul(xt, t.inv(xt)), 1) << x;
  }
  EXPECT_EQ(t.inv(0), 0);
}

TEST(GfTower, SboxMatchesBruteForce) {
  const GfTower t;
  for (int x = 0; x < 256; ++x) {
    EXPECT_EQ(t.sbox(static_cast<std::uint8_t>(x)),
              aes_sbox_reference(static_cast<std::uint8_t>(x)))
        << x;
  }
  EXPECT_EQ(aes_sbox_reference(0x00), 0x63);
  EXPECT_EQ(aes_sbox_reference(0x53), 0xED);
}

TEST(GfTower, SboxCircuitExhaustive) {
  builder::CircuitBuilder cb;
  const builder::Bus x = cb.input_bus(netlist::Owner::Alice, 8, 0);
  cb.output_bus(build_sbox(cb, x), "s");
  const netlist::Netlist nl = cb.take();
  // 36 AND gates: 9 per GF(16) multiply/inverse block.
  EXPECT_EQ(nl.count_non_free(), 36u);
  netlist::Simulator sim(nl);
  for (int v = 0; v < 256; ++v) {
    sim.reset(to_bits(static_cast<std::uint64_t>(v), 8));
    sim.step();
    EXPECT_EQ(a2gtest::from_bits(sim.read_outputs(), 0, 8),
              aes_sbox_reference(static_cast<std::uint8_t>(v)))
        << v;
  }
}

// --- reference implementations -------------------------------------------------

TEST(Reference, KeccakRoundConstants) {
  const auto& rc = keccak_round_constants();
  EXPECT_EQ(rc[0], 0x0000000000000001ull);
  EXPECT_EQ(rc[1], 0x0000000000008082ull);
  EXPECT_EQ(rc[2], 0x800000000000808aull);
  EXPECT_EQ(rc[23], 0x8000000080008008ull);
}

TEST(Reference, Sha3_256KnownVectors) {
  // SHA3-256(""), FIPS-202 example.
  const auto empty = sha3_256({});
  const std::array<std::uint8_t, 8> expect_head = {0xa7, 0xff, 0xc6, 0xf8,
                                                   0xbf, 0x1e, 0xd7, 0x66};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(empty[static_cast<std::size_t>(i)], expect_head[static_cast<std::size_t>(i)]) << i;
  // SHA3-256("abc") = 3a985da74fe225b2...
  const auto abc = sha3_256({'a', 'b', 'c'});
  const std::array<std::uint8_t, 8> abc_head = {0x3a, 0x98, 0x5d, 0xa7, 0x4f, 0xe2, 0x25, 0xb2};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(abc[static_cast<std::size_t>(i)], abc_head[static_cast<std::size_t>(i)]) << i;
}

// --- TG benchmark circuits -----------------------------------------------------

TEST(TgCircuits, Sum32MatchesPaperCounts) {
  const std::uint32_t a = 0xDEADBEEF, b = 0x01234567;
  const TgInstance inst = tg_sum(32, to_bits(a, 32), to_bits(b, 32));
  const TgRun skip = run_instance(inst, Mode::SkipGate);
  const TgRun conv = run_instance(inst, Mode::Conventional);
  EXPECT_EQ(static_cast<std::uint32_t>(skip.results[0]), a + b);
  EXPECT_EQ(static_cast<std::uint32_t>(conv.results[0]), a + b);
  // Paper Table 1: Sum 32 = 32 w/o SkipGate, 31 w/ SkipGate.
  EXPECT_EQ(conv.stats.garbled_non_xor, 32u);
  EXPECT_EQ(skip.stats.garbled_non_xor, 31u);
}

TEST(TgCircuits, Compare16384NoImprovementShape) {
  // Scaled-down stand-in for Compare 16384 row structure: w/ == w/o.
  const TgInstance inst = tg_compare(64, to_bits(100, 64), to_bits(200, 64));
  const TgRun skip = run_instance(inst, Mode::SkipGate);
  const TgRun conv = run_instance(inst, Mode::Conventional);
  EXPECT_EQ(skip.results[0], 1u);
  EXPECT_EQ(skip.stats.garbled_non_xor, conv.stats.garbled_non_xor);
  EXPECT_EQ(skip.stats.garbled_non_xor, 64u);
}

TEST(TgCircuits, HammingMatchesReference) {
  crypto::CtrRng rng(crypto::block_from_u64(11));
  for (const std::size_t nbits : {32ul, 160ul}) {
    BitVec a(nbits), b(nbits);
    int expect = 0;
    for (std::size_t i = 0; i < nbits; ++i) {
      a[i] = rng.next_bool();
      b[i] = rng.next_bool();
      if (a[i] != b[i]) ++expect;
    }
    const TgInstance inst = tg_hamming(nbits, a, b);
    const TgRun skip = run_instance(inst, Mode::SkipGate);
    const TgRun conv = run_instance(inst, Mode::Conventional);
    EXPECT_EQ(skip.results[0], static_cast<std::uint64_t>(expect));
    EXPECT_EQ(conv.results[0], static_cast<std::uint64_t>(expect));
    // Counter width w: (w-1) ANDs per cycle, as in TinyGarble's numbers
    // (Hamming 32 -> 160, Hamming 160 -> 1120 w/o SkipGate).
    if (nbits == 32) {
      EXPECT_EQ(conv.stats.garbled_non_xor, 160u);
    }
    if (nbits == 160) {
      EXPECT_EQ(conv.stats.garbled_non_xor, 1120u);
    }
    EXPECT_LT(skip.stats.garbled_non_xor, conv.stats.garbled_non_xor);
  }
}

TEST(TgCircuits, HammingTreeMatches) {
  crypto::CtrRng rng(crypto::block_from_u64(12));
  const std::size_t nbits = 160;
  BitVec a(nbits), b(nbits);
  int expect = 0;
  for (std::size_t i = 0; i < nbits; ++i) {
    a[i] = rng.next_bool();
    b[i] = rng.next_bool();
    if (a[i] != b[i]) ++expect;
  }
  const TgInstance inst = tg_hamming_tree(nbits, a, b);
  const TgRun skip = run_instance(inst, Mode::SkipGate);
  EXPECT_EQ(skip.results[0], static_cast<std::uint64_t>(expect));
  // Tree counter: ~nbits ANDs total, far below the bit-serial variant.
  EXPECT_LT(skip.stats.garbled_non_xor, 170u);
}

TEST(TgCircuits, Mult32Matches) {
  const std::uint32_t a = 123456789, b = 987654321;
  const TgInstance inst = tg_mult32(a, b);
  const TgRun skip = run_instance(inst, Mode::SkipGate);
  const TgRun conv = run_instance(inst, Mode::Conventional);
  EXPECT_EQ(static_cast<std::uint32_t>(skip.results[0]), a * b);
  EXPECT_EQ(static_cast<std::uint32_t>(conv.results[0]), a * b);
  EXPECT_LT(skip.stats.garbled_non_xor, conv.stats.garbled_non_xor);
  // Shape of paper Table 1 (2,048 vs 2,016): ~64/cycle, first-cycle adder free.
  EXPECT_NEAR(static_cast<double>(conv.stats.garbled_non_xor), 2048.0, 64.0);
}

TEST(TgCircuits, MatMult3x3Matches) {
  const std::size_t n = 3;
  std::vector<std::uint32_t> a(n * n), b(n * n);
  std::iota(a.begin(), a.end(), 1);
  std::iota(b.begin(), b.end(), 100);
  const TgInstance inst = tg_matmult(n, a, b);
  const TgRun skip = run_instance(inst, Mode::SkipGate);
  ASSERT_EQ(skip.results.size(), n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::uint32_t expect = 0;
      for (std::size_t k = 0; k < n; ++k) expect += a[i * n + k] * b[k * n + j];
      EXPECT_EQ(static_cast<std::uint32_t>(skip.results[i * n + j]), expect) << i << "," << j;
    }
  }
}

TEST(TgCircuits, Sha3MatchesReference) {
  const std::vector<std::uint8_t> msg = {'a', 'r', 'm', '2', 'g', 'c'};
  const TgInstance inst = tg_sha3_256(msg);
  const TgRun skip = run_instance(inst, Mode::SkipGate);
  const auto expect = sha3_256(msg);
  ASSERT_EQ(skip.results.size(), 4u);
  for (int w = 0; w < 4; ++w) {
    std::uint64_t e = 0;
    for (int i = 0; i < 8; ++i) {
      e |= static_cast<std::uint64_t>(expect[static_cast<std::size_t>(8 * w + i)]) << (8 * i);
    }
    EXPECT_EQ(skip.results[static_cast<std::size_t>(w)], e) << w;
  }
  // Chi is 1600 ANDs/round for 24 rounds; SkipGate trims the final round's
  // gates outside the digest cone (paper reports 38,400 of 40,032).
  EXPECT_GE(skip.stats.garbled_non_xor, 23u * 1600u);
  EXPECT_LE(skip.stats.garbled_non_xor, 24u * 1600u);
}

TEST(TgCircuits, Aes128MatchesReference) {
  std::array<std::uint8_t, 16> pt{}, key{};
  for (int i = 0; i < 16; ++i) {
    pt[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0x11 * i);
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  }
  const TgInstance inst = tg_aes128(pt, key);
  const TgRun skip = run_instance(inst, Mode::SkipGate);
  const auto expect = aes128_encrypt(key, pt);
  for (int w = 0; w < 2; ++w) {
    std::uint64_t e = 0;
    for (int i = 0; i < 8; ++i) {
      e |= static_cast<std::uint64_t>(expect[static_cast<std::size_t>(8 * w + i)]) << (8 * i);
    }
    EXPECT_EQ(skip.results[static_cast<std::size_t>(w)], e) << w;
  }
  // 20 S-boxes x 36 AND x 10 rounds = 7,200 (paper: 6,400 with the 32-AND
  // Boyar-Peralta S-box); everything else is public-controlled and skipped.
  EXPECT_EQ(skip.stats.garbled_non_xor, 7200u);
  const TgRun conv = run_instance(inst, Mode::Conventional);
  EXPECT_GT(conv.stats.garbled_non_xor, skip.stats.garbled_non_xor);
}

TEST(TgCircuits, SkipGateNeverWorse) {
  const TgInstance insts[] = {
      tg_sum(16, to_bits(12345, 16), to_bits(54321, 16)),
      tg_compare(16, to_bits(7, 16), to_bits(9, 16)),
      tg_hamming(16, to_bits(0xF0F0, 16), to_bits(0x0F0F, 16)),
      tg_mult32(3, 5),
  };
  for (const TgInstance& inst : insts) {
    const TgRun skip = run_instance(inst, Mode::SkipGate);
    const TgRun conv = run_instance(inst, Mode::Conventional);
    EXPECT_LE(skip.stats.garbled_non_xor, conv.stats.garbled_non_xor) << inst.name;
    EXPECT_EQ(skip.results, conv.results) << inst.name;
  }
}

}  // namespace
