// Transport-layer tests: frame ordering and byte accounting, bounded-memory
// self-compaction of the in-memory FIFOs, the threaded bounded pipe
// (cross-thread integrity, backpressure bound, close() unblocking) and the
// TCP socket duplex (byte-stream reassembly under adversarially small
// chunks, peer-teardown semantics, accounting parity with the in-memory
// duplex).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "crypto/block.h"
#include "gc/transport.h"
#include "gc/transport_socket.h"

namespace {

using arm2gc::crypto::Block;
using arm2gc::crypto::block_from_u64;
using namespace arm2gc::gc;

TEST(InMemoryDuplex, FramesArriveInOrderAcrossDirections) {
  InMemoryDuplex duplex;
  const Block frame[3] = {block_from_u64(1), block_from_u64(2), block_from_u64(3)};
  duplex.garbler_end().send(frame, 3, Traffic::GarbledTable);
  duplex.evaluator_end().send(block_from_u64(9), Traffic::OutputDecode);

  Block got[2];
  duplex.evaluator_end().recv(got, 2);
  EXPECT_EQ(got[0], block_from_u64(1));
  EXPECT_EQ(got[1], block_from_u64(2));
  EXPECT_EQ(duplex.evaluator_end().recv(), block_from_u64(3));
  EXPECT_EQ(duplex.garbler_end().recv(), block_from_u64(9));
  EXPECT_EQ(duplex.stats().garbled_table_bytes, 48u);
  EXPECT_EQ(duplex.stats().output_bytes, 16u);
}

TEST(InMemoryDuplex, SelfCompactsOnLongRuns) {
  // A long alternating send/recv run must not accumulate delivered blocks:
  // the high-water mark tracks the undelivered backlog only.
  InMemoryDuplex duplex;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    const Block frame[4] = {block_from_u64(4 * i), block_from_u64(4 * i + 1),
                            block_from_u64(4 * i + 2), block_from_u64(4 * i + 3)};
    duplex.garbler_end().send(frame, 4, Traffic::GarbledTable);
    Block got[4];
    duplex.evaluator_end().recv(got, 4);
    EXPECT_EQ(got[3], block_from_u64(4 * i + 3));
  }
  EXPECT_EQ(duplex.stats().garbled_table_bytes, 100000u * 64);
  EXPECT_LE(duplex.high_water_blocks(), 4u);
}

TEST(InMemoryDuplex, UnderrunThrows) {
  InMemoryDuplex duplex;
  duplex.garbler_end().send(block_from_u64(1), Traffic::InputLabel);
  Block got[2];
  EXPECT_THROW(duplex.evaluator_end().recv(got, 2), std::runtime_error);
}

TEST(ThreadedPipeDuplex, TransfersAcrossThreadsWithBackpressure) {
  constexpr std::size_t kCapacity = 64;
  constexpr std::uint64_t kBlocks = 100000;
  ThreadedPipeDuplex duplex(kCapacity);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kBlocks; i += 5) {
      Block frame[5];
      for (std::uint64_t k = 0; k < 5; ++k) frame[k] = block_from_u64(i + k);
      duplex.garbler_end().send(frame, 5, Traffic::GarbledTable);
    }
  });
  for (std::uint64_t i = 0; i < kBlocks; ++i) {
    ASSERT_EQ(duplex.evaluator_end().recv(), block_from_u64(i));
  }
  producer.join();
  EXPECT_EQ(duplex.stats().garbled_table_bytes, kBlocks * 16);
  EXPECT_LE(duplex.high_water_blocks(), kCapacity);  // ring bounds memory
}

TEST(ThreadedPipeDuplex, BidirectionalEcho) {
  ThreadedPipeDuplex duplex(32);
  std::thread peer([&] {
    for (int i = 0; i < 1000; ++i) {
      const Block b = duplex.evaluator_end().recv();
      duplex.evaluator_end().send(b ^ block_from_u64(1), Traffic::OutputDecode);
    }
  });
  for (int i = 0; i < 1000; ++i) {
    duplex.garbler_end().send(block_from_u64(static_cast<std::uint64_t>(i) << 1),
                              Traffic::InputLabel);
    EXPECT_EQ(duplex.garbler_end().recv(),
              block_from_u64((static_cast<std::uint64_t>(i) << 1) | 1));
  }
  peer.join();
}

TEST(ThreadedPipeDuplex, StressOrderedWriterAgainstPooledReader) {
  // The parallel-session shape: one producer thread plays the garbler's
  // ordered writer (bursty per-cone sends, sizes varying per "slice"), while
  // the consumer pulls exact per-gate frames and hands them to short-lived
  // worker threads for checking — receive order on the transport stays the
  // single-threaded slice order even with workers racing around it. Run
  // under TSan in CI.
  constexpr std::size_t kSlices = 300;
  ThreadedPipeDuplex duplex(128);
  std::thread producer([&] {
    std::uint64_t next = 0;
    for (std::size_t s = 0; s < kSlices; ++s) {
      const std::size_t tables = s % 7 + 1;
      for (std::size_t t = 0; t < tables; ++t) {
        Block frame[3];
        for (std::uint64_t k = 0; k < 3; ++k) frame[k] = block_from_u64(next++);
        duplex.garbler_end().send(frame, 3, Traffic::GarbledTable);
      }
    }
  });
  std::uint64_t expect = 0;
  std::vector<std::thread> checkers;
  std::atomic<int> mismatches{0};
  for (std::size_t s = 0; s < kSlices; ++s) {
    const std::size_t tables = s % 7 + 1;
    std::vector<Block> staged(tables * 3);
    duplex.evaluator_end().recv(staged.data(), staged.size());
    const std::uint64_t base = expect;
    expect += tables * 3;
    checkers.emplace_back([&mismatches, staged = std::move(staged), base] {
      for (std::size_t i = 0; i < staged.size(); ++i) {
        if (staged[i] != block_from_u64(base + i)) mismatches.fetch_add(1);
      }
    });
    if (checkers.size() >= 8) {
      for (auto& c : checkers) c.join();
      checkers.clear();
    }
  }
  for (auto& c : checkers) c.join();
  producer.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(duplex.stats().garbled_table_bytes, expect * 16);
}

TEST(ThreadedPipeDuplex, CloseUnblocksReceiverAndSender) {
  ThreadedPipeDuplex duplex(16);
  std::thread blocked([&] {
    EXPECT_THROW(duplex.evaluator_end().recv(), std::runtime_error);
  });
  duplex.close();
  blocked.join();
  EXPECT_THROW(duplex.garbler_end().send(block_from_u64(1), Traffic::InputLabel),
               std::runtime_error);
}

TEST(ThreadedPipeDuplex, DrainsBufferedBlocksAfterClose) {
  ThreadedPipeDuplex duplex(16);
  duplex.garbler_end().send(block_from_u64(7), Traffic::InputLabel);
  duplex.close();
  EXPECT_EQ(duplex.evaluator_end().recv(), block_from_u64(7));  // buffered data survives
  EXPECT_THROW(duplex.evaluator_end().recv(), std::runtime_error);
}

// --- SocketDuplex ----------------------------------------------------------------

/// A SocketDuplex wrapping one end of a connected stream socketpair, with
/// the raw peer fd available for adversarial byte-level I/O.
struct RawPeer {
  std::unique_ptr<SocketDuplex> sock;
  int peer_fd = -1;

  RawPeer() {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      throw std::runtime_error("socketpair failed");
    }
    sock = std::make_unique<SocketDuplex>(sv[0]);
    peer_fd = sv[1];
  }
  ~RawPeer() {
    if (peer_fd >= 0) ::close(peer_fd);
  }
};

TEST(SocketDuplex, ReassemblesBlocksFromAdversariallySmallChunks) {
  RawPeer p;
  // The peer dribbles 64 blocks' worth of bytes in ragged 1..7-byte writes;
  // recv() must reassemble exact block frames regardless of how the stream
  // was chunked (TCP guarantees nothing about read boundaries).
  constexpr std::size_t kBlocks = 64;
  std::vector<std::uint8_t> wire(kBlocks * 16);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    wire[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  std::thread writer([&] {
    std::size_t off = 0;
    std::size_t chunk = 1;
    while (off < wire.size()) {
      const std::size_t n = std::min(chunk, wire.size() - off);
      ASSERT_EQ(::send(p.peer_fd, wire.data() + off, n, 0), static_cast<ssize_t>(n));
      off += n;
      chunk = chunk % 7 + 1;
    }
  });
  std::vector<Block> got(kBlocks);
  p.sock->end().recv(got.data(), 5);          // spans several dribbled writes
  p.sock->end().recv(got.data() + 5, kBlocks - 5);
  writer.join();
  for (std::size_t i = 0; i < kBlocks; ++i) {
    EXPECT_EQ(got[i], Block::from_bytes(wire.data() + 16 * i)) << "block " << i;
  }
}

TEST(SocketDuplex, SendProducesTheExactFramedByteStream) {
  RawPeer p;
  const Block frame[3] = {block_from_u64(1), block_from_u64(2), block_from_u64(3)};
  p.sock->end().send(frame, 3, Traffic::GarbledTable);
  p.sock->end().send(block_from_u64(9), Traffic::OutputDecode);
  p.sock->flush();
  std::uint8_t wire[64];
  std::size_t off = 0;
  while (off < sizeof wire) {
    const ssize_t r = ::recv(p.peer_fd, wire + off, 3, 0);  // tiny reads again
    ASSERT_GT(r, 0);
    off += static_cast<std::size_t>(r);
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(Block::from_bytes(wire + 16 * i), frame[i]);
  }
  EXPECT_EQ(Block::from_bytes(wire + 48), block_from_u64(9));
  EXPECT_EQ(p.sock->sent().garbled_table_bytes, 48u);
  EXPECT_EQ(p.sock->sent().output_bytes, 16u);
}

TEST(SocketDuplex, PeerTeardownRaisesTransportClosed) {
  {
    RawPeer p;
    ::shutdown(p.peer_fd, SHUT_WR);  // half-close: no more bytes will come
    EXPECT_THROW(p.sock->end().recv(), TransportClosed);
  }
  {
    RawPeer p;
    ::close(p.peer_fd);
    p.peer_fd = -1;
    EXPECT_THROW(p.sock->end().recv(), TransportClosed);
    EXPECT_THROW(
        {
          for (int i = 0; i < 4096; ++i) {
            p.sock->end().send(block_from_u64(1), Traffic::InputLabel);
            p.sock->flush();
          }
        },
        TransportClosed);
  }
  {
    RawPeer p;
    p.sock->close();  // local teardown: both directions dead immediately
    EXPECT_THROW(p.sock->end().recv(), TransportClosed);
    EXPECT_THROW(
        {
          p.sock->end().send(block_from_u64(1), Traffic::InputLabel);
          p.sock->flush();
        },
        TransportClosed);
  }
}

TEST(SocketDuplex, ListenerConnectRoundTripOverLoopback) {
  SocketListener listener("127.0.0.1", 0);
  ASSERT_GT(listener.port(), 0);
  std::unique_ptr<SocketDuplex> client;
  std::thread connector(
      [&] { client = SocketDuplex::connect("127.0.0.1", listener.port()); });
  std::unique_ptr<SocketDuplex> server = listener.accept();
  connector.join();

  client->end().send(block_from_u64(0xABCD), Traffic::Ot);
  client->flush();
  EXPECT_EQ(server->end().recv(), block_from_u64(0xABCD));
  server->end().send(block_from_u64(0xFEED), Traffic::OutputDecode);
  server->flush();
  EXPECT_EQ(client->end().recv(), block_from_u64(0xFEED));
}

TEST(SocketDuplex, AccountingMatchesInMemoryDuplexFrameForFrame) {
  // The same frame/account sequence pushed through both transports must
  // land on identical per-class counters: the socket ends' sent() stats sum
  // to exactly what the in-memory duplex reports for the run.
  InMemoryDuplex mem;
  RawPeer a;  // "garbler" socket end
  RawPeer b;  // "evaluator" socket end
  const Block frame[4] = {block_from_u64(1), block_from_u64(2), block_from_u64(3),
                          block_from_u64(4)};

  auto drive = [&](Transport& g, Transport& e) {
    g.send(frame, 4, Traffic::GarbledTable);
    g.send(frame, 2, Traffic::InputLabel);
    e.send(frame, 3, Traffic::Ot);
    g.account(Traffic::Ot, 7);
    e.send(frame, 1, Traffic::OutputDecode);
    g.send(frame, 1, Traffic::OutputDecode);
  };
  drive(mem.garbler_end(), mem.evaluator_end());
  drive(a.sock->end(), b.sock->end());

  CommStats sum = a.sock->sent();
  sum += b.sock->sent();
  EXPECT_EQ(sum.garbled_table_bytes, mem.stats().garbled_table_bytes);
  EXPECT_EQ(sum.input_label_bytes, mem.stats().input_label_bytes);
  EXPECT_EQ(sum.ot_bytes, mem.stats().ot_bytes);
  EXPECT_EQ(sum.output_bytes, mem.stats().output_bytes);
  EXPECT_EQ(sum.total(), mem.stats().total());
}

}  // namespace
