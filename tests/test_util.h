// Shared helpers for the test suites.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace a2gtest {

inline arm2gc::netlist::BitVec to_bits(std::uint64_t v, std::size_t width) {
  arm2gc::netlist::BitVec b(width);
  for (std::size_t i = 0; i < width; ++i) b[i] = ((v >> i) & 1u) != 0;
  return b;
}

inline std::uint64_t from_bits(const arm2gc::netlist::BitVec& b, std::size_t off = 0,
                               std::size_t width = 64) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width && off + i < b.size(); ++i) {
    if (b[off + i]) v |= 1ull << i;
  }
  return v;
}

inline arm2gc::netlist::BitVec concat_bits(const arm2gc::netlist::BitVec& a,
                                           const arm2gc::netlist::BitVec& b) {
  arm2gc::netlist::BitVec r = a;
  r.insert(r.end(), b.begin(), b.end());
  return r;
}

}  // namespace a2gtest
