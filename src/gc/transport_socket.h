// TCP socket transport: one party's gc::Transport over a blocking stream
// socket, carrying exactly the framed block bytes the in-memory duplexes
// specify ("frames are a batching hint, not a datagram boundary; the byte
// stream is what is specified" — gc/transport.h). This redeems that header's
// promise: two separate OS processes running one endpoint each produce
// byte-identical outputs, garbled-table digests and per-class comm counts to
// the in-process driver (tools/arm2gc_party + tests pin it).
//
// Accounting matches the in-memory duplexes exactly — send() accounts 16*n
// bytes to its traffic class, account() adds protocol extras — so
// garbler.sent() + evaluator.sent() of a socket run equals
// InMemoryDuplex::stats() of the identical in-process run. The wire carries
// no extra framing bytes: batching happens in a userspace write buffer that
// is flushed before any blocking read (every recv() implies the peer may be
// waiting on our pending bytes), which keeps the strictly alternating
// protocol deadlock-free while coalescing the many small frames into few
// syscalls. TCP_NODELAY is set for the same reason: the lock-step
// request/response pattern would otherwise stall on delayed ACKs.
//
// Teardown: peer EOF/reset — or a local close() — surfaces as
// gc::TransportClosed out of send/recv, the same type the in-process drivers
// use to tell a teardown echo from a party's real failure.
//
// Non-blocking mode (set_nonblocking) serves the event-loop garbler service:
// try_flush() drains as much of the write buffer as the kernel accepts and
// resumes the partial remainder later (a consumed-prefix offset, so repeated
// partial writes stay O(bytes), not O(bytes^2)); pending_out()/buffered_in()
// expose queue depths for the service's backpressure decisions; and the
// blocking helpers (read_bytes tails, hard send-limit waits) fall back to
// poll() with a configurable recv deadline so a stalled peer surfaces as
// TransportClosed instead of a hang. The wire bytes are identical in both
// modes — non-blocking is purely a scheduling change.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gc/transport.h"

namespace arm2gc::gc {

/// One party's end of an established TCP connection.
class SocketDuplex {
 public:
  /// Wraps an already-connected stream socket; takes ownership of `fd`.
  explicit SocketDuplex(int fd);
  ~SocketDuplex();
  SocketDuplex(const SocketDuplex&) = delete;
  SocketDuplex& operator=(const SocketDuplex&) = delete;

  /// Connects to a listening peer, retrying refused connections until
  /// `timeout_ms` elapses so the two processes may start in either order.
  static std::unique_ptr<SocketDuplex> connect(const std::string& host, std::uint16_t port,
                                               int timeout_ms = 10'000);

  [[nodiscard]] Transport& end();

  /// Bytes this end sent (and account()ed), per traffic class. The peer's
  /// sent() covers the other direction; the two together equal the
  /// in-process duplex total for an identical run.
  [[nodiscard]] CommStats sent() const;

  /// Flushes buffered writes. send()/recv() manage this themselves; call it
  /// before hand-rolled out-of-band exchanges or long local pauses. In
  /// non-blocking mode a kernel-full socket is waited out with poll(), so
  /// flush() still completes or throws — it never silently drops bytes.
  void flush();

  /// Switches the socket between blocking (default) and non-blocking mode.
  void set_nonblocking(bool on);

  /// Non-blocking drain: hands the kernel as much of the pending write
  /// buffer as it will take right now and returns true when nothing is left.
  /// On false, call again once the fd polls writable. Partial writes leave
  /// the unsent remainder queued (resumed, never re-sent).
  bool try_flush();

  /// Bytes accepted by write_bytes but not yet accepted by the kernel.
  [[nodiscard]] std::size_t pending_out() const { return wbuf_.size() - wpos_; }

  /// Max pending_out() ever observed — the send-queue high-water mark.
  [[nodiscard]] std::size_t send_high_water() const { return send_high_water_; }

  /// Received bytes staged in userspace and not yet consumed by recv().
  [[nodiscard]] std::size_t buffered_in() const { return rlen_ - rpos_; }

  /// Hard cap on pending_out(): a write that would exceed it blocks (poll)
  /// until the kernel drains below the cap, so one slow peer can never grow
  /// an unbounded userspace queue. 0 means uncapped (the default).
  void set_send_limit(std::size_t bytes) { send_limit_ = bytes; }

  /// Deadline for poll() waits inside blocking reads/flushes while in
  /// non-blocking mode; expiry raises TransportClosed. <= 0 waits forever.
  void set_recv_timeout_ms(int ms) { recv_timeout_ms_ = ms; }

  /// The underlying socket fd, for readiness registration only — all I/O
  /// must keep going through this class (it owns the buffers).
  [[nodiscard]] int fd() const { return fd_; }

  /// Out-of-protocol control bytes (unaccounted): the party tool's wrap-up
  /// handshake (outputs/digest/stat exchange after the protocol proper).
  void send_control(const void* data, std::size_t n);
  void recv_control(void* data, std::size_t n);

  /// Shuts the connection down; the peer's blocked operations raise
  /// TransportClosed, as do any further operations here. Idempotent.
  void close();

 private:
  class End;

  void write_bytes(const void* data, std::size_t n);  ///< buffered
  void read_bytes(void* data, std::size_t n);         ///< flushes, then reads fully
  bool drain_some();                ///< one kernel send pass; false on EAGAIN
  void wait_readable();             ///< poll(POLLIN) under recv_timeout_ms_
  void wait_writable();             ///< poll(POLLOUT) under recv_timeout_ms_

  int fd_;
  bool closed_ = false;
  bool nonblocking_ = false;
  int recv_timeout_ms_ = -1;
  std::size_t send_limit_ = 0;  ///< 0 = uncapped
  std::size_t send_high_water_ = 0;
  CommStats sent_stats_;
  std::vector<std::uint8_t> wbuf_;
  std::size_t wpos_ = 0;  ///< kernel-accepted prefix of wbuf_
  std::vector<std::uint8_t> rbuf_;  ///< fixed-size read staging
  std::size_t rlen_ = 0;            ///< filled prefix of rbuf_
  std::size_t rpos_ = 0;            ///< consumed prefix of rlen_
  std::unique_ptr<End> end_;
};

/// Listening socket accepting one peer connection per accept() call.
/// `port` 0 binds an ephemeral port; port() reports the bound one.
class SocketListener {
 public:
  SocketListener(const std::string& host, std::uint16_t port, int backlog = 128);
  ~SocketListener();
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::unique_ptr<SocketDuplex> accept();

  /// Non-blocking accept: nullptr when no connection is pending. The
  /// listener must be in non-blocking mode (set_nonblocking) first.
  [[nodiscard]] std::unique_ptr<SocketDuplex> try_accept();

  void set_nonblocking(bool on);
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_;
  std::uint16_t port_;
};

}  // namespace arm2gc::gc
