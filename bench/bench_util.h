// Shared table-printing and JSON-recording helpers for the
// paper-reproduction benchmarks.
//
// Every bench binary accepts `--json <path>`: rows record their key metrics
// into a flat JSON object which is written on exit, so the BENCH_*.json
// files in the repo can be regenerated reproducibly instead of hand-edited:
//
//   ./bench_table1 --json BENCH_table1.json
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/skipgate.h"
#include "serve/service.h"

namespace benchutil {

/// Flat key -> value JSON recorder (insertion-ordered). Values are
/// pre-rendered; keys are escaped minimally (quotes and backslashes).
class JsonWriter {
 public:
  void set_path(std::string path) { path_ = std::move(path); }
  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  void add(const std::string& key, std::uint64_t v) { kv_.emplace_back(key, std::to_string(v)); }
  void add(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    kv_.emplace_back(key, buf);
  }
  void add(const std::string& key, const std::string& v) {
    // Built by append instead of a leading-literal operator+ chain to
    // sidestep the GCC 12 -Wrestrict false positive (PR 105329), as num()
    // below does.
    std::string quoted;
    quoted.reserve(v.size() + 2);
    quoted.push_back('"');
    quoted.append(escape(v));
    quoted.push_back('"');
    kv_.emplace_back(key, std::move(quoted));
  }

  /// Writes `{ "key": value, ... }`; returns false (and complains) on I/O
  /// failure. A no-op success when --json was not given.
  [[nodiscard]] bool write() const {
    if (path_.empty()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < kv_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", escape(kv_[i].first).c_str(), kv_[i].second.c_str(),
                   i + 1 < kv_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\n[json written to %s]\n", path_.c_str());
    return true;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<std::pair<std::string, std::string>> kv_;
};

inline JsonWriter& json() {
  static JsonWriter w;
  return w;
}

/// Parses common bench flags (currently `--json <path>`).
inline void parse_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") json().set_path(argv[i + 1]);
  }
}

/// End-of-main hook: flushes the JSON file (if requested) and converts an
/// I/O failure into a nonzero exit code.
inline int finish() { return json().write() ? 0 : 1; }

/// Records the uniform per-row protocol stats under `prefix.*`.
inline void json_stats(const std::string& prefix, const arm2gc::core::RunStats& s) {
  if (!json().enabled()) return;
  json().add(prefix + ".garbled_non_xor", s.garbled_non_xor);
  json().add(prefix + ".skip_ratio", s.skip_ratio());
  json().add(prefix + ".plan_cache_hit_ratio", s.plan_cache_hit_ratio());
  json().add(prefix + ".cone_hit_ratio", s.cone_hit_ratio());
  json().add(prefix + ".comm_bytes", s.comm.total());
  json().add(prefix + ".ot_online_bytes", s.ot_online_bytes);
  json().add(prefix + ".ot_offline_ms", static_cast<double>(s.ot_offline_wall_ns) / 1e6);
  json().add(prefix + ".threads", s.threads);
}

/// Records service-side counters under `prefix.*` — one shape shared by
/// bench_serve rows and `arm2gc_serve --json` summaries.
inline void json_service_stats(const std::string& prefix,
                               const arm2gc::serve::ServiceStats& s) {
  if (!json().enabled()) return;
  json().add(prefix + ".accepted", s.accepted);
  json().add(prefix + ".hello_rejected", s.hello_rejected);
  json().add(prefix + ".runs_ok", s.runs_ok);
  json().add(prefix + ".runs_failed", s.runs_failed);
  json().add(prefix + ".warm_hits", s.warm_hits);
  json().add(prefix + ".warm_misses", s.warm_misses);
  json().add(prefix + ".gates_garbled", s.gates_garbled);
  json().add(prefix + ".cycles_run", s.cycles_run);
  json().add(prefix + ".send_queue_high_water", s.send_queue_high_water);
}

inline void header(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

inline void row4(const std::string& name, const std::string& c1, const std::string& c2,
                 const std::string& c3, const std::string& c4) {
  std::printf("%-22s %16s %16s %16s %12s\n", name.c_str(), c1.c_str(), c2.c_str(), c3.c_str(),
              c4.c_str());
}

inline std::string num(std::uint64_t v) {
  // Built left-to-right (instead of insert-from-the-right) to sidestep the
  // GCC 12 -Wrestrict false positive on std::string::insert (PR 105329).
  const std::string digits = std::to_string(v);
  std::string s;
  s.reserve(digits.size() + digits.size() / 3);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (digits.size() - i) % 3 == 0) s.push_back(',');
    s.push_back(digits[i]);
  }
  return s;
}

inline std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f%%", v);
  return buf;
}

inline std::string ratio_k(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0fx", v);
  return buf;
}

/// Percent improvement of `with` over `without` (garbled non-XOR counts).
inline std::string improv_pct(std::uint64_t without, std::uint64_t with) {
  return pct(without == 0 ? 0.0
                          : 100.0 * (static_cast<double>(without) - static_cast<double>(with)) /
                                static_cast<double>(without));
}

/// Improvement ratio "Nx" of `with` over `without` (guards division by zero).
inline std::string improv_ratio(std::uint64_t without, std::uint64_t with) {
  return ratio_k(static_cast<double>(without) /
                 static_cast<double>(with == 0 ? std::uint64_t{1} : with));
}

/// Uniform per-row protocol-stats suffix: SkipGate elision ratio, plan cache
/// hit rate, cone-memo hit rate, online/offline OT split and worker-thread
/// count, straight from RunStats (no per-bench hand computation).
inline std::string stats_brief(const arm2gc::core::RunStats& s) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "skip %6.2f%%  cache %5.1f%%  cone %5.1f%%  otB %s  otOff %.1fms  thr %llu",
                100.0 * s.skip_ratio(), 100.0 * s.plan_cache_hit_ratio(),
                100.0 * s.cone_hit_ratio(), num(s.ot_online_bytes).c_str(),
                static_cast<double>(s.ot_offline_wall_ns) / 1e6,
                static_cast<unsigned long long>(s.threads));
  return buf;
}

}  // namespace benchutil
