// Gate-level generator for the garbled ARM processor (paper §4): a
// single-cycle datapath with conditional execution, five linear-scan
// memories, and a public halt signal. The netlist is what the SkipGate
// protocol garbles; its architectural behaviour is validated in lock-step
// against ArmSim.
#pragma once

#include <cstdint>
#include <span>

#include "arm/isa.h"
#include "netlist/netlist.h"

namespace arm2gc::arm {

struct CpuNetlist {
  netlist::Netlist nl;
  MemoryConfig cfg;
  /// Combinational "the current instruction is SWI and executes": public as
  /// long as the program counter stays public; the SkipGate driver stops on
  /// it. Also exported as output port 0 ("halt").
  netlist::WireId halt_wire = 0;

  // Flip-flop index bases (for lock-step inspection through
  // netlist::Simulator::dff_state; layout below mirrors build order).
  std::uint32_t reg_dff0 = 0;    ///< r0..r14, 32 bits each
  /// Flag state uses deferred evaluation: 32-bit `zsrc` (the last
  /// flag-setting result; N = bit 31, Z = zsrc == 0) followed by C and V
  /// bits. See the comment in build_cpu for why this matters to SkipGate.
  std::uint32_t flags_dff0 = 0;
  std::uint32_t pc_dff0 = 0;     ///< 32 bits
  std::uint32_t imem_dff0 = 0;
  std::uint32_t alice_dff0 = 0;
  std::uint32_t bob_dff0 = 0;
  std::uint32_t out_dff0 = 0;
  std::uint32_t ram_dff0 = 0;

  /// Output ports: [0] = halt, [1..] = the output memory, word-major
  /// (out_words x 32 bits).
};

/// Builds the processor netlist with the given memories and public program.
/// Alice's memory words bind to Alice input bits (32*w + b), Bob's likewise.
CpuNetlist build_cpu(const MemoryConfig& cfg, std::span<const std::uint32_t> program);

}  // namespace arm2gc::arm
