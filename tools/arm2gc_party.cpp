// Single-role party binary: runs ONE endpoint of the garbled-ARM protocol —
// garbler (Alice) or evaluator (Bob) — over a TCP socket, proving true
// two-process execution of the engine. Each process holds only its role's
// secret state and seeds its own randomness locally (pass
// `--private-seed os` for fresh OS entropy; the default deterministic seed
// reproduces the in-process driver's labels byte for byte, which is what CI
// pins against `--role local`).
//
//   # terminal 1 (Alice): listen, supply her input words
//   arm2gc_party --role garbler --listen 127.0.0.1:7431
//                --program hamming160 --input 1,2,3,4,5
//   # terminal 2 (Bob): connect, supply his input words
//   arm2gc_party --role evaluator --connect 127.0.0.1:7431
//                --program hamming160 --input 6,7,8,9,10
//   # reference: the in-process driver on one machine
//   arm2gc_party --role local --program hamming160
//                --alice 1,2,3,4,5 --bob 6,7,8,9,10
//
// After the protocol the two processes exchange an out-of-band summary
// (outputs, table digest, per-class sent bytes — unaccounted control bytes,
// not protocol traffic) so both print identical `outputs=`, `table_digest=`
// and `comm ...` lines; those lines also match `--role local` byte for byte
// when the seeds match. The digest cross-check (garbler's sent-table digest
// vs the evaluator's received-table digest) fails the run loudly on any
// table corruption in transit.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "arm/arm2gc.h"
#include "arm/assembler.h"
#include "obs/trace.h"
#include "gc/transport_socket.h"
#include "programs/programs.h"

using namespace arm2gc;

namespace {

struct Args {
  std::string role;
  std::string listen;
  std::string connect;
  std::string program;
  std::vector<std::uint32_t> input;  ///< this party's words (two-process roles)
  std::vector<std::uint32_t> alice;  ///< local-role inputs
  std::vector<std::uint32_t> bob;
  std::uint64_t max_cycles = 1u << 20;
  std::size_t threads = 1;  ///< worker threads (0 = hardware concurrency)
  gc::Scheme scheme = gc::Scheme::HalfGates;
  gc::OtBackend ot = gc::OtBackend::Iknp;
  std::size_t ot_pool = gc::kDefaultOtPoolBatch;
  crypto::Block seed = core::kDefaultProtocolSeed;
  std::optional<crypto::Block> private_seed;
  arm::MemoryConfig cfg;  ///< used for --program <file.s> only
  std::string trace_path;  ///< chrome://tracing JSON output
};

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "arm2gc_party: %s\n", msg);
  std::fprintf(stderr,
               "usage: arm2gc_party --role garbler|evaluator|local\n"
               "  [--listen host:port | --connect host:port]   (two-process roles)\n"
               "  --program <builtin|file.s>    builtins: sum32 compare32 mult32 hamming160\n"
               "  --input w,w,...               this party's private words\n"
               "  --alice w,... --bob w,...     local-role inputs\n"
               "  [--max-cycles N] [--scheme halfgates|grr3|classic4]\n"
               "  [--ot ideal|iknp|precomp]     precomp banks random OTs off the online\n"
               "                                path and derandomizes online choices\n"
               "  [--ot-pool N]                 precomp refill target in random OTs\n"
               "                                (public; must match the peer)\n"
               "  [--threads N]                 worker threads (0 = all cores); results,\n"
               "                                digests and byte counts match --threads 1\n"
               "  [--seed <32 hex>]             public protocol seed (must match peer)\n"
               "  [--private-seed <32 hex>|os]  this party's own randomness\n"
               "  [--alice-words N --bob-words N --out-words N --imem-words N --ram-words N]\n"
               "  [--trace <path>]              chrome://tracing span export\n");
  std::exit(2);
}

std::vector<std::uint32_t> parse_words(const std::string& s) {
  std::vector<std::uint32_t> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(static_cast<std::uint32_t>(std::stoul(item, nullptr, 0)));
  }
  return out;
}

/// Parses the 32-hex-digit form Block::hex() prints (most significant byte
/// first), so seeds and digests round-trip through the command line.
crypto::Block parse_block(const std::string& s) {
  if (s.size() != 32) usage("seed must be 32 hex digits");
  std::uint8_t bytes[16];
  for (int i = 0; i < 16; ++i) {
    bytes[15 - i] =
        static_cast<std::uint8_t>(std::stoul(s.substr(2 * static_cast<std::size_t>(i), 2),
                                             nullptr, 16));
  }
  return crypto::Block::from_bytes(bytes);
}

crypto::Block os_entropy_block() {
  std::random_device rd;
  std::uint8_t bytes[16];
  for (int i = 0; i < 16; i += 4) {
    const std::uint32_t v = rd();
    std::memcpy(bytes + i, &v, 4);
  }
  return crypto::Block::from_bytes(bytes);
}

std::pair<std::string, std::uint16_t> parse_hostport(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos) usage("expected host:port");
  return {s.substr(0, colon),
          static_cast<std::uint16_t>(std::stoul(s.substr(colon + 1), nullptr, 10))};
}

Args parse_args(int argc, char** argv) {
  Args a;
  auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage("missing flag value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    if (f == "--role") {
      a.role = next(i);
    } else if (f == "--listen") {
      a.listen = next(i);
    } else if (f == "--connect") {
      a.connect = next(i);
    } else if (f == "--program") {
      a.program = next(i);
    } else if (f == "--input") {
      a.input = parse_words(next(i));
    } else if (f == "--alice") {
      a.alice = parse_words(next(i));
    } else if (f == "--bob") {
      a.bob = parse_words(next(i));
    } else if (f == "--max-cycles") {
      a.max_cycles = std::stoull(next(i), nullptr, 0);
    } else if (f == "--threads") {
      a.threads = std::stoull(next(i), nullptr, 0);
    } else if (f == "--scheme") {
      const std::string v = next(i);
      if (v == "halfgates") {
        a.scheme = gc::Scheme::HalfGates;
      } else if (v == "grr3") {
        a.scheme = gc::Scheme::Grr3;
      } else if (v == "classic4") {
        a.scheme = gc::Scheme::Classic4;
      } else {
        usage("unknown scheme");
      }
    } else if (f == "--ot") {
      const std::string v = next(i);
      if (v == "ideal") {
        a.ot = gc::OtBackend::Ideal;
      } else if (v == "iknp") {
        a.ot = gc::OtBackend::Iknp;
      } else if (v == "precomp") {
        a.ot = gc::OtBackend::Precomp;
      } else {
        usage("unknown OT backend");
      }
    } else if (f == "--ot-pool") {
      a.ot_pool = std::stoull(next(i), nullptr, 0);
      if (a.ot_pool == 0) usage("--ot-pool must be nonzero");
    } else if (f == "--seed") {
      a.seed = parse_block(next(i));
    } else if (f == "--private-seed") {
      const std::string v = next(i);
      a.private_seed = v == "os" ? os_entropy_block() : parse_block(v);
    } else if (f == "--alice-words") {
      a.cfg.alice_words = std::stoull(next(i), nullptr, 0);
    } else if (f == "--bob-words") {
      a.cfg.bob_words = std::stoull(next(i), nullptr, 0);
    } else if (f == "--out-words") {
      a.cfg.out_words = std::stoull(next(i), nullptr, 0);
    } else if (f == "--imem-words") {
      a.cfg.imem_words = std::stoull(next(i), nullptr, 0);
    } else if (f == "--ram-words") {
      a.cfg.ram_words = std::stoull(next(i), nullptr, 0);
    } else if (f == "--trace") {
      a.trace_path = next(i);
    } else {
      usage(("unknown flag " + f).c_str());
    }
  }
  if (a.role != "garbler" && a.role != "evaluator" && a.role != "local") {
    usage("--role must be garbler, evaluator or local");
  }
  if (a.program.empty()) usage("--program is required");
  return a;
}

programs::Program load_program(const Args& a) {
  if (a.program == "sum32") return programs::sum(1);
  if (a.program == "compare32") return programs::compare(1);
  if (a.program == "mult32") return programs::mult32();
  if (a.program == "hamming160") return programs::hamming(5);
  std::ifstream in(a.program);
  if (!in) usage(("cannot open program file " + a.program).c_str());
  std::stringstream src;
  src << in.rdbuf();
  programs::Program p;
  p.name = a.program;
  p.source = src.str();
  p.words = arm::assemble(p.source);
  p.cfg = a.cfg;
  return p;
}

/// The role-independent result lines both processes (and --role local) must
/// print identically.
void print_summary(const std::string& program, std::uint64_t cycles,
                   std::uint64_t garbled_non_xor, const std::vector<std::uint32_t>& outputs,
                   const crypto::Block& digest, const gc::CommStats& comm) {
  std::printf("program=%s cycles=%llu garbled_non_xor=%llu\n", program.c_str(),
              static_cast<unsigned long long>(cycles),
              static_cast<unsigned long long>(garbled_non_xor));
  std::printf("outputs=");
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    std::printf("%s%08x", i == 0 ? "" : " ", outputs[i]);
  }
  std::printf("\n");
  std::printf("table_digest=%s\n", digest.hex().c_str());
  std::printf("comm garbled_table=%llu input_label=%llu ot=%llu output=%llu total=%llu\n",
              static_cast<unsigned long long>(comm.garbled_table_bytes),
              static_cast<unsigned long long>(comm.input_label_bytes),
              static_cast<unsigned long long>(comm.ot_bytes),
              static_cast<unsigned long long>(comm.output_bytes),
              static_cast<unsigned long long>(comm.total()));
}

/// Fixed-layout out-of-band summary each party sends after the protocol.
struct WireSummary {
  std::uint64_t magic = 0x61326763'70617274ull;  // "a2gcpart"
  std::uint64_t cycles = 0;
  std::uint64_t garbled_non_xor = 0;
  std::uint8_t digest[16] = {};
  std::uint64_t comm[4] = {};  ///< sent bytes: table, input label, ot, output
  std::uint64_t out_count = 0;
};

void send_summary(gc::SocketDuplex& sock, const arm::Arm2GcResult& r,
                  const gc::CommStats& sent, const std::vector<std::uint32_t>& outputs) {
  WireSummary w;
  w.cycles = r.cycles;
  w.garbled_non_xor = r.stats.garbled_non_xor;
  r.stats.table_digest.to_bytes(w.digest);
  w.comm[0] = sent.garbled_table_bytes;
  w.comm[1] = sent.input_label_bytes;
  w.comm[2] = sent.ot_bytes;
  w.comm[3] = sent.output_bytes;
  w.out_count = outputs.size();
  sock.send_control(&w, sizeof w);
  if (!outputs.empty()) {
    sock.send_control(outputs.data(), outputs.size() * sizeof(std::uint32_t));
  }
}

WireSummary recv_summary(gc::SocketDuplex& sock, std::vector<std::uint32_t>& outputs) {
  WireSummary w;
  sock.recv_control(&w, sizeof w);
  if (w.magic != WireSummary{}.magic) {
    throw std::runtime_error("arm2gc_party: malformed wrap-up summary (desynced stream?)");
  }
  outputs.resize(w.out_count);
  if (w.out_count != 0) {
    sock.recv_control(outputs.data(), outputs.size() * sizeof(std::uint32_t));
  }
  return w;
}

int run_local(const Args& a, const programs::Program& prog) {
  // The in-process driver is the deterministic reference: it always runs
  // under the built-in protocol seed (both parties, one address space).
  // Rejecting the seed flags here beats silently producing digests that a
  // custom-seeded two-process run can never match.
  if (!(a.seed == core::kDefaultProtocolSeed) || a.private_seed.has_value()) {
    usage("--seed/--private-seed apply to the two-process roles only; "
          "--role local always uses the built-in deterministic seed");
  }
  const arm::Arm2Gc machine(prog.cfg, prog.words);
  core::ExecOptions exec;
  exec.ot_backend = a.ot;
  exec.ot_pool = a.ot_pool;
  exec.threads = a.threads;
  const arm::Arm2GcResult r = machine.run(a.alice, a.bob, a.max_cycles, a.scheme, exec);
  std::printf("role=local\n");
  print_summary(prog.name, r.cycles, r.stats.garbled_non_xor, r.outputs,
                r.stats.table_digest, r.stats.comm);
  return 0;
}

int run_party(const Args& a, const programs::Program& prog) {
  const bool is_garbler = a.role == "garbler";
  if (a.listen.empty() == a.connect.empty()) {
    usage("two-process roles need exactly one of --listen / --connect");
  }

  std::unique_ptr<gc::SocketDuplex> sock;
  if (!a.listen.empty()) {
    const auto [host, port] = parse_hostport(a.listen);
    gc::SocketListener listener(host, port);
    std::fprintf(stderr, "[%s] listening on %s:%u\n", a.role.c_str(), host.c_str(),
                 listener.port());
    sock = listener.accept();
  } else {
    const auto [host, port] = parse_hostport(a.connect);
    sock = gc::SocketDuplex::connect(host, port);
  }
  std::fprintf(stderr, "[%s] connected\n", a.role.c_str());

  const arm::Arm2Gc machine(prog.cfg, prog.words);
  core::ExecOptions exec;
  exec.ot_backend = a.ot;
  exec.ot_pool = a.ot_pool;
  exec.threads = a.threads;
  core::PartyOptions opts = machine.party_options(
      is_garbler ? core::Role::Garbler : core::Role::Evaluator, a.max_cycles, a.scheme, exec);
  opts.protocol_seed = a.seed;
  // This process's own randomness: never shipped, never shared. The default
  // (protocol seed) keeps runs byte-identical to the in-process driver.
  opts.private_seed = a.private_seed.value_or(a.seed);

  const arm::Arm2GcResult r = is_garbler
                                  ? machine.run_garbler(a.input, sock->end(), opts)
                                  : machine.run_evaluator(a.input, sock->end(), opts);
  const gc::CommStats own_sent = sock->sent();

  // Out-of-band wrap-up: garbler sends first (summary + decoded outputs),
  // then reads the evaluator's summary; the evaluator mirrors it.
  std::vector<std::uint32_t> outputs = r.outputs;
  WireSummary peer;
  std::vector<std::uint32_t> peer_outputs;
  if (is_garbler) {
    send_summary(*sock, r, own_sent, outputs);
    peer = recv_summary(*sock, peer_outputs);
  } else {
    peer = recv_summary(*sock, peer_outputs);
    send_summary(*sock, r, own_sent, outputs);
    outputs = peer_outputs;  // Bob learns the result from Alice's wrap-up
  }

  if (peer.cycles != r.cycles || peer.garbled_non_xor != r.stats.garbled_non_xor) {
    std::fprintf(stderr, "[%s] FAIL: parties disagree on the protocol shape\n",
                 a.role.c_str());
    return 1;
  }
  // The garbler digests the tables it sent, the evaluator the tables it
  // received: equality certifies table content end to end.
  if (!(crypto::Block::from_bytes(peer.digest) == r.stats.table_digest)) {
    std::fprintf(stderr, "[%s] FAIL: garbled-table digest mismatch across parties\n",
                 a.role.c_str());
    return 1;
  }

  gc::CommStats comm = own_sent;
  comm.garbled_table_bytes += peer.comm[0];
  comm.input_label_bytes += peer.comm[1];
  comm.ot_bytes += peer.comm[2];
  comm.output_bytes += peer.comm[3];

  std::printf("role=%s\n", a.role.c_str());
  print_summary(prog.name, r.cycles, r.stats.garbled_non_xor, outputs, r.stats.table_digest,
                comm);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse_args(argc, argv);
    const programs::Program prog = load_program(a);
    if (!a.trace_path.empty()) obs::Tracer::instance().enable();
    const int rc = a.role == "local" ? run_local(a, prog) : run_party(a, prog);
    if (!a.trace_path.empty() &&
        !obs::Tracer::instance().export_to_file(a.trace_path)) {
      std::fprintf(stderr, "arm2gc_party: cannot write trace %s\n",
                   a.trace_path.c_str());
      return 1;
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "arm2gc_party: %s\n", e.what());
    return 1;
  }
}
