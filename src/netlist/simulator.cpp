#include "netlist/simulator.h"

#include <stdexcept>
#include <string>

namespace arm2gc::netlist {

namespace {
std::vector<std::uint8_t> copy_bits(const BitVec& bits) {
  std::vector<std::uint8_t> v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) v[i] = bits[i] ? 1 : 0;
  return v;
}

std::uint8_t bit_at(const std::vector<std::uint8_t>& v, std::size_t i, const char* what) {
  if (i >= v.size()) throw std::out_of_range(std::string("simulator: missing ") + what);
  return v[i];
}

std::uint8_t stream_bit(const BitVec& v, std::size_t i, const char* what) {
  if (i >= v.size()) throw std::out_of_range(std::string("simulator: missing ") + what);
  return v[i] ? 1 : 0;
}
}  // namespace

Simulator::Simulator(const Netlist& nl) : nl_(nl), vals_(nl.num_wires(), 0) {
  nl_.validate();
}

void Simulator::reset(const BitVec& alice, const BitVec& bob, const BitVec& pub) {
  alice_bits_ = copy_bits(alice);
  bob_bits_ = copy_bits(bob);
  pub_bits_ = copy_bits(pub);
  cycle_ = 0;
  dff_state_.assign(nl_.dffs.size(), 0);
  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    const Dff& d = nl_.dffs[i];
    switch (d.init) {
      case Dff::Init::Zero: dff_state_[i] = 0; break;
      case Dff::Init::One: dff_state_[i] = 1; break;
      case Dff::Init::AliceBit:
        dff_state_[i] = bit_at(alice_bits_, d.init_index, "Alice dff init bit");
        break;
      case Dff::Init::BobBit:
        dff_state_[i] = bit_at(bob_bits_, d.init_index, "Bob dff init bit");
        break;
    }
  }
}

void Simulator::step(const BitVec& alice_stream, const BitVec& bob_stream,
                     const BitVec& pub_stream) {
  vals_[kConst0] = 0;
  vals_[kConst1] = 1;
  for (std::size_t i = 0; i < nl_.inputs.size(); ++i) {
    const Input& in = nl_.inputs[i];
    std::uint8_t v = 0;
    if (in.streamed) {
      switch (in.owner) {
        case Owner::Alice: v = stream_bit(alice_stream, in.bit_index, "Alice stream bit"); break;
        case Owner::Bob: v = stream_bit(bob_stream, in.bit_index, "Bob stream bit"); break;
        case Owner::Public: v = stream_bit(pub_stream, in.bit_index, "public stream bit"); break;
      }
    } else {
      switch (in.owner) {
        case Owner::Alice: v = bit_at(alice_bits_, in.bit_index, "Alice input bit"); break;
        case Owner::Bob: v = bit_at(bob_bits_, in.bit_index, "Bob input bit"); break;
        case Owner::Public: v = bit_at(pub_bits_, in.bit_index, "public input bit"); break;
      }
    }
    vals_[nl_.input_wire(i)] = v;
  }
  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) vals_[nl_.dff_wire(i)] = dff_state_[i];

  const WireId first_gate = nl_.first_gate_wire();
  for (std::size_t g = 0; g < nl_.gates.size(); ++g) {
    const Gate& gate = nl_.gates[g];
    vals_[first_gate + g] =
        tt_eval(gate.tt, vals_[gate.a] != 0, vals_[gate.b] != 0) ? 1 : 0;
  }
  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    const Dff& d = nl_.dffs[i];
    dff_state_[i] = static_cast<std::uint8_t>((vals_[d.d] != 0) ^ d.d_invert);
  }
  ++cycle_;
}

BitVec Simulator::read_outputs() const {
  BitVec out;
  out.reserve(nl_.outputs.size());
  for (const OutputPort& o : nl_.outputs) out.push_back((vals_[o.wire] != 0) ^ o.invert);
  return out;
}

}  // namespace arm2gc::netlist
