#include "serve/poller.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace arm2gc::serve {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("poller: ") + what + ": " + std::strerror(errno));
}

short poll_mask(bool want_read, bool want_write) {
  short m = 0;
  if (want_read) m |= POLLIN;
  if (want_write) m |= POLLOUT;
  return m;
}

#ifdef __linux__
std::uint32_t epoll_mask(bool want_read, bool want_write) {
  std::uint32_t m = 0;
  if (want_read) m |= EPOLLIN;
  if (want_write) m |= EPOLLOUT;
  return m;
}
#endif

}  // namespace

Poller::Poller(PollerBackend backend) {
#ifdef __linux__
  if (backend == PollerBackend::Default) {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0) throw_errno("epoll_create1");
  }
#else
  (void)backend;
#endif
}

Poller::~Poller() {
  if (epfd_ >= 0) ::close(epfd_);
}

void Poller::add(int fd, bool want_read, bool want_write) {
#ifdef __linux__
  if (epfd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) throw_errno("epoll_ctl(add)");
    return;
  }
#endif
  interest_[fd] = poll_mask(want_read, want_write);
}

void Poller::mod(int fd, bool want_read, bool want_write) {
#ifdef __linux__
  if (epfd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) throw_errno("epoll_ctl(mod)");
    return;
  }
#endif
  interest_.at(fd) = poll_mask(want_read, want_write);
}

void Poller::del(int fd) {
#ifdef __linux__
  if (epfd_ >= 0) {
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) != 0) throw_errno("epoll_ctl(del)");
    return;
  }
#endif
  interest_.erase(fd);
}

std::size_t Poller::wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
#ifdef __linux__
  if (epfd_ >= 0) {
    epoll_event evs[64];
    int n;
    do {
      n = ::epoll_wait(epfd_, evs, 64, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw_errno("epoll_wait");
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = evs[i].data.fd;
      e.readable = (evs[i].events & EPOLLIN) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.error = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
    return out.size();
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(interest_.size());
  for (const auto& [fd, mask] : interest_) pfds.push_back({fd, mask, 0});
  int n;
  do {
    n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) throw_errno("poll");
  for (const pollfd& p : pfds) {
    if (p.revents == 0) continue;
    Event e;
    e.fd = p.fd;
    e.readable = (p.revents & POLLIN) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(e);
  }
  return out.size();
}

}  // namespace arm2gc::serve
