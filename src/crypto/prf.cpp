#include "crypto/prf.h"

namespace arm2gc::crypto {

namespace {
// Fixed public permutation key; any constant works (it is public by design).
constexpr Block kFixedKey{0x1032547698badcfeULL, 0xefcdab8967452301ULL};
}  // namespace

GarbleHash::GarbleHash() : pi_(kFixedKey) {}

Block GarbleHash::operator()(Block label, std::uint64_t tweak) const {
  const Block k = label.gf_double() ^ block_from_u64(tweak);
  return pi_.encrypt(k) ^ k;
}

}  // namespace arm2gc::crypto
