// 128-bit block type used for wire labels and cipher states.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

namespace arm2gc::crypto {

/// A 128-bit value. `lo` holds bits 0..63 (bit 0 = least significant), `hi`
/// holds bits 64..127. All operations are constant-time bitwise ops.
struct Block {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  constexpr Block() = default;
  constexpr Block(std::uint64_t lo_, std::uint64_t hi_) : lo(lo_), hi(hi_) {}

  friend constexpr Block operator^(Block a, Block b) {
    return Block{a.lo ^ b.lo, a.hi ^ b.hi};
  }
  Block& operator^=(Block b) {
    lo ^= b.lo;
    hi ^= b.hi;
    return *this;
  }
  friend constexpr bool operator==(Block a, Block b) {
    return a.lo == b.lo && a.hi == b.hi;
  }

  /// Least significant bit; used as the point-and-permute select bit.
  [[nodiscard]] constexpr bool lsb() const { return (lo & 1u) != 0; }

  /// True iff the block is all-zero.
  [[nodiscard]] constexpr bool is_zero() const { return lo == 0 && hi == 0; }

  /// Doubling in GF(2^128) with the standard reduction polynomial
  /// x^128 + x^7 + x^2 + x + 1. Used to derive distinct pi-hash tweaks.
  [[nodiscard]] constexpr Block gf_double() const {
    const std::uint64_t carry = hi >> 63;
    Block r{lo << 1, (hi << 1) | (lo >> 63)};
    r.lo ^= carry * 0x87u;
    return r;
  }

  /// Serialize to 16 little-endian bytes.
  void to_bytes(std::uint8_t out[16]) const {
    std::memcpy(out, &lo, 8);
    std::memcpy(out + 8, &hi, 8);
  }
  static Block from_bytes(const std::uint8_t in[16]) {
    Block b;
    std::memcpy(&b.lo, in, 8);
    std::memcpy(&b.hi, in + 8, 8);
    return b;
  }

  [[nodiscard]] std::string hex() const;
};

/// Block from a small integer, useful for tweaks and tests.
constexpr Block block_from_u64(std::uint64_t v) { return Block{v, 0}; }

}  // namespace arm2gc::crypto

template <>
struct std::hash<arm2gc::crypto::Block> {
  std::size_t operator()(const arm2gc::crypto::Block& b) const noexcept {
    return static_cast<std::size_t>(b.lo * 0x9e3779b97f4a7c15ull ^ b.hi);
  }
};
