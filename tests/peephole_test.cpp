// Targeted tests for the planner's XOR-cancellation peephole (DESIGN.md
// §4.1): public-select multiplexers must release the unselected side's label
// from the needed-cone, and must never change results — including when the
// select is secret, when branches alias, and across pass/DFF boundaries.
#include <gtest/gtest.h>

#include "builder/circuit_builder.h"
#include "builder/stdlib.h"
#include "core/skipgate.h"
#include "crypto/rng.h"
#include "netlist/simulator.h"
#include "test_util.h"

namespace {

using namespace arm2gc;
using namespace arm2gc::builder;
using arm2gc::core::Mode;
using arm2gc::core::RunOptions;
using arm2gc::core::RunResult;
using arm2gc::core::SkipGateDriver;
using a2gtest::from_bits;
using a2gtest::to_bits;

RunResult run_skip(const netlist::Netlist& nl, const netlist::BitVec& a,
                   const netlist::BitVec& b, const netlist::BitVec& p = {}) {
  RunOptions opts;
  opts.fixed_cycles = 1;
  SkipGateDriver driver(nl, opts);
  return driver.run(a, b, p);
}

TEST(Peephole, PublicSelectMuxDropsUnselectedCone) {
  // t = a*b (expensive), f = a+b; out = mux(public sel, t, f). With sel=0
  // the multiplier must not be garbled at all.
  CircuitBuilder cb;
  const Bus a = cb.input_bus(netlist::Owner::Alice, 8, 0);
  const Bus b = cb.input_bus(netlist::Owner::Bob, 8, 0);
  const Wire sel = cb.input(netlist::Owner::Public, 0);
  const Bus t = mul_lower(cb, a, b, 8);
  const Bus f = add(cb, a, b);
  cb.output_bus(mux_bus(cb, sel, t, f));
  const netlist::Netlist nl = cb.take();

  const RunResult f_side = run_skip(nl, to_bits(9, 8), to_bits(13, 8), {false});
  EXPECT_EQ(from_bits(f_side.final_outputs, 0, 8), (9u + 13u) & 0xFF);
  EXPECT_LE(f_side.stats.garbled_non_xor, 7u);  // just the adder

  const RunResult t_side = run_skip(nl, to_bits(9, 8), to_bits(13, 8), {true});
  EXPECT_EQ(from_bits(t_side.final_outputs, 0, 8), (9u * 13u) & 0xFF);
  EXPECT_GT(t_side.stats.garbled_non_xor, 7u);   // multiplier garbled
  EXPECT_LT(t_side.stats.garbled_non_xor, 200u);  // adder dropped
}

TEST(Peephole, CascadedSelectTreeCollapses) {
  // 4-way select by a public index over four expensive alternatives: only
  // the chosen alternative's gates may be garbled.
  for (std::uint32_t which = 0; which < 4; ++which) {
    CircuitBuilder cb;
    const Bus a = cb.input_bus(netlist::Owner::Alice, 8, 0);
    const Bus b = cb.input_bus(netlist::Owner::Bob, 8, 0);
    const Bus sel = cb.input_bus(netlist::Owner::Public, 2, 0);
    std::vector<Bus> options = {
        add(cb, a, b),
        sub(cb, a, b),
        and_bus(cb, a, b),
        or_bus(cb, a, b),
    };
    cb.output_bus(select(cb, sel, options));
    const netlist::Netlist nl = cb.take();
    const std::uint32_t av = 0xA5, bv = 0x3C;
    const RunResult r = run_skip(nl, to_bits(av, 8), to_bits(bv, 8), to_bits(which, 2));
    const std::uint32_t expect[] = {(av + bv) & 0xFF, (av - bv) & 0xFF, av & bv, av | bv};
    EXPECT_EQ(from_bits(r.final_outputs, 0, 8), expect[which]) << which;
    EXPECT_LE(r.stats.garbled_non_xor, 8u) << which;  // single 8-bit op
  }
}

TEST(Peephole, SecretSelectStillWorks) {
  // With a *secret* select the mux AND must be garbled and both sides are
  // legitimately needed — the peephole must not fire.
  CircuitBuilder cb;
  const Bus a = cb.input_bus(netlist::Owner::Alice, 8, 0);
  const Bus b = cb.input_bus(netlist::Owner::Bob, 8, 0);
  const Wire sel = cb.input(netlist::Owner::Bob, 8);
  cb.output_bus(mux_bus(cb, sel, and_bus(cb, a, b), or_bus(cb, a, b)));
  const netlist::Netlist nl = cb.take();
  for (const bool sv : {false, true}) {
    netlist::BitVec bob = to_bits(0x3C, 9);
    bob[8] = sv;
    const RunResult r = run_skip(nl, to_bits(0xA5, 8), bob);
    EXPECT_EQ(from_bits(r.final_outputs, 0, 8),
              sv ? (0xA5u & 0x3Cu) : (0xA5u | 0x3Cu));
    // both 8-bit ops + 8 mux ANDs
    EXPECT_EQ(r.stats.garbled_non_xor, 24u);
  }
}

TEST(Peephole, AliasedBranchesCollapseViaFingerprints) {
  // mux(sel, x, x) == x even when the two branch wires are built separately:
  // category-iii (equal fingerprints) folds it before the peephole matters.
  netlist::Netlist nl;
  nl.inputs.push_back(netlist::Input{netlist::Owner::Alice, false, 0, "x"});
  nl.inputs.push_back(netlist::Input{netlist::Owner::Bob, false, 0, "s"});
  const netlist::WireId x = nl.input_wire(0);
  const netlist::WireId s = nl.input_wire(1);
  // diff = x ^ x (const 0 at label level) ... via two separate XOR gates.
  nl.gates.push_back(netlist::Gate{x, x, netlist::kTtXor});               // = 0
  nl.gates.push_back(netlist::Gate{s, nl.gate_wire(0), netlist::kTtAnd});  // = 0
  nl.gates.push_back(netlist::Gate{x, nl.gate_wire(1), netlist::kTtXor});  // = x
  nl.outputs.push_back(netlist::OutputPort{nl.gate_wire(2), false, "y"});
  for (int bits = 0; bits < 4; ++bits) {
    const RunResult r = run_skip(nl, {(bits & 1) != 0}, {(bits & 2) != 0});
    EXPECT_EQ(r.final_outputs[0], (bits & 1) != 0);
    EXPECT_EQ(r.stats.garbled_non_xor, 0u);
  }
}

class PeepholeRandom : public ::testing::TestWithParam<int> {};

TEST_P(PeepholeRandom, RandomMuxTreesMatchSimulator) {
  crypto::CtrRng rng(crypto::block_from_u64(static_cast<std::uint64_t>(GetParam()) * 131 + 7));
  CircuitBuilder cb;
  const Bus a = cb.input_bus(netlist::Owner::Alice, 8, 0);
  const Bus b = cb.input_bus(netlist::Owner::Bob, 8, 0);
  const Bus pub = cb.input_bus(netlist::Owner::Public, 4, 0);
  // Random expression DAG of arithmetic blocks combined by muxes with a mix
  // of public and secret selects.
  std::vector<Bus> pool = {a, b};
  for (int step = 0; step < 10; ++step) {
    const Bus& x = pool[rng.next_below(pool.size())];
    const Bus& y = pool[rng.next_below(pool.size())];
    switch (rng.next_below(5)) {
      case 0: pool.push_back(add(cb, x, y)); break;
      case 1: pool.push_back(sub(cb, x, y)); break;
      case 2: pool.push_back(xor_bus(cb, x, y)); break;
      case 3: {
        const Wire sel = pub[rng.next_below(4)];
        pool.push_back(mux_bus(cb, sel, x, y));
        break;
      }
      default: {
        const Wire sel = (rng.next_bool() ? a : b)[rng.next_below(8)];
        pool.push_back(mux_bus(cb, sel, x, y));
        break;
      }
    }
  }
  cb.output_bus(pool.back());
  const netlist::Netlist nl = cb.take();

  const netlist::BitVec av = to_bits(rng.next_u64(), 8);
  const netlist::BitVec bv = to_bits(rng.next_u64(), 8);
  const netlist::BitVec pv = to_bits(rng.next_u64(), 4);

  netlist::Simulator sim(nl);
  sim.reset(av, bv, pv);
  sim.step();
  const RunResult skip = run_skip(nl, av, bv, pv);
  EXPECT_EQ(skip.final_outputs, sim.read_outputs());

  RunOptions copts;
  copts.mode = Mode::Conventional;
  copts.fixed_cycles = 1;
  SkipGateDriver conv(nl, copts);
  const RunResult rc = conv.run(av, bv, pv);
  EXPECT_EQ(rc.final_outputs, sim.read_outputs());
  EXPECT_LE(skip.stats.garbled_non_xor, rc.stats.garbled_non_xor);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeepholeRandom, ::testing::Range(0, 30));

TEST(Peephole, SequentialMuxAcrossCycles) {
  // Accumulator updated through a public-select mux: acc' = sel ? acc+in : acc.
  // On "hold" cycles nothing may be garbled.
  CircuitBuilder cb;
  const auto acc = cb.make_dff_bus(8);
  const Wire in_sel = cb.input(netlist::Owner::Public, 0, /*streamed=*/true);
  const Bus in = cb.input_bus(netlist::Owner::Alice, 8, 0, /*streamed=*/true);
  const Bus next = mux_bus(cb, in_sel, add(cb, cb.dff_out_bus(acc), in), cb.dff_out_bus(acc));
  cb.set_dff_d_bus(acc, next);
  cb.output_bus(next);
  const netlist::Netlist nl = cb.take();

  core::StreamProvider streams;
  streams.alice = [](std::uint64_t) { return to_bits(5, 8); };
  streams.pub = [](std::uint64_t c) { return netlist::BitVec{c % 2 == 0}; };
  RunOptions opts;
  opts.fixed_cycles = 6;  // add on cycles 0,2,4 -> acc = 15
  SkipGateDriver driver(nl, opts);
  const RunResult r = driver.run({}, {}, {}, &streams);
  EXPECT_EQ(from_bits(r.final_outputs, 0, 8), 15u);
  // Only 3 active cycles garble, and the first add has a public accumulator.
  EXPECT_LE(r.stats.garbled_non_xor, 3u * 7u);
}

}  // namespace
