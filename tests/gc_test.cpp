#include <gtest/gtest.h>

#include "crypto/block.h"
#include "gc/garble.h"
#include "gc/golden_digest.h"
#include "gc/otext.h"
#include "gc/transport.h"
#include "netlist/gate.h"

namespace {

using arm2gc::crypto::Block;
using arm2gc::crypto::block_from_u64;
using namespace arm2gc::gc;
using arm2gc::netlist::tt_and_core;
using arm2gc::netlist::tt_eval;
using arm2gc::netlist::tt_is_affine;
using arm2gc::netlist::TruthTable;

TEST(Garbler, PointAndPermuteOffset) {
  const Garbler g(block_from_u64(7));
  EXPECT_TRUE(g.R().lsb());
  EXPECT_FALSE(g.R().is_zero());
}

struct SchemeCase {
  Scheme scheme;
  int tt;
};

class GarbleAllGates : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GarbleAllGates, GarbleEvalMatchesTruthTable) {
  const Scheme scheme = static_cast<Scheme>(std::get<0>(GetParam()));
  const auto tt = static_cast<TruthTable>(std::get<1>(GetParam()));
  if (tt_is_affine(tt)) return;  // affine gates are free, never garbled

  Garbler garbler(block_from_u64(99), scheme);
  Evaluator evaluator(scheme);
  const Block r = garbler.R();
  const Block a0 = garbler.fresh_label();
  const Block b0 = garbler.fresh_label();

  GarbledTable table;
  const Block w0 = garbler.garble(a0, b0, tt_and_core(tt), table);
  EXPECT_EQ(table.count, blocks_per_gate(scheme));

  for (const bool va : {false, true}) {
    for (const bool vb : {false, true}) {
      Evaluator ev(scheme);  // fresh tweak sequence per evaluation
      const Block wa = va ? (a0 ^ r) : a0;
      const Block wb = vb ? (b0 ^ r) : b0;
      const Block w = ev.eval(wa, wb, table);
      const bool expect = tt_eval(tt, va, vb);
      EXPECT_EQ(w, expect ? (w0 ^ r) : w0)
          << "tt=" << static_cast<int>(tt) << " va=" << va << " vb=" << vb;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemesAllGates, GarbleAllGates,
                         ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Range(0, 16)));

TEST(Garble, ChainedGatesStayConsistent) {
  // Garble a small DAG: d = (a & b) ^ c ; e = d | a  (the XOR is free).
  Garbler g(block_from_u64(5));
  Evaluator ev;
  const Block r = g.R();
  const Block a0 = g.fresh_label();
  const Block b0 = g.fresh_label();
  const Block c0 = g.fresh_label();

  GarbledTable t1;
  const Block and0 = g.garble(a0, b0, tt_and_core(arm2gc::netlist::kTtAnd), t1);
  const Block d0 = and0 ^ c0;  // free-XOR
  GarbledTable t2;
  const Block e0 = g.garble(d0, a0, tt_and_core(arm2gc::netlist::kTtOr), t2);

  for (int bits = 0; bits < 8; ++bits) {
    const bool va = bits & 1;
    const bool vb = bits & 2;
    const bool vc = bits & 4;
    Evaluator e;
    const Block wa = va ? a0 ^ r : a0;
    const Block wb = vb ? b0 ^ r : b0;
    const Block wc = vc ? c0 ^ r : c0;
    const Block wand = e.eval(wa, wb, t1);
    const Block wd = wand ^ wc;
    const Block we = e.eval(wd, wa, t2);
    const bool expect = ((va && vb) != vc) || va;
    EXPECT_EQ(we, expect ? e0 ^ r : e0) << bits;
  }
}

TEST(Transport, AccountsTrafficClassesBothDirections) {
  InMemoryDuplex duplex;
  Transport& alice = duplex.garbler_end();
  Transport& bob = duplex.evaluator_end();
  alice.send(block_from_u64(1), Traffic::GarbledTable);
  alice.send(block_from_u64(2), Traffic::GarbledTable);
  alice.send(block_from_u64(3), Traffic::InputLabel);
  alice.account(Traffic::Ot, 16);
  bob.send(block_from_u64(4), Traffic::OutputDecode);
  EXPECT_EQ(duplex.stats().garbled_table_bytes, 32u);
  EXPECT_EQ(duplex.stats().input_label_bytes, 16u);
  EXPECT_EQ(duplex.stats().ot_bytes, 16u);
  EXPECT_EQ(duplex.stats().output_bytes, 16u);
  EXPECT_EQ(duplex.stats().total(), 80u);
  EXPECT_EQ(bob.recv(), block_from_u64(1));
  EXPECT_EQ(bob.recv(), block_from_u64(2));
  EXPECT_EQ(bob.recv(), block_from_u64(3));
  EXPECT_EQ(alice.recv(), block_from_u64(4));
  EXPECT_THROW(bob.recv(), std::runtime_error);
  EXPECT_THROW(alice.recv(), std::runtime_error);
}

TEST(Ot, IdealBackendDeliversChosenLabelsAndAccountsFramedBytes) {
  InMemoryDuplex duplex;
  const Block seed = block_from_u64(123);
  auto sender = make_ot_sender(OtBackend::Ideal, duplex.garbler_end(), seed, nullptr);
  auto receiver = make_ot_receiver(OtBackend::Ideal, duplex.evaluator_end(), seed, nullptr);
  const Block x0 = block_from_u64(10);
  const Block x1 = block_from_u64(11);
  Block got0{}, got1{};
  receiver->enqueue(false, &got0);
  receiver->enqueue(true, &got1);
  receiver->request();
  sender->enqueue(x0, x1);
  sender->enqueue(x0, x1);
  sender->flush();
  receiver->finish();
  EXPECT_EQ(got0, x0);
  EXPECT_EQ(got1, x1);
  // The ideal stand-in ships the pair: exactly 32 framed bytes per choice
  // (the constant the accounting used to assume, now an actual frame size).
  EXPECT_EQ(duplex.stats().ot_bytes, 2u * 32u);
  EXPECT_EQ(sender->stats().choices, 2u);
  EXPECT_EQ(receiver->stats().batches, 1u);
}

// Pins the exact garbled-table bytes produced by the pre-AES-NI seed
// implementation (captured with tools/golden_capture.cpp at the portable,
// one-hash-at-a-time revision). Any backend or batching change that alters a
// single ciphertext bit fails here, on every machine and either AES backend.
// The digest computation is shared with the capture tool (gc/golden_digest.h).
TEST(Garble, GoldenTableDigestsStableAcrossBackends) {
  struct GoldenCase {
    Scheme scheme;
    const char* digest;
  };
  const GoldenCase cases[] = {
      {Scheme::HalfGates, "9dbcdbc3bf700c2b83007da5d07655ad"},
      {Scheme::Grr3, "7b828da9d4a0bbcea0995baf5f340f31"},
      {Scheme::Classic4, "1f0ef1f72151a3fd21be9e71edf3597e"},
  };
  for (const GoldenCase& c : cases) {
    EXPECT_EQ(golden_table_digest(c.scheme), c.digest)
        << "scheme=" << static_cast<int>(c.scheme);
  }
}

TEST(Garble, DistinctSeedsDistinctLabels) {
  Garbler g1(block_from_u64(1));
  Garbler g2(block_from_u64(2));
  EXPECT_FALSE(g1.R() == g2.R());
  EXPECT_FALSE(g1.fresh_label() == g2.fresh_label());
}

}  // namespace
