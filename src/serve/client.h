// Evaluator-side client of a GarblerService: one blocking connection, one
// protocol run. The bytes between hello and wrap-up are exactly the
// evaluator endpoint's normal protocol stream, so a served run is
// byte-identical (outputs, table digest, comm accounting) to a
// tools/arm2gc_party two-process run under the same options — the
// differential tests pin it. Unlike the bare protocol, the service's
// wrap-up hands the decoded output bits back, so Bob learns the result
// here (the serving deployment's contract; the bare two-party protocol
// leaves that choice to the application).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/party.h"
#include "netlist/netlist.h"
#include "serve/wire.h"

namespace arm2gc::serve {

/// Thrown when the service turns the hello down (busy, unknown program,
/// option mismatch, ...) — a protocol outcome, distinct from transport
/// failures (gc::TransportClosed) and run failures (std::runtime_error).
class ServiceRejected : public std::runtime_error {
 public:
  explicit ServiceRejected(HelloStatus status)
      : std::runtime_error(std::string("serve: service rejected hello: ") +
                           hello_status_name(status)),
        status_(status) {}
  [[nodiscard]] HelloStatus status() const { return status_; }

 private:
  HelloStatus status_;
};

struct ClientOptions {
  std::string program;
  gc::Scheme scheme = gc::Scheme::HalfGates;
  gc::OtBackend ot_backend = gc::OtBackend::Ideal;
  std::size_t ot_pool = gc::kDefaultOtPoolBatch;
  /// Cycle schedule; must match the service's registered spec (the hello
  /// cross-checks fixed_cycles/max_cycles, and halt_wire divergence is
  /// caught by the digest check).
  std::optional<std::uint64_t> fixed_cycles;
  std::optional<netlist::WireId> halt_wire;
  std::uint64_t max_cycles = 1u << 20;
  crypto::Block protocol_seed = core::kDefaultProtocolSeed;
  /// This client's own randomness; defaults to the protocol seed (which
  /// keeps served runs byte-identical to the in-process reference).
  std::optional<crypto::Block> private_seed;
  std::size_t threads = 1;
  std::size_t cone_target_gates = 512;
  int connect_timeout_ms = 10'000;
  /// Inline-wait deadline while the service garbles; <= 0 waits forever.
  int recv_timeout_ms = 60'000;
};

struct ClientResult {
  netlist::BitVec outputs;  ///< final outputs, decoded by the service
  std::uint64_t cycles = 0;
  std::uint64_t final_cycle = 0;
  std::uint64_t garbled_non_xor = 0;
  crypto::Block table_digest{};  ///< cross-checked against the service's
  gc::CommStats service_sent;    ///< the service's accounted sent bytes
  gc::CommStats client_sent;     ///< this side's accounted sent bytes
  core::RunStats stats;          ///< evaluator-side run stats

  /// Both directions together — equals the in-process duplex total of an
  /// identical run.
  [[nodiscard]] gc::CommStats comm_total() const {
    gc::CommStats c = client_sent;
    c.garbled_table_bytes += service_sent.garbled_table_bytes;
    c.input_label_bytes += service_sent.input_label_bytes;
    c.ot_bytes += service_sent.ot_bytes;
    c.output_bytes += service_sent.output_bytes;
    return c;
  }
};

/// Connects, runs one served execution of `copts.program`, verifies the
/// wrap-up cross-check and returns the decoded result. `nl` must be the
/// same netlist the service registered under that name; `warm` (optional)
/// is a Role::Evaluator WarmState for repeat runs. Throws ServiceRejected,
/// gc::TransportClosed or std::runtime_error.
[[nodiscard]] ClientResult run_client(const std::string& host, std::uint16_t port,
                                      const netlist::Netlist& nl, const ClientOptions& copts,
                                      const netlist::BitVec& bob_bits,
                                      const netlist::BitVec& pub_bits = {},
                                      const core::StreamProvider* streams = nullptr,
                                      core::WarmState* warm = nullptr);

}  // namespace arm2gc::serve
