// Table 4: garbling the ARM processor with conventional GC vs with SkipGate.
// The conventional cost is exact and computed analytically: every one of the
// processor's non-free gates is garbled every cycle (cycles x non-XOR
// gates); the SkipGate cost is measured by running the protocol.
#include <vector>

#include "arm/arm2gc.h"
#include "bench_util.h"
#include "crypto/rng.h"
#include "programs/programs.h"

using namespace arm2gc;
using benchutil::num;

namespace {

std::vector<std::uint32_t> rand_words(crypto::CtrRng& rng, std::size_t n) {
  std::vector<std::uint32_t> v(n);
  for (auto& w : v) w = static_cast<std::uint32_t>(rng.next_u64());
  return v;
}

void run_row(const programs::Program& p, const std::vector<std::uint32_t>& a,
             const std::vector<std::uint32_t>& b, std::uint64_t paper_wo,
             std::uint64_t paper_w) {
  const arm::Arm2Gc machine(p.cfg, p.words);
  const auto r = machine.run(a, b);
  const std::uint64_t wo = machine.conventional_non_xor(r.cycles);
  std::printf("%-16s paper %15s /%10s   ours %15s /%10s   improv %8s (paper %s)  %s\n",
              p.name.c_str(), num(paper_wo).c_str(), num(paper_w).c_str(), num(wo).c_str(),
              num(r.stats.garbled_non_xor).c_str(),
              benchutil::improv_ratio(wo, r.stats.garbled_non_xor).c_str(),
              benchutil::improv_ratio(paper_wo, paper_w).c_str(),
              benchutil::stats_brief(r.stats).c_str());
  benchutil::json_stats(p.name, r.stats);
  if (benchutil::json().enabled()) benchutil::json().add(p.name + ".conventional_non_xor", wo);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::parse_args(argc, argv);
  benchutil::header("Table 4: conventional GC vs SkipGate on the garbled ARM");
  std::printf("(columns: garbled non-XOR w/o SkipGate (exact: cycles x %s-gate core) / w/)\n\n",
              "non-free");
  crypto::CtrRng rng(crypto::block_from_u64(404));

  run_row(programs::sum(1), rand_words(rng, 1), rand_words(rng, 1), 3817680, 31);
  run_row(programs::sum(32), rand_words(rng, 32), rand_words(rng, 32), 76483260, 1023);
  run_row(programs::compare(1), rand_words(rng, 1), rand_words(rng, 1), 4072192, 130);
  run_row(programs::compare(512), rand_words(rng, 512), rand_words(rng, 512), 1047095280,
          16384);
  run_row(programs::hamming(1), rand_words(rng, 1), rand_words(rng, 1), 67063912, 57);
  run_row(programs::hamming(5), rand_words(rng, 5), rand_words(rng, 5), 242931704, 247);
  run_row(programs::hamming(16), rand_words(rng, 16), rand_words(rng, 16), 863559216, 1012);
  run_row(programs::mult32(), rand_words(rng, 1), rand_words(rng, 1), 4199448, 993);
  run_row(programs::matmult(3), rand_words(rng, 9), rand_words(rng, 9), 72790432, 27369);
  run_row(programs::matmult(5), rand_words(rng, 25), rand_words(rng, 25), 286071488, 127225);
  run_row(programs::matmult(8), rand_words(rng, 64), rand_words(rng, 64), 1079894416, 522304);
  std::printf("\n(SHA3/AES rows of the paper require the bitsliced ARM ports; their circuit-\n"
              "path equivalents appear in bench_table1. Improvements here span 10^3-10^6x,\n"
              "matching the paper's shape: idle-component-heavy functions benefit most.)\n");
  return benchutil::finish();
}
