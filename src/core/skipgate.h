// SkipGate (paper §3): per-clock-cycle, gate-level elision of garbling work.
//
// The paper's algorithms 1-6 interleave bookkeeping with garbling and filter
// dead garbled tables at the end of each cycle. We restructure this — with
// identical externally visible behaviour — as a deterministic two-pass *plan*
// per cycle that both parties compute independently from public data only:
//
//   Forward pass   classify every gate (categories i-iv) using public wire
//                  values and secret-wire fingerprints; a fingerprint is a
//                  deterministic public alias for the XOR-combination of base
//                  labels a wire carries, so "fingerprints equal (+flip)" is
//                  exactly the paper's "identical or inverted labels" test
//                  (§3.3) without touching any key material.
//   Backward pass  from the sampled outputs and flip-flop D-inputs, sweep
//                  "needed" backwards; a category-iv gate is emitted iff its
//                  output is needed. This reaches the same fixpoint as the
//                  paper's recursive label_fanout reduction (label_fanout>0
//                  iff needed) and makes Alice's table list and Bob's
//                  expectations agree by construction.
//
// The driver runs garbler and evaluator over the shared plan; only garbled
// tables, input labels and output labels cross the channel.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "crypto/block.h"
#include "gc/channel.h"
#include "gc/garble.h"
#include "netlist/netlist.h"

namespace arm2gc::core {

/// SkipGate = the paper's protocol; Conventional = classic sequential GC that
/// treats every wire (including constants, public inputs and known initial
/// values) as secret — the "w/o SkipGate" baseline of Tables 1 and 4.
enum class Mode : std::uint8_t { SkipGate, Conventional };

struct RunStats {
  std::uint64_t cycles = 0;
  /// Garbled tables actually transferred: the paper's "# of Garbled Non-XOR".
  std::uint64_t garbled_non_xor = 0;
  /// Non-affine gate slots (gate x cycle) that were *not* garbled.
  std::uint64_t skipped_non_xor = 0;
  /// Non-affine gate slots encountered = count_non_free() x cycles; equals
  /// the conventional-GC cost of the same run.
  std::uint64_t non_xor_slots = 0;
  gc::CommStats comm;
};

struct RunOptions {
  Mode mode = Mode::SkipGate;
  gc::Scheme scheme = gc::Scheme::HalfGates;
  /// Run exactly this many cycles (sequential circuits with a known schedule).
  std::optional<std::uint64_t> fixed_cycles;
  /// Public wire that announces termination (the processor's halt signal);
  /// the cycle where it becomes 1 is the final cycle. Must be public.
  std::optional<netlist::WireId> halt_wire;
  /// Safety bound when running halt-driven.
  std::uint64_t max_cycles = 1u << 20;
  crypto::Block seed{0x4152433247430100ULL, 0x736b697067617465ULL};
};

/// Per-cycle bit provider for streamed inputs (bit-serial circuits). Index i
/// must cover every Input with streamed=true and bit_index==i of that owner.
struct StreamProvider {
  std::function<netlist::BitVec(std::uint64_t cycle)> alice;
  std::function<netlist::BitVec(std::uint64_t cycle)> bob;
  std::function<netlist::BitVec(std::uint64_t cycle)> pub;
};

struct RunResult {
  /// Outputs of every sampled cycle (every cycle if outputs_every_cycle,
  /// otherwise just the final one).
  std::vector<netlist::BitVec> sampled_outputs;
  /// Convenience: the last sampled outputs.
  netlist::BitVec final_outputs;
  std::uint64_t final_cycle = 0;  ///< index of the last executed cycle
  RunStats stats;
};

/// Two-party sequential garbling driver (garbler + evaluator in-process,
/// exchanging data only through a byte-accounted channel).
class SkipGateDriver {
 public:
  SkipGateDriver(const netlist::Netlist& nl, RunOptions opts);

  /// Executes the protocol. `alice_bits`/`bob_bits`/`pub_bits` bind fixed
  /// inputs and flip-flop initial values (shared index space per owner).
  RunResult run(const netlist::BitVec& alice_bits, const netlist::BitVec& bob_bits,
                const netlist::BitVec& pub_bits = {}, const StreamProvider* streams = nullptr);

 private:
  const netlist::Netlist& nl_;
  RunOptions opts_;
};

}  // namespace arm2gc::core
