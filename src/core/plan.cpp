#include "core/plan.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>

#include "core/workpool.h"

namespace arm2gc::core {

namespace {

using crypto::Block;
using netlist::Dff;
using netlist::Gate;
using netlist::Netlist;
using netlist::Owner;
using netlist::WireId;

constexpr WireId kNoWire = 0xffffffffu;

WireState pub_state(bool v) {
  WireState s;
  s.is_pub = true;
  s.val = v;
  return s;
}

std::uint8_t pack_bits(const WireState& s) {
  return static_cast<std::uint8_t>((s.is_pub ? 1u : 0u) | (s.val ? 2u : 0u) |
                                   (s.flip ? 4u : 0u));
}

std::uint64_t fnv1a64(const std::vector<std::uint32_t>& v) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint32_t x : v) {
    h ^= x;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv1a64_u64(const std::vector<std::uint64_t>& v) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t x : v) {
    h ^= x;
    h *= 1099511628211ull;
  }
  return h;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t fnv1a64_step(std::uint64_t h, std::uint64_t x) {
  h ^= x;
  h *= 1099511628211ull;
  return h;
}

/// Content hash of everything a cached plan depends on besides the entry
/// state: the mode and the netlist structure (names excluded — they cannot
/// affect classification).
std::uint64_t netlist_content_key(const Netlist& nl, Mode mode) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a64_step(h, static_cast<std::uint64_t>(mode));
  h = fnv1a64_step(h, nl.outputs_every_cycle ? 1 : 0);
  for (const netlist::Input& in : nl.inputs) {
    h = fnv1a64_step(h, static_cast<std::uint64_t>(in.owner) | (in.streamed ? 4u : 0u) |
                            (static_cast<std::uint64_t>(in.bit_index) << 3));
  }
  for (const Dff& d : nl.dffs) {
    h = fnv1a64_step(h, static_cast<std::uint64_t>(d.init) | (d.d_invert ? 4u : 0u) |
                            (static_cast<std::uint64_t>(d.init_index) << 3) |
                            (static_cast<std::uint64_t>(d.d) << 32));
  }
  for (const Gate& g : nl.gates) {
    h = fnv1a64_step(h, static_cast<std::uint64_t>(g.a) | (static_cast<std::uint64_t>(g.b) << 32));
    h = fnv1a64_step(h, static_cast<std::uint64_t>(g.tt));
  }
  for (const netlist::OutputPort& o : nl.outputs) {
    h = fnv1a64_step(h, static_cast<std::uint64_t>(o.wire) | (o.invert ? 1ull << 32 : 0));
  }
  return h;
}

/// Folds a unary residual function of a surviving secret input into a plan
/// action (constant output, wire, or inverter — paper Figures 1 and 2).
void classify_unary(netlist::UnaryTable u, const WireState& in, bool pass_is_a, PlanAct& act,
                    WireState& out) {
  if (netlist::unary_is_const(u)) {
    act = PlanAct::Public;
    out = pub_state(u == netlist::kUnOne);
    return;
  }
  act = pass_is_a ? PlanAct::PassA : PlanAct::PassB;
  out = in;
  if (u == netlist::kUnNot) out.flip = !out.flip;
}

/// Follows pass-style actions back to the wire whose label a wire carries.
WireId resolve_pass(const Netlist& nl, const std::uint8_t* acts, const WireId* pass_srcs,
                    WireId w) {
  const WireId first_gate = nl.first_gate_wire();
  for (int hops = 0; hops < 64 && w >= first_gate; ++hops) {
    const std::size_t gi = w - first_gate;
    switch (static_cast<PlanAct>(acts[gi])) {
      case PlanAct::PassA: w = nl.gates[gi].a; break;
      case PlanAct::PassB: w = nl.gates[gi].b; break;
      case PlanAct::PassSrc: w = pass_srcs[gi]; break;
      default: return w;
    }
  }
  return w;
}

/// For a free XOR of wires (wa, wb): if either side resolves to a FreeXor
/// gate one of whose operands' fingerprint equals the result fingerprint,
/// the other operand cancels and the result is a plain wire. Returns the
/// surviving source wire or kNoWire. `is_pub` reads the stitched wire bits,
/// so classification and hit verification share one decision procedure.
template <typename IsPubFn>
WireId find_cancellation(const Netlist& nl, const std::uint8_t* acts, const WireId* pass_srcs,
                         const std::vector<WireState>& st, IsPubFn&& is_pub, WireId wa,
                         WireId wb, const Block& out_fp) {
  const WireId first_gate = nl.first_gate_wire();
  for (const WireId side : {wa, wb}) {
    const WireId r = resolve_pass(nl, acts, pass_srcs, side);
    if (r < first_gate) continue;
    const std::size_t gi = r - first_gate;
    if (static_cast<PlanAct>(acts[gi]) != PlanAct::FreeXor) continue;
    const Gate& g2 = nl.gates[gi];
    if (!is_pub(g2.a) && st[g2.a].fp == out_fp) return g2.a;
    if (!is_pub(g2.b) && st[g2.b].fp == out_fp) return g2.b;
  }
  return kNoWire;
}

}  // namespace

// ---------------------------------------------------------------------------
// PlanLayout: one-time cone segmentation
// ---------------------------------------------------------------------------

PlanLayout PlanLayout::build(const Netlist& nl, std::size_t target_gates,
                             std::uint64_t netlist_key) {
  PlanLayout layout;
  const std::size_t ng = nl.gates.size();
  const WireId first_gate = nl.first_gate_wire();
  std::size_t target = target_gates;
  if (target == 0 || target > ng) target = std::max<std::size_t>(ng, 1);

  // Fanout frontier profile: cross[c] counts the wires produced before gate
  // c that are still consumed at or after it. Wires feeding flip-flop
  // D-inputs or output ports stay live to the end of the cycle.
  std::vector<std::uint32_t> last(ng, 0);
  std::vector<std::uint8_t> used(ng, 0);
  for (std::size_t j = 0; j < ng; ++j) {
    for (const WireId w : {nl.gates[j].a, nl.gates[j].b}) {
      if (w >= first_gate) {
        last[w - first_gate] = static_cast<std::uint32_t>(j);
        used[w - first_gate] = 1;
      }
    }
  }
  for (const Dff& d : nl.dffs) {
    if (d.d >= first_gate) {
      last[d.d - first_gate] = static_cast<std::uint32_t>(ng);
      used[d.d - first_gate] = 1;
    }
  }
  for (const netlist::OutputPort& o : nl.outputs) {
    if (o.wire >= first_gate) {
      last[o.wire - first_gate] = static_cast<std::uint32_t>(ng);
      used[o.wire - first_gate] = 1;
    }
  }
  std::vector<std::int64_t> diff(ng + 2, 0);
  for (std::size_t i = 0; i < ng; ++i) {
    if (used[i] != 0 && last[i] > i) {
      diff[i + 1] += 1;
      diff[last[i] + 1] -= 1;
    }
  }
  std::vector<std::uint64_t> cross(ng + 1, 0);
  std::int64_t acc = 0;
  for (std::size_t c = 0; c <= ng; ++c) {
    acc += diff[c];
    cross[c] = static_cast<std::uint64_t>(acc);
  }

  // Cut selection: near every multiple of the target size, pick the position
  // in a +/- target/4 window that the fewest wires cross (ties: earliest).
  // Deterministic, so both parties derive the identical layout.
  std::vector<std::size_t> ends;
  std::size_t pos = 0;
  while (ng - pos > target + target / 2) {
    const std::size_t ideal = pos + target;
    std::size_t lo = std::max(pos + std::max<std::size_t>(target / 2, 1), ideal - target / 4);
    std::size_t hi = std::min(ng - 1, ideal + target / 4);
    if (lo > hi) lo = hi;
    std::size_t best = lo;
    for (std::size_t c = lo + 1; c <= hi; ++c) {
      if (cross[c] < cross[best]) best = c;
    }
    ends.push_back(best);
    pos = best;
  }
  if (ng > 0) ends.push_back(ng);

  // Segment boundaries (the distinct external wires each segment reads) and
  // producer-segment dependency edges (the dirty-cascade graph).
  std::vector<std::uint32_t> stamp(nl.num_wires(), 0);
  std::vector<std::uint8_t> any_boundary(nl.num_wires(), 0);
  std::vector<std::uint32_t> gate_to_seg(ng, 0);
  std::uint32_t cur_stamp = 0;
  std::size_t seg_start = 0;
  for (const std::size_t end : ends) {
    PlanSegment seg;
    seg.first_gate = static_cast<std::uint32_t>(seg_start);
    seg.count = static_cast<std::uint32_t>(end - seg_start);
    const WireId seg_first_wire = first_gate + static_cast<WireId>(seg_start);
    ++cur_stamp;
    for (std::size_t j = seg_start; j < end; ++j) {
      gate_to_seg[j] = static_cast<std::uint32_t>(layout.segments.size());
      for (const WireId w : {nl.gates[j].a, nl.gates[j].b}) {
        if (w < seg_first_wire && stamp[w] != cur_stamp) {
          stamp[w] = cur_stamp;
          seg.boundary.push_back(w);
          if (!any_boundary[w]) {
            any_boundary[w] = 1;
            ++layout.unique_boundary;
          }
        }
      }
    }
    std::sort(seg.boundary.begin(), seg.boundary.end());
    seg.root_count = static_cast<std::uint32_t>(
        std::lower_bound(seg.boundary.begin(), seg.boundary.end(), first_gate) -
        seg.boundary.begin());
    for (std::size_t k = seg.root_count; k < seg.boundary.size(); ++k) {
      seg.deps.push_back(gate_to_seg[seg.boundary[k] - first_gate]);
    }
    std::sort(seg.deps.begin(), seg.deps.end());
    seg.deps.erase(std::unique(seg.deps.begin(), seg.deps.end()), seg.deps.end());
    layout.max_boundary = std::max(layout.max_boundary, seg.boundary.size());
    layout.total_boundary += seg.boundary.size();
    layout.segments.push_back(std::move(seg));
    seg_start = end;
  }

  std::uint64_t h = fnv1a64_step(netlist_key, layout.segments.size());
  for (const PlanSegment& s : layout.segments) {
    h = fnv1a64_step(h, static_cast<std::uint64_t>(s.first_gate) |
                            (static_cast<std::uint64_t>(s.count) << 32));
  }
  layout.key = h;
  return layout;
}

// ---------------------------------------------------------------------------
// PlanCache: whole-netlist plans, LRU-bounded
// ---------------------------------------------------------------------------

PlanCache::PlanCache(std::size_t budget_bytes, bool insert_on_first_sight)
    : budget_bytes_(budget_bytes), insert_first_(insert_on_first_sight) {}
PlanCache::~PlanCache() = default;

void PlanCache::ensure_sized(std::uint64_t netlist_key, std::size_t num_wires,
                             std::size_t num_gates, std::size_t roots) {
  if (capacity_ != 0) {
    if (netlist_key_ != netlist_key) {
      throw std::invalid_argument("plan cache reused across different netlists");
    }
    return;
  }
  netlist_key_ = netlist_key;
  // Rough per-entry footprint: signature + acts + pass sources + packed
  // wire bits + touch list + two backward variants (emit + live each).
  const std::size_t entry_bytes = 4 * roots + num_gates + 4 * num_gates + num_wires +
                                  4 * num_gates + 256;
  capacity_ = std::clamp<std::size_t>(budget_bytes_ / std::max<std::size_t>(entry_bytes, 1), 4,
                                      65536);
  if (!insert_first_) seen_.resize(next_pow2(8 * capacity_));
}

/// Whether a missed signature should be materialized as a cache entry now.
/// First-sight caches always admit; second-sighting caches admit once the
/// hash has been seen before (hash collisions merely admit early — lookups
/// always compare full signatures).
bool PlanCache::admit(std::uint64_t hash) {
  if (insert_first_) return true;
  const std::size_t mask = seen_.size() - 1;
  const std::uint64_t key = hash != 0 ? hash : 1;
  for (std::size_t i = static_cast<std::size_t>(key) & mask;; i = (i + 1) & mask) {
    if (seen_[i] == key) return true;
    if (seen_[i] == 0) {
      // Mark first sighting; once half-full, stop tracking (and admitting)
      // so probe chains stay short and memory stays bounded.
      if (seen_count_ < seen_.size() / 2) {
        seen_[i] = key;
        ++seen_count_;
      }
      return false;
    }
  }
}

PlanCache::Entry* PlanCache::find(std::uint64_t hash, const std::vector<std::uint32_t>& sig) {
  const auto it = map_.find(hash);
  if (it == map_.end()) return nullptr;
  for (const LruList::iterator li : it->second) {
    if (li->sig == sig) {
      lru_.splice(lru_.begin(), lru_, li);
      return &*li;
    }
  }
  return nullptr;
}

PlanCache::Entry* PlanCache::insert(std::uint64_t hash, const std::vector<std::uint32_t>& sig) {
  if (!admit(hash)) return nullptr;
  if (lru_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    const auto vit = map_.find(victim.hash);
    for (auto i = vit->second.begin(); i != vit->second.end(); ++i) {
      if (&**i == &victim) {
        vit->second.erase(i);
        break;
      }
    }
    if (vit->second.empty()) map_.erase(vit);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front();
  Entry& e = lru_.front();
  e.hash = hash;
  e.sig = sig;
  map_[hash].push_back(lru_.begin());
  return &e;
}

// ---------------------------------------------------------------------------
// ConeMemo: per-segment forward classifications, LRU-bounded
// ---------------------------------------------------------------------------

ConeMemo::ConeMemo(std::size_t budget_bytes) : budget_bytes_(budget_bytes) {}
ConeMemo::~ConeMemo() = default;

void ConeMemo::ensure_sized(std::uint64_t layout_key, const PlanLayout& layout) {
  if (capacity_ != 0) {
    if (layout_key_ != layout_key) {
      throw std::invalid_argument("cone memo reused across different netlists or layouts");
    }
    return;
  }
  layout_key_ = layout_key;
  const std::size_t nseg = std::max<std::size_t>(layout.segments.size(), 1);
  std::size_t gates = 0;
  for (const PlanSegment& s : layout.segments) gates += s.count;
  // Per-entry footprint: one segment's act + pass_src + out_bits + touch
  // slices plus its boundary key plus node/map overhead.
  const std::size_t entry_bytes =
      10 * (gates / nseg) + 8 * (layout.total_boundary / nseg) + 160;
  capacity_ = std::clamp<std::size_t>(budget_bytes_ / std::max<std::size_t>(entry_bytes, 1), 8,
                                      std::size_t{1} << 18);
}

ConeMemo::Entry* ConeMemo::find(std::uint32_t segment, std::uint64_t hash,
                                const std::vector<std::uint64_t>& key, std::size_t* after) {
  const auto it = map_.find(hash);
  if (it == map_.end()) return nullptr;
  for (std::size_t k = *after; k < it->second.size(); ++k) {
    const LruList::iterator li = it->second[k];
    if (li->segment == segment && li->key == key) {
      *after = k + 1;
      lru_.splice(lru_.begin(), lru_, li);
      return &*li;
    }
  }
  *after = it->second.size();
  return nullptr;
}

const ConeMemo::Entry* ConeMemo::peek(std::uint32_t segment, std::uint64_t hash,
                                      const std::vector<std::uint64_t>& key,
                                      std::size_t* after) const {
  const auto it = map_.find(hash);
  if (it == map_.end()) return nullptr;
  for (std::size_t k = *after; k < it->second.size(); ++k) {
    const LruList::iterator li = it->second[k];
    if (li->segment == segment && li->key == key) {
      *after = k + 1;
      return &*li;
    }
  }
  *after = it->second.size();
  return nullptr;
}

void ConeMemo::touch_candidates(std::uint32_t segment, std::uint64_t hash,
                                const std::vector<std::uint64_t>& key, std::size_t probed) {
  if (probed == 0) return;
  const auto it = map_.find(hash);
  if (it == map_.end()) return;
  // Splicing a list node moves it without invalidating iterators, so the
  // bucket vector replays exactly the candidate sequence peek() walked;
  // candidates evicted meanwhile (by this cycle's earlier inserts) are no
  // longer in the bucket and are skipped.
  std::size_t touched = 0;
  for (std::size_t k = 0; k < it->second.size() && touched < probed; ++k) {
    const LruList::iterator li = it->second[k];
    if (li->segment == segment && li->key == key) {
      lru_.splice(lru_.begin(), lru_, li);
      ++touched;
    }
  }
}

ConeMemo::Entry* ConeMemo::insert(std::uint32_t segment, std::uint64_t hash,
                                  const std::vector<std::uint64_t>& key) {
  if (lru_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    const auto vit = map_.find(victim.hash);
    for (auto i = vit->second.begin(); i != vit->second.end(); ++i) {
      if (&**i == &victim) {
        vit->second.erase(i);
        break;
      }
    }
    if (vit->second.empty()) map_.erase(vit);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front();
  Entry& e = lru_.front();
  e.segment = segment;
  e.hash = hash;
  e.slice_id = ++next_slice_id_;  // unique forever: ids are never reused
  e.key = key;
  map_[hash].push_back(lru_.begin());
  return &e;
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

Planner::Planner(const Netlist& nl, const PlannerOptions& opts)
    : nl_(nl),
      opts_(opts),
      fp_gen_(opts.seed ^ Block{0xf1f2f3f4f5f6f7f8ULL, 0x0102030405060708ULL}) {
  nl_.validate();
  const std::size_t nw = nl_.num_wires();
  st_.resize(nw);
  needed_.assign(nw, 0);
  non_free_per_cycle_ = nl_.count_non_free();
  netlist_key_ = netlist_content_key(nl_, opts_.mode);
  layout_ = PlanLayout::build(nl_, opts_.cone_target_gates, netlist_key_);

  const std::size_t roots = netlist::kFirstInputWire + nl_.inputs.size() + nl_.dffs.size();
  if (opts_.cache) {
    if (opts_.shared_cache != nullptr) {
      cache_ = opts_.shared_cache;
    } else {
      // Transient per-run cache: second-sighting admission, so cycles whose
      // state never recurs cost a signature probe, not an entry copy.
      owned_cache_ = std::make_unique<PlanCache>(opts_.cache_budget_bytes,
                                                 /*insert_on_first_sight=*/false);
      cache_ = owned_cache_.get();
    }
    cache_->ensure_sized(netlist_key_, nw, nl_.gates.size(), roots);
  }
  if (opts_.cone_memo) {
    if (opts_.shared_cone_memo != nullptr) {
      memo_ = opts_.shared_cone_memo;
    } else {
      owned_memo_ = std::make_unique<ConeMemo>(opts_.cone_memo_budget_bytes);
      memo_ = owned_memo_.get();
    }
    memo_->ensure_sized(layout_.key, layout_);

    // Dirty-sweep state: the previous-cycle snapshot and a CSR reverse index
    // from root wires to the segments that read them.
    const WireId first_gate = nl_.first_gate_wire();
    prev_act_.resize(nl_.gates.size());
    prev_pass_src_.resize(nl_.gates.size());
    prev_bits_.resize(nw);
    prev_sig_.resize(first_gate);
    prev_touch_off_.resize(layout_.segments.size() + 1);
    seg_changed_.assign(layout_.segments.size(), 1);
    seg_dirty_.assign(layout_.segments.size(), 1);
    slice_ids_.assign(layout_.segments.size(), 0);
    backward_capacity_ = std::clamp<std::size_t>(
        opts_.cone_memo_budget_bytes / (2 * std::max<std::size_t>(nl_.gates.size(), 1) + 128),
        4, 1024);
    for (const netlist::OutputPort& o : nl_.outputs) {
      if (o.wire < first_gate) backward_root_wires_.push_back(o.wire);
    }
    for (const Dff& d : nl_.dffs) {
      if (d.d < first_gate) backward_root_wires_.push_back(d.d);
    }
    std::sort(backward_root_wires_.begin(), backward_root_wires_.end());
    backward_root_wires_.erase(
        std::unique(backward_root_wires_.begin(), backward_root_wires_.end()),
        backward_root_wires_.end());
    root_consumer_offsets_.assign(first_gate + 1, 0);
    for (const PlanSegment& seg : layout_.segments) {
      for (std::uint32_t k = 0; k < seg.root_count; ++k) {
        ++root_consumer_offsets_[seg.boundary[k] + 1];
      }
    }
    for (WireId w = 0; w < first_gate; ++w) {
      root_consumer_offsets_[w + 1] += root_consumer_offsets_[w];
    }
    root_consumers_.resize(root_consumer_offsets_[first_gate]);
    std::vector<std::uint32_t> cursor(root_consumer_offsets_.begin(),
                                      root_consumer_offsets_.end() - 1);
    for (std::size_t si = 0; si < layout_.segments.size(); ++si) {
      const PlanSegment& seg = layout_.segments[si];
      for (std::uint32_t k = 0; k < seg.root_count; ++k) {
        root_consumers_[cursor[seg.boundary[k]]++] = static_cast<std::uint32_t>(si);
      }
    }
  }
  if (cache_ != nullptr || memo_ != nullptr) {
    class_table_.resize(std::max<std::size_t>(16, next_pow2(2 * roots + 1)));
  }
  slices_.reserve(layout_.segments.size());

  // Flatten the per-segment dependency lists into the CSR that schedules
  // cone-parallel work (and rides along in every CyclePlan).
  const std::size_t nseg = layout_.segments.size();
  slice_dep_offsets_.assign(nseg + 1, 0);
  for (std::size_t si = 0; si < nseg; ++si) {
    slice_dep_offsets_[si + 1] =
        slice_dep_offsets_[si] + static_cast<std::uint32_t>(layout_.segments[si].deps.size());
  }
  slice_dep_edges_.reserve(slice_dep_offsets_[nseg]);
  for (const PlanSegment& s : layout_.segments) {
    slice_dep_edges_.insert(slice_dep_edges_.end(), s.deps.begin(), s.deps.end());
  }
  seg_touch_.resize(nseg);
  seg_ok_.assign(nseg, 1);
  if (memo_ != nullptr) {
    seg_keys_.resize(nseg);
    seg_hash_.assign(nseg, 0);
    seg_probes_.assign(nseg, 0);
    seg_adopt_id_.assign(nseg, 0);
    seg_result_.assign(nseg, 0);
  }
}

Block Planner::fresh_fp() {
  if (fp_pos_ == kFpBatch) {
    for (std::size_t i = 0; i < kFpBatch; ++i) {
      fp_buf_[i] = crypto::block_from_u64(fp_ctr_++);
    }
    fp_gen_.encrypt_batch(fp_buf_.data(), kFpBatch);
    fp_pos_ = 0;
  }
  return fp_buf_[fp_pos_++];
}

Block Planner::derived_fp(std::size_t gate) const {
  // Top plaintext bit set: disjoint from the root stream's {counter, 0}
  // plaintexts, so derived and root fingerprints never collide and are
  // jointly pseudorandom under the one keyed permutation.
  return fp_gen_.encrypt(Block{static_cast<std::uint64_t>(gate), (1ull << 63) | fp_epoch_});
}

void Planner::bind_secret_fp(WireState& s) {
  s.is_pub = false;
  s.val = false;
  s.flip = false;
  s.fp = fresh_fp();
}

void Planner::reset(const netlist::BitVec& pub_bits) {
  const auto pub_bit = [&](std::uint32_t idx, const char* what) {
    if (idx >= pub_bits.size()) {
      throw std::out_of_range(std::string("skipgate: missing ") + what + " bit " +
                              std::to_string(idx));
    }
    return pub_bits[idx];
  };

  // Constants. Conventional GC treats even constants as secret wires; the
  // planner tracks them with fingerprints like any other secret.
  if (opts_.mode == Mode::SkipGate) {
    const_st_[0] = pub_state(false);
    const_st_[1] = pub_state(true);
  } else {
    bind_secret_fp(const_st_[0]);
    bind_secret_fp(const_st_[1]);
  }

  // Fixed primary inputs: public ones carry their value (SkipGate mode);
  // secret ones carry a fresh fingerprint. Values of secret inputs never
  // reach the planner — it consumes public data only.
  fixed_st_.assign(nl_.inputs.size(), WireState{});
  for (std::size_t i = 0; i < nl_.inputs.size(); ++i) {
    const netlist::Input& in = nl_.inputs[i];
    if (in.streamed) continue;
    if (in.owner == Owner::Public && opts_.mode == Mode::SkipGate) {
      fixed_st_[i] = pub_state(pub_bit(in.bit_index, "fixed input"));
    } else {
      bind_secret_fp(fixed_st_[i]);
    }
  }

  // Flip-flop initial values.
  dff_st_.assign(nl_.dffs.size(), WireState{});
  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    const Dff& d = nl_.dffs[i];
    const bool const_init = d.init == Dff::Init::Zero || d.init == Dff::Init::One;
    if (const_init && opts_.mode == Mode::SkipGate) {
      dff_st_[i] = pub_state(d.init == Dff::Init::One);
    } else {
      bind_secret_fp(dff_st_[i]);
    }
  }

  cur_ = nullptr;
  prev_ok_ = false;
}

void Planner::begin_cycle(const netlist::BitVec& pub_stream) {
  st_[netlist::kConst0] = const_st_[0];
  st_[netlist::kConst1] = const_st_[1];

  for (std::size_t i = 0; i < nl_.inputs.size(); ++i) {
    const netlist::Input& in = nl_.inputs[i];
    const WireId w = nl_.input_wire(i);
    if (!in.streamed) {
      st_[w] = fixed_st_[i];
      continue;
    }
    if (in.owner == Owner::Public && opts_.mode == Mode::SkipGate) {
      if (in.bit_index >= pub_stream.size()) {
        throw std::out_of_range("skipgate: missing streamed input bit " +
                                std::to_string(in.bit_index));
      }
      st_[w] = pub_state(pub_stream[in.bit_index]);
    } else {
      bind_secret_fp(st_[w]);
    }
  }

  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    st_[nl_.dff_wire(i)] = dff_st_[i];
  }
}

void Planner::build_signature() {
  // Class ids are first-occurrence over the root sweep — the canonical
  // whole-netlist entry signature.
  const WireId first_gate = nl_.first_gate_wire();
  sig_.clear();
  sig_.reserve(first_gate);
  ++class_epoch_;
  std::uint32_t next_class = 0;
  const std::size_t mask = class_table_.size() - 1;
  const auto class_of = [&](const Block& fp) {
    std::size_t i = std::hash<Block>{}(fp)&mask;
    for (;;) {
      ClassSlot& slot = class_table_[i];
      if (slot.epoch != class_epoch_) {
        slot.epoch = class_epoch_;
        slot.fp = fp;
        slot.id = next_class++;
        return slot.id;
      }
      if (slot.fp == fp) return slot.id;
      i = (i + 1) & mask;
    }
  };
  for (WireId w = 0; w < first_gate; ++w) {
    const WireState& s = st_[w];
    if (s.is_pub) {
      sig_.push_back(1u | (s.val ? 2u : 0u));
    } else {
      sig_.push_back((class_of(s.fp) << 2) | (s.flip ? 2u : 0u));
    }
  }
}

void Planner::build_segment_key(std::size_t si, const PlanSegment& seg,
                                std::vector<std::uint64_t>& out) const {
  // Cheap pure gathers: boundary roots contribute their root-signature
  // words verbatim (pinning publicness/value/flip and the fingerprint
  // equivalence pattern over the root sweep); boundary internals contribute
  // their packed bits. The key deliberately carries no internal fingerprint
  // structure — that is discrimination, not soundness (every adopted cone's
  // fingerprint-dependent decisions are re-verified), and the common
  // all-distinct fingerprint pattern then collapses onto one key. The low
  // tag bit separates the two word kinds so they can never alias.
  const std::uint8_t* bits = cur_bits_;
  out.clear();
  out.reserve(1 + seg.boundary.size());
  out.push_back(static_cast<std::uint64_t>(si));
  for (std::uint32_t k = 0; k < seg.root_count; ++k) {
    out.push_back(static_cast<std::uint64_t>(sig_[seg.boundary[k]]) << 1 | 1u);
  }
  for (std::size_t k = seg.root_count; k < seg.boundary.size(); ++k) {
    out.push_back(static_cast<std::uint64_t>(bits[seg.boundary[k]]) << 1);
  }
}

void Planner::forward() {
  // Every cycle gets a fresh derived-fingerprint epoch no matter which path
  // serves it (hit, miss, fallback), so category-iv fingerprints are pure
  // functions of (epoch, gate) — identical across planner variants and
  // worker interleavings.
  ++fp_epoch_;
  // The root signature doubles as the cone dirty sweep's change detector
  // and the segment keys' root words, so it is built whenever either reuse
  // mechanism is on.
  stitched_ = false;
  if (cache_ != nullptr || memo_ != nullptr) build_signature();
  if (cache_ != nullptr) {
    const std::uint64_t h = fnv1a64(sig_);
    if (Entry* e = cache_->find(h, sig_)) {
      cur_bits_ = e->wire_bits.data();
      if (verify_entry(*e)) {
        ++cache_hits_;
        cur_ = e;
        return;
      }
      // Signature matched but the XOR-linear fingerprint structure drifted:
      // reclassify this cycle uncached — clean cones still serve from the
      // memo. The entry keeps serving states that do match it.
      ++cache_misses_;
      build_plan(scratch_);
      cur_ = &scratch_;
      return;
    }
    ++cache_misses_;
    Entry* e = cache_->insert(h, sig_);
    if (e == nullptr) e = &scratch_;
    build_plan(*e);
    cur_ = e;
    return;
  }
  ++cache_misses_;
  build_plan(scratch_);
  cur_ = &scratch_;
}

void Planner::build_plan(Entry& e) {
  const std::size_t ng = nl_.gates.size();
  const std::size_t nseg = layout_.segments.size();
  e.act.resize(ng);
  e.pass_src.resize(ng);
  e.wire_bits.resize(nl_.num_wires());
  e.touch.clear();
  e.touch_off.assign(nseg + 1, 0);
  e.backward[0].filled = false;
  e.backward[1].filled = false;
  cur_bits_ = e.wire_bits.data();

  const WireId first_gate = nl_.first_gate_wire();
  for (WireId w = 0; w < first_gate; ++w) e.wire_bits[w] = pack_bits(st_[w]);

  const std::uint32_t* dep_off = slice_dep_offsets_.data();
  const std::uint32_t* dep_edg = slice_dep_edges_.data();

  if (memo_ == nullptr) {
    // Cone-parallel classification without memoization: every segment
    // classifies fresh into its own gate range and touch scratch; operand
    // reads of upstream slices are ordered by the dependency DAG.
    WorkPool::execute(opts_.pool, nseg, dep_off, dep_edg, [&](std::size_t si) {
      seg_touch_[si].clear();
      classify_segment(e, layout_.segments[si], seg_touch_[si]);
    });
    for (std::size_t si = 0; si < nseg; ++si) {
      e.touch_off[si] = static_cast<std::uint32_t>(e.touch.size());
      e.touch.insert(e.touch.end(), seg_touch_[si].begin(), seg_touch_[si].end());
    }
    e.touch_off[nseg] = static_cast<std::uint32_t>(e.touch.size());
    return;
  }

  // Phase A (serial) — dirty-region seeds: every segment reading a root
  // whose signature word changed against the snapshot. Everything else
  // starts clean and only becomes dirty if an upstream slice actually
  // changes (the cascade stops at segments that reclassify to an identical
  // slice).
  const bool have_prev = prev_ok_;
  std::fill(seg_dirty_.begin(), seg_dirty_.end(), have_prev ? 0 : 1);
  if (have_prev) {
    for (WireId w = 0; w < first_gate; ++w) {
      if (sig_[w] != prev_sig_[w]) {
        for (std::uint32_t k = root_consumer_offsets_[w]; k < root_consumer_offsets_[w + 1];
             ++k) {
          seg_dirty_[root_consumers_[k]] = 1;
        }
      }
    }
  }

  const auto slice_changed = [&](const PlanSegment& seg) {
    if (!have_prev) return true;
    const std::size_t fg = seg.first_gate;
    return std::memcmp(e.act.data() + fg, prev_act_.data() + fg, seg.count) != 0 ||
           std::memcmp(e.pass_src.data() + fg, prev_pass_src_.data() + fg,
                       seg.count * sizeof(WireId)) != 0 ||
           std::memcmp(e.wire_bits.data() + first_gate + fg, prev_bits_.data() + first_gate + fg,
                       seg.count) != 0;
  };

  // Phase B (cone-parallel) — adopt or classify every segment into its own
  // gate range and per-segment scratch. A task reads its dependencies'
  // seg_changed_ flags and slice bytes (written before their completion,
  // ordered by the DAG), probes the memo read-only (peek), and defers all
  // LRU motion, counters and inserts to phase C, so the pooled run is
  // bit-identical to the serial one.
  WorkPool::execute(opts_.pool, nseg, dep_off, dep_edg, [&](std::size_t si) {
    const PlanSegment& seg = layout_.segments[si];
    seg_touch_[si].clear();
    seg_probes_[si] = 0;
    bool dirty = seg_dirty_[si] != 0;
    if (!dirty) {
      for (const std::uint32_t sj : seg.deps) {
        if (seg_changed_[sj] != 0) {
          dirty = true;
          break;
        }
      }
    }
    if (!dirty) {
      // Clean cone: adopt the snapshot slice with no key build or memo
      // lookup. Verification still guards fingerprint drift.
      if (adopt_segment(e, seg, prev_act_.data() + seg.first_gate,
                        prev_pass_src_.data() + seg.first_gate,
                        prev_bits_.data() + first_gate + seg.first_gate,
                        prev_touch_.data() + prev_touch_off_[si],
                        prev_touch_off_[si + 1] - prev_touch_off_[si], seg_touch_[si])) {
        seg_changed_[si] = 0;
        seg_result_[si] = kSegCleanAdopt;
        return;
      }
    }

    // Dirty cone (or snapshot drift): consult the memo. Key-equal candidates
    // can still fail verification (the key cannot see XOR-linear fingerprint
    // structure), so walk them until one verifies.
    build_segment_key(si, seg, seg_keys_[si]);
    const std::uint64_t h = fnv1a64_u64(seg_keys_[si]);
    seg_hash_[si] = h;
    const std::uint32_t s32 = static_cast<std::uint32_t>(si);
    std::size_t after = 0;
    while (const ConeMemo::Entry* m = memo_->peek(s32, h, seg_keys_[si], &after)) {
      ++seg_probes_[si];
      if (adopt_segment(e, seg, m->act.data(), m->pass_src.data(), m->out_bits.data(),
                        m->touch.data(), m->touch.size(), seg_touch_[si])) {
        seg_adopt_id_[si] = m->slice_id;
        seg_changed_[si] = slice_changed(seg) ? 1 : 0;
        seg_result_[si] = kSegMemoAdopt;
        return;
      }
    }

    // Miss (or every key-equal candidate drifted): reclassify this cone,
    // minting a fresh slice identity iff the bytes changed.
    classify_segment(e, seg, seg_touch_[si]);
    seg_changed_[si] = slice_changed(seg) ? 1 : 0;
    seg_result_[si] = kSegClassified;
  });

  // Phase C (serial, ascending) — stitch the touch index, replay the memo's
  // LRU motion for every probe phase B made, insert fresh classifications,
  // and settle slice ids and counters in the exact serial order.
  for (std::size_t si = 0; si < nseg; ++si) {
    const PlanSegment& seg = layout_.segments[si];
    e.touch_off[si] = static_cast<std::uint32_t>(e.touch.size());
    e.touch.insert(e.touch.end(), seg_touch_[si].begin(), seg_touch_[si].end());
    const std::uint32_t s32 = static_cast<std::uint32_t>(si);
    switch (seg_result_[si]) {
      case kSegCleanAdopt:
        ++cone_hits_;
        break;
      case kSegMemoAdopt:
        ++cone_hits_;
        memo_->touch_candidates(s32, seg_hash_[si], seg_keys_[si], seg_probes_[si]);
        if (seg_changed_[si] != 0) slice_ids_[si] = seg_adopt_id_[si];
        // else: keep the snapshot's slice id — same content.
        break;
      case kSegClassified:
      default: {
        ++cone_misses_;
        memo_->touch_candidates(s32, seg_hash_[si], seg_keys_[si], seg_probes_[si]);
        if (ConeMemo::Entry* m = memo_->insert(s32, seg_hash_[si], seg_keys_[si])) {
          const auto ab = e.act.begin() + static_cast<std::ptrdiff_t>(seg.first_gate);
          const auto pb = e.pass_src.begin() + static_cast<std::ptrdiff_t>(seg.first_gate);
          const auto wb =
              e.wire_bits.begin() + static_cast<std::ptrdiff_t>(first_gate + seg.first_gate);
          m->act.assign(ab, ab + seg.count);
          m->pass_src.assign(pb, pb + seg.count);
          m->out_bits.assign(wb, wb + seg.count);
          m->touch = seg_touch_[si];
          if (seg_changed_[si] != 0) slice_ids_[si] = m->slice_id;
        }
        break;
      }
    }
  }
  e.touch_off[nseg] = static_cast<std::uint32_t>(e.touch.size());

  // Refresh the snapshot: roots, the touch index, and changed slices only
  // (clean slices are already byte-identical in the snapshot).
  std::copy(e.wire_bits.begin(), e.wire_bits.begin() + first_gate, prev_bits_.begin());
  for (std::size_t si = 0; si < nseg; ++si) {
    if (seg_changed_[si] == 0) continue;
    const PlanSegment& seg = layout_.segments[si];
    const std::size_t fg = seg.first_gate;
    std::copy_n(e.act.data() + fg, seg.count, prev_act_.data() + fg);
    std::copy_n(e.pass_src.data() + fg, seg.count, prev_pass_src_.data() + fg);
    std::copy_n(e.wire_bits.data() + first_gate + fg, seg.count,
                prev_bits_.data() + first_gate + fg);
  }
  prev_touch_ = e.touch;
  prev_touch_off_ = e.touch_off;
  std::copy(sig_.begin(), sig_.end(), prev_sig_.begin());
  prev_ok_ = true;
  stitched_ = true;
}

void Planner::classify_segment(Entry& e, const PlanSegment& seg,
                               std::vector<std::uint32_t>& touch) {
  const WireId first_gate = nl_.first_gate_wire();
  const bool skipgate = opts_.mode == Mode::SkipGate;
  const auto wire_pub = [&](WireId w) { return (e.wire_bits[w] & 1) != 0; };
  const auto state_of = [&](WireId w) {
    const std::uint8_t b = e.wire_bits[w];
    WireState s;
    s.is_pub = (b & 1) != 0;
    s.val = (b & 2) != 0;
    s.flip = (b & 4) != 0;
    s.fp = st_[w].fp;
    return s;
  };
  const std::size_t gend = seg.first_gate + seg.count;

  for (std::size_t i = seg.first_gate; i < gend; ++i) {
    const Gate g = nl_.gates[i];
    const WireState a = state_of(g.a);
    const WireState b = state_of(g.b);
    WireState out;
    PlanAct act;
    WireId src = 0;

    if (skipgate && a.is_pub && b.is_pub) {  // category i
      act = PlanAct::Public;
      out = pub_state(netlist::tt_eval(g.tt, a.val, b.val));
    } else if (skipgate && a.is_pub) {  // category ii
      classify_unary(netlist::tt_restrict_a(g.tt, a.val), b, /*pass_is_a=*/false, act, out);
    } else if (skipgate && b.is_pub) {  // category ii
      classify_unary(netlist::tt_restrict_b(g.tt, b.val), a, /*pass_is_a=*/true, act, out);
    } else if (skipgate && a.fp == b.fp) {  // category iii
      classify_unary(netlist::tt_restrict_diag(g.tt, a.flip != b.flip), a, /*pass_is_a=*/true,
                     act, out);
    } else if (netlist::tt_is_affine(g.tt)) {  // free under free-XOR
      if (g.tt == netlist::kTtZero || g.tt == netlist::kTtOne) {
        const bool one = g.tt == netlist::kTtOne;
        if (skipgate) {
          act = PlanAct::Public;
          out = pub_state(one);
        } else {
          act = one ? PlanAct::PassC1 : PlanAct::PassC0;
          out = state_of(one ? netlist::kConst1 : netlist::kConst0);
        }
      } else if (netlist::tt_ignores_a(g.tt)) {
        classify_unary(netlist::tt_restrict_a(g.tt, false), b, /*pass_is_a=*/false, act, out);
      } else if (netlist::tt_ignores_b(g.tt)) {
        classify_unary(netlist::tt_restrict_b(g.tt, false), a, /*pass_is_a=*/true, act, out);
      } else {  // XOR / XNOR of two live secrets
        act = PlanAct::FreeXor;
        out.is_pub = false;
        out.fp = a.fp ^ b.fp;
        out.flip = (a.flip != b.flip) != (g.tt == netlist::kTtXnor);
        // XOR-cancellation peephole: the 1-AND multiplexer f ^ (s & (t^f))
        // with a public select degenerates to f ^ (t ^ f) == t. Detecting
        // that the result carries exactly an existing wire's label (the
        // paper's "the MUX acts as a wire") releases the unselected side's
        // label from the needed-cone, so its producing gates are skipped.
        if (skipgate) {
          const WireId cancel = find_cancellation(nl_, e.act.data(), e.pass_src.data(), st_,
                                                  wire_pub, g.a, g.b, out.fp);
          if (cancel != kNoWire) {
            act = PlanAct::PassSrc;
            src = cancel;
          }
        }
      }
    } else {  // category iv
      act = PlanAct::Garble;
      out.is_pub = false;
      out.fp = derived_fp(i);
      out.flip = false;
    }
    st_[first_gate + i].fp = out.fp;
    e.act[i] = static_cast<std::uint8_t>(act);
    e.pass_src[i] = src;
    e.wire_bits[first_gate + i] = pack_bits(out);
    // The touch list drives hit verification and the backward sweep: every
    // non-Public action plus every fingerprint-dependent Public collapse
    // (two secret inputs, category iii / constant-affine).
    if (act != PlanAct::Public || (!a.is_pub && !b.is_pub)) {
      touch.push_back(static_cast<std::uint32_t>(i));
    }
  }
}

bool Planner::adopt_segment(Entry& e, const PlanSegment& seg, const std::uint8_t* act,
                            const WireId* pass_src, const std::uint8_t* out_bits,
                            const std::uint32_t* touch, std::size_t touch_count,
                            std::vector<std::uint32_t>& out_touch) {
  const auto fg = static_cast<std::ptrdiff_t>(seg.first_gate);
  std::copy_n(act, seg.count, e.act.begin() + fg);
  std::copy_n(pass_src, seg.count, e.pass_src.begin() + fg);
  std::copy_n(out_bits, seg.count,
              e.wire_bits.begin() + static_cast<std::ptrdiff_t>(nl_.first_gate_wire()) + fg);
  if (!verify_touch(e, touch, touch_count)) return false;
  out_touch.insert(out_touch.end(), touch, touch + touch_count);
  return true;
}

bool Planner::verify_entry(const Entry& e) {
  const std::size_t nseg = layout_.segments.size();
  if (opts_.pool == nullptr || nseg <= 1) {
    return verify_touch(e, e.touch.data(), e.touch.size());
  }
  // Cone-parallel hit verification: each segment verifies its touch
  // sub-range, with operand fingerprint reads ordered by the dependency
  // DAG. A failing segment stops propagating its fingerprints, which can
  // only make downstream segments fail too — the conjunction is the same
  // boolean the serial walk computes, and partially-written fingerprints
  // are rewritten by the fallback classification.
  std::fill(seg_ok_.begin(), seg_ok_.end(), 1);
  opts_.pool->run(nseg, slice_dep_offsets_.data(), slice_dep_edges_.data(),
                  [&](std::size_t si) {
                    if (!verify_touch(e, e.touch.data() + e.touch_off[si],
                                      e.touch_off[si + 1] - e.touch_off[si])) {
                      seg_ok_[si] = 0;
                    }
                  });
  bool ok = true;
  for (std::size_t si = 0; si < nseg; ++si) ok = ok && seg_ok_[si] != 0;
  return ok;
}

bool Planner::verify_touch(const Entry& e, const std::uint32_t* touch,
                           std::size_t touch_count) {
  // Fingerprints are cycle state even on a hit: category-iv gates re-derive
  // the same (epoch, gate)-addressed fingerprint a fresh classification
  // would produce and derived fingerprints follow the cached actions, so
  // the planner's state after a verified hit is identical to a fresh
  // classification — and a failed verification needs no stream rollback.
  // Untouched gates are Public with a public input: no fingerprint exists,
  // no decision can drift.
  const WireId first_gate = nl_.first_gate_wire();
  const bool skipgate = opts_.mode == Mode::SkipGate;
  const auto wire_pub = [&](WireId w) { return (e.wire_bits[w] & 1) != 0; };
  const auto wire_flip = [&](WireId w) { return (e.wire_bits[w] & 4) != 0; };

  bool ok = true;
  for (std::size_t t = 0; t < touch_count && ok; ++t) {
    const std::size_t i = touch[t];
    const WireId w = first_gate + static_cast<WireId>(i);
    const Gate g = nl_.gates[i];
    const PlanAct act = static_cast<PlanAct>(e.act[i]);

    // Re-derive the expected action for every gate whose classification can
    // depend on a fingerprint comparison — both secret inputs in SkipGate
    // mode — mirroring the forward pass branch for branch (the public/flip
    // structure is pinned by the signature/key; only fingerprints can
    // drift). Conventional mode makes no fingerprint comparison.
    if (skipgate && !wire_pub(g.a) && !wire_pub(g.b)) {
      PlanAct expect;
      WireId expect_src = kNoWire;
      if (st_[g.a].fp == st_[g.b].fp) {  // category iii
        const netlist::UnaryTable u =
            netlist::tt_restrict_diag(g.tt, wire_flip(g.a) != wire_flip(g.b));
        expect = netlist::unary_is_const(u) ? PlanAct::Public : PlanAct::PassA;
      } else if (netlist::tt_is_affine(g.tt)) {
        if (g.tt == netlist::kTtZero || g.tt == netlist::kTtOne) {
          expect = PlanAct::Public;
        } else if (netlist::tt_ignores_a(g.tt)) {
          expect = PlanAct::PassB;  // non-const unary of b
        } else if (netlist::tt_ignores_b(g.tt)) {
          expect = PlanAct::PassA;  // non-const unary of a
        } else {  // XOR of two live secrets
          const Block out_fp = st_[g.a].fp ^ st_[g.b].fp;
          const WireId src = find_cancellation(nl_, e.act.data(), e.pass_src.data(), st_,
                                               wire_pub, g.a, g.b, out_fp);
          expect = src == kNoWire ? PlanAct::FreeXor : PlanAct::PassSrc;
          expect_src = src;
        }
      } else {  // category iv
        expect = PlanAct::Garble;
      }
      ok = act == expect && (expect != PlanAct::PassSrc || e.pass_src[i] == expect_src);
      if (!ok) break;
    }

    switch (act) {
      case PlanAct::Public: break;
      case PlanAct::PassA: st_[w].fp = st_[g.a].fp; break;
      case PlanAct::PassB: st_[w].fp = st_[g.b].fp; break;
      case PlanAct::PassC0: st_[w].fp = st_[netlist::kConst0].fp; break;
      case PlanAct::PassC1: st_[w].fp = st_[netlist::kConst1].fp; break;
      case PlanAct::PassSrc:
      case PlanAct::FreeXor: st_[w].fp = st_[g.a].fp ^ st_[g.b].fp; break;
      case PlanAct::Garble: st_[w].fp = derived_fp(i); break;
    }
  }
  return ok;
}

bool Planner::wire_public(WireId w) const { return (cur_->wire_bits[w] & 1) != 0; }
bool Planner::wire_value(WireId w) const { return (cur_->wire_bits[w] & 2) != 0; }

CyclePlan Planner::finish(bool is_final) {
  PlanCache::Backward* b = &cur_->backward[is_final ? 1 : 0];
  if (!b->filled) {
    // Stitched cycles first probe the backward memo: the slice-id
    // composition exactly identifies the forward plan's gate-range bytes,
    // which — together with is_final and the root wires the sweep reads
    // directly — fully determine the needed/emit result.
    bool memoize = false;
    std::uint64_t h = 0;
    if (memo_ != nullptr && stitched_) {
      backward_key_.clear();
      backward_key_.reserve(slice_ids_.size() + backward_root_wires_.size() + 1);
      backward_key_.push_back(is_final ? 1 : 0);
      backward_key_.insert(backward_key_.end(), slice_ids_.begin(), slice_ids_.end());
      for (const WireId w : backward_root_wires_) {
        backward_key_.push_back(cur_->wire_bits[w]);
      }
      h = fnv1a64_u64(backward_key_);
      if (const auto it = backward_map_.find(h); it != backward_map_.end()) {
        for (const BackwardList::iterator li : it->second) {
          if (li->key == backward_key_) {
            backward_lru_.splice(backward_lru_.begin(), backward_lru_, li);
            b = &li->b;
            break;
          }
        }
      }
      memoize = !b->filled;
    }
    if (!b->filled) backward_fill(*cur_, *b, is_final);
    if (memoize) {
      if (backward_lru_.size() >= backward_capacity_) {
        const BackwardSlot& victim = backward_lru_.back();
        const auto vit = backward_map_.find(victim.hash);
        for (auto i = vit->second.begin(); i != vit->second.end(); ++i) {
          if (&**i == &victim) {
            vit->second.erase(i);
            break;
          }
        }
        if (vit->second.empty()) backward_map_.erase(vit);
        backward_lru_.pop_back();
      }
      backward_lru_.emplace_front();
      BackwardSlot& slot = backward_lru_.front();
      slot.hash = h;
      slot.key = backward_key_;
      slot.b = *b;
      backward_map_[h].push_back(backward_lru_.begin());
      b = &backward_lru_.front().b;
    }
  }

  slices_.clear();
  const bool conventional = opts_.mode == Mode::Conventional;
  for (std::size_t si = 0; si < layout_.segments.size(); ++si) {
    const PlanSegment& seg = layout_.segments[si];
    PlanSlice slice;
    slice.act = cur_->act.data() + seg.first_gate;
    slice.pass_src = cur_->pass_src.data() + seg.first_gate;
    slice.emit = b->emit.data() + seg.first_gate;
    slice.live = b->live.data() + seg.first_gate;
    if (!conventional) {
      slice.work = b->work.data() + b->work_off[si];
      slice.work_count = b->work_off[si + 1] - b->work_off[si];
    }
    slice.first_gate = seg.first_gate;
    slice.count = seg.count;
    slices_.push_back(slice);
  }

  CyclePlan plan;
  plan.slices = slices_.data();
  plan.num_slices = slices_.size();
  plan.wire_bits = cur_->wire_bits.data();
  plan.dep_offsets = slice_dep_offsets_.data();
  plan.dep_edges = slice_dep_edges_.data();
  plan.num_gates = nl_.gates.size();
  plan.num_wires = nl_.num_wires();
  plan.emitted = b->emitted;
  plan.is_final = is_final;
  plan.sample = nl_.outputs_every_cycle || is_final;
  return plan;
}

void Planner::backward_fill(const Entry& e, PlanCache::Backward& b, bool is_final) {
  const std::size_t ng = nl_.gates.size();
  b.emit.assign(ng, 0);
  b.live.assign(ng, 0);
  b.emitted = 0;
  b.filled = true;
  if (ng == 0) return;

  if (opts_.mode == Mode::Conventional) {
    // Conventional GC garbles every non-affine gate unconditionally.
    for (std::size_t i = 0; i < ng; ++i) {
      b.emit[i] = e.act[i] == static_cast<std::uint8_t>(PlanAct::Garble) ? 1 : 0;
      b.live[i] = 1;
      b.emitted += b.emit[i];
    }
    return;
  }

  std::fill(needed_.begin(), needed_.end(), 0);
  const bool sample = nl_.outputs_every_cycle || is_final;
  if (sample) {
    for (const netlist::OutputPort& o : nl_.outputs) {
      if ((e.wire_bits[o.wire] & 1) == 0) needed_[o.wire] = 1;
    }
  }
  if (!is_final) {
    // Labels entering flip-flops must survive into the next cycle
    // (paper: "copy flip flops labels"). On the final cycle they are dead,
    // which is how e.g. the last carry of a serial adder gets skipped.
    for (const Dff& d : nl_.dffs) {
      if ((e.wire_bits[d.d] & 1) == 0) needed_[d.d] = 1;
    }
  }

  // Only touched gates can be needed or emit: untouched gates are Public
  // (no label), and `needed` is only ever set on secret wires. Sweep the
  // touch list in reverse gate order.
  const WireId first_gate = nl_.first_gate_wire();
  for (std::size_t t = e.touch.size(); t-- > 0;) {
    const std::size_t i = e.touch[t];
    const WireId w = first_gate + static_cast<WireId>(i);
    if (!needed_[w]) continue;
    const Gate g = nl_.gates[i];
    switch (static_cast<PlanAct>(e.act[i])) {
      case PlanAct::Public:
        break;
      case PlanAct::PassA:
        needed_[g.a] = 1;
        break;
      case PlanAct::PassB:
        needed_[g.b] = 1;
        break;
      case PlanAct::PassC0:
      case PlanAct::PassC1:
        break;  // constants are always bound; nothing to propagate
      case PlanAct::PassSrc:
        needed_[e.pass_src[i]] = 1;
        break;
      case PlanAct::FreeXor:
        needed_[g.a] = 1;
        needed_[g.b] = 1;
        break;
      case PlanAct::Garble:
        b.emit[i] = 1;
        if ((e.wire_bits[g.a] & 1) == 0) needed_[g.a] = 1;
        if ((e.wire_bits[g.b] & 1) == 0) needed_[g.b] = 1;
        break;
    }
  }

  for (const std::uint32_t i : e.touch) {
    b.live[i] = (needed_[first_gate + i] || b.emit[i]) ? 1 : 0;
    b.emitted += b.emit[i];
  }

  // Per-slice work lists: the live subset of each segment's touch sublist,
  // as slice-relative indices.
  const std::size_t nseg = layout_.segments.size();
  b.work.clear();
  b.work_off.assign(nseg + 1, 0);
  for (std::size_t si = 0; si < nseg; ++si) {
    b.work_off[si] = static_cast<std::uint32_t>(b.work.size());
    const std::uint32_t fg = layout_.segments[si].first_gate;
    for (std::uint32_t t = e.touch_off[si]; t < e.touch_off[si + 1]; ++t) {
      const std::uint32_t i = e.touch[t];
      if (b.live[i] != 0) b.work.push_back(i - fg);
    }
  }
  b.work_off[nseg] = static_cast<std::uint32_t>(b.work.size());
}

void Planner::latch(const CyclePlan& plan) {
  for (std::size_t i = 0; i < nl_.dffs.size(); ++i) {
    const Dff& d = nl_.dffs[i];
    if (plan.wire_public(d.d)) {
      dff_st_[i] = pub_state(plan.wire_value(d.d) != d.d_invert);
    } else {
      dff_st_[i].is_pub = false;
      dff_st_[i].val = false;
      dff_st_[i].flip = plan.wire_flip(d.d) != d.d_invert;
      dff_st_[i].fp = st_[d.d].fp;
    }
  }
}

}  // namespace arm2gc::core
