#include "core/plan.h"
namespace fix::core {
CyclePlan classify(crypto::Block seed) {
  CyclePlan p;
  p.emitted = static_cast<unsigned>(seed.lo & 3u);
  return p;
}
}  // namespace fix::core
