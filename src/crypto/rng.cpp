#include "crypto/rng.h"

// CtrRng is header-only today; this translation unit anchors the library and
// keeps a stable home for future non-inline additions.
namespace arm2gc::crypto {}
