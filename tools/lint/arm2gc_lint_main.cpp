// CLI for the in-tree secrecy/layering linter (tools/lint/lint.h). Exit 0 on
// a clean tree, 1 with one "file:line: [rule] message" per finding, 2 on
// usage/config errors.
//
//   arm2gc_lint --root <repo> [--rules <toml>] [--compile-commands <json>]
//               [file...]
//
// With no explicit file list the configured scan dirs are swept. When a
// compile_commands.json is given, its TU list is additionally checked to be
// covered by the sweep — a source file the build compiles but the linter
// would not see is itself a finding.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int usage() {
  std::cerr << "usage: arm2gc_lint --root <repo-root> [--rules <rules.toml>]\n"
               "                   [--compile-commands <compile_commands.json>] [file...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string rules_path;
  std::string ccmds;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (a == "--rules" && i + 1 < argc) {
      rules_path = argv[++i];
    } else if (a == "--compile-commands" && i + 1 < argc) {
      ccmds = argv[++i];
    } else if (a == "--help" || a == "-h") {
      return usage();
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "arm2gc_lint: unknown option " << a << "\n";
      return usage();
    } else {
      files.push_back(a);
    }
  }
  if (root.empty()) return usage();
  if (rules_path.empty()) rules_path = root + "/tools/lint_rules.toml";

  try {
    const arm2gc::lint::Rules rules = arm2gc::lint::load_rules(rules_path);
    std::vector<std::string> targets =
        files.empty() ? arm2gc::lint::collect_sources(root, rules) : files;

    std::vector<arm2gc::lint::Finding> findings;
    if (!ccmds.empty()) {
      for (const std::string& tu :
           arm2gc::lint::tus_from_compile_commands(ccmds, root, rules)) {
        if (std::find(targets.begin(), targets.end(), tu) == targets.end()) {
          findings.push_back({tu, 0, "config",
                              "compiled translation unit is not covered by the lint sweep "
                              "(check [scan] dirs/exclude)"});
        }
      }
    }
    for (const arm2gc::lint::Finding& f : arm2gc::lint::run_lint(root, rules, targets)) {
      findings.push_back(f);
    }

    for (const arm2gc::lint::Finding& f : findings) {
      std::cout << arm2gc::lint::format_finding(f) << "\n";
    }
    if (findings.empty()) {
      std::cout << "arm2gc_lint: " << targets.size() << " files clean\n";
      return 0;
    }
    std::cout << "arm2gc_lint: " << findings.size() << " finding(s) in " << targets.size()
              << " files\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "arm2gc_lint: " << e.what() << "\n";
    return 2;
  }
}
